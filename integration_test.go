package redundancy_test

// Integration tests: compositions of several techniques, exercising the
// public API across module boundaries the way a downstream system would.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	redundancy "github.com/softwarefaults/redundancy"
)

// TestRecoveryBlockOverServiceSubstitution composes deliberate code
// redundancy (a recovery block) with opportunistic code redundancy (a
// substituting service proxy): the block's primary calls a remote
// service through the proxy; when every provider is down, the alternate
// computes locally.
func TestRecoveryBlockOverServiceSubstitution(t *testing.T) {
	sig := redundancy.ServiceSignature{Name: "tax", Ops: []string{"rate"}}
	mk := func(name string) *redundancy.SimService {
		s, err := redundancy.NewSimService(name, sig, map[string]func(int) (int, error){
			"rate": func(x int) (int, error) { return x / 10, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	p1, p2 := mk("tax-1"), mk("tax-2")
	reg := redundancy.NewServiceRegistry()
	if err := reg.Register(p1, nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(p2, nil); err != nil {
		t.Fatal(err)
	}
	proxy, err := redundancy.NewServiceProxy(reg, sig, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	state := struct{ Queries int }{}
	remote := redundancy.NewVariant("remote", func(ctx context.Context, amount int) (int, error) {
		state.Queries++
		return proxy.Invoke(ctx, "rate", amount)
	})
	local := redundancy.NewVariant("local-fallback", func(_ context.Context, amount int) (int, error) {
		state.Queries++
		return amount / 10, nil
	})
	block, err := redundancy.NewRecoveryBlock("taxation", &state,
		func(_ int, out int) error {
			if out < 0 {
				return redundancy.ErrNotAccepted
			}
			return nil
		},
		[]redundancy.Variant[int, int]{remote, local})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	// Phase 1: provider 1 serves.
	if got, err := block.Execute(ctx, 100); err != nil || got != 10 {
		t.Fatalf("phase 1 = (%d, %v)", got, err)
	}
	// Phase 2: provider 1 down — the proxy substitutes within the
	// primary variant; the block never needs its alternate.
	p1.SetDown(true)
	if got, err := block.Execute(ctx, 200); err != nil || got != 20 {
		t.Fatalf("phase 2 = (%d, %v)", got, err)
	}
	if proxy.Substitutions != 1 {
		t.Errorf("substitutions = %d, want 1", proxy.Substitutions)
	}
	// Phase 3: everything down — the recovery block's alternate kicks in.
	p2.SetDown(true)
	if got, err := block.Execute(ctx, 300); err != nil || got != 30 {
		t.Fatalf("phase 3 = (%d, %v)", got, err)
	}
}

// TestNVersionOverAgingProcesses composes N-version programming with
// rejuvenation: three replicas of an aging process serve behind a
// majority vote; rejuvenated replicas keep the ensemble reliable while a
// never-rejuvenated ensemble degrades.
func TestNVersionOverAgingProcesses(t *testing.T) {
	aging := redundancy.AgingFault{ID: 1, HazardAtScale: 1, Scale: 60, Shape: 4}
	build := func(policy redundancy.RejuvenationPolicy, seed uint64) redundancy.Variant[int, int] {
		inner := redundancy.NewVariant("worker", func(_ context.Context, x int) (int, error) {
			return x * 2, nil
		})
		r, err := redundancy.NewRejuvenator(inner, aging, policy, redundancy.NewRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("replica-%d", seed)
		return redundancy.NewVariant(name, r.Execute)
	}
	serve := func(policy redundancy.RejuvenationPolicy) float64 {
		var m redundancy.Metrics
		sys, err := redundancy.NewNVersion(
			[]redundancy.Variant[int, int]{build(policy, 1), build(policy, 2), build(policy, 3)},
			redundancy.EqualOf[int](),
			redundancy.WithMetrics(&m))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			_, _ = sys.Execute(context.Background(), i)
		}
		return m.Snapshot().Reliability()
	}
	rejuvenated := serve(redundancy.PeriodicRejuvenation{Every: 30})
	unmaintained := serve(redundancy.NeverRejuvenate{})
	if !(rejuvenated > unmaintained) {
		t.Errorf("rejuvenated ensemble (%f) should beat unmaintained (%f)", rejuvenated, unmaintained)
	}
	if rejuvenated < 0.99 {
		t.Errorf("rejuvenated ensemble reliability = %f, want ~1", rejuvenated)
	}
}

// cartComponent is a minimal stateful component implementing the public
// workaround interface, with a seeded bug in its bulk operation.
type cartComponent struct {
	items map[int]bool
}

func (c *cartComponent) Apply(_ context.Context, op redundancy.WorkaroundOp) error {
	switch op.Name {
	case "add":
		c.items[op.Args[0]] = true
	case "addmany":
		lo, hi := op.Args[0], op.Args[1]
		if hi-lo >= 3 {
			hi-- // seeded boundary bug
		}
		for v := lo; v <= hi; v++ {
			c.items[v] = true
		}
	default:
		return fmt.Errorf("unknown op %s", op.Name)
	}
	return nil
}

func (c *cartComponent) Reset(context.Context) error {
	c.items = make(map[int]bool)
	return nil
}

// TestWorkaroundEngineOnPublicComponent drives the workaround engine over
// a user-defined component through the public API only.
func TestWorkaroundEngineOnPublicComponent(t *testing.T) {
	engine, err := redundancy.NewWorkaroundEngine([]redundancy.RewritingRule{{
		Name:     "expand",
		Match:    []string{"addmany"},
		Priority: 5,
		Replace: func(w []redundancy.WorkaroundOp) []redundancy.WorkaroundOp {
			lo, hi := w[0].Args[0], w[0].Args[1]
			out := make([]redundancy.WorkaroundOp, 0, hi-lo+1)
			for v := lo; v <= hi; v++ {
				out = append(out, redundancy.WorkaroundOp{Name: "add", Args: []int{v}})
			}
			return out
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cart := &cartComponent{items: make(map[int]bool)}
	oracle := func(_ context.Context, comp redundancy.WorkaroundComponent) error {
		c, ok := comp.(*cartComponent)
		if !ok {
			return errors.New("wrong component type")
		}
		for v := 0; v <= 5; v++ {
			if !c.items[v] {
				return fmt.Errorf("missing %d", v)
			}
		}
		return nil
	}
	out, err := engine.Execute(context.Background(), cart,
		redundancy.WorkaroundSequence{{Name: "addmany", Args: []int{0, 5}}}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !out.WorkedAround || out.Rule != "expand" {
		t.Errorf("outcome = %+v", out)
	}
	if !cart.items[5] {
		t.Error("workaround did not complete the range")
	}
}

// TestRuleEngineDrivesCheckpointRecovery composes the rule engine with
// the checkpoint runner: a failing step raises an incident, whose
// recovery action rolls the state machine back and replays.
func TestRuleEngineDrivesCheckpointRecovery(t *testing.T) {
	transient := true
	runner, err := redundancy.NewCheckpointRunner(0,
		func(s int, op int) (int, error) {
			if op == 13 && transient {
				return 0, errors.New("transient glitch")
			}
			return s + op, nil
		}, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := redundancy.NewRuleEngine(redundancy.RecoveryRule{
		Name:  "state-machine",
		Match: redundancy.MatchComponent("runner"),
		Actions: []redundancy.RecoveryAction{{
			Name: "rollback-replay-retry",
			Run: func(_ context.Context, inc *redundancy.Incident) error {
				if _, err := runner.Recover(); err != nil {
					return err
				}
				transient = false // the glitch was environmental
				return runner.Step(13)
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []int{1, 2, 13, 4} {
		err := runner.Step(op)
		if err == nil {
			continue
		}
		outcome, herr := engine.Handle(context.Background(),
			&redundancy.Incident{Component: "runner", Err: err})
		if herr != nil {
			t.Fatalf("unhealed: %v", herr)
		}
		if outcome.Action != "rollback-replay-retry" {
			t.Errorf("outcome = %+v", outcome)
		}
	}
	if runner.State() != 20 {
		t.Errorf("state = %d, want 20", runner.State())
	}
}

// TestReplicatedStorePublicAPI exercises the stateful N-version store
// end to end through the facade.
func TestReplicatedStorePublicAPI(t *testing.T) {
	replicas := []redundancy.StoreReplica{
		redundancy.NewSimStoreReplica("pg"),
		redundancy.NewSimStoreReplica("my"),
		redundancy.NewSimStoreReplica("lite"),
	}
	store, err := redundancy.NewReplicatedStore(replicas)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	v, err := store.Get("k")
	if err != nil || v != "v" {
		t.Errorf("Get = (%q, %v)", v, err)
	}
	if _, err := store.Get("absent"); !errors.Is(err, redundancy.ErrKeyNotFound) {
		t.Errorf("err = %v", err)
	}
}

// TestSelfCheckingOverDataDiversity composes self-checking components
// whose inner implementation is a data-diversity retry block.
func TestSelfCheckingOverDataDiversity(t *testing.T) {
	rng := redundancy.NewRand(5)
	fragile := redundancy.NewVariant("fragile", func(_ context.Context, x int) (int, error) {
		if x%10 == 7 {
			return 0, errors.New("failure region")
		}
		return x * 3, nil
	})
	rb, err := redundancy.NewRetryBlock(fragile,
		func(_ int, _ int) error { return nil },
		[]redundancy.Reexpression[int]{{
			Name:  "bump",
			Apply: func(x int, _ *redundancy.Rand) int { return x + 1 },
			Exact: false, // output differs; the self-check tolerates multiples of 3
		}},
		2, rng)
	if err != nil {
		t.Fatal(err)
	}
	diversified := redundancy.NewVariant("diversified", rb.Execute)
	comp, err := redundancy.NewCheckedComponent(diversified, func(_ int, out int) error {
		if out%3 != 0 {
			return redundancy.ErrNotAccepted
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := redundancy.NewSelfCheckingSystem(
		[]redundancy.SelfCheckingComponent[int, int]{comp})
	if err != nil {
		t.Fatal(err)
	}
	// Input 17 is in the failure region; the retry block re-expresses it
	// to 18, whose output 54 passes the built-in divisibility check.
	got, err := sys.Execute(context.Background(), 17)
	if err != nil || got != 54 {
		t.Errorf("= (%d, %v), want (54, nil)", got, err)
	}
}

package redundancy_test

// E26 acceptance: persisted experiment campaigns. A stored run replays
// to byte-identical aggregates under the same seeds; diffing a
// candidate against a baseline reports metric deltas with noise bounds
// derived from the per-seed spread; a synthetic regression (availability
// drop, injected latency) exceeding the bounds trips the gate with a
// nonzero verdict. EXPERIMENTS.md E26 narrates this test.

import (
	"context"
	"strings"
	"testing"

	redundancy "github.com/softwarefaults/redundancy"
)

// e26Spec is the deterministic smoke sweep the CI gate also runs.
func e26Spec() *redundancy.ExperimentSpec {
	return &redundancy.ExperimentSpec{
		Name:    "e26-acceptance",
		Mode:    "sim",
		Pattern: "sequential",
		N:       []int{2, 3},
		P:       []float64{0.3},
		Trials:  300,
		Seeds:   []uint64{1, 2, 3},
		Workers: 2,
	}
}

func TestE26StoredRunReplaysByteIdentical(t *testing.T) {
	ctx := context.Background()
	run, err := redundancy.RunExperiment(ctx, e26Spec(), nil)
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}

	// Round-trip through the store: replay what was persisted, not what
	// is in memory.
	st, err := redundancy.OpenExperimentStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenExperimentStore: %v", err)
	}
	id, err := st.Save(run)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	stored, err := st.Load(id)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	rep, err := redundancy.ReplayExperiment(ctx, stored, nil)
	if err != nil {
		t.Fatalf("ReplayExperiment: %v", err)
	}
	if rep.Err() != nil || rep.Mismatched != 0 {
		t.Fatalf("replay diverged: %v (%d mismatched)", rep.Err(), rep.Mismatched)
	}
	if want := 2 * 3; rep.Matched != want { // 2 grid points × 3 seeds
		t.Fatalf("replay matched %d pairs, want %d", rep.Matched, want)
	}
}

func TestE26DiffGatesOnSyntheticRegression(t *testing.T) {
	ctx := context.Background()
	base, err := redundancy.RunExperiment(ctx, e26Spec(), nil)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	cand, err := redundancy.RunExperiment(ctx, e26Spec(), nil)
	if err != nil {
		t.Fatalf("candidate: %v", err)
	}

	// Identical sweeps: the gate stays open even with timing gated,
	// because timing bounds come from the seed spread.
	clean := redundancy.DiffExperiments(base, cand, redundancy.ExperimentDiffOptions{})
	if clean.Regressed() {
		t.Fatalf("identical runs regressed:\n%s", clean.String())
	}

	// Synthetic availability regression, far beyond the seed spread.
	for pi := range cand.Points {
		p := &cand.Points[pi]
		for si := range p.Seeds {
			p.Seeds[si].Aggregates.Deterministic.Availability -= 0.15
		}
		p.Pooled.Deterministic.Availability -= 0.15
	}
	diff := redundancy.DiffExperiments(base, cand, redundancy.ExperimentDiffOptions{})
	if !diff.Regressed() {
		t.Fatalf("availability drop not gated:\n%s", diff.String())
	}
	// The report must state the delta and its noise bound.
	found := false
	for _, pd := range diff.Points {
		for _, md := range pd.Metrics {
			if md.Metric == "availability" && md.Regression {
				found = true
				if md.Delta > -0.1 {
					t.Fatalf("availability delta = %v, want ≈ -0.15", md.Delta)
				}
				if md.Bound <= 0 {
					t.Fatalf("availability bound = %v, want > 0", md.Bound)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no availability regression in report:\n%s", diff.String())
	}
	if !strings.Contains(diff.String(), "REGRESSION") {
		t.Fatalf("report does not flag the regression:\n%s", diff.String())
	}

	// Synthetic latency injection: gates only when timing is gated.
	lat, err := redundancy.RunExperiment(ctx, e26Spec(), nil)
	if err != nil {
		t.Fatalf("latency candidate: %v", err)
	}
	for pi := range lat.Points {
		p := &lat.Points[pi]
		for si := range p.Seeds {
			p.Seeds[si].Aggregates.Timing.P99 *= 1000
			p.Seeds[si].Aggregates.Timing.Mean *= 1000
		}
		p.Pooled.Timing.P99 *= 1000
		p.Pooled.Timing.Mean *= 1000
	}
	if d := redundancy.DiffExperiments(base, lat, redundancy.ExperimentDiffOptions{}); d.Regressed() {
		t.Fatalf("latency gated without GateTiming:\n%s", d.String())
	}
	d := redundancy.DiffExperiments(base, lat, redundancy.ExperimentDiffOptions{GateTiming: true})
	if !d.Regressed() {
		t.Fatalf("injected latency not gated with GateTiming:\n%s", d.String())
	}
}

package redundancy

import (
	"github.com/softwarefaults/redundancy/internal/checkpoint"
	"github.com/softwarefaults/redundancy/internal/datadiv"
	"github.com/softwarefaults/redundancy/internal/envperturb"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/microreboot"
	"github.com/softwarefaults/redundancy/internal/rejuv"
	"github.com/softwarefaults/redundancy/internal/replica"
	"github.com/softwarefaults/redundancy/internal/robustdata"
	"github.com/softwarefaults/redundancy/internal/wrapper"
)

// ---- Data diversity (deliberate data redundancy) ----

// Data diversity types.
type (
	// Reexpression transforms an input into a logically equivalent one.
	Reexpression[I any] = datadiv.Reexpression[I]
	// RetryBlock is the retry-block discipline of data diversity.
	RetryBlock[I, O any] = datadiv.RetryBlock[I, O]
	// NCopy is N-copy programming, the data analogue of N-version
	// programming.
	NCopy[I, O any] = datadiv.NCopy[I, O]
	// NVariantCell stores one value under N variant-specific masks
	// (data diversity for security).
	NVariantCell = datadiv.NVariantCell
)

// ErrCorruptionDetected reports diverging variant interpretations of an
// N-variant data cell.
var ErrCorruptionDetected = datadiv.ErrCorruptionDetected

// NewRetryBlock builds a retry block over program with the given
// re-expressions and total attempt budget.
func NewRetryBlock[I, O any](program Variant[I, O], test AcceptanceTest[I, O], res []Reexpression[I], budget int, rng *Rand) (*RetryBlock[I, O], error) {
	return datadiv.NewRetryBlock(program, test, res, budget, rng)
}

// NewNCopy builds an N-copy executor: n copies of the input (original
// plus re-expressions), adjudicated by adj.
func NewNCopy[I, O any](program Variant[I, O], res []Reexpression[I], n int, adj Adjudicator[O], rng *Rand) (*NCopy[I, O], error) {
	return datadiv.NewNCopy(program, res, n, adj, rng)
}

// NewNVariantCell creates a security data-diversity cell with n variants.
func NewNVariantCell(n int, rng *Rand) (*NVariantCell, error) {
	return datadiv.NewNVariantCell(n, rng)
}

// ---- Robust data structures and audits (deliberate data redundancy) ----

// Robust structure types.
type (
	// RobustList is a doubly linked list with redundant structural data.
	RobustList = robustdata.RobustList
	// RobustMap is a checksummed, shadowed key-value store.
	RobustMap = robustdata.RobustMap
	// StructureDefect describes one audit finding.
	StructureDefect = robustdata.Defect
)

// Robust structure errors.
var (
	// ErrStructureCorrupted reports audit-detected inconsistencies.
	ErrStructureCorrupted = robustdata.ErrCorrupted
	// ErrUnrepairable reports damage beyond the available redundancy.
	ErrUnrepairable = robustdata.ErrUnrepairable
)

// NewRobustList creates an empty robust list.
func NewRobustList() *RobustList { return robustdata.NewRobustList() }

// NewRobustMap creates an empty robust map.
func NewRobustMap() *RobustMap { return robustdata.NewRobustMap() }

// ---- Environment model (shared by the environment techniques) ----

// Environment types.
type (
	// Env models the execution environment of a simulated process.
	Env = faultmodel.Env
	// Perturbation is one deliberate change of environment conditions.
	Perturbation = faultmodel.Perturbation
	// AgingFault models software aging with age-increasing hazard.
	AgingFault = faultmodel.AgingFault
)

// DefaultEnv returns the baseline execution environment.
func DefaultEnv() *Env { return faultmodel.DefaultEnv() }

// PadAllocations returns a perturbation adding allocation padding.
func PadAllocations(n int) Perturbation { return faultmodel.PadAllocations(n) }

// ShuffleMessages returns a perturbation randomizing message order.
func ShuffleMessages() Perturbation { return faultmodel.ShuffleMessages() }

// RaisePriority returns a perturbation raising scheduling priority.
func RaisePriority(n int) Perturbation { return faultmodel.RaisePriority(n) }

// ShedLoad returns a perturbation multiplying load by factor.
func ShedLoad(factor float64) Perturbation { return faultmodel.ShedLoad(factor) }

// ---- Rejuvenation (deliberate environment redundancy, preventive) ----

// Rejuvenation types.
type (
	// RejuvenationPolicy decides when to rejuvenate.
	RejuvenationPolicy = rejuv.Policy
	// PeriodicRejuvenation rejuvenates every fixed number of requests.
	PeriodicRejuvenation = rejuv.PeriodicPolicy
	// ThresholdRejuvenation rejuvenates on aging-indicator thresholds.
	ThresholdRejuvenation = rejuv.ThresholdPolicy
	// NeverRejuvenate is the no-rejuvenation baseline.
	NeverRejuvenate = rejuv.NeverPolicy
	// Rejuvenator serves requests through an aging process.
	Rejuvenator[I, O any] = rejuv.Rejuvenator[I, O]
	// CompletionConfig parameterizes the Garg et al. completion-time
	// model.
	CompletionConfig = rejuv.CompletionConfig
)

// NewRejuvenator wraps variant in an aging process governed by fault and
// rejuvenated by policy.
func NewRejuvenator[I, O any](variant Variant[I, O], fault AgingFault, policy RejuvenationPolicy, rng *Rand) (*Rejuvenator[I, O], error) {
	return rejuv.NewRejuvenator(variant, fault, policy, rng)
}

// SimulateCompletion runs the checkpoint+rejuvenation completion-time
// model once.
func SimulateCompletion(cfg CompletionConfig, rng *Rand) (float64, error) {
	return rejuv.SimulateCompletion(cfg, rng)
}

// MeanCompletion estimates expected completion time over trials runs.
func MeanCompletion(cfg CompletionConfig, trials int, rng *Rand) (float64, error) {
	return rejuv.MeanCompletion(cfg, trials, rng)
}

// ---- Environment perturbation and checkpoint-recovery ----

// Perturbation executor types.
type (
	// EnvProgram is a program whose execution depends on environment
	// conditions.
	EnvProgram[I, O any] = envperturb.EnvProgram[I, O]
	// PerturbationRung is one step of the perturbation ladder.
	PerturbationRung = envperturb.Rung
	// PerturbationExecutor re-executes failing programs under perturbed
	// environments.
	PerturbationExecutor[I, O any] = envperturb.Executor[I, O]
)

// DefaultPerturbationLadder returns the RX-inspired ladder: retry,
// padding, shuffling, deprioritize+shed-load.
func DefaultPerturbationLadder() []PerturbationRung { return envperturb.DefaultLadder() }

// NewPerturbationExecutor builds an RX-style executor over program.
func NewPerturbationExecutor[I, O any](program EnvProgram[I, O], baseEnv *Env, ladder []PerturbationRung) (*PerturbationExecutor[I, O], error) {
	return envperturb.New(program, baseEnv, ladder)
}

// NewCheckpointRecovery builds the plain rollback-and-re-execute executor
// (checkpoint-recovery): up to retries re-executions under the unchanged
// environment.
func NewCheckpointRecovery[I, O any](program EnvProgram[I, O], baseEnv *Env, retries int) (*PerturbationExecutor[I, O], error) {
	return envperturb.NewCheckpointRecovery(program, baseEnv, retries)
}

// ---- Checkpoint substrate ----

// Checkpoint types.
type (
	// CheckpointStore keeps serialized state snapshots.
	CheckpointStore[S any] = checkpoint.Store[S]
	// MessageLog records operations for post-rollback replay.
	MessageLog[M any] = checkpoint.Log[M]
	// CheckpointRunner drives a state machine with periodic checkpoints
	// and recovery-by-replay.
	CheckpointRunner[S, M any] = checkpoint.Runner[S, M]
)

// ErrNoCheckpoint is returned when no snapshot is available.
var ErrNoCheckpoint = checkpoint.ErrNoCheckpoint

// NewCheckpointStore creates a snapshot store retaining up to capacity
// snapshots (<= 0 means unbounded).
func NewCheckpointStore[S any](capacity int) *CheckpointStore[S] {
	return checkpoint.NewStore[S](capacity)
}

// NewMessageLog creates an empty operation log.
func NewMessageLog[M any]() *MessageLog[M] { return checkpoint.NewLog[M]() }

// NewCheckpointRunner creates a checkpointed state machine runner.
func NewCheckpointRunner[S, M any](initial S, apply func(S, M) (S, error), interval int) (*CheckpointRunner[S, M], error) {
	return checkpoint.NewRunner(initial, apply, interval)
}

// ---- Process replicas / N-variant systems (security) ----

// Replica types.
type (
	// ReplicaSystem is the monitor plus N replicas with disjoint
	// partitions and distinct instruction tags.
	ReplicaSystem = replica.System
	// ReplicaRequest is one input delivered to all replicas.
	ReplicaRequest = replica.Request
	// ReplicaInstruction is one unit of executable code.
	ReplicaInstruction = replica.Instruction
	// ReplicaOp is the kind of operation a request performs.
	ReplicaOp = replica.OpKind
)

// Replica request operations.
const (
	ReplicaRead  = replica.OpRead
	ReplicaWrite = replica.OpWrite
	ReplicaExec  = replica.OpExec
)

// Replica errors.
var (
	// ErrAttackDetected reports behavioral divergence among replicas.
	ErrAttackDetected = replica.ErrAttackDetected
	// ErrSegfault reports an access outside a replica's partition.
	ErrSegfault = replica.ErrSegfault
	// ErrIllegalInstruction reports a tag-mismatched instruction.
	ErrIllegalInstruction = replica.ErrIllegalInstruction
)

// NewReplicaSystem creates n replicas with disjoint partitions of the
// given size and distinct tags.
func NewReplicaSystem(n int, size uint64) (*ReplicaSystem, error) {
	return replica.NewSystem(n, size)
}

// ---- Reboot and micro-reboot ----

// Micro-reboot types.
type (
	// ComponentSpec declares one component and its children.
	ComponentSpec = microreboot.Spec
	// ComponentSystem is a component tree with reboot-based recovery.
	ComponentSystem = microreboot.System
	// RecoveryManager implements recursive micro-reboot recovery.
	RecoveryManager = microreboot.Manager
)

// ErrComponentFailed reports a request that hit a failed component.
var ErrComponentFailed = microreboot.ErrComponentFailed

// NewComponentSystem builds a runtime component tree from a spec.
func NewComponentSystem(spec ComponentSpec) (*ComponentSystem, error) {
	return microreboot.NewSystem(spec)
}

// NewRecoveryManager wraps a component system with recursive recovery.
func NewRecoveryManager(sys *ComponentSystem) (*RecoveryManager, error) {
	return microreboot.NewManager(sys)
}

// ---- Wrappers and healers ----

// Wrapper types.
type (
	// Heap is a simulated C-like heap with an unguarded write path.
	Heap = wrapper.Heap
	// HeapHandle identifies an allocated heap block.
	HeapHandle = wrapper.Handle
	// HeapHealer is the boundary-check wrapper over a heap.
	HeapHealer = wrapper.Healer
	// OverflowPolicy selects how the healer handles overflowing writes.
	OverflowPolicy = wrapper.OverflowPolicy
	// COTSResource is a simulated component with an implicit protocol.
	COTSResource = wrapper.COTSResource
	// ProtocolWrapper mediates and repairs COTS interactions.
	ProtocolWrapper = wrapper.ProtocolWrapper
)

// Overflow policies.
const (
	// RejectOverflow refuses the whole overflowing write.
	RejectOverflow = wrapper.Reject
	// TruncateOverflow writes only the in-bounds prefix.
	TruncateOverflow = wrapper.Truncate
)

// Wrapper errors.
var (
	// ErrOverflowPrevented reports a write the healer refused.
	ErrOverflowPrevented = wrapper.ErrOverflowPrevented
	// ErrProtocolViolation reports a forbidden COTS call sequence.
	ErrProtocolViolation = wrapper.ErrProtocolViolation
)

// NewHeap creates a simulated heap of the given byte capacity.
func NewHeap(capacity int) (*Heap, error) { return wrapper.NewHeap(capacity) }

// NewHeapHealer wraps heap with boundary checks.
func NewHeapHealer(heap *Heap, policy OverflowPolicy) (*HeapHealer, error) {
	return wrapper.NewHealer(heap, policy)
}

// NewCOTSResource returns a closed COTS resource.
func NewCOTSResource() *COTSResource { return wrapper.NewCOTSResource() }

// NewProtocolWrapper wraps a COTS resource with protocol enforcement.
func NewProtocolWrapper(resource *COTSResource) (*ProtocolWrapper, error) {
	return wrapper.NewProtocolWrapper(resource)
}

// Periodic software audits (Connet et al.).

// Auditable is a structure that can check and repair its redundant data.
type Auditable = robustdata.Auditable

// AuditScheduler runs audit-and-repair passes every fixed number of
// operations, trading audit overhead against detection latency.
type AuditScheduler = robustdata.AuditScheduler

// NewAuditScheduler builds a periodic audit scheduler over target.
func NewAuditScheduler(target Auditable, period int) (*AuditScheduler, error) {
	return robustdata.NewAuditScheduler(target, period)
}

// AsAuditable exposes a RobustList through the Auditable interface.
func AsAuditable(l *RobustList) Auditable { return robustdata.AsAuditable(l) }

package redundancy

import (
	"github.com/softwarefaults/redundancy/internal/checkpoint"
	"github.com/softwarefaults/redundancy/internal/supervise"
)

// Crash-safe recovery: an Erlang-style supervision tree restarts failed
// or panicking children under a restart-intensity budget (escalating
// when the budget is exhausted), and a durable checkpoint store — a
// CRC-framed segmented write-ahead log compacted by atomic snapshots —
// lets a restarted child resume from its last acknowledged write. The
// supervisor reports each recovery's duration to the observation layer,
// so MTTR is a measured histogram (`redundancy_mttr_seconds`), not an
// assumption. `faultsim -crash` demonstrates the loop end to end.
type (
	// Supervisor owns a set of children: it starts them in order, watches
	// for failures, restarts per strategy, and shuts down in reverse
	// order.
	Supervisor = supervise.Supervisor
	// SupervisorOptions configures a supervisor (name, strategy,
	// intensity window, restart backoff, observer).
	SupervisorOptions = supervise.Options
	// ChildSpec declares one supervised child: Init (recovery work that
	// ends the measured downtime) and Run (the child's life; its return
	// or panic is the failure signal).
	ChildSpec = supervise.ChildSpec
	// SupervisionStrategy selects which siblings restart with a failed
	// child.
	SupervisionStrategy = supervise.Strategy
	// RestartPolicy selects when a child is restarted at all.
	RestartPolicy = supervise.RestartPolicy
	// RestartIntensity bounds restarts per sliding window before the
	// supervisor escalates.
	RestartIntensity = supervise.Intensity

	// DurableOptions configures a durable checkpoint store (snapshot
	// interval, retained snapshots, WAL tuning, observer).
	DurableOptions = checkpoint.DurableOptions
	// WALOptions tunes the write-ahead log (segment size, fsync policy).
	WALOptions = checkpoint.WALOptions
	// WAL is the segmented CRC-framed write-ahead log underneath the
	// durable runner, usable on its own.
	WAL = checkpoint.WAL
)

// Supervision strategies and restart policies.
const (
	OneForOne  = supervise.OneForOne
	RestForOne = supervise.RestForOne
	AllForOne  = supervise.AllForOne

	RestartPermanent = supervise.Permanent
	RestartTransient = supervise.Transient
	RestartTemporary = supervise.Temporary
)

// DefaultRestartIntensity mirrors Erlang/OTP's default restart budget.
var DefaultRestartIntensity = supervise.DefaultIntensity

// ErrSupervisorEscalated reports a child that exceeded its restart
// intensity; the supervisor gave up and stopped the tree.
var ErrSupervisorEscalated = supervise.ErrEscalated

// ErrChildPanicked wraps a panic captured from a child's Init or Run.
var ErrChildPanicked = supervise.ErrPanicked

// ErrCorruptCheckpoint reports an unreadable snapshot or WAL frame; the
// recovery path treats a corrupt tail as a torn write and truncates it.
var ErrCorruptCheckpoint = checkpoint.ErrCorruptCheckpoint

// ErrEncodeCheckpoint reports state or an operation that could not be
// serialized for the durable store.
var ErrEncodeCheckpoint = checkpoint.ErrEncodeCheckpoint

// NewSupervisor builds an empty supervisor; Add children, then Serve.
func NewSupervisor(opts SupervisorOptions) *Supervisor { return supervise.New(opts) }

// DurableRunner is the disk-backed counterpart of CheckpointRunner:
// every applied operation is appended to the WAL before it is
// acknowledged, and periodic snapshots compact the log. Reopening the
// same directory replays the tail and resumes from the last
// acknowledged operation, truncating any torn write at the log's end.
type DurableRunner[S, M any] = checkpoint.DurableRunner[S, M]

// OpenDurableRunner opens (or recovers) a durable checkpoint store in
// dir, driving state S with operations M through apply.
func OpenDurableRunner[S, M any](dir string, initial S, apply func(S, M) (S, error), opts DurableOptions) (*DurableRunner[S, M], error) {
	return checkpoint.OpenDurableRunner(dir, initial, apply, opts)
}

// OpenWAL opens (or recovers) a bare segmented write-ahead log in dir.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	return checkpoint.OpenWAL(dir, opts)
}

package redundancy_test

// Experiment E24's acceptance test: a three-replica fleet behind the
// framed RPC transport survives a seeded network-chaos campaign —
// partition of one replica, packet loss, latency spikes, connection
// resets — while a parallel-selection executor keeps availability at or
// above 99%, the heartbeat failure detector convicts the partitioned
// replica within its heartbeat window, hedged requests win during the
// rough phases, and nothing leaks a goroutine.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
)

func TestE24DistributedReplicaFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("network campaign runs for a few wall-clock seconds")
	}
	before := runtime.NumGoroutine()
	runE24Fleet(t)
	// Everything — servers, detector, remotes, supervisor — is shut down;
	// give exiting goroutines a moment, then demand the count recovered.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked across the fleet run: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

func runE24Fleet(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	collector := redundancy.NewCollector()
	network := redundancy.NewPipeNetwork()
	const victim = "r2"
	campaign := redundancy.DefaultNetworkCampaign(1, victim)
	names := []string{"r1", "r2", "r3"}

	// The replica fleet: three servers of the same variant, their accept
	// loops supervised like any other child.
	supervisor := redundancy.NewSupervisor(redundancy.SupervisorOptions{Name: "fleet"})
	for _, name := range names {
		ln, err := network.Listen(name)
		if err != nil {
			t.Fatalf("Listen(%q): %v", name, err)
		}
		v := redundancy.NewVariant("double", func(_ context.Context, x int) (int, error) {
			return 2 * x, nil
		})
		srv := redundancy.NewReplicaServer(v, ln, redundancy.ReplicaServerConfig{Name: name, Observer: collector})
		if err := supervisor.Add(srv.AsChild()); err != nil {
			t.Fatalf("supervise %s: %v", name, err)
		}
		defer srv.Close()
	}
	supDone := make(chan error, 1)
	go func() { supDone <- supervisor.Serve(ctx) }()

	// Every dial goes through the campaign, heartbeats included: the
	// detector sees the same partition the clients do.
	faulty := func(name string) redundancy.DialFunc {
		return campaign.Wrap(name, network.Dial(name))
	}
	detector := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Interval:     100 * time.Millisecond,
		Timeout:      80 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    6,
		Observer:     collector,
	})
	for _, name := range names {
		detector.Watch(name, faulty(name))
	}
	detDone := make(chan error, 1)
	go func() { detDone <- detector.Run(ctx) }()

	// Three remote variants, each preferring a different primary but able
	// to fail over (and hedge) across the whole fleet.
	var variants []redundancy.Variant[int, int]
	for i := range names {
		var endpoints []redundancy.ReplicaEndpoint
		for j := 0; j < len(names); j++ {
			name := names[(i+j)%len(names)]
			endpoints = append(endpoints, redundancy.ReplicaEndpoint{Name: name, Dial: faulty(name)})
		}
		remote, err := redundancy.NewRemoteVariant[int, int]("via-"+names[i], redundancy.RemoteConfig{
			CallTimeout: 150 * time.Millisecond,
			HedgeAfter:  25 * time.Millisecond,
			MaxHedges:   2,
			Detector:    detector,
			Observer:    collector,
		}, endpoints...)
		if err != nil {
			t.Fatalf("NewRemoteVariant: %v", err)
		}
		defer remote.Close()
		variants = append(variants, remote)
	}
	accept := func(in, out int) error {
		if out != 2*in {
			return fmt.Errorf("got %d want %d", out, 2*in)
		}
		return nil
	}
	sel, err := redundancy.NewParallelSelection(variants,
		[]redundancy.AcceptanceTest[int, int]{accept, accept, accept},
		redundancy.WithObserver(collector))
	if err != nil {
		t.Fatalf("NewParallelSelection: %v", err)
	}

	// Drive the workload for the campaign's whole schedule, watching for
	// the detector to convict the partitioned replica.
	campaign.Start()
	var (
		total, ok     int
		partitionSeen time.Time
		suspectedAt   time.Time
		suspectWindow = 2*100*time.Millisecond + 80*time.Millisecond + 300*time.Millisecond
		inPartition   bool
	)
	for !campaign.Done() {
		_, phase := campaign.PhaseNow()
		inPartition = phase != nil && phase.Name == "partition"
		if inPartition && partitionSeen.IsZero() {
			partitionSeen = time.Now()
		}
		if !partitionSeen.IsZero() && suspectedAt.IsZero() &&
			detector.State(victim) != redundancy.ReplicaAlive {
			suspectedAt = time.Now()
		}
		total++
		if got, err := sel.Execute(ctx, total); err == nil && got == 2*total {
			ok++
		}
		sel.Reset() // re-enable variants rejected during rough phases
	}

	if total < 20 {
		t.Fatalf("campaign finished after only %d requests; schedule too short to judge", total)
	}
	availability := float64(ok) / float64(total)
	t.Logf("E24: %d/%d requests served (availability %.2f%%) across %v of network chaos",
		ok, total, 100*availability, campaign.Total())
	if availability < 0.99 {
		t.Errorf("availability %.4f under network chaos, want >= 0.99", availability)
	}
	if partitionSeen.IsZero() {
		t.Fatal("campaign never entered its partition phase")
	}
	if suspectedAt.IsZero() {
		t.Errorf("detector never convicted the partitioned replica %s", victim)
	} else if convicted := suspectedAt.Sub(partitionSeen); convicted > suspectWindow {
		t.Errorf("detector took %v to suspect %s, want within %v", convicted, victim, suspectWindow)
	} else {
		t.Logf("E24: detector convicted %s %v after the partition began", victim, convicted)
	}

	// Hedges fired and won somewhere in the rough phases.
	var hedges, wins, suspects int64
	for _, snap := range collector.Snapshot() {
		hedges += snap.Hedges
		wins += snap.HedgeWins
		suspects += snap.ReplicaSuspects
	}
	if hedges == 0 {
		t.Error("no hedged attempts launched across the whole campaign")
	}
	if wins == 0 {
		t.Error("no hedged attempt ever won; tail-latency defense inert")
	}
	if suspects == 0 {
		t.Error("no replica suspicion recorded by the observation layer")
	}
	t.Logf("E24: %d hedges launched, %d won; %d suspicion transitions", hedges, wins, suspects)

	// Orderly teardown before the leak check.
	cancel()
	if err := <-detDone; err != nil {
		t.Errorf("detector Run: %v", err)
	}
	if err := <-supDone; err != nil && ctx.Err() == nil {
		t.Errorf("supervisor Serve: %v", err)
	}
}

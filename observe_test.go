package redundancy_test

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	redundancy "github.com/softwarefaults/redundancy"
)

// TestObservationFacade drives an observed executor through the public
// API: collector, trace recorder and the legacy counters attached
// together, and the HTTP exporter serving the results.
func TestObservationFacade(t *testing.T) {
	collector := redundancy.NewCollector()
	traces := redundancy.NewTraceRecorder(8)
	var m redundancy.Metrics

	ok := redundancy.NewVariant("ok", func(_ context.Context, x int) (int, error) { return x, nil })
	exec, err := redundancy.NewSequentialAlternatives(
		[]redundancy.Variant[int, int]{ok},
		func(int, int) error { return nil }, nil,
		redundancy.WithObserver(redundancy.CombineObservers(collector, traces)),
		redundancy.WithObserver(redundancy.MetricsObserver(&m)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := exec.Execute(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}

	snap := collector.Snapshot()
	if len(snap) != 1 || snap[0].Requests != 3 || snap[0].Successes != 3 {
		t.Errorf("collector snapshot = %+v", snap)
	}
	if got := traces.Snapshot(); len(got) != 3 || got[0].Outcome != "success" {
		t.Errorf("traces = %+v", got)
	}
	if s := m.Snapshot(); s.Requests != 3 || s.VariantExecutions != 3 {
		t.Errorf("legacy metrics = %+v", s)
	}

	srv := httptest.NewServer(redundancy.ObservationHandler(collector, traces))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `redundancy_requests_total{executor="sequential-alternatives"} 3`) {
		t.Errorf("/metrics output missing request counter:\n%s", body)
	}
}

func TestCombineObserversNil(t *testing.T) {
	if redundancy.CombineObservers(nil, nil) != nil {
		t.Error("all-nil combination should collapse to nil")
	}
	if redundancy.MetricsObserver(nil) != nil {
		t.Error("nil metrics should yield a nil observer")
	}
	nop := redundancy.NopObserver{}
	if redundancy.CombineObservers(nil, nop) != redundancy.Observer(nop) {
		t.Error("single live observer should be returned as itself")
	}
}

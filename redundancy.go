package redundancy

import (
	"context"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/vote"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// Core abstractions, re-exported from the framework core.
type (
	// Variant is one implementation of a logically unique functionality.
	Variant[I, O any] = core.Variant[I, O]
	// Result is the outcome of executing one variant.
	Result[O any] = core.Result[O]
	// Adjudicator decides the outcome of a redundant execution.
	Adjudicator[O any] = core.Adjudicator[O]
	// AdjudicatorFunc adapts a function to the Adjudicator interface.
	AdjudicatorFunc[O any] = core.AdjudicatorFunc[O]
	// AcceptanceTest validates a single result against its input.
	AcceptanceTest[I, O any] = core.AcceptanceTest[I, O]
	// Executor runs a redundant computation end to end.
	Executor[I, O any] = core.Executor[I, O]
	// ExecutorFunc adapts a function to the Executor interface.
	ExecutorFunc[I, O any] = core.ExecutorFunc[I, O]
	// Equal compares two outputs for adjudication purposes.
	Equal[O any] = core.Equal[O]
	// Metrics accumulates counters for a redundant executor.
	Metrics = core.Metrics
	// MetricsSnapshot is a point-in-time copy of executor counters. Its
	// Reliability method reads 1 on an empty snapshot (no observed
	// requests means no observed failures).
	MetricsSnapshot = core.Snapshot
	// Rand is the deterministic PRNG used throughout the framework.
	Rand = xrand.Rand
	// Table is a rendered result table (experiments, taxonomy).
	Table = stats.Table
)

// Taxonomy dimensions (paper Table 1).
type (
	// Intention distinguishes deliberate from opportunistic redundancy.
	Intention = core.Intention
	// RedundancyType identifies what is replicated: code, data, or
	// environment.
	RedundancyType = core.RedundancyType
	// AdjudicatorKind classifies triggers and adjudicators.
	AdjudicatorKind = core.AdjudicatorKind
	// FaultClass identifies the fault classes a mechanism addresses.
	FaultClass = core.FaultClass
	// Pattern identifies the architectural pattern (paper Figure 1).
	Pattern = core.Pattern
)

// Taxonomy dimension values.
const (
	Deliberate    = core.Deliberate
	Opportunistic = core.Opportunistic

	CodeRedundancy        = core.CodeRedundancy
	DataRedundancy        = core.DataRedundancy
	EnvironmentRedundancy = core.EnvironmentRedundancy

	Preventive       = core.Preventive
	ReactiveImplicit = core.ReactiveImplicit
	ReactiveExplicit = core.ReactiveExplicit
	ReactiveBoth     = core.ReactiveBoth

	DevelopmentFaults = core.DevelopmentFaults
	Bohrbugs          = core.Bohrbugs
	Heisenbugs        = core.Heisenbugs
	MaliciousFaults   = core.MaliciousFaults

	ParallelEvaluationPattern     = core.ParallelEvaluationPattern
	ParallelSelectionPattern      = core.ParallelSelectionPattern
	SequentialAlternativesPattern = core.SequentialAlternativesPattern
	IntraComponentPattern         = core.IntraComponentPattern
	EnvironmentPattern            = core.EnvironmentPattern
)

// Sentinel errors shared by the framework's executors.
var (
	// ErrNoVariants reports an executor built or run without variants.
	ErrNoVariants = core.ErrNoVariants
	// ErrAllVariantsFailed reports that no alternative produced an
	// acceptable result.
	ErrAllVariantsFailed = core.ErrAllVariantsFailed
	// ErrNoConsensus reports a vote that reached no quorum.
	ErrNoConsensus = core.ErrNoConsensus
	// ErrNotAccepted reports a result rejected by an acceptance test.
	ErrNotAccepted = core.ErrNotAccepted
	// ErrDivergence reports replicas that must agree but did not.
	ErrDivergence = core.ErrDivergence
	// ErrVariantPanicked reports a variant whose execution panicked and
	// was contained by Guard or a pattern executor.
	ErrVariantPanicked = core.ErrVariantPanicked
)

// NewVariant wraps fn as a named Variant.
func NewVariant[I, O any](name string, fn func(ctx context.Context, input I) (O, error)) Variant[I, O] {
	return core.NewVariant(name, fn)
}

// EqualOf returns an Equal for comparable output types using ==.
func EqualOf[O comparable]() Equal[O] { return core.EqualOf[O]() }

// ApproxEqual returns an Equal for float64 outputs tolerating an absolute
// difference of eps — the inexact comparison heterogeneous numeric
// versions need under voting.
func ApproxEqual(eps float64) Equal[float64] { return vote.ApproxEqual(eps) }

// GuardVariant wraps v with panic containment: a panicking execution
// returns an error wrapping ErrVariantPanicked instead of crashing the
// caller. Pattern executors apply this containment automatically.
func GuardVariant[I, O any](v Variant[I, O]) Variant[I, O] { return core.Guard(v) }

// NewRand returns a deterministic pseudo-random generator for the given
// seed. Every randomized component of the framework takes one of these,
// making runs exactly reproducible.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

package redundancy

import (
	"context"
	"net/http"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
)

// The observation layer: a single Observer interface receives span-style
// callbacks from every redundancy executor, with composable built-in
// implementations — latency histograms (Collector), bounded request
// traces (TraceRecorder), the legacy Metrics counters (MetricsObserver),
// and an HTTP exporter (ObservationHandler). Attach observers to pattern
// executors with WithObserver; WithMetrics remains the counter-only
// shorthand, itself implemented as an Observer.
type (
	// Observer receives span-style callbacks from redundancy executors;
	// see the interface documentation for the callback contract.
	Observer = obs.Observer
	// ObservationOutcome classifies the end state of one observed request.
	ObservationOutcome = obs.Outcome
	// Collector is the histogram-backed metrics observer: per-executor and
	// per-variant counters and latency quantiles, lock-free on the hot
	// path.
	Collector = obs.Collector
	// ExecutorObservation is a point-in-time copy of one executor's
	// collected stats.
	ExecutorObservation = obs.ExecutorSnapshot
	// VariantObservation is a point-in-time copy of one variant's
	// collected stats.
	VariantObservation = obs.VariantSnapshot
	// LatencyHistogram is a lock-free fixed-bucket latency histogram.
	LatencyHistogram = obs.Histogram
	// LatencySnapshot is a point-in-time copy of a LatencyHistogram.
	LatencySnapshot = obs.HistogramSnapshot
	// TraceRecorder keeps the last N completed request traces in a ring
	// buffer, exportable as JSON.
	TraceRecorder = obs.TraceRecorder
	// RequestTrace is the recorded history of one request through an
	// executor.
	RequestTrace = obs.Trace
	// NopObserver is an Observer that does nothing.
	NopObserver = obs.Nop

	// TraceContext is the causal identity of one request: a TraceID
	// shared by every span the request causes (locally nested executors
	// and remote replicas alike) plus this span's own SpanID and parent.
	// Executors with a trace-recording observer derive and propagate it
	// through context.Context automatically; it crosses process
	// boundaries in-band on the RPC frame.
	TraceContext = obs.TraceContext
	// TracedRPCAttempt is one wire attempt of a remote call in a
	// request's hedge lineage: endpoint, its span, and whether it won,
	// was cancelled by a faster sibling, or failed.
	TracedRPCAttempt = obs.RPCAttempt

	// SLObjective is one executor's service-level objective: a target
	// success ratio and (optionally) a latency bound that a request must
	// meet to count as good.
	SLObjective = obs.SLObjective
	// SLOConfig configures an SLOTracker: default and per-executor
	// objectives plus the fast/slow burn-rate windows and thresholds.
	SLOConfig = obs.SLOConfig
	// SLOTracker is an Observer that tracks per-executor availability
	// and latency objectives with multi-window burn-rate gauges.
	SLOTracker = obs.SLOTracker
	// SLOStatus is a point-in-time view of one executor's objective:
	// error ratios and burn rates per window, and whether every window
	// burns above threshold (Breaching).
	SLOStatus = obs.SLOStatus
	// SLOWindowStatus is the burn state of one window of an SLOStatus.
	SLOWindowStatus = obs.SLOWindowStatus
)

// Request outcomes reported to RequestEnd.
const (
	// OutcomeSuccess: a result was delivered with no masked failure.
	OutcomeSuccess = obs.OutcomeSuccess
	// OutcomeMasked: a variant failed but redundancy delivered a result.
	OutcomeMasked = obs.OutcomeMasked
	// OutcomeFailed: the executor itself failed.
	OutcomeFailed = obs.OutcomeFailed
)

// WithObserver attaches an observer to a pattern executor. Repeated
// options (and WithMetrics) combine: every attached observer sees every
// event.
func WithObserver(o Observer) PatternOption { return pattern.WithObserver(o) }

// NewCollector returns an empty histogram-backed metrics observer.
func NewCollector() *Collector { return obs.NewCollector() }

// NewTraceRecorder returns an observer keeping the last n completed
// request traces.
func NewTraceRecorder(n int) *TraceRecorder { return obs.NewTraceRecorder(n) }

// CombineObservers composes observers into one; nil entries are dropped
// and no live observers yield nil (the executors' unobserved fast path).
func CombineObservers(observers ...Observer) Observer { return obs.Combine(observers...) }

// MetricsObserver adapts the legacy counter set as an Observer, with the
// exact counting semantics of the historical WithMetrics option. A nil
// metrics collector yields a nil Observer.
func MetricsObserver(m *Metrics) Observer { return obs.ForMetrics(m) }

// ObservationHandler returns an HTTP handler exposing the observation
// layer: /metrics (Prometheus text format), /vars (JSON snapshot), and
// /traces (the trace ring as JSON). Either collector argument may be
// nil. Extras mount additional endpoints — pass a HealthEngine's
// Extra() to add /healthz and the health gauges.
func ObservationHandler(c *Collector, tr *TraceRecorder, extras ...ObservationEndpoint) http.Handler {
	return obs.Handler(c, tr, extras...)
}

// NextRequestID returns a process-unique identifier correlating the
// callbacks of one observed request; custom executors emitting their own
// spans should use it.
func NextRequestID() uint64 { return obs.NextRequestID() }

// SeedTraceIDs reseeds the deterministic span-ID generator. Runs that
// want byte-identical trace files across invocations (simulations, CI)
// call it once at startup with their run seed.
func SeedTraceIDs(seed uint64) { obs.SeedTraceIDs(seed) }

// WithTraceContext returns a context carrying tc; executors and remote
// variants derive child spans from it.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return obs.WithTraceContext(ctx, tc)
}

// TraceContextFrom extracts the request's trace context, if any.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	return obs.TraceContextFrom(ctx)
}

// StartTrace derives a span for ctx — a child of the context's trace if
// one is present, a fresh root otherwise — and returns the context
// carrying it. Application code that wants its own root span around a
// batch of executor calls uses this; executors call it implicitly.
func StartTrace(ctx context.Context) (context.Context, TraceContext) {
	return obs.StartTrace(ctx)
}

// NewSLOTracker returns an Observer tracking availability/latency
// objectives with fast and slow burn-rate windows. Combine it into an
// executor's observer, mount its Extra() on the ObservationHandler for
// the /slo endpoint and Prometheus gauges, and attach it to a
// HealthEngine so burn-rate breaches degrade /healthz.
func NewSLOTracker(cfg SLOConfig) *SLOTracker { return obs.NewSLOTracker(cfg) }

// PprofEndpoints returns net/http/pprof endpoints as observation
// extras, for mounting CPU/heap/goroutine profiling next to /metrics on
// an ObservationHandler. Gate them behind a flag: profiles expose
// internals and profiling costs CPU.
func PprofEndpoints() []ObservationEndpoint { return obs.PprofExtras() }

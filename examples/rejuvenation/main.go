// Rejuvenation: preventive environment redundancy against software aging.
//
// A long-running server leaks resources and its failure hazard grows with
// age. Serving the same workload with and without periodic rejuvenation
// shows the preventive effect; the Garg et al. completion-time model then
// locates the optimal rejuvenation frequency for a batch job. Run it
// with:
//
//	go run ./examples/rejuvenation
package main

import (
	"context"
	"fmt"
	"os"

	redundancy "github.com/softwarefaults/redundancy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rejuvenation:", err)
		os.Exit(1)
	}
}

func run() error {
	// An aging process: negligible hazard while young, near-certain
	// failure beyond age ~100 requests.
	aging := redundancy.AgingFault{ID: 1, HazardAtScale: 1, Scale: 100, Shape: 4}
	server := redundancy.NewVariant("api-server",
		func(_ context.Context, req int) (int, error) { return req, nil })

	serve := func(policy redundancy.RejuvenationPolicy, seed uint64) (failures, rejuvenations int, err error) {
		r, err := redundancy.NewRejuvenator(server, aging, policy, redundancy.NewRand(seed))
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < 1000; i++ {
			if _, err := r.Execute(context.Background(), i); err != nil {
				failures++
			}
		}
		return failures, r.Rejuvenations(), nil
	}

	fmt.Println("serving 1000 requests through an aging process:")
	for _, p := range []redundancy.RejuvenationPolicy{
		redundancy.NeverRejuvenate{},
		redundancy.PeriodicRejuvenation{Every: 50},
		redundancy.ThresholdRejuvenation{MaxFragmentation: 0.4},
	} {
		failures, rejuvenations, err := serve(p, 7)
		if err != nil {
			return err
		}
		fmt.Printf("  policy %-14s -> %3d aging failures, %2d rejuvenations\n",
			p.Name(), failures, rejuvenations)
	}

	// Batch-job completion time: rejuvenate every N checkpoints.
	fmt.Println("\nbatch job (2000 units, checkpoint every 20): completion time vs rejuvenation period")
	base := redundancy.CompletionConfig{
		Work:               2000,
		CheckpointInterval: 20,
		CheckpointCost:     1,
		RejuvenationCost:   25,
		RecoveryCost:       200,
		Fault:              redundancy.AgingFault{ID: 2, HazardAtScale: 0.02, Scale: 200, Shape: 4},
	}
	bestN, bestT := 0, 0.0
	for _, n := range []int{0, 1, 3, 6, 12} {
		cfg := base
		cfg.RejuvenateEveryN = n
		mean, err := redundancy.MeanCompletion(cfg, 60, redundancy.NewRand(uint64(n)+1))
		if err != nil {
			return err
		}
		label := fmt.Sprintf("every %d ckps", n)
		if n == 0 {
			label = "never"
		}
		fmt.Printf("  %-13s -> %7.1f time units\n", label, mean)
		if bestT == 0 || mean < bestT {
			bestN, bestT = n, mean
		}
	}
	fmt.Printf("\noptimum: rejuvenate every %d checkpoints (%.1f time units) — the U-curve of Garg et al.\n",
		bestN, bestT)
	return nil
}

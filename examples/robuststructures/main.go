// Robust structures: deliberate data redundancy with audits and repair.
//
// A robust doubly-linked list survives pointer and counter corruption by
// reconstructing itself from its redundant structural data, and a
// checksummed, shadowed map serves correct reads through a corrupted
// primary copy. Run it with:
//
//	go run ./examples/robuststructures
package main

import (
	"fmt"
	"os"

	redundancy "github.com/softwarefaults/redundancy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "robuststructures:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- robust list ---
	list := redundancy.NewRobustList()
	for i := 1; i <= 5; i++ {
		list.Append(i * 10)
	}
	fmt.Println("robust list:", mustValues(list))

	// A stray write smashes a next pointer.
	ids := list.NodeIDs()
	list.CorruptNext(ids[1], 424242)
	defects := list.Audit()
	fmt.Printf("after corruption: audit found %d defect(s): %v\n", len(defects), defects)
	if _, err := list.Values(); err != nil {
		fmt.Println("traversal now fails:", err)
	}

	if err := list.Repair(); err != nil {
		return fmt.Errorf("repair: %w", err)
	}
	fmt.Println("after repair:", mustValues(list))

	// Counter drift is detected and fixed too.
	list.CorruptCount(+2)
	if len(list.Audit()) == 0 {
		return fmt.Errorf("count drift went undetected")
	}
	if err := list.Repair(); err != nil {
		return fmt.Errorf("repair count: %w", err)
	}
	fmt.Println("count drift repaired; len =", list.Len())

	// --- robust map ---
	m := redundancy.NewRobustMap()
	m.Put("alpha", 1)
	m.Put("beta", 2)
	m.CorruptPrimary("alpha", 999)

	v, err := m.Get("alpha")
	if err != nil {
		return fmt.Errorf("get alpha: %w", err)
	}
	fmt.Printf("\nrobust map: alpha = %d (served from shadow; %d transparent repair(s))\n",
		v, m.Repairs)

	// Audit-and-repair sweep.
	m.CorruptShadow("beta", 999)
	repaired, lost := m.RepairAll()
	fmt.Printf("audit sweep: repaired %d entr(ies), lost %d\n", repaired, lost)
	return nil
}

func mustValues(l *redundancy.RobustList) []int {
	vs, err := l.Values()
	if err != nil {
		panic(err)
	}
	return vs
}

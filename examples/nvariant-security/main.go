// N-variant security: process replicas and data diversity against
// malicious faults.
//
// Three automatically generated variants of the same process run with
// disjoint address-space partitions and distinct instruction tags. Benign
// requests behave identically everywhere; exploit payloads — which must
// embed a concrete address or a concrete code tag — necessarily diverge
// and are detected without any secret. A data-diversity cell shows the
// same idea at the data level. Run it with:
//
//	go run ./examples/nvariant-security
package main

import (
	"errors"
	"fmt"
	"os"

	redundancy "github.com/softwarefaults/redundancy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nvariant-security:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := redundancy.NewReplicaSystem(3, 1<<16)
	if err != nil {
		return err
	}

	// Benign traffic: relative addressing, properly re-tagged code.
	if _, err := sys.Execute(redundancy.ReplicaRequest{
		Op: redundancy.ReplicaWrite, Addr: 0x40, Value: 7,
	}); err != nil {
		return fmt.Errorf("benign write flagged: %w", err)
	}
	v, err := sys.Execute(redundancy.ReplicaRequest{
		Op: redundancy.ReplicaRead, Addr: 0x40,
	})
	if err != nil {
		return fmt.Errorf("benign read flagged: %w", err)
	}
	fmt.Printf("benign read/write served: value %d\n", v)

	if _, err := sys.Execute(redundancy.ReplicaRequest{
		Op:      redundancy.ReplicaExec,
		Trusted: true,
		Code:    []redundancy.ReplicaInstruction{{Op: "load"}, {Op: "add"}, {Op: "store"}},
	}); err != nil {
		return fmt.Errorf("trusted code flagged: %w", err)
	}
	fmt.Println("trusted program code executed on all variants")

	// Attack 1: a memory exploit hardcoding an absolute address (valid in
	// variant 1's partition only).
	target := sys.Process(0).Base() + 0x100
	_, err = sys.Execute(redundancy.ReplicaRequest{
		Op: redundancy.ReplicaWrite, Addr: target, Absolute: true, Value: 0x41414141,
	})
	report("absolute-address write", err)

	// Attack 2: injected shellcode stamped with variant 2's tag (the best
	// a single payload can do).
	_, err = sys.Execute(redundancy.ReplicaRequest{
		Op:   redundancy.ReplicaExec,
		Code: []redundancy.ReplicaInstruction{{Tag: sys.Process(1).Tag(), Op: "shellcode"}},
	})
	report("code injection", err)

	// Data diversity for security: a value stored under three different
	// masks. An attacker overwriting all variants with the same concrete
	// bytes produces divergent interpretations.
	cell, err := redundancy.NewNVariantCell(3, redundancy.NewRand(7))
	if err != nil {
		return err
	}
	cell.Set(123456)
	got, err := cell.Get()
	if err != nil {
		return err
	}
	fmt.Printf("\nn-variant data cell stores %d across 3 masked variants\n", got)
	cell.CorruptUniform(0xdeadbeef)
	if _, err := cell.Get(); errors.Is(err, redundancy.ErrCorruptionDetected) {
		fmt.Println("uniform data-corruption attack: DETECTED by variant comparison")
	} else {
		return fmt.Errorf("corruption went undetected")
	}
	return nil
}

func report(attack string, err error) {
	switch {
	case errors.Is(err, redundancy.ErrAttackDetected):
		fmt.Printf("%s: DETECTED (replica divergence)\n", attack)
	case err == nil:
		fmt.Printf("%s: NOT DETECTED — attack served!\n", attack)
	default:
		fmt.Printf("%s: trapped uniformly (%v)\n", attack, err)
	}
}

// Flaky services: dynamic service substitution plus recovery blocks.
//
// A composite application depends on a "rates" service that is available
// from three independent providers of varying quality. A transparent
// proxy substitutes providers when the bound one fails; a recovery block
// guards the application-level computation with an acceptance test and an
// alternate algorithm. Run it with:
//
//	go run ./examples/flakyservices
package main

import (
	"context"
	"fmt"
	"os"

	redundancy "github.com/softwarefaults/redundancy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flakyservices:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := redundancy.NewRand(2024)
	sig := redundancy.ServiceSignature{Name: "rates", Ops: []string{"convert"}}

	// Three independently operated providers of the same interface. The
	// primary is down; the second is flaky; the third offers a similar
	// interface under a different operation name, adapted by a converter.
	primary, err := redundancy.NewSimService("rates-primary", sig,
		map[string]func(int) (int, error){
			"convert": func(cents int) (int, error) { return cents * 2, nil },
		})
	if err != nil {
		return err
	}
	primary.SetDown(true)

	flaky, err := redundancy.NewSimService("rates-flaky", sig,
		map[string]func(int) (int, error){
			"convert": func(cents int) (int, error) { return cents * 2, nil },
		})
	if err != nil {
		return err
	}
	flaky.SetFlaky(0.4, rng)

	similar, err := redundancy.NewSimService("fx-gateway",
		redundancy.ServiceSignature{Name: "fx", Ops: []string{"exchange"}},
		map[string]func(int) (int, error){
			"exchange": func(cents int) (int, error) { return cents * 2, nil },
		})
	if err != nil {
		return err
	}

	registry := redundancy.NewServiceRegistry()
	if err := registry.Register(primary, nil); err != nil {
		return err
	}
	if err := registry.Register(flaky, nil); err != nil {
		return err
	}
	if err := registry.Register(similar, redundancy.ServiceConverter{"convert": "exchange"}); err != nil {
		return err
	}

	proxy, err := redundancy.NewServiceProxy(registry, sig, 0.0)
	if err != nil {
		return err
	}

	// The application computes an order total through a recovery block:
	// the primary algorithm uses the remote rates service; the alternate
	// falls back to a conservative local estimate. The acceptance test
	// rejects non-positive totals.
	state := struct{ OrdersPriced int }{}
	remote := redundancy.NewVariant("price-via-service",
		func(ctx context.Context, cents int) (int, error) {
			state.OrdersPriced++
			return proxy.Invoke(ctx, "convert", cents)
		})
	local := redundancy.NewVariant("price-local-estimate",
		func(_ context.Context, cents int) (int, error) {
			state.OrdersPriced++
			return cents*2 + 1, nil // conservative rounding
		})
	block, err := redundancy.NewRecoveryBlock("pricing", &state,
		func(_ int, total int) error {
			if total <= 0 {
				return redundancy.ErrNotAccepted
			}
			return nil
		},
		[]redundancy.Variant[int, int]{remote, local})
	if err != nil {
		return err
	}

	ctx := context.Background()
	priced, failed := 0, 0
	for order := 1; order <= 20; order++ {
		total, err := block.Execute(ctx, order*100)
		if err != nil {
			failed++
			fmt.Printf("order %2d: FAILED (%v)\n", order, err)
			continue
		}
		priced++
		fmt.Printf("order %2d: total %5d  (bound to %s)\n", order, total, proxy.Bound())
	}
	fmt.Printf("\npriced %d/20 orders; proxy performed %d substitutions; final binding: %s\n",
		priced, proxy.Substitutions, proxy.Bound())
	return nil
}

// Self-healing: a rule-engine registry driving micro-reboot recovery.
//
// A three-tier application suffers component failures; a failure-handling
// registry (exception handling / rule engine) maps each incident to an
// ordered list of recovery actions — micro-reboot the failed component
// first, escalate to a full reboot if that does not clear the fault. Run
// it with:
//
//	go run ./examples/selfhealing
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	redundancy "github.com/softwarefaults/redundancy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "selfhealing:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := redundancy.NewComponentSystem(redundancy.ComponentSpec{
		Name: "shop", InitCost: 80,
		Children: []redundancy.ComponentSpec{
			{Name: "storefront", InitCost: 20, Children: []redundancy.ComponentSpec{
				{Name: "cart", InitCost: 3},
				{Name: "search", InitCost: 5},
			}},
			{Name: "inventory", InitCost: 35},
		},
	})
	if err != nil {
		return err
	}

	// The registry: cart/search incidents are micro-rebooted; if the
	// same incident resists, the second action reboots the storefront
	// subtree; anything else gets a full reboot.
	microReboot := redundancy.RecoveryAction{
		Name: "micro-reboot component",
		Run: func(_ context.Context, inc *redundancy.Incident) error {
			cost, err := sys.MicroReboot(inc.Component)
			if err != nil {
				return err
			}
			fmt.Printf("    micro-rebooted %s (cost %.0f)\n", inc.Component, cost)
			return sys.Serve(inc.Component)
		},
	}
	rebootParent := redundancy.RecoveryAction{
		Name: "reboot storefront subtree",
		Run: func(_ context.Context, inc *redundancy.Incident) error {
			cost, err := sys.MicroReboot("storefront")
			if err != nil {
				return err
			}
			fmt.Printf("    escalated: rebooted storefront (cost %.0f)\n", cost)
			return sys.Serve(inc.Component)
		},
	}
	fullReboot := redundancy.RecoveryAction{
		Name: "full reboot",
		Run: func(_ context.Context, inc *redundancy.Incident) error {
			cost := sys.Reboot()
			fmt.Printf("    last resort: full reboot (cost %.0f)\n", cost)
			return sys.Serve(inc.Component)
		},
	}

	engine, err := redundancy.NewRuleEngine(
		redundancy.RecoveryRule{
			Name: "frontend components",
			Match: redundancy.MatchAny(
				redundancy.MatchComponent("cart"),
				redundancy.MatchComponent("search"),
			),
			Actions: []redundancy.RecoveryAction{microReboot, rebootParent, fullReboot},
		},
		redundancy.RecoveryRule{
			Name:    "everything else",
			Match:   func(*redundancy.Incident) bool { return true },
			Actions: []redundancy.RecoveryAction{microReboot, fullReboot},
		},
	)
	if err != nil {
		return err
	}

	// Inject a series of failures and let the registry heal them.
	ctx := context.Background()
	for _, failure := range []string{"cart", "search", "inventory", "cart"} {
		if err := sys.Fail(failure); err != nil {
			return err
		}
		serveErr := sys.Serve(failure)
		if serveErr == nil {
			continue
		}
		fmt.Printf("incident: %s unavailable (%v)\n", failure, errors.Unwrap(serveErr))
		outcome, err := engine.Handle(ctx, &redundancy.Incident{
			Component: failure,
			Err:       serveErr,
		})
		if err != nil {
			return fmt.Errorf("unhealed incident: %w", err)
		}
		fmt.Printf("  healed by rule %q, action %q (%d action(s) tried)\n",
			outcome.Rule, outcome.Action, outcome.ActionsTried)
	}

	fmt.Printf("\ntotal recovery downtime: %.0f cost units (full reboot would cost %.0f per incident)\n",
		sys.Downtime, sys.FullRebootCost())
	fmt.Printf("incidents handled: %d, unresolved: %d\n", engine.Handled, engine.Unresolved)
	return nil
}

// Quickstart: N-version programming with majority voting.
//
// Three "independently developed" implementations of the same scoring
// function execute in parallel on every request; a majority vote masks
// the wrong results of the buggy version. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	redundancy "github.com/softwarefaults/redundancy"
)

// score computes a shipping fee from a parcel weight. The three versions
// below implement the same specification: base fee 5, plus 2 per kg, with
// a cap at 50.
func versions() []redundancy.Variant[int, int] {
	v1 := redundancy.NewVariant("fee-lookup", func(_ context.Context, kg int) (int, error) {
		fee := 5 + 2*kg
		if fee > 50 {
			fee = 50
		}
		return fee, nil
	})
	v2 := redundancy.NewVariant("fee-iterative", func(_ context.Context, kg int) (int, error) {
		fee := 5
		for i := 0; i < kg; i++ {
			fee += 2
		}
		return min(fee, 50), nil
	})
	// The buggy third version forgets the cap — a deterministic
	// development fault with a well-defined failure region (kg > 22).
	v3 := redundancy.NewVariant("fee-uncapped-buggy", func(_ context.Context, kg int) (int, error) {
		return 5 + 2*kg, nil
	})
	return []redundancy.Variant[int, int]{v1, v2, v3}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	var metrics redundancy.Metrics
	system, err := redundancy.NewNVersion(versions(), redundancy.EqualOf[int](),
		redundancy.WithMetrics(&metrics))
	if err != nil {
		return err
	}
	fmt.Printf("3-version system tolerates %d faulty version(s) per request\n\n",
		system.TolerableFaults())

	ctx := context.Background()
	for _, kg := range []int{1, 10, 22, 23, 40} {
		fee, err := system.Execute(ctx, kg)
		if err != nil {
			return fmt.Errorf("vote failed for %d kg: %w", kg, err)
		}
		fmt.Printf("%2d kg -> fee %2d", kg, fee)
		if kg > 22 {
			fmt.Printf("   (buggy version said %d; outvoted)", 5+2*kg)
		}
		fmt.Println()
	}

	s := metrics.Snapshot()
	fmt.Printf("\n%d requests, %.0f executions/request, reliability %.2f\n",
		s.Requests, s.ExecutionsPerRequest(), s.Reliability())
	return nil
}

// Calculator: N-version programming over genuinely diverse parsers.
//
// Three implementations of an infix calculator — a recursive-descent
// parser, a shunting-yard evaluator, and a left-to-right evaluator with a
// precedence bug — process the same expressions under a majority vote.
// The diverse designs give the vote real independence: the bug's failure
// region (precedence-sensitive expressions) is outvoted everywhere. Run
// it with:
//
//	go run ./examples/calculator [expr...]
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	redundancy "github.com/softwarefaults/redundancy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calculator:", err)
		os.Exit(1)
	}
}

// The three "independently developed" versions, written against the same
// informal spec: integers, + - *, parentheses, usual precedence.
func versions() []redundancy.Variant[string, int64] {
	return []redundancy.Variant[string, int64]{
		redundancy.NewVariant("recursive-descent", evalRecursive),
		redundancy.NewVariant("shunting-yard", evalStack),
		redundancy.NewVariant("left-to-right-buggy", evalFlat),
	}
}

func run(args []string) error {
	exprs := args
	if len(exprs) == 0 {
		exprs = []string{"1+2*3", "(1+2)*3", "10-2*3", "2*3+4*5", "7"}
	}
	var metrics redundancy.Metrics
	sys, err := redundancy.NewNVersion(versions(), redundancy.EqualOf[int64](),
		redundancy.WithMetrics(&metrics))
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, expr := range exprs {
		voted, err := sys.Execute(ctx, expr)
		if err != nil {
			fmt.Printf("%-12s -> no consensus (%v)\n", expr, err)
			continue
		}
		// Show who disagreed, if anyone.
		var dissent []string
		for _, r := range sys.ExecuteAll(ctx, expr) {
			if r.Err != nil || r.Value != voted {
				dissent = append(dissent, fmt.Sprintf("%s said %d", r.Variant, r.Value))
			}
		}
		fmt.Printf("%-12s -> %d", expr, voted)
		if len(dissent) > 0 {
			fmt.Printf("   (outvoted: %s)", strings.Join(dissent, ", "))
		}
		fmt.Println()
	}
	s := metrics.Snapshot()
	fmt.Printf("\n%d expressions, %.0f version executions each, reliability %.2f\n",
		s.Requests, s.ExecutionsPerRequest(), s.Reliability())
	return nil
}

// ---- version 1: recursive descent ----

var errBad = errors.New("bad expression")

type parser struct {
	s   string
	pos int
}

func evalRecursive(_ context.Context, expr string) (int64, error) {
	p := &parser{s: strings.ReplaceAll(expr, " ", "")}
	v, err := p.sum()
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.s) {
		return 0, fmt.Errorf("trailing input: %w", errBad)
	}
	return v, nil
}

func (p *parser) sum() (int64, error) {
	v, err := p.product()
	if err != nil {
		return 0, err
	}
	for p.pos < len(p.s) && (p.s[p.pos] == '+' || p.s[p.pos] == '-') {
		op := p.s[p.pos]
		p.pos++
		r, err := p.product()
		if err != nil {
			return 0, err
		}
		if op == '+' {
			v += r
		} else {
			v -= r
		}
	}
	return v, nil
}

func (p *parser) product() (int64, error) {
	v, err := p.atom()
	if err != nil {
		return 0, err
	}
	for p.pos < len(p.s) && p.s[p.pos] == '*' {
		p.pos++
		r, err := p.atom()
		if err != nil {
			return 0, err
		}
		v *= r
	}
	return v, nil
}

func (p *parser) atom() (int64, error) {
	if p.pos >= len(p.s) {
		return 0, fmt.Errorf("unexpected end: %w", errBad)
	}
	if p.s[p.pos] == '(' {
		p.pos++
		v, err := p.sum()
		if err != nil {
			return 0, err
		}
		if p.pos >= len(p.s) || p.s[p.pos] != ')' {
			return 0, fmt.Errorf("missing ')': %w", errBad)
		}
		p.pos++
		return v, nil
	}
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return 0, fmt.Errorf("expected number at %d: %w", start, errBad)
	}
	return strconv.ParseInt(p.s[start:p.pos], 10, 64)
}

// ---- version 2: operator-precedence stack machine ----

func evalStack(_ context.Context, expr string) (int64, error) {
	expr = strings.ReplaceAll(expr, " ", "")
	var vals []int64
	var ops []byte
	prec := func(op byte) int {
		if op == '*' {
			return 2
		}
		return 1
	}
	apply := func() error {
		if len(vals) < 2 || len(ops) == 0 {
			return errBad
		}
		op := ops[len(ops)-1]
		ops = ops[:len(ops)-1]
		b, a := vals[len(vals)-1], vals[len(vals)-2]
		vals = vals[:len(vals)-2]
		switch op {
		case '+':
			vals = append(vals, a+b)
		case '-':
			vals = append(vals, a-b)
		default:
			vals = append(vals, a*b)
		}
		return nil
	}
	wantOperand := true
	for i := 0; i < len(expr); {
		c := expr[i]
		switch {
		case c >= '0' && c <= '9':
			if !wantOperand {
				return 0, errBad
			}
			j := i
			for j < len(expr) && expr[j] >= '0' && expr[j] <= '9' {
				j++
			}
			n, err := strconv.ParseInt(expr[i:j], 10, 64)
			if err != nil {
				return 0, err
			}
			vals = append(vals, n)
			i = j
			wantOperand = false
		case c == '+' || c == '-' || c == '*':
			if wantOperand {
				return 0, errBad
			}
			for len(ops) > 0 && ops[len(ops)-1] != '(' && prec(ops[len(ops)-1]) >= prec(c) {
				if err := apply(); err != nil {
					return 0, err
				}
			}
			ops = append(ops, c)
			i++
			wantOperand = true
		case c == '(':
			if !wantOperand {
				return 0, errBad
			}
			ops = append(ops, c)
			i++
		case c == ')':
			if wantOperand {
				return 0, errBad
			}
			for len(ops) > 0 && ops[len(ops)-1] != '(' {
				if err := apply(); err != nil {
					return 0, err
				}
			}
			if len(ops) == 0 {
				return 0, errBad
			}
			ops = ops[:len(ops)-1]
			i++
		default:
			return 0, errBad
		}
	}
	if wantOperand {
		return 0, errBad
	}
	for len(ops) > 0 {
		if ops[len(ops)-1] == '(' {
			return 0, errBad
		}
		if err := apply(); err != nil {
			return 0, err
		}
	}
	if len(vals) != 1 {
		return 0, errBad
	}
	return vals[0], nil
}

// ---- version 3: the buggy flat evaluator ----

// evalFlat evaluates strictly left to right: the development fault is the
// missing precedence handling, a deterministic bug whose failure region
// is any expression where a +/- precedes a *.
func evalFlat(_ context.Context, expr string) (int64, error) {
	expr = strings.ReplaceAll(expr, " ", "")
	pos := 0
	var eval func() (int64, error)
	eval = func() (int64, error) {
		var acc int64
		have := false
		pending := byte('+')
		for pos < len(expr) {
			c := expr[pos]
			switch {
			case c >= '0' && c <= '9':
				j := pos
				for j < len(expr) && expr[j] >= '0' && expr[j] <= '9' {
					j++
				}
				n, err := strconv.ParseInt(expr[pos:j], 10, 64)
				if err != nil {
					return 0, err
				}
				pos = j
				if !have {
					acc, have = n, true
					break
				}
				acc = combine(acc, n, pending)
			case c == '+' || c == '-' || c == '*':
				if !have {
					return 0, errBad
				}
				pending = c
				pos++
			case c == '(':
				pos++
				inner, err := eval()
				if err != nil {
					return 0, err
				}
				if pos >= len(expr) || expr[pos] != ')' {
					return 0, fmt.Errorf("missing ')': %w", errBad)
				}
				pos++
				if !have {
					acc, have = inner, true
					break
				}
				acc = combine(acc, inner, pending)
			case c == ')':
				if !have {
					return 0, errBad
				}
				return acc, nil
			default:
				return 0, errBad
			}
		}
		if !have {
			return 0, errBad
		}
		return acc, nil
	}
	v, err := eval()
	if err != nil {
		return 0, err
	}
	if pos != len(expr) {
		return 0, fmt.Errorf("trailing input: %w", errBad)
	}
	return v, nil
}

func combine(a, b int64, op byte) int64 {
	switch op {
	case '+':
		return a + b
	case '-':
		return a - b
	default:
		return a * b
	}
}

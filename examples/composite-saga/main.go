// Composite saga: fault-tolerant process composition with compensation.
//
// An order-processing pipeline composes the paper's web-service
// fault-tolerance constructs: a retried inventory reservation, a
// majority-voted price quote over three independent quote services, and a
// shipping step. When shipping fails irrecoverably, the compensation
// handlers of the completed steps undo their effects in reverse order.
// Run it with:
//
//	go run ./examples/composite-saga
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	redundancy "github.com/softwarefaults/redundancy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "composite-saga:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := redundancy.NewRand(1)

	// Step 1: inventory reservation against a flaky backend, healed by
	// the retry construct.
	reserved := 0
	reserve := redundancy.NewVariant("inventory", func(_ context.Context, qty int) (int, error) {
		if rng.Bool(0.4) {
			return 0, errors.New("inventory backend timeout")
		}
		reserved += qty
		return qty, nil
	})
	reserveStep, err := redundancy.RetryInvoke(reserve, 5)
	if err != nil {
		return err
	}

	// Step 2: price quote voted across three independent quote services,
	// one of which mis-prices.
	quote := func(name string, perUnit int) redundancy.Variant[int, int] {
		return redundancy.NewVariant(name, func(_ context.Context, qty int) (int, error) {
			return qty * perUnit, nil
		})
	}
	votedQuote, err := redundancy.VotingInvoke(redundancy.EqualOf[int](),
		quote("quotes-eu", 20), quote("quotes-us", 20), quote("quotes-buggy", 23))
	if err != nil {
		return err
	}

	// Step 3: shipping, hard down today.
	shipping := redundancy.NewVariant("shipping", func(_ context.Context, total int) (int, error) {
		return 0, errors.New("carrier API down")
	})
	shipStep, err := redundancy.RetryInvoke(shipping, 2)
	if err != nil {
		return err
	}

	process, err := redundancy.NewCompositeProcess("order",
		redundancy.ProcessStep[int]{
			Name:   "reserve",
			Invoke: reserveStep,
			Compensate: func(_ context.Context, qty int) error {
				reserved -= qty
				fmt.Printf("  compensation: released %d reserved unit(s)\n", qty)
				return nil
			},
		},
		redundancy.ProcessStep[int]{
			Name:   "quote",
			Invoke: votedQuote,
			Compensate: func(_ context.Context, _ int) error {
				fmt.Println("  compensation: voided the quote")
				return nil
			},
		},
		redundancy.ProcessStep[int]{Name: "ship", Invoke: shipStep},
	)
	if err != nil {
		return err
	}

	fmt.Println("executing order process (shipping carrier is down):")
	_, err = process.Execute(context.Background(), 3)
	if !errors.Is(err, redundancy.ErrProcessFailed) {
		return fmt.Errorf("expected a compensated process failure, got %v", err)
	}
	fmt.Printf("process failed as expected: %v\n", err)
	fmt.Printf("compensations run: %d; reserved units after undo: %d\n",
		process.CompensationsRun, reserved)

	// Same pipeline with shipping healthy.
	shippingOK := redundancy.NewVariant("shipping", func(_ context.Context, total int) (int, error) {
		return total, nil
	})
	shipOK, err := redundancy.RetryInvoke(shippingOK, 2)
	if err != nil {
		return err
	}
	process2, err := redundancy.NewCompositeProcess("order",
		redundancy.ProcessStep[int]{Name: "reserve", Invoke: reserveStep},
		redundancy.ProcessStep[int]{Name: "quote", Invoke: votedQuote},
		redundancy.ProcessStep[int]{Name: "ship", Invoke: shipOK},
	)
	if err != nil {
		return err
	}
	total, err := process2.Execute(context.Background(), 3)
	if err != nil {
		return err
	}
	fmt.Printf("\nretry with healthy carrier: order completed, voted total %d (buggy quote outvoted)\n", total)
	return nil
}

package redundancy_test

// The resilience acceptance test: a seeded chaos campaign of error
// bursts, hangs, and overload driven against SequentialAlternatives and
// ParallelSelection with the full policy stack attached. It checks the
// end-to-end claims: no wedged goroutines survive the campaign, the
// breaker opens on the Bohrbug variant within its threshold, shed
// requests fail fast, the degradation ladder serves the last-good value,
// and every policy action is visible in the observation snapshot and the
// campaign report.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
)

// chaosTestCampaign is the acceptance schedule: warmup, error burst,
// hangs, overload against the bulkhead, and a correlated burst that
// defeats every variant at once.
func chaosTestCampaign(seed uint64) *redundancy.ChaosCampaign {
	return &redundancy.ChaosCampaign{
		Name:    "acceptance",
		Seed:    seed,
		MaxHang: redundancy.ChaosDuration(500 * time.Millisecond),
		Phases: []redundancy.ChaosPhase{
			{Name: "warmup", Requests: 50},
			{Name: "error-burst", Requests: 100, ErrorBurst: 0.7},
			{Name: "hangs", Requests: 40, Hangs: 0.5},
			{Name: "overload", Requests: 150, Concurrency: 32,
				LatencySpike: 1, SpikeDelay: redundancy.ChaosDuration(2 * time.Millisecond)},
			{Name: "correlated", Requests: 60, ErrorBurst: 1, Correlated: true},
		},
	}
}

// chaosVariants builds one Bohrbug variant (fails every request) and two
// healthy alternates, all wrapped with the campaign's disturbances.
func chaosVariants(camp *redundancy.ChaosCampaign) []redundancy.Variant[int, int] {
	bohr := redundancy.NewVariant("bohr", func(_ context.Context, _ int) (int, error) {
		return 0, errors.New("bohrbug: deterministic failure")
	})
	alt1 := redundancy.NewVariant("alt-1", func(_ context.Context, x int) (int, error) {
		return x, nil
	})
	alt2 := redundancy.NewVariant("alt-2", func(_ context.Context, x int) (int, error) {
		return x, nil
	})
	return redundancy.ChaosVariants(camp, []redundancy.Variant[int, int]{bohr, alt1, alt2})
}

// policyStack is one executor's full resilience wiring for the test.
type policyStack struct {
	collector *redundancy.Collector
	breakers  *redundancy.Breakers
	bulkhead  *redundancy.Bulkhead
	ladder    *redundancy.FallbackLadder[int, int]
	opts      []redundancy.PatternOption
}

func newPolicyStack(seed uint64) *policyStack {
	s := &policyStack{
		collector: redundancy.NewCollector(),
		breakers: redundancy.NewBreakers(redundancy.BreakerConfig{
			ConsecutiveFailures: 5,
			OpenFor:             time.Hour, // no reprobe inside the run
		}),
		bulkhead: redundancy.NewBulkhead(redundancy.BulkheadConfig{
			MaxConcurrent: 4,
			MaxWaiting:    4,
		}),
		ladder: redundancy.NewFallbackLadder[int, int]().CacheLastGood(),
	}
	s.opts = []redundancy.PatternOption{
		redundancy.WithObserver(s.collector),
		redundancy.WithBreaker(s.breakers),
		redundancy.WithRetryPolicy(redundancy.RetryPolicy{
			BaseBackoff: 50 * time.Microsecond,
			MaxBackoff:  500 * time.Microsecond,
			Jitter:      0.5,
			Seed:        seed,
			Budget:      redundancy.NewRetryBudget(100, 1),
		}),
		redundancy.WithBulkhead(s.bulkhead),
		redundancy.WithDeadline(250*time.Millisecond, 10*time.Millisecond),
		redundancy.WithFallback(s.ladder),
	}
	return s
}

// verifyChaosRun checks the acceptance claims shared by both executors.
func verifyChaosRun(t *testing.T, s *policyStack, rep *redundancy.CampaignReport, camp *redundancy.ChaosCampaign, executor string) {
	t.Helper()

	// Outcome conservation: every offered request is accounted for.
	totals := rep.Totals()
	if got := totals.Succeeded + totals.Shed + totals.BreakerFast + totals.Degraded + totals.Failed; got != camp.Total() {
		t.Errorf("tally conservation: %d classified, %d offered", got, camp.Total())
	}

	// The breaker opened on the Bohrbug variant within its threshold and
	// stayed open (OpenFor exceeds the run).
	if got := s.breakers.State("bohr"); got != redundancy.BreakerOpen {
		t.Errorf("bohr breaker state = %v, want open", got)
	}
	if s.breakers.Opens() == 0 {
		t.Error("no breaker ever opened during the campaign")
	}

	// The ladder served the last-good value: the correlated phase fails
	// every variant of every request, so each of its requests was served
	// from the cache.
	var correlated redundancy.PhaseReport
	for _, p := range rep.Phases {
		if p.Name == "correlated" {
			correlated = p
		}
	}
	if correlated.Succeeded != correlated.Requests {
		t.Errorf("correlated phase: %d/%d served; every request should ride the last-good cache",
			correlated.Succeeded, correlated.Requests)
	}
	if s.ladder.CacheServes() < int64(correlated.Requests) {
		t.Errorf("ladder cache serves = %d, want >= %d", s.ladder.CacheServes(), correlated.Requests)
	}
	if last, ok := s.ladder.LastGood(); !ok {
		t.Error("ladder holds no last-good value after the campaign")
	} else if last < 0 || last >= camp.Total() {
		t.Errorf("last-good value %d outside the request range", last)
	}

	// Every policy action is visible in the observation snapshot carried
	// by the report.
	if len(rep.Observed) == 0 {
		t.Fatal("campaign report carries no observation snapshot")
	}
	snap := rep.Observed[0]
	if snap.Executor != executor {
		t.Errorf("snapshot executor = %q, want %q", snap.Executor, executor)
	}
	if snap.Requests == 0 || snap.BreakerOpens == 0 || snap.DegradedServes == 0 {
		t.Errorf("snapshot requests=%d breaker_opens=%d degraded_serves=%d; all must be nonzero",
			snap.Requests, snap.BreakerOpens, snap.DegradedServes)
	}
	if int64(snap.Shed) != s.bulkhead.Sheds() {
		t.Errorf("snapshot shed=%d, bulkhead counted %d", snap.Shed, s.bulkhead.Sheds())
	}
}

// runChaosAcceptance runs the campaign with a goroutine-leak check
// around it.
func runChaosAcceptance(t *testing.T, build func(s *policyStack, camp *redundancy.ChaosCampaign) redundancy.Executor[int, int], executor string) {
	t.Helper()
	before := runtime.NumGoroutine()

	camp := chaosTestCampaign(42)
	s := newPolicyStack(42)
	exec := build(s, camp)
	rep, err := redundancy.RunChaosCampaign(context.Background(), camp, exec,
		func(req uint64) int { return int(req) }, s.collector)
	if err != nil {
		t.Fatal(err)
	}
	verifyChaosRun(t, s, rep, camp, executor)

	// Zero wedged goroutines: hangs were bounded by the variant deadline
	// or the MaxHang guard, so the count settles back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by the campaign: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosCampaignSequentialAlternatives(t *testing.T) {
	runChaosAcceptance(t, func(s *policyStack, camp *redundancy.ChaosCampaign) redundancy.Executor[int, int] {
		sa, err := redundancy.NewSequentialAlternatives(
			chaosVariants(camp),
			func(_, _ int) error { return nil },
			nil,
			s.opts...)
		if err != nil {
			t.Fatal(err)
		}
		return sa
	}, "sequential-alternatives")
}

func TestChaosCampaignParallelSelection(t *testing.T) {
	runChaosAcceptance(t, func(s *policyStack, camp *redundancy.ChaosCampaign) redundancy.Executor[int, int] {
		accept := func(_, _ int) error { return nil }
		ps, err := redundancy.NewParallelSelection(
			chaosVariants(camp),
			[]redundancy.AcceptanceTest[int, int]{accept, accept, accept},
			s.opts...)
		if err != nil {
			t.Fatal(err)
		}
		// Re-enable disabled variants between requests so the breaker —
		// not permanent disablement — is the mechanism that stops the
		// executor from hammering the Bohrbug variant.
		return redundancy.ExecutorFunc[int, int](func(ctx context.Context, x int) (int, error) {
			ps.Reset()
			return ps.Execute(ctx, x)
		})
	}, "parallel-selection")
}

// TestShedRequestsFailFast pins the load-shedding latency claim in
// isolation: with the bulkhead full, an overload request is rejected in
// far less than a tenth of the request deadline.
func TestShedRequestsFailFast(t *testing.T) {
	const requestDeadline = 500 * time.Millisecond
	release := make(chan struct{})
	slow := redundancy.NewVariant("slow", func(ctx context.Context, x int) (int, error) {
		select {
		case <-release:
			return x, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	})
	bulkhead := redundancy.NewBulkhead(redundancy.BulkheadConfig{MaxConcurrent: 1, MaxWaiting: 0})
	s, err := redundancy.NewSingle(slow,
		redundancy.WithBulkhead(bulkhead),
		redundancy.WithDeadline(requestDeadline, 0))
	if err != nil {
		t.Fatal(err)
	}
	occupied := make(chan error, 1)
	go func() {
		_, err := s.Execute(context.Background(), 1)
		occupied <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for bulkhead.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the bulkhead")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	_, shedErr := s.Execute(context.Background(), 2)
	elapsed := time.Since(start)
	close(release)
	if err := <-occupied; err != nil {
		t.Fatalf("occupying request failed: %v", err)
	}
	if !errors.Is(shedErr, redundancy.ErrShedded) {
		t.Fatalf("overload Execute = %v, want ErrShedded", shedErr)
	}
	if elapsed >= requestDeadline/10 {
		t.Errorf("shed took %v, want < deadline/10 (%v)", elapsed, requestDeadline/10)
	}
}

// TestChaosCampaignDeterministicSchedule replays one campaign twice and
// checks the deterministic phases tally identically — the chaos
// schedule is a pure function of the seed, not of scheduling.
func TestChaosCampaignDeterministicSchedule(t *testing.T) {
	run := func() string {
		camp := chaosTestCampaign(7)
		s := newPolicyStack(7)
		sa, err := redundancy.NewSequentialAlternatives(
			chaosVariants(camp), func(_, _ int) error { return nil }, nil, s.opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := redundancy.RunChaosCampaign(context.Background(), camp, sa,
			func(req uint64) int { return int(req) }, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Overload outcomes depend on real scheduling; the sequential
		// phases must replay exactly.
		out := ""
		for _, p := range rep.Phases {
			if p.Name == "overload" || p.Name == "hangs" {
				continue
			}
			out += fmt.Sprintf("%s:%d/%d/%d/%d/%d;", p.Name,
				p.Succeeded, p.Shed, p.BreakerFast, p.Degraded, p.Failed)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("deterministic phases diverged between runs:\n%s\n%s", a, b)
	}
}

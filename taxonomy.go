package redundancy

import (
	"github.com/softwarefaults/redundancy/internal/taxonomy"
)

// Technique is one classified row of the paper's Table 2, extended with
// the implementing package and architectural pattern.
type Technique = taxonomy.Technique

// Techniques returns the seventeen technique families in the paper's
// Table 2 order, each positioned on the four taxonomy dimensions.
func Techniques() []Technique { return taxonomy.All() }

// TechniqueByName returns the technique with the given Table 2 name.
func TechniqueByName(name string) (Technique, error) { return taxonomy.ByName(name) }

// TechniquesByIntention returns the techniques with the given intention.
func TechniquesByIntention(i Intention) []Technique { return taxonomy.ByIntention(i) }

// TechniquesByType returns the techniques with the given redundancy type.
func TechniquesByType(rt RedundancyType) []Technique { return taxonomy.ByType(rt) }

// TechniquesByFaultClass returns the techniques addressing a fault class.
func TechniquesByFaultClass(fc FaultClass) []Technique { return taxonomy.ByFaultClass(fc) }

// TechniquesByPattern returns the techniques instantiating a pattern.
func TechniquesByPattern(p Pattern) []Technique { return taxonomy.ByPattern(p) }

// Table1 regenerates the paper's Table 1 (the classification scheme).
func Table1() *Table { return taxonomy.Table1() }

// Table2 regenerates the paper's Table 2 (all techniques classified).
func Table2() *Table { return taxonomy.Table2() }

// ImplementationTable renders the mapping from techniques to the
// implementing packages, patterns and experiments of this repository.
func ImplementationTable() *Table { return taxonomy.TableImplementation() }

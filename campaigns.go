package redundancy

// Experiment campaigns (internal/campaign): persisted, diffable,
// replayable experiment runs. Every sweep is stored as a ULID-keyed
// JSON document — resolved config, per-trial rows, derived aggregates —
// and stored runs can be listed, diffed against each other with noise
// bounds, and replayed to byte-identical aggregates. cmd/campaign is
// the CLI over this surface; cmd/faultsim records into the same store
// via -campaign-out. The Experiment* naming avoids colliding with the
// chaos-schedule Campaign types (ChaosCampaign, NetworkCampaign), which
// describe fault weather rather than persisted results.

import (
	"context"

	"github.com/softwarefaults/redundancy/internal/campaign"
)

type (
	// ExperimentStore is a directory of persisted runs, keyed by ULID.
	ExperimentStore = campaign.Store
	// ExperimentRun is one stored run document.
	ExperimentRun = campaign.Run
	// ExperimentSpec declares a parameter-grid sweep.
	ExperimentSpec = campaign.Spec
	// ExperimentConfig is one grid point's fully resolved configuration.
	ExperimentConfig = campaign.Config
	// ExperimentProgress streams per-trial progress during a sweep.
	ExperimentProgress = campaign.Progress
	// ExperimentDiffOptions tunes the regression gate's noise bounds.
	ExperimentDiffOptions = campaign.DiffOptions
	// ExperimentDiff is a metric-by-metric comparison of two runs.
	ExperimentDiff = campaign.DiffReport
	// ExperimentReplay is the verdict of re-executing a stored run.
	ExperimentReplay = campaign.ReplayReport
)

// Experiment-store errors.
var (
	ErrRunNotFound    = campaign.ErrRunNotFound
	ErrAmbiguousRun   = campaign.ErrAmbiguousRun
	ErrNotReplayable  = campaign.ErrNotReplayable
	ErrReplayMismatch = campaign.ErrReplayMismatch
	ErrBadExperiment  = campaign.ErrBadConfig
)

// OpenExperimentStore opens (creating if needed) a run store rooted at
// dir.
func OpenExperimentStore(dir string) (*ExperimentStore, error) { return campaign.Open(dir) }

// RunExperiment executes a sweep and returns the (unsaved) run
// document; onProgress may be nil.
func RunExperiment(ctx context.Context, spec *ExperimentSpec, onProgress func(ExperimentProgress)) (*ExperimentRun, error) {
	return campaign.Execute(ctx, spec, onProgress)
}

// DiffExperiments compares a candidate run against a baseline with
// noise bounds derived from the per-seed spread.
func DiffExperiments(base, cand *ExperimentRun, opts ExperimentDiffOptions) *ExperimentDiff {
	return campaign.Diff(base, cand, opts)
}

// ReplayExperiment re-executes a stored run's deterministic points and
// asserts byte-identical results; onProgress may be nil.
func ReplayExperiment(ctx context.Context, run *ExperimentRun, onProgress func(ExperimentProgress)) (*ExperimentReplay, error) {
	return campaign.Replay(ctx, run, onProgress)
}

package redundancy_test

// Experiment E29's acceptance test: gray-failure resilience. The same
// three-replica fleet runs twice against the same seeded fail-slow
// fault — the configured primary limps 20× through the middle of the
// run while heartbeating on time and answering correctly. Unmitigated,
// the fleet's p99 inflates by an order of magnitude and nothing else
// in the stack can even see the fault (the detector's miss and
// accusation tracks stay empty). With the mitigation stack live —
// hedged requests, latency-outlier ejection with probation, and the
// gray-failure rejuvenation policy — the limper is ejected quickly and
// precisely (TPR 1, FPR 0), the tail holds near baseline, the ejection
// floor never drops the rotation below two endpoints, and the cured
// limper is reinstated before the run ends. Nothing leaks a goroutine.

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
)

func TestE29GrayFailureResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("the gray-failure arms run for several wall-clock seconds")
	}
	before := runtime.NumGoroutine()

	unmitigated := runE29Arm(t, false)
	mitigated := runE29Arm(t, true)

	// Both arms stay perfectly available and correct: a gray failure is
	// not an outage, which is exactly why only the latency profile can
	// catch it.
	for arm, r := range map[string]e29Result{"unmitigated": unmitigated, "mitigated": mitigated} {
		if r.served != r.requests || r.wrong != 0 {
			t.Errorf("%s arm served %d/%d with %d wrong answers, want all correct", arm, r.served, r.requests, r.wrong)
		}
		// Individual heartbeats may blip under scheduler noise, but a
		// limper that acks and answers must never accumulate into an
		// accusation on the liveness track.
		if r.accusations != 0 {
			t.Errorf("%s arm: detector filed %d accusations (%d misses) against a limper that acks and answers", arm, r.accusations, r.misses)
		}
	}

	// The unmitigated arm proves the fault is real and invisible: the
	// tail inflates by an order of magnitude while the detector holds
	// every replica alive.
	if unmitigated.amplification < 10 {
		t.Errorf("unmitigated tail amplification = %.1f (p99 %v over baseline %v), want >= 10",
			unmitigated.amplification, unmitigated.runP99, unmitigated.baselineP99)
	}

	// The mitigated arm contains it: near-baseline tail, exact ejection.
	if mitigated.amplification > 2 {
		t.Errorf("mitigated tail amplification = %.1f (p99 %v over baseline %v), want <= 2",
			mitigated.amplification, mitigated.runP99, mitigated.baselineP99)
	}
	if !mitigated.limperEjected {
		t.Errorf("mitigated arm never ejected the limper (TPR 0, want >= 0.9)")
	}
	if mitigated.falseEjections != 0 {
		t.Errorf("mitigated arm ejected %d healthy replicas (FPR %.2f, want <= 0.05)",
			mitigated.falseEjections, float64(mitigated.falseEjections)/2)
	}
	if mitigated.floorViolations != 0 {
		t.Errorf("ejection dropped the rotation below MinKeep on %d routing decisions", mitigated.floorViolations)
	}
	if mitigated.rejuvenations < 1 {
		t.Errorf("the gray-failure policy never rejuvenated the limper")
	}
	if mitigated.reinstatements < 1 {
		t.Errorf("the cured limper was never reinstated")
	}
	if mitigated.limperEjectedAtEnd {
		t.Errorf("the limper is still ejected at run end despite recovering")
	}

	// Everything is shut down; demand the goroutine count recovered.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked across the gray-failure arms: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

// e29Result is one arm's outcome.
type e29Result struct {
	requests, served, wrong int
	baselineP99, runP99     time.Duration
	amplification           float64
	misses, accusations     int
	limperEjected           bool
	limperEjectedAtEnd      bool
	falseEjections          int
	floorViolations         int
	reinstatements          int
	rejuvenations           int
}

// runE29Arm stands up the fleet with the gray-failure mitigation stack
// either live or absent and drives the workload. Time constants are
// compressed relative to cmd/faultsim -gray to keep the test fast.
func runE29Arm(t *testing.T, grayOn bool) e29Result {
	t.Helper()
	// The 5ms base keeps scheduler and race-detector noise (an additive
	// multi-millisecond p99 tail) proportionally small, so the 20× limp
	// clears the 10× amplification bar under -race too.
	const (
		requests    = 700
		limpFrom    = 150
		limpUntil   = 350
		baseLatency = 5 * time.Millisecond
		// The hedge trigger sits well above the healthy hiccup tail so
		// only genuine limping produces censored (hedged-away) samples.
		hedgeAfter = 12 * time.Millisecond
		limpFactor = 20
	)
	collector := redundancy.NewCollector()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The fault gate reads the fleet request counter, not the limper's
	// own call count: ejection starves the limper of traffic, and it
	// must still recover on the schedule's clock.
	var fleetReq atomic.Int64
	gate := func() bool {
		i := fleetReq.Load()
		return i >= limpFrom && i < limpUntil
	}
	serve := func(name string) redundancy.Variant[int, int] {
		return redundancy.NewVariant(name, func(ctx context.Context, x int) (int, error) {
			timer := time.NewTimer(baseLatency)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			return 2 * x, nil
		})
	}
	limper := &redundancy.FailSlowVariant[int, int]{
		Base:        serve("r1"),
		Profile:     redundancy.SlowConstant,
		Factor:      limpFactor,
		BaseLatency: baseLatency,
		Seed:        7,
		Replica:     "r1",
		Gate:        gate,
	}
	variants := map[string]redundancy.Variant[int, int]{
		"r1": limper, // the configured primary limps — the worst case for static routing
		"r2": serve("r2"),
		"r3": serve("r3"),
	}

	network := redundancy.NewPipeNetwork()
	supervisor := redundancy.NewSupervisor(redundancy.SupervisorOptions{Name: "e29-fleet"})
	names := []string{"r1", "r2", "r3"}
	for _, name := range names {
		ln, err := network.Listen(name)
		if err != nil {
			t.Fatalf("listen %s: %v", name, err)
		}
		srv := redundancy.NewReplicaServer(variants[name], ln, redundancy.ReplicaServerConfig{Name: name})
		defer srv.Close()
		if err := supervisor.Add(srv.AsChild()); err != nil {
			t.Fatalf("add %s: %v", name, err)
		}
	}

	detector := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Name:         "e29-detector",
		Interval:     50 * time.Millisecond,
		Timeout:      80 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    6,
		Seed:         7,
	})
	for _, name := range names {
		detector.Watch(name, network.Dial(name))
	}
	if err := supervisor.Add(detector.AsChild()); err != nil {
		t.Fatalf("add detector: %v", err)
	}

	remoteCfg := redundancy.RemoteConfig{
		CallTimeout: 150 * time.Millisecond,
		Detector:    detector,
		Observer:    collector,
	}
	var ejector *redundancy.LatencyEjector
	if grayOn {
		ejector = redundancy.NewLatencyEjector(redundancy.LatencyEjectorConfig{
			Name:           "e29-ejector",
			Alpha:          0.5,
			Threshold:      2.5,
			MinSamples:     3,
			MinKeep:        2,
			ProbeEvery:     48,
			ReinstateAfter: 3,
			Seed:           7,
			Detector:       detector,
			Observer:       collector,
		})
		remoteCfg.HedgeAfter = hedgeAfter
		remoteCfg.MaxHedges = 2
		remoteCfg.Ejector = ejector
	}
	endpoints := make([]redundancy.ReplicaEndpoint, 0, len(names))
	for _, name := range names {
		endpoints = append(endpoints, redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)})
	}
	remote, err := redundancy.NewRemoteVariant[int, int]("fleet", remoteCfg, endpoints...)
	if err != nil {
		t.Fatalf("NewRemoteVariant: %v", err)
	}
	defer remote.Close()

	var rejuvenations atomic.Int64
	if grayOn {
		controller := redundancy.NewController(redundancy.ControllerConfig{
			Name:              "e29-controller",
			Tick:              40 * time.Millisecond,
			MaxActionsPerKind: 4,
			RateWindow:        2 * time.Second,
			Sources: redundancy.ControlSources{
				Detector: detector.States,
				Evidence: detector.Evidence,
			},
			Policies: []redundancy.ControlPolicy{
				redundancy.NewGrayFailurePolicy(redundancy.GrayFailurePolicyConfig{
					SlownessThreshold: 2,
					SettleTicks:       2,
					CooldownTicks:     25,
				}),
			},
			Actuators: map[string]redundancy.ControlActuator{
				redundancy.ControlActionRejuvenate: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
					if a.Target == "r1" {
						limper.Rejuvenate()
					}
					rejuvenations.Add(1)
					return a, nil
				},
			},
		})
		if err := supervisor.Add(controller.AsChild()); err != nil {
			t.Fatalf("add controller: %v", err)
		}
	}

	supDone := make(chan error, 1)
	go func() { supDone <- supervisor.Serve(ctx) }()

	res := e29Result{requests: requests}
	latencies := make([]time.Duration, 0, requests)
	for i := 0; i < requests; i++ {
		fleetReq.Store(int64(i))
		start := time.Now()
		got, err := remote.Execute(ctx, i)
		latencies = append(latencies, time.Since(start))
		switch {
		case err != nil:
		case got != 2*i:
			res.wrong++
		default:
			res.served++
		}
		if ejector != nil {
			// The floor invariant, checked on the live run: ejection may
			// never leave fewer than MinKeep endpoints in rotation.
			ejected := 0
			for _, ep := range ejector.Snapshot() {
				if ep.Ejected {
					ejected++
				}
			}
			if len(names)-ejected < 2 {
				res.floorViolations++
			}
		}
	}

	cancel()
	<-supDone

	// Baseline over every gate-closed request (warmup and tail): a p99
	// order statistic over a few hundred samples is far more stable
	// against isolated scheduler hiccups than one over the short warmup
	// phase alone.
	healthy := make([]time.Duration, 0, requests-(limpUntil-limpFrom))
	for i, d := range latencies {
		if i < limpFrom || i >= limpUntil {
			healthy = append(healthy, d)
		}
	}
	res.baselineP99 = e29P99(healthy)
	res.runP99 = e29P99(latencies)
	if res.baselineP99 > 0 {
		res.amplification = float64(res.runP99) / float64(res.baselineP99)
	}
	for _, name := range names {
		misses, accusations, _ := detector.Evidence(name)
		res.misses += misses
		res.accusations += accusations
	}
	if ejector != nil {
		for _, ep := range ejector.Snapshot() {
			switch {
			case ep.Endpoint == "r1" && ep.Ejections > 0:
				res.limperEjected = true
			case ep.Endpoint != "r1" && ep.Ejections > 0:
				res.falseEjections++
			}
			if ep.Endpoint == "r1" && ep.Ejected {
				res.limperEjectedAtEnd = true
			}
		}
		res.reinstatements = ejector.Reinstatements()
	}
	res.rejuvenations = int(rejuvenations.Load())
	if !grayOn && res.rejuvenations != 0 {
		t.Fatalf("unmitigated arm rejuvenated %d times with no controller", res.rejuvenations)
	}
	return res
}

// e29P99 returns the 99th-percentile latency of one phase's samples.
func e29P99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)*99/100]
}

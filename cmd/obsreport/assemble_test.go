package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/softwarefaults/redundancy/internal/obs/assemble"
)

// traceFile writes a minimal TraceRecorder-style export and returns its
// path. Each span string is raw JSON for one obs.Trace.
func traceFile(t *testing.T, name string, spans ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data := "[" + strings.Join(spans, ",") + "]"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAssembleEmptyForestFails(t *testing.T) {
	empty := traceFile(t, "empty.json")
	var out strings.Builder
	err := run([]string{"assemble", empty}, &out)
	if !errors.Is(err, assemble.ErrNoTraces) {
		t.Fatalf("empty assemble = %v, want ErrNoTraces", err)
	}
}

func TestAssembleDisjointSourcesFail(t *testing.T) {
	// Two exports whose TraceIDs never overlap: different runs.
	a := traceFile(t, "a.json",
		`{"id":1,"executor":"client","trace_id":10,"span_id":100}`)
	b := traceFile(t, "b.json",
		`{"id":2,"executor":"replica:r1","trace_id":20,"span_id":200,"parent_span_id":199}`)
	var out strings.Builder
	err := run([]string{"assemble", a, b}, &out)
	if !errors.Is(err, assemble.ErrDisjointSources) {
		t.Fatalf("disjoint assemble = %v, want ErrDisjointSources", err)
	}

	// The same two exports sharing a trace assemble fine.
	c := traceFile(t, "c.json",
		`{"id":2,"executor":"replica:r1","trace_id":10,"span_id":200,"parent_span_id":199}`)
	out.Reset()
	if err := run([]string{"assemble", a, c}, &out); err != nil {
		t.Fatalf("linked assemble = %v", err)
	}
	if !strings.Contains(out.String(), "cross-process trace assembly") {
		t.Fatalf("assemble output:\n%s", out.String())
	}
}

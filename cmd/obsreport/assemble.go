package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/softwarefaults/redundancy/internal/obs/assemble"
	"github.com/softwarefaults/redundancy/internal/obs/health"
)

// runAssemble implements the assemble subcommand: join per-process
// trace exports into causal trees and report cross-process linkage,
// attribution, and critical-path timing.
func runAssemble(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obsreport assemble", flag.ContinueOnError)
	var (
		minLinked = fs.Float64("min-linked", -1,
			"fail (exit non-zero) when the link ratio is below this fraction; negative disables")
		asJSON = fs.Bool("json", false, "emit the report as JSON instead of text")
		trees  = fs.Int("trees", 3, "sample causal trees to render")
		depth  = fs.Int("depth", 6, "maximum tree depth to render")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(),
			"usage: obsreport assemble [-min-linked r] [-json] [-trees n] [-depth n] <traces.json>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("expected at least one trace file")
	}
	sources := make([]assemble.Source, 0, fs.NArg())
	for _, name := range fs.Args() {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		traces, err := health.ReadTraces(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("decoding %s: %w", name, err)
		}
		sources = append(sources, assemble.Source{
			Name:   strings.TrimSuffix(filepath.Base(name), ".json"),
			Traces: traces,
		})
	}
	rep := assemble.Assemble(sources...)
	// An empty forest or exports from unrelated runs cannot be reported
	// on meaningfully — fail loudly (typed, non-zero exit) rather than
	// print a vacuous report a CI gate would wave through.
	if err := rep.Validate(); err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printAssembly(w, rep, *trees, *depth)
	}
	if *minLinked >= 0 {
		if rep.LinkRatio < *minLinked {
			return fmt.Errorf("link ratio %.4f below required %.4f (%d/%d accepted answers linked)",
				rep.LinkRatio, *minLinked, rep.Linked, rep.ClientRequests)
		}
	}
	return nil
}

func printAssembly(w io.Writer, rep *assemble.Report, trees, depth int) {
	fmt.Fprintf(w, "=== cross-process trace assembly ===\n")
	fmt.Fprintf(w, "spans: %d across %d traces, %d causal trees\n",
		rep.Spans, rep.TraceIDs, len(rep.Roots))
	fmt.Fprintf(w, "linkage: %d/%d accepted answers with a complete client->replica chain (%.1f%%)\n",
		rep.Linked, rep.ClientRequests, 100*rep.LinkRatio)
	if rep.Path.Requests > 0 {
		fmt.Fprintf(w, "critical path (mean over %d linked): client %v -> wire attempt %v -> replica %v\n",
			rep.Path.Requests, rep.Path.ClientLatency, rep.Path.AttemptLatency, rep.Path.ServerLatency)
	}
	if len(rep.Attribution) > 0 {
		fmt.Fprintln(w, "who served the accepted answer:")
		fmt.Fprintf(w, "  %-12s %8s %10s %10s %9s\n", "endpoint", "wins", "hedge-wins", "cancelled", "failures")
		for _, a := range rep.Attribution {
			fmt.Fprintf(w, "  %-12s %8d %10d %10d %9d\n",
				a.Endpoint, a.Wins, a.HedgeWins, a.Cancelled, a.Failures)
		}
	}
	if trees > 0 && len(rep.Roots) > 0 {
		// The most interesting trees first: deepest, then largest.
		roots := make([]*assemble.Span, len(rep.Roots))
		copy(roots, rep.Roots)
		for i := 0; i < len(roots) && i < trees; i++ {
			best := i
			for j := i + 1; j < len(roots); j++ {
				if roots[j].Depth() > roots[best].Depth() ||
					(roots[j].Depth() == roots[best].Depth() && roots[j].Size() > roots[best].Size()) {
					best = j
				}
			}
			roots[i], roots[best] = roots[best], roots[i]
		}
		if len(roots) > trees {
			roots = roots[:trees]
		}
		fmt.Fprintf(w, "sample causal trees (deepest first, max depth %d):\n", depth)
		for _, r := range roots {
			printTree(w, r, "  ", depth)
		}
	}
	fmt.Fprintln(w)
}

func printTree(w io.Writer, s *assemble.Span, indent string, depth int) {
	via := ""
	if s.ViaAttempt != 0 {
		via = " (via wire attempt)"
	}
	status := s.Trace.Outcome
	if status == "" {
		status = "?"
	}
	fmt.Fprintf(w, "%s%s/%s %s %v trace=%x span=%x%s\n",
		indent, s.Source, s.Trace.Executor, status, s.Trace.Latency, s.Trace.TraceID, s.Trace.SpanID, via)
	if depth <= 1 {
		if len(s.Children) > 0 {
			fmt.Fprintf(w, "%s  ... %d more\n", indent, len(s.Children))
		}
		return
	}
	for _, c := range s.Children {
		printTree(w, c, indent+"  ", depth-1)
	}
}

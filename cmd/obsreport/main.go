// Command obsreport is the forensic half of the health diagnosis layer:
// it ingests a TraceRecorder JSON export (written by the -trace-out flag
// of faultsim and experiments, by TraceRecorder.WriteJSON, or scraped
// from a /traces endpoint) and prints a report per executor — request
// and latency summary, per-variant execution timelines, failure
// clustering, and the suspected fault class of every variant, diagnosed
// with the same classifier that drives the live /healthz endpoint.
//
// The assemble subcommand joins the per-process trace exports of a
// distributed fleet (client plus replica servers, each with its own
// -trace-out file) into causal trees: it prints the link ratio (accepted
// answers with a complete client→replica span chain), the per-endpoint
// "who served the accepted answer" attribution table, critical-path
// timing, and a sample tree. With -min-linked it doubles as a CI check.
//
// Usage:
//
//	faultsim -pattern sequential -n 3 -p 0.2 -trace-out traces.json
//	obsreport traces.json
//	obsreport -width 100 -top 3 traces.json
//	cat traces.json | obsreport -
//	obsreport assemble traces.json traces-r1.json traces-r2.json traces-r3.json
//	obsreport assemble -min-linked 0.99 -json traces*.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/obs/health"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) > 0 && args[0] == "assemble" {
		return runAssemble(args[1:], w)
	}
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	var (
		width = fs.Int("width", 72, "timeline width in executions (older history is truncated)")
		top   = fs.Int("top", 5, "failure clusters to show per executor")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: obsreport [-width n] [-top n] <traces.json | ->")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one trace file argument (or - for stdin)")
	}
	if *width < 8 {
		*width = 8
	}
	if *top < 1 {
		*top = 1
	}

	var in io.Reader = os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	traces, err := health.ReadTraces(in)
	if err != nil {
		return fmt.Errorf("decoding traces: %w", err)
	}
	if len(traces) == 0 {
		fmt.Fprintln(w, "no traces")
		return nil
	}

	// Chronological order (request IDs are monotonic in-process).
	sort.Slice(traces, func(i, j int) bool { return traces[i].ID < traces[j].ID })

	// The same classifier as the live endpoint, replayed offline.
	engine := health.New(health.Config{})
	health.Replay(engine, traces)
	diagnosis := make(map[string]health.ExecutorHealth)
	for _, e := range engine.Snapshot() {
		diagnosis[e.Executor] = e
	}

	for _, name := range executorNames(traces) {
		report(w, name, filterExecutor(traces, name), diagnosis[name], *width, *top)
	}
	return nil
}

// executorNames returns the executors present, in order of appearance.
func executorNames(traces []obs.Trace) []string {
	var names []string
	seen := make(map[string]bool)
	for _, tr := range traces {
		if !seen[tr.Executor] {
			seen[tr.Executor] = true
			names = append(names, tr.Executor)
		}
	}
	return names
}

func filterExecutor(traces []obs.Trace, executor string) []obs.Trace {
	var out []obs.Trace
	for _, tr := range traces {
		if tr.Executor == executor {
			out = append(out, tr)
		}
	}
	return out
}

// variantSeries is the chronological outcome history of one variant:
// one rune per execution plus rejuvenation boundaries.
type variantSeries struct {
	name     string
	timeline []rune
}

func report(w io.Writer, executor string, traces []obs.Trace, diag health.ExecutorHealth, width, top int) {
	var (
		outcomes  = map[string]int{}
		latencies []time.Duration
		rollbacks int
		retries   int
		disabled  int
	)
	series := map[string]*variantSeries{}
	var order []string
	get := func(name string) *variantSeries {
		s, ok := series[name]
		if !ok {
			s = &variantSeries{name: name}
			series[name] = s
			order = append(order, name)
		}
		return s
	}
	clusters := map[string]int{}

	for _, tr := range traces {
		outcomes[tr.Outcome]++
		latencies = append(latencies, tr.Latency)
		hadRollback := false
		for _, ev := range tr.Events {
			switch ev.Kind {
			case "rollback":
				rollbacks++
				hadRollback = true
			case "retry":
				retries++
			case "component-disabled":
				disabled++
			}
		}
		for _, span := range tr.Variants {
			s := get(span.Variant)
			if hadRollback {
				// Mark the rejuvenation boundary once per variant.
				s.timeline = append(s.timeline, '|')
				hadRollback = false
			}
			if span.Err == "" {
				s.timeline = append(s.timeline, '.')
			} else {
				s.timeline = append(s.timeline, 'x')
				clusters[normalizeError(span.Err)]++
			}
		}
	}

	fmt.Fprintf(w, "=== executor %s ===\n", executor)
	fmt.Fprintf(w, "requests: %d (success %d, masked %d, failed %d)   score %.3f\n",
		len(traces), outcomes["success"], outcomes["masked"], outcomes["failed"], diag.Score)
	fmt.Fprintf(w, "latency: p50 %v  p99 %v   recovery: %d rollbacks, %d retries, %d disablements\n",
		quantile(latencies, 0.5), quantile(latencies, 0.99), rollbacks, retries, disabled)

	variantDiag := make(map[string]health.VariantHealth)
	for _, v := range diag.Variants {
		variantDiag[v.Variant] = v
	}

	fmt.Fprintln(w, "variant timelines (oldest -> newest; . pass, x fail, | rejuvenation):")
	for _, name := range order {
		tl := series[name].timeline
		if len(tl) > width {
			tl = tl[len(tl)-width:]
		}
		fmt.Fprintf(w, "  %-12s %s\n", name, string(tl))
	}

	fmt.Fprintln(w, "variant diagnosis:")
	for _, name := range order {
		v := variantDiag[name]
		execs := v.Executions
		failRate := 0.0
		if execs > 0 {
			failRate = float64(v.Failures) / float64(execs)
		}
		fmt.Fprintf(w, "  %-12s score %.3f  execs %-6d fail %5.1f%%  transitions %-4d maxstreak %-4d rejuv-recoveries %-3d class %s\n",
			name, v.Score, execs, 100*failRate, v.Transitions, v.MaxFailStreak, v.RejuvenationRecoveries, v.Class)
	}

	if len(clusters) > 0 {
		fmt.Fprintln(w, "failure clusters (error signatures, # masks digits):")
		type kv struct {
			sig string
			n   int
		}
		sorted := make([]kv, 0, len(clusters))
		for sig, n := range clusters {
			sorted = append(sorted, kv{sig, n})
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].n != sorted[j].n {
				return sorted[i].n > sorted[j].n
			}
			return sorted[i].sig < sorted[j].sig
		})
		if len(sorted) > top {
			fmt.Fprintf(w, "  (showing top %d of %d)\n", top, len(sorted))
			sorted = sorted[:top]
		}
		for _, c := range sorted {
			fmt.Fprintf(w, "  %6dx %s\n", c.n, c.sig)
		}
	}
	fmt.Fprintln(w)
}

// normalizeError collapses run-specific details (digits) so that
// repeated failures with varying ages, addresses or counters cluster
// under one signature.
func normalizeError(s string) string {
	var b strings.Builder
	lastHash := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			if !lastHash {
				b.WriteByte('#')
				lastHash = true
			}
			continue
		}
		lastHash = false
		b.WriteRune(r)
	}
	return b.String()
}

// quantile returns the q-quantile of the observed latencies.
func quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

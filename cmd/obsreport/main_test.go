package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// writeTraces simulates an executor with one intermittent and one
// deterministic variant and returns the path of the JSON export.
func writeTraces(t *testing.T) string {
	t.Helper()
	rec := obs.NewTraceRecorder(256)
	for i := 0; i < 60; i++ {
		req := obs.NextRequestID()
		rec.RequestStart("sequential-alternatives", req)
		var flakyErr error
		if i%4 == 0 {
			flakyErr = errors.New("connection reset by peer: attempt 4711")
		}
		rec.VariantEnd("sequential-alternatives", "flaky", req, time.Millisecond, flakyErr)
		rec.VariantEnd("sequential-alternatives", "dead", req, time.Millisecond,
			errors.New("unimplemented opcode 99"))
		rec.Adjudicated("sequential-alternatives", req, true, flakyErr != nil)
		out := obs.OutcomeSuccess
		if flakyErr != nil {
			out = obs.OutcomeMasked
		}
		rec.RequestEnd("sequential-alternatives", req, 2*time.Millisecond, out)
	}
	path := filepath.Join(t.TempDir(), "traces.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rec.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportDiagnosesFaultClasses(t *testing.T) {
	path := writeTraces(t)
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"=== executor sequential-alternatives ===",
		"heisenbug-like", // the intermittent variant
		"bohrbug-like",   // the deterministic variant
		"connection reset by peer: attempt #",
		"unimplemented opcode #",
		"variant timelines",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// The flaky variant's timeline interleaves passes and failures; the
	// dead variant's is all failures.
	if tl := timelineOf(report, "flaky"); !strings.Contains(tl, ".") || !strings.Contains(tl, "x") {
		t.Errorf("flaky timeline = %q, want mixed passes and failures", tl)
	}
	if tl := timelineOf(report, "dead"); strings.Contains(tl, ".") || !strings.Contains(tl, "x") {
		t.Errorf("dead timeline = %q, want failures only", tl)
	}
}

// timelineOf extracts the timeline string for one variant: the line in
// the timelines section whose second field is runes from the timeline
// alphabet only.
func timelineOf(report, variant string) string {
	for _, line := range strings.Split(report, "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 2 && fields[0] == variant &&
			strings.Trim(fields[1], ".x|") == "" {
			return fields[1]
		}
	}
	return ""
}

func TestReportWidthTruncatesTimeline(t *testing.T) {
	path := writeTraces(t)
	var out strings.Builder
	if err := run([]string{"-width", "10", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out.String(), "\n") {
		trim := strings.TrimSpace(line)
		if strings.HasPrefix(trim, "flaky") {
			fields := strings.Fields(trim)
			if len(fields) == 2 && len(fields[1]) > 10 {
				t.Errorf("timeline longer than width: %q", line)
			}
		}
	}
}

func TestReportTopLimitsClusters(t *testing.T) {
	path := writeTraces(t)
	var out strings.Builder
	if err := run([]string{"-top", "1", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "showing top 1 of 2") {
		t.Errorf("cluster cap not reported:\n%s", out.String())
	}
}

func TestReportStdin(t *testing.T) {
	path := writeTraces(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	old := os.Stdin
	os.Stdin = f
	defer func() { os.Stdin = old }()
	var out strings.Builder
	if err := run([]string{"-"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "=== executor") {
		t.Error("stdin report empty")
	}
}

func TestReportEmptyTraces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no traces") {
		t.Errorf("empty export output = %q", out.String())
	}
}

func TestReportErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"/does/not/exist.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestNormalizeError(t *testing.T) {
	if got := normalizeError("age 123 at 0x4f"); got != "age # at #x#f" {
		t.Errorf("normalizeError = %q", got)
	}
}

package main

import "testing"

func TestRunTables(t *testing.T) {
	for _, args := range [][]string{
		{"-table", "1"},
		{"-table", "2"},
		{"-table", "map"},
		{"-table", "all"},
		nil,
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
}

func TestRunUnknownTable(t *testing.T) {
	if err := run([]string{"-table", "9"}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// Command taxonomy regenerates the paper's taxonomy tables from the
// technique records encoded in the library.
//
// Usage:
//
//	taxonomy            # print Table 1, Table 2 and the implementation map
//	taxonomy -table 1   # only Table 1 (the classification scheme)
//	taxonomy -table 2   # only Table 2 (all seventeen techniques)
//	taxonomy -table map # only the technique-to-package map
package main

import (
	"flag"
	"fmt"
	"os"

	redundancy "github.com/softwarefaults/redundancy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "taxonomy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("taxonomy", flag.ContinueOnError)
	table := fs.String("table", "all", `which table to print: "1", "2", "map", or "all"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *table {
	case "1":
		fmt.Println(redundancy.Table1())
	case "2":
		fmt.Println(redundancy.Table2())
	case "map":
		fmt.Println(redundancy.ImplementationTable())
	case "all":
		fmt.Println(redundancy.Table1())
		fmt.Println(redundancy.Table2())
		fmt.Println(redundancy.ImplementationTable())
	default:
		return fmt.Errorf("unknown table %q (want 1, 2, map, or all)", *table)
	}
	return nil
}

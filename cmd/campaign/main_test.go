package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/softwarefaults/redundancy/internal/campaign"
)

// runCLI drives the command exactly as main does, capturing stdout.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

// sweep runs a tiny deterministic sweep into dir and returns the run ID.
func sweep(t *testing.T, dir string, extra ...string) string {
	t.Helper()
	args := append([]string{
		"run", "-store", dir, "-quiet",
		"-mode", "sim", "-pattern", "sequential",
		"-n", "2", "-p", "0.3", "-trials", "50", "-seeds", "1,2",
	}, extra...)
	out, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	id := strings.Fields(out)[0]
	if err := campaign.ValidateULID(id); err != nil {
		t.Fatalf("run printed %q, not a ULID: %v", id, err)
	}
	return id
}

func TestRunListShow(t *testing.T) {
	dir := t.TempDir()
	id := sweep(t, dir, "-name", "cli-unit")

	out, err := runCLI(t, "list", "-store", dir)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(out, id) || !strings.Contains(out, "cli-unit") {
		t.Fatalf("list output missing run:\n%s", out)
	}

	// show resolves a unique prefix.
	out, err = runCLI(t, "show", "-store", dir, id[:10])
	if err != nil {
		t.Fatalf("show: %v", err)
	}
	if !strings.Contains(out, "availability") || !strings.Contains(out, "mode=sim") {
		t.Fatalf("show output unexpected:\n%s", out)
	}

	out, err = runCLI(t, "show", "-store", dir, "-json", id)
	if err != nil {
		t.Fatalf("show -json: %v", err)
	}
	var doc campaign.Run
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("show -json not a run document: %v", err)
	}
	if doc.ID != id {
		t.Fatalf("show -json id = %q, want %q", doc.ID, id)
	}
}

func TestDiffCleanAndRegression(t *testing.T) {
	dir := t.TempDir()
	id1 := sweep(t, dir)
	id2 := sweep(t, dir)

	// Identical configs and seeds: clean diff, exit 0.
	out, err := runCLI(t, "diff", "-store", dir, id1, id2)
	if err != nil {
		t.Fatalf("clean diff errored: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 regression(s)") {
		t.Fatalf("clean diff output:\n%s", out)
	}

	// Tamper a copy of the candidate into a synthetic availability
	// regression and diff the file against the stored baseline.
	st, _ := campaign.Open(dir)
	cand, err := st.Load(id2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for pi := range cand.Points {
		p := &cand.Points[pi]
		for si := range p.Seeds {
			s := &p.Seeds[si]
			for ti := range s.Trials {
				if ti%2 == 0 {
					s.Trials[ti].Outcome = campaign.OutcomeFailed
				}
			}
			s.Aggregates.Deterministic = recompute(s.Trials)
		}
		var all []campaign.Trial
		for si := range p.Seeds {
			all = append(all, p.Seeds[si].Trials...)
		}
		p.Pooled.Deterministic = recompute(all)
	}
	regressed := filepath.Join(t.TempDir(), "regressed.json")
	data, _ := json.Marshal(cand)
	os.WriteFile(regressed, data, 0o644)

	out, err = runCLI(t, "diff", "-store", dir, id1, regressed)
	if err == nil {
		t.Fatalf("regressed diff exited clean:\n%s", out)
	}
	var gate *gateError
	if !errors.As(err, &gate) {
		t.Fatalf("regression error is not a gateError: %v", err)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("diff output missing REGRESSION:\n%s", out)
	}
}

// recompute rebuilds deterministic aggregates after tampering, keeping
// the document internally consistent so only the metric delta trips.
func recompute(trials []campaign.Trial) campaign.Deterministic {
	ok := 0
	outcomes := map[string]int{}
	for _, tr := range trials {
		outcomes[tr.Outcome]++
		if tr.Outcome == campaign.OutcomeOK {
			ok++
		}
	}
	return campaign.Deterministic{
		Trials:       len(trials),
		Outcomes:     outcomes,
		Availability: float64(ok) / float64(len(trials)),
	}
}

func TestReplayVerbs(t *testing.T) {
	dir := t.TempDir()
	id := sweep(t, dir)
	out, err := runCLI(t, "replay", "-store", dir, "-quiet", id)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 mismatched") {
		t.Fatalf("replay output:\n%s", out)
	}

	// Tamper the stored document in place: replay must trip the gate.
	st, _ := campaign.Open(dir)
	r, _ := st.Load(id)
	r.Points[0].Seeds[0].Trials[0].Outcome = campaign.OutcomeFailed
	data, _ := json.Marshal(r)
	os.WriteFile(filepath.Join(dir, id+".json"), data, 0o644)

	out, err = runCLI(t, "replay", "-store", dir, "-quiet", id)
	var gate *gateError
	if !errors.As(err, &gate) {
		t.Fatalf("tampered replay = %v, want gateError\n%s", err, out)
	}
	if !strings.Contains(out, "DIVERGED") {
		t.Fatalf("replay output missing divergence:\n%s", out)
	}
}

func TestRunWithSpecFileAndChaos(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(t.TempDir(), "spec.json")
	os.WriteFile(spec, []byte(`{
	 "name": "spec-chaos",
	 "mode": "chaos",
	 "n": [2],
	 "seeds": [5],
	 "chaos": {
	  "name": "smoke",
	  "phases": [
	   {"name": "calm", "requests": 10},
	   {"name": "burst", "requests": 20, "error_burst": 0.5}
	  ]
	 }
	}`), 0o644)
	out, err := runCLI(t, "run", "-store", dir, "-quiet", "-spec", spec)
	if err != nil {
		t.Fatalf("run -spec: %v", err)
	}
	id := strings.Fields(out)[0]
	show, err := runCLI(t, "show", "-store", dir, id)
	if err != nil {
		t.Fatalf("show: %v", err)
	}
	if !strings.Contains(show, "mode=chaos") || !strings.Contains(show, "chaos=smoke") {
		t.Fatalf("chaos run not recorded:\n%s", show)
	}
	// A chaos run from a spec file replays byte-identically.
	if _, err := runCLI(t, "replay", "-store", dir, "-quiet", id); err != nil {
		t.Fatalf("chaos replay: %v", err)
	}
}

func TestBenchDiffVerb(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cand := filepath.Join(dir, "cand.json")
	os.WriteFile(base, []byte(`[{"benchmark":"b","metric":"ns_per_op","value":100,"seed":0}]`), 0o644)
	os.WriteFile(cand, []byte(`[{"benchmark":"b","metric":"ns_per_op","value":105,"seed":0}]`), 0o644)
	if _, err := runCLI(t, "bench-diff", base, cand); err != nil {
		t.Fatalf("bench-diff within tolerance: %v", err)
	}
	os.WriteFile(cand, []byte(`[{"benchmark":"b","metric":"ns_per_op","value":200,"seed":0}]`), 0o644)
	_, err := runCLI(t, "bench-diff", base, cand)
	var gate *gateError
	if !errors.As(err, &gate) {
		t.Fatalf("bench-diff regression = %v, want gateError", err)
	}
}

func TestUnknownVerb(t *testing.T) {
	if _, err := runCLI(t, "bogus"); err == nil {
		t.Fatal("unknown verb accepted")
	}
}

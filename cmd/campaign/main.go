// Command campaign manages the persisted experiment store: it sweeps
// parameter grids across seeds, stores each run as a ULID-keyed JSON
// document, lists and shows stored runs, diffs two runs metric-by-metric
// with noise bounds derived from the per-seed spread, re-executes stored
// runs to assert deterministic results replay byte-identically, and
// diffs normalized benchmark baseline files.
//
// Usage:
//
//	campaign run -store .campaigns -mode sim -pattern sequential -n 2,3,5 -p 0.05,0.2 -seeds 1,2,3,4,5
//	campaign run -store .campaigns -spec scripts/campaign_smoke.json
//	campaign list -store .campaigns
//	campaign show -store .campaigns 01J4
//	campaign diff -store .campaigns 01J4 01J5
//	campaign replay -store .campaigns 01J5
//	campaign bench-diff BENCH_obs.json BENCH_obs.new.json
//
// diff and replay exit nonzero (code 2) on a significant regression or a
// replay divergence, so CI can gate on them directly. Run identifiers
// may be unique ULID prefixes (case-insensitive) or paths to run
// documents, so committed baseline files diff against stored runs
// transparently.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/softwarefaults/redundancy/internal/campaign"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "campaign:", err)
	var gate *gateError
	if errors.As(err, &gate) {
		os.Exit(2)
	}
	os.Exit(1)
}

// gateError marks failures that mean "the gate tripped" (exit 2) rather
// than "the tool broke" (exit 1).
type gateError struct{ err error }

func (e *gateError) Error() string { return e.err.Error() }
func (e *gateError) Unwrap() error { return e.err }

const defaultStore = ".campaigns"

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: campaign <run|list|show|diff|replay|bench-diff> [flags]")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "run":
		return cmdRun(rest, out)
	case "list":
		return cmdList(rest, out)
	case "show":
		return cmdShow(rest, out)
	case "diff":
		return cmdDiff(rest, out)
	case "replay":
		return cmdReplay(rest, out)
	case "bench-diff":
		return cmdBenchDiff(rest, out)
	case "-h", "-help", "--help", "help":
		return errors.New("verbs: run, list, show, diff, replay, bench-diff")
	default:
		return fmt.Errorf("unknown verb %q (want run, list, show, diff, replay, or bench-diff)", verb)
	}
}

// --- run ---

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("campaign run", flag.ContinueOnError)
	var (
		storeDir   = fs.String("store", defaultStore, "run store directory")
		specPath   = fs.String("spec", "", "JSON sweep spec file (flags below override its fields)")
		name       = fs.String("name", "", "run name for listings")
		note       = fs.String("note", "", "free-form note stored with the run")
		mode       = fs.String("mode", "", "workload mode: sim or chaos")
		patternF   = fs.String("pattern", "", "executor shape: single, sequential, selection, nvp")
		nList      = fs.String("n", "", "comma-separated redundancy degrees (grid axis)")
		pList      = fs.String("p", "", "comma-separated per-variant failure probabilities (grid axis)")
		rho        = fs.Float64("rho", -1, "failure correlation")
		bohr       = fs.Int("bohr", -1, "variant k fails deterministically (0 disables)")
		trials     = fs.Int("trials", -1, "per-seed trial count (sim mode)")
		seedList   = fs.String("seeds", "", "comma-separated seeds; every grid point runs once per seed")
		chaosSpec  = fs.String("chaos-spec", "", "JSON chaos campaign file (chaos mode)")
		workers    = fs.Int("workers", 0, "parallel (point, seed) workers (default GOMAXPROCS)")
		dropTrials = fs.Bool("drop-trials", false, "store aggregates only, no per-trial rows")
		observe    = fs.Bool("observe", true, "attach an observation collector and store executor snapshots")
		outPath    = fs.String("out", "", "also write the run document to this file")
		quiet      = fs.Bool("quiet", false, "suppress per-trial progress on stderr")
		jsonOut    = fs.Bool("json", false, "print the saved run summary as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := &campaign.Spec{}
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return fmt.Errorf("spec: %w", err)
		}
		if err := json.Unmarshal(data, spec); err != nil {
			return fmt.Errorf("spec %s: %w", *specPath, err)
		}
	}
	if *name != "" {
		spec.Name = *name
	}
	if *mode != "" {
		spec.Mode = *mode
	}
	if spec.Mode == "" {
		spec.Mode = "sim"
	}
	if *patternF != "" {
		spec.Pattern = *patternF
	}
	if spec.Pattern == "" && spec.Mode == "sim" {
		spec.Pattern = "sequential"
	}
	if *nList != "" {
		ns, err := parseInts(*nList)
		if err != nil {
			return fmt.Errorf("-n: %w", err)
		}
		spec.N = ns
	}
	if *pList != "" {
		ps, err := parseFloats(*pList)
		if err != nil {
			return fmt.Errorf("-p: %w", err)
		}
		spec.P = ps
	}
	if *rho >= 0 {
		spec.Rho = *rho
	}
	if *bohr >= 0 {
		spec.Bohr = *bohr
	}
	if *trials > 0 {
		spec.Trials = *trials
	}
	if spec.Trials == 0 && spec.Mode == "sim" {
		spec.Trials = 1000
	}
	if *seedList != "" {
		seeds, err := parseUints(*seedList)
		if err != nil {
			return fmt.Errorf("-seeds: %w", err)
		}
		spec.Seeds = seeds
	}
	if len(spec.Seeds) == 0 {
		spec.Seeds = []uint64{1, 2, 3}
	}
	if *chaosSpec != "" {
		data, err := os.ReadFile(*chaosSpec)
		if err != nil {
			return fmt.Errorf("chaos spec: %w", err)
		}
		camp, err := faultmodel.ParseCampaign(data)
		if err != nil {
			return err
		}
		spec.Chaos = camp
	}
	if *workers > 0 {
		spec.Workers = *workers
	}
	if *dropTrials {
		spec.DropTrials = true
	}
	spec.Observe = *observe

	var progress func(campaign.Progress)
	if !*quiet {
		progress = func(p campaign.Progress) {
			if p.PairDone {
				fmt.Fprintf(os.Stderr, "campaign: [%d/%d] %s seed=%d done (%d trials)\n",
					p.PairsDone, p.PairsTotal, p.Key, p.Seed, p.Total)
			} else {
				fmt.Fprintf(os.Stderr, "campaign: %s seed=%d %d/%d trials\r", p.Key, p.Seed, p.Done, p.Total)
			}
		}
	}
	runDoc, err := campaign.Execute(context.Background(), spec, progress)
	if err != nil {
		return err
	}
	runDoc.Note = *note
	st, err := campaign.Open(*storeDir)
	if err != nil {
		return err
	}
	id, err := st.Save(runDoc)
	if err != nil {
		return err
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(runDoc, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *jsonOut {
		return json.NewEncoder(out).Encode(map[string]any{
			"id": id, "points": len(runDoc.Points), "trials": runDoc.TotalTrials(),
			"availability": runDoc.Availability(),
		})
	}
	fmt.Fprintf(out, "%s  points=%d trials=%d availability=%.4f\n",
		id, len(runDoc.Points), runDoc.TotalTrials(), runDoc.Availability())
	return nil
}

// --- list / show ---

func cmdList(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("campaign list", flag.ContinueOnError)
	storeDir := fs.String("store", defaultStore, "run store directory")
	jsonOut := fs.Bool("json", false, "print JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := campaign.Open(*storeDir)
	if err != nil {
		return err
	}
	sums, err := st.List()
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(out).Encode(sums)
	}
	if len(sums) == 0 {
		fmt.Fprintf(out, "no runs in %s\n", *storeDir)
		return nil
	}
	fmt.Fprintf(out, "%-26s %-20s %-14s %-10s %6s %6s %8s %12s\n",
		"id", "created", "name", "modes", "points", "seeds", "trials", "availability")
	for _, s := range sums {
		fmt.Fprintf(out, "%-26s %-20s %-14s %-10s %6d %6d %8d %12.4f\n",
			s.ID, s.CreatedAt.Format("2006-01-02 15:04:05"), s.Name, s.Modes,
			s.Points, s.Seeds, s.Trials, s.Availability)
	}
	return nil
}

func cmdShow(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("campaign show", flag.ContinueOnError)
	storeDir := fs.String("store", defaultStore, "run store directory")
	jsonOut := fs.Bool("json", false, "print the full run document as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: campaign show [-store DIR] <run-id-or-file>")
	}
	r, err := loadRunArg(*storeDir, fs.Arg(0))
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		return enc.Encode(r)
	}
	fmt.Fprintf(out, "run %s\n", r.ID)
	fmt.Fprintf(out, "created: %s\n", r.CreatedAt.Format("2006-01-02 15:04:05 MST"))
	if r.Name != "" {
		fmt.Fprintf(out, "name:    %s\n", r.Name)
	}
	if r.Note != "" {
		fmt.Fprintf(out, "note:    %s\n", r.Note)
	}
	fmt.Fprintf(out, "build:   %s %s/%s", r.Build.GoVersion, r.Build.OS, r.Build.Arch)
	if r.Build.Commit != "" {
		fmt.Fprintf(out, " commit=%s", r.Build.Commit)
		if r.Build.Dirty {
			fmt.Fprint(out, "+dirty")
		}
	}
	fmt.Fprintln(out)
	for _, p := range r.Points {
		d := p.Pooled.Deterministic
		fmt.Fprintf(out, "\n[%s] seeds=%d\n", p.Config.Key(), len(p.Seeds))
		metrics := p.Pooled.Metrics()
		names := make([]string, 0, len(metrics))
		for k := range metrics {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(out, "  availability %.4f [%.4f, %.4f] over %d trials\n",
			d.Availability, d.AvailabilityLo, d.AvailabilityHi, d.Trials)
		for _, k := range names {
			if k == "availability" {
				continue
			}
			fmt.Fprintf(out, "  %-22s %.6g\n", k, metrics[k])
		}
		if len(d.FaultsInjected) > 0 {
			fmt.Fprintf(out, "  faults injected: %v (tpr=%.3f fpr=%.3f)\n", d.FaultsInjected, d.TPR, d.FPR)
		}
	}
	return nil
}

// --- diff / replay / bench-diff ---

func cmdDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("campaign diff", flag.ContinueOnError)
	var (
		storeDir   = fs.String("store", defaultStore, "run store directory")
		sigma      = fs.Float64("sigma", 3, "noise bound: baseline mean ± sigma·stddev across seeds")
		gateTiming = fs.Bool("gate-timing", false, "let wall-clock latency metrics count as regressions")
		metrics    = fs.String("metrics", "", "comma-separated metric allowlist (empty = full catalog)")
		jsonOut    = fs.Bool("json", false, "print the diff report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errors.New("usage: campaign diff [-store DIR] [-sigma S] [-gate-timing] [-metrics a,b] <base> <candidate>")
	}
	base, err := loadRunArg(*storeDir, fs.Arg(0))
	if err != nil {
		return fmt.Errorf("base: %w", err)
	}
	cand, err := loadRunArg(*storeDir, fs.Arg(1))
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	opts := campaign.DiffOptions{Sigma: *sigma, GateTiming: *gateTiming}
	if *metrics != "" {
		for _, name := range strings.Split(*metrics, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Metrics = append(opts.Metrics, name)
			}
		}
	}
	rep := campaign.Diff(base, cand, opts)
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Fprint(out, rep.String())
	}
	if rep.Regressed() {
		return &gateError{fmt.Errorf("%d regression(s), %d baseline point(s) missing", rep.Regressions, len(rep.MissingInCand))}
	}
	return nil
}

func cmdReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("campaign replay", flag.ContinueOnError)
	storeDir := fs.String("store", defaultStore, "run store directory")
	jsonOut := fs.Bool("json", false, "print the replay report as JSON")
	quiet := fs.Bool("quiet", false, "suppress progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: campaign replay [-store DIR] <run-id-or-file>")
	}
	r, err := loadRunArg(*storeDir, fs.Arg(0))
	if err != nil {
		return err
	}
	var progress func(campaign.Progress)
	if !*quiet {
		progress = func(p campaign.Progress) {
			fmt.Fprintf(os.Stderr, "campaign: replay %s seed=%d %d/%d trials\r", p.Key, p.Seed, p.Done, p.Total)
		}
	}
	rep, err := campaign.Replay(context.Background(), r, progress)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, p := range rep.Points {
			if p.Skipped {
				fmt.Fprintf(out, "[%s] skipped (nondeterministic)\n", p.Key)
				continue
			}
			for _, s := range p.Seeds {
				verdict := "byte-identical"
				if !s.Match {
					verdict = "DIVERGED: " + s.Detail
				}
				fmt.Fprintf(out, "[%s] seed=%d %s\n", p.Key, s.Seed, verdict)
			}
		}
		fmt.Fprintf(out, "%d matched, %d mismatched, %d skipped\n", rep.Matched, rep.Mismatched, rep.Skipped)
	}
	if err := rep.Err(); err != nil {
		return &gateError{err}
	}
	return nil
}

func cmdBenchDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("campaign bench-diff", flag.ContinueOnError)
	tolerance := fs.Float64("tolerance", 0.25, "fractional slack before a worse ratio is a regression")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errors.New("usage: campaign bench-diff [-tolerance T] <base.json> <candidate.json>")
	}
	base, err := campaign.ReadBenchFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cand, err := campaign.ReadBenchFile(fs.Arg(1))
	if err != nil {
		return err
	}
	rep := campaign.DiffBench(base, cand, *tolerance)
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Fprint(out, rep.String())
	}
	if rep.Regressions > 0 || len(rep.MissingInCand) > 0 {
		return &gateError{fmt.Errorf("%d bench regression(s), %d missing", rep.Regressions, len(rep.MissingInCand))}
	}
	return nil
}

// loadRunArg resolves a run argument: a path to a run document (if the
// file exists), else a ULID prefix in the store.
func loadRunArg(storeDir, arg string) (*campaign.Run, error) {
	if _, err := os.Stat(arg); err == nil {
		return campaign.ReadRunFile(arg)
	}
	st, err := campaign.Open(storeDir)
	if err != nil {
		return nil, err
	}
	id, err := st.Resolve(arg)
	if err != nil {
		return nil, err
	}
	return st.Load(id)
}

// --- flag list parsing ---

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Command experiments runs the reproduction experiments: one per table,
// figure, or quantitative claim of the paper (see DESIGN.md for the
// index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments -list          # list all experiments
//	experiments -run fig1      # run one experiment by id
//	experiments -all           # run every experiment
//	experiments -seed 42 -all  # choose the deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/softwarefaults/redundancy/internal/sim"
	"github.com/softwarefaults/redundancy/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list available experiments")
		id     = fs.String("run", "", "run the experiment with this id")
		all    = fs.Bool("all", false, "run every experiment")
		seed   = fs.Uint64("seed", 1, "deterministic seed")
		format = fs.String("format", "table", `output format: "table" or "csv"`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		tbl := stats.NewTable("Experiments", "index", "id", "artifact", "title")
		for _, e := range sim.All() {
			tbl.AddRow(e.Index, e.ID, e.Artifact, e.Title)
		}
		fmt.Println(tbl)
		return nil
	case *id != "":
		e, err := sim.ByID(*id)
		if err != nil {
			return err
		}
		return runOne(e, *seed, *format)
	case *all:
		for _, e := range sim.All() {
			if err := runOne(e, *seed, *format); err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -run <id>, or -all")
	}
}

func runOne(e sim.Experiment, seed uint64, format string) error {
	switch format {
	case "table":
		fmt.Printf("=== %s (%s) — %s ===\n", e.Index, e.ID, e.Artifact)
		fmt.Printf("%s\n\n", e.Title)
	case "csv":
		// CSV output stays machine-readable: a comment line per table.
	default:
		return fmt.Errorf("unknown format %q (want table or csv)", format)
	}
	tables, err := e.Run(seed)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if format == "csv" {
			fmt.Printf("# %s: %s\n%s\n", e.ID, t.Title(), t.CSV())
			continue
		}
		fmt.Println(t)
	}
	return nil
}

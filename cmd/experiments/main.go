// Command experiments runs the reproduction experiments: one per table,
// figure, or quantitative claim of the paper (see DESIGN.md for the
// index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments -list          # list all experiments
//	experiments -run fig1      # run one experiment by id
//	experiments -all           # run every experiment
//	experiments -seed 42 -all  # choose the deterministic seed
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/obs/health"
	"github.com/softwarefaults/redundancy/internal/sim"
	"github.com/softwarefaults/redundancy/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments")
		id       = fs.String("run", "", "run the experiment with this id")
		all      = fs.Bool("all", false, "run every experiment")
		seed     = fs.Uint64("seed", 1, "deterministic seed (echoed in the output for reproducibility)")
		format   = fs.String("format", "table", `output format: "table" or "csv"`)
		addr     = fs.String("metrics-addr", "", "serve live observation metrics on this address while experiments run (e.g. :9090; endpoints /metrics, /vars, /traces, /healthz)")
		traceOut = fs.String("trace-out", "", "write the recorded trace ring as JSON to this file at exit (analyze with obsreport)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *addr != "" || *traceOut != "" {
		collector := obs.NewCollector()
		traces := obs.NewTraceRecorder(1024)
		engine := health.New(health.Config{})
		sim.SetObserver(obs.Combine(collector, traces, engine))
		if *addr != "" {
			ln, err := net.Listen("tcp", *addr)
			if err != nil {
				return fmt.Errorf("metrics listener: %w", err)
			}
			defer ln.Close()
			srv := &http.Server{Handler: obs.Handler(collector, traces, engine.Extra())}
			go func() { _ = srv.Serve(ln) }()
			defer srv.Close()
			fmt.Printf("serving metrics on http://%s/metrics\n", ln.Addr())
		}
		if *traceOut != "" {
			defer func() { dumpTraces(traces, *traceOut) }()
		}
	}

	switch {
	case *list:
		tbl := stats.NewTable("Experiments", "index", "id", "artifact", "title")
		for _, e := range sim.All() {
			tbl.AddRow(e.Index, e.ID, e.Artifact, e.Title)
		}
		fmt.Println(tbl)
		return nil
	case *id != "":
		e, err := sim.ByID(*id)
		if err != nil {
			return err
		}
		echoSeed(*seed, *format)
		return runOne(e, *seed, *format)
	case *all:
		echoSeed(*seed, *format)
		for _, e := range sim.All() {
			if err := runOne(e, *seed, *format); err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -run <id>, or -all")
	}
}

// dumpTraces writes the trace ring as JSON; runs deferred, so failures
// are reported rather than returned.
func dumpTraces(traces *obs.TraceRecorder, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: trace-out:", err)
		return
	}
	defer f.Close()
	if err := traces.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: trace-out:", err)
		return
	}
	fmt.Printf("wrote traces to %s\n", path)
}

// echoSeed prints the seed in effect so every recorded run is
// reproducible from its output alone.
func echoSeed(seed uint64, format string) {
	if format == "csv" {
		fmt.Printf("# seed = %d\n", seed)
		return
	}
	fmt.Printf("seed = %d\n\n", seed)
}

func runOne(e sim.Experiment, seed uint64, format string) error {
	switch format {
	case "table":
		fmt.Printf("=== %s (%s) — %s ===\n", e.Index, e.ID, e.Artifact)
		fmt.Printf("%s\n\n", e.Title)
	case "csv":
		// CSV output stays machine-readable: a comment line per table.
	default:
		return fmt.Errorf("unknown format %q (want table or csv)", format)
	}
	tables, err := e.Run(seed)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if format == "csv" {
			fmt.Printf("# %s: %s\n%s\n", e.ID, t.Title(), t.CSV())
			continue
		}
		fmt.Println(t)
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/softwarefaults/redundancy/internal/obs/health"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("run(-list) = %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// quorum is the cheapest, fully deterministic experiment.
	if err := run([]string{"-run", "quorum"}); err != nil {
		t.Errorf("run(-run quorum) = %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no action should be an error")
	}
}

func TestRunSeedFlag(t *testing.T) {
	if err := run([]string{"-seed", "42", "-run", "quorum"}); err != nil {
		t.Errorf("seeded run = %v", err)
	}
}

func TestRunMetricsAddrFlag(t *testing.T) {
	// An ephemeral port: the run serves /metrics while the experiment
	// executes, then shuts the listener down on return.
	if err := run([]string{"-metrics-addr", "127.0.0.1:0", "-run", "quorum"}); err != nil {
		t.Errorf("metrics-addr run = %v", err)
	}
}

func TestRunMetricsAddrInvalid(t *testing.T) {
	if err := run([]string{"-metrics-addr", "not-an-address", "-run", "quorum"}); err == nil {
		t.Error("invalid metrics address accepted")
	}
}

func TestRunTraceOutFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.json")
	// fig1 exercises the simulated executors, so the ring records
	// traces (quorum is purely analytic).
	if err := run([]string{"-run", "fig1", "-trace-out", path}); err != nil {
		t.Fatalf("trace-out run = %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	defer f.Close()
	traces, err := health.ReadTraces(f)
	if err != nil {
		t.Fatalf("trace file not decodable: %v", err)
	}
	if len(traces) == 0 {
		t.Error("trace file holds no traces")
	}
}

func TestRunCSVFormat(t *testing.T) {
	if err := run([]string{"-run", "quorum", "-format", "csv"}); err != nil {
		t.Errorf("csv run = %v", err)
	}
	if err := run([]string{"-run", "quorum", "-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

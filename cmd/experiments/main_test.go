package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("run(-list) = %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// quorum is the cheapest, fully deterministic experiment.
	if err := run([]string{"-run", "quorum"}); err != nil {
		t.Errorf("run(-run quorum) = %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no action should be an error")
	}
}

func TestRunSeedFlag(t *testing.T) {
	if err := run([]string{"-seed", "42", "-run", "quorum"}); err != nil {
		t.Errorf("seeded run = %v", err)
	}
}

func TestRunCSVFormat(t *testing.T) {
	if err := run([]string{"-run", "quorum", "-format", "csv"}); err != nil {
		t.Errorf("csv run = %v", err)
	}
	if err := run([]string{"-run", "quorum", "-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

// Command faultsim is an ad-hoc Monte Carlo reliability calculator for
// redundant configurations: pick a pattern, the number of variants, the
// per-variant failure probability (and optionally a failure correlation),
// and compare the simulated reliability against the analytic model.
//
// Usage:
//
//	faultsim -pattern nvp -n 3 -p 0.05
//	faultsim -pattern nvp -n 5 -p 0.1 -rho 0.4
//	faultsim -pattern sequential -n 3 -p 0.2 -trials 100000
//
// With -metrics-addr the run serves the observation endpoints (/metrics,
// /vars, /traces, /healthz) while it executes; with -trace-out it dumps
// the trace ring as JSON at exit, ready for cmd/obsreport. -bohr k makes
// variant k fail deterministically — a Bohrbug to diagnose, next to the
// Heisenbug-like intermittent failures that -p injects.
//
// With -chaos the tool runs a deterministic chaos campaign instead of the
// Monte Carlo estimate: the selected pattern executor is built with the
// full resilience-policy stack (circuit breakers, budgeted backed-off
// retries, a bulkhead, default deadlines, and a last-good degradation
// ladder) and driven through a seeded schedule of error bursts, latency
// spikes, hangs, overload, and correlated failures. -chaos-spec loads the
// schedule from a JSON file (see faultmodel.Campaign); without it a
// built-in schedule derived from -seed runs. -chaos-out writes the
// campaign report as JSON.
//
//	faultsim -chaos -pattern sequential -n 3 -bohr 1
//	faultsim -chaos -chaos-spec campaign.json -chaos-out report.json
//
// With -crash the tool demonstrates crash-safe recovery: a supervised
// worker applies a workload to a durable WAL-backed checkpoint store
// while a seeded schedule kills it mid-stream with panics and crash
// errors. The supervisor restarts it, the store replays the log, and
// the run reports restart counts, measured recovery time (MTTR), and
// whether any acknowledged write was lost (it must never be). -wal-dir
// persists the store across invocations — run it twice to watch the
// second process resume from the first one's acknowledged state.
//
//	faultsim -crash
//	faultsim -crash -wal-dir /tmp/faultsim-wal -seed 7
//
// With -net the tool stands up a three-replica fleet behind the framed
// RPC transport — supervised accept loops, heartbeat failure detector,
// hedged remote variants under a parallel-selection executor — and
// drives a workload over a clean in-memory network. -net-chaos runs the
// same fleet with every dial path wrapped in a seeded network-fault
// campaign (partition of one replica, packet loss, duplication,
// reordering, latency spikes, connection resets) and tabulates
// availability, tail latency, hedge wins, and the detector's verdicts.
// -net-spec loads the campaign from a JSON file (see
// faultmodel.NetworkCampaign); without it a built-in schedule derived
// from -seed partitions replica r2.
//
//	faultsim -net
//	faultsim -net-chaos -seed 7
//	faultsim -net-chaos -net-spec campaign.json
//
// With -adversary the tool stands up a 2k+1 quorum fleet (-replicas n,
// default 5) where the named number of replicas are Byzantine liars —
// they execute correctly, ack every heartbeat, and return a plausible
// wrong answer according to the chosen strategy (always, intermittent,
// or collude: same inputs, same lie). A QuorumVariant majority-votes
// every request across the whole fleet; the run reports availability,
// wrong answers served (must be zero while liars <= k), outvoted
// replies, and the failure detector's conviction TPR/FPR against the
// seeded ground truth.
//
//	faultsim -adversary always:1
//	faultsim -adversary collude:2 -replicas 5 -seed 7
//	faultsim -adversary intermittent:2 -campaign-out runs/
//
// With -control the tool runs the autonomic control-plane experiment
// (E28): a three-replica fleet that accumulates an aging replica, an
// outright process death, and a deterministic bohrbug over the course
// of the workload. -control on closes the loop — the controller
// replaces the dead replica, rejuvenates the aging one, substitutes the
// buggy one, and retunes the tail knobs; -control off runs the
// identical fleet with the controller frozen behind its kill switch, so
// the pair demonstrates exactly what the loop buys.
//
//	faultsim -control on
//	faultsim -control off -seed 7 -campaign-out runs/
//
// With -gray the tool runs the gray-failure experiment (E29): a
// three-replica fleet whose configured primary turns fail-slow mid-run
// — heartbeats ack on time, every answer is correct, but service is
// 20× slower. -gray off runs the unmitigated arm (no hedging, no
// ejector: the fleet p99 inflates by the full limp factor); -gray on
// runs the same fault against the mitigation stack — hedged requests,
// latency-outlier ejection with probation and reinstatement, and the
// gray-failure rejuvenation policy. -gray-spec picks the limp profile
// (see faultmodel.ParseFailSlowSpec).
//
//	faultsim -gray off
//	faultsim -gray on -gray-spec constant:20 -seed 7 -campaign-out runs/
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
	"github.com/softwarefaults/redundancy/internal/campaign"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/nvp"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	var (
		patternName = fs.String("pattern", "nvp", "pattern: single, nvp, selection, sequential")
		n           = fs.Int("n", 3, "number of variants")
		p           = fs.Float64("p", 0.05, "per-variant failure probability")
		rho         = fs.Float64("rho", 0, "failure correlation (nvp only)")
		trials      = fs.Int("trials", 50000, "Monte Carlo trials")
		seed        = fs.Uint64("seed", 1, "deterministic seed (echoed in the output for reproducibility)")
		metricsAddr = fs.String("metrics-addr", "", "serve live observation metrics on this address while the simulation runs (e.g. :9090; endpoints /metrics, /vars, /traces, /healthz, /slo)")
		pprofFlag   = fs.Bool("pprof", false, "also mount net/http/pprof profiling endpoints under /debug/pprof/ on -metrics-addr")
		traceOut    = fs.String("trace-out", "", "write the recorded trace ring as JSON to this file at exit (analyze with obsreport)")
		bohr        = fs.Int("bohr", 0, "make variant k fail deterministically (detected patterns only; a Bohrbug for the diagnosis layer to label)")
		chaos       = fs.Bool("chaos", false, "run a deterministic chaos campaign against the resilience-hardened executor instead of the Monte Carlo estimate")
		chaosSpec   = fs.String("chaos-spec", "", "JSON campaign spec file for -chaos (default: built-in schedule derived from -seed)")
		chaosOut    = fs.String("chaos-out", "", "write the -chaos campaign report as JSON to this file")
		crash       = fs.Bool("crash", false, "run the crash-recovery demo: a supervised WAL-backed worker killed mid-workload by a seeded schedule")
		walDir      = fs.String("wal-dir", "", "durable store directory for -crash (default: a temp dir discarded at exit; set it to persist state across runs)")
		netMode     = fs.Bool("net", false, "run the distributed replica fleet over a clean in-memory network")
		netChaos    = fs.Bool("net-chaos", false, "run the distributed replica fleet under a seeded network-fault campaign")
		netSpec     = fs.String("net-spec", "", "JSON network campaign spec file for -net-chaos (default: built-in schedule derived from -seed)")
		netRequests = fs.Int("net-requests", 1500, "workload size for -net (ignored by -net-chaos, which runs the campaign's wall-clock schedule)")
		adversary   = fs.String("adversary", "", "run the Byzantine quorum fleet under a lying-replica adversary: strategy[:count] with strategy always, intermittent, or collude (e.g. -adversary collude:2)")
		replicas    = fs.Int("replicas", 5, "quorum fleet size for -adversary (needs 2k+1 replicas to tolerate k liars)")
		control     = fs.String("control", "", "run the autonomic control-plane fleet (E28): 'on' closes the loop, 'off' runs the same fleet with the controller frozen by the kill switch")
		gray        = fs.String("gray", "", "run the gray-failure fleet (E29): 'on' arms the mitigation stack (hedging, latency-outlier ejection, rejuvenation policy), 'off' runs the same fail-slow fault unmitigated")
		graySpec    = fs.String("gray-spec", "constant:20", "fail-slow fault spec for -gray: profile[:factor] with profile constant, progressive, or bursts")

		campaignOut  = fs.String("campaign-out", "", "record this invocation as a run document in this experiment-store directory (inspect with cmd/campaign: list, show, diff, replay)")
		campaignName = fs.String("campaign-name", "", "run name stored with -campaign-out")
		campaignRows = fs.Bool("campaign-trials", true, "store per-trial rows with -campaign-out (false: aggregates only, for committed baselines)")
		configOut    = fs.String("config-out", "", "write the fully resolved run configuration as JSON to this file and continue")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *p < 0 || *p > 1 || *rho < 0 || *rho > 1 || *trials < 1 {
		return fmt.Errorf("invalid parameters: n=%d p=%f rho=%f trials=%d", *n, *p, *rho, *trials)
	}
	if *bohr < 0 || *bohr > *n {
		return fmt.Errorf("invalid -bohr %d: want a variant index in 1..%d (0 disables)", *bohr, *n)
	}

	// Span IDs derive from the run seed so repeated runs export
	// byte-comparable trace files.
	redundancy.SeedTraceIDs(*seed)

	var observer redundancy.Observer
	if *metricsAddr != "" || *traceOut != "" {
		collector := redundancy.NewCollector()
		traces := redundancy.NewTraceRecorder(1024)
		engine := redundancy.NewHealthEngine(redundancy.HealthConfig{})
		slo := redundancy.NewSLOTracker(redundancy.SLOConfig{})
		engine.AttachSLO(slo) // burn-rate breaches degrade /healthz
		observer = redundancy.CombineObservers(collector, traces, engine, slo)
		if *metricsAddr != "" {
			ln, err := net.Listen("tcp", *metricsAddr)
			if err != nil {
				return fmt.Errorf("metrics listener: %w", err)
			}
			defer ln.Close()
			extras := []redundancy.ObservationEndpoint{engine.Extra(), slo.Extra()}
			if *pprofFlag {
				extras = append(extras, redundancy.PprofEndpoints()...)
			}
			srv := &http.Server{Handler: redundancy.ObservationHandler(collector, traces, extras...)}
			go func() { _ = srv.Serve(ln) }()
			defer srv.Close()
			fmt.Printf("serving metrics on http://%s/metrics\n", ln.Addr())
		}
		if *traceOut != "" {
			defer func() { dumpTraces(traces, *traceOut) }()
		}
	} else if *pprofFlag {
		return fmt.Errorf("-pprof requires -metrics-addr")
	}

	set := recorderSettings{
		storeDir:   *campaignOut,
		name:       *campaignName,
		configOut:  *configOut,
		dropTrials: !*campaignRows,
	}

	if *crash {
		if set.active() {
			return fmt.Errorf("-campaign-out/-config-out do not support -crash (its unit of work is a restart, not a request)")
		}
		return runCrash(*seed, *walDir, observer)
	}

	if *adversary != "" {
		strategy, liarCount, err := redundancy.ParseAdversarySpec(*adversary)
		if err != nil {
			return err
		}
		if *replicas < 3 {
			return fmt.Errorf("invalid -replicas %d: a quorum needs at least 3", *replicas)
		}
		if *netRequests < 1 {
			return fmt.Errorf("invalid -net-requests %d", *netRequests)
		}
		quorumCfg := resolvedQuorumConfig(*seed, *replicas, *adversary, *netRequests)
		if *configOut != "" {
			if err := writeConfigOut(*configOut, quorumCfg); err != nil {
				return err
			}
		}
		var rec *runRecorder
		if *campaignOut != "" {
			rec = newRunRecorder(quorumCfg.Seed)
		}
		return runQuorum(*seed, *replicas, strategy, liarCount, *netRequests, observer, rec, set, quorumCfg)
	}

	if *control != "" {
		if *control != "on" && *control != "off" {
			return fmt.Errorf("invalid -control %q: want on or off", *control)
		}
		if *netRequests < 1 {
			return fmt.Errorf("invalid -net-requests %d", *netRequests)
		}
		controlCfg := resolvedControlConfig(*seed, *netRequests, *control == "on")
		if *configOut != "" {
			if err := writeConfigOut(*configOut, controlCfg); err != nil {
				return err
			}
		}
		var rec *runRecorder
		if *campaignOut != "" {
			rec = newRunRecorder(controlCfg.Seed)
		}
		return runControl(*seed, *netRequests, *control == "on", observer, rec, set, controlCfg)
	}

	if *gray != "" {
		if *gray != "on" && *gray != "off" {
			return fmt.Errorf("invalid -gray %q: want on or off", *gray)
		}
		if *netRequests < 1 {
			return fmt.Errorf("invalid -net-requests %d", *netRequests)
		}
		grayCfg := resolvedGrayConfig(*seed, *netRequests, *gray == "on", *graySpec)
		if *configOut != "" {
			if err := writeConfigOut(*configOut, grayCfg); err != nil {
				return err
			}
		}
		var rec *runRecorder
		if *campaignOut != "" {
			rec = newRunRecorder(grayCfg.Seed)
		}
		return runGray(*seed, *netRequests, *gray == "on", *graySpec, observer, rec, set, grayCfg)
	}

	if *netMode || *netChaos {
		var camp *redundancy.NetworkCampaign
		if *netChaos {
			if *netSpec != "" {
				data, err := os.ReadFile(*netSpec)
				if err != nil {
					return fmt.Errorf("net spec: %w", err)
				}
				if camp, err = redundancy.ParseNetworkCampaign(data); err != nil {
					return err
				}
			} else {
				camp = redundancy.DefaultNetworkCampaign(*seed, netVictim)
			}
		}
		if *netRequests < 1 {
			return fmt.Errorf("invalid -net-requests %d", *netRequests)
		}
		netCfg := resolvedNetConfig(*seed, camp, *netRequests)
		if *configOut != "" {
			if err := writeConfigOut(*configOut, netCfg); err != nil {
				return err
			}
		}
		var rec *runRecorder
		if *campaignOut != "" {
			rec = newRunRecorder(netCfg.Seed)
		}
		return runNet(*seed, camp, *netRequests, observer, *traceOut, rec, set, netCfg)
	}

	if *chaos {
		var camp *faultmodel.Campaign
		if *chaosSpec != "" {
			data, err := os.ReadFile(*chaosSpec)
			if err != nil {
				return fmt.Errorf("chaos spec: %w", err)
			}
			if camp, err = faultmodel.ParseCampaign(data); err != nil {
				return err
			}
		} else {
			camp = faultmodel.DefaultCampaign(*seed)
		}
		chaosCfg := resolvedChaosConfig(*patternName, *n, *bohr, camp)
		if *configOut != "" {
			if err := writeConfigOut(*configOut, chaosCfg); err != nil {
				return err
			}
		}
		var rec *runRecorder
		if *campaignOut != "" {
			rec = newRunRecorder(chaosCfg.Seed)
		}
		return runChaos(*patternName, *n, *bohr, camp, *chaosOut, observer, rec, set, chaosCfg)
	}

	simCfg := resolvedSimConfig(*patternName, *n, *p, *rho, *trials, *seed, *bohr)
	if *configOut != "" {
		if err := writeConfigOut(*configOut, simCfg); err != nil {
			return err
		}
	}
	var rec *runRecorder
	if *campaignOut != "" {
		rec = newRunRecorder(simCfg.Seed)
	}

	tbl := stats.NewTable(
		fmt.Sprintf("Reliability of %s (n=%d, p=%.3f, rho=%.2f, %d trials)",
			*patternName, *n, *p, *rho, *trials),
		"measure", "value")
	tbl.AddRow("seed", *seed)

	switch *patternName {
	case "nvp":
		law := faultmodel.CorrelatedFailures{N: *n, P: *p, Rho: *rho}
		ens, err := nvp.NewEnsemble(law, xrand.New(*seed))
		if err != nil {
			return err
		}
		ok := 0
		for i := 0; i < *trials; i++ {
			start := time.Now()
			_, correct := ens.Round(1)
			if correct {
				ok++
			}
			if rec != nil {
				rec.begin(i)
				var roundErr error
				if !correct {
					roundErr = fmt.Errorf("voted output incorrect")
				}
				rec.finish(i, roundErr, time.Since(start))
			}
		}
		prop, err := stats.NewProportion(ok, *trials)
		if err != nil {
			return err
		}
		tbl.AddRow("simulated reliability", prop.Estimate)
		tbl.AddRow("95% interval", fmt.Sprintf("[%.4f, %.4f]", prop.Lo, prop.Hi))
		tbl.AddRow("analytic reliability", nvp.ReliabilityCorrelated(*n, *p, *rho))
		tbl.AddRow("single-version baseline", 1-*p)
		tbl.AddRow("tolerable faults k", redundancy.TolerableFaults(*n))
	case "single", "selection", "sequential":
		ok, execs, err := simulateDetected(*patternName, *n, *p, *trials, *seed, *bohr, observer, rec)
		if err != nil {
			return err
		}
		prop, err := stats.NewProportion(ok, *trials)
		if err != nil {
			return err
		}
		tbl.AddRow("simulated reliability", prop.Estimate)
		tbl.AddRow("95% interval", fmt.Sprintf("[%.4f, %.4f]", prop.Lo, prop.Hi))
		analytic := 1 - *p
		if *patternName != "single" {
			analytic = 1 - pow(*p, *n)
		}
		tbl.AddRow("analytic reliability", analytic)
		tbl.AddRow("mean executions/request", execs)
	default:
		return fmt.Errorf("unknown pattern %q", *patternName)
	}
	fmt.Println(tbl)
	if rec != nil {
		return saveRecordedRun(set, simCfg, rec, nil, nil)
	}
	return nil
}

// simulateDetected runs the detected-failure patterns (failures are
// errors, not wrong values). A non-nil observer is attached to the
// executor so a live metrics endpoint can watch the run. Variant bohr
// (1-based; 0 disables) fails deterministically instead of randomly.
// A non-nil rec records per-trial rows (-campaign-out).
func simulateDetected(patternName string, n int, p float64, trials int, seed uint64, bohr int, observer redundancy.Observer, rec *runRecorder) (ok int, execsPerReq float64, err error) {
	master := xrand.New(seed)
	mk := func(i int) redundancy.Variant[int, int] {
		rng := master.Split()
		deterministic := i == bohr
		v := redundancy.NewVariant(fmt.Sprintf("v%d", i), func(_ context.Context, x int) (int, error) {
			if deterministic {
				if rec != nil {
					rec.noteFaultHere("bohr")
				}
				return 0, fmt.Errorf("deterministic failure")
			}
			if rng.Bool(p) {
				if rec != nil {
					rec.noteFaultHere("heisen")
				}
				return 0, fmt.Errorf("variant failure")
			}
			return x, nil
		})
		if rec != nil {
			return spyVariant{v, rec}
		}
		return v
	}
	accept := func(_ int, _ int) error { return nil }
	var (
		m    redundancy.Metrics
		exec redundancy.Executor[int, int]
	)
	opts := []redundancy.PatternOption{redundancy.WithMetrics(&m)}
	if observer != nil {
		opts = append(opts, redundancy.WithObserver(observer))
	}
	switch patternName {
	case "single":
		exec, err = redundancy.NewSingle(mk(1), opts...)
	case "sequential":
		vs := make([]redundancy.Variant[int, int], n)
		for i := range vs {
			vs[i] = mk(i + 1)
		}
		exec, err = redundancy.NewSequentialAlternatives(vs, accept, nil, opts...)
	case "selection":
		vs := make([]redundancy.Variant[int, int], n)
		tests := make([]redundancy.AcceptanceTest[int, int], n)
		for i := range vs {
			vs[i] = mk(i + 1)
			tests[i] = accept
		}
		var ps *redundancy.ParallelSelection[int, int]
		ps, err = redundancy.NewParallelSelection(vs, tests, opts...)
		if err == nil {
			exec = redundancy.ExecutorFunc[int, int](func(ctx context.Context, x int) (int, error) {
				defer ps.Reset() // failures are transient in this model
				return ps.Execute(ctx, x)
			})
		}
	}
	if err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	for i := 0; i < trials; i++ {
		if rec != nil {
			rec.begin(i)
		}
		start := time.Now()
		_, execErr := exec.Execute(ctx, i)
		if execErr == nil {
			ok++
		}
		if rec != nil {
			rec.finish(i, execErr, time.Since(start))
		}
	}
	return ok, m.Snapshot().ExecutionsPerRequest(), nil
}

// runChaos drives a resilience-hardened executor through the campaign.
// Variants succeed unless the campaign disturbs them (or -bohr marks one
// as deterministically broken — the breaker should open on it). The
// executor carries the full policy stack so the report shows breakers
// opening, overload being shed, and the degradation ladder serving.
func runChaos(patternName string, n, bohr int, camp *faultmodel.Campaign, outPath string, extra redundancy.Observer, rec *runRecorder, set recorderSettings, cfg campaign.Config) error {
	collector := redundancy.NewCollector()
	observer := redundancy.CombineObservers(collector, extra)

	var variantNames []string
	mk := func(i int) redundancy.Variant[int, int] {
		deterministic := i == bohr
		name := fmt.Sprintf("v%d", i)
		variantNames = append(variantNames, name)
		base := redundancy.NewVariant(name, func(_ context.Context, x int) (int, error) {
			if deterministic {
				return 0, fmt.Errorf("deterministic failure")
			}
			return x, nil
		})
		var v redundancy.Variant[int, int] = &faultmodel.Chaos[int, int]{Base: base, Campaign: camp}
		if rec != nil {
			v = spyVariant{v, rec}
		}
		return v
	}
	ladder := redundancy.NewFallbackLadder[int, int]().CacheLastGood()
	opts := []redundancy.PatternOption{
		redundancy.WithObserver(observer),
		redundancy.WithBreaker(redundancy.NewBreakers(redundancy.BreakerConfig{
			ConsecutiveFailures: 5,
			OpenFor:             100 * time.Millisecond,
		})),
		redundancy.WithRetryPolicy(redundancy.RetryPolicy{
			BaseBackoff: 100 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			Jitter:      0.5,
			Seed:        camp.Seed,
			Budget:      redundancy.NewRetryBudget(100, 1),
		}),
		redundancy.WithBulkhead(redundancy.NewBulkhead(redundancy.BulkheadConfig{
			MaxConcurrent: 16,
			MaxWaiting:    16,
		})),
		redundancy.WithDeadline(250*time.Millisecond, 20*time.Millisecond),
		redundancy.WithFallback(ladder),
	}

	accept := func(_ int, _ int) error { return nil }
	var (
		exec redundancy.Executor[int, int]
		err  error
	)
	switch patternName {
	case "single":
		exec, err = redundancy.NewSingle(mk(1), opts...)
	case "sequential":
		vs := make([]redundancy.Variant[int, int], n)
		for i := range vs {
			vs[i] = mk(i + 1)
		}
		exec, err = redundancy.NewSequentialAlternatives(vs, accept, nil, opts...)
	case "selection":
		vs := make([]redundancy.Variant[int, int], n)
		tests := make([]redundancy.AcceptanceTest[int, int], n)
		for i := range vs {
			vs[i] = mk(i + 1)
			tests[i] = accept
		}
		var ps *redundancy.ParallelSelection[int, int]
		ps, err = redundancy.NewParallelSelection(vs, tests, opts...)
		if err == nil {
			exec = redundancy.ExecutorFunc[int, int](func(ctx context.Context, x int) (int, error) {
				defer ps.Reset() // failures are transient in this model
				return ps.Execute(ctx, x)
			})
		}
	default:
		return fmt.Errorf("-chaos supports patterns single, sequential, selection (got %q)", patternName)
	}
	if err != nil {
		return err
	}

	if rec != nil {
		// Recording middleware: one row per scheduled request, with the
		// schedule's own disturbances as ground truth (a masked fault is
		// still an injected fault). The spy-wrapped variants fill in
		// detection and attribution.
		inner := exec
		exec = redundancy.ExecutorFunc[int, int](func(ctx context.Context, x int) (int, error) {
			req, _ := faultmodel.RequestIndexFrom(ctx)
			i := int(req)
			rec.begin(i)
			for _, name := range variantNames {
				for _, label := range camp.DisturbedAt(req, name) {
					rec.noteFault(i, label)
				}
			}
			start := time.Now()
			out, execErr := inner.Execute(ctx, x)
			rec.finish(i, execErr, time.Since(start))
			return out, execErr
		})
	}

	rep, err := faultmodel.RunCampaign(context.Background(), camp, exec,
		func(req uint64) int { return int(req) }, collector)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote campaign report to %s\n", outPath)
	}
	if rec != nil {
		return saveRecordedRun(set, cfg, rec, collector.Snapshot(), nil)
	}
	return nil
}

// crashState is the durable state of the -crash demo worker.
type crashState struct {
	Sum   int64
	Count int
}

// runCrash drives a supervised worker over a durable WAL-backed store
// through a seeded kill schedule (panics and crash errors mid-workload)
// and reports restarts, measured MTTR, and acknowledged-write safety.
// With a persistent walDir the workload resumes where the previous
// invocation left off.
func runCrash(seed uint64, walDir string, extra redundancy.Observer) error {
	if walDir == "" {
		dir, err := os.MkdirTemp("", "faultsim-crash-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		walDir = dir
	}
	collector := redundancy.NewCollector()
	observer := redundancy.CombineObservers(collector, extra)

	camp := faultmodel.RecoveryCampaign(seed)
	total := camp.Total()
	apply := func(s crashState, op int) (crashState, error) {
		return crashState{Sum: s.Sum + int64(op), Count: s.Count + 1}, nil
	}

	var (
		runner  *redundancy.DurableRunner[crashState, int]
		resumed = -1 // ops already in the store at process start
		next    int
		acked   int
		fired   = make(map[int]bool)
		panics  int
		crashes int
		unsafe  bool // an acknowledged write went missing after a restart
	)
	sup := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Name:      "faultsim-crash",
		Intensity: redundancy.RestartIntensity{MaxRestarts: total, Window: time.Minute},
		Observer:  collector,
	})
	err := sup.Add(redundancy.ChildSpec{
		Name:    "worker",
		Restart: redundancy.RestartTransient,
		Init: func(context.Context) error {
			r, err := redundancy.OpenDurableRunner(walDir, crashState{}, apply,
				redundancy.DurableOptions{Name: "faultsim-worker", SnapshotInterval: 64, Observer: observer})
			if err != nil {
				return err
			}
			if resumed < 0 {
				resumed = r.State().Count
				acked = resumed
			} else if r.State().Count != acked {
				unsafe = true
			}
			runner = r
			next = acked
			return nil
		},
		Run: func(ctx context.Context) error {
			for next < total {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				req := uint64(next)
				if !fired[next] && camp.PanicAt(req, "worker") {
					fired[next] = true
					panics++
					panic(fmt.Sprintf("scheduled panic at op %d", next))
				}
				if !fired[next] && camp.CrashAt(req, "worker") {
					fired[next] = true
					crashes++
					return fmt.Errorf("scheduled kill at op %d: %w", next, faultmodel.ErrCrashed)
				}
				if _, err := runner.Step(int(req % 97)); err != nil {
					return err
				}
				acked++
				next++
			}
			return runner.Close()
		},
	})
	if err != nil {
		return err
	}
	if err := sup.Serve(context.Background()); err != nil {
		return err
	}

	// Restarts and MTTR accrue on the supervisor's executor; checkpoint
	// and replay counts on the durable store's.
	var snap, store redundancy.ExecutorObservation
	for _, e := range collector.Snapshot() {
		switch e.Executor {
		case "faultsim-crash":
			snap = e
		case "faultsim-worker":
			store = e
		}
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Crash-safe recovery (seed %d, store %s)", seed, walDir),
		"measure", "value")
	tbl.AddRow("workload ops", total)
	tbl.AddRow("resumed from previous run (ops)", resumed)
	tbl.AddRow("kills: panics", panics)
	tbl.AddRow("kills: crash errors", crashes)
	tbl.AddRow("supervised restarts", snap.Restarts)
	tbl.AddRow("WAL replays", store.WALReplays)
	tbl.AddRow("checkpoints taken", store.Checkpoints)
	tbl.AddRow("acknowledged writes lost", boolWord(unsafe, "YES — BUG", "none"))
	if snap.MTTR.Count > 0 {
		tbl.AddRow("recovery time p50", snap.MTTR.P50)
		tbl.AddRow("recovery time p99", snap.MTTR.P99)
		tbl.AddRow("recovery time mean", snap.MTTR.Mean)
	}
	fmt.Println(tbl)
	return nil
}

func boolWord(v bool, yes, no string) string {
	if v {
		return yes
	}
	return no
}

// dumpTraces writes the trace ring as JSON; runs deferred, so failures
// are reported rather than returned.
func dumpTraces(traces *redundancy.TraceRecorder, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim: trace-out:", err)
		return
	}
	defer f.Close()
	if err := traces.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim: trace-out:", err)
		return
	}
	fmt.Printf("wrote traces to %s\n", path)
}

func pow(b float64, e int) float64 {
	out := 1.0
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

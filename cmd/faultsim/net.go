package main

// The -net / -net-chaos modes: a three-replica fleet behind the framed
// RPC transport, driven by a parallel-selection executor whose variants
// are RemoteVariants with hedging, breaker gating, and failure-detector
// routing. -net runs the fleet over a clean in-memory network; -net-chaos
// wraps every dial path in a seeded NetworkCampaign (partition, loss,
// duplication, reordering, latency spikes, resets) and tabulates what the
// redundancy machinery did about it.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
	campaignpkg "github.com/softwarefaults/redundancy/internal/campaign"
	"github.com/softwarefaults/redundancy/internal/stats"
)

// netVictim is the endpoint the builtin network campaign partitions.
const netVictim = "r2"

// replicaTracePath derives a replica's trace-file path from the
// -trace-out path: traces.json -> traces-r1.json.
func replicaTracePath(traceOut, name string) string {
	base := strings.TrimSuffix(traceOut, ".json")
	return fmt.Sprintf("%s-%s.json", base, name)
}

// runNet stands up the replica fleet and drives the workload; campaign
// is nil for a clean -net run. A non-empty traceOut gives every replica
// server its own TraceRecorder, exported to <traceOut base>-<name>.json
// — separate files per process, exactly what a real fleet would ship,
// ready for `obsreport assemble` (the client's own spans land in the
// shared -trace-out file written by main).
func runNet(seed uint64, campaign *redundancy.NetworkCampaign, requests int, extra redundancy.Observer, traceOut string, rec *runRecorder, set recorderSettings, runCfg campaignpkg.Config) error {
	collector := redundancy.NewCollector()
	// A short-window SLO tracker on the client path: windows are scaled
	// to the campaign's seconds-long phases so the fast window visibly
	// burns during the partition and recovers after it. The latency
	// objective sits below the hedge delay on purpose: the selection
	// layer masks a partition completely (fleet availability holds), so
	// the burn shows up on the per-replica-path executors, whose hedged
	// rescues cost at least HedgeAfter.
	slo := redundancy.NewSLOTracker(redundancy.SLOConfig{
		Default:    redundancy.SLObjective{Target: 0.999, Latency: 20 * time.Millisecond},
		FastWindow: 500 * time.Millisecond,
		SlowWindow: 3 * time.Second,
	})
	observer := redundancy.CombineObservers(collector, extra, slo)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	network := redundancy.NewPipeNetwork()
	names := []string{"r1", "r2", "r3"}

	// The fleet: one replica server per name, accept loops supervised so
	// an accept-loop failure is a restartable child crash, not a silent
	// loss of capacity.
	supervisor := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Name:     "replica-fleet",
		Observer: observer,
	})
	var servers []*redundancy.ReplicaServer[int, int]
	replicaTraces := make(map[string]*redundancy.TraceRecorder)
	for _, name := range names {
		ln, err := network.Listen(name)
		if err != nil {
			return err
		}
		v := redundancy.NewVariant("double", func(_ context.Context, x int) (int, error) {
			return 2 * x, nil
		})
		// Each replica records its own spans, as a separate process
		// would — the client's recorder never sees server-side spans;
		// only the wire-propagated trace context links the files.
		srvObserver := observer
		if traceOut != "" {
			rec := redundancy.NewTraceRecorder(4096)
			replicaTraces[name] = rec
			srvObserver = redundancy.CombineObservers(collector, rec)
		}
		srv := redundancy.NewReplicaServer(v, ln, redundancy.ReplicaServerConfig{
			Name:     name,
			Observer: srvObserver,
		})
		if err := supervisor.Add(srv.AsChild()); err != nil {
			return err
		}
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	supDone := make(chan error, 1)
	go func() { supDone <- supervisor.Serve(ctx) }()

	// Dials — clients and heartbeats alike — go through the campaign, so
	// the detector experiences the same weather the traffic does.
	dialTo := func(name string) redundancy.DialFunc {
		dial := network.Dial(name)
		if campaign != nil {
			dial = campaign.Wrap(name, dial)
		}
		return dial
	}
	detector := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Name:         "fleet-detector",
		Interval:     100 * time.Millisecond,
		Timeout:      80 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    6,
		Observer:     observer,
	})
	for _, name := range names {
		detector.Watch(name, dialTo(name))
	}
	detDone := make(chan error, 1)
	go func() { detDone <- detector.Run(ctx) }()

	// Three remote variants, each preferring a different primary replica
	// but able to fail over and hedge across the whole fleet.
	breakers := redundancy.NewBreakers(redundancy.BreakerConfig{
		ConsecutiveFailures: 8,
		OpenFor:             250 * time.Millisecond,
	})
	var variants []redundancy.Variant[int, int]
	for i := range names {
		var endpoints []redundancy.ReplicaEndpoint
		for j := range names {
			name := names[(i+j)%len(names)]
			endpoints = append(endpoints, redundancy.ReplicaEndpoint{Name: name, Dial: dialTo(name)})
		}
		remote, err := redundancy.NewRemoteVariant[int, int]("via-"+names[i], redundancy.RemoteConfig{
			CallTimeout: 150 * time.Millisecond,
			HedgeAfter:  25 * time.Millisecond,
			MaxHedges:   2,
			Breakers:    breakers,
			Detector:    detector,
			Observer:    observer,
		}, endpoints...)
		if err != nil {
			return err
		}
		defer remote.Close()
		variants = append(variants, remote)
	}
	accept := func(in, out int) error {
		if out != 2*in {
			return fmt.Errorf("got %d want %d", out, 2*in)
		}
		return nil
	}
	sel, err := redundancy.NewParallelSelection(variants,
		[]redundancy.AcceptanceTest[int, int]{accept, accept, accept},
		redundancy.WithObserver(observer))
	if err != nil {
		return err
	}

	// The workload: either a fixed request count (clean -net) or for the
	// campaign's whole wall-clock schedule (-net-chaos).
	var (
		total, ok int
		latencies []time.Duration
		peakBurn  float64
		peakExec  string
	)
	sloExecs := []string{"parallel-selection"}
	for _, n := range names {
		sloExecs = append(sloExecs, "via-"+n)
	}
	if campaign != nil {
		campaign.Start()
	}
	for {
		if campaign != nil {
			if campaign.Done() {
				break
			}
		} else if total >= requests {
			break
		}
		total++
		if rec != nil {
			rec.begin(total - 1)
		}
		start := time.Now()
		got, err := sel.Execute(ctx, total)
		elapsed := time.Since(start)
		latencies = append(latencies, elapsed)
		if err == nil && got == 2*total {
			ok++
		} else if err == nil {
			err = fmt.Errorf("wrong answer: got %d want %d", got, 2*total)
		}
		if rec != nil {
			rec.finish(total-1, err, elapsed)
		}
		for _, e := range sloExecs {
			if burn := slo.FastBurn(e); burn > peakBurn {
				peakBurn, peakExec = burn, e
			}
		}
		sel.Reset() // network faults are transient; re-enable for the next request
	}
	finalBurn := slo.FastBurn("via-" + netVictim)

	cancel()
	<-detDone
	<-supDone

	for _, name := range names {
		if rec := replicaTraces[name]; rec != nil {
			dumpTraces(rec, replicaTracePath(traceOut, name))
		}
	}

	title := fmt.Sprintf("Distributed replica fleet (clean network, seed %d)", seed)
	if campaign != nil {
		title = fmt.Sprintf("Distributed replica fleet under %q network chaos (seed %d)",
			campaign.Name, seed)
	}
	tbl := stats.NewTable(title, "measure", "value")
	tbl.AddRow("replicas", strings.Join(names, ", "))
	if campaign != nil {
		phases := make([]string, len(campaign.Phases))
		for i, p := range campaign.Phases {
			phases[i] = p.Name
		}
		tbl.AddRow("campaign phases", strings.Join(phases, " → "))
		tbl.AddRow("campaign duration", campaign.Total())
	}
	tbl.AddRow("requests", total)
	tbl.AddRow("served", ok)
	tbl.AddRow("availability", fmt.Sprintf("%.4f", float64(ok)/float64(max(total, 1))))
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		tbl.AddRow("latency p50", latencies[len(latencies)/2].Round(time.Microsecond))
		tbl.AddRow("latency p99", latencies[len(latencies)*99/100].Round(time.Microsecond))
	}
	var hedges, wins, suspects, deaths int64
	for _, snap := range collector.Snapshot() {
		hedges += snap.Hedges
		wins += snap.HedgeWins
		suspects += snap.ReplicaSuspects
		deaths += snap.ReplicaDeaths
	}
	tbl.AddRow("hedges launched", hedges)
	tbl.AddRow("hedges won", wins)
	tbl.AddRow("replica suspicions", suspects)
	tbl.AddRow("replica deaths", deaths)
	peakOn := peakExec
	if peakOn == "" {
		peakOn = "none"
	}
	tbl.AddRow("SLO fast-burn peak", fmt.Sprintf("%.1f on %s (threshold 14.4)", peakBurn, peakOn))
	tbl.AddRow("SLO fast-burn final (via-"+netVictim+")", fmt.Sprintf("%.1f", finalBurn))
	tbl.AddRow("SLO breaching at exit", boolWord(slo.Breaching(), "YES", "no"))
	states := detector.States()
	parts := make([]string, 0, len(states))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%s", name, states[name]))
	}
	tbl.AddRow("final membership", strings.Join(parts, " "))
	fmt.Println(tbl)
	if rec != nil {
		return saveRecordedRun(set, runCfg, rec, collector.Snapshot(), slo.Snapshot())
	}
	return nil
}

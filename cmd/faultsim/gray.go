package main

// The -gray mode (experiment E29): a three-replica fleet where the
// client's configured primary turns gray mid-run — it heartbeats on
// time and answers every request correctly, but serves 20× slower.
// The run is an A/B pair over the same seed and fault schedule:
//
//	-gray off  the unmitigated arm — no hedging, no ejector; static
//	           routing keeps sending traffic to the limping primary and
//	           the fleet p99 inflates by the full limp factor while
//	           availability and correctness stay perfect (nothing else
//	           in the stack can even see the fault).
//	-gray on   the mitigated arm — hedged requests bound each slow
//	           call, censored attempt latencies feed the ejector's
//	           EWMAs, the outlier is ejected and probed, the
//	           gray-failure policy routes the persistent slowness
//	           evidence to a rejuvenation, and the cured replica is
//	           reinstated before the run ends.
//
// The fault window is keyed to the fleet request counter (healthy
// warmup for the baseline, a limp stretch, a recovery tail), so both
// arms inject exactly the same fault and the tail amplification —
// run p99 over healthy-phase p99 — is directly comparable.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
	campaignpkg "github.com/softwarefaults/redundancy/internal/campaign"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/stats"
)

// grayBaseLatency is the healthy service time of every replica — the
// unit the limp factor multiplies.
const grayBaseLatency = time.Millisecond

// grayHedgeAfter is the mitigated arm's hedge delay: a few multiples
// of the healthy latency, far under the limp, so a hedge bounds every
// slow call (and the canceled limper attempt becomes the censored
// latency evidence the ejector needs).
const grayHedgeAfter = 3 * time.Millisecond

// runGray stands up the E29 fleet and drives the workload with the
// gray-failure mitigation stack either live (grayOn) or absent.
func runGray(seed uint64, requests int, grayOn bool, spec string, extra redundancy.Observer, rec *runRecorder, set recorderSettings, runCfg campaignpkg.Config) error {
	profile, factor, err := redundancy.ParseFailSlowSpec(spec)
	if err != nil {
		return err
	}
	collector := redundancy.NewCollector()
	observer := redundancy.CombineObservers(collector, extra)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The fault window, in fleet request indexes: a healthy warmup that
	// measures the baseline, a limp stretch, and a recovery tail. The
	// gate reads the fleet counter rather than the limper's own call
	// count, so a limper the ejector has starved of traffic still
	// recovers on schedule.
	var fleetReq atomic.Int64
	limpFrom := int64(requests / 5)
	limpUntil := int64(3 * requests / 5)
	gate := func() bool {
		i := fleetReq.Load()
		return i >= limpFrom && i < limpUntil
	}

	serve := func(name string) redundancy.Variant[int, int] {
		return redundancy.NewVariant(name, func(ctx context.Context, x int) (int, error) {
			timer := time.NewTimer(grayBaseLatency)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			return 2 * x, nil
		})
	}
	// r1 is the configured primary — the worst replica to lose to a
	// gray failure, because static routing concentrates traffic on it.
	limper := &redundancy.FailSlowVariant[int, int]{
		Base:        serve("r1"),
		Profile:     profile,
		Factor:      factor,
		BaseLatency: grayBaseLatency,
		Seed:        seed,
		Replica:     "r1",
		RampCalls:   requests / 10,
		Gate:        gate,
	}
	variants := map[string]redundancy.Variant[int, int]{
		"r1": limper,
		"r2": serve("r2"),
		"r3": serve("r3"),
	}

	network := redundancy.NewPipeNetwork()
	supervisor := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Name:     "gray-fleet",
		Observer: observer,
	})
	names := []string{"r1", "r2", "r3"}
	for _, name := range names {
		ln, err := network.Listen(name)
		if err != nil {
			return err
		}
		srv := redundancy.NewReplicaServer(variants[name], ln, redundancy.ReplicaServerConfig{
			Name:     name,
			Observer: observer,
		})
		defer srv.Close()
		if err := supervisor.Add(srv.AsChild()); err != nil {
			return err
		}
	}

	// The heartbeat detector sees nothing wrong the whole run — that is
	// the point of the experiment. It is here so the stats table can
	// prove the miss track stayed clean, and (mitigated arm) as the
	// ledger the ejector files slowness evidence with.
	detector := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Name:         "fleet-detector",
		Interval:     50 * time.Millisecond,
		Timeout:      80 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    6,
		Seed:         seed,
		Observer:     observer,
	})
	for _, name := range names {
		detector.Watch(name, network.Dial(name))
	}
	if err := supervisor.Add(detector.AsChild()); err != nil {
		return err
	}

	remoteCfg := redundancy.RemoteConfig{
		CallTimeout: 150 * time.Millisecond,
		Detector:    detector,
		Observer:    observer,
	}
	var ejector *redundancy.LatencyEjector
	if grayOn {
		ejector = redundancy.NewLatencyEjector(redundancy.LatencyEjectorConfig{
			Name:           "fleet-ejector",
			Threshold:      3,
			MinSamples:     3,
			MinKeep:        2, // never leave fewer than 2 of 3 in rotation
			ProbeEvery:     64,
			ReinstateAfter: 3,
			Seed:           seed,
			Detector:       detector,
			Observer:       observer,
		})
		remoteCfg.HedgeAfter = grayHedgeAfter
		remoteCfg.MaxHedges = 2
		remoteCfg.Ejector = ejector
	}
	endpoints := make([]redundancy.ReplicaEndpoint, 0, len(names))
	for _, name := range names {
		endpoints = append(endpoints, redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)})
	}
	remote, err := redundancy.NewRemoteVariant[int, int]("fleet", remoteCfg, endpoints...)
	if err != nil {
		return err
	}
	defer remote.Close()

	// The mitigated arm closes the control loop: persistent slowness
	// evidence — filed by the ejector, visible in detector.Evidence —
	// earns the limper a rejuvenation, which cures the limp; the
	// ejector's probes then observe the recovery and reinstate it.
	var rejuvenations atomic.Int64
	if grayOn {
		actuators := map[string]redundancy.ControlActuator{
			redundancy.ControlActionRejuvenate: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
				if a.Target == "r1" {
					limper.Rejuvenate()
				}
				rejuvenations.Add(1)
				return a, nil
			},
		}
		if rec != nil {
			for kind, act := range actuators {
				actuators[kind] = recordingActuator(rec, act)
			}
		}
		controller := redundancy.NewController(redundancy.ControllerConfig{
			Name:              "controller",
			Tick:              50 * time.Millisecond,
			MaxActionsPerKind: 4,
			RateWindow:        2 * time.Second,
			Sources: redundancy.ControlSources{
				Detector: detector.States,
				Evidence: detector.Evidence,
			},
			Policies: []redundancy.ControlPolicy{
				redundancy.NewGrayFailurePolicy(redundancy.GrayFailurePolicyConfig{
					SlownessThreshold: 3,
					SettleTicks:       2,
					CooldownTicks:     20,
				}),
			},
			Actuators: actuators,
			Observer:  observer,
		})
		if err := supervisor.Add(controller.AsChild()); err != nil {
			return err
		}
	}

	supDone := make(chan error, 1)
	go func() { supDone <- supervisor.Serve(ctx) }()

	var (
		total, ok, wrong int
		latencies        []time.Duration
		limpStart        time.Time
		timeToEject      time.Duration
	)
	for total < requests {
		i := total
		total++
		fleetReq.Store(int64(i))
		if int64(i) == limpFrom {
			limpStart = time.Now()
		}
		if rec != nil {
			rec.begin(i)
			if int64(i) >= limpFrom && int64(i) < limpUntil {
				// Schedule ground truth: every request in the window ran
				// against a degraded fleet, whether or not it was routed
				// to the limper.
				rec.noteFault(i, "failslow")
			}
		}
		start := time.Now()
		got, execErr := remote.Execute(ctx, i)
		elapsed := time.Since(start)
		latencies = append(latencies, elapsed)
		if execErr == nil && got != 2*i {
			wrong++
			execErr = fmt.Errorf("wrong answer: got %d want %d", got, 2*i)
		}
		if execErr == nil {
			ok++
		}
		if rec != nil {
			rec.noteServed(i, "fleet")
			rec.finish(i, execErr, elapsed)
		}
		if ejector != nil && timeToEject == 0 && !limpStart.IsZero() && ejector.Ejected("r1") {
			timeToEject = time.Since(limpStart)
		}
	}

	cancel()
	<-supDone

	// Tail amplification: the whole run's p99 over the healthy baseline
	// p99. The baseline pools every gate-closed request (warmup and
	// tail) — a p99 order statistic over the larger pool is far more
	// stable against isolated scheduler hiccups than one over the short
	// warmup alone. The unmitigated arm inflates by the limp factor;
	// the mitigated arm should hold it near 1.
	healthyLats := make([]time.Duration, 0, len(latencies))
	for i, d := range latencies {
		if int64(i) < limpFrom || int64(i) >= limpUntil {
			healthyLats = append(healthyLats, d)
		}
	}
	baselineP99 := grayP99(healthyLats)
	runP99 := grayP99(latencies)
	amplification := 0.0
	if baselineP99 > 0 {
		amplification = float64(runP99) / float64(baselineP99)
	}

	// Ejection scoring against the seeded ground truth, replica-level:
	// r1 limped; r2 and r3 never did.
	limpers := map[string]bool{"r1": true, "r2": false, "r3": false}
	everEjected := map[string]bool{}
	if ejector != nil {
		for _, ep := range ejector.Snapshot() {
			if ep.Ejections > 0 {
				everEjected[ep.Endpoint] = true
			}
		}
	}
	ejection := campaignpkg.NewEjection(limpers, everEjected)
	if ejector != nil {
		ejection.Reinstated = ejector.Reinstatements()
	}
	ejection.TailAmplification = amplification

	arm := "unmitigated (no hedge, no ejector)"
	if grayOn {
		arm = "mitigated (hedge + ejector + rejuvenation policy)"
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Gray-failure fleet, %s arm (seed %d)", map[bool]string{true: "mitigated", false: "unmitigated"}[grayOn], seed),
		"measure", "value")
	tbl.AddRow("configuration", arm)
	tbl.AddRow("replicas", strings.Join(names, ", "))
	tbl.AddRow("fault", fmt.Sprintf("r1 fail-slow %s ×%g over requests [%d, %d)", profile, factor, limpFrom, limpUntil))
	tbl.AddRow("requests", total)
	tbl.AddRow("served", ok)
	tbl.AddRow("availability", fmt.Sprintf("%.4f", float64(ok)/float64(max(total, 1))))
	tbl.AddRow("wrong answers", wrong)
	tbl.AddRow("baseline p99 (healthy phase)", baselineP99.Round(time.Microsecond))
	tbl.AddRow("run p99", runP99.Round(time.Microsecond))
	tbl.AddRow("tail amplification", fmt.Sprintf("%.1f×", amplification))
	if ejector != nil {
		tbl.AddRow("ejection TPR", fmt.Sprintf("%.2f (%d/%d limpers ejected)", ejection.TPR, ejection.EjectedLimpers, ejection.Limpers))
		tbl.AddRow("ejection FPR", fmt.Sprintf("%.2f (%d/%d healthy ejected)", ejection.FPR, ejection.EjectedHealthy, ejection.Healthy))
		if timeToEject > 0 {
			tbl.AddRow("time to eject", timeToEject.Round(time.Millisecond))
		} else {
			tbl.AddRow("time to eject", "n/a (never ejected)")
		}
		tbl.AddRow("reinstatements", ejector.Reinstatements())
		var ejections, probes int64
		for _, snap := range collector.Snapshot() {
			ejections += snap.Ejections
			probes += snap.ProbeLaunches
		}
		tbl.AddRow("ejections", ejections)
		tbl.AddRow("probes launched", probes)
		tbl.AddRow("rejuvenations", rejuvenations.Load())
		parts := make([]string, 0, len(names))
		for _, ep := range ejector.Snapshot() {
			parts = append(parts, fmt.Sprintf("%s=%s", ep.Endpoint, ep.EWMA.Round(10*time.Microsecond)))
		}
		tbl.AddRow("latency EWMAs at exit", strings.Join(parts, " "))
	}
	states := detector.States()
	members := make([]string, 0, len(states))
	for _, name := range sortedStateNames(states) {
		misses, accusations, slowness := detector.Evidence(name)
		members = append(members, fmt.Sprintf("%s=%s(miss=%d,accuse=%d,slow=%d)", name, states[name], misses, accusations, slowness))
	}
	tbl.AddRow("final membership", strings.Join(members, " "))
	fmt.Println(tbl)

	if rec != nil {
		return saveRecordedGrayRun(set, runCfg, rec, collector.Snapshot(), ejection)
	}
	return nil
}

// grayP99 returns the 99th-percentile latency of one phase's samples.
func grayP99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// saveRecordedGrayRun packages the run with its ejection block — the
// replica-level containment quality that per-trial rows cannot carry.
func saveRecordedGrayRun(set recorderSettings, cfg campaignpkg.Config, rec *runRecorder, observed []redundancy.ExecutorObservation, ejection *campaignpkg.Ejection) error {
	trials := rec.trials()
	seed := campaignpkg.NewSeedResult(cfg.Seed, trials, time.Since(rec.started), observed, nil)
	seed.Aggregates.Ejection = ejection
	seed.Aggregates.Actions = rec.actionTotals()
	name := set.name
	if name == "" {
		name = "faultsim-" + cfg.Mode
	}
	doc := campaignpkg.NewRecordedRun(name, cfg, seed)
	if set.dropTrials {
		doc.Points[0].Seeds[0].Trials = nil
	}
	st, err := campaignpkg.Open(set.storeDir)
	if err != nil {
		return err
	}
	id, err := st.Save(doc)
	if err != nil {
		return err
	}
	fmt.Printf("recorded run %s in %s (%d trials, tail amplification %.1f, ejection tpr %.2f fpr %.2f)\n",
		id, set.storeDir, doc.TotalTrials(), ejection.TailAmplification, ejection.TPR, ejection.FPR)
	return nil
}

// resolvedGrayConfig builds the config block for a -gray run.
func resolvedGrayConfig(seed uint64, requests int, grayOn bool, spec string) campaignpkg.Config {
	mode := "off"
	if grayOn {
		mode = "on"
	}
	cfg := campaignpkg.Config{
		Mode:      "gray",
		Pattern:   "single",
		Variants:  3,
		Seed:      seed,
		Requests:  requests,
		Trials:    requests,
		Gray:      mode,
		GrayFault: spec,
		Executor: campaignpkg.ExecutorConfig{
			CallTimeout: faultmodel.Duration(150 * time.Millisecond),
		},
	}
	if grayOn {
		cfg.Executor.HedgeAfter = faultmodel.Duration(grayHedgeAfter)
		cfg.Executor.MaxHedges = 2
	}
	return cfg
}

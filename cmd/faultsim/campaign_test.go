package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/softwarefaults/redundancy/internal/campaign"
)

// recordOne runs faultsim with -campaign-out into a fresh store and
// returns the single recorded run.
func recordOne(t *testing.T, args ...string) *campaign.Run {
	t.Helper()
	dir := t.TempDir()
	full := append([]string{"-campaign-out", dir}, args...)
	if err := run(full); err != nil {
		t.Fatalf("run %v = %v", args, err)
	}
	st, err := campaign.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ids, err := st.IDs()
	if err != nil || len(ids) != 1 {
		t.Fatalf("store holds %d runs (err %v), want 1", len(ids), err)
	}
	doc, err := st.Load(ids[0])
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return doc
}

func TestCampaignOutSimReplaysByteIdentical(t *testing.T) {
	for _, pattern := range []string{"sequential", "single", "nvp"} {
		t.Run(pattern, func(t *testing.T) {
			doc := recordOne(t, "-pattern", pattern, "-n", "3", "-p", "0.2",
				"-trials", "400", "-seed", "7", "-campaign-name", "faultsim-ut")
			if doc.Name != "faultsim-ut" {
				t.Fatalf("name = %q", doc.Name)
			}
			if got := doc.TotalTrials(); got != 400 {
				t.Fatalf("recorded %d trials, want 400", got)
			}
			cfg := doc.Points[0].Config
			if cfg.Mode != "sim" || cfg.Pattern != pattern || cfg.Seed != 7 {
				t.Fatalf("config = %+v", cfg)
			}
			// The recorded run must replay byte-identically: the sweep
			// runner regenerates the same trial rows faultsim recorded.
			rep, err := campaign.Replay(context.Background(), doc, nil)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if rep.Mismatched != 0 || rep.Matched == 0 {
				t.Fatalf("replay matched=%d mismatched=%d: %+v",
					rep.Matched, rep.Mismatched, rep.Points)
			}
		})
	}
}

func TestCampaignOutSimAggregatesOnly(t *testing.T) {
	doc := recordOne(t, "-pattern", "sequential", "-n", "2", "-p", "0.3",
		"-trials", "200", "-seed", "3", "-campaign-trials=false")
	if len(doc.Points[0].Seeds[0].Trials) != 0 {
		t.Fatal("trials kept despite -campaign-trials=false")
	}
	if doc.Points[0].Seeds[0].Aggregates.Deterministic.Trials != 200 {
		t.Fatalf("aggregates = %+v", doc.Points[0].Seeds[0].Aggregates.Deterministic)
	}
	// Aggregates-only runs still replay via the digest fallback.
	rep, err := campaign.Replay(context.Background(), doc, nil)
	if err != nil || rep.Err() != nil {
		t.Fatalf("aggregates-only replay: %v / %v", err, rep.Err())
	}
}

func TestCampaignOutChaosStoredButNotReplayable(t *testing.T) {
	doc := recordOne(t, "-chaos", "-pattern", "sequential", "-n", "3",
		"-seed", "11", "-chaos-out", filepath.Join(t.TempDir(), "chaos.json"))
	cfg := doc.Points[0].Config
	if cfg.Mode != "chaos" || cfg.Chaos == nil {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.Executor == (campaign.ExecutorConfig{}) {
		t.Fatal("chaos config did not echo the executor policy stack")
	}
	if doc.TotalTrials() != cfg.Chaos.Total() {
		t.Fatalf("recorded %d trials, campaign schedules %d",
			doc.TotalTrials(), cfg.Chaos.Total())
	}
	// Ground truth comes from the schedule: some rows must carry fault
	// labels, and the availability must be a sane fraction.
	faults := 0
	for _, tr := range doc.Points[0].Seeds[0].Trials {
		if tr.Fault != "" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no trials labeled with schedule faults")
	}
	// The recorded resilience stack is timing-dependent: replay must
	// refuse rather than report spurious divergence.
	if _, err := campaign.Replay(context.Background(), doc, nil); !errors.Is(err, campaign.ErrNotReplayable) {
		t.Fatalf("chaos replay err = %v, want ErrNotReplayable", err)
	}
}

func TestConfigOutEchoesResolvedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.json")
	if err := run([]string{"-pattern", "sequential", "-n", "3", "-p", "0.25",
		"-trials", "50", "-seed", "9", "-config-out", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("config-out not written: %v", err)
	}
	var cfg campaign.Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatalf("config-out not a campaign.Config: %v", err)
	}
	if cfg.Mode != "sim" || cfg.Pattern != "sequential" || cfg.Variants != 3 ||
		cfg.FailureP != 0.25 || cfg.Trials != 50 || cfg.Seed != 9 {
		t.Fatalf("resolved config = %+v", cfg)
	}
}

func TestCrashModeRejectsRecording(t *testing.T) {
	err := run([]string{"-crash", "-campaign-out", t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "restart") {
		t.Fatalf("crash recording err = %v, want rejection", err)
	}
}

package main

// The -adversary mode: a 2k+1 quorum fleet under a Byzantine adversary.
// n replica servers (first `count` of them wrapped as lying adversaries
// with the chosen strategy) serve a QuorumVariant client that fans every
// request to the whole fleet and majority-votes the replies. A heartbeat
// failure detector watches the fleet and receives the quorum's
// vote-disagreement accusations, so the run's verdicts demonstrate the
// paper's malicious-fault column end to end: wrong answers outvoted,
// availability held, and the liars convicted without ever missing a
// heartbeat. With -campaign-out the run records per-trial ground truth
// (which requests each adversary attacked) and the conviction TPR/FPR
// that `campaign diff` gates in CI.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
	campaignpkg "github.com/softwarefaults/redundancy/internal/campaign"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/stats"
)

// quorumLie is the adversaries' shared wrong answer: plausible (even,
// near the correct value) and deterministic in the input, so colluding
// replicas agree with each other.
func quorumLie(x, correct int) int { return correct + 2 }

// resolvedQuorumConfig builds the config block for an -adversary run.
func resolvedQuorumConfig(seed uint64, replicas int, spec string, requests int) campaignpkg.Config {
	return campaignpkg.Config{
		Mode:      "quorum",
		Pattern:   "quorum",
		Replicas:  replicas,
		Adversary: spec,
		Trials:    requests,
		Requests:  requests,
		Seed:      seed,
		Executor: campaignpkg.ExecutorConfig{
			CallTimeout: faultmodel.Duration(150 * time.Millisecond),
		},
	}
}

// runQuorum stands up the fleet and drives the workload.
func runQuorum(seed uint64, replicas int, strategy redundancy.AdversaryStrategy, liarCount, requests int, extra redundancy.Observer, rec *runRecorder, set recorderSettings, runCfg campaignpkg.Config) error {
	if liarCount > replicas {
		return fmt.Errorf("-adversary count %d exceeds -replicas %d", liarCount, replicas)
	}
	k := redundancy.TolerableFaults(replicas)
	collector := redundancy.NewCollector()
	observer := redundancy.CombineObservers(collector, extra)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	network := redundancy.NewPipeNetwork()
	names := make([]string, replicas)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i+1)
	}

	// The fleet: the first liarCount replicas are adversaries, the rest
	// honest. Everyone serves the same correct base (double the input);
	// the adversaries strategically replace the answer with quorumLie.
	supervisor := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Name:     "quorum-fleet",
		Observer: observer,
	})
	liars := make(map[string]bool, replicas)
	adversaries := make([]*redundancy.ByzantineAdversary[int, int], 0, liarCount)
	var servers []*redundancy.ReplicaServer[int, int]
	for i, name := range names {
		ln, err := network.Listen(name)
		if err != nil {
			return err
		}
		var v redundancy.Variant[int, int] = redundancy.NewVariant("double",
			func(_ context.Context, x int) (int, error) { return 2 * x, nil })
		liars[name] = i < liarCount
		if liars[name] {
			adv := &redundancy.ByzantineAdversary[int, int]{
				Base:     v,
				Strategy: strategy,
				Seed:     seed,
				Replica:  name,
				Lie:      quorumLie,
				Key:      func(x int) uint64 { return faultmodel.HashInt(x) },
			}
			adversaries = append(adversaries, adv)
			v = adv
		}
		srv := redundancy.NewReplicaServer(v, ln, redundancy.ReplicaServerConfig{
			Name:     name,
			Observer: observer,
		})
		if err := supervisor.Add(srv.AsChild()); err != nil {
			return err
		}
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	supDone := make(chan error, 1)
	go func() { supDone <- supervisor.Serve(ctx) }()

	// The detector heartbeats the fleet — every adversary acks promptly,
	// so only the quorum's accusations can move them off alive.
	detector := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Name:         "quorum-detector",
		Interval:     50 * time.Millisecond,
		Timeout:      40 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    6,
		Observer:     observer,
	})
	endpoints := make([]redundancy.ReplicaEndpoint, len(names))
	for i, name := range names {
		endpoints[i] = redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)}
		detector.Watch(name, network.Dial(name))
	}
	detDone := make(chan error, 1)
	go func() { detDone <- detector.Run(ctx) }()

	quorum, err := redundancy.NewQuorumVariant[int, int]("quorum", redundancy.QuorumConfig{
		CallTimeout: 150 * time.Millisecond,
		Faults:      k,
		Detector:    detector,
		Observer:    observer,
	}, redundancy.Majority(redundancy.EqualOf[int]()), redundancy.EqualOf[int](), endpoints...)
	if err != nil {
		return err
	}
	defer quorum.Close()

	strategyLabel := "lie:" + string(strategy)
	var (
		total, ok, wrong, attacked, outvoted int
		latencies                            []time.Duration
	)
	for i := 0; i < requests; i++ {
		total++
		// Ground truth from the adversaries' own determinism: which of
		// them attack this input (the driver never trusts the replies).
		liarsHere := 0
		for _, adv := range adversaries {
			if adv.Lies(i) {
				liarsHere++
			}
		}
		if rec != nil {
			rec.begin(i)
			if liarsHere > 0 {
				rec.noteFault(i, strategyLabel)
			}
		}
		start := time.Now()
		got, err := quorum.Execute(ctx, i)
		elapsed := time.Since(start)
		latencies = append(latencies, elapsed)
		correct := err == nil && got == 2*i
		if correct {
			ok++
		}
		if liarsHere > 0 {
			attacked++
			if correct {
				// The wrong answer lost the vote: a true positive.
				outvoted++
				if rec != nil {
					rec.noteFailure(i)
				}
			}
		}
		if err == nil && got != 2*i {
			wrong++
			if rec != nil {
				rec.noteWrong(i)
			}
		}
		if rec != nil {
			rec.noteServed(i, "quorum")
			rec.finish(i, err, elapsed)
		}
	}

	cancel()
	<-detDone
	<-supDone

	// Conviction: the detector's end-of-run verdict per replica against
	// the ground-truth liar set.
	states := detector.States()
	convicted := make(map[string]bool, len(states))
	for name, state := range states {
		convicted[name] = state != redundancy.ReplicaAlive
	}
	conviction := campaignpkg.NewConviction(liars, convicted)

	tbl := stats.NewTable(
		fmt.Sprintf("Byzantine quorum fleet (n=%d, k=%d, adversary %s:%d, seed %d)",
			replicas, k, strategy, liarCount, seed),
		"measure", "value")
	tbl.AddRow("replicas", strings.Join(names, ", "))
	tbl.AddRow("liars", liarCount)
	tbl.AddRow("requests", total)
	tbl.AddRow("served correctly", ok)
	tbl.AddRow("availability", fmt.Sprintf("%.4f", float64(ok)/float64(max(total, 1))))
	tbl.AddRow("requests attacked", attacked)
	tbl.AddRow("wrong answers outvoted", outvoted)
	tbl.AddRow("wrong answers accepted", wrong)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		tbl.AddRow("latency p50", latencies[len(latencies)/2].Round(time.Microsecond))
		tbl.AddRow("latency p99", latencies[len(latencies)*99/100].Round(time.Microsecond))
	}
	var quorums, disagreements, outvotedEvents int64
	for _, snap := range collector.Snapshot() {
		quorums += snap.QuorumsReached
		disagreements += snap.VoteDisagreement
		outvotedEvents += snap.ReplicasOutvoted
	}
	tbl.AddRow("quorum verdicts", quorums)
	tbl.AddRow("vote disagreements", disagreements)
	tbl.AddRow("replica replies outvoted", outvotedEvents)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		mark := ""
		if liars[name] {
			mark = "*"
		}
		parts = append(parts, fmt.Sprintf("%s%s=%s", name, mark, states[name]))
	}
	tbl.AddRow("final membership (* = liar)", strings.Join(parts, " "))
	// The detector's evidence ledger per replica: accusations are the
	// quorum's outvote reports (the track that convicts a liar, which
	// acks every heartbeat), misses are heartbeat silence.
	evidence := make([]string, 0, len(names))
	for _, name := range names {
		misses, accusations, _ := detector.Evidence(name)
		evidence = append(evidence, fmt.Sprintf("%s=%d/%d", name, accusations, misses))
	}
	tbl.AddRow("evidence (accusations/misses)", strings.Join(evidence, " "))
	tbl.AddRow("conviction TPR", fmt.Sprintf("%.2f (%d/%d liars convicted)",
		conviction.TPR, conviction.ConvictedLiars, conviction.Liars))
	tbl.AddRow("conviction FPR", fmt.Sprintf("%.2f (%d/%d honest convicted)",
		conviction.FPR, conviction.ConvictedHonest, conviction.Honest))
	fmt.Println(tbl)

	if rec != nil {
		return saveRecordedQuorumRun(set, runCfg, rec, collector.Snapshot(), conviction)
	}
	return nil
}

// saveRecordedQuorumRun packages the run with its conviction block — the
// replica-level detection quality that per-trial rows cannot carry.
func saveRecordedQuorumRun(set recorderSettings, cfg campaignpkg.Config, rec *runRecorder, observed []redundancy.ExecutorObservation, conviction *campaignpkg.Conviction) error {
	trials := rec.trials()
	seed := campaignpkg.NewSeedResult(cfg.Seed, trials, time.Since(rec.started), observed, nil)
	seed.Aggregates.Conviction = conviction
	name := set.name
	if name == "" {
		name = "faultsim-" + cfg.Mode
	}
	doc := campaignpkg.NewRecordedRun(name, cfg, seed)
	if set.dropTrials {
		doc.Points[0].Seeds[0].Trials = nil
	}
	st, err := campaignpkg.Open(set.storeDir)
	if err != nil {
		return err
	}
	id, err := st.Save(doc)
	if err != nil {
		return err
	}
	fmt.Printf("recorded run %s in %s (%d trials, availability %.4f, conviction tpr %.2f fpr %.2f)\n",
		id, set.storeDir, doc.TotalTrials(), doc.Availability(), conviction.TPR, conviction.FPR)
	return nil
}

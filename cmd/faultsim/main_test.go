package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/softwarefaults/redundancy/internal/obs/health"
)

func TestRunNVP(t *testing.T) {
	if err := run([]string{"-pattern", "nvp", "-n", "3", "-p", "0.1", "-trials", "2000"}); err != nil {
		t.Errorf("nvp run = %v", err)
	}
}

func TestRunNVPCorrelated(t *testing.T) {
	if err := run([]string{"-pattern", "nvp", "-n", "5", "-p", "0.1", "-rho", "0.5", "-trials", "2000"}); err != nil {
		t.Errorf("correlated run = %v", err)
	}
}

func TestRunDetectedPatterns(t *testing.T) {
	for _, p := range []string{"single", "selection", "sequential"} {
		if err := run([]string{"-pattern", p, "-n", "3", "-p", "0.2", "-trials", "500"}); err != nil {
			t.Errorf("%s run = %v", p, err)
		}
	}
}

func TestRunSeedFlag(t *testing.T) {
	if err := run([]string{"-seed", "42", "-pattern", "single", "-trials", "100"}); err != nil {
		t.Errorf("seeded run = %v", err)
	}
}

func TestRunMetricsAddrFlag(t *testing.T) {
	// An ephemeral port: the run serves /metrics during the simulation and
	// shuts the listener down on return.
	if err := run([]string{"-metrics-addr", "127.0.0.1:0", "-pattern", "sequential", "-n", "2", "-p", "0.2", "-trials", "200"}); err != nil {
		t.Errorf("metrics-addr run = %v", err)
	}
}

func TestRunMetricsAddrInvalid(t *testing.T) {
	if err := run([]string{"-metrics-addr", "not-an-address", "-pattern", "single", "-trials", "10"}); err == nil {
		t.Error("invalid metrics address accepted")
	}
}

func TestRunTraceOutFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.json")
	if err := run([]string{"-trace-out", path, "-pattern", "sequential", "-n", "2", "-p", "0.2", "-trials", "300"}); err != nil {
		t.Fatalf("trace-out run = %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	defer f.Close()
	traces, err := health.ReadTraces(f)
	if err != nil {
		t.Fatalf("trace file not decodable: %v", err)
	}
	if len(traces) == 0 {
		t.Error("trace file holds no traces")
	}
}

func TestRunBohrFlagDiagnosesDeterministicFailure(t *testing.T) {
	// Variant 1 fails every execution; replaying the exported traces must
	// label it Bohrbug-like while the fallback stays healthy.
	path := filepath.Join(t.TempDir(), "traces.json")
	if err := run([]string{"-trace-out", path, "-pattern", "sequential", "-n", "2", "-p", "0", "-bohr", "1", "-trials", "200"}); err != nil {
		t.Fatalf("bohr run = %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traces, err := health.ReadTraces(f)
	if err != nil {
		t.Fatal(err)
	}
	g := health.New(health.Config{})
	health.Replay(g, traces)
	classes := map[string]health.FaultClass{}
	for _, e := range g.Snapshot() {
		for _, v := range e.Variants {
			classes[v.Variant] = v.Class
		}
	}
	if classes["v1"] != health.ClassBohrbug {
		t.Errorf("v1 class = %v, want %v", classes["v1"], health.ClassBohrbug)
	}
	if classes["v2"] != health.ClassHealthy {
		t.Errorf("v2 class = %v, want %v", classes["v2"], health.ClassHealthy)
	}
}

func TestRunBohrFlagInvalid(t *testing.T) {
	if err := run([]string{"-bohr", "5", "-n", "3", "-pattern", "sequential", "-trials", "10"}); err == nil {
		t.Error("out-of-range -bohr accepted")
	}
}

func TestRunUnknownPattern(t *testing.T) {
	if err := run([]string{"-pattern", "nope"}); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestRunInvalidParameters(t *testing.T) {
	bad := [][]string{
		{"-n", "0"},
		{"-p", "1.5"},
		{"-rho", "-0.1"},
		{"-trials", "0"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestPow(t *testing.T) {
	if pow(2, 3) != 8 || pow(0.5, 2) != 0.25 || pow(7, 0) != 1 {
		t.Error("pow incorrect")
	}
}

func TestRunNetClean(t *testing.T) {
	if err := run([]string{"-net", "-net-requests", "200"}); err != nil {
		t.Errorf("net run = %v", err)
	}
}

func TestRunNetChaosWithSpec(t *testing.T) {
	// A compressed campaign so the test stays fast: a blink of clean
	// network, a partition of r2, and a lossy tail.
	spec := `{
		"name": "test-net",
		"seed": 3,
		"phases": [
			{"name": "warmup", "duration": "100ms"},
			{"name": "cut", "duration": "400ms", "partition": ["r2"]},
			{"name": "rough", "duration": "200ms", "loss": 0.05, "latency_spike": 0.1, "spike_delay": "10ms"}
		]
	}`
	path := filepath.Join(t.TempDir(), "net.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-net-chaos", "-net-spec", path, "-seed", "3"}); err != nil {
		t.Errorf("net-chaos run = %v", err)
	}
}

func TestRunNetInvalid(t *testing.T) {
	if err := run([]string{"-net", "-net-requests", "0"}); err == nil {
		t.Error("zero -net-requests accepted")
	}
	if err := run([]string{"-net-chaos", "-net-spec", "/nonexistent/spec.json"}); err == nil {
		t.Error("missing -net-spec file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"x","phases":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-net-chaos", "-net-spec", path}); err == nil {
		t.Error("empty-phase network campaign accepted")
	}
}

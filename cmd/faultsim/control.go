package main

// The -control mode (experiment E28): a three-replica fleet that
// accumulates every fault shape the repo models — one replica ages and
// wears out, one is killed outright mid-run, one trips a deterministic
// bohrbug — behind a failover/hedging Remote client, run twice with the
// same seed: once as the static configuration (controller present but
// frozen by the kill switch) and once with the autonomic controller
// live. The static fleet collapses once all three replicas are broken;
// the controlled fleet replaces the dead replica (MTTR measured),
// rejuvenates the aging one, substitutes the buggy one, and holds
// availability at the objective.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
	campaignpkg "github.com/softwarefaults/redundancy/internal/campaign"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/stats"
)

// controlObjective is the SLO latency objective the tail policy holds
// the fleet client's p99 against.
const controlObjective = 20 * time.Millisecond

// simProc simulates one replica's serving process with the two fault
// shapes E28 injects. Aging: after limit serves since the last
// reinitialization the process is worn out (leaked resources,
// fragmented state) and every call fails — rejuvenation cures it.
// Bohrbug: inputs at or past bugAt take a deterministically broken code
// path — reinitialization cannot help, only substituting another
// implementation can.
type simProc struct {
	name  string
	limit int64 // serves before wear-out; 0 = never ages
	bugAt int64 // first input the buggy code path rejects; 0 = no bug

	served     atomic.Int64 // serves since the last rejuvenation
	substitute atomic.Pointer[redundancy.ServiceProxy]
}

func (p *simProc) execute(ctx context.Context, x int) (int, error) {
	if p.bugAt > 0 && int64(x) >= p.bugAt {
		if proxy := p.substitute.Load(); proxy != nil {
			// The controller rebound this code path to a substitute
			// provider; the replica serves through it from now on.
			return proxy.Invoke(ctx, "double", x)
		}
		return 0, fmt.Errorf("%s: deterministic fault on input %d", p.name, x)
	}
	if p.limit > 0 && p.served.Load() >= p.limit {
		return 0, fmt.Errorf("%s: worn out after %d serves", p.name, p.limit)
	}
	p.served.Add(1)
	return 2 * x, nil
}

// rejuvenate reinitializes the volatile state: the aging clock resets;
// the code — and any bug in it — stays.
func (p *simProc) rejuvenate() { p.served.Store(0) }

// controlFleet is the mutable fleet state the actuators operate on.
type controlFleet struct {
	mu       sync.Mutex
	procs    map[string]*simProc
	servers  map[string]*redundancy.ReplicaServer[int, int]
	next     int // next replacement replica index
	killedAt map[string]time.Time
	mttr     []time.Duration
}

// runControl stands up the E28 fleet and drives the workload with the
// controller either live (controlOn) or frozen behind the kill switch.
func runControl(seed uint64, requests int, controlOn bool, extra redundancy.Observer, rec *runRecorder, set recorderSettings, runCfg campaignpkg.Config) error {
	collector := redundancy.NewCollector()
	engine := redundancy.NewHealthEngine(redundancy.HealthConfig{})
	slo := redundancy.NewSLOTracker(redundancy.SLOConfig{
		Default:    redundancy.SLObjective{Target: 0.999, Latency: controlObjective},
		FastWindow: 500 * time.Millisecond,
		SlowWindow: 3 * time.Second,
	})
	observer := redundancy.CombineObservers(collector, extra, engine, slo)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The fault schedule, in request indexes: r1 wears out every
	// agingLimit serves, r2 is killed at killAt, r3's code path is broken
	// for inputs >= bugAt.
	agingLimit := int64(requests / 5)
	killAt := requests / 3
	bugAt := int64(3 * requests / 5)

	network := redundancy.NewPipeNetwork()
	fleet := &controlFleet{
		procs: map[string]*simProc{
			"r1": {name: "r1", limit: agingLimit},
			"r2": {name: "r2"},
			"r3": {name: "r3", bugAt: bugAt},
		},
		servers:  map[string]*redundancy.ReplicaServer[int, int]{},
		next:     4,
		killedAt: map[string]time.Time{},
	}

	supervisor := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Name:     "replica-fleet",
		Observer: observer,
	})
	startReplica := func(name string, proc *simProc, dynamic bool) error {
		ln, err := network.Listen(name)
		if err != nil {
			return err
		}
		v := redundancy.NewVariant("proc", proc.execute)
		srv := redundancy.NewReplicaServer(v, ln, redundancy.ReplicaServerConfig{
			Name:     name,
			Observer: observer,
		})
		fleet.mu.Lock()
		fleet.procs[name] = proc
		fleet.servers[name] = srv
		fleet.mu.Unlock()
		if dynamic {
			return supervisor.StartChild(srv.AsChild())
		}
		return supervisor.Add(srv.AsChild())
	}
	names := []string{"r1", "r2", "r3"}
	for _, name := range names {
		if err := startReplica(name, fleet.procs[name], false); err != nil {
			return err
		}
	}
	defer func() {
		fleet.mu.Lock()
		servers := make([]*redundancy.ReplicaServer[int, int], 0, len(fleet.servers))
		for _, s := range fleet.servers {
			servers = append(servers, s)
		}
		fleet.mu.Unlock()
		for _, s := range servers {
			s.Close()
		}
	}()

	detector := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Name:         "fleet-detector",
		Interval:     100 * time.Millisecond,
		Timeout:      80 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    6,
		Observer:     observer,
	})
	for _, name := range names {
		detector.Watch(name, network.Dial(name))
	}
	if err := supervisor.Add(detector.AsChild()); err != nil {
		return err
	}

	breakers := redundancy.NewBreakers(redundancy.BreakerConfig{
		ConsecutiveFailures: 8,
		OpenFor:             250 * time.Millisecond,
	})
	endpoints := make([]redundancy.ReplicaEndpoint, 0, len(names))
	for _, name := range names {
		endpoints = append(endpoints, redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)})
	}
	remote, err := redundancy.NewRemoteVariant[int, int]("fleet", redundancy.RemoteConfig{
		CallTimeout: 150 * time.Millisecond,
		HedgeAfter:  25 * time.Millisecond,
		MaxHedges:   2,
		Breakers:    breakers,
		Detector:    detector,
		Observer:    observer,
	}, endpoints...)
	if err != nil {
		return err
	}
	defer remote.Close()
	budget := redundancy.NewRetryBudget(50, 0.1)
	client, err := redundancy.NewSingle[int, int](remote,
		redundancy.WithObserver(observer),
		redundancy.WithRetryPolicy(redundancy.RetryPolicy{
			MaxAttempts: 2,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
			Jitter:      0.5,
			Seed:        seed,
			Budget:      budget,
		}))
	if err != nil {
		return err
	}

	// The substitute provider registry the bohrbug escalation draws
	// from: an alternate implementation of the same interface.
	registry := redundancy.NewServiceRegistry()
	calcSig := redundancy.ServiceSignature{Name: "calc", Ops: []string{"double"}}
	substituteSvc, err := redundancy.NewSimService("calc-v2", calcSig,
		map[string]func(int) (int, error){"double": func(x int) (int, error) { return 2 * x, nil }})
	if err != nil {
		return err
	}
	if err := registry.Register(substituteSvc, nil); err != nil {
		return err
	}

	// probeRepair verifies a repair by sending the current workload
	// input straight at the repaired replica through a one-shot client.
	// Left to the load balancer alone, a freshly rejuvenated replica may
	// see no traffic for a long stretch (healthy peers absorb the load),
	// so whether the repair actually took — the relapse evidence the
	// bohrbug escalation rides on — would wait on routing luck. The
	// probe's outcome flows through the replica server's observer into
	// the health engine like any other request.
	var lastInput atomic.Int64
	probeRepair := func(ctx context.Context, name string) {
		pr, err := redundancy.NewRemoteVariant[int, int](name+"-probe", redundancy.RemoteConfig{
			CallTimeout: 150 * time.Millisecond,
		}, redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)})
		if err != nil {
			return
		}
		defer pr.Close()
		_, _ = pr.Execute(ctx, int(lastInput.Load())) // failure is evidence, not an error
	}

	// The actuators: how controller decisions become fleet changes.
	actuators := map[string]redundancy.ControlActuator{
		redundancy.ControlActionReplace: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			fleet.mu.Lock()
			name := fmt.Sprintf("r%d", fleet.next)
			fleet.next++
			killed := fleet.killedAt[a.Target]
			fleet.mu.Unlock()
			// The replacement runs the same software as everyone else —
			// fresh environment, same aging behavior.
			if err := startReplica(name, &simProc{name: name, limit: agingLimit}, true); err != nil {
				return a, err
			}
			if err := remote.AddEndpoint(redundancy.ReplicaEndpoint{Name: name, Dial: network.Dial(name)}); err != nil {
				return a, err
			}
			detector.Watch(name, network.Dial(name))
			// Splice-before-retire: the replacement is live before the dead
			// endpoint (and its stragglers) are cut loose.
			if err := remote.RemoveEndpoint(a.Target); err != nil {
				return a, err
			}
			detector.Forget(a.Target)
			if !killed.IsZero() {
				fleet.mu.Lock()
				fleet.mttr = append(fleet.mttr, time.Since(killed))
				fleet.mu.Unlock()
			}
			a.New = name
			return a, nil
		},
		redundancy.ControlActionHedgeTune: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			d, err := a.HedgeTarget()
			if err != nil {
				return a, err
			}
			remote.SetHedgeAfter(d)
			return a, nil
		},
		redundancy.ControlActionDepositTune: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			rate, err := a.DepositTarget()
			if err != nil {
				return a, err
			}
			budget.SetDepositPerRequest(rate)
			return a, nil
		},
		redundancy.ControlActionRejuvenate: func(ctx context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			proc, executor, err := fleet.procFor(a.Target)
			if err != nil {
				return a, err
			}
			proc.rejuvenate()
			// The rollback event closes the variant's health epoch: if the
			// failure run ends here, the engine books a rejuvenation
			// recovery — the evidence that earns an aging diagnosis.
			observer.Rollback(executor, 0)
			// Repair includes clearing the breaker: the replica is fresh,
			// so evidence against its worn-out past should not keep it
			// dark for another OpenFor.
			breakers.Reset(strings.TrimPrefix(executor, "replica:"))
			// And verifying: the probe shows whether the restart cured
			// anything (recovery = aging evidence, relapse = bohrbug
			// evidence).
			probeRepair(ctx, strings.TrimPrefix(executor, "replica:"))
			return a, nil
		},
		redundancy.ControlActionSubstitute: func(_ context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
			proc, executor, err := fleet.procFor(a.Target)
			if err != nil {
				return a, err
			}
			proxy, err := redundancy.NewServiceProxy(registry, calcSig, 0.5)
			if err != nil {
				return a, err
			}
			proc.substitute.Store(proxy)
			breakers.Reset(strings.TrimPrefix(executor, "replica:"))
			a.New = proxy.Bound()
			return a, nil
		},
	}
	if rec != nil {
		// Wrap every actuator so performed actions land on the trial in
		// flight and in the per-kind totals the run document stores.
		for kind, act := range actuators {
			actuators[kind] = recordingActuator(rec, act)
		}
	}

	// The diagnosis policy watches the replica executors only (current
	// fleet and any replacement the controller may spawn).
	watched := make([]string, 0, 9)
	for i := 1; i <= 9; i++ {
		watched = append(watched, fmt.Sprintf("replica:r%d", i))
	}
	controller := redundancy.NewController(redundancy.ControllerConfig{
		Name:              "controller",
		Tick:              100 * time.Millisecond,
		MaxActionsPerKind: 4,
		RateWindow:        2 * time.Second,
		Sources: redundancy.ControlSources{
			Observed: collector.Snapshot,
			SLO:      slo.Snapshot,
			Detector: detector.States,
			Evidence: detector.Evidence,
			Health:   engine.Snapshot,
			FastBurn: slo.FastBurn,
			P99: func(executor string) time.Duration {
				if h := collector.ExecutorLatency(executor); h != nil {
					return h.P99()
				}
				return 0
			},
		},
		Policies: []redundancy.ControlPolicy{
			&redundancy.ReplacementPolicy{DeadAfter: 6, AccuseDeadAfter: 8},
			redundancy.NewTailPolicy(redundancy.TailPolicyConfig{
				Client:     "fleet",
				Objective:  controlObjective,
				MinHedge:   5 * time.Millisecond,
				MaxHedge:   50 * time.Millisecond,
				HedgeAfter: remote.HedgeAfter,
				Deposit:    budget.DepositPerRequest,
			}),
			redundancy.NewDiagnosisPolicy(redundancy.DiagnosisPolicyConfig{
				FailStreakThreshold:     8,
				RelapseLimit:            1,
				RejuvenateCooldownTicks: 5,
				Executors:               watched,
			}),
		},
		Actuators: actuators,
		Observer:  observer,
	})
	// The kill switch: the static arm runs the same loop, frozen.
	controller.SetEnabled(controlOn)
	if err := supervisor.Add(controller.AsChild()); err != nil {
		return err
	}

	supDone := make(chan error, 1)
	go func() { supDone <- supervisor.Serve(ctx) }()

	// The workload: paced so the detector and the controller tick operate
	// on wall-clock evidence while the request counter advances.
	var (
		total, ok int
		latencies []time.Duration
	)
	runStart := time.Now()
	for total < requests {
		total++
		x := total
		lastInput.Store(int64(x))
		if total == killAt {
			// The outright process death: r2's server goes away mid-run.
			fleet.mu.Lock()
			srv := fleet.servers["r2"]
			fleet.killedAt["r2"] = time.Now()
			fleet.mu.Unlock()
			srv.Close()
		}
		if rec != nil {
			rec.begin(total - 1)
			if int64(x) >= bugAt {
				rec.noteFault(total-1, "bohr")
			}
		}
		start := time.Now()
		got, err := client.Execute(ctx, x)
		elapsed := time.Since(start)
		latencies = append(latencies, elapsed)
		if err == nil && got != 2*x {
			err = fmt.Errorf("wrong answer: got %d want %d", got, 2*x)
		}
		if err == nil {
			ok++
		}
		if rec != nil {
			rec.finish(total-1, err, elapsed)
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	<-supDone

	// Reporting.
	arm := "static (controller frozen)"
	if controlOn {
		arm = "autonomic (controller live)"
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Autonomic control plane, %s arm (seed %d)", map[bool]string{true: "controlled", false: "static"}[controlOn], seed),
		"measure", "value")
	tbl.AddRow("configuration", arm)
	tbl.AddRow("replicas (initial)", strings.Join(names, ", "))
	tbl.AddRow("fault schedule", fmt.Sprintf("r1 ages (wear-out every %d serves), r2 killed at request %d, r3 bohrbug from input %d", agingLimit, killAt, bugAt))
	tbl.AddRow("requests", total)
	tbl.AddRow("served", ok)
	availability := float64(ok) / float64(max(total, 1))
	tbl.AddRow("availability", fmt.Sprintf("%.4f", availability))
	tbl.AddRow("SLO objective", fmt.Sprintf("%.3f within %s", 0.999, controlObjective))
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		tbl.AddRow("latency p50", latencies[len(latencies)/2].Round(time.Microsecond))
		tbl.AddRow("latency p99", latencies[len(latencies)*99/100].Round(time.Microsecond))
	}
	counts := controller.Counts()
	if len(counts) == 0 {
		tbl.AddRow("controller actions", "none")
	} else {
		parts := make([]string, 0, len(counts))
		for _, kind := range sortedKinds(counts) {
			parts = append(parts, fmt.Sprintf("%s=%d", kind, counts[kind]))
		}
		tbl.AddRow("controller actions", strings.Join(parts, " "))
	}
	tbl.AddRow("actions suppressed (rate limit)", controller.Suppressed())
	fleet.mu.Lock()
	mttr := append([]time.Duration(nil), fleet.mttr...)
	fleet.mu.Unlock()
	if len(mttr) > 0 {
		tbl.AddRow("replacement MTTR", mttr[0].Round(time.Millisecond))
	} else {
		tbl.AddRow("replacement MTTR", "n/a (no replacement)")
	}
	tbl.AddRow("hedge delay at exit", remote.HedgeAfter())
	tbl.AddRow("retry deposit at exit", fmt.Sprintf("%g", budget.DepositPerRequest()))
	states := detector.States()
	members := make([]string, 0, len(states))
	for _, name := range sortedStateNames(states) {
		misses, accusations, slowness := detector.Evidence(name)
		members = append(members, fmt.Sprintf("%s=%s(miss=%d,accuse=%d,slow=%d)", name, states[name], misses, accusations, slowness))
	}
	tbl.AddRow("final membership", strings.Join(members, " "))
	tbl.AddRow("endpoints at exit", strings.Join(remote.Endpoints(), ", "))
	fmt.Println(tbl)
	_ = runStart
	if rec != nil {
		return saveRecordedRun(set, runCfg, rec, collector.Snapshot(), slo.Snapshot())
	}
	return nil
}

// procFor resolves a diagnosis-policy target ("replica:<name>/<variant>")
// to the replica's process.
func (f *controlFleet) procFor(target string) (*simProc, string, error) {
	executor, _, _ := strings.Cut(target, "/")
	name := strings.TrimPrefix(executor, "replica:")
	f.mu.Lock()
	defer f.mu.Unlock()
	proc, ok := f.procs[name]
	if !ok {
		return nil, executor, fmt.Errorf("control: unknown replica %q in target %q", name, target)
	}
	return proc, executor, nil
}

// recordingActuator wraps an actuator so every performed action is
// booked on the recorder (per-trial and per-kind).
func recordingActuator(rec *runRecorder, inner redundancy.ControlActuator) redundancy.ControlActuator {
	return func(ctx context.Context, a redundancy.ControlAction) (redundancy.ControlAction, error) {
		done, err := inner(ctx, a)
		if err == nil {
			rec.noteActionHere(done.Kind)
		}
		return done, err
	}
}

func sortedKinds(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStateNames(m map[string]redundancy.ReplicaState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// resolvedControlConfig builds the config block for a -control run.
func resolvedControlConfig(seed uint64, requests int, controlOn bool) campaignpkg.Config {
	mode := "off"
	if controlOn {
		mode = "on"
	}
	return campaignpkg.Config{
		Mode:     "control",
		Pattern:  "single",
		Variants: 3,
		Seed:     seed,
		Requests: requests,
		Trials:   requests,
		Control:  mode,
		Executor: campaignpkg.ExecutorConfig{
			BreakerConsecutiveFailures: 8,
			BreakerOpenFor:             faultmodel.Duration(250 * time.Millisecond),
			CallTimeout:                faultmodel.Duration(150 * time.Millisecond),
			HedgeAfter:                 faultmodel.Duration(25 * time.Millisecond),
			MaxHedges:                  2,
			RetryBudget:                50,
			RetryBaseBackoff:           faultmodel.Duration(time.Millisecond),
			RetryMaxBackoff:            faultmodel.Duration(5 * time.Millisecond),
			RetryJitter:                0.5,
		},
	}
}

package main

// -campaign-out support: any faultsim invocation (sim, chaos, net) can
// record itself into the experiment store as a single-point run — the
// same document schema `campaign run` sweeps produce, so stored faultsim
// invocations list, show, diff, and (for deterministic modes) replay
// alongside swept campaigns. -config-out echoes the fully resolved
// configuration (the document's config block) without recording a run.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
	"github.com/softwarefaults/redundancy/internal/campaign"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
)

// recorderSettings carries the -campaign-* / -config-out flags.
type recorderSettings struct {
	storeDir   string // -campaign-out: run store directory ("" disables)
	name       string // -campaign-name
	configOut  string // -config-out: echo resolved config JSON ("" disables)
	dropTrials bool   // -campaign-trials=false: aggregates only
}

func (s recorderSettings) active() bool { return s.storeDir != "" || s.configOut != "" }

// resolvedSimConfig builds the config block for a Monte Carlo run.
func resolvedSimConfig(patternName string, n int, p, rho float64, trials int, seed uint64, bohr int) campaign.Config {
	return campaign.Config{
		Mode:     "sim",
		Pattern:  patternName,
		Variants: n,
		FailureP: p,
		Rho:      rho,
		Bohr:     bohr,
		Trials:   trials,
		Seed:     seed,
	}
}

// resolvedChaosConfig builds the config block for a -chaos run,
// including the executor policy stack runChaos hard-codes.
func resolvedChaosConfig(patternName string, n, bohr int, camp *faultmodel.Campaign) campaign.Config {
	return campaign.Config{
		Mode:     "chaos",
		Pattern:  patternName,
		Variants: n,
		Bohr:     bohr,
		Trials:   camp.Total(),
		Seed:     camp.Seed,
		Chaos:    camp,
		Executor: campaign.ExecutorConfig{
			BreakerConsecutiveFailures: 5,
			BreakerOpenFor:             faultmodel.Duration(100 * time.Millisecond),
			RetryBaseBackoff:           faultmodel.Duration(100 * time.Microsecond),
			RetryMaxBackoff:            faultmodel.Duration(time.Millisecond),
			RetryJitter:                0.5,
			RetryBudget:                100,
			BulkheadMaxConcurrent:      16,
			BulkheadMaxWaiting:         16,
			Deadline:                   faultmodel.Duration(250 * time.Millisecond),
			VariantDeadline:            faultmodel.Duration(20 * time.Millisecond),
			Fallback:                   "cache-last-good",
		},
	}
}

// resolvedNetConfig builds the config block for a -net / -net-chaos run,
// including the transport policies runNet hard-codes.
func resolvedNetConfig(seed uint64, camp *redundancy.NetworkCampaign, requests int) campaign.Config {
	cfg := campaign.Config{
		Mode:     "net",
		Pattern:  "selection",
		Variants: 3,
		Seed:     seed,
		Requests: requests,
		Network:  camp,
		Executor: campaign.ExecutorConfig{
			BreakerConsecutiveFailures: 8,
			BreakerOpenFor:             faultmodel.Duration(250 * time.Millisecond),
			CallTimeout:                faultmodel.Duration(150 * time.Millisecond),
			HedgeAfter:                 faultmodel.Duration(25 * time.Millisecond),
			MaxHedges:                  2,
		},
	}
	if camp != nil {
		cfg.Trials = 0 // the campaign's wall-clock schedule governs
	} else {
		cfg.Trials = requests
	}
	return cfg
}

// writeConfigOut echoes the resolved config as JSON to path.
func writeConfigOut(path string, cfg campaign.Config) error {
	data, err := json.MarshalIndent(cfg, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote resolved config to %s\n", path)
	return nil
}

// runRecorder accumulates per-trial rows from any of faultsim's
// workload loops. Concurrent executors (parallel selection, overload
// phases) report through the same recorder, so it locks; rows are keyed
// by request index and emitted sorted.
type runRecorder struct {
	mu      sync.Mutex
	seed    uint64
	rows    map[int]*campaign.Trial
	current int // request index for paths without a context index
	actions map[string]int
	started time.Time
}

func newRunRecorder(seed uint64) *runRecorder {
	return &runRecorder{seed: seed, rows: map[int]*campaign.Trial{}, started: time.Now()}
}

// begin marks the start of request i for variant spies that cannot read
// an index from the context (sim mode runs trials sequentially).
func (r *runRecorder) begin(i int) {
	r.mu.Lock()
	r.current = i
	r.row(i)
	r.mu.Unlock()
}

// row returns (creating) the row for request i; callers hold r.mu.
// Trace identities use the same deterministic derivation the sweep
// runner uses, so a recorded sim run replays byte-identically.
func (r *runRecorder) row(i int) *campaign.Trial {
	if r.rows[i] == nil {
		r.rows[i] = &campaign.Trial{Index: i, TraceID: campaign.TrialTraceID(r.seed, i)}
	}
	return r.rows[i]
}

// indexFrom resolves the request index: the campaign context index when
// present, else the sequential current index.
func (r *runRecorder) indexFrom(ctx context.Context) int {
	if req, ok := faultmodel.RequestIndexFrom(ctx); ok {
		return int(req)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current
}

// noteFailure marks request i detected: the executor saw a variant fail.
func (r *runRecorder) noteFailure(i int) {
	r.mu.Lock()
	r.row(i).Detected = true
	r.mu.Unlock()
}

// noteWrong marks request i as served a wrong answer the redundancy
// machinery accepted — the Byzantine failure a quorum exists to prevent.
func (r *runRecorder) noteWrong(i int) {
	r.mu.Lock()
	r.row(i).Wrong = true
	r.mu.Unlock()
}

// noteServed attributes the accepted answer of request i to a variant.
func (r *runRecorder) noteServed(i int, name string) {
	r.mu.Lock()
	row := r.row(i)
	if row.Variant == "" {
		row.Variant = name
	}
	r.mu.Unlock()
}

// noteFaultHere labels the current sequential request — for sim-mode
// variant closures, whose contexts carry no request index.
func (r *runRecorder) noteFaultHere(label string) {
	r.mu.Lock()
	i := r.current
	r.mu.Unlock()
	r.noteFault(i, label)
}

// noteFault appends a ground-truth fault label to request i's row.
func (r *runRecorder) noteFault(i int, label string) {
	r.mu.Lock()
	row := r.row(i)
	for _, have := range strings.Split(row.Fault, "+") {
		if have == label {
			r.mu.Unlock()
			return
		}
	}
	if row.Fault == "" {
		row.Fault = label
	} else {
		row.Fault += "+" + label
	}
	r.mu.Unlock()
}

// noteActionHere books a controller action against the request in
// flight and against the per-kind run totals. Controller actions are
// wall-clock-scheduled, so like latency they annotate rather than
// define a trial's deterministic identity.
func (r *runRecorder) noteActionHere(kind string) {
	r.mu.Lock()
	r.row(r.current).Actions++
	if r.actions == nil {
		r.actions = map[string]int{}
	}
	r.actions[kind]++
	r.mu.Unlock()
}

// actionTotals returns the per-kind controller-action totals, nil when
// no controller acted (so static runs carry no actions block at all).
func (r *runRecorder) actionTotals() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.actions) == 0 {
		return nil
	}
	out := make(map[string]int, len(r.actions))
	for k, v := range r.actions {
		out[k] = v
	}
	return out
}

// finish completes request i's row with its outcome and latency.
func (r *runRecorder) finish(i int, err error, latency time.Duration) {
	outcome := campaign.OutcomeOK
	switch {
	case err == nil:
	case errors.Is(err, redundancy.ErrShedded):
		outcome = campaign.OutcomeShed
	case errors.Is(err, redundancy.ErrDegraded):
		outcome = campaign.OutcomeDegraded
	case errors.Is(err, redundancy.ErrBreakerOpen):
		outcome = campaign.OutcomeBreakerOpen
	default:
		outcome = campaign.OutcomeFailed
	}
	r.mu.Lock()
	row := r.row(i)
	row.Outcome = outcome
	row.Latency = latency
	// Fault labels accumulate unsorted; normalize for digest stability.
	if strings.Contains(row.Fault, "+") {
		parts := strings.Split(row.Fault, "+")
		sort.Strings(parts)
		row.Fault = strings.Join(parts, "+")
	}
	r.mu.Unlock()
}

// trials returns the recorded rows sorted by request index.
func (r *runRecorder) trials() []campaign.Trial {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := make([]int, 0, len(r.rows))
	for i := range r.rows {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]campaign.Trial, 0, len(idx))
	for _, i := range idx {
		out = append(out, *r.rows[i])
	}
	return out
}

// spyVariant reports a wrapped variant's executions to the recorder.
type spyVariant struct {
	redundancy.Variant[int, int]
	rec *runRecorder
}

func (v spyVariant) Execute(ctx context.Context, x int) (int, error) {
	out, err := v.Variant.Execute(ctx, x)
	i := v.rec.indexFrom(ctx)
	if err != nil {
		v.rec.noteFailure(i)
	} else {
		v.rec.noteServed(i, v.Variant.Name())
	}
	return out, err
}

// saveRecordedRun computes aggregates, packages the rows as a
// single-point run, and persists it to the -campaign-out store.
func saveRecordedRun(set recorderSettings, cfg campaign.Config, rec *runRecorder, observed []redundancy.ExecutorObservation, slo []redundancy.SLOStatus) error {
	trials := rec.trials()
	seed := campaign.NewSeedResult(cfg.Seed, trials, time.Since(rec.started), observed, slo)
	// Controller runs carry their per-kind action totals; actionTotals
	// is nil for every mode without a live controller, so the metrics —
	// and the diff gates reading them — only exist where they apply.
	seed.Aggregates.Actions = rec.actionTotals()
	name := set.name
	if name == "" {
		name = "faultsim-" + cfg.Mode
	}
	doc := campaign.NewRecordedRun(name, cfg, seed)
	if set.dropTrials {
		// After pooling: the aggregates survive, only the rows go.
		doc.Points[0].Seeds[0].Trials = nil
	}
	st, err := campaign.Open(set.storeDir)
	if err != nil {
		return err
	}
	id, err := st.Save(doc)
	if err != nil {
		return err
	}
	fmt.Printf("recorded run %s in %s (%d trials, availability %.4f)\n",
		id, set.storeDir, doc.TotalTrials(), doc.Availability())
	return nil
}

package redundancy

import (
	"github.com/softwarefaults/redundancy/internal/geneticfix"
	"github.com/softwarefaults/redundancy/internal/nvp"
	"github.com/softwarefaults/redundancy/internal/recovery"
	"github.com/softwarefaults/redundancy/internal/registry"
	"github.com/softwarefaults/redundancy/internal/selfcheck"
	"github.com/softwarefaults/redundancy/internal/selfopt"
	"github.com/softwarefaults/redundancy/internal/service"
	"github.com/softwarefaults/redundancy/internal/workaround"
)

// ---- N-version programming (deliberate code redundancy) ----

// NVersionSystem is an N-version programming executor.
type NVersionSystem[I, O any] = nvp.System[I, O]

// NewNVersion builds an N-version system with a majority-voting implicit
// adjudicator over the given independently developed versions.
func NewNVersion[I, O any](versions []Variant[I, O], eq Equal[O], opts ...PatternOption) (*NVersionSystem[I, O], error) {
	return nvp.New(versions, eq, opts...)
}

// NewNVersionWithAdjudicator builds an N-version system with a custom
// implicit adjudicator (e.g. MOfN consensus or MedianAdjudicator).
func NewNVersionWithAdjudicator[I, O any](versions []Variant[I, O], adj Adjudicator[O], opts ...PatternOption) (*NVersionSystem[I, O], error) {
	return nvp.NewWithAdjudicator(versions, adj, opts...)
}

// NVersionReliability returns the analytic majority-vote success
// probability for n independent versions failing with probability p.
func NVersionReliability(n int, p float64) float64 {
	return nvp.ReliabilityIndependent(n, p)
}

// NVersionReliabilityCorrelated returns the majority-vote success
// probability under pairwise failure correlation rho (the erosion
// observed by Brilliant, Knight and Leveson).
func NVersionReliabilityCorrelated(n int, p, rho float64) float64 {
	return nvp.ReliabilityCorrelated(n, p, rho)
}

// ---- Recovery blocks (deliberate code redundancy) ----

// RecoveryBlock is a recovery block over shared mutable state S.
type RecoveryBlock[S, I, O any] = recovery.Block[S, I, O]

// NewRecoveryBlock builds a recovery block: the first variant is the
// primary, the rest are alternates; test is the acceptance test; state is
// checkpointed on entry and restored before each alternate.
func NewRecoveryBlock[S, I, O any](name string, state *S, test AcceptanceTest[I, O], variants []Variant[I, O]) (*RecoveryBlock[S, I, O], error) {
	return recovery.NewBlock(name, state, test, variants)
}

// ---- Self-checking programming (deliberate code redundancy) ----

// SelfCheckingComponent is a component that judges its own results.
type SelfCheckingComponent[I, O any] = selfcheck.Component[I, O]

// SelfCheckingSystem executes self-checking components with hot-spare
// promotion.
type SelfCheckingSystem[I, O any] = selfcheck.System[I, O]

// NewCheckedComponent builds a self-checking component from an
// implementation and a built-in acceptance test (explicit adjudicator).
func NewCheckedComponent[I, O any](impl Variant[I, O], test AcceptanceTest[I, O]) (SelfCheckingComponent[I, O], error) {
	return selfcheck.WithTest(impl, test)
}

// NewComparedPair builds a self-checking component from two independently
// designed implementations with a final comparison (implicit
// adjudicator).
func NewComparedPair[I, O any](a, b Variant[I, O], eq Equal[O]) (SelfCheckingComponent[I, O], error) {
	return selfcheck.Pair(a, b, eq)
}

// NewSelfCheckingSystem builds a self-checking system; the first
// component acts, the rest are hot spares in promotion order.
func NewSelfCheckingSystem[I, O any](components []SelfCheckingComponent[I, O]) (*SelfCheckingSystem[I, O], error) {
	return selfcheck.NewSystem(components)
}

// ---- Self-optimizing code (deliberate code redundancy) ----

// OptimizerProfile couples an implementation with its latency model.
type OptimizerProfile[I, O any] = selfopt.Profile[I, O]

// Optimizer switches among implementations when QoS degrades.
type Optimizer[I, O any] = selfopt.Optimizer[I, O]

// NewOptimizer builds a self-optimizing executor: threshold bounds the
// moving-average latency over window requests; loadProbe samples current
// load.
func NewOptimizer[I, O any](profiles []OptimizerProfile[I, O], threshold float64, window int, loadProbe func() float64) (*Optimizer[I, O], error) {
	return selfopt.NewOptimizer(profiles, threshold, window, loadProbe)
}

// ---- Exception handling and rule engines (deliberate code redundancy) ----

// Rule-engine types.
type (
	// Incident describes one detected failure.
	Incident = registry.Incident
	// RecoveryAction is one recovery action of a rule.
	RecoveryAction = registry.Action
	// RecoveryRule pairs a failure matcher with recovery actions.
	RecoveryRule = registry.Rule
	// RuleEngine resolves incidents through registered rules.
	RuleEngine = registry.Engine
	// RuleOutcome reports how an incident was handled.
	RuleOutcome = registry.Outcome
	// IncidentMatcher decides whether a rule applies to an incident.
	IncidentMatcher = registry.Matcher
)

// Rule-engine errors.
var (
	// ErrNoMatchingRule reports an incident no rule matches.
	ErrNoMatchingRule = registry.ErrNoMatchingRule
	// ErrActionsExhausted reports a matching rule whose actions all
	// failed.
	ErrActionsExhausted = registry.ErrActionsExhausted
)

// NewRuleEngine builds a rule engine with the given recovery rules.
func NewRuleEngine(rules ...RecoveryRule) (*RuleEngine, error) {
	return registry.NewEngine(rules...)
}

// MatchComponent matches incidents from the named component.
func MatchComponent(name string) IncidentMatcher { return registry.MatchComponent(name) }

// MatchErrorIs matches incidents whose error wraps target.
func MatchErrorIs(target error) IncidentMatcher { return registry.MatchErrorIs(target) }

// MatchLabel matches incidents carrying the given label value.
func MatchLabel(key, value string) IncidentMatcher { return registry.MatchLabel(key, value) }

// MatchAll combines matchers conjunctively.
func MatchAll(ms ...IncidentMatcher) IncidentMatcher { return registry.MatchAll(ms...) }

// MatchAny combines matchers disjunctively.
func MatchAny(ms ...IncidentMatcher) IncidentMatcher { return registry.MatchAny(ms...) }

// ---- Dynamic service substitution (opportunistic code redundancy) ----

// Service substitution types.
type (
	// Service is one provider of an interface.
	Service = service.Service
	// ServiceSignature describes a service interface.
	ServiceSignature = service.Signature
	// SimService is a simulated provider with an availability model.
	SimService = service.SimService
	// ServiceRegistry indexes available providers.
	ServiceRegistry = service.Registry
	// ServiceProxy is the transparent rebinding client.
	ServiceProxy = service.Proxy
	// ServiceConverter renames operations to adapt similar interfaces.
	ServiceConverter = service.Converter
)

// Service substitution errors.
var (
	// ErrServiceDown reports an unavailable provider.
	ErrServiceDown = service.ErrServiceDown
	// ErrNoProvider reports that no substitute could be found.
	ErrNoProvider = service.ErrNoProvider
)

// NewSimService creates a simulated provider for the given interface.
func NewSimService(name string, sig ServiceSignature, handlers map[string]func(int) (int, error)) (*SimService, error) {
	return service.NewSimService(name, sig, handlers)
}

// NewServiceRegistry creates an empty provider registry.
func NewServiceRegistry() *ServiceRegistry { return service.NewRegistry() }

// NewServiceProxy binds the best provider for want and substitutes on
// failure; minSim is the minimum interface similarity for adapted
// substitutes.
func NewServiceProxy(reg *ServiceRegistry, want ServiceSignature, minSim float64) (*ServiceProxy, error) {
	return service.NewProxy(reg, want, minSim)
}

// AdaptService wraps a provider with an operation-name converter.
func AdaptService(svc Service, conv ServiceConverter) Service { return service.Adapt(svc, conv) }

// InterfaceSimilarity returns the fraction of s's operations t offers.
func InterfaceSimilarity(s, t ServiceSignature) float64 { return service.Similarity(s, t) }

// ---- Fault fixing with genetic programming (opportunistic) ----

// Genetic-programming types.
type (
	// ProgramNode is one node of a subject program's expression tree.
	ProgramNode = geneticfix.Node
	// ProgramConst is an integer literal node.
	ProgramConst = geneticfix.Const
	// ProgramVar is a variable-reference node.
	ProgramVar = geneticfix.Var
	// ProgramBin is a binary-operation node.
	ProgramBin = geneticfix.Bin
	// ProgramIf is a conditional node.
	ProgramIf = geneticfix.If
	// ProgramOp is a binary arithmetic operator.
	ProgramOp = geneticfix.Op
	// ProgramCmp is a comparison operator.
	ProgramCmp = geneticfix.Cmp
	// ProgramTest is one adjudicating test case.
	ProgramTest = geneticfix.TestCase
	// RepairConfig parameterizes the GP loop.
	RepairConfig = geneticfix.Config
	// RepairResult reports a repair attempt.
	RepairResult = geneticfix.Result
)

// Program operators.
const (
	OpAdd = geneticfix.OpAdd
	OpSub = geneticfix.OpSub
	OpMul = geneticfix.OpMul
	OpMin = geneticfix.OpMin
	OpMax = geneticfix.OpMax

	CmpLT = geneticfix.CmpLT
	CmpLE = geneticfix.CmpLE
	CmpEQ = geneticfix.CmpEQ
	CmpGT = geneticfix.CmpGT
)

// FaultyMaxProgram returns the canonical faulty max(x, y) subject program
// (branches swapped) used by tests, benches and experiments.
func FaultyMaxProgram() ProgramNode { return geneticfix.FaultyMax() }

// MaxTestSuite returns a test suite for two-variable max.
func MaxTestSuite() []ProgramTest { return geneticfix.MaxSuite() }

// RepairProgram evolves variants of the faulty program until one passes
// the whole test suite.
func RepairProgram(faulty ProgramNode, suite []ProgramTest, cfg RepairConfig, rng *Rand) (RepairResult, error) {
	return geneticfix.Repair(faulty, suite, cfg, rng)
}

// DefaultRepairConfig returns the GP configuration used by the
// experiments.
func DefaultRepairConfig(vars []string) RepairConfig {
	return geneticfix.DefaultConfig(vars)
}

// ProgramFitness counts the test cases prog passes.
func ProgramFitness(prog ProgramNode, suite []ProgramTest) int {
	return geneticfix.Fitness(prog, suite)
}

// ---- Automatic workarounds (opportunistic code redundancy) ----

// Workaround types.
type (
	// WorkaroundOp is one elementary operation.
	WorkaroundOp = workaround.Op
	// WorkaroundSequence is an ordered operation list.
	WorkaroundSequence = workaround.Sequence
	// RewritingRule encodes one intrinsic equivalence.
	RewritingRule = workaround.Rule
	// WorkaroundComponent is the stateful component sequences drive.
	WorkaroundComponent = workaround.Component
	// WorkaroundOracle validates the component's final state.
	WorkaroundOracle = workaround.Oracle
	// WorkaroundEngine generates and executes workarounds.
	WorkaroundEngine = workaround.Engine
	// WorkaroundOutcome reports how a sequence was executed.
	WorkaroundOutcome = workaround.Outcome
)

// ErrNoWorkaround reports that no equivalent sequence succeeded.
var ErrNoWorkaround = workaround.ErrNoWorkaround

// NewWorkaroundEngine builds a workaround engine from rewriting rules.
func NewWorkaroundEngine(rules []RewritingRule) (*WorkaroundEngine, error) {
	return workaround.NewEngine(rules)
}

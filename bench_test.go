package redundancy_test

// Benchmark harness: one benchmark group per paper artifact. The
// Figure 1 benches measure the per-request overhead of each architectural
// pattern; the Table 2 benches measure the per-operation overhead of each
// technique family's executor. Run with:
//
//	go test -bench=. -benchmem .

import (
	"context"
	"errors"
	"fmt"
	"testing"

	redundancy "github.com/softwarefaults/redundancy"
)

func okVariant(name string) redundancy.Variant[int, int] {
	return redundancy.NewVariant(name, func(_ context.Context, x int) (int, error) {
		return x * 2, nil
	})
}

func acceptAll(_ int, _ int) error { return nil }

// ---- Figure 1: architectural patterns ----

func BenchmarkFigure1Single(b *testing.B) {
	exec, err := redundancy.NewSingle(okVariant("v1"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Execute(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1ParallelEvaluation(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			vs := make([]redundancy.Variant[int, int], n)
			for i := range vs {
				vs[i] = okVariant(fmt.Sprintf("v%d", i))
			}
			exec, err := redundancy.NewParallelEvaluation(vs,
				redundancy.Majority(redundancy.EqualOf[int]()))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Execute(ctx, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure1ParallelSelection(b *testing.B) {
	const n = 3
	vs := make([]redundancy.Variant[int, int], n)
	tests := make([]redundancy.AcceptanceTest[int, int], n)
	for i := range vs {
		vs[i] = okVariant(fmt.Sprintf("v%d", i))
		tests[i] = acceptAll
	}
	exec, err := redundancy.NewParallelSelection(vs, tests)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Execute(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1SequentialAlternatives(b *testing.B) {
	const n = 3
	vs := make([]redundancy.Variant[int, int], n)
	for i := range vs {
		vs[i] = okVariant(fmt.Sprintf("v%d", i))
	}
	exec, err := redundancy.NewSequentialAlternatives(vs, acceptAll, nil)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Execute(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 2 rows ----

func BenchmarkTable2NVersion(b *testing.B) {
	sys, err := redundancy.NewNVersion(
		[]redundancy.Variant[int, int]{okVariant("a"), okVariant("b"), okVariant("c")},
		redundancy.EqualOf[int]())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2RecoveryBlocks(b *testing.B) {
	state := struct{ N int }{}
	primaryFails := redundancy.NewVariant("primary", func(_ context.Context, _ int) (int, error) {
		return 0, errors.New("primary bug")
	})
	blk, err := redundancy.NewRecoveryBlock("blk", &state, acceptAll,
		[]redundancy.Variant[int, int]{primaryFails, okVariant("alt")})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blk.Execute(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2SelfChecking(b *testing.B) {
	acting, err := redundancy.NewCheckedComponent(okVariant("acting"), acceptAll)
	if err != nil {
		b.Fatal(err)
	}
	spare, err := redundancy.NewComparedPair(okVariant("s1"), okVariant("s2"), redundancy.EqualOf[int]())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := redundancy.NewSelfCheckingSystem(
		[]redundancy.SelfCheckingComponent[int, int]{acting, spare})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2SelfOpt(b *testing.B) {
	opt, err := redundancy.NewOptimizer(
		[]redundancy.OptimizerProfile[int, int]{
			{Variant: okVariant("light"), Latency: func(l float64) float64 { return 1 + 20*l }},
			{Variant: okVariant("heavy"), Latency: func(float64) float64 { return 6 }},
		}, 8, 4, func() float64 { return 0.5 })
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Execute(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2RuleEngine(b *testing.B) {
	engine, err := redundancy.NewRuleEngine(redundancy.RecoveryRule{
		Name:  "r",
		Match: redundancy.MatchComponent("svc"),
		Actions: []redundancy.RecoveryAction{{
			Name: "retry",
			Run:  func(context.Context, *redundancy.Incident) error { return nil },
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := redundancy.Incident{Component: "svc"}
		if _, err := engine.Handle(ctx, &inc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Wrappers(b *testing.B) {
	h, err := redundancy.NewHeap(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := h.Alloc(64)
	if err != nil {
		b.Fatal(err)
	}
	healer, err := redundancy.NewHeapHealer(h, redundancy.RejectOverflow)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := healer.Write(blk, 0, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2RobustDataAudit(b *testing.B) {
	l := redundancy.NewRobustList()
	for i := 0; i < 100; i++ {
		l.Append(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if defects := l.Audit(); len(defects) != 0 {
			b.Fatal("unexpected defects")
		}
	}
}

func BenchmarkTable2RobustDataRepair(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l := redundancy.NewRobustList()
		for v := 0; v < 50; v++ {
			l.Append(v)
		}
		ids := l.NodeIDs()
		l.CorruptNext(ids[10], 99999)
		b.StartTimer()
		if err := l.Repair(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2DataDiversityRetryBlock(b *testing.B) {
	rng := redundancy.NewRand(1)
	program := redundancy.NewVariant("p", func(_ context.Context, x int) (int, error) {
		if x%97 == 13 {
			return 0, errors.New("failure region")
		}
		return x, nil
	})
	rb, err := redundancy.NewRetryBlock(program, acceptAll,
		[]redundancy.Reexpression[int]{{
			Name:  "shift",
			Apply: func(x int, r *redundancy.Rand) int { return x + 1 + r.Intn(96) },
			Exact: false,
		}}, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rb.Execute(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2NVariantData(b *testing.B) {
	cell, err := redundancy.NewNVariantCell(3, redundancy.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell.Set(uint64(i))
		if _, err := cell.Get(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Rejuvenation(b *testing.B) {
	cfg := redundancy.CompletionConfig{
		Work:               500,
		CheckpointInterval: 20,
		CheckpointCost:     1,
		RejuvenateEveryN:   3,
		RejuvenationCost:   10,
		RecoveryCost:       100,
		Fault:              redundancy.AgingFault{ID: 1, HazardAtScale: 0.02, Scale: 200, Shape: 4},
	}
	rng := redundancy.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := redundancy.SimulateCompletion(cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2EnvPerturbation(b *testing.B) {
	prog := func(_ context.Context, env *redundancy.Env, x int) (int, error) {
		if env.AllocPadding < 64 {
			return 0, errors.New("overflow")
		}
		return x, nil
	}
	exec, err := redundancy.NewPerturbationExecutor(prog, redundancy.DefaultEnv(),
		redundancy.DefaultPerturbationLadder())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Execute(ctx, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2CheckpointRecovery(b *testing.B) {
	runner, err := redundancy.NewCheckpointRunner(0,
		func(s int, op int) (int, error) { return s + op, nil }, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner.Step(1); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			if _, err := runner.Recover(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable2ProcessReplicas(b *testing.B) {
	sys, err := redundancy.NewReplicaSystem(3, 1<<12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(redundancy.ReplicaRequest{
			Op: redundancy.ReplicaWrite, Addr: uint64(i % 512), Value: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ServiceSubstitution(b *testing.B) {
	sig := redundancy.ServiceSignature{Name: "svc", Ops: []string{"op"}}
	reg := redundancy.NewServiceRegistry()
	for i := 0; i < 3; i++ {
		s, err := redundancy.NewSimService(fmt.Sprintf("p%d", i), sig,
			map[string]func(int) (int, error){
				"op": func(x int) (int, error) { return x, nil },
			})
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.Register(s, nil); err != nil {
			b.Fatal(err)
		}
	}
	proxy, err := redundancy.NewServiceProxy(reg, sig, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Invoke(ctx, "op", i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2GeneticFix(b *testing.B) {
	cfg := redundancy.DefaultRepairConfig([]string{"x", "y"})
	cfg.PopulationSize = 32
	cfg.MaxGenerations = 30
	suite := []redundancy.ProgramTest{
		{Vars: map[string]int{"x": 1, "y": 2}, Want: 3},
		{Vars: map[string]int{"x": 4, "y": 5}, Want: 9},
		{Vars: map[string]int{"x": -1, "y": 1}, Want: 0},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		faulty := faultySum()
		if _, err := redundancy.RepairProgram(faulty, suite, cfg, redundancy.NewRand(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Workarounds(b *testing.B) {
	engine, err := redundancy.NewWorkaroundEngine(intSetRules())
	if err != nil {
		b.Fatal(err)
	}
	seq := redundancy.WorkaroundSequence{{Name: "addrange", Args: []int{0, 5}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cands := engine.Candidates(seq); len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkTable2Microreboot(b *testing.B) {
	sys, err := redundancy.NewComponentSystem(redundancy.ComponentSpec{
		Name: "root", InitCost: 50,
		Children: []redundancy.ComponentSpec{
			{Name: "mid", InitCost: 10, Children: []redundancy.ComponentSpec{
				{Name: "leaf", InitCost: 1},
			}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Fail("leaf"); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.MicroReboot("leaf"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Section 4.1 cost comparison ----

func BenchmarkCostsOfCodeRedundancy(b *testing.B) {
	ctx := context.Background()
	b.Run("nvp-3-versions", func(b *testing.B) {
		sys, err := redundancy.NewNVersion(
			[]redundancy.Variant[int, int]{okVariant("a"), okVariant("b"), okVariant("c")},
			redundancy.EqualOf[int]())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Execute(ctx, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recovery-block-primary-ok", func(b *testing.B) {
		state := struct{}{}
		blk, err := redundancy.NewRecoveryBlock("blk", &state, acceptAll,
			[]redundancy.Variant[int, int]{okVariant("primary"), okVariant("alt")})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := blk.Execute(ctx, i); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- quorum math (Section 4.1, 2k+1) ----

func BenchmarkQuorumAdjudication(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			adj := redundancy.Majority(redundancy.EqualOf[int]())
			results := make([]redundancy.Result[int], n)
			for i := range results {
				results[i] = redundancy.Result[int]{Variant: "v", Value: 1}
			}
			results[n-1].Value = 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := adj.Adjudicate(results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// faultySum is x - y where the spec wants x + y.
func faultySum() redundancy.ProgramNode {
	return &redundancy.ProgramBin{
		Op: redundancy.OpSub,
		L:  redundancy.ProgramVar{Name: "x"},
		R:  redundancy.ProgramVar{Name: "y"},
	}
}

// intSetRules mirrors the IntSet rewriting rules through the public API.
func intSetRules() []redundancy.RewritingRule {
	return []redundancy.RewritingRule{
		{
			Name:     "split-range",
			Match:    []string{"addrange"},
			Priority: 10,
			Replace: func(w []redundancy.WorkaroundOp) []redundancy.WorkaroundOp {
				lo, hi := w[0].Args[0], w[0].Args[1]
				if hi <= lo {
					return nil
				}
				mid := lo + (hi-lo)/2
				return []redundancy.WorkaroundOp{
					{Name: "addrange", Args: []int{lo, mid}},
					{Name: "addrange", Args: []int{mid + 1, hi}},
				}
			},
		},
		{
			Name:     "expand-range",
			Match:    []string{"addrange"},
			Priority: 5,
			Replace: func(w []redundancy.WorkaroundOp) []redundancy.WorkaroundOp {
				lo, hi := w[0].Args[0], w[0].Args[1]
				out := make([]redundancy.WorkaroundOp, 0, hi-lo+1)
				for v := lo; v <= hi; v++ {
					out = append(out, redundancy.WorkaroundOp{Name: "add", Args: []int{v}})
				}
				return out
			},
		},
	}
}

package redundancy_test

// Exercises the thin facade wrappers not covered by the scenario tests,
// so the public surface stays wired to the right internals.

import (
	"context"
	"errors"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
)

func TestFacadePatternWrappers(t *testing.T) {
	ctx := context.Background()
	ok := redundancy.NewVariant("ok", func(_ context.Context, x int) (int, error) { return x, nil })
	accept := func(_ int, _ int) error { return nil }

	single, err := redundancy.NewSingle(ok, redundancy.WithVariantTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := single.Execute(ctx, 3); err != nil || got != 3 {
		t.Errorf("single = (%d, %v)", got, err)
	}

	ps, err := redundancy.NewParallelSelection(
		[]redundancy.Variant[int, int]{ok},
		[]redundancy.AcceptanceTest[int, int]{accept})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ps.Execute(ctx, 4); err != nil || got != 4 {
		t.Errorf("selection = (%d, %v)", got, err)
	}

	sa, err := redundancy.NewSequentialAlternatives(
		[]redundancy.Variant[int, int]{ok}, accept, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sa.Execute(ctx, 5); err != nil || got != 5 {
		t.Errorf("sequential = (%d, %v)", got, err)
	}
}

func TestFacadeAdjudicatorWrappers(t *testing.T) {
	rs := []redundancy.Result[int]{
		{Variant: "a", Value: 1}, {Variant: "b", Value: 1}, {Variant: "c", Value: 2},
	}
	if v, err := redundancy.MOfN(2, redundancy.EqualOf[int]()).Adjudicate(rs); err != nil || v != 1 {
		t.Errorf("MOfN = (%d, %v)", v, err)
	}
	if v, err := redundancy.Weighted(map[string]float64{"a": 5}, 1, redundancy.EqualOf[int]()).Adjudicate(rs); err != nil || v != 1 {
		t.Errorf("Weighted = (%d, %v)", v, err)
	}
	if v, err := redundancy.FirstSuccess[int]().Adjudicate(rs); err != nil || v != 1 {
		t.Errorf("FirstSuccess = (%d, %v)", v, err)
	}
	acc := redundancy.AcceptanceAdjudicator(0, func(_ int, out int) error {
		if out != 2 {
			return redundancy.ErrNotAccepted
		}
		return nil
	})
	if v, err := acc.Adjudicate(rs); err != nil || v != 2 {
		t.Errorf("Acceptance = (%d, %v)", v, err)
	}
}

func TestFacadeCompositeWrappers(t *testing.T) {
	ctx := context.Background()
	ok := redundancy.NewVariant("ok", func(_ context.Context, x int) (int, error) { return x + 1, nil })
	down := redundancy.NewVariant("down", func(_ context.Context, _ int) (int, error) {
		return 0, errors.New("down")
	})
	accept := func(_ int, _ int) error { return nil }

	alt, err := redundancy.AlternatesInvoke(accept, down, ok)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := alt.Execute(ctx, 1); err != nil || got != 2 {
		t.Errorf("alternates = (%d, %v)", got, err)
	}
	spares, err := redundancy.HotSparesInvoke(accept, down, ok)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := spares.Execute(ctx, 1); err != nil || got != 2 {
		t.Errorf("hot spares = (%d, %v)", got, err)
	}
}

func TestFacadeNVersionWithAdjudicator(t *testing.T) {
	mk := func(name string, v float64) redundancy.Variant[int, float64] {
		return redundancy.NewVariant(name, func(_ context.Context, _ int) (float64, error) {
			return v, nil
		})
	}
	sys, err := redundancy.NewNVersionWithAdjudicator(
		[]redundancy.Variant[int, float64]{mk("a", 1), mk("b", 1.01), mk("c", 50)},
		redundancy.MedianAdjudicator())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Execute(context.Background(), 0)
	if err != nil || got != 1.01 {
		t.Errorf("= (%f, %v)", got, err)
	}
}

func TestFacadeMatchersAndServiceHelpers(t *testing.T) {
	boom := errors.New("boom")
	inc := &redundancy.Incident{
		Component: "svc", Err: boom, Labels: map[string]string{"tier": "db"},
	}
	if !redundancy.MatchErrorIs(boom)(inc) {
		t.Error("MatchErrorIs")
	}
	if !redundancy.MatchLabel("tier", "db")(inc) {
		t.Error("MatchLabel")
	}
	if !redundancy.MatchAll(redundancy.MatchComponent("svc"), redundancy.MatchErrorIs(boom))(inc) {
		t.Error("MatchAll")
	}

	a := redundancy.ServiceSignature{Name: "x", Ops: []string{"op"}}
	b := redundancy.ServiceSignature{Name: "y", Ops: []string{"op", "other"}}
	if redundancy.InterfaceSimilarity(a, b) != 1 {
		t.Error("InterfaceSimilarity")
	}
	svc, err := redundancy.NewSimService("s", redundancy.ServiceSignature{Name: "y", Ops: []string{"operate"}},
		map[string]func(int) (int, error){"operate": func(x int) (int, error) { return x, nil }})
	if err != nil {
		t.Fatal(err)
	}
	adapted := redundancy.AdaptService(svc, redundancy.ServiceConverter{"op": "operate"})
	if got, err := adapted.Invoke(context.Background(), "op", 5); err != nil || got != 5 {
		t.Errorf("adapted = (%d, %v)", got, err)
	}
}

func TestFacadeGeneticHelpers(t *testing.T) {
	prog := redundancy.FaultyMaxProgram()
	suite := redundancy.MaxTestSuite()
	fit := redundancy.ProgramFitness(prog, suite)
	if fit >= len(suite) {
		t.Errorf("faulty program fitness = %d, should fail tests", fit)
	}
	res, err := redundancy.RepairProgram(prog, suite,
		redundancy.DefaultRepairConfig([]string{"x", "y"}), redundancy.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired {
		t.Errorf("not repaired: %s", res)
	}
}

func TestFacadeEnvironmentHelpers(t *testing.T) {
	env := redundancy.DefaultEnv()
	env.Load = 0.8
	redundancy.PadAllocations(32)(env)
	redundancy.ShuffleMessages()(env)
	redundancy.RaisePriority(1)(env)
	redundancy.ShedLoad(0.5)(env)
	if env.AllocPadding != 32 || env.Priority != 1 || env.Load != 0.4 {
		t.Errorf("perturbed env = %+v", env)
	}

	prog := func(_ context.Context, _ *redundancy.Env, x int) (int, error) { return x, nil }
	ckp, err := redundancy.NewCheckpointRecovery(prog, redundancy.DefaultEnv(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ckp.Execute(context.Background(), 8); err != nil || got != 8 {
		t.Errorf("= (%d, %v)", got, err)
	}

	store := redundancy.NewCheckpointStore[int](2)
	id, err := store.Save(9)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := store.Restore(id); err != nil || v != 9 {
		t.Errorf("restore = (%d, %v)", v, err)
	}
	log := redundancy.NewMessageLog[string]()
	log.Append("m")
	if log.Len() != 1 {
		t.Error("message log")
	}
	if _, _, err := redundancy.NewCheckpointStore[int](1).Latest(); !errors.Is(err, redundancy.ErrNoCheckpoint) {
		t.Errorf("Latest on empty store: %v", err)
	}
}

func TestFacadeSuperviseWrappers(t *testing.T) {
	dir := t.TempDir()

	// Durable checkpoint store through the facade: acknowledged writes
	// survive a close/reopen cycle.
	add := func(s int, op int) (int, error) { return s + op, nil }
	r, err := redundancy.OpenDurableRunner(dir, 0, add, redundancy.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := r.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = redundancy.OpenDurableRunner(dir, 0, add, redundancy.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.State(); got != 10 {
		t.Errorf("recovered state = %d, want 10", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Bare WAL through the facade.
	w, err := redundancy.OpenWAL(t.TempDir(), redundancy.WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 1 {
		t.Errorf("LastSeq = %d, want 1", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Supervisor through the facade: a transient child that fails once,
	// restarts, and then exits cleanly.
	failures := 0
	sup := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Name:      "facade-sup",
		Strategy:  redundancy.OneForOne,
		Intensity: redundancy.RestartIntensity{MaxRestarts: 3, Window: time.Minute},
	})
	if err := sup.Add(redundancy.ChildSpec{
		Name:    "flaky",
		Restart: redundancy.RestartTransient,
		Run: func(context.Context) error {
			if failures == 0 {
				failures++
				return errors.New("first run fails")
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sup.Serve(context.Background()); err != nil {
		t.Fatalf("Serve = %v", err)
	}
	if got := sup.Restarts("flaky"); got != 1 {
		t.Errorf("restarts = %d, want 1", got)
	}

	// Escalation surfaces the facade sentinel.
	esc := redundancy.NewSupervisor(redundancy.SupervisorOptions{
		Intensity: redundancy.RestartIntensity{MaxRestarts: 1, Window: time.Minute},
	})
	if err := esc.Add(redundancy.ChildSpec{
		Name: "doomed",
		Run:  func(context.Context) error { panic("always") },
	}); err != nil {
		t.Fatal(err)
	}
	err = esc.Serve(context.Background())
	if !errors.Is(err, redundancy.ErrSupervisorEscalated) {
		t.Errorf("Serve = %v, want ErrSupervisorEscalated", err)
	}
	if !errors.Is(err, redundancy.ErrChildPanicked) {
		t.Errorf("Serve = %v, want ErrChildPanicked in chain", err)
	}
}

func TestFacadeNCopy(t *testing.T) {
	program := redundancy.NewVariant("p", func(_ context.Context, x int) (int, error) {
		if x == 5 {
			return 0, errors.New("region")
		}
		return 42, nil
	})
	nc, err := redundancy.NewNCopy(program,
		[]redundancy.Reexpression[int]{{
			Name:  "shift",
			Apply: func(x int, _ *redundancy.Rand) int { return x + 100 },
			Exact: true,
		}},
		2, redundancy.FirstSuccess[int](), redundancy.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := nc.Execute(context.Background(), 5); err != nil || got != 42 {
		t.Errorf("= (%d, %v)", got, err)
	}
}

func TestFacadeDistributedWrappers(t *testing.T) {
	ctx := context.Background()
	network := redundancy.NewPipeNetwork()
	ln, err := network.Listen("r1")
	if err != nil {
		t.Fatal(err)
	}
	v := redundancy.NewVariant("double", func(_ context.Context, x int) (int, error) { return 2 * x, nil })
	srv := redundancy.NewReplicaServer(v, ln, redundancy.ReplicaServerConfig{Name: "r1"})
	go srv.Serve(ctx)
	defer srv.Close()

	det := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Timeout: 200 * time.Millisecond, SuspectAfter: 1,
	})
	det.Watch("r1", network.Dial("r1"))
	det.Poll(ctx)
	if got := det.State("r1"); got != redundancy.ReplicaAlive {
		t.Errorf("detector state = %v, want ReplicaAlive", got)
	}
	for _, s := range []redundancy.ReplicaState{
		redundancy.ReplicaAlive, redundancy.ReplicaSuspect, redundancy.ReplicaDead,
	} {
		if s.String() == "" {
			t.Errorf("ReplicaState %d has no name", s)
		}
	}

	remote, err := redundancy.NewRemoteVariant[int, int]("doubler", redundancy.RemoteConfig{
		Detector: det,
	}, redundancy.ReplicaEndpoint{Name: "r1", Dial: network.Dial("r1")})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := remote.Execute(ctx, 21); err != nil || got != 42 {
		t.Errorf("remote = (%d, %v)", got, err)
	}
	remote.Close()
	if _, err := remote.Execute(ctx, 1); !errors.Is(err, redundancy.ErrRemoteClientClosed) {
		t.Errorf("closed remote = %v, want ErrRemoteClientClosed", err)
	}

	if dial := redundancy.TCPDialer("127.0.0.1:1"); dial == nil {
		t.Error("TCPDialer returned nil")
	}
	ghost := network.Dial("ghost")
	if _, err := ghost(ctx); !errors.Is(err, redundancy.ErrReplicaUnavailable) {
		t.Errorf("ghost dial = %v, want ErrReplicaUnavailable", err)
	}
	// The frame sentinels are distinct, exported errors.
	if errors.Is(redundancy.ErrBadFrame, redundancy.ErrFrameTooLarge) ||
		redundancy.ErrBadFrame == nil || redundancy.ErrRemote == nil {
		t.Error("frame sentinels miswired")
	}
}

func TestFacadeNetworkCampaignWrappers(t *testing.T) {
	nc := redundancy.DefaultNetworkCampaign(7, "victim")
	if err := nc.Validate(); err != nil {
		t.Fatalf("default campaign invalid: %v", err)
	}
	if nc.Total() <= 0 {
		t.Error("default campaign has no duration")
	}
	parsed, err := redundancy.ParseNetworkCampaign([]byte(
		`{"name":"p","seed":1,"phases":[{"name":"calm","duration":"10ms"}]}`))
	if err != nil {
		t.Fatalf("ParseNetworkCampaign: %v", err)
	}
	var phase redundancy.NetworkPhase = parsed.Phases[0]
	if phase.Name != "calm" {
		t.Errorf("phase = %+v", phase)
	}
	nc.Start()
	dial := nc.Wrap("victim", redundancy.DialFunc(redundancy.NewPipeNetwork().Dial("victim")))
	if _, err := dial(context.Background()); err == nil {
		t.Error("wrapped dial to missing listener succeeded")
	}
	if !errors.Is(redundancy.ErrPartitioned, redundancy.ErrPartitioned) ||
		redundancy.ErrConnReset == nil {
		t.Error("network sentinels miswired")
	}
}

package redundancy

import (
	"context"

	"github.com/softwarefaults/redundancy/internal/faultmodel"
)

// Deterministic chaos campaigns: seeded schedules of latency spikes,
// error bursts, hangs, and correlated failures, driven against any
// executor. Activation decisions are pure functions of
// (seed, phase, request index, disturbance kind, variant), so a campaign
// replays identically regardless of goroutine interleaving — chaos
// testing with the reproducibility discipline of the rest of the fault
// model. `faultsim -chaos` runs these from the command line.
type (
	// ChaosCampaign is a deterministic chaos schedule: an ordered list
	// of phases driven by a seed.
	ChaosCampaign = faultmodel.Campaign
	// ChaosPhase is one segment of a campaign: a block of consecutive
	// requests with a fixed mix of disturbances.
	ChaosPhase = faultmodel.ChaosPhase
	// ChaosDuration is a time.Duration that (un)marshals as a Go
	// duration string ("250ms") in campaign spec files.
	ChaosDuration = faultmodel.Duration
	// ChaosVariant decorates a variant with a campaign's disturbances;
	// outside a campaign request it is transparent.
	ChaosVariant[I, O any] = faultmodel.Chaos[I, O]
	// CampaignReport is the outcome of one campaign run.
	CampaignReport = faultmodel.CampaignReport
	// PhaseReport is one phase's outcome tally.
	PhaseReport = faultmodel.PhaseReport
)

// ErrMaxHang reports that an injected hang blocked for the configured
// MaxHang guard duration and was released without the context being
// canceled.
var ErrMaxHang = faultmodel.ErrMaxHang

// ChaosVariants wraps every variant in vs with the campaign.
func ChaosVariants[I, O any](c *ChaosCampaign, vs []Variant[I, O]) []Variant[I, O] {
	return faultmodel.ChaosVariants(c, vs)
}

// RunChaosCampaign drives the executor through the whole schedule,
// phase by phase, with each phase's configured concurrency, and tallies
// outcomes. input derives the request payload from the global request
// index; collector, if non-nil, contributes its final observation
// snapshot to the report.
func RunChaosCampaign[I, O any](ctx context.Context, c *ChaosCampaign, exec Executor[I, O], input func(req uint64) I, collector *Collector) (*CampaignReport, error) {
	return faultmodel.RunCampaign(ctx, c, exec, input, collector)
}

// ParseChaosCampaign decodes a campaign spec (JSON; durations as Go
// duration strings) and validates it.
func ParseChaosCampaign(data []byte) (*ChaosCampaign, error) {
	return faultmodel.ParseCampaign(data)
}

// DefaultChaosCampaign is the built-in schedule used by
// `faultsim -chaos` without a spec file.
func DefaultChaosCampaign(seed uint64) *ChaosCampaign {
	return faultmodel.DefaultCampaign(seed)
}

// RecoveryChaosCampaign is the built-in kill schedule used by
// `faultsim -crash`: phases of scheduled panics and crash errors
// against a supervised worker, derived from the seed.
func RecoveryChaosCampaign(seed uint64) *ChaosCampaign {
	return faultmodel.RecoveryCampaign(seed)
}

// WithChaosRequestIndex tags a context with the campaign-global request
// index; chaos variants read it to decide activation. RunChaosCampaign
// tags every request it issues — use this only when driving chaos
// variants by hand.
func WithChaosRequestIndex(ctx context.Context, req uint64) context.Context {
	return faultmodel.WithRequestIndex(ctx, req)
}

package redundancy

import "github.com/softwarefaults/redundancy/internal/repstore"

// Replicated stateful store: N-version programming applied to diverse
// storage servers (Gashi et al.), with result voting and state
// reconciliation.
type (
	// StoreReplica is one independently implemented store replica.
	StoreReplica = repstore.Replica
	// SimStoreReplica is a simulated replica with seeded faults.
	SimStoreReplica = repstore.SimReplica
	// ReplicatedStore fans out operations over replicas, votes on reads,
	// reconciles state after writes, and repairs divergent replicas.
	ReplicatedStore = repstore.System
)

// Replicated-store errors.
var (
	// ErrKeyNotFound reports a read of an absent key.
	ErrKeyNotFound = repstore.ErrKeyNotFound
	// ErrNoQuorum reports that no replica majority agreed.
	ErrNoQuorum = repstore.ErrNoQuorum
)

// NewSimStoreReplica creates an empty simulated store replica.
func NewSimStoreReplica(name string) *SimStoreReplica {
	return repstore.NewSimReplica(name)
}

// NewReplicatedStore builds a replicated store over at least 3 replicas.
func NewReplicatedStore(replicas []StoreReplica) (*ReplicatedStore, error) {
	return repstore.NewSystem(replicas)
}

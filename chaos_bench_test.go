package redundancy_test

// Throughput of the full resilience-policy stack under a deterministic
// chaos campaign, with and without the bulkhead, so the cost of load
// shedding under overload is measurable (scripts/bench.sh records both
// in BENCH_resilience.json).

import (
	"context"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
)

// chaosBenchCampaign has no sleeps or hangs — error bursts and a
// concurrent overload phase only — so the benchmark measures policy
// overhead, not injected latency.
func chaosBenchCampaign() *redundancy.ChaosCampaign {
	return &redundancy.ChaosCampaign{
		Name: "bench",
		Seed: 42,
		Phases: []redundancy.ChaosPhase{
			{Name: "burst", Requests: 64, ErrorBurst: 0.25},
			{Name: "overload", Requests: 192, Concurrency: 32, ErrorBurst: 0.25},
		},
	}
}

func benchmarkChaosCampaign(b *testing.B, withBulkhead bool) {
	camp := chaosBenchCampaign()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh stack per iteration keeps iterations independent:
		// breaker state and the last-good cache do not leak across runs.
		collector := redundancy.NewCollector()
		opts := []redundancy.PatternOption{
			redundancy.WithObserver(collector),
			redundancy.WithBreaker(redundancy.NewBreakers(redundancy.BreakerConfig{
				ConsecutiveFailures: 5,
				OpenFor:             time.Hour,
			})),
			redundancy.WithRetryPolicy(redundancy.RetryPolicy{
				Seed:   42,
				Budget: redundancy.NewRetryBudget(100, 1),
			}),
			redundancy.WithDeadline(250*time.Millisecond, 50*time.Millisecond),
			redundancy.WithFallback(redundancy.NewFallbackLadder[int, int]().CacheLastGood()),
		}
		if withBulkhead {
			opts = append(opts, redundancy.WithBulkhead(redundancy.NewBulkhead(
				redundancy.BulkheadConfig{MaxConcurrent: 4, MaxWaiting: 4})))
		}
		sa, err := redundancy.NewSequentialAlternatives(
			chaosVariants(camp),
			func(_, _ int) error { return nil },
			nil,
			opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := redundancy.RunChaosCampaign(context.Background(), camp, sa,
			func(req uint64) int { return int(req) }, collector); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*camp.Total())/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkChaosCampaignWithBulkhead(b *testing.B) { benchmarkChaosCampaign(b, true) }

func BenchmarkChaosCampaignNoBulkhead(b *testing.B) { benchmarkChaosCampaign(b, false) }

package redundancy

import (
	"io"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/obs/health"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/rejuv"
)

// The health diagnosis layer: a HealthEngine subscribes to the
// observation stream (attach it like any Observer), maintains EWMA
// health scores per executor and per variant, and classifies observed
// failure behavior into the paper's fault classes — deterministic repeat
// failures are Bohrbug-like, intermittent pass/fail is Heisenbug-like,
// and failures repeatedly cured by rejuvenation indicate aging. The
// diagnosis feeds back into the redundancy mechanisms: WithVariantRanker
// makes sequential alternatives and hot spares prefer healthy variants,
// and HealthRejuvenation triggers rejuvenation on a degraded score.
type (
	// HealthEngine is the diagnosis engine; it implements Observer and
	// VariantRanker.
	HealthEngine = health.Engine
	// HealthConfig parameterizes the engine (zero value = defaults).
	HealthConfig = health.Config
	// HealthStatus is the /healthz document: overall status plus the
	// full per-executor diagnosis.
	HealthStatus = health.Status
	// ExecutorHealth is a point-in-time diagnosis of one executor.
	ExecutorHealth = health.ExecutorHealth
	// VariantHealth is a point-in-time diagnosis of one variant,
	// including its suspected fault class.
	VariantHealth = health.VariantHealth
	// DiagnosedFaultClass is a fault class as diagnosed from runtime
	// evidence (distinct from the taxonomy's FaultClass axis, which
	// classifies techniques, not observations).
	DiagnosedFaultClass = health.FaultClass
	// VariantRanker orders variant names best-first; see
	// WithVariantRanker.
	VariantRanker = pattern.Ranker
	// HealthRejuvenation is the health-triggered rejuvenation policy:
	// it rejuvenates when a live health score drops below a threshold.
	HealthRejuvenation = rejuv.HealthPolicy
	// ObservationEndpoint mounts an additional endpoint (and optional
	// Prometheus series) on the ObservationHandler.
	ObservationEndpoint = obs.Extra
)

// Diagnosed fault classes.
const (
	// DiagnosisUnknown: not enough executions to diagnose.
	DiagnosisUnknown = health.ClassUnknown
	// DiagnosisHealthy: no observed failure.
	DiagnosisHealthy = health.ClassHealthy
	// DiagnosisBohrbug: failures repeat deterministically.
	DiagnosisBohrbug = health.ClassBohrbug
	// DiagnosisHeisenbug: failures are intermittent.
	DiagnosisHeisenbug = health.ClassHeisenbug
	// DiagnosisAging: failures are repeatedly cured by rejuvenation.
	DiagnosisAging = health.ClassAging
)

// NewHealthEngine returns a diagnosis engine (zero HealthConfig selects
// the documented defaults). Attach it to executors with WithObserver
// (compose with other observers via CombineObservers), expose it with
// ObservationHandler(c, tr, engine.Extra()), and feed it back with
// WithVariantRanker(engine) or HealthRejuvenation.
func NewHealthEngine(cfg HealthConfig) *HealthEngine { return health.New(cfg) }

// WithVariantRanker attaches a variant ranker (typically a HealthEngine)
// to a pattern executor: sequential alternatives try the best-ranked
// variant first, and parallel selection prefers the best-ranked
// acceptable result. A nil ranker keeps the configured order.
func WithVariantRanker(r VariantRanker) PatternOption { return pattern.WithRanker(r) }

// ReplayTraces feeds recorded traces through a diagnosis engine in
// chronological order — the forensic path: export a TraceRecorder ring
// (WriteJSON, the /traces endpoint, or the -trace-out flag of faultsim
// and experiments) and replay it offline to reproduce scores and
// fault-class calls (see cmd/obsreport).
func ReplayTraces(e *HealthEngine, traces []RequestTrace) { health.Replay(e, traces) }

// ReadTraces decodes a TraceRecorder JSON export.
func ReadTraces(r io.Reader) ([]RequestTrace, error) { return health.ReadTraces(r) }

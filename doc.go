// Package redundancy is a general-purpose framework for handling software
// faults with redundancy, reproducing the taxonomy and the seventeen
// technique families surveyed by Carzaniga, Gorla and Pezzè in "Handling
// Software Faults with Redundancy".
//
// A system is redundant when it is capable of executing the same,
// logically unique functionality in multiple ways or in multiple
// instances. This package models the alternative implementations as
// Variant values, the mechanisms that select or validate results as
// Adjudicator and AcceptanceTest values, and offers executors for the
// three inter-component architectural patterns of the paper's Figure 1:
//
//   - parallel evaluation (NewParallelEvaluation): all variants run
//     concurrently and one adjudicator — typically a Majority vote —
//     selects the result, as in N-version programming;
//   - parallel selection (NewParallelSelection): variants run
//     concurrently, each validated by its own acceptance test, with
//     failing components disabled, as in self-checking programming;
//   - sequential alternatives (NewSequentialAlternatives): variants run
//     one at a time with rollback between attempts, as in recovery
//     blocks.
//
// On top of the patterns, the package exposes every technique of the
// paper's Table 2: N-version programming (NewNVersion), recovery blocks
// (NewRecoveryBlock), self-checking programming (NewSelfCheckingSystem),
// self-optimizing code (NewOptimizer), rule engines (NewRuleEngine),
// wrappers (NewHeapHealer, NewProtocolWrapper), robust data structures
// (NewRobustList, NewRobustMap), data diversity (NewRetryBlock, NewNCopy,
// NewNVariantCell), rejuvenation (NewRejuvenator, SimulateCompletion),
// environment perturbation (NewPerturbationExecutor), checkpoint-recovery
// (NewCheckpointRecovery, NewCheckpointStore), process replicas
// (NewReplicaSystem), dynamic service substitution (NewServiceRegistry,
// NewServiceProxy), genetic-programming fault fixing (RepairProgram), and
// automatic workarounds (NewWorkaroundEngine).
//
// The taxonomy itself is a first-class value: Techniques returns the
// classified technique records (queryable by dimension with
// TechniquesByIntention, TechniquesByType, TechniquesByFaultClass and
// TechniquesByPattern) and Table1/Table2 regenerate the paper's tables.
//
// Beyond the Table 2 rows, the package offers the supporting layers a
// deployment needs: BPEL-style compensable process composition
// (NewCompositeProcess with RetryInvoke / AlternatesInvoke / VotingInvoke
// / HotSparesInvoke steps), a replicated stateful store with read voting
// and state reconciliation (NewReplicatedStore), reusable re-expression
// families for data diversity (TranslateInts, PermuteInts, JitterFloat,
// NewScaleFamily), classical dependability algebra
// (SteadyStateAvailability, KOfNReliability, MajorityReliability), panic
// containment for untrusted variants (GuardVariant), inexact comparison
// for numeric voting (ApproxEqual), and structured observability for all
// pattern executors (WithLogger).
//
// The process-replicas row extends across real process boundaries: any
// Variant can be served as a remote replica over a length-prefixed,
// CRC32-framed RPC transport (NewReplicaServer, on a net.Listener or the
// in-memory NewPipeNetwork), and NewRemoteVariant turns a set of replica
// endpoints back into a Variant — with per-call deadlines, circuit-breaker
// gating, hedged requests whose first acceptable answer wins, and routing
// ranked by a heartbeat failure detector (NewFailureDetector) that
// convicts silent replicas (ReplicaAlive, ReplicaSuspect, ReplicaDead)
// and pardons them when they heal. Because the remote client is itself a
// Variant, process replicas plug into all four pattern executors
// unchanged. The network's own faults are part of the fault model:
// NewPipeNetwork dials can be wrapped by a NetworkCampaign
// (DefaultNetworkCampaign, ParseNetworkCampaign) injecting seeded
// partitions, packet loss, duplication, reordering, latency spikes and
// connection resets on a wall-clock phase schedule.
//
// Everything is deterministic: components that need randomness accept an
// explicit *Rand created with NewRand(seed).
package redundancy

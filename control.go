package redundancy

import (
	"github.com/softwarefaults/redundancy/internal/control"
)

// The autonomic control plane: a Controller closes the loop from
// fleet-wide diagnosis to live reconfiguration. It subscribes to the
// observation stream (collector snapshots, SLO burn windows, failure-
// detector membership, health diagnoses) on a fixed reconciliation
// tick, hands the combined picture to its policies, and carries the
// actions they propose out through pluggable actuators — replacing
// convicted-dead replicas, retuning hedge delays and retry deposits
// against the measured tail, and routing each diagnosed fault class to
// the recovery that actually helps it. Every performed action is
// published as a ControlActionTaken observation event; every actuator
// sits behind a per-kind rate limit; the whole loop sits behind a
// global kill switch.
type (
	// Controller is the reconciliation loop.
	Controller = control.Controller
	// ControllerConfig parameterizes a Controller (zero value =
	// defaults: 500ms tick, 4 actions per kind per 10s window).
	ControllerConfig = control.Config
	// ControlSources wires the controller to the live observation
	// stream; every field is optional.
	ControlSources = control.Sources
	// ControlInputs is one tick's fleet-wide observation picture.
	ControlInputs = control.Inputs
	// ControlAction is one reconfiguration decision: kind, cause,
	// target, and the old → new setting.
	ControlAction = control.Action
	// ControlActuator carries out actions of one kind.
	ControlActuator = control.Actuator
	// ControlPolicy proposes actions from one tick's inputs.
	ControlPolicy = control.Policy
	// ReplacementPolicy proposes replacing detector-convicted-dead
	// replicas, attributing the convicting evidence track.
	ReplacementPolicy = control.ReplacementPolicy
	// TailPolicy adapts hedge delay and retry-deposit rate to the
	// measured p99 and burn rate, with hysteresis against flapping.
	TailPolicy = control.TailPolicy
	// TailPolicyConfig parameterizes a TailPolicy.
	TailPolicyConfig = control.TailPolicyConfig
	// DiagnosisPolicy routes diagnosed fault classes to recovery:
	// substitution for bohrbugs, rejuvenation for aging and hard
	// failure runs, nothing for heisenbugs.
	DiagnosisPolicy = control.DiagnosisPolicy
	// DiagnosisPolicyConfig parameterizes a DiagnosisPolicy.
	DiagnosisPolicyConfig = control.DiagnosisPolicyConfig
	// GrayFailurePolicy routes replicas with persistent slowness
	// evidence — gray-failed: heartbeating, truthful, limping — to
	// rejuvenation, with deadband/settle/cooldown hysteresis.
	GrayFailurePolicy = control.GrayFailurePolicy
	// GrayFailurePolicyConfig parameterizes a GrayFailurePolicy.
	GrayFailurePolicyConfig = control.GrayFailurePolicyConfig
)

// Action kinds the built-in control policies propose.
const (
	// ControlActionReplace spawns a replacement replica for a
	// convicted-dead endpoint and splices it into the live set.
	ControlActionReplace = control.ActionReplace
	// ControlActionHedgeTune raises or lowers a Remote's hedge delay.
	ControlActionHedgeTune = control.ActionHedgeTune
	// ControlActionDepositTune raises or lowers a retry budget's
	// per-request deposit rate.
	ControlActionDepositTune = control.ActionDepositTune
	// ControlActionRejuvenate micro-reboots an aging-diagnosed variant.
	ControlActionRejuvenate = control.ActionRejuvenate
	// ControlActionSubstitute rebinds a bohrbug-diagnosed variant to a
	// substitute service implementation.
	ControlActionSubstitute = control.ActionSubstitute
)

// NewController builds a controller; it starts enabled, and
// SetEnabled(false) is the global kill switch.
func NewController(cfg ControllerConfig) *Controller { return control.New(cfg) }

// NewTailPolicy builds the adaptive tail policy.
func NewTailPolicy(cfg TailPolicyConfig) *TailPolicy { return control.NewTailPolicy(cfg) }

// NewDiagnosisPolicy builds the diagnosis-directed recovery policy.
func NewDiagnosisPolicy(cfg DiagnosisPolicyConfig) *DiagnosisPolicy {
	return control.NewDiagnosisPolicy(cfg)
}

// NewGrayFailurePolicy builds the gray-failure rejuvenation policy.
func NewGrayFailurePolicy(cfg GrayFailurePolicyConfig) *GrayFailurePolicy {
	return control.NewGrayFailurePolicy(cfg)
}

package redundancy

import (
	"net"

	"github.com/softwarefaults/redundancy/internal/dist"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/obs"
)

// Distributed replicas: the paper's *process replicas* technique
// (deliberate redundancy in the environment dimension) over a real,
// faulty transport. A ReplicaServer exposes any Variant behind a
// length-prefixed CRC-framed RPC endpoint; a RemoteVariant is a Variant
// whose Execute happens on the far side, so it plugs unchanged into all
// four pattern executors. The client side carries the distributed-
// systems defenses the paper's single-process treatment abstracts away:
// per-endpoint deadlines, circuit-breaker integration, hedged requests
// against tail latency, and a heartbeat FailureDetector whose
// alive/suspect/dead membership steers routing away from partitioned
// replicas. NetworkCampaign injects seeded partitions, loss,
// duplication, reordering, latency spikes, and connection resets into
// the same dial path, so every defense is exercised against the failure
// mode that motivates it. `faultsim -net` and `faultsim -net-chaos`
// demonstrate the fleet end to end.
type (
	// ReplicaEndpoint is one dialable replica address: a name (used for
	// breaker state, detector membership, and observation events) plus a
	// DialFunc.
	ReplicaEndpoint = dist.Endpoint
	// RemoteConfig tunes a RemoteVariant: per-endpoint call timeout,
	// hedging (HedgeAfter, MaxHedges), breakers, failure detector, and
	// observer.
	RemoteConfig = dist.RemoteConfig
	// ReplicaServerConfig tunes a ReplicaServer: name, server-side call
	// timeout, observer.
	ReplicaServerConfig = dist.ServerConfig
	// FailureDetectorConfig tunes a FailureDetector: heartbeat interval
	// and timeout, suspect/dead thresholds, observer.
	FailureDetectorConfig = dist.DetectorConfig
	// FailureDetector is the heartbeat failure detector: it pings watched
	// replicas each interval and publishes alive/suspect/dead membership.
	// It implements the pattern executors' Ranker contract, so it can
	// also order local variants by liveness via WithRanker.
	FailureDetector = dist.Detector
	// DialFunc opens one connection to a replica endpoint.
	DialFunc = dist.DialFunc
	// PipeNetwork is the in-memory transport: named listeners connected
	// by synchronous pipes, for deterministic tests and simulations.
	PipeNetwork = dist.PipeNetwork
	// ReplicaState is a failure detector's opinion of one replica.
	ReplicaState = obs.ReplicaState

	// NetworkCampaign is a seeded, phased schedule of network faults
	// injected into replica dial paths.
	NetworkCampaign = faultmodel.NetworkCampaign
	// NetworkPhase is one wall-clock window of network weather within a
	// NetworkCampaign.
	NetworkPhase = faultmodel.NetworkPhase

	// LatencyEjectorConfig tunes a LatencyEjector: EWMA smoothing, the
	// peer-relative ejection threshold, the rotation floor, and the
	// probation/reinstatement schedule.
	LatencyEjectorConfig = dist.EjectorConfig
	// LatencyEjector tracks per-endpoint latency EWMAs from the client's
	// own attempts, ejects peer-relative outliers from routing, probes
	// them on a trickle, and reinstates sustained recoveries — the
	// gray-failure containment layer. Wire one into RemoteConfig.Ejector.
	LatencyEjector = dist.Ejector
	// EndpointLatency is one endpoint's row in a LatencyEjector snapshot.
	EndpointLatency = dist.EndpointLatency
	// SlowProfile selects a FailSlowVariant's limp shape: constant,
	// progressive, or bursts.
	SlowProfile = faultmodel.SlowProfile

	// QuorumConfig tunes a QuorumVariant: per-endpoint call timeout, the
	// fault-tolerance target k (construction enforces n >= 2k+1), the
	// early-adjudication threshold MinReplies, the failure detector
	// accusations feed into, and the observer.
	QuorumConfig = dist.QuorumConfig
	// AdversaryStrategy selects when a Byzantine adversary lies:
	// always, intermittent, or collude.
	AdversaryStrategy = faultmodel.AdversaryStrategy
)

// Byzantine adversary strategies.
const (
	AdversaryAlways       = faultmodel.AdversaryAlways
	AdversaryIntermittent = faultmodel.AdversaryIntermittent
	AdversaryCollude      = faultmodel.AdversaryCollude
)

// Fail-slow limp profiles.
const (
	SlowConstant    = faultmodel.SlowConstant
	SlowProgressive = faultmodel.SlowProgressive
	SlowBursts      = faultmodel.SlowBursts
)

// Failure-detector verdicts.
const (
	ReplicaAlive   = obs.ReplicaAlive
	ReplicaSuspect = obs.ReplicaSuspect
	ReplicaDead    = obs.ReplicaDead
)

// Sentinel errors of the distributed layer.
var (
	// ErrReplicaUnavailable reports a dial to an endpoint that is not
	// listening.
	ErrReplicaUnavailable = dist.ErrReplicaUnavailable
	// ErrRemote marks a failure reported by the replica server: the
	// variant on the far side executed and failed (or panicked; the
	// server contains panics). Only the message survives the wire.
	ErrRemote = dist.ErrRemote
	// ErrBadFrame reports a corrupt RPC frame (CRC or length violation);
	// the connection is abandoned.
	ErrBadFrame = dist.ErrBadFrame
	// ErrFrameTooLarge reports an RPC frame exceeding the size limit.
	ErrFrameTooLarge = dist.ErrFrameTooLarge
	// ErrFrameVersionMismatch reports a frame whose header names a wire
	// version this build does not speak; the connection is abandoned
	// rather than misparsed.
	ErrFrameVersionMismatch = dist.ErrVersionMismatch
	// ErrRemoteClientClosed reports a call on a closed RemoteVariant.
	ErrRemoteClientClosed = dist.ErrClientClosed
	// ErrPartitioned reports an operation on an endpoint cut off by the
	// current NetworkCampaign phase.
	ErrPartitioned = faultmodel.ErrPartitioned
	// ErrConnReset reports an injected connection reset.
	ErrConnReset = faultmodel.ErrConnReset
	// ErrQuorumSize reports a QuorumVariant constructed with fewer than
	// 2k+1 endpoints for its fault-tolerance target k.
	ErrQuorumSize = dist.ErrQuorumSize
)

// RemoteVariant is a Variant executing on a remote replica: framed RPC
// out, result (or in-band failure) back, with failover across endpoints,
// optional hedging, breaker gating, and detector-ranked routing.
type RemoteVariant[I, O any] = dist.Remote[I, O]

// ReplicaServer exposes one Variant as a remote replica behind a
// net.Listener, answering calls and heartbeat pings. Its accept loop is
// supervisable via AsChild.
type ReplicaServer[I, O any] = dist.Server[I, O]

// NewRemoteVariant builds a remote variant over one or more endpoints.
func NewRemoteVariant[I, O any](name string, cfg RemoteConfig, endpoints ...ReplicaEndpoint) (*RemoteVariant[I, O], error) {
	return dist.NewRemote[I, O](name, cfg, endpoints...)
}

// QuorumVariant is a Variant that fans every call out to all of its
// replica endpoints and returns the vote-adjudicated verdict — the
// paper's 2k+1 majority claim carried across the process boundary.
// Outvoted replies become ReplicaOutvoted observation events and
// failure-detector accusations, so a replica that answers promptly but
// lies is still convicted.
type QuorumVariant[I, O any] = dist.Quorum[I, O]

// ByzantineAdversary wraps a correct Variant as a lying replica: it
// executes the base correctly, then deterministically replaces the
// answer with a plausible lie according to its strategy — always,
// intermittent (per-replica input subset), or collude (shared input
// subset and shared wrong answer, the correlated failure of Brilliant
// et al. that defeats voting once the cartel exceeds k).
type ByzantineAdversary[I, O any] = faultmodel.Adversary[I, O]

// NewQuorumVariant builds a quorum variant over at least 2k+1
// endpoints. adj decides the verdict (Majority for the paper's strict
// reading); eq is the agreement relation used to attribute each reply
// to the verdict.
func NewQuorumVariant[I, O any](name string, cfg QuorumConfig, adj Adjudicator[O], eq Equal[O], endpoints ...ReplicaEndpoint) (*QuorumVariant[I, O], error) {
	return dist.NewQuorum[I, O](name, cfg, adj, eq, endpoints...)
}

// ParseAdversarySpec parses the "strategy:count" form of the faultsim
// -adversary flag (e.g. "collude:2"); a bare strategy means count 1.
func ParseAdversarySpec(spec string) (AdversaryStrategy, int, error) {
	return faultmodel.ParseAdversarySpec(spec)
}

// FailSlowVariant wraps a correct Variant as a gray-failed replica: it
// answers every call correctly and acks every heartbeat, but stalls
// each execution by a profile-shaped multiple of its base latency —
// the fail-slow fault of Gunawi et al. that liveness-only detection
// cannot see. Rejuvenate cures the limp, modeling a micro-reboot.
type FailSlowVariant[I, O any] = faultmodel.FailSlow[I, O]

// ParseFailSlowSpec parses the "profile:factor" form of the faultsim
// -gray-spec flag (e.g. "constant:20"); a bare profile means factor 20.
func ParseFailSlowSpec(spec string) (SlowProfile, float64, error) {
	return faultmodel.ParseFailSlowSpec(spec)
}

// NewLatencyEjector builds a latency-outlier ejector with no endpoints;
// it learns the fleet from the Observe calls the remote client feeds it.
func NewLatencyEjector(cfg LatencyEjectorConfig) *LatencyEjector {
	return dist.NewEjector(cfg)
}

// NewReplicaServer wraps a variant as a replica served from ln.
func NewReplicaServer[I, O any](variant Variant[I, O], ln net.Listener, cfg ReplicaServerConfig) *ReplicaServer[I, O] {
	return dist.NewServer(variant, ln, cfg)
}

// NewFailureDetector returns a detector with no members; Watch replicas,
// then Run it (or drive Poll by hand).
func NewFailureDetector(cfg FailureDetectorConfig) *FailureDetector {
	return dist.NewDetector(cfg)
}

// NewPipeNetwork returns an empty in-memory network.
func NewPipeNetwork() *PipeNetwork { return dist.NewPipeNetwork() }

// TCPDialer returns a DialFunc connecting to addr over TCP.
func TCPDialer(addr string) DialFunc { return dist.TCPDialer(addr) }

// DefaultNetworkCampaign is the builtin network-chaos schedule: clean
// warmup, lossy degradation, a partition of the victim endpoint, a flaky
// stretch of resets and spikes, and a clean recovery tail.
func DefaultNetworkCampaign(seed uint64, victim string) *NetworkCampaign {
	return faultmodel.DefaultNetworkCampaign(seed, victim)
}

// ParseNetworkCampaign decodes and validates a JSON network campaign.
func ParseNetworkCampaign(data []byte) (*NetworkCampaign, error) {
	return faultmodel.ParseNetworkCampaign(data)
}

package redundancy

import (
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/resilience"
)

// The resilience-policy layer: circuit breakers, budgeted backed-off
// retries, bulkhead load shedding, default deadlines, and graceful
// degradation, attached to any pattern executor through options. The
// policies complement the paper's redundancy patterns with *preventive*
// triggers — they act before (or instead of) executing a variant that is
// known-bad, overloaded, or out of time, where the adjudicators act on
// results after the fact. Every policy decision is observable: breakers
// emit BreakerStateChanged, shed requests emit RequestShed, and ladder
// serves emit DegradedServe, all flowing into the same Observer layer as
// the executors' own spans.
type (
	// Breakers is a per-variant circuit-breaker set shared by the
	// executors it is attached to (pattern option WithBreaker).
	Breakers = resilience.Breakers
	// Breaker is one variant's circuit breaker (closed → open →
	// half-open), usable standalone via NewBreaker.
	Breaker = resilience.Breaker
	// BreakerConfig parameterizes circuit breakers; the zero value
	// selects the documented defaults.
	BreakerConfig = resilience.BreakerConfig
	// BreakerToken correlates one admitted call with the breaker state
	// that admitted it.
	BreakerToken = resilience.Token
	// BreakerState is a circuit breaker's state (closed, open, half-open).
	BreakerState = obs.BreakerState
	// RetryPolicy parameterizes budgeted retries with exponential backoff
	// and seeded jitter. The zero value is the legacy-compatible default:
	// immediate re-invocation, no budget, no cap.
	RetryPolicy = resilience.RetryPolicy
	// RetryBudget is a deterministic shared retry budget (deposit per
	// request, withdraw per retry).
	RetryBudget = resilience.RetryBudget
	// Bulkhead bounds an executor's concurrency and sheds overload fast.
	Bulkhead = resilience.Bulkhead
	// BulkheadConfig parameterizes a bulkhead.
	BulkheadConfig = resilience.BulkheadConfig
	// DeadlinePolicy sets default request and per-variant deadlines.
	DeadlinePolicy = resilience.DeadlinePolicy
	// FallbackLadder is the degradation ladder: cached last-good value,
	// then a degraded variant, then a typed failure.
	FallbackLadder[I, O any] = resilience.Ladder[I, O]
)

// Circuit-breaker states.
const (
	// BreakerClosed: calls flow normally.
	BreakerClosed = obs.BreakerClosed
	// BreakerOpen: calls are rejected fast.
	BreakerOpen = obs.BreakerOpen
	// BreakerHalfOpen: one probe at a time tests recovery.
	BreakerHalfOpen = obs.BreakerHalfOpen
)

// Typed resilience errors, matchable with errors.Is.
var (
	// ErrBreakerOpen: the variant's circuit breaker rejected the call.
	ErrBreakerOpen = resilience.ErrBreakerOpen
	// ErrShedded: admission control rejected the request.
	ErrShedded = resilience.ErrShedded
	// ErrDegraded: the executor failed and the degradation ladder could
	// not serve.
	ErrDegraded = resilience.ErrDegraded
	// ErrRetryBudgetExhausted: the shared retry budget denied a retry.
	ErrRetryBudgetExhausted = resilience.ErrRetryBudgetExhausted
)

// NewBreakers returns a circuit-breaker set that lazily creates one
// breaker per variant; attach it with WithBreaker.
func NewBreakers(cfg BreakerConfig) *Breakers { return resilience.NewBreakers(cfg) }

// NewBreaker returns a standalone closed breaker for one variant.
func NewBreaker(variant string, cfg BreakerConfig) *Breaker {
	return resilience.NewBreaker(variant, cfg)
}

// NewRetryBudget returns a shared retry budget with the given token
// capacity and per-request deposit (non-positive arguments select the
// defaults: capacity 10, deposit 0.1).
func NewRetryBudget(capacity, depositPerRequest float64) *RetryBudget {
	return resilience.NewRetryBudget(capacity, depositPerRequest)
}

// NewBulkhead returns a bulkhead with the given concurrency and wait
// queue bounds; attach it with WithBulkhead.
func NewBulkhead(cfg BulkheadConfig) *Bulkhead { return resilience.NewBulkhead(cfg) }

// NewFallbackLadder returns an empty degradation ladder; enable rungs
// with CacheLastGood and DegradedVariant, attach it with WithFallback.
func NewFallbackLadder[I, O any]() *FallbackLadder[I, O] {
	return resilience.NewLadder[I, O]()
}

// WithBreaker attaches a circuit-breaker set to a pattern executor.
func WithBreaker(b *Breakers) PatternOption { return pattern.WithBreaker(b) }

// WithRetryPolicy attaches a retry pacing policy: SequentialAlternatives
// paces and budgets its alternates, Single re-executes its variant up to
// MaxAttempts.
func WithRetryPolicy(p RetryPolicy) PatternOption { return pattern.WithRetryPolicy(p) }

// WithBulkhead bounds the executor's concurrency; overload is shed fast
// with ErrShedded.
func WithBulkhead(b *Bulkhead) PatternOption { return pattern.WithBulkhead(b) }

// WithDeadline sets default request and per-variant deadlines, so a hung
// variant cannot wedge the executor even when the caller's context has
// no deadline.
func WithDeadline(request, variant time.Duration) PatternOption {
	return pattern.WithDeadline(DeadlinePolicy{Request: request, Variant: variant})
}

// WithFallback attaches a degradation ladder to a pattern executor.
func WithFallback[I, O any](l *FallbackLadder[I, O]) PatternOption {
	return pattern.WithFallback(l)
}

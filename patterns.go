package redundancy

import (
	"context"
	"log/slog"
	"time"

	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/vote"
)

// RollbackFunc restores a consistent state before a retry.
type RollbackFunc = func(ctx context.Context) error

// Pattern executors (paper Figure 1).
type (
	// ParallelEvaluation runs every variant concurrently and adjudicates
	// over the full result set (Figure 1a).
	ParallelEvaluation[I, O any] = pattern.ParallelEvaluation[I, O]
	// ParallelSelection runs variants concurrently, each checked by its
	// own acceptance test, disabling failing components (Figure 1b).
	ParallelSelection[I, O any] = pattern.ParallelSelection[I, O]
	// SequentialAlternatives runs variants one at a time with rollback
	// between attempts (Figure 1c).
	SequentialAlternatives[I, O any] = pattern.SequentialAlternatives[I, O]
	// Single is the non-redundant baseline executor.
	Single[I, O any] = pattern.Single[I, O]
	// PatternOption configures a pattern executor.
	PatternOption = pattern.Option
)

// WithMetrics attaches a metrics collector to a pattern executor.
func WithMetrics(m *Metrics) PatternOption { return pattern.WithMetrics(m) }

// WithVariantTimeout bounds each variant execution of a pattern executor.
func WithVariantTimeout(d time.Duration) PatternOption {
	return pattern.WithVariantTimeout(d)
}

// WithLogger attaches a structured logger to a pattern executor: variant
// failures are emitted at debug level, masked failures and executor
// failures at info level.
func WithLogger(l *slog.Logger) PatternOption { return pattern.WithLogger(l) }

// NewParallelEvaluation builds a Figure 1a executor.
func NewParallelEvaluation[I, O any](variants []Variant[I, O], adj Adjudicator[O], opts ...PatternOption) (*ParallelEvaluation[I, O], error) {
	return pattern.NewParallelEvaluation(variants, adj, opts...)
}

// NewParallelSelection builds a Figure 1b executor; tests[i] validates
// variants[i].
func NewParallelSelection[I, O any](variants []Variant[I, O], tests []AcceptanceTest[I, O], opts ...PatternOption) (*ParallelSelection[I, O], error) {
	return pattern.NewParallelSelection(variants, tests, opts...)
}

// NewSequentialAlternatives builds a Figure 1c executor; rollback, if
// non-nil, restores consistent state before each retry.
func NewSequentialAlternatives[I, O any](variants []Variant[I, O], test AcceptanceTest[I, O], rollback RollbackFunc, opts ...PatternOption) (*SequentialAlternatives[I, O], error) {
	return pattern.NewSequentialAlternatives(variants, test, rollback, opts...)
}

// NewSingle wraps one variant as the non-redundant baseline executor.
func NewSingle[I, O any](v Variant[I, O], opts ...PatternOption) (*Single[I, O], error) {
	return pattern.NewSingle(v, opts...)
}

// Adjudicators.

// Majority selects the value agreed on by a strict majority of the
// variants; it tolerates TolerableFaults(n) arbitrary wrong results.
func Majority[O any](eq Equal[O]) Adjudicator[O] { return vote.Majority(eq) }

// Plurality selects the most common successful value regardless of
// quorum, trading safety for availability.
func Plurality[O any](eq Equal[O]) Adjudicator[O] { return vote.Plurality(eq) }

// Unanimity requires all variants to agree; any divergence is reported as
// ErrDivergence (the comparison adjudicator of process replicas).
func Unanimity[O any](eq Equal[O]) Adjudicator[O] { return vote.Unanimity(eq) }

// MOfN selects the first value with at least m agreeing results.
func MOfN[O any](m int, eq Equal[O]) Adjudicator[O] { return vote.MOfN(m, eq) }

// Weighted implements weighted voting with per-variant weights.
func Weighted[O any](weights map[string]float64, defaultWeight float64, eq Equal[O]) Adjudicator[O] {
	return vote.Weighted(weights, defaultWeight, eq)
}

// FirstSuccess selects the first successful result in variant order.
func FirstSuccess[O any]() Adjudicator[O] { return vote.FirstSuccess[O]() }

// MedianAdjudicator selects the median of successful numeric results, the
// standard inexact-voting adjudicator.
func MedianAdjudicator() Adjudicator[float64] { return vote.MedianAdjudicator() }

// AcceptanceAdjudicator builds an explicit adjudicator from an acceptance
// test over a captured input.
func AcceptanceAdjudicator[I, O any](input I, test AcceptanceTest[I, O]) Adjudicator[O] {
	return vote.Acceptance(input, test)
}

// VersionsNeeded returns the number of versions required to tolerate k
// faulty results under majority voting: 2k+1 (paper Section 4.1).
func VersionsNeeded(k int) int { return vote.VersionsNeeded(k) }

// TolerableFaults returns the number of faulty results an n-version
// majority vote tolerates: floor((n-1)/2).
func TolerableFaults(n int) int { return vote.TolerableFaults(n) }

// ChainedAdjudicator tries adjudicators in order, returning the first
// successful verdict (e.g. Majority with a Plurality fallback).
func ChainedAdjudicator[O any](adjs ...Adjudicator[O]) Adjudicator[O] {
	return vote.Chained(adjs...)
}

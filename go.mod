module github.com/softwarefaults/redundancy

go 1.24

package redundancy_test

// Experiment E25's acceptance test: causal trace propagation across the
// distributed fleet. The same three-replica fleet as E24 runs the same
// seeded network-chaos campaign, but now every process records its own
// trace file — the client executors in one TraceRecorder, each replica
// server in its own — and the trace context travels only in-band on the
// RPC frames. Afterwards the assemble package must reconstruct the
// client→wire→replica chain for at least 99% of accepted answers, the
// hedge-win attribution derived from the assembled lineages must agree
// with the collector's live counters, and the short-window SLO tracker
// must show its fast burn rate exceeding the page threshold during the
// partition and recovering after the campaign ends. Nothing may leak a
// goroutine.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	redundancy "github.com/softwarefaults/redundancy"
	"github.com/softwarefaults/redundancy/internal/obs/assemble"
)

func TestE25DistributedTracePropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("network campaign runs for a few wall-clock seconds")
	}
	before := runtime.NumGoroutine()
	runE25Fleet(t)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked across the traced fleet run: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

func runE25Fleet(t *testing.T) {
	t.Helper()
	redundancy.SeedTraceIDs(25)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	collector := redundancy.NewCollector()
	// The client process's own trace file; sized so the whole campaign
	// fits without eviction (attribution is compared exactly below).
	clientTraces := redundancy.NewTraceRecorder(1 << 17)
	// Short SLO windows scaled to the campaign's sub-second phases; the
	// latency objective sits below the 25ms hedge delay so hedged rescues
	// during the partition burn the error budget.
	const fastBurnThreshold = 14.4
	slo := redundancy.NewSLOTracker(redundancy.SLOConfig{
		Default:    redundancy.SLObjective{Target: 0.999, Latency: 20 * time.Millisecond},
		FastWindow: 500 * time.Millisecond,
		SlowWindow: 3 * time.Second,
	})
	clientObs := redundancy.CombineObservers(collector, clientTraces, slo)

	network := redundancy.NewPipeNetwork()
	const victim = "r2"
	campaign := redundancy.DefaultNetworkCampaign(1, victim)
	names := []string{"r1", "r2", "r3"}

	// The fleet: each replica server records spans into its own recorder,
	// exactly as a separate process would — the only link between the
	// per-process recordings is the trace context on the wire.
	replicaTraces := make(map[string]*redundancy.TraceRecorder)
	supervisor := redundancy.NewSupervisor(redundancy.SupervisorOptions{Name: "fleet"})
	for _, name := range names {
		ln, err := network.Listen(name)
		if err != nil {
			t.Fatalf("Listen(%q): %v", name, err)
		}
		v := redundancy.NewVariant("double", func(_ context.Context, x int) (int, error) {
			return 2 * x, nil
		})
		rec := redundancy.NewTraceRecorder(1 << 16)
		replicaTraces[name] = rec
		srv := redundancy.NewReplicaServer(v, ln, redundancy.ReplicaServerConfig{
			Name:     name,
			Observer: redundancy.CombineObservers(collector, rec),
		})
		if err := supervisor.Add(srv.AsChild()); err != nil {
			t.Fatalf("supervise %s: %v", name, err)
		}
		defer srv.Close()
	}
	supDone := make(chan error, 1)
	go func() { supDone <- supervisor.Serve(ctx) }()

	faulty := func(name string) redundancy.DialFunc {
		return campaign.Wrap(name, network.Dial(name))
	}
	detector := redundancy.NewFailureDetector(redundancy.FailureDetectorConfig{
		Interval:     100 * time.Millisecond,
		Timeout:      80 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    6,
		Observer:     collector,
	})
	for _, name := range names {
		detector.Watch(name, faulty(name))
	}
	detDone := make(chan error, 1)
	go func() { detDone <- detector.Run(ctx) }()

	var variants []redundancy.Variant[int, int]
	for i := range names {
		var endpoints []redundancy.ReplicaEndpoint
		for j := 0; j < len(names); j++ {
			name := names[(i+j)%len(names)]
			endpoints = append(endpoints, redundancy.ReplicaEndpoint{Name: name, Dial: faulty(name)})
		}
		remote, err := redundancy.NewRemoteVariant[int, int]("via-"+names[i], redundancy.RemoteConfig{
			CallTimeout: 150 * time.Millisecond,
			HedgeAfter:  25 * time.Millisecond,
			MaxHedges:   2,
			Detector:    detector,
			Observer:    clientObs,
		}, endpoints...)
		if err != nil {
			t.Fatalf("NewRemoteVariant: %v", err)
		}
		defer remote.Close()
		variants = append(variants, remote)
	}
	accept := func(in, out int) error {
		if out != 2*in {
			return fmt.Errorf("got %d want %d", out, 2*in)
		}
		return nil
	}
	sel, err := redundancy.NewParallelSelection(variants,
		[]redundancy.AcceptanceTest[int, int]{accept, accept, accept},
		redundancy.WithObserver(clientObs))
	if err != nil {
		t.Fatalf("NewParallelSelection: %v", err)
	}

	// Drive the workload through the whole campaign, sampling the fast
	// burn rate of every client-side executor while the partition holds.
	sloExecs := []string{"parallel-selection"}
	for _, n := range names {
		sloExecs = append(sloExecs, "via-"+n)
	}
	campaign.Start()
	var (
		total, ok          int
		partitionPeakBurn  float64
		partitionPeakExec  string
		sawPartitionSample bool
	)
	for !campaign.Done() {
		_, phase := campaign.PhaseNow()
		total++
		if got, err := sel.Execute(ctx, total); err == nil && got == 2*total {
			ok++
		}
		if phase != nil && phase.Name == "partition" {
			sawPartitionSample = true
			for _, e := range sloExecs {
				if burn := slo.FastBurn(e); burn > partitionPeakBurn {
					partitionPeakBurn, partitionPeakExec = burn, e
				}
			}
		}
		sel.Reset() // re-enable variants rejected during rough phases
	}
	if total < 20 {
		t.Fatalf("campaign finished after only %d requests; schedule too short to judge", total)
	}
	if !sawPartitionSample {
		t.Fatal("workload never sampled the partition phase")
	}

	// Orderly teardown before the offline analysis.
	cancel()
	if err := <-detDone; err != nil {
		t.Errorf("detector Run: %v", err)
	}
	if err := <-supDone; err != nil && ctx.Err() == nil {
		t.Errorf("supervisor Serve: %v", err)
	}

	// SLO: the fast window must have paged during the partition...
	t.Logf("E25: fast burn peaked at %.1f on %s during the partition (threshold %.1f)",
		partitionPeakBurn, partitionPeakExec, fastBurnThreshold)
	if partitionPeakBurn <= fastBurnThreshold {
		t.Errorf("fast burn rate never exceeded the page threshold during the partition: peak %.1f <= %.1f",
			partitionPeakBurn, fastBurnThreshold)
	}
	// ...and recovered afterwards: once the fast window has aged past the
	// rough phases it must hold only recovery-phase traffic.
	time.Sleep(350 * time.Millisecond)
	for _, e := range sloExecs {
		if burn := slo.FastBurn(e); burn > fastBurnThreshold {
			t.Errorf("fast burn rate of %s still %.1f after recovery, want <= %.1f", e, burn, fastBurnThreshold)
		}
	}
	if slo.Breaching() {
		t.Error("SLO tracker still breaching after the campaign recovered")
	}

	// Assembly: join the per-process recordings on the wire-propagated
	// trace context alone and demand a complete client→replica chain for
	// at least 99% of accepted answers.
	sources := []assemble.Source{{Name: "client", Traces: clientTraces.Snapshot()}}
	for _, name := range names {
		sources = append(sources, assemble.Source{Name: name, Traces: replicaTraces[name].Snapshot()})
	}
	rep := assemble.Assemble(sources...)
	if rep.ClientRequests == 0 {
		t.Fatal("no accepted client requests with an RPC lineage recorded")
	}
	t.Logf("E25: %d spans across %d traces; %d/%d accepted answers linked (%.2f%%)",
		rep.Spans, rep.TraceIDs, rep.Linked, rep.ClientRequests, 100*rep.LinkRatio)
	if rep.LinkRatio < 0.99 {
		t.Errorf("link ratio %.4f, want >= 0.99: the causal chain broke for %d of %d accepted answers",
			rep.LinkRatio, rep.ClientRequests-rep.Linked, rep.ClientRequests)
	}

	// Attribution: the hedge wins reconstructed offline from the
	// assembled lineages must agree with the collector's live counters.
	var liveHedgeWins int64
	for _, snap := range collector.Snapshot() {
		liveHedgeWins += snap.HedgeWins
	}
	var assembledHedgeWins int64
	for _, a := range rep.Attribution {
		assembledHedgeWins += int64(a.HedgeWins)
	}
	if liveHedgeWins == 0 {
		t.Error("no hedged attempt ever won; tail-latency defense inert")
	}
	if assembledHedgeWins != liveHedgeWins {
		t.Errorf("assembled hedge-win attribution %d != collector hedge wins %d",
			assembledHedgeWins, liveHedgeWins)
	}
	t.Logf("E25: attribution %+v", rep.Attribution)
}

package redundancy_test

// Runnable godoc examples for the main entry points.

import (
	"context"
	"errors"
	"fmt"

	redundancy "github.com/softwarefaults/redundancy"
)

// ExampleNewNVersion shows classic N-version programming: three versions,
// one buggy, adjudicated by majority vote.
func ExampleNewNVersion() {
	versions := []redundancy.Variant[int, int]{
		redundancy.NewVariant("v1", func(_ context.Context, x int) (int, error) { return x * x, nil }),
		redundancy.NewVariant("v2", func(_ context.Context, x int) (int, error) { return x * x, nil }),
		redundancy.NewVariant("v3-buggy", func(_ context.Context, x int) (int, error) { return x + x, nil }),
	}
	system, _ := redundancy.NewNVersion(versions, redundancy.EqualOf[int]())
	out, _ := system.Execute(context.Background(), 9)
	fmt.Println(out)
	// Output: 81
}

// ExampleNewRecoveryBlock shows a recovery block: the primary fails, the
// state is rolled back, and the alternate's accepted result is returned.
func ExampleNewRecoveryBlock() {
	state := struct{ Attempts int }{}
	primary := redundancy.NewVariant("fast-path", func(_ context.Context, _ int) (int, error) {
		return 0, errors.New("fast path broken today")
	})
	alternate := redundancy.NewVariant("slow-path", func(_ context.Context, x int) (int, error) {
		return x + 1, nil
	})
	block, _ := redundancy.NewRecoveryBlock("increment", &state,
		func(_ int, out int) error {
			if out <= 0 {
				return redundancy.ErrNotAccepted
			}
			return nil
		},
		[]redundancy.Variant[int, int]{primary, alternate})
	out, _ := block.Execute(context.Background(), 41)
	fmt.Println(out)
	// Output: 42
}

// ExampleMajority shows direct use of the implicit voting adjudicator.
func ExampleMajority() {
	adj := redundancy.Majority(redundancy.EqualOf[string]())
	verdict, _ := adj.Adjudicate([]redundancy.Result[string]{
		{Variant: "a", Value: "yes"},
		{Variant: "b", Value: "yes"},
		{Variant: "c", Value: "no"},
	})
	fmt.Println(verdict)
	// Output: yes
}

// ExampleNewCheckpointRunner shows checkpoint-recovery over a
// deterministic state machine.
func ExampleNewCheckpointRunner() {
	runner, _ := redundancy.NewCheckpointRunner(0,
		func(total int, op int) (int, error) { return total + op, nil },
		2 /* checkpoint every 2 ops */)
	for _, op := range []int{10, 20, 12} {
		_ = runner.Step(op)
	}
	replayed, _ := runner.Recover() // rollback + replay the uncommitted tail
	fmt.Println(runner.State(), replayed)
	// Output: 42 1
}

// ExampleNewPerturbationExecutor shows RX-style recovery: the overflow is
// deterministic under the plain environment but masked by the padding
// perturbation.
func ExampleNewPerturbationExecutor() {
	program := func(_ context.Context, env *redundancy.Env, x int) (int, error) {
		if env.AllocPadding < 64 {
			return 0, errors.New("buffer overflow")
		}
		return x, nil
	}
	exec, _ := redundancy.NewPerturbationExecutor(program, redundancy.DefaultEnv(),
		redundancy.DefaultPerturbationLadder())
	out, _ := exec.Execute(context.Background(), 7)
	fmt.Println(out, exec.LastRung())
	// Output: 7 pad-64
}

// ExampleNewRobustList shows audit-and-repair on a robust structure.
func ExampleNewRobustList() {
	list := redundancy.NewRobustList()
	for _, v := range []int{1, 2, 3} {
		list.Append(v)
	}
	ids := list.NodeIDs()
	list.CorruptNext(ids[0], 9999) // stray write
	fmt.Println("defects:", len(list.Audit()))
	_ = list.Repair()
	values, _ := list.Values()
	fmt.Println("repaired:", values)
	// Output:
	// defects: 1
	// repaired: [1 2 3]
}

// ExampleVersionsNeeded states the paper's 2k+1 rule.
func ExampleVersionsNeeded() {
	fmt.Println(redundancy.VersionsNeeded(2), "versions tolerate 2 faults")
	// Output: 5 versions tolerate 2 faults
}

// ExampleNewReplicaSystem shows secretless attack detection by replica
// divergence.
func ExampleNewReplicaSystem() {
	sys, _ := redundancy.NewReplicaSystem(3, 1<<12)
	// Benign request: relative addressing behaves identically everywhere.
	v, _ := sys.Execute(redundancy.ReplicaRequest{Op: redundancy.ReplicaWrite, Addr: 8, Value: 5})
	fmt.Println("benign:", v)
	// Exploit payload: an absolute address is valid in one partition only.
	_, err := sys.Execute(redundancy.ReplicaRequest{
		Op: redundancy.ReplicaWrite, Addr: sys.Process(0).Base(), Absolute: true, Value: 5,
	})
	fmt.Println("attack detected:", errors.Is(err, redundancy.ErrAttackDetected))
	// Output:
	// benign: 5
	// attack detected: true
}

// ExampleChainedAdjudicator shows a strict-then-lenient voting cascade.
func ExampleChainedAdjudicator() {
	adj := redundancy.ChainedAdjudicator(
		redundancy.Majority(redundancy.EqualOf[int]()),
		redundancy.Plurality(redundancy.EqualOf[int]()),
	)
	// 2-of-5 agreement: no strict majority, but a unique plurality.
	verdict, _ := adj.Adjudicate([]redundancy.Result[int]{
		{Variant: "a", Value: 7}, {Variant: "b", Value: 7},
		{Variant: "c", Value: 1}, {Variant: "d", Value: 2}, {Variant: "e", Value: 3},
	})
	fmt.Println(verdict)
	// Output: 7
}

GO ?= go

.PHONY: build vet test race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Runs the hot-path benchmarks and writes BENCH_obs.json,
# BENCH_resilience.json, BENCH_recovery.json, and BENCH_net.json — the
# last one carries the hedged vs unhedged tail-latency baseline (see
# scripts/bench.sh; BENCHTIME=100x makes a quick local pass).
bench:
	./scripts/bench.sh

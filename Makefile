GO ?= go

.PHONY: build vet test race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Runs the hot-path benchmarks and writes BENCH_obs.json,
# BENCH_resilience.json, and BENCH_recovery.json (see scripts/bench.sh;
# BENCHTIME=100x makes a quick local pass).
bench:
	./scripts/bench.sh

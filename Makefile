GO ?= go

.PHONY: build vet test race bench campaign-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Runs the hot-path benchmarks and writes BENCH_obs.json,
# BENCH_resilience.json, BENCH_recovery.json, and BENCH_net.json — the
# last one carries the hedged vs unhedged tail-latency baseline (see
# scripts/bench.sh; BENCHTIME=100x makes a quick local pass).
bench:
	./scripts/bench.sh

# Replays the committed campaign baseline, re-runs the deterministic
# smoke sweep, and diffs the two — the same gate the campaign-regression
# CI job applies. Fails (nonzero exit) on replay divergence or a metric
# regression beyond the noise bounds.
campaign-smoke:
	$(GO) run ./cmd/campaign replay -store baselines/campaigns -quiet \
		$$(cat baselines/campaigns/BASELINE)
	$(GO) run ./cmd/campaign run -store .ci-campaigns -quiet \
		-spec scripts/campaign_smoke.json -out campaign_smoke_run.json
	$(GO) run ./cmd/campaign diff -store baselines/campaigns \
		$$(cat baselines/campaigns/BASELINE) campaign_smoke_run.json

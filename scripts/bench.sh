#!/bin/sh
# bench.sh runs the hot-path benchmarks (observation layer, health
# diagnosis, pattern executors, RNG, and the top-level ablation suite)
# and records the results as JSON in BENCH_obs.json so CI can archive
# them and successive runs can be diffed.
#
# Usage: scripts/bench.sh [output.json]
# Environment: BENCHTIME overrides -benchtime (e.g. BENCHTIME=100x).
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_obs.json}"
benchtime="${BENCHTIME:-1s}"
pkgs=". ./internal/obs/... ./internal/pattern ./internal/xrand"

# shellcheck disable=SC2086  # pkgs is a deliberate word list
raw="$(go test -bench=. -benchmem -run='^$' -benchtime="$benchtime" $pkgs)"
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk '
BEGIN { print "[" }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    bop = ""; aop = ""
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op") bop = $(i - 1)
        if ($i == "allocs/op") aop = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "  {\"package\":\"%s\",\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", pkg, $1, $2, $3
    if (bop != "") printf ",\"bytes_per_op\":%s", bop
    if (aop != "") printf ",\"allocs_per_op\":%s", aop
    printf "}"
}
END { if (n) printf "\n"; print "]" }
' >"$out"

echo "wrote $(grep -c '"name"' "$out") benchmark results to $out"

#!/bin/sh
# bench.sh runs the hot-path benchmarks (observation layer, health
# diagnosis, pattern executors, resilience policies, crash recovery,
# RNG, and the top-level ablation and chaos suites) and records the
# results as JSON so CI can archive them and successive runs can be
# diffed.
#
# Four files come out of one benchmark run: the resilience-policy
# results (the internal/resilience primitives, the autonomic
# controller's reconciliation tick from internal/control, plus the root
# BenchmarkChaosCampaign* throughput pair, with/without the bulkhead)
# land in BENCH_resilience.json; the crash-recovery results (WAL
# append/replay and the BenchmarkCrashRecovery reopen-with-replay
# suite from internal/checkpoint) land in BENCH_recovery.json; the
# distributed-transport results (RPC round trip plus the hedged vs
# unhedged tail-latency pair, whose p99_ns metric is the paper trail
# that hedging beats the unhedged control) land in BENCH_net.json;
# everything else stays in BENCH_obs.json as before.
#
# Usage: scripts/bench.sh [obs.json [resilience.json [recovery.json [net.json]]]]
# Environment: BENCHTIME overrides -benchtime (e.g. BENCHTIME=100x).
set -eu
cd "$(dirname "$0")/.."

out_obs="${1:-BENCH_obs.json}"
out_res="${2:-BENCH_resilience.json}"
out_rec="${3:-BENCH_recovery.json}"
out_net="${4:-BENCH_net.json}"
benchtime="${BENCHTIME:-1s}"
pkgs=". ./internal/obs/... ./internal/pattern ./internal/resilience ./internal/control ./internal/checkpoint ./internal/dist ./internal/xrand"

# shellcheck disable=SC2086  # pkgs is a deliberate word list
raw="$(go test -bench=. -benchmem -run='^$' -benchtime="$benchtime" $pkgs)"
printf '%s\n' "$raw"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

# tojson converts `go test -bench` output to a JSON array in the
# normalized schema the campaign tooling reads: one row per
# (benchmark, metric), each {benchmark, metric, value, unit, commit,
# seed}. Benchmarks are single-process microbenchmarks, so seed is 0.
# $1 selects which results to keep: "resilience" takes the resilience
# package and the chaos-campaign throughput benchmarks, "recovery"
# takes the checkpoint/WAL package, "net" takes the distributed
# transport package, "obs" takes the rest.
tojson() {
    printf '%s\n' "$raw" | awk -v mode="$1" -v commit="$commit" '
function row(bench, metric, value, unit) {
    if (n++) printf ",\n"
    printf "  {\"benchmark\":\"%s\",\"metric\":\"%s\",\"value\":%s,\"unit\":\"%s\",\"commit\":\"%s\",\"seed\":0}", \
        bench, metric, value, unit, commit
}
BEGIN { print "[" }
/^pkg:/ { pkg = $2; sub(/^.*\//, "", pkg) }
/^Benchmark/ {
    res = (pkg == "resilience" || pkg == "control" || $1 ~ /^BenchmarkChaosCampaign/)
    rec = (pkg == "checkpoint")
    net = (pkg == "dist")
    if (mode == "resilience") keep = res
    else if (mode == "recovery") keep = rec
    else if (mode == "net") keep = net
    else keep = !res && !rec && !net
    if (!keep) next
    bench = (pkg != "") ? pkg "/" $1 : $1
    row(bench, "ns_per_op", $3, "ns/op")
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op") row(bench, "bytes_per_op", $(i - 1), "B/op")
        if ($i == "allocs/op") row(bench, "allocs_per_op", $(i - 1), "allocs/op")
        if ($i == "req/s") row(bench, "req_per_s", $(i - 1), "req/s")
        if ($i == "p99_ns") row(bench, "p99_ns", $(i - 1), "ns")
    }
}
END { if (n) printf "\n"; print "]" }
'
}

tojson obs >"$out_obs"
tojson resilience >"$out_res"
tojson recovery >"$out_rec"
tojson net >"$out_net"

echo "wrote $(grep -c '"benchmark"' "$out_obs") benchmark results to $out_obs"
echo "wrote $(grep -c '"benchmark"' "$out_res") benchmark results to $out_res"
echo "wrote $(grep -c '"benchmark"' "$out_rec") benchmark results to $out_rec"
echo "wrote $(grep -c '"benchmark"' "$out_net") benchmark results to $out_net"

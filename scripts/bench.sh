#!/bin/sh
# bench.sh runs the hot-path benchmarks (observation layer, health
# diagnosis, pattern executors, resilience policies, RNG, and the
# top-level ablation and chaos suites) and records the results as JSON
# so CI can archive them and successive runs can be diffed.
#
# Two files come out of one benchmark run: the resilience-policy
# results (the internal/resilience primitives plus the root
# BenchmarkChaosCampaign* throughput pair, with/without the bulkhead)
# land in BENCH_resilience.json; everything else stays in
# BENCH_obs.json as before.
#
# Usage: scripts/bench.sh [obs-output.json [resilience-output.json]]
# Environment: BENCHTIME overrides -benchtime (e.g. BENCHTIME=100x).
set -eu
cd "$(dirname "$0")/.."

out_obs="${1:-BENCH_obs.json}"
out_res="${2:-BENCH_resilience.json}"
benchtime="${BENCHTIME:-1s}"
pkgs=". ./internal/obs/... ./internal/pattern ./internal/resilience ./internal/xrand"

# shellcheck disable=SC2086  # pkgs is a deliberate word list
raw="$(go test -bench=. -benchmem -run='^$' -benchtime="$benchtime" $pkgs)"
printf '%s\n' "$raw"

# tojson converts `go test -bench` output to a JSON array. $1 selects
# which results to keep: "resilience" takes the resilience package and
# the chaos-campaign throughput benchmarks, "obs" takes the rest.
tojson() {
    printf '%s\n' "$raw" | awk -v mode="$1" '
BEGIN { print "[" }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    res = (pkg ~ /\/internal\/resilience$/ || $1 ~ /^BenchmarkChaosCampaign/)
    if ((mode == "resilience") != res) next
    bop = ""; aop = ""; rps = ""
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op") bop = $(i - 1)
        if ($i == "allocs/op") aop = $(i - 1)
        if ($i == "req/s") rps = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "  {\"package\":\"%s\",\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", pkg, $1, $2, $3
    if (rps != "") printf ",\"req_per_s\":%s", rps
    if (bop != "") printf ",\"bytes_per_op\":%s", bop
    if (aop != "") printf ",\"allocs_per_op\":%s", aop
    printf "}"
}
END { if (n) printf "\n"; print "]" }
'
}

tojson obs >"$out_obs"
tojson resilience >"$out_res"

echo "wrote $(grep -c '"name"' "$out_obs") benchmark results to $out_obs"
echo "wrote $(grep -c '"name"' "$out_res") benchmark results to $out_res"

package repstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/softwarefaults/redundancy/internal/faultmodel"
)

func healthySystem(t *testing.T, n int) (*System, []*SimReplica) {
	t.Helper()
	replicas := make([]Replica, n)
	sims := make([]*SimReplica, n)
	for i := range replicas {
		sims[i] = NewSimReplica(fmt.Sprintf("replica-%d", i+1))
		replicas[i] = sims[i]
	}
	sys, err := NewSystem(replicas)
	if err != nil {
		t.Fatal(err)
	}
	return sys, sims
}

func TestPutGetRoundTrip(t *testing.T) {
	sys, _ := healthySystem(t, 3)
	if err := sys.Put("user:1", "ada"); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Get("user:1")
	if err != nil || v != "ada" {
		t.Errorf("Get = (%q, %v)", v, err)
	}
	if sys.Divergences != 0 {
		t.Errorf("healthy system recorded %d divergences", sys.Divergences)
	}
}

func TestGetMissingKey(t *testing.T) {
	sys, _ := healthySystem(t, 3)
	if _, err := sys.Get("nope"); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	sys, _ := healthySystem(t, 3)
	if err := sys.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Get("k"); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestCorruptReplicaOutvotedOnRead(t *testing.T) {
	sys, sims := healthySystem(t, 3)
	// Replica 3 corrupts every write (trigger fraction 1).
	sims[2].CorruptionBug = faultmodel.Bohrbug{ID: 1, TriggerFraction: 1}
	if err := sys.Put("k", "clean"); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Get("k")
	if err != nil || v != "clean" {
		t.Fatalf("Get = (%q, %v), want clean value", v, err)
	}
	if sys.Divergences == 0 {
		t.Error("divergence not recorded")
	}
}

func TestStateReconciliationRepairsCorruptReplica(t *testing.T) {
	sys, sims := healthySystem(t, 3)
	sys.SuspectThreshold = 2
	sims[2].CorruptionBug = faultmodel.Bohrbug{ID: 1, TriggerFraction: 1}
	// Two writes: the second reconciliation passes the threshold and
	// repairs replica 3 from a majority peer.
	if err := sys.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Put("b", "2"); err != nil {
		t.Fatal(err)
	}
	if sys.Repairs == 0 {
		t.Fatal("no repair performed")
	}
	// After repair, replica 3's state matches the majority.
	if sims[2].Digest() != sims[0].Digest() {
		t.Error("repaired replica still divergent")
	}
	v, err := sims[2].Get("a")
	if err != nil || v != "1" {
		t.Errorf("repaired replica Get = (%q, %v)", v, err)
	}
}

func TestCrashedReplicaToleratedByQuorum(t *testing.T) {
	sys, sims := healthySystem(t, 3)
	if err := sys.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	sims[1].SetDown(true)
	// Reads still reach quorum 2/3.
	v, err := sys.Get("k")
	if err != nil || v != "v" {
		t.Errorf("Get = (%q, %v)", v, err)
	}
	// Writes still reach quorum.
	if err := sys.Put("k2", "v2"); err != nil {
		t.Errorf("Put with one replica down: %v", err)
	}
}

func TestQuorumLoss(t *testing.T) {
	sys, sims := healthySystem(t, 3)
	if err := sys.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	sims[0].SetDown(true)
	sims[1].SetDown(true)
	if _, err := sys.Get("k"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("read err = %v", err)
	}
	if err := sys.Put("k", "v2"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("write err = %v", err)
	}
	if err := sys.Delete("k"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("delete err = %v", err)
	}
}

func TestRevivedReplicaRepairedAfterMissedWrites(t *testing.T) {
	sys, sims := healthySystem(t, 3)
	sims[2].SetDown(true)
	for i := 0; i < 3; i++ {
		if err := sys.Put(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	sims[2].SetDown(false)
	// The revived replica has stale state; reads flag it and the next
	// reconciliations repair it.
	for i := 0; i < 3; i++ {
		if _, err := sys.Get("k0"); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Put("k3", "v"); err != nil {
		t.Fatal(err)
	}
	if sims[2].Digest() != sims[0].Digest() {
		t.Error("revived replica not repaired by state transfer")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := NewSystem([]Replica{NewSimReplica("a"), NewSimReplica("b")}); err == nil {
		t.Error("2 replicas accepted")
	}
}

func TestDigestOrderIndependence(t *testing.T) {
	a := NewSimReplica("a")
	b := NewSimReplica("b")
	_ = a.Put("x", "1")
	_ = a.Put("y", "2")
	_ = b.Put("y", "2")
	_ = b.Put("x", "1")
	if a.Digest() != b.Digest() {
		t.Error("digest depends on insertion order")
	}
	_ = b.Put("z", "3")
	if a.Digest() == b.Digest() {
		t.Error("digest blind to extra key")
	}
}

func TestDigestSeparatorAmbiguity(t *testing.T) {
	// "ab"+"c" must not collide with "a"+"bc".
	a := NewSimReplica("a")
	b := NewSimReplica("b")
	_ = a.Put("ab", "c")
	_ = b.Put("a", "bc")
	if a.Digest() == b.Digest() {
		t.Error("digest boundary ambiguity")
	}
}

func TestExportImportDeepCopy(t *testing.T) {
	a := NewSimReplica("a")
	_ = a.Put("k", "v")
	state := a.Export()
	state["k"] = "tampered"
	if v, _ := a.Get("k"); v != "v" {
		t.Error("Export aliases internal state")
	}
	b := NewSimReplica("b")
	b.Import(state)
	state["k"] = "tampered-again"
	if v, _ := b.Get("k"); v != "tampered" {
		t.Error("Import aliases caller state")
	}
}

// Property: for any sequence of puts on a system with one fully corrupt
// replica, every read returns the clean value and the corrupt replica
// converges to the majority state after repairs.
func TestCorruptReplicaNeverWinsProperty(t *testing.T) {
	f := func(keys []string, values []string) bool {
		n := len(keys)
		if len(values) < n {
			n = len(values)
		}
		if n == 0 {
			return true
		}
		if n > 8 {
			n = 8
		}
		sys, sims := func() (*System, []*SimReplica) {
			replicas := make([]Replica, 3)
			sims := make([]*SimReplica, 3)
			for i := range replicas {
				sims[i] = NewSimReplica(fmt.Sprintf("r%d", i))
				replicas[i] = sims[i]
			}
			s, _ := NewSystem(replicas)
			return s, sims
		}()
		sims[1].CorruptionBug = faultmodel.Bohrbug{ID: 7, TriggerFraction: 1}
		for i := 0; i < n; i++ {
			if keys[i] == "" {
				continue
			}
			if err := sys.Put(keys[i], values[i]); err != nil {
				return false
			}
			got, err := sys.Get(keys[i])
			if err != nil || got != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

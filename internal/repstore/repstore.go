// Package repstore applies N-version programming to stateful services:
// the "diverse off-the-shelf SQL servers" design of Gashi, Popov,
// Stankovic and Strigini that the paper cites as a typical modern
// application of N-version programming. N independently implemented
// replicas of a key-value store execute every operation; read results are
// adjudicated by majority vote, and replica states are compared through
// digests after every write. A replica whose results or state diverge
// from the majority is marked suspect and repaired by state transfer from
// a majority-consistent peer — the output/state reconciliation problem
// the paper notes is "not trivial" for heterogeneous servers.
//
// Taxonomy position: deliberate code redundancy with a reactive implicit
// adjudicator (as N-version programming), applied to stateful components.
package repstore

import (
	"errors"
	"fmt"
	"sort"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/vote"
)

// Errors reported by the replicated store.
var (
	// ErrKeyNotFound reports a read of an absent key.
	ErrKeyNotFound = errors.New("repstore: key not found")
	// ErrNoQuorum reports that no majority of replicas agreed.
	ErrNoQuorum = errors.New("repstore: no replica quorum")
	// ErrReplicaDown reports an operation on a crashed replica.
	ErrReplicaDown = errors.New("repstore: replica down")
)

// Replica is one independently implemented store replica.
type Replica interface {
	// Name identifies the replica.
	Name() string
	// Get reads a key.
	Get(key string) (string, error)
	// Put writes a key.
	Put(key, value string) error
	// Delete removes a key.
	Delete(key string) error
	// Digest summarizes the replica's full state for comparison.
	Digest() uint64
	// Export returns a copy of the full state (for repair transfers).
	Export() map[string]string
	// Import replaces the full state (the repair target side).
	Import(state map[string]string)
}

// SimReplica is a simulated replica with seeded faults: a value-corruption
// Bohrbug that mangles writes for keys in its trigger region, and a crash
// switch.
type SimReplica struct {
	name string
	data map[string]string

	// CorruptionBug, when non-zero TriggerFraction, mangles the stored
	// value for keys whose hash falls in the bug's trigger region.
	CorruptionBug faultmodel.Bohrbug
	down          bool
}

var _ Replica = (*SimReplica)(nil)

// NewSimReplica creates an empty simulated replica.
func NewSimReplica(name string) *SimReplica {
	return &SimReplica{name: name, data: make(map[string]string)}
}

// SetDown crashes (or revives) the replica.
func (r *SimReplica) SetDown(down bool) { r.down = down }

// Name implements Replica.
func (r *SimReplica) Name() string { return r.name }

// Get implements Replica.
func (r *SimReplica) Get(key string) (string, error) {
	if r.down {
		return "", fmt.Errorf("%s: %w", r.name, ErrReplicaDown)
	}
	v, ok := r.data[key]
	if !ok {
		return "", fmt.Errorf("%s key %q: %w", r.name, key, ErrKeyNotFound)
	}
	return v, nil
}

// Put implements Replica. The seeded corruption bug deterministically
// mangles values for keys in its trigger region — this replica's
// version-specific failure region.
func (r *SimReplica) Put(key, value string) error {
	if r.down {
		return fmt.Errorf("%s: %w", r.name, ErrReplicaDown)
	}
	inv := faultmodel.Invocation{InputKey: faultmodel.HashString(key)}
	if r.CorruptionBug.Activated(inv) {
		value += "\x00corrupt"
	}
	r.data[key] = value
	return nil
}

// Delete implements Replica.
func (r *SimReplica) Delete(key string) error {
	if r.down {
		return fmt.Errorf("%s: %w", r.name, ErrReplicaDown)
	}
	delete(r.data, key)
	return nil
}

// Digest implements Replica: an order-independent FNV digest of the
// state.
func (r *SimReplica) Digest() uint64 {
	keys := make([]string, 0, len(r.data))
	for k := range r.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var h uint64 = 14695981039346656037
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	for _, k := range keys {
		mix(k)
		mix(r.data[k])
	}
	return h
}

// Export implements Replica.
func (r *SimReplica) Export() map[string]string {
	out := make(map[string]string, len(r.data))
	for k, v := range r.data {
		out[k] = v
	}
	return out
}

// Import implements Replica.
func (r *SimReplica) Import(state map[string]string) {
	r.data = make(map[string]string, len(state))
	for k, v := range state {
		r.data[k] = v
	}
}

// System is the replicated store: the middleware that fans out operations
// and reconciles results and state.
type System struct {
	replicas []Replica

	// SuspectThreshold is the number of divergences after which a replica
	// is repaired by state transfer.
	SuspectThreshold int

	suspects map[string]int

	// Divergences counts observed result/state divergences.
	Divergences int
	// Repairs counts state-transfer repairs performed.
	Repairs int
}

// NewSystem builds a replicated store over the given replicas (at least
// 3 for meaningful voting).
func NewSystem(replicas []Replica) (*System, error) {
	if len(replicas) < 3 {
		return nil, errors.New("repstore: need at least 3 replicas")
	}
	rs := make([]Replica, len(replicas))
	copy(rs, replicas)
	return &System{
		replicas:         rs,
		SuspectThreshold: 2,
		suspects:         make(map[string]int),
	}, nil
}

// N returns the number of replicas.
func (s *System) N() int { return len(s.replicas) }

// Get reads a key through all replicas and majority-votes the result.
// Replicas that disagree with the quorum are marked suspect (and repaired
// once past the threshold).
func (s *System) Get(key string) (string, error) {
	results := make([]core.Result[string], len(s.replicas))
	for i, r := range s.replicas {
		v, err := r.Get(key)
		results[i] = core.Result[string]{Variant: r.Name(), Value: v, Err: err}
	}
	adj := vote.Majority(core.EqualOf[string]())
	value, err := adj.Adjudicate(results)
	if err != nil {
		// Distinguish unanimous not-found from true quorum loss.
		notFound := 0
		for _, res := range results {
			if errors.Is(res.Err, ErrKeyNotFound) {
				notFound++
			}
		}
		if notFound > len(results)/2 {
			return "", fmt.Errorf("key %q: %w", key, ErrKeyNotFound)
		}
		return "", fmt.Errorf("read %q: %w", key, ErrNoQuorum)
	}
	for i, res := range results {
		if !res.OK() || res.Value != value {
			s.flagSuspect(s.replicas[i])
		}
	}
	return value, nil
}

// Put writes a key through all replicas, then compares state digests and
// repairs minority-divergent replicas past the suspect threshold.
func (s *System) Put(key, value string) error {
	up := 0
	for _, r := range s.replicas {
		if err := r.Put(key, value); err == nil {
			up++
		}
	}
	if up <= len(s.replicas)/2 {
		return fmt.Errorf("write %q: only %d replicas accepted: %w", key, up, ErrNoQuorum)
	}
	s.reconcile()
	return nil
}

// Delete removes a key through all replicas.
func (s *System) Delete(key string) error {
	up := 0
	for _, r := range s.replicas {
		if err := r.Delete(key); err == nil {
			up++
		}
	}
	if up <= len(s.replicas)/2 {
		return fmt.Errorf("delete %q: only %d replicas accepted: %w", key, up, ErrNoQuorum)
	}
	s.reconcile()
	return nil
}

// reconcile compares state digests across replicas and flags the
// minority.
func (s *System) reconcile() {
	counts := make(map[uint64]int, len(s.replicas))
	for _, r := range s.replicas {
		counts[r.Digest()]++
	}
	var majorityDigest uint64
	best := 0
	for d, c := range counts {
		if c > best {
			best, majorityDigest = c, d
		}
	}
	if best <= len(s.replicas)/2 {
		// No state quorum; nothing safe to repair from.
		s.Divergences++
		return
	}
	for _, r := range s.replicas {
		if r.Digest() != majorityDigest {
			s.flagSuspect(r)
		}
	}
}

// flagSuspect records a divergence and repairs the replica once it passes
// the threshold.
func (s *System) flagSuspect(r Replica) {
	s.Divergences++
	s.suspects[r.Name()]++
	if s.suspects[r.Name()] < s.SuspectThreshold {
		return
	}
	// Repair by state transfer from a majority-consistent peer.
	counts := make(map[uint64]int, len(s.replicas))
	for _, p := range s.replicas {
		counts[p.Digest()]++
	}
	var majorityDigest uint64
	best := 0
	for d, c := range counts {
		if c > best {
			best, majorityDigest = c, d
		}
	}
	if best <= len(s.replicas)/2 {
		return
	}
	for _, p := range s.replicas {
		if p.Digest() == majorityDigest && p.Name() != r.Name() {
			r.Import(p.Export())
			s.Repairs++
			s.suspects[r.Name()] = 0
			return
		}
	}
}

// SuspectCount reports the current divergence count for a replica.
func (s *System) SuspectCount(name string) int { return s.suspects[name] }

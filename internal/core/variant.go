// Package core defines the abstractions shared by every redundancy
// technique in the framework: variants (alternative implementations of one
// logically unique functionality), execution results, adjudicators, and
// the taxonomy dimensions of Carzaniga, Gorla and Pezzè's "Handling
// Software Faults with Redundancy".
//
// A system is redundant when it can execute the same, logically unique
// functionality in multiple ways or in multiple instances. The framework
// models the "multiple ways" as Variant values and the mechanisms that
// pick or validate results as Adjudicator and AcceptanceTest values. The
// architectural patterns of the paper's Figure 1 (parallel evaluation,
// parallel selection, sequential alternatives) are composed from these
// pieces in package pattern.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel errors shared by executors across the framework.
var (
	// ErrNoVariants is returned when an executor is constructed or run
	// with an empty variant set.
	ErrNoVariants = errors.New("redundancy: no variants configured")
	// ErrAllVariantsFailed is returned when every alternative was tried
	// and none produced an acceptable result.
	ErrAllVariantsFailed = errors.New("redundancy: all variants failed")
	// ErrNoConsensus is returned by voting adjudicators when no result
	// reaches the required quorum.
	ErrNoConsensus = errors.New("redundancy: no consensus among variants")
	// ErrNotAccepted is returned by acceptance tests to signal that a
	// result failed validation.
	ErrNotAccepted = errors.New("redundancy: result rejected by acceptance test")
	// ErrDivergence is returned by comparison adjudicators (process
	// replicas, N-variant systems) when replicas that must agree do not.
	ErrDivergence = errors.New("redundancy: replica behavior diverged")
)

// Variant is one implementation of a logically unique functionality.
// In N-version programming a Variant is one independently developed
// version; in recovery blocks it is the primary or an alternate; in
// dynamic service substitution it is one service provider.
type Variant[I, O any] interface {
	// Name identifies the variant in results, logs and metrics.
	Name() string
	// Execute runs the variant on input. Implementations must honor ctx
	// cancellation for long computations and must return an error rather
	// than panic on failure.
	Execute(ctx context.Context, input I) (O, error)
}

// funcVariant adapts a plain function to the Variant interface.
type funcVariant[I, O any] struct {
	name string
	fn   func(ctx context.Context, input I) (O, error)
}

var _ Variant[int, int] = (*funcVariant[int, int])(nil)

// NewVariant wraps fn as a named Variant.
func NewVariant[I, O any](name string, fn func(ctx context.Context, input I) (O, error)) Variant[I, O] {
	return &funcVariant[I, O]{name: name, fn: fn}
}

func (v *funcVariant[I, O]) Name() string { return v.name }

func (v *funcVariant[I, O]) Execute(ctx context.Context, input I) (O, error) {
	return v.fn(ctx, input)
}

// Result is the outcome of executing one variant.
type Result[O any] struct {
	// Variant is the name of the variant that produced this result.
	Variant string
	// Value is the produced output; meaningful only when Err is nil.
	Value O
	// Err is the failure reported by the variant, or nil on success.
	Err error
	// Latency is the wall-clock execution time of the variant.
	Latency time.Duration
}

// OK reports whether the result is a success.
func (r Result[O]) OK() bool { return r.Err == nil }

// Adjudicator decides the outcome of a redundant execution from the
// results of the individual variants. Voting mechanisms (N-version
// programming) are implicit adjudicators; acceptance tests (recovery
// blocks) are explicit adjudicators.
type Adjudicator[O any] interface {
	// Adjudicate examines the variant results and returns the adjudged
	// output, or an error (typically ErrNoConsensus or
	// ErrAllVariantsFailed) when no acceptable output exists.
	Adjudicate(results []Result[O]) (O, error)
}

// AdjudicatorFunc adapts a function to the Adjudicator interface.
type AdjudicatorFunc[O any] func(results []Result[O]) (O, error)

var _ Adjudicator[int] = (AdjudicatorFunc[int])(nil)

// Adjudicate implements Adjudicator.
func (f AdjudicatorFunc[O]) Adjudicate(results []Result[O]) (O, error) {
	return f(results)
}

// AcceptanceTest validates a single result against its input, as in
// recovery blocks and self-checking components. A nil return accepts the
// result; a non-nil return (conventionally wrapping ErrNotAccepted)
// rejects it.
type AcceptanceTest[I, O any] func(input I, output O) error

// Executor runs a redundant computation end to end: it executes variants
// according to an architectural pattern and adjudicates a single result.
// All pattern implementations and technique facades satisfy Executor.
type Executor[I, O any] interface {
	Execute(ctx context.Context, input I) (O, error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc[I, O any] func(ctx context.Context, input I) (O, error)

var _ Executor[int, int] = (ExecutorFunc[int, int])(nil)

// Execute implements Executor.
func (f ExecutorFunc[I, O]) Execute(ctx context.Context, input I) (O, error) {
	return f(ctx, input)
}

// Equal compares two outputs for adjudication purposes. Voting requires a
// domain notion of result equivalence: reconciling the output of multiple,
// heterogeneous implementations may not be trivial (the paper discusses
// this for replicated SQL servers), so equality is always explicit.
type Equal[O any] func(a, b O) bool

// EqualOf returns an Equal for comparable types using ==.
func EqualOf[O comparable]() Equal[O] {
	return func(a, b O) bool { return a == b }
}

// ErrVariantPanicked is the sentinel wrapped by results of variants whose
// execution panicked; Guard and the pattern executors convert such panics
// into ordinary detected failures so one crashing variant cannot take
// down a redundant executor.
var ErrVariantPanicked = errors.New("redundancy: variant panicked")

// guarded wraps a Variant so that panics during Execute are contained and
// reported as errors.
type guarded[I, O any] struct {
	inner Variant[I, O]
}

var _ Variant[int, int] = (*guarded[int, int])(nil)

// Guard returns a Variant that executes v with panic containment: a
// panicking execution returns an error wrapping ErrVariantPanicked
// instead of crashing the caller. The pattern executors apply this
// containment automatically; Guard is for code paths that execute
// variants directly.
func Guard[I, O any](v Variant[I, O]) Variant[I, O] {
	return &guarded[I, O]{inner: v}
}

func (g *guarded[I, O]) Name() string { return g.inner.Name() }

func (g *guarded[I, O]) Execute(ctx context.Context, input I) (out O, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero O
			out = zero
			// An error-typed panic value (e.g. an injected fault's
			// ActivatedError) stays in the chain for errors.Is/As.
			if e, ok := r.(error); ok {
				err = fmt.Errorf("variant %s: %w: %w", g.inner.Name(), e, ErrVariantPanicked)
			} else {
				err = fmt.Errorf("variant %s: %v: %w", g.inner.Name(), r, ErrVariantPanicked)
			}
		}
	}()
	return g.inner.Execute(ctx, input)
}

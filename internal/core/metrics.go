package core

import "sync/atomic"

// Metrics accumulates concurrency-safe counters for a redundant executor.
// The cost model of the paper's Section 4.1 ("Costs and efficacy of code
// redundancy") is computed from these counters: execution cost is
// VariantExecutions per Request, and the residual-failure rate is
// Failures per Request.
type Metrics struct {
	requests          atomic.Int64
	variantExecutions atomic.Int64
	failuresDetected  atomic.Int64
	failuresMasked    atomic.Int64
	failures          atomic.Int64
}

// RecordRequest notes one request handled by the executor.
func (m *Metrics) RecordRequest() { m.requests.Add(1) }

// RecordVariantExecutions notes n variant executions performed for a
// request.
func (m *Metrics) RecordVariantExecutions(n int) { m.variantExecutions.Add(int64(n)) }

// RecordFailureDetected notes that an adjudicator rejected at least one
// variant result during a request.
func (m *Metrics) RecordFailureDetected() { m.failuresDetected.Add(1) }

// RecordFailureMasked notes a request on which some variant failed but the
// executor still delivered a correct-by-adjudication result.
func (m *Metrics) RecordFailureMasked() { m.failuresMasked.Add(1) }

// RecordFailure notes a request on which the executor itself failed.
func (m *Metrics) RecordFailure() { m.failures.Add(1) }

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// Requests is the number of requests handled.
	Requests int64
	// VariantExecutions is the total number of variant executions.
	VariantExecutions int64
	// FailuresDetected counts requests on which an adjudicator rejected
	// at least one variant result.
	FailuresDetected int64
	// FailuresMasked counts requests on which at least one variant failed
	// but the executor still succeeded.
	FailuresMasked int64
	// Failures counts requests on which the executor failed.
	Failures int64
}

// Snapshot returns a consistent-enough copy of the counters for reporting.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Requests:          m.requests.Load(),
		VariantExecutions: m.variantExecutions.Load(),
		FailuresDetected:  m.failuresDetected.Load(),
		FailuresMasked:    m.failuresMasked.Load(),
		Failures:          m.failures.Load(),
	}
}

// ExecutionsPerRequest is the paper's execution-cost measure: the average
// number of variant executions needed to serve one request. It returns 0
// before any request has been recorded.
func (s Snapshot) ExecutionsPerRequest() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.VariantExecutions) / float64(s.Requests)
}

// Reliability is the fraction of requests served successfully. An empty
// snapshot reads as 1: with no requests observed there are no observed
// failures, and reporting 0 would make an idle executor look broken.
func (s Snapshot) Reliability() float64 {
	if s.Requests == 0 {
		return 1
	}
	return 1 - float64(s.Failures)/float64(s.Requests)
}

package core

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNewVariant(t *testing.T) {
	v := NewVariant("double", func(_ context.Context, x int) (int, error) {
		return 2 * x, nil
	})
	if v.Name() != "double" {
		t.Errorf("Name = %q", v.Name())
	}
	got, err := v.Execute(context.Background(), 21)
	if err != nil || got != 42 {
		t.Errorf("Execute = (%d, %v), want (42, nil)", got, err)
	}
}

func TestVariantErrorPropagation(t *testing.T) {
	wantErr := errors.New("boom")
	v := NewVariant("fails", func(_ context.Context, _ int) (int, error) {
		return 0, wantErr
	})
	_, err := v.Execute(context.Background(), 0)
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
}

func TestResultOK(t *testing.T) {
	ok := Result[int]{Value: 1}
	if !ok.OK() {
		t.Error("success result reported as not OK")
	}
	bad := Result[int]{Err: errors.New("x")}
	if bad.OK() {
		t.Error("failed result reported as OK")
	}
}

func TestAdjudicatorFunc(t *testing.T) {
	first := AdjudicatorFunc[string](func(results []Result[string]) (string, error) {
		for _, r := range results {
			if r.OK() {
				return r.Value, nil
			}
		}
		return "", ErrAllVariantsFailed
	})
	got, err := first.Adjudicate([]Result[string]{
		{Variant: "a", Err: errors.New("failed")},
		{Variant: "b", Value: "hello"},
	})
	if err != nil || got != "hello" {
		t.Errorf("Adjudicate = (%q, %v)", got, err)
	}
	_, err = first.Adjudicate([]Result[string]{{Variant: "a", Err: errors.New("x")}})
	if !errors.Is(err, ErrAllVariantsFailed) {
		t.Errorf("err = %v, want ErrAllVariantsFailed", err)
	}
}

func TestExecutorFunc(t *testing.T) {
	e := ExecutorFunc[int, int](func(_ context.Context, x int) (int, error) {
		return x + 1, nil
	})
	got, err := e.Execute(context.Background(), 1)
	if err != nil || got != 2 {
		t.Errorf("Execute = (%d, %v)", got, err)
	}
}

func TestEqualOf(t *testing.T) {
	eq := EqualOf[int]()
	if !eq(3, 3) || eq(3, 4) {
		t.Error("EqualOf[int] misbehaves")
	}
	eqs := EqualOf[string]()
	if !eqs("a", "a") || eqs("a", "b") {
		t.Error("EqualOf[string] misbehaves")
	}
}

func TestIntentionString(t *testing.T) {
	tests := []struct {
		v    Intention
		want string
	}{
		{Deliberate, "deliberate"},
		{Opportunistic, "opportunistic"},
		{Intention(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestRedundancyTypeString(t *testing.T) {
	tests := []struct {
		v    RedundancyType
		want string
	}{
		{CodeRedundancy, "code"},
		{DataRedundancy, "data"},
		{EnvironmentRedundancy, "environment"},
		{RedundancyType(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestAdjudicatorKindString(t *testing.T) {
	tests := []struct {
		v    AdjudicatorKind
		want string
	}{
		{Preventive, "preventive"},
		{ReactiveImplicit, "reactive, implicit"},
		{ReactiveExplicit, "reactive, explicit"},
		{ReactiveBoth, "reactive, expl./impl."},
		{AdjudicatorKind(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestFaultClassString(t *testing.T) {
	tests := []struct {
		v    FaultClass
		want string
	}{
		{DevelopmentFaults, "development"},
		{Bohrbugs, "Bohrbugs"},
		{Heisenbugs, "Heisenbugs"},
		{MaliciousFaults, "malicious"},
		{FaultClass(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	tests := []struct {
		v    Pattern
		want string
	}{
		{ParallelEvaluationPattern, "parallel evaluation"},
		{ParallelSelectionPattern, "parallel selection"},
		{SequentialAlternativesPattern, "sequential alternatives"},
		{IntraComponentPattern, "intra-component"},
		{EnvironmentPattern, "environment"},
		{Pattern(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	var m Metrics
	m.RecordRequest()
	m.RecordRequest()
	m.RecordVariantExecutions(3)
	m.RecordVariantExecutions(1)
	m.RecordFailureDetected()
	m.RecordFailureMasked()
	m.RecordFailure()
	s := m.Snapshot()
	if s.Requests != 2 || s.VariantExecutions != 4 || s.FailuresDetected != 1 ||
		s.FailuresMasked != 1 || s.Failures != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	if got := s.ExecutionsPerRequest(); got != 2 {
		t.Errorf("ExecutionsPerRequest = %f", got)
	}
	if got := s.Reliability(); got != 0.5 {
		t.Errorf("Reliability = %f", got)
	}
}

func TestMetricsZeroRequests(t *testing.T) {
	var s Snapshot
	if s.ExecutionsPerRequest() != 0 {
		t.Error("zero-request snapshot should report zero execution cost")
	}
	// No observed requests means no observed failures: an idle executor
	// reads as fully reliable, not broken.
	if s.Reliability() != 1 {
		t.Errorf("zero-request Reliability = %f, want 1", s.Reliability())
	}
}

func TestMetricsConcurrency(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.RecordRequest()
				m.RecordVariantExecutions(2)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Requests != workers*each || s.VariantExecutions != 2*workers*each {
		t.Errorf("lost updates: %+v", s)
	}
}

func TestGuardContainsPanics(t *testing.T) {
	crashing := NewVariant("crashes", func(_ context.Context, _ int) (int, error) {
		panic("nil dereference simulation")
	})
	g := Guard(crashing)
	if g.Name() != "crashes" {
		t.Errorf("Name = %q", g.Name())
	}
	out, err := g.Execute(context.Background(), 1)
	if !errors.Is(err, ErrVariantPanicked) {
		t.Fatalf("err = %v, want ErrVariantPanicked", err)
	}
	if out != 0 {
		t.Errorf("out = %d, want zero value", out)
	}
}

func TestGuardPassesThroughSuccess(t *testing.T) {
	v := NewVariant("fine", func(_ context.Context, x int) (int, error) { return x + 1, nil })
	out, err := Guard(v).Execute(context.Background(), 4)
	if err != nil || out != 5 {
		t.Errorf("= (%d, %v)", out, err)
	}
}

func TestGuardPassesThroughErrors(t *testing.T) {
	boom := errors.New("boom")
	v := NewVariant("errs", func(_ context.Context, _ int) (int, error) { return 0, boom })
	_, err := Guard(v).Execute(context.Background(), 0)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

package core

// This file defines the four dimensions of the paper's taxonomy (Table 1)
// and the architectural patterns of Figure 1. Every technique package
// exposes a TechniqueInfo (see internal/taxonomy) positioned along these
// dimensions; the taxonomy tables of the paper are regenerated from those
// records.

// Intention distinguishes redundancy that is deliberately added to a
// system at design time from redundancy that is implicitly present and
// opportunistically exploited.
type Intention int

const (
	// Deliberate redundancy is introduced by design, as in N-version
	// programming or recovery blocks.
	Deliberate Intention = iota + 1
	// Opportunistic redundancy is latent in the system and exploited
	// without having been designed in, as in automatic workarounds or
	// micro-reboots.
	Opportunistic
)

// String implements fmt.Stringer.
func (i Intention) String() string {
	switch i {
	case Deliberate:
		return "deliberate"
	case Opportunistic:
		return "opportunistic"
	default:
		return "unknown"
	}
}

// RedundancyType identifies which element of the execution is replicated:
// the code, the data, or the execution environment.
type RedundancyType int

const (
	// CodeRedundancy replicates functionality in the program text
	// (multiple versions, alternates, equivalent operation sequences).
	CodeRedundancy RedundancyType = iota + 1
	// DataRedundancy replicates or re-expresses the data the program
	// operates on (robust structures, data diversity).
	DataRedundancy
	// EnvironmentRedundancy varies the execution environment or execution
	// instances (rejuvenation, perturbation, replicas, reboots).
	EnvironmentRedundancy
)

// String implements fmt.Stringer.
func (t RedundancyType) String() string {
	switch t {
	case CodeRedundancy:
		return "code"
	case DataRedundancy:
		return "data"
	case EnvironmentRedundancy:
		return "environment"
	default:
		return "unknown"
	}
}

// AdjudicatorKind classifies how redundancy is activated and how results
// are judged: preventively (no failure detection involved) or reactively,
// with an adjudicator that is implicit (built into the mechanism, such as
// a vote) or explicit (designed per application, such as an acceptance
// test).
type AdjudicatorKind int

const (
	// Preventive mechanisms act before failures occur and need no
	// failure-triggered adjudication (rejuvenation, wrappers).
	Preventive AdjudicatorKind = iota + 1
	// ReactiveImplicit mechanisms react to failures detected by an
	// adjudicator built into the mechanism itself (majority voting).
	ReactiveImplicit
	// ReactiveExplicit mechanisms react to failures detected by an
	// application-specific adjudicator (acceptance tests, monitors).
	ReactiveExplicit
	// ReactiveBoth marks mechanisms whose adjudicator may be implicit or
	// explicit depending on the concrete design (self-checking
	// programming, data diversity).
	ReactiveBoth
)

// String implements fmt.Stringer.
func (k AdjudicatorKind) String() string {
	switch k {
	case Preventive:
		return "preventive"
	case ReactiveImplicit:
		return "reactive, implicit"
	case ReactiveExplicit:
		return "reactive, explicit"
	case ReactiveBoth:
		return "reactive, expl./impl."
	default:
		return "unknown"
	}
}

// FaultClass identifies the primary class of faults a mechanism addresses,
// following Avizienis et al.'s taxonomy restricted to software faults as
// the paper does: development faults split into Bohrbugs and Heisenbugs,
// and malicious interaction faults.
type FaultClass int

const (
	// DevelopmentFaults covers design and implementation faults in
	// general, without committing to deterministic or non-deterministic
	// manifestation.
	DevelopmentFaults FaultClass = iota + 1
	// Bohrbugs are development faults that manifest deterministically
	// under well-defined conditions.
	Bohrbugs
	// Heisenbugs are development faults whose manifestation is
	// non-deterministic, typically environment-dependent.
	Heisenbugs
	// MaliciousFaults are interaction faults introduced with malicious
	// objectives (attacks).
	MaliciousFaults
)

// String implements fmt.Stringer.
func (c FaultClass) String() string {
	switch c {
	case DevelopmentFaults:
		return "development"
	case Bohrbugs:
		return "Bohrbugs"
	case Heisenbugs:
		return "Heisenbugs"
	case MaliciousFaults:
		return "malicious"
	default:
		return "unknown"
	}
}

// Pattern identifies the architectural pattern (paper Figure 1) a
// technique instantiates, or the intra-component case for techniques that
// do not alter inter-component structure.
type Pattern int

const (
	// ParallelEvaluationPattern executes all alternatives in parallel and
	// adjudicates over the full result set (Figure 1a).
	ParallelEvaluationPattern Pattern = iota + 1
	// ParallelSelectionPattern executes alternatives in parallel, each
	// validated by its own adjudicator; the first acceptable result wins
	// (Figure 1b).
	ParallelSelectionPattern
	// SequentialAlternativesPattern executes alternatives one at a time,
	// moving to the next when the adjudicator rejects the current result
	// (Figure 1c).
	SequentialAlternativesPattern
	// IntraComponentPattern marks redundancy confined within a component
	// (wrappers, robust data structures, automatic workarounds).
	IntraComponentPattern
	// EnvironmentPattern marks techniques acting on execution instances
	// rather than component structure (rejuvenation, reboots,
	// checkpoint-recovery).
	EnvironmentPattern
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case ParallelEvaluationPattern:
		return "parallel evaluation"
	case ParallelSelectionPattern:
		return "parallel selection"
	case SequentialAlternativesPattern:
		return "sequential alternatives"
	case IntraComponentPattern:
		return "intra-component"
	case EnvironmentPattern:
		return "environment"
	default:
		return "unknown"
	}
}

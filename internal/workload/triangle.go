// Package workload provides the subject programs that examples and
// experiments exercise the redundancy techniques on. Instead of
// synthetic coin-flip failures, these are small real programs with
// genuine seeded logic faults:
//
//   - the triangle classifier of Knight and Leveson's classic N-version
//     experiment, in four "independently developed" versions, three of
//     which carry a distinct, deterministic logic bug (a Bohrbug with its
//     own failure region of the input space);
//   - a Newton square-root routine in three versions for inexact
//     (median) voting, one of which diverges on a boundary region.
package workload

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// Triangle is the classification result.
type Triangle int

const (
	// Invalid means the sides violate the triangle inequality.
	Invalid Triangle = iota + 1
	// Scalene means all sides differ.
	Scalene
	// Isosceles means exactly two sides are equal.
	Isosceles
	// Equilateral means all sides are equal.
	Equilateral
)

// String implements fmt.Stringer.
func (t Triangle) String() string {
	switch t {
	case Invalid:
		return "invalid"
	case Scalene:
		return "scalene"
	case Isosceles:
		return "isosceles"
	case Equilateral:
		return "equilateral"
	default:
		return "unknown"
	}
}

// TriangleInput is one classification request.
type TriangleInput struct {
	// A, B, C are the side lengths.
	A, B, C int
}

// Key returns a deterministic key for fault models.
func (in TriangleInput) Key() uint64 {
	return faultmodel.HashInt(in.A)*3 ^ faultmodel.HashInt(in.B)*5 ^ faultmodel.HashInt(in.C)*7
}

// String implements fmt.Stringer.
func (in TriangleInput) String() string {
	return fmt.Sprintf("(%d, %d, %d)", in.A, in.B, in.C)
}

// ClassifyTriangle is the reference (correct) classifier.
func ClassifyTriangle(in TriangleInput) Triangle {
	a, b, c := in.A, in.B, in.C
	if a <= 0 || b <= 0 || c <= 0 {
		return Invalid
	}
	// Triangle inequality, all three orientations.
	if a+b <= c || b+c <= a || a+c <= b {
		return Invalid
	}
	switch {
	case a == b && b == c:
		return Equilateral
	case a == b || b == c || a == c:
		return Isosceles
	default:
		return Scalene
	}
}

// TriangleVersions returns four "independently developed" classifier
// versions. Version 1 is correct; versions 2-4 carry the classic faults
// observed in N-version experiments:
//
//   - version 2 checks the triangle inequality in only one orientation,
//     accepting some invalid triangles as scalene;
//   - version 3 tests only a==b for isosceles, misclassifying b==c and
//     a==c isosceles triangles as scalene;
//   - version 4 uses a strict < in the triangle inequality, accepting
//     degenerate (flat) triangles.
//
// Each bug has its own deterministic failure region, so a majority vote
// over any three versions masks every single-version failure unless two
// failure regions overlap on the same input.
func TriangleVersions() []core.Variant[TriangleInput, Triangle] {
	v1 := core.NewVariant("classifier-1-correct",
		func(_ context.Context, in TriangleInput) (Triangle, error) {
			return ClassifyTriangle(in), nil
		})
	v2 := core.NewVariant("classifier-2-partial-inequality",
		func(_ context.Context, in TriangleInput) (Triangle, error) {
			a, b, c := in.A, in.B, in.C
			if a <= 0 || b <= 0 || c <= 0 {
				return Invalid, nil
			}
			if a+b <= c { // bug: only one orientation checked
				return Invalid, nil
			}
			switch {
			case a == b && b == c:
				return Equilateral, nil
			case a == b || b == c || a == c:
				return Isosceles, nil
			default:
				return Scalene, nil
			}
		})
	v3 := core.NewVariant("classifier-3-partial-isosceles",
		func(_ context.Context, in TriangleInput) (Triangle, error) {
			a, b, c := in.A, in.B, in.C
			if a <= 0 || b <= 0 || c <= 0 {
				return Invalid, nil
			}
			if a+b <= c || b+c <= a || a+c <= b {
				return Invalid, nil
			}
			switch {
			case a == b && b == c:
				return Equilateral, nil
			case a == b: // bug: misses b==c and a==c
				return Isosceles, nil
			default:
				return Scalene, nil
			}
		})
	v4 := core.NewVariant("classifier-4-degenerate-accepted",
		func(_ context.Context, in TriangleInput) (Triangle, error) {
			a, b, c := in.A, in.B, in.C
			if a <= 0 || b <= 0 || c <= 0 {
				return Invalid, nil
			}
			if a+b < c || b+c < a || a+c < b { // bug: strict < accepts flat triangles
				return Invalid, nil
			}
			switch {
			case a == b && b == c:
				return Equilateral, nil
			case a == b || b == c || a == c:
				return Isosceles, nil
			default:
				return Scalene, nil
			}
		})
	return []core.Variant[TriangleInput, Triangle]{v1, v2, v3, v4}
}

// RandomTriangle draws sides uniformly from [1, maxSide], with a bias
// toward the interesting boundary regions (degenerate and equal-side
// triangles) so version bugs are actually exercised.
func RandomTriangle(rng *xrand.Rand, maxSide int) TriangleInput {
	a := 1 + rng.Intn(maxSide)
	b := 1 + rng.Intn(maxSide)
	var c int
	switch rng.Intn(4) {
	case 0:
		c = a + b // degenerate (flat)
	case 1:
		c = a // isosceles-ish
	default:
		c = 1 + rng.Intn(maxSide)
	}
	return TriangleInput{A: a, B: b, C: c}
}

// SqrtVersions returns three square-root implementations for inexact
// median voting: Newton iteration, the math library, and a bisection
// version with a seeded bug that returns wildly wrong results for inputs
// in (0, 0.25) (its initial bracket does not contain the root).
func SqrtVersions() []core.Variant[float64, float64] {
	newton := core.NewVariant("sqrt-newton",
		func(_ context.Context, x float64) (float64, error) {
			if x < 0 {
				return 0, fmt.Errorf("sqrt of negative %f", x)
			}
			if x == 0 {
				return 0, nil
			}
			z := x
			for i := 0; i < 50; i++ {
				z -= (z*z - x) / (2 * z)
			}
			return z, nil
		})
	lib := core.NewVariant("sqrt-lib",
		func(_ context.Context, x float64) (float64, error) {
			if x < 0 {
				return 0, fmt.Errorf("sqrt of negative %f", x)
			}
			return math.Sqrt(x), nil
		})
	bisect := core.NewVariant("sqrt-bisect-buggy",
		func(_ context.Context, x float64) (float64, error) {
			if x < 0 {
				return 0, fmt.Errorf("sqrt of negative %f", x)
			}
			// Bug: for x < 0.25 the bracket [0, 2x] excludes the root,
			// because sqrt(x) > 2x exactly when x < 1/4; bisection then
			// converges to the bracket edge and returns ~2x.
			lo, hi := 0.0, x*2
			if x >= 0.25 {
				hi = x + 1
			}
			for i := 0; i < 200; i++ {
				mid := (lo + hi) / 2
				if mid*mid < x {
					lo = mid
				} else {
					hi = mid
				}
			}
			return (lo + hi) / 2, nil
		})
	return []core.Variant[float64, float64]{newton, lib, bisect}
}

// MedianOfSlice is a tiny helper used by examples: the median of a
// non-empty slice.
func MedianOfSlice(xs []float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

package workload

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/nvp"
	"github.com/softwarefaults/redundancy/internal/vote"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

func TestClassifyTriangleReference(t *testing.T) {
	tests := []struct {
		in   TriangleInput
		want Triangle
	}{
		{TriangleInput{3, 4, 5}, Scalene},
		{TriangleInput{3, 3, 5}, Isosceles},
		{TriangleInput{5, 3, 3}, Isosceles},
		{TriangleInput{3, 5, 3}, Isosceles},
		{TriangleInput{4, 4, 4}, Equilateral},
		{TriangleInput{1, 2, 3}, Invalid}, // degenerate
		{TriangleInput{1, 1, 5}, Invalid},
		{TriangleInput{0, 1, 1}, Invalid},
		{TriangleInput{-1, 2, 2}, Invalid},
	}
	for _, tt := range tests {
		if got := ClassifyTriangle(tt.in); got != tt.want {
			t.Errorf("Classify%s = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestVersionBugsHaveDistinctFailureRegions(t *testing.T) {
	versions := TriangleVersions()
	if len(versions) != 4 {
		t.Fatalf("versions = %d", len(versions))
	}
	ctx := context.Background()
	run := func(v core.Variant[TriangleInput, Triangle], in TriangleInput) Triangle {
		got, err := v.Execute(ctx, in)
		if err != nil {
			t.Fatalf("%s%s: %v", v.Name(), in, err)
		}
		return got
	}
	// v2 fails on invalid triangles whose violated inequality is not
	// a+b<=c.
	in := TriangleInput{A: 5, B: 1, C: 1} // b+c <= a
	if run(versions[1], in) == Invalid {
		t.Error("v2 should accept this invalid triangle (its bug)")
	}
	if run(versions[0], in) != Invalid || run(versions[2], in) != Invalid || run(versions[3], in) != Invalid {
		t.Error("v1, v3, v4 should classify it invalid")
	}
	// v3 fails on isosceles with b==c.
	in = TriangleInput{A: 3, B: 5, C: 5}
	if run(versions[2], in) != Scalene {
		t.Error("v3 should misclassify b==c isosceles as scalene (its bug)")
	}
	if run(versions[0], in) != Isosceles || run(versions[1], in) != Isosceles || run(versions[3], in) != Isosceles {
		t.Error("other versions should classify isosceles")
	}
	// v4 fails on degenerate triangles.
	in = TriangleInput{A: 2, B: 3, C: 5}
	if run(versions[3], in) == Invalid {
		t.Error("v4 should accept the flat triangle (its bug)")
	}
	if run(versions[0], in) != Invalid {
		t.Error("v1 should reject the flat triangle")
	}
}

// TestThreeVersionVoteMasksEverySingleBug is the workload-level N-version
// demonstration: a majority of versions 1-3 (or any three) classifies
// correctly wherever at most one version's failure region covers the
// input.
func TestThreeVersionVoteMasksEverySingleBug(t *testing.T) {
	versions := TriangleVersions()
	sys, err := nvp.New(versions[:3], core.EqualOf[Triangle]())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := xrand.New(17)
	disagreements := 0
	for i := 0; i < 5000; i++ {
		in := RandomTriangle(rng, 10)
		want := ClassifyTriangle(in)
		got, err := sys.Execute(ctx, in)
		if err != nil {
			disagreements++
			continue
		}
		if got != want {
			t.Fatalf("voted classification of %s = %v, want %v", in, got, want)
		}
	}
	// The two buggy versions have disjoint failure regions, so majority
	// always exists.
	if disagreements != 0 {
		t.Errorf("unexpected vote failures: %d", disagreements)
	}
}

func TestSingleVersionsActuallyFail(t *testing.T) {
	versions := TriangleVersions()
	ctx := context.Background()
	rng := xrand.New(23)
	for vi := 1; vi < 4; vi++ {
		failures := 0
		for i := 0; i < 5000; i++ {
			in := RandomTriangle(rng, 10)
			got, err := versions[vi].Execute(ctx, in)
			if err != nil || got != ClassifyTriangle(in) {
				failures++
			}
		}
		if failures == 0 {
			t.Errorf("version %d never failed; bug region not exercised", vi+1)
		}
	}
}

func TestTriangleInputKeyDeterministic(t *testing.T) {
	a := TriangleInput{3, 4, 5}
	b := TriangleInput{3, 4, 5}
	if a.Key() != b.Key() {
		t.Error("keys differ for equal inputs")
	}
	if a.Key() == (TriangleInput{5, 4, 3}).Key() {
		t.Error("permuted sides should hash differently (orientation matters for bugs)")
	}
}

func TestTriangleStringers(t *testing.T) {
	if Invalid.String() != "invalid" || Scalene.String() != "scalene" ||
		Isosceles.String() != "isosceles" || Equilateral.String() != "equilateral" ||
		Triangle(0).String() != "unknown" {
		t.Error("Triangle.String incorrect")
	}
	if (TriangleInput{1, 2, 3}).String() != "(1, 2, 3)" {
		t.Error("TriangleInput.String incorrect")
	}
}

func TestSqrtVersionsAgreeOutsideBugRegion(t *testing.T) {
	versions := SqrtVersions()
	ctx := context.Background()
	for _, x := range []float64{0.25, 1, 2, 100, 12345.678} {
		want := math.Sqrt(x)
		for _, v := range versions {
			got, err := v.Execute(ctx, x)
			if err != nil {
				t.Fatalf("%s(%f): %v", v.Name(), x, err)
			}
			if math.Abs(got-want) > 1e-6*want+1e-9 {
				t.Errorf("%s(%f) = %f, want %f", v.Name(), x, got, want)
			}
		}
	}
}

func TestSqrtBuggyVersionFailsInRegion(t *testing.T) {
	versions := SqrtVersions()
	buggy := versions[2]
	got, err := buggy.Execute(context.Background(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) < 0.01 {
		t.Errorf("buggy sqrt(0.01) = %f; the seeded bug should make it wrong", got)
	}
}

func TestMedianVoteMasksSqrtBug(t *testing.T) {
	sys, err := nvp.NewWithAdjudicator(SqrtVersions(), vote.MedianAdjudicator())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.01, 0.1, 0.2, 1, 4} {
		got, err := sys.Execute(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-math.Sqrt(x)) > 1e-6 {
			t.Errorf("median sqrt(%f) = %f, want %f", x, got, math.Sqrt(x))
		}
	}
}

func TestSqrtNegativeInput(t *testing.T) {
	for _, v := range SqrtVersions() {
		if _, err := v.Execute(context.Background(), -1); err == nil {
			t.Errorf("%s accepted negative input", v.Name())
		}
	}
}

func TestMedianOfSlice(t *testing.T) {
	if got := MedianOfSlice([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %f", got)
	}
	if got := MedianOfSlice([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %f", got)
	}
}

// Property: the reference classifier is permutation-invariant.
func TestClassifyPermutationInvariant(t *testing.T) {
	f := func(a, b, c uint8) bool {
		in1 := TriangleInput{int(a), int(b), int(c)}
		in2 := TriangleInput{int(b), int(c), int(a)}
		in3 := TriangleInput{int(c), int(a), int(b)}
		r := ClassifyTriangle(in1)
		return ClassifyTriangle(in2) == r && ClassifyTriangle(in3) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomTriangleCoversBoundaryRegions(t *testing.T) {
	rng := xrand.New(5)
	sawInvalid, sawIso, sawEq := false, false, false
	for i := 0; i < 2000; i++ {
		in := RandomTriangle(rng, 8)
		switch ClassifyTriangle(in) {
		case Invalid:
			sawInvalid = true
		case Isosceles:
			sawIso = true
		case Equilateral:
			sawEq = true
		}
	}
	if !sawInvalid || !sawIso || !sawEq {
		t.Errorf("generator coverage: invalid=%v isosceles=%v equilateral=%v",
			sawInvalid, sawIso, sawEq)
	}
}

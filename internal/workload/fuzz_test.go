package workload

import (
	"errors"
	"testing"
)

// FuzzParsersAgree differentially fuzzes the two independently designed
// correct calculator versions: on any input, they must agree on both the
// accept/reject decision and, when accepting, the value. This is exactly
// the self-checking-pair adjudication applied as a fuzz oracle.
func FuzzParsersAgree(f *testing.F) {
	for _, seed := range []string{
		"1+2*3", "(1+2)*3", "10-2-3", "((7))", "", "1+", ")(",
		"2*(3+4)*5", "0", "19*19*19", "1 + 2", "(((((1)))))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		if len(expr) > 256 {
			return
		}
		a, errA := EvalExpr(expr)
		b, errB := evalShuntingYard(expr)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("accept/reject disagreement on %q: rd=%v sy=%v", expr, errA, errB)
		}
		if errA != nil {
			if !errors.Is(errA, ErrBadExpression) {
				t.Fatalf("unexpected error class: %v", errA)
			}
			return
		}
		if a != b {
			t.Fatalf("value disagreement on %q: rd=%d sy=%d", expr, a, b)
		}
	})
}

// FuzzReferenceNeverPanics asserts the reference evaluator is total: any
// byte string either evaluates or returns ErrBadExpression.
func FuzzReferenceNeverPanics(f *testing.F) {
	for _, seed := range []string{"1", "((", "+*+", "9999999999999999999999", "1*)2("} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		if len(expr) > 256 {
			return
		}
		if _, err := EvalExpr(expr); err != nil && !errors.Is(err, ErrBadExpression) {
			t.Fatalf("non-sentinel error: %v", err)
		}
	})
}

package workload

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// The calculator workload: an infix arithmetic evaluator over +, -, *,
// parentheses and non-negative integer literals, implemented in three
// "independently developed" versions. Version 1 is a recursive-descent
// parser; version 2 is a shunting-yard evaluator (a genuinely different
// algorithm); version 3 evaluates strictly left-to-right, ignoring
// multiplication precedence — the classic integration-era bug whose
// failure region is exactly the expressions where precedence matters.

// Calculator errors.
var (
	// ErrBadExpression reports a syntactically invalid expression.
	ErrBadExpression = errors.New("workload: bad expression")
)

// token kinds for the calculator lexer.
type tokKind int

const (
	tokNum tokKind = iota + 1
	tokOp
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	num  int64
	op   byte
}

// lex splits an expression into tokens.
func lex(expr string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == ' ':
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(expr) && expr[j] >= '0' && expr[j] <= '9' {
				j++
			}
			n, err := strconv.ParseInt(expr[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("number %q: %w", expr[i:j], ErrBadExpression)
			}
			toks = append(toks, token{kind: tokNum, num: n})
			i = j
		case c == '+' || c == '-' || c == '*':
			toks = append(toks, token{kind: tokOp, op: c})
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen})
			i++
		default:
			return nil, fmt.Errorf("character %q: %w", c, ErrBadExpression)
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty expression: %w", ErrBadExpression)
	}
	return toks, nil
}

// EvalExpr is the reference evaluator (recursive descent).
func EvalExpr(expr string) (int64, error) {
	toks, err := lex(expr)
	if err != nil {
		return 0, err
	}
	p := &rdParser{toks: toks}
	v, err := p.parseSum()
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.toks) {
		return 0, fmt.Errorf("trailing tokens: %w", ErrBadExpression)
	}
	return v, nil
}

// rdParser is the recursive-descent implementation.
type rdParser struct {
	toks []token
	pos  int
}

func (p *rdParser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *rdParser) parseSum() (int64, error) {
	v, err := p.parseProduct()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOp || (t.op != '+' && t.op != '-') {
			return v, nil
		}
		p.pos++
		rhs, err := p.parseProduct()
		if err != nil {
			return 0, err
		}
		if t.op == '+' {
			v += rhs
		} else {
			v -= rhs
		}
	}
}

func (p *rdParser) parseProduct() (int64, error) {
	v, err := p.parseAtom()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOp || t.op != '*' {
			return v, nil
		}
		p.pos++
		rhs, err := p.parseAtom()
		if err != nil {
			return 0, err
		}
		v *= rhs
	}
}

func (p *rdParser) parseAtom() (int64, error) {
	t, ok := p.peek()
	if !ok {
		return 0, fmt.Errorf("unexpected end: %w", ErrBadExpression)
	}
	switch t.kind {
	case tokNum:
		p.pos++
		return t.num, nil
	case tokLParen:
		p.pos++
		v, err := p.parseSum()
		if err != nil {
			return 0, err
		}
		t, ok := p.peek()
		if !ok || t.kind != tokRParen {
			return 0, fmt.Errorf("missing ')': %w", ErrBadExpression)
		}
		p.pos++
		return v, nil
	default:
		return 0, fmt.Errorf("unexpected token: %w", ErrBadExpression)
	}
}

// evalShuntingYard evaluates with an operator-precedence stack machine —
// an independently designed algorithm producing the same results.
func evalShuntingYard(expr string) (int64, error) {
	toks, err := lex(expr)
	if err != nil {
		return 0, err
	}
	prec := func(op byte) int {
		if op == '*' {
			return 2
		}
		return 1
	}
	var (
		vals []int64
		ops  []byte
	)
	applyTop := func() error {
		if len(ops) == 0 || len(vals) < 2 {
			return fmt.Errorf("unbalanced expression: %w", ErrBadExpression)
		}
		op := ops[len(ops)-1]
		ops = ops[:len(ops)-1]
		b, a := vals[len(vals)-1], vals[len(vals)-2]
		vals = vals[:len(vals)-2]
		switch op {
		case '+':
			vals = append(vals, a+b)
		case '-':
			vals = append(vals, a-b)
		default:
			vals = append(vals, a*b)
		}
		return nil
	}
	expectOperand := true
	for _, t := range toks {
		switch t.kind {
		case tokNum:
			if !expectOperand {
				return 0, fmt.Errorf("consecutive operands: %w", ErrBadExpression)
			}
			vals = append(vals, t.num)
			expectOperand = false
		case tokOp:
			if expectOperand {
				return 0, fmt.Errorf("misplaced operator: %w", ErrBadExpression)
			}
			for len(ops) > 0 && ops[len(ops)-1] != '(' && prec(ops[len(ops)-1]) >= prec(t.op) {
				if err := applyTop(); err != nil {
					return 0, err
				}
			}
			ops = append(ops, t.op)
			expectOperand = true
		case tokLParen:
			if !expectOperand {
				return 0, fmt.Errorf("missing operator before '(': %w", ErrBadExpression)
			}
			ops = append(ops, '(')
		case tokRParen:
			if expectOperand {
				return 0, fmt.Errorf("empty parentheses: %w", ErrBadExpression)
			}
			for len(ops) > 0 && ops[len(ops)-1] != '(' {
				if err := applyTop(); err != nil {
					return 0, err
				}
			}
			if len(ops) == 0 {
				return 0, fmt.Errorf("unmatched ')': %w", ErrBadExpression)
			}
			ops = ops[:len(ops)-1]
		}
	}
	if expectOperand {
		return 0, fmt.Errorf("dangling operator: %w", ErrBadExpression)
	}
	for len(ops) > 0 {
		if ops[len(ops)-1] == '(' {
			return 0, fmt.Errorf("unmatched '(': %w", ErrBadExpression)
		}
		if err := applyTop(); err != nil {
			return 0, err
		}
	}
	if len(vals) != 1 {
		return 0, fmt.Errorf("unbalanced expression: %w", ErrBadExpression)
	}
	return vals[0], nil
}

// evalLeftToRight carries the seeded bug: it handles parentheses but
// applies all operators at equal precedence, strictly left to right, so
// any expression mixing +/- with a later * is silently mis-evaluated.
func evalLeftToRight(expr string) (int64, error) {
	toks, err := lex(expr)
	if err != nil {
		return 0, err
	}
	pos := 0
	var eval func() (int64, error)
	eval = func() (int64, error) {
		var (
			acc     int64
			have    bool
			pending byte = '+'
		)
		for pos < len(toks) {
			t := toks[pos]
			switch t.kind {
			case tokNum, tokLParen:
				var v int64
				if t.kind == tokNum {
					v = t.num
					pos++
				} else {
					pos++
					inner, err := eval()
					if err != nil {
						return 0, err
					}
					if pos >= len(toks) || toks[pos].kind != tokRParen {
						return 0, fmt.Errorf("missing ')': %w", ErrBadExpression)
					}
					pos++
					v = inner
				}
				if !have {
					acc, have = v, true
					continue
				}
				switch pending {
				case '+':
					acc += v
				case '-':
					acc -= v
				default:
					acc *= v
				}
			case tokOp:
				pending = t.op
				pos++
			case tokRParen:
				if !have {
					return 0, fmt.Errorf("empty parentheses: %w", ErrBadExpression)
				}
				return acc, nil
			}
		}
		if !have {
			return 0, fmt.Errorf("empty expression: %w", ErrBadExpression)
		}
		return acc, nil
	}
	v, err := eval()
	if err != nil {
		return 0, err
	}
	if pos != len(toks) {
		return 0, fmt.Errorf("trailing tokens: %w", ErrBadExpression)
	}
	return v, nil
}

// CalcVersions returns the three calculator versions:
// recursive descent (correct), shunting-yard (correct, independently
// designed), and the left-to-right evaluator with the precedence bug.
func CalcVersions() []core.Variant[string, int64] {
	return []core.Variant[string, int64]{
		core.NewVariant("calc-recursive-descent",
			func(_ context.Context, expr string) (int64, error) { return EvalExpr(expr) }),
		core.NewVariant("calc-shunting-yard",
			func(_ context.Context, expr string) (int64, error) { return evalShuntingYard(expr) }),
		core.NewVariant("calc-left-to-right-buggy",
			func(_ context.Context, expr string) (int64, error) { return evalLeftToRight(expr) }),
	}
}

// RandomExpr generates a random well-formed expression with the given
// number of operators, biased toward precedence-sensitive shapes.
func RandomExpr(rng *xrand.Rand, operators int) string {
	var b strings.Builder
	depth := 0
	writeOperand := func() {
		if rng.Bool(0.2) {
			b.WriteByte('(')
			depth++
		}
		b.WriteString(strconv.Itoa(rng.Intn(20)))
	}
	writeOperand()
	for i := 0; i < operators; i++ {
		if depth > 0 && rng.Bool(0.4) {
			b.WriteByte(')')
			depth--
		}
		b.WriteByte([]byte{'+', '-', '*'}[rng.Intn(3)])
		writeOperand()
	}
	for depth > 0 {
		b.WriteByte(')')
		depth--
	}
	return b.String()
}

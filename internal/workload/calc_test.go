package workload

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/nvp"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

func TestEvalExprReference(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"1", 1},
		{"1+2", 3},
		{"2*3", 6},
		{"1+2*3", 7},
		{"2*3+1", 7},
		{"(1+2)*3", 9},
		{"10-2-3", 5},
		{"10-2*3", 4},
		{"2*(3+4)*5", 70},
		{"((7))", 7},
		{" 1 + 2 ", 3},
		{"0*99+1", 1},
	}
	for _, tt := range tests {
		got, err := EvalExpr(tt.expr)
		if err != nil {
			t.Errorf("EvalExpr(%q): %v", tt.expr, err)
			continue
		}
		if got != tt.want {
			t.Errorf("EvalExpr(%q) = %d, want %d", tt.expr, got, tt.want)
		}
	}
}

func TestEvalExprRejectsBadInput(t *testing.T) {
	bad := []string{"", "1+", "+1", "1 2", "(1+2", "1+2)", "a+b", "()", "1*/2", "((1)"}
	for _, expr := range bad {
		if _, err := EvalExpr(expr); !errors.Is(err, ErrBadExpression) {
			t.Errorf("EvalExpr(%q) err = %v, want ErrBadExpression", expr, err)
		}
	}
}

func TestShuntingYardAgreesWithReference(t *testing.T) {
	rng := xrand.New(7)
	for i := 0; i < 3000; i++ {
		expr := RandomExpr(rng, 1+rng.Intn(6))
		want, err := EvalExpr(expr)
		if err != nil {
			t.Fatalf("reference rejected generated expr %q: %v", expr, err)
		}
		got, err := evalShuntingYard(expr)
		if err != nil {
			t.Fatalf("shunting-yard rejected %q: %v", expr, err)
		}
		if got != want {
			t.Fatalf("shunting-yard(%q) = %d, reference %d", expr, got, want)
		}
	}
}

func TestShuntingYardRejectsBadInput(t *testing.T) {
	bad := []string{"", "1+", "+1", "(1+2", "1+2)", "()", "1 2", "(+)"}
	for _, expr := range bad {
		if _, err := evalShuntingYard(expr); !errors.Is(err, ErrBadExpression) {
			t.Errorf("shunting-yard(%q) err = %v", expr, err)
		}
	}
}

func TestLeftToRightBugManifests(t *testing.T) {
	// The bug is precedence-sensitive: 1+2*3 evaluates to 9 (left to
	// right) instead of 7.
	got, err := evalLeftToRight("1+2*3")
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("buggy eval = %d, want the characteristic wrong answer 9", got)
	}
	// Outside the failure region (no precedence interaction) it is correct.
	for _, expr := range []string{"1+2+3", "2*3*4", "(1+2)*3", "9-4-3"} {
		want, err := EvalExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := evalLeftToRight(expr)
		if err != nil || got != want {
			t.Errorf("buggy eval(%q) = (%d, %v), want %d", expr, got, err, want)
		}
	}
}

func TestCalcVersionsVoteMasksPrecedenceBug(t *testing.T) {
	sys, err := nvp.New(CalcVersions(), core.EqualOf[int64]())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	ctx := context.Background()
	buggyWrong := 0
	for i := 0; i < 2000; i++ {
		expr := RandomExpr(rng, 1+rng.Intn(5))
		want, err := EvalExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.Execute(ctx, expr)
		if err != nil || got != want {
			t.Fatalf("voted eval(%q) = (%d, %v), want %d", expr, got, err, want)
		}
		if v, err := evalLeftToRight(expr); err != nil || v != want {
			buggyWrong++
		}
	}
	if buggyWrong == 0 {
		t.Error("generator never exercised the precedence bug")
	}
}

func TestCalcDisagreementDetectedByPair(t *testing.T) {
	// A self-checking pair of the correct and the buggy version detects
	// the bug as divergence on precedence-sensitive input.
	versions := CalcVersions()
	results := []core.Result[int64]{}
	for _, v := range []core.Variant[string, int64]{versions[0], versions[2]} {
		got, err := v.Execute(context.Background(), "1+2*3")
		results = append(results, core.Result[int64]{Variant: v.Name(), Value: got, Err: err})
	}
	if results[0].Value == results[1].Value {
		t.Fatal("versions unexpectedly agree")
	}
}

// Property: the two correct versions agree on every generated expression,
// and parenthesizing the whole expression never changes its value.
func TestCalcProperties(t *testing.T) {
	rng := xrand.New(23)
	f := func(opsRaw uint8, seedRaw uint16) bool {
		expr := RandomExpr(xrand.New(uint64(seedRaw)), int(opsRaw%6)+1)
		a, errA := EvalExpr(expr)
		b, errB := evalShuntingYard(expr)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA == nil && a != b {
			return false
		}
		c, err := EvalExpr("(" + expr + ")")
		return err == nil && c == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	_ = rng
}

func TestRandomExprAlwaysWellFormed(t *testing.T) {
	rng := xrand.New(31)
	for i := 0; i < 5000; i++ {
		expr := RandomExpr(rng, 1+rng.Intn(8))
		if _, err := EvalExpr(expr); err != nil {
			t.Fatalf("generated invalid expression %q: %v", expr, err)
		}
	}
}

// Package control implements the autonomic control plane: the MAPE
// loop that closes the gap between fleet-wide diagnosis and live
// reconfiguration. A Controller subscribes to the observation stream —
// collector snapshots, SLO burn windows, failure-detector membership,
// health diagnoses — on a fixed reconciliation tick, hands the
// combined picture to its policies (replica replacement, adaptive tail
// tuning, diagnosis-directed recovery), and carries the actions they
// propose out through pluggable actuators.
//
// Every action is published as a ControlActionTaken observation event
// (cause, target, old → new setting), so campaigns can count and gate
// on intervention rates; every actuator sits behind a per-action-kind
// sliding-window rate limit, and the whole loop sits behind a global
// kill switch (SetEnabled) so an operator can freeze the controller
// without tearing it down. In the paper's terms this is the
// self-healing end state: redundancy masks the fault, diagnosis names
// it, and the controller repairs the environment it lives in.
package control

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/obs/health"
	"github.com/softwarefaults/redundancy/internal/supervise"
)

// Action kinds the built-in policies propose. Actuators are registered
// per kind; drivers may define further kinds with their own policies.
const (
	// ActionReplace spawns a replacement replica for a convicted-dead
	// endpoint and splices it into the live endpoint set.
	ActionReplace = "replace"
	// ActionHedgeTune raises or lowers a Remote's hedge delay.
	ActionHedgeTune = "hedge-tune"
	// ActionDepositTune raises or lowers a retry budget's per-request
	// deposit rate.
	ActionDepositTune = "deposit-tune"
	// ActionRejuvenate micro-reboots (or otherwise rejuvenates) a
	// variant whose diagnosis suggests environment-dependent failure.
	ActionRejuvenate = "rejuvenate"
	// ActionSubstitute rebinds a bohrbug-diagnosed variant to a
	// substitute service implementation — retries are futile against a
	// deterministic bug.
	ActionSubstitute = "substitute"
)

// Action is one reconfiguration decision: what to do (Kind), why
// (Cause, e.g. "detector:dead:heartbeat" or "diagnosis:aging"), to
// what (Target), and the setting change (Old → New). Policies propose
// actions; actuators carry them out and may fill in the outcome (a
// replacement policy does not know the new replica's name — its
// actuator does).
type Action struct {
	Kind   string
	Cause  string
	Target string
	Old    string
	New    string
}

// Actuator carries out actions of one kind. It returns the action as
// performed — typically the proposal with Old/New filled in — which is
// what the controller records and emits. An error means the action did
// not happen: policy state is not committed, so the proposal recurs on
// a later tick.
type Actuator func(ctx context.Context, a Action) (Action, error)

// Inputs is the fleet-wide observation picture handed to every policy
// on one reconciliation tick. Fields for sources the controller was
// not given are zero (nil map/slice, nil func) — policies must
// tolerate partial visibility.
type Inputs struct {
	// Now is the tick instant.
	Now time.Time
	// Observed is the collector snapshot (per-executor counters and
	// latency quantiles).
	Observed []obs.ExecutorSnapshot
	// SLO is the burn-rate tracker snapshot (fast window first).
	SLO []obs.SLOStatus
	// Detector is the failure detector's membership verdicts.
	Detector map[string]obs.ReplicaState
	// Evidence returns the detector's evidence against a replica:
	// consecutive heartbeat misses, accumulated accusations, and
	// accumulated slowness reports from the latency ejector.
	Evidence func(name string) (misses, accusations, slowness int)
	// Health is the health engine's diagnosis snapshot.
	Health []health.ExecutorHealth
	// FastBurn returns an executor's fast-window error-budget burn rate.
	FastBurn func(executor string) float64
	// P99 returns an executor's measured p99 request latency (zero when
	// unknown).
	P99 func(executor string) time.Duration
}

// Sources wires the controller to the live observation stream. Every
// field is optional; missing sources leave the corresponding Inputs
// fields zero.
type Sources struct {
	Observed func() []obs.ExecutorSnapshot
	SLO      func() []obs.SLOStatus
	Detector func() map[string]obs.ReplicaState
	Evidence func(name string) (misses, accusations, slowness int)
	Health   func() []health.ExecutorHealth
	FastBurn func(executor string) float64
	P99      func(executor string) time.Duration
}

// Policy inspects one tick's Inputs and proposes actions. Policies are
// stateful (hysteresis, dedup) and are only ever called from the
// controller's reconciliation goroutine, so they need no locking of
// their own.
type Policy interface {
	// Name labels the policy in debugging output.
	Name() string
	// Evaluate proposes zero or more actions for this tick.
	Evaluate(in Inputs) []Action
}

// Committer is an optional Policy extension: the controller calls
// Committed for every proposed action whose actuator succeeded, so a
// policy defers its "already handled" bookkeeping until the action
// actually happened — a rate-limited or failed actuation recurs.
type Committer interface {
	Committed(a Action)
}

// Config parameterizes a Controller. The zero value selects the
// documented defaults.
type Config struct {
	// Name labels the controller in observation events; empty means
	// "controller".
	Name string
	// Tick is the reconciliation period. Default 500ms.
	Tick time.Duration
	// MaxActionsPerKind bounds how many actions of one kind the
	// controller may take against one target within RateWindow — the
	// anti-flap bound. Distinct targets are limited independently, so a
	// noisy target (a replica wearing out repeatedly, say) cannot starve
	// the same kind of repair for a different target. Default 4.
	MaxActionsPerKind int
	// RateWindow is the sliding window of the per-kind-and-target rate
	// limit. Default 10s.
	RateWindow time.Duration
	// Sources feed the per-tick Inputs.
	Sources Sources
	// Policies propose actions, evaluated in order each tick.
	Policies []Policy
	// Actuators carry actions out, by kind. A proposed action with no
	// registered actuator is dropped (and counted as unactuated).
	Actuators map[string]Actuator
	// Observer receives one ControlActionTaken event per performed
	// action; nil observes nothing.
	Observer obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "controller"
	}
	if c.Tick <= 0 {
		c.Tick = 500 * time.Millisecond
	}
	if c.MaxActionsPerKind <= 0 {
		c.MaxActionsPerKind = 4
	}
	if c.RateWindow <= 0 {
		c.RateWindow = 10 * time.Second
	}
	return c
}

// Controller is the reconciliation loop. Create one with New, then
// either Run it (blocking tick loop, supervisable via AsChild) or
// drive Reconcile by hand in tests and simulations.
type Controller struct {
	cfg     Config
	enabled atomic.Bool

	mu      sync.Mutex
	history map[string][]time.Time // per-(kind, target) action instants (rate limit)
	counts  map[string]int         // per-kind performed-action totals

	suppressed atomic.Int64 // proposals dropped by the rate limit
	unactuated atomic.Int64 // proposals with no registered actuator
	failed     atomic.Int64 // actuations that returned an error
	total      atomic.Int64 // performed actions
}

// New builds a controller. It starts enabled; SetEnabled(false) is the
// kill switch.
func New(cfg Config) *Controller {
	c := &Controller{
		cfg:     cfg.withDefaults(),
		history: make(map[string][]time.Time),
		counts:  make(map[string]int),
	}
	c.enabled.Store(true)
	return c
}

// Name returns the controller's observation label.
func (c *Controller) Name() string { return c.cfg.Name }

// Enabled reports whether the loop acts on its ticks.
func (c *Controller) Enabled() bool { return c.enabled.Load() }

// SetEnabled flips the global kill switch. Disabled, the controller
// keeps ticking and observing but proposes and performs nothing —
// re-enabling resumes from fresh evidence rather than a backlog.
func (c *Controller) SetEnabled(on bool) { c.enabled.Store(on) }

// Run drives the reconciliation loop until the context is canceled.
func (c *Controller) Run(ctx context.Context) error {
	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case now := <-ticker.C:
			c.Reconcile(ctx, now)
		}
	}
}

// AsChild adapts the reconciliation loop into a supervision-tree
// member, so the controller itself is supervised like everything else
// it manages.
func (c *Controller) AsChild() supervise.ChildSpec {
	return supervise.ChildSpec{
		Name:    c.cfg.Name,
		Restart: supervise.Transient,
		Run:     c.Run,
	}
}

// Reconcile performs one tick: gather Inputs, evaluate every policy,
// rate-limit and actuate the proposals, commit and publish what
// happened. It returns the actions performed this tick. Exposed so
// tests and simulations can step the loop deterministically.
func (c *Controller) Reconcile(ctx context.Context, now time.Time) []Action {
	if !c.enabled.Load() {
		return nil
	}
	in := c.gather(now)
	var taken []Action
	for _, p := range c.cfg.Policies {
		for _, a := range p.Evaluate(in) {
			if !c.allow(a, now) {
				c.suppressed.Add(1)
				continue
			}
			actuate, ok := c.cfg.Actuators[a.Kind]
			if !ok || actuate == nil {
				c.unactuated.Add(1)
				continue
			}
			done, err := actuate(ctx, a)
			if err != nil {
				c.failed.Add(1)
				continue
			}
			c.commit(a, done.Kind, now)
			if cm, ok := p.(Committer); ok {
				cm.Committed(done)
			}
			obs.EmitControlAction(c.cfg.Observer, c.cfg.Name,
				done.Kind, done.Cause, done.Target, done.Old, done.New)
			taken = append(taken, done)
		}
	}
	return taken
}

// gather assembles one tick's Inputs from the configured sources.
func (c *Controller) gather(now time.Time) Inputs {
	in := Inputs{
		Now:      now,
		Evidence: c.cfg.Sources.Evidence,
		FastBurn: c.cfg.Sources.FastBurn,
		P99:      c.cfg.Sources.P99,
	}
	if f := c.cfg.Sources.Observed; f != nil {
		in.Observed = f()
	}
	if f := c.cfg.Sources.SLO; f != nil {
		in.SLO = f()
	}
	if f := c.cfg.Sources.Detector; f != nil {
		in.Detector = f()
	}
	if f := c.cfg.Sources.Health; f != nil {
		in.Health = f()
	}
	return in
}

// rateKey is the rate-limit bucket for a proposal: one sliding window
// per (kind, target), so repeated actions against one target are
// throttled without starving the same kind of action for another.
func rateKey(a Action) string { return a.Kind + "\x00" + a.Target }

// allow applies the per-(kind, target) sliding-window rate limit
// (without recording: a proposal only occupies the window once it was
// actually performed, see commit).
func (c *Controller) allow(a Action, now time.Time) bool {
	key := rateKey(a)
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := now.Add(-c.cfg.RateWindow)
	kept := c.history[key][:0]
	for _, t := range c.history[key] {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	c.history[key] = kept
	return len(kept) < c.cfg.MaxActionsPerKind
}

// commit records one performed action against the proposal's rate
// window and the per-kind totals. The window is keyed by the proposed
// target (what allow saw), not the actuator-rewritten one.
func (c *Controller) commit(proposed Action, kind string, now time.Time) {
	c.mu.Lock()
	c.history[rateKey(proposed)] = append(c.history[rateKey(proposed)], now)
	c.counts[kind]++
	c.mu.Unlock()
	c.total.Add(1)
}

// Counts returns a copy of the per-kind performed-action totals.
func (c *Controller) Counts() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Total returns how many actions the controller has performed.
func (c *Controller) Total() int64 { return c.total.Load() }

// Suppressed returns how many proposals the rate limit dropped.
func (c *Controller) Suppressed() int64 { return c.suppressed.Load() }

// Unactuated returns how many proposals had no registered actuator.
func (c *Controller) Unactuated() int64 { return c.unactuated.Load() }

// Failed returns how many actuations returned an error.
func (c *Controller) Failed() int64 { return c.failed.Load() }

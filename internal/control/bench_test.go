package control

import (
	"context"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/obs/health"
)

// BenchmarkControllerTick measures the cost of one reconciliation over
// a realistic, healthy observation stream — the controller's steady-
// state overhead when no action fires. The tick shares nothing with
// the request path (it reads copy-on-write snapshots), so this number
// bounds its p99 impact: at the default 500ms tick, a sub-100µs
// reconcile is far below 1% of any request budget.
func BenchmarkControllerTick(b *testing.B) {
	collector := obs.NewCollector()
	engine := health.New(health.Config{})
	slo := obs.NewSLOTracker(obs.SLOConfig{
		Default:    obs.SLObjective{Target: 0.999, Latency: 20 * time.Millisecond},
		FastWindow: 500 * time.Millisecond,
		SlowWindow: 3 * time.Second,
	})
	observer := obs.Combine(collector, engine, slo)

	// A fleet's worth of healthy traffic: three replica executors plus
	// the fleet client, all comfortably within objective.
	executors := []string{"fleet", "replica:r1", "replica:r2", "replica:r3"}
	for i := 0; i < 512; i++ {
		for _, e := range executors {
			req := obs.NextRequestID()
			observer.RequestStart(e, req)
			observer.VariantStart(e, "double", req)
			observer.VariantEnd(e, "double", req, 2*time.Millisecond, nil)
			observer.RequestEnd(e, req, 2*time.Millisecond, obs.OutcomeSuccess)
		}
	}
	detectorStates := map[string]obs.ReplicaState{
		"r1": obs.ReplicaAlive, "r2": obs.ReplicaAlive, "r3": obs.ReplicaAlive,
	}
	hedge := 25 * time.Millisecond
	deposit := 0.1
	ctrl := New(Config{
		Sources: Sources{
			Observed: collector.Snapshot,
			SLO:      slo.Snapshot,
			Detector: func() map[string]obs.ReplicaState { return detectorStates },
			Health:   engine.Snapshot,
			FastBurn: slo.FastBurn,
			P99: func(executor string) time.Duration {
				if h := collector.ExecutorLatency(executor); h != nil {
					return h.P99()
				}
				return 0
			},
		},
		Policies: []Policy{
			&ReplacementPolicy{DeadAfter: 6, AccuseDeadAfter: 8},
			NewTailPolicy(TailPolicyConfig{
				Client:     "fleet",
				Objective:  20 * time.Millisecond,
				HedgeAfter: func() time.Duration { return hedge },
				Deposit:    func() float64 { return deposit },
			}),
			NewDiagnosisPolicy(DiagnosisPolicyConfig{}),
		},
		Actuators: map[string]Actuator{},
	})

	ctx := context.Background()
	now := time.Unix(1000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(500 * time.Millisecond)
		if actions := ctrl.Reconcile(ctx, now); len(actions) != 0 {
			b.Fatalf("healthy fleet triggered actions: %+v", actions)
		}
	}
}

package control

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/obs/health"
)

// recordActuator returns an actuator that appends performed actions.
func recordActuator(log *[]Action) Actuator {
	return func(_ context.Context, a Action) (Action, error) {
		*log = append(*log, a)
		return a, nil
	}
}

// tick advances a hand-driven controller clock.
type clock struct{ now time.Time }

func (c *clock) tick(d time.Duration) time.Time {
	c.now = c.now.Add(d)
	return c.now
}

func newClock() *clock { return &clock{now: time.Unix(1000, 0)} }

func TestReplacementPolicyProposesOncePerConviction(t *testing.T) {
	states := map[string]obs.ReplicaState{
		"r1": obs.ReplicaAlive,
		"r2": obs.ReplicaDead,
	}
	var log []Action
	ctrl := New(Config{
		Tick: time.Millisecond,
		Sources: Sources{
			Detector: func() map[string]obs.ReplicaState { return states },
			Evidence: func(name string) (int, int, int) { return 6, 0, 0 },
		},
		Policies:  []Policy{&ReplacementPolicy{DeadAfter: 5}},
		Actuators: map[string]Actuator{ActionReplace: recordActuator(&log)},
	})
	ck := newClock()
	for i := 0; i < 5; i++ {
		ctrl.Reconcile(context.Background(), ck.tick(time.Second))
	}
	if len(log) != 1 {
		t.Fatalf("replace actions = %d, want exactly 1 (dedup after commit)", len(log))
	}
	if log[0].Target != "r2" || log[0].Cause != "detector:dead:heartbeat" {
		t.Errorf("action = %+v, want target r2 convicted by heartbeat", log[0])
	}
}

func TestReplacementPolicyAttributesAccusationTrack(t *testing.T) {
	p := &ReplacementPolicy{DeadAfter: 5, AccuseDeadAfter: 8}
	in := Inputs{
		Detector: map[string]obs.ReplicaState{"liar": obs.ReplicaDead},
		Evidence: func(string) (int, int, int) { return 0, 9, 0 },
	}
	actions := p.Evaluate(in)
	if len(actions) != 1 || actions[0].Cause != "detector:dead:accusation" {
		t.Fatalf("actions = %+v, want one accusation-track conviction", actions)
	}
}

func TestReplacementPolicyRetriesFailedActuation(t *testing.T) {
	states := map[string]obs.ReplicaState{"r2": obs.ReplicaDead}
	attempts := 0
	ctrl := New(Config{
		Sources:  Sources{Detector: func() map[string]obs.ReplicaState { return states }},
		Policies: []Policy{&ReplacementPolicy{}},
		Actuators: map[string]Actuator{ActionReplace: func(_ context.Context, a Action) (Action, error) {
			attempts++
			if attempts < 3 {
				return a, errors.New("spawn failed")
			}
			return a, nil
		}},
	})
	ck := newClock()
	for i := 0; i < 6; i++ {
		ctrl.Reconcile(context.Background(), ck.tick(time.Second))
	}
	if attempts != 3 {
		t.Fatalf("actuation attempts = %d, want 3 (two failures retried, success commits)", attempts)
	}
	if got := ctrl.Failed(); got != 2 {
		t.Errorf("Failed() = %d, want 2", got)
	}
}

func TestKillSwitchFreezesLoop(t *testing.T) {
	states := map[string]obs.ReplicaState{"r2": obs.ReplicaDead}
	var log []Action
	ctrl := New(Config{
		Sources:   Sources{Detector: func() map[string]obs.ReplicaState { return states }},
		Policies:  []Policy{&ReplacementPolicy{}},
		Actuators: map[string]Actuator{ActionReplace: recordActuator(&log)},
	})
	ctrl.SetEnabled(false)
	ck := newClock()
	for i := 0; i < 5; i++ {
		if got := ctrl.Reconcile(context.Background(), ck.tick(time.Second)); got != nil {
			t.Fatalf("disabled controller performed actions: %+v", got)
		}
	}
	if len(log) != 0 {
		t.Fatalf("kill switch leaked %d actions", len(log))
	}
	ctrl.SetEnabled(true)
	ctrl.Reconcile(context.Background(), ck.tick(time.Second))
	if len(log) != 1 {
		t.Fatalf("re-enabled controller took %d actions, want 1", len(log))
	}
}

func TestRateLimitBoundsActionsPerWindow(t *testing.T) {
	// A policy that proposes unboundedly: one action every tick.
	greedy := policyFunc(func(in Inputs) []Action {
		return []Action{{Kind: ActionHedgeTune, Target: "fleet", New: "1ms"}}
	})
	var log []Action
	ctrl := New(Config{
		MaxActionsPerKind: 3,
		RateWindow:        10 * time.Second,
		Policies:          []Policy{greedy},
		Actuators:         map[string]Actuator{ActionHedgeTune: recordActuator(&log)},
	})
	ck := newClock()
	for i := 0; i < 8; i++ {
		ctrl.Reconcile(context.Background(), ck.tick(time.Second))
	}
	// Ticks at 1..8s: 3 performed immediately, then suppressed until the
	// first action slides out of the 10s window.
	if len(log) != 3 {
		t.Fatalf("actions in window = %d, want 3", len(log))
	}
	if ctrl.Suppressed() != 5 {
		t.Errorf("suppressed = %d, want 5", ctrl.Suppressed())
	}
	// Advance past the window: the limiter must admit again.
	ctrl.Reconcile(context.Background(), ck.tick(15*time.Second))
	if len(log) != 4 {
		t.Fatalf("actions after window slide = %d, want 4", len(log))
	}
}

func TestRateLimitDoesNotStarveOtherTargets(t *testing.T) {
	// One target proposes greedily every tick; a second target of the
	// same kind shows up late. The limiter is keyed per (kind, target),
	// so the noisy target's exhausted window must not suppress the
	// newcomer's first repair.
	tick := 0
	mixed := policyFunc(func(in Inputs) []Action {
		tick++
		out := []Action{{Kind: ActionRejuvenate, Target: "replica:r1/proc"}}
		if tick >= 6 {
			out = append(out, Action{Kind: ActionRejuvenate, Target: "replica:r3/proc"})
		}
		return out
	})
	var log []Action
	ctrl := New(Config{
		MaxActionsPerKind: 3,
		RateWindow:        time.Minute,
		Policies:          []Policy{mixed},
		Actuators:         map[string]Actuator{ActionRejuvenate: recordActuator(&log)},
	})
	ck := newClock()
	for i := 0; i < 8; i++ {
		ctrl.Reconcile(context.Background(), ck.tick(time.Second))
	}
	// r1 is capped at 3 inside the minute window; r3's proposals from
	// tick 6 on (3 of them) all land despite r1's window being full.
	byTarget := map[string]int{}
	for _, a := range log {
		byTarget[a.Target]++
	}
	if byTarget["replica:r1/proc"] != 3 {
		t.Errorf("r1 actions = %d, want 3 (rate-limited)", byTarget["replica:r1/proc"])
	}
	if byTarget["replica:r3/proc"] != 3 {
		t.Errorf("r3 actions = %d, want 3 (must not be starved by r1's window)", byTarget["replica:r3/proc"])
	}
}

// policyFunc adapts a function into a Policy.
type policyFunc func(Inputs) []Action

func (policyFunc) Name() string                  { return "func" }
func (f policyFunc) Evaluate(in Inputs) []Action { return f(in) }

// tailHarness drives a TailPolicy against a synthetic signal with live
// hedge/deposit state, applying actions like the real actuators would.
type tailHarness struct {
	policy  *TailPolicy
	hedge   time.Duration
	deposit float64
	p99     time.Duration
	burn    float64
	actions []Action
}

func newTailHarness(objective time.Duration) *tailHarness {
	h := &tailHarness{hedge: 25 * time.Millisecond, deposit: 0.1}
	h.policy = NewTailPolicy(TailPolicyConfig{
		Client:          "fleet",
		Objective:       objective,
		MinHedge:        5 * time.Millisecond,
		MaxHedge:        50 * time.Millisecond,
		HedgeAfter:      func() time.Duration { return h.hedge },
		Deposit:         func() float64 { return h.deposit },
		DepositLow:      0.02,
		DepositBaseline: 0.1,
		SettleTicks:     3,
		CooldownTicks:   5,
	})
	return h
}

func (h *tailHarness) step(t *testing.T) {
	t.Helper()
	in := Inputs{
		P99:      func(string) time.Duration { return h.p99 },
		FastBurn: func(string) float64 { return h.burn },
	}
	for _, a := range h.policy.Evaluate(in) {
		h.actions = append(h.actions, a)
		switch a.Kind {
		case ActionHedgeTune:
			d, err := a.HedgeTarget()
			if err != nil {
				t.Fatalf("bad hedge target %q: %v", a.New, err)
			}
			h.hedge = d
		case ActionDepositTune:
			r, err := a.DepositTarget()
			if err != nil {
				t.Fatalf("bad deposit target %q: %v", a.New, err)
			}
			h.deposit = r
		}
	}
}

func TestTailPolicySettlesOnSteadyDegradedSignal(t *testing.T) {
	h := newTailHarness(20 * time.Millisecond)
	h.p99, h.burn = 45*time.Millisecond, 2.0 // steadily bad

	for i := 0; i < 200; i++ {
		h.step(t)
	}
	if h.hedge != 5*time.Millisecond {
		t.Errorf("hedge settled at %v, want the 5ms floor", h.hedge)
	}
	if h.deposit != 0.02 {
		t.Errorf("deposit settled at %g, want the 0.02 low rate", h.deposit)
	}
	settled := len(h.actions)
	// Settled at the bounds: a steady signal must produce no further
	// actions, ever.
	for i := 0; i < 200; i++ {
		h.step(t)
	}
	if len(h.actions) != settled {
		t.Fatalf("policy kept acting after settling: %d actions grew to %d",
			settled, len(h.actions))
	}
}

func TestTailPolicyRecoversAndSettlesAtBaseline(t *testing.T) {
	h := newTailHarness(20 * time.Millisecond)
	h.p99, h.burn = 45*time.Millisecond, 2.0
	for i := 0; i < 100; i++ {
		h.step(t)
	}
	h.p99, h.burn = 4*time.Millisecond, 0 // comfortably recovered
	for i := 0; i < 200; i++ {
		h.step(t)
	}
	if h.hedge != 50*time.Millisecond {
		t.Errorf("hedge recovered to %v, want the 50ms cap", h.hedge)
	}
	if h.deposit != 0.1 {
		t.Errorf("deposit recovered to %g, want the 0.1 baseline", h.deposit)
	}
	settled := len(h.actions)
	for i := 0; i < 200; i++ {
		h.step(t)
	}
	if len(h.actions) != settled {
		t.Fatalf("policy kept acting at baseline: %d actions grew to %d", settled, len(h.actions))
	}
}

func TestTailPolicyDeadbandHoldsStill(t *testing.T) {
	h := newTailHarness(20 * time.Millisecond)
	// Between objective/2 and objective: acceptable but not comfortable.
	h.p99, h.burn = 15*time.Millisecond, 0.3
	for i := 0; i < 100; i++ {
		h.step(t)
	}
	if len(h.actions) != 0 {
		t.Fatalf("deadband signal produced %d actions, want 0", len(h.actions))
	}
}

func TestTailPolicyHysteresisIgnoresFlappingSignal(t *testing.T) {
	h := newTailHarness(20 * time.Millisecond)
	// A signal that alternates every tick never accumulates SettleTicks
	// of consistent evidence, so the policy must never act.
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			h.p99, h.burn = 45*time.Millisecond, 2.0
		} else {
			h.p99, h.burn = 4*time.Millisecond, 0
		}
		h.step(t)
	}
	if len(h.actions) != 0 {
		t.Fatalf("flapping signal produced %d actions, want 0", len(h.actions))
	}
}

// diagHealth builds a one-executor, one-variant health snapshot.
func diagHealth(executor, variant string, class health.FaultClass, failStreak int, relapses uint64) []health.ExecutorHealth {
	return []health.ExecutorHealth{{
		Executor: executor,
		Variants: []health.VariantHealth{{
			Variant:              variant,
			Class:                class,
			FailStreak:           failStreak,
			RejuvenationRelapses: relapses,
		}},
	}}
}

func TestDiagnosisPolicyEscalationLadder(t *testing.T) {
	cases := []struct {
		name   string
		health []health.ExecutorHealth
		want   string // expected action kind, "" for none
	}{
		{"healthy variant untouched",
			diagHealth("replica:r1", "v", health.ClassHealthy, 0, 0), ""},
		{"heisenbug left to retries",
			diagHealth("replica:r1", "v", health.ClassHeisenbug, 12, 0), ""},
		{"hard failing rejuvenated first",
			diagHealth("replica:r1", "v", health.ClassUnknown, 8, 0), ActionRejuvenate},
		{"aging rejuvenated",
			diagHealth("replica:r1", "v", health.ClassAging, 8, 0), ActionRejuvenate},
		{"fresh bohrbug rejuvenated once",
			diagHealth("replica:r1", "v", health.ClassBohrbug, 10, 0), ActionRejuvenate},
		{"relapsed bohrbug escalated to substitution",
			diagHealth("replica:r1", "v", health.ClassBohrbug, 10, 1), ActionSubstitute},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewDiagnosisPolicy(DiagnosisPolicyConfig{})
			actions := p.Evaluate(Inputs{Health: tc.health})
			switch {
			case tc.want == "" && len(actions) != 0:
				t.Fatalf("actions = %+v, want none", actions)
			case tc.want != "" && (len(actions) != 1 || actions[0].Kind != tc.want):
				t.Fatalf("actions = %+v, want one %s", actions, tc.want)
			}
		})
	}
}

func TestDiagnosisPolicyRejuvenationCooldown(t *testing.T) {
	p := NewDiagnosisPolicy(DiagnosisPolicyConfig{RejuvenateCooldownTicks: 5})
	in := Inputs{Health: diagHealth("replica:r1", "v", health.ClassUnknown, 9, 0)}
	first := p.Evaluate(in)
	if len(first) != 1 {
		t.Fatalf("first tick actions = %+v, want one rejuvenation", first)
	}
	p.Committed(first[0])
	fired := 0
	for i := 0; i < 5; i++ {
		fired += len(p.Evaluate(in))
	}
	if fired != 0 {
		t.Fatalf("rejuvenated %d times inside the cooldown, want 0", fired)
	}
	if got := p.Evaluate(in); len(got) != 1 {
		t.Fatalf("post-cooldown actions = %+v, want the rejuvenation to recur", got)
	}
}

func TestDiagnosisPolicySubstitutionIsTerminal(t *testing.T) {
	p := NewDiagnosisPolicy(DiagnosisPolicyConfig{})
	in := Inputs{Health: diagHealth("replica:r1", "v", health.ClassBohrbug, 10, 2)}
	first := p.Evaluate(in)
	if len(first) != 1 || first[0].Kind != ActionSubstitute {
		t.Fatalf("actions = %+v, want one substitution", first)
	}
	p.Committed(first[0])
	for i := 0; i < 10; i++ {
		if got := p.Evaluate(in); len(got) != 0 {
			t.Fatalf("substituted variant re-proposed: %+v", got)
		}
	}
}

func TestControllerEmitsControlActionEvents(t *testing.T) {
	collector := obs.NewCollector()
	states := map[string]obs.ReplicaState{"r2": obs.ReplicaDead}
	ctrl := New(Config{
		Name:     "ctl",
		Observer: collector,
		Sources:  Sources{Detector: func() map[string]obs.ReplicaState { return states }},
		Policies: []Policy{&ReplacementPolicy{}},
		Actuators: map[string]Actuator{ActionReplace: func(_ context.Context, a Action) (Action, error) {
			a.New = "r4"
			return a, nil
		}},
	})
	ctrl.Reconcile(context.Background(), time.Unix(1000, 0))
	var found *obs.ExecutorSnapshot
	for _, snap := range collector.Snapshot() {
		if snap.Executor == "ctl" {
			s := snap
			found = &s
		}
	}
	if found == nil || found.ControlActions != 1 {
		t.Fatalf("collector snapshot = %+v, want ControlActions=1 under executor ctl", found)
	}
	if got := ctrl.Counts()[ActionReplace]; got != 1 {
		t.Errorf("Counts()[replace] = %d, want 1", got)
	}
}

func TestControllerRunsSupervisedAndStops(t *testing.T) {
	fired := make(chan struct{}, 1)
	ctrl := New(Config{
		Tick: time.Millisecond,
		Policies: []Policy{policyFunc(func(Inputs) []Action {
			select {
			case fired <- struct{}{}:
			default:
			}
			return nil
		})},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ctrl.Run(ctx) }()
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("controller never ticked")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want nil on cancellation", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancellation")
	}
	if ctrl.AsChild().Name != "controller" {
		t.Errorf("AsChild name = %q, want controller", ctrl.AsChild().Name)
	}
}

func TestActionValueRoundTrips(t *testing.T) {
	a := Action{New: "12ms"}
	if d, err := a.HedgeTarget(); err != nil || d != 12*time.Millisecond {
		t.Errorf("HedgeTarget = %v, %v", d, err)
	}
	b := Action{New: fmt.Sprintf("%g", 0.05)}
	if r, err := b.DepositTarget(); err != nil || r != 0.05 {
		t.Errorf("DepositTarget = %v, %v", r, err)
	}
}

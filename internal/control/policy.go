package control

// The built-in policies: one per actuation family named in the
// roadmap. Replacement turns a detector conviction into a spawned
// replacement replica; tail tuning turns measured p99 and error-budget
// burn into hedge-delay and retry-deposit changes (with hysteresis so
// the loop cannot flap); diagnosis routing turns the health engine's
// fault classes into the recovery the class actually responds to —
// substitution for bohrbugs (retries are futile against a
// deterministic bug), rejuvenation for aging and hard-failing
// variants, and deliberately nothing for heisenbugs, whose
// environment-dependent failures the existing retry/hedge machinery
// already masks.

import (
	"fmt"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/obs/health"
)

// ReplacementPolicy proposes ActionReplace for every replica the
// detector has convicted dead, once per conviction. The cause names
// the evidence track that convicted — heartbeat silence or accumulated
// accusations — so the action record shows *why* the replica died, not
// just that it did.
type ReplacementPolicy struct {
	// DeadAfter and AccuseDeadAfter mirror the detector's conviction
	// thresholds, used only to attribute the evidence track; zero values
	// attribute on whichever count is larger.
	DeadAfter, AccuseDeadAfter int

	replaced map[string]bool
}

// Name implements Policy.
func (p *ReplacementPolicy) Name() string { return "replacement" }

// Evaluate implements Policy.
func (p *ReplacementPolicy) Evaluate(in Inputs) []Action {
	var out []Action
	for name, state := range in.Detector {
		if state != obs.ReplicaDead || p.replaced[name] {
			continue
		}
		cause := "detector:dead"
		if in.Evidence != nil {
			misses, accusations, _ := in.Evidence(name)
			switch {
			case p.DeadAfter > 0 && misses >= p.DeadAfter:
				cause = "detector:dead:heartbeat"
			case p.AccuseDeadAfter > 0 && accusations >= p.AccuseDeadAfter:
				cause = "detector:dead:accusation"
			case accusations > misses:
				cause = "detector:dead:accusation"
			default:
				cause = "detector:dead:heartbeat"
			}
		}
		out = append(out, Action{
			Kind:   ActionReplace,
			Cause:  cause,
			Target: name,
			Old:    name,
		})
	}
	return out
}

// Committed implements Committer: a dead replica is only marked
// handled once its replacement actually spliced in, so a failed or
// rate-limited attempt recurs next tick.
func (p *ReplacementPolicy) Committed(a Action) {
	if a.Kind != ActionReplace {
		return
	}
	if p.replaced == nil {
		p.replaced = make(map[string]bool)
	}
	p.replaced[a.Target] = true
}

// TailPolicyConfig parameterizes a TailPolicy.
type TailPolicyConfig struct {
	// Client is the executor (the Remote fleet client) whose tail the
	// policy manages; its P99 and FastBurn feed the regime decision.
	Client string
	// Objective is the latency the p99 is held against (the SLO
	// objective's latency bound).
	Objective time.Duration
	// BurnThreshold is the fast-window burn rate above which the error
	// budget counts as burning. Default 1 (burning at exactly the rate
	// that exhausts the budget).
	BurnThreshold float64
	// MinHedge and MaxHedge bound the hedge delay the policy may set.
	// Defaults: Objective/8 and 4*Objective.
	MinHedge, MaxHedge time.Duration
	// HedgeAfter reads the live hedge delay (Remote.HedgeAfter).
	HedgeAfter func() time.Duration
	// Deposit reads the live retry-budget deposit rate.
	Deposit func() float64
	// DepositLow and DepositBaseline are the deposit rates under burn
	// and in calm. Defaults 0.02 and 0.1.
	DepositLow, DepositBaseline float64
	// SettleTicks is how many consecutive ticks of one regime's
	// evidence are required before acting — the hysteresis that keeps a
	// noisy signal from flapping the knobs. Default 3.
	SettleTicks int
	// CooldownTicks is how many ticks after an action the policy stays
	// quiet, letting the change take effect before re-measuring.
	// Default 5.
	CooldownTicks int
}

func (c TailPolicyConfig) withDefaults() TailPolicyConfig {
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 1
	}
	if c.MinHedge <= 0 {
		c.MinHedge = c.Objective / 8
	}
	if c.MaxHedge <= 0 {
		c.MaxHedge = 4 * c.Objective
	}
	if c.DepositLow <= 0 {
		c.DepositLow = 0.02
	}
	if c.DepositBaseline <= 0 {
		c.DepositBaseline = 0.1
	}
	if c.SettleTicks <= 0 {
		c.SettleTicks = 3
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 5
	}
	return c
}

// TailPolicy adapts the hedge delay and the retry-budget deposit rate
// to the measured tail: when the p99 exceeds the objective or the fast
// burn window says the error budget is burning, it halves the hedge
// delay (hedging sooner cuts the tail) and drops the deposit rate
// (retries amplify load exactly when the fleet is unhealthy); when the
// tail has comfortably recovered, it walks both back toward baseline.
//
// Three mechanisms make the loop settle instead of flap: a deadband
// (recovery requires p99 below half the objective, not merely below
// it), a settle count (SettleTicks consecutive ticks of one regime's
// evidence before acting), and a cooldown (CooldownTicks of silence
// after every action). On any steady signal the policy therefore
// reaches a bound — floor, cap, or the deadband's do-nothing middle —
// and stops emitting actions.
type TailPolicy struct {
	cfg TailPolicyConfig

	degradeTicks, recoverTicks int
	cooldown                   int
}

// NewTailPolicy builds a tail policy.
func NewTailPolicy(cfg TailPolicyConfig) *TailPolicy {
	return &TailPolicy{cfg: cfg.withDefaults()}
}

// Name implements Policy.
func (p *TailPolicy) Name() string { return "tail" }

// Evaluate implements Policy.
func (p *TailPolicy) Evaluate(in Inputs) []Action {
	if p.cooldown > 0 {
		p.cooldown--
		return nil
	}
	var p99 time.Duration
	if in.P99 != nil {
		p99 = in.P99(p.cfg.Client)
	}
	var burn float64
	if in.FastBurn != nil {
		burn = in.FastBurn(p.cfg.Client)
	}
	if p99 == 0 {
		// No latency signal yet (warmup): no evidence either way.
		p.degradeTicks, p.recoverTicks = 0, 0
		return nil
	}
	switch {
	case p99 > p.cfg.Objective || burn >= p.cfg.BurnThreshold:
		p.degradeTicks++
		p.recoverTicks = 0
	case p99 <= p.cfg.Objective/2 && burn < p.cfg.BurnThreshold/2:
		p.recoverTicks++
		p.degradeTicks = 0
	default:
		// The deadband: tail is acceptable but not comfortably so.
		// Holding still here is what prevents oscillation around the
		// objective.
		p.degradeTicks, p.recoverTicks = 0, 0
		return nil
	}

	var out []Action
	cause := fmt.Sprintf("slo:p99=%s/objective=%s,burn=%.2f", p99.Round(time.Microsecond), p.cfg.Objective, burn)
	switch {
	case p.degradeTicks >= p.cfg.SettleTicks:
		if cur := p.cfg.HedgeAfter(); cur > p.cfg.MinHedge {
			next := cur / 2
			if next < p.cfg.MinHedge {
				next = p.cfg.MinHedge
			}
			out = append(out, Action{
				Kind: ActionHedgeTune, Cause: cause, Target: p.cfg.Client,
				Old: cur.String(), New: next.String(),
			})
		}
		if p.cfg.Deposit != nil && burn >= p.cfg.BurnThreshold {
			if cur := p.cfg.Deposit(); cur > p.cfg.DepositLow {
				out = append(out, Action{
					Kind: ActionDepositTune, Cause: cause, Target: p.cfg.Client,
					Old: fmt.Sprintf("%g", cur), New: fmt.Sprintf("%g", p.cfg.DepositLow),
				})
			}
		}
		p.degradeTicks = 0
	case p.recoverTicks >= p.cfg.SettleTicks:
		if cur := p.cfg.HedgeAfter(); cur < p.cfg.MaxHedge && cur > 0 {
			next := cur * 2
			if next > p.cfg.MaxHedge {
				next = p.cfg.MaxHedge
			}
			out = append(out, Action{
				Kind: ActionHedgeTune, Cause: cause, Target: p.cfg.Client,
				Old: cur.String(), New: next.String(),
			})
		}
		if p.cfg.Deposit != nil {
			if cur := p.cfg.Deposit(); cur < p.cfg.DepositBaseline {
				out = append(out, Action{
					Kind: ActionDepositTune, Cause: cause, Target: p.cfg.Client,
					Old: fmt.Sprintf("%g", cur), New: fmt.Sprintf("%g", p.cfg.DepositBaseline),
				})
			}
		}
		p.recoverTicks = 0
	default:
		return nil
	}
	if len(out) > 0 {
		p.cooldown = p.cfg.CooldownTicks
	}
	return out
}

// HedgeTarget parses the New value of a hedge-tune action back into a
// duration — the actuator applies it with Remote.SetHedgeAfter.
func (a Action) HedgeTarget() (time.Duration, error) {
	return time.ParseDuration(a.New)
}

// DepositTarget parses the New value of a deposit-tune action back
// into a rate — the actuator applies it with SetDepositPerRequest.
func (a Action) DepositTarget() (float64, error) {
	var rate float64
	_, err := fmt.Sscanf(a.New, "%g", &rate)
	return rate, err
}

// DiagnosisPolicyConfig parameterizes a DiagnosisPolicy.
type DiagnosisPolicyConfig struct {
	// FailStreakThreshold is the consecutive-failure run that marks a
	// variant failing hard enough to act on. Default 8 (the health
	// engine's own deterministic-streak default).
	FailStreakThreshold int
	// RelapseLimit is how many post-rejuvenation relapses prove a
	// restart futile, escalating a bohrbug-diagnosed variant to service
	// substitution. Default 1.
	RelapseLimit int
	// RejuvenateCooldownTicks spaces repeated rejuvenations of the same
	// target — a restart needs time to show whether it cured anything.
	// Default 10.
	RejuvenateCooldownTicks int
	// Executors, when non-empty, restricts the policy to these health
	// executors (e.g. the "replica:<name>" streams); empty means all.
	Executors []string
}

func (c DiagnosisPolicyConfig) withDefaults() DiagnosisPolicyConfig {
	if c.FailStreakThreshold <= 0 {
		c.FailStreakThreshold = 8
	}
	if c.RelapseLimit <= 0 {
		c.RelapseLimit = 1
	}
	if c.RejuvenateCooldownTicks <= 0 {
		c.RejuvenateCooldownTicks = 10
	}
	return c
}

// DiagnosisPolicy routes each diagnosed fault class to the recovery
// that actually helps it, resolving the paper's Table 1 at runtime:
//
//   - A variant failing hard (FailStreak at the threshold) is
//     rejuvenated first — the cheapest repair, and the only way to
//     *earn* an aging diagnosis (the health engine confirms aging by
//     observing that rejuvenation cures the failure run).
//   - A bohrbug-diagnosed variant that has relapsed after rejuvenation
//     RelapseLimit times is escalated to service substitution: the bug
//     is deterministic in the code, so a fresh environment cannot help
//     and retries are futile.
//   - A heisenbug-diagnosed variant gets no action: its failures are
//     environment-dependent and intermittent, which is exactly what
//     the existing retry/hedge machinery masks best.
type DiagnosisPolicy struct {
	cfg DiagnosisPolicyConfig

	substituted map[string]bool
	rejuvWait   map[string]int
}

// NewDiagnosisPolicy builds a diagnosis policy.
func NewDiagnosisPolicy(cfg DiagnosisPolicyConfig) *DiagnosisPolicy {
	return &DiagnosisPolicy{
		cfg:         cfg.withDefaults(),
		substituted: make(map[string]bool),
		rejuvWait:   make(map[string]int),
	}
}

// Name implements Policy.
func (p *DiagnosisPolicy) Name() string { return "diagnosis" }

func (p *DiagnosisPolicy) watches(executor string) bool {
	if len(p.cfg.Executors) == 0 {
		return true
	}
	for _, e := range p.cfg.Executors {
		if e == executor {
			return true
		}
	}
	return false
}

// Evaluate implements Policy.
func (p *DiagnosisPolicy) Evaluate(in Inputs) []Action {
	// The cooldown counts down *after* the eligibility checks below, so
	// a target committed with N cooldown ticks stays quiet for exactly N
	// evaluations.
	defer func() {
		for t, left := range p.rejuvWait {
			if left <= 1 {
				delete(p.rejuvWait, t)
			} else {
				p.rejuvWait[t] = left - 1
			}
		}
	}()
	var out []Action
	for _, eh := range in.Health {
		if !p.watches(eh.Executor) {
			continue
		}
		for _, v := range eh.Variants {
			target := eh.Executor + "/" + v.Variant
			if p.substituted[target] {
				continue
			}
			if v.Class == health.ClassBohrbug && v.RejuvenationRelapses >= uint64(p.cfg.RelapseLimit) {
				out = append(out, Action{
					Kind:   ActionSubstitute,
					Cause:  fmt.Sprintf("diagnosis:bohrbug:relapses=%d", v.RejuvenationRelapses),
					Target: target,
					Old:    v.Variant,
				})
				continue
			}
			if v.Class == health.ClassHeisenbug {
				continue // retries and hedges already own this class
			}
			if v.FailStreak >= p.cfg.FailStreakThreshold && p.rejuvWait[target] == 0 {
				cause := fmt.Sprintf("diagnosis:%s:fail-streak=%d", v.Class, v.FailStreak)
				out = append(out, Action{
					Kind:   ActionRejuvenate,
					Cause:  cause,
					Target: target,
					Old:    fmt.Sprintf("fail-streak=%d", v.FailStreak),
					New:    "rejuvenated",
				})
			}
		}
	}
	return out
}

// Committed implements Committer.
func (p *DiagnosisPolicy) Committed(a Action) {
	switch a.Kind {
	case ActionSubstitute:
		p.substituted[a.Target] = true
	case ActionRejuvenate:
		p.rejuvWait[a.Target] = p.cfg.RejuvenateCooldownTicks
	}
}

package control

// GrayFailurePolicy closes the control loop over the third evidence
// track: a replica the latency ejector keeps reporting slow — gray,
// limping, but heartbeating and truthful — is routed to rejuvenation
// through the same actuators the diagnosis policy uses. Ejection alone
// only *contains* a gray replica (traffic routes around it, probes
// watch for recovery); this policy is what *repairs* it, per the
// runtime-profiling self-healing literature: the latency profile is
// the diagnosis, a micro-reboot is the cure.

import "fmt"

// GrayFailurePolicyConfig parameterizes a GrayFailurePolicy.
type GrayFailurePolicyConfig struct {
	// SlownessThreshold is the accumulated slowness evidence at which a
	// replica counts as persistently limping. Below it the policy sees
	// no evidence at all — this is the deadband: a replica hovering
	// under the threshold resets its settle count rather than slowly
	// accruing toward an action. Default 3 (the detector's own
	// SlowSuspectAfter default).
	SlownessThreshold int
	// SettleTicks is how many consecutive ticks the evidence must
	// persist before acting — one ejection during a latency blip must
	// not trigger a reboot. Default 3.
	SettleTicks int
	// CooldownTicks is how many ticks a rejuvenated target is left
	// alone, letting the restart (and the ejector's probes) show
	// whether it cured the limp. Default 10.
	CooldownTicks int
	// Target maps a limping replica name to the rejuvenation target the
	// actuator understands (e.g. its supervised process name). Nil uses
	// the replica name itself.
	Target func(replica string) string
}

func (c GrayFailurePolicyConfig) withDefaults() GrayFailurePolicyConfig {
	if c.SlownessThreshold <= 0 {
		c.SlownessThreshold = 3
	}
	if c.SettleTicks <= 0 {
		c.SettleTicks = 3
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 10
	}
	return c
}

// GrayFailurePolicy proposes rejuvenation for replicas with persistent
// slowness evidence. It carries the same anti-flap machinery as
// TailPolicy — deadband (the slowness threshold), settle count, and
// per-target cooldown — so a noisy tail cannot flap reboots.
type GrayFailurePolicy struct {
	cfg GrayFailurePolicyConfig

	settle   map[string]int
	cooldown map[string]int
}

// NewGrayFailurePolicy builds a gray-failure policy.
func NewGrayFailurePolicy(cfg GrayFailurePolicyConfig) *GrayFailurePolicy {
	return &GrayFailurePolicy{
		cfg:      cfg.withDefaults(),
		settle:   make(map[string]int),
		cooldown: make(map[string]int),
	}
}

// Name implements Policy.
func (p *GrayFailurePolicy) Name() string { return "gray-failure" }

// target maps a replica to its rejuvenation target.
func (p *GrayFailurePolicy) target(replica string) string {
	if p.cfg.Target != nil {
		return p.cfg.Target(replica)
	}
	return replica
}

// Evaluate implements Policy: for every replica in the detector
// membership, slowness evidence at or above the threshold for
// SettleTicks consecutive ticks proposes one rejuvenation, followed by
// a per-target cooldown.
func (p *GrayFailurePolicy) Evaluate(in Inputs) []Action {
	if in.Evidence == nil {
		return nil
	}
	var out []Action
	for name := range in.Detector {
		if p.cooldown[name] > 0 {
			p.cooldown[name]--
			continue
		}
		_, _, slowness := in.Evidence(name)
		if slowness < p.cfg.SlownessThreshold {
			p.settle[name] = 0
			continue
		}
		p.settle[name]++
		if p.settle[name] < p.cfg.SettleTicks {
			continue
		}
		out = append(out, Action{
			Kind:   ActionRejuvenate,
			Cause:  fmt.Sprintf("gray:slowness=%d", slowness),
			Target: p.target(name),
			Old:    "limping",
			New:    "rejuvenated",
		})
		p.settle[name] = 0
	}
	return out
}

// Committed implements Committer: only a rejuvenation that actually
// ran starts the target's cooldown — a failed or rate-limited attempt
// recurs next tick.
func (p *GrayFailurePolicy) Committed(a Action) {
	if a.Kind != ActionRejuvenate {
		return
	}
	for name := range p.settle {
		if p.target(name) == a.Target {
			p.cooldown[name] = p.cfg.CooldownTicks
		}
	}
}

package obs

// Quorum events extend the observation layer with the Byzantine-voting
// vocabulary (internal/dist's Quorum client): a quorum of remote
// replicas agreeing on an answer, a fleet whose successful replies
// disagreed, and the individual replicas whose answers were outvoted.
//
// Like the distribution events (dist.go), the quorum events are an
// *optional* extension of Observer so existing observers keep compiling
// unchanged: an observer that wants them additionally implements
// QuorumObserver, and emitters route events through the Emit* helpers,
// which type-assert and fan out through combined observers. The
// built-in Collector implements the extension: quorum verdicts,
// disagreements, and outvoted replies are counted per client, and each
// outvoted reply is additionally counted as a failure of its endpoint
// so per-endpoint dashboards show *which* replica keeps losing votes.
//
// The outvoted counter is the value-fault analogue of the detector's
// suspect counter: a replica that answers promptly but wrongly never
// misses a heartbeat, so only vote disagreement produces evidence
// against it (the paper's malicious-fault column of Table 1).

// QuorumObserver is the optional Observer extension receiving
// distributed-voting events. Observers implement it in addition to
// Observer; emitters must route events through the Emit* helpers so
// combined observers (Combine) fan the events out to every member that
// implements the extension.
type QuorumObserver interface {
	// QuorumReached reports that the client's adjudicator reached a
	// verdict: votes replies agreed on the winning answer, out of
	// replies settled answers from a fleet of replicas endpoints.
	// A verdict reached before every replica answered (replies <
	// replicas) means the stragglers were canceled.
	QuorumReached(client string, req uint64, votes, replies, replicas int)
	// VoteDisagreement reports that the settled successful replies of
	// one request were not unanimous: answers distinct answers were
	// observed (answers >= 2). Emitted at most once per request,
	// whether or not a quorum was still reached.
	VoteDisagreement(client string, req uint64, answers int)
	// ReplicaOutvoted reports that endpoint returned a successful but
	// losing answer on a request the quorum decided differently — the
	// per-replica evidence a lying replica accumulates.
	ReplicaOutvoted(client, endpoint string, req uint64)
}

// EmitQuorumReached delivers a quorum verdict event to o if it (or any
// member of a combined observer) implements QuorumObserver. Nil
// observers are ignored.
func EmitQuorumReached(o Observer, client string, req uint64, votes, replies, replicas int) {
	if q, ok := o.(QuorumObserver); ok {
		q.QuorumReached(client, req, votes, replies, replicas)
	}
}

// EmitVoteDisagreement delivers a disagreement event to o if it
// implements QuorumObserver. Nil observers are ignored.
func EmitVoteDisagreement(o Observer, client string, req uint64, answers int) {
	if q, ok := o.(QuorumObserver); ok {
		q.VoteDisagreement(client, req, answers)
	}
}

// EmitReplicaOutvoted delivers an outvoted-replica event to o if it
// implements QuorumObserver. Nil observers are ignored.
func EmitReplicaOutvoted(o Observer, client, endpoint string, req uint64) {
	if q, ok := o.(QuorumObserver); ok {
		q.ReplicaOutvoted(client, endpoint, req)
	}
}

// QuorumReached implements QuorumObserver for Nop.
func (Nop) QuorumReached(string, uint64, int, int, int) {}

// VoteDisagreement implements QuorumObserver for Nop.
func (Nop) VoteDisagreement(string, uint64, int) {}

// ReplicaOutvoted implements QuorumObserver for Nop.
func (Nop) ReplicaOutvoted(string, string, uint64) {}

var _ QuorumObserver = Nop{}

// QuorumReached implements QuorumObserver: the event reaches every
// member that implements the extension.
func (m multi) QuorumReached(client string, req uint64, votes, replies, replicas int) {
	for _, o := range m {
		if q, ok := o.(QuorumObserver); ok {
			q.QuorumReached(client, req, votes, replies, replicas)
		}
	}
}

// VoteDisagreement implements QuorumObserver.
func (m multi) VoteDisagreement(client string, req uint64, answers int) {
	for _, o := range m {
		if q, ok := o.(QuorumObserver); ok {
			q.VoteDisagreement(client, req, answers)
		}
	}
}

// ReplicaOutvoted implements QuorumObserver.
func (m multi) ReplicaOutvoted(client, endpoint string, req uint64) {
	for _, o := range m {
		if q, ok := o.(QuorumObserver); ok {
			q.ReplicaOutvoted(client, endpoint, req)
		}
	}
}

var _ QuorumObserver = multi(nil)

// QuorumReached implements QuorumObserver for the Collector.
func (c *Collector) QuorumReached(client string, _ uint64, _, _, _ int) {
	c.exec(client).quorums.Add(1)
}

// VoteDisagreement implements QuorumObserver.
func (c *Collector) VoteDisagreement(client string, _ uint64, _ int) {
	c.exec(client).voteDisagreements.Add(1)
}

// ReplicaOutvoted implements QuorumObserver: besides the per-client
// counter, the losing reply counts as a failure of its endpoint — a
// vote loss is a value fault of that replica, even though the RPC
// round trip itself succeeded.
func (c *Collector) ReplicaOutvoted(client, endpoint string, _ uint64) {
	e := c.exec(client)
	e.outvoted.Add(1)
	e.variant(endpoint).failures.Add(1)
}

var _ QuorumObserver = (*Collector)(nil)

// QuorumReached implements QuorumObserver for the TraceRecorder. The
// verdict is already visible as the request outcome; the per-request
// events worth keeping in the ring are the disagreements.
func (t *TraceRecorder) QuorumReached(string, uint64, int, int, int) {}

// VoteDisagreement implements QuorumObserver.
func (t *TraceRecorder) VoteDisagreement(_ string, req uint64, _ int) {
	t.event(req, "vote-disagreement", "")
}

// ReplicaOutvoted implements QuorumObserver.
func (t *TraceRecorder) ReplicaOutvoted(_, endpoint string, req uint64) {
	t.event(req, "outvoted", endpoint)
}

var _ QuorumObserver = (*TraceRecorder)(nil)

package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofExtras returns the net/http/pprof endpoints packaged as Handler
// extras, so a faultsim fleet (or any process mounting the observation
// handler) can be profiled live. They are opt-in — profiling endpoints
// expose internals and cost CPU when scraped — which is why Handler does
// not mount them by default; cmd/faultsim gates them behind -pprof.
func PprofExtras() []Extra {
	return []Extra{
		{Path: "/debug/pprof/", Handler: http.HandlerFunc(pprof.Index)},
		{Path: "/debug/pprof/cmdline", Handler: http.HandlerFunc(pprof.Cmdline)},
		{Path: "/debug/pprof/profile", Handler: http.HandlerFunc(pprof.Profile)},
		{Path: "/debug/pprof/symbol", Handler: http.HandlerFunc(pprof.Symbol)},
		{Path: "/debug/pprof/trace", Handler: http.HandlerFunc(pprof.Trace)},
	}
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// VariantSpan is the record of one variant execution inside a Trace.
type VariantSpan struct {
	Variant string        `json:"variant"`
	Latency time.Duration `json:"latency_ns"`
	Err     string        `json:"err,omitempty"`
}

// TraceEvent is a recovery action recorded inside a Trace: a component
// disablement, a retry, or a rollback/compensation.
type TraceEvent struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// AttemptSpan is the client-side record of one RPC attempt of a hedged
// remote call: the endpoint it was sent to, the span stamped onto its
// envelope (which the replica server's span names as its parent), its
// 1-based launch order, and how it ended. Won marks the attempt whose
// result the client returned; Cancelled marks attempts still in flight
// when the winner cancelled them.
type AttemptSpan struct {
	Endpoint  string        `json:"endpoint"`
	SpanID    uint64        `json:"span_id,omitempty"`
	Attempt   int           `json:"attempt"`
	Latency   time.Duration `json:"latency_ns"`
	Err       string        `json:"err,omitempty"`
	Won       bool          `json:"won,omitempty"`
	Cancelled bool          `json:"cancelled,omitempty"`
}

// Trace is the recorded history of one request through an executor.
type Trace struct {
	ID       uint64    `json:"id"`
	Executor string    `json:"executor"`
	Start    time.Time `json:"start"`
	// Latency is the executor's total request latency.
	Latency time.Duration `json:"latency_ns"`
	Outcome string        `json:"outcome"`
	// Accepted reports whether the executor delivered a result;
	// FailureDetected whether any variant failure was observed. Both
	// mirror the Adjudicated callback.
	Accepted        bool          `json:"accepted"`
	FailureDetected bool          `json:"failure_detected"`
	Variants        []VariantSpan `json:"variants,omitempty"`
	Events          []TraceEvent  `json:"events,omitempty"`
	// TraceID/SpanID/ParentSpanID place this request in a causal
	// distributed trace (zero when the request was not traced): SpanID is
	// this request's span, ParentSpanID its causal parent — possibly in
	// another process, linked via an RPC envelope's attempt span.
	TraceID      uint64 `json:"trace_id,omitempty"`
	SpanID       uint64 `json:"span_id,omitempty"`
	ParentSpanID uint64 `json:"parent_span_id,omitempty"`
	// Attempts is the hedge lineage of a remote-call client request: one
	// record per RPC attempt, including losers and cancelled hedges.
	Attempts []AttemptSpan `json:"attempts,omitempty"`
}

// TraceRecorder is an Observer that keeps the last N completed request
// traces in a ring buffer. Traces under construction live in an in-flight
// table keyed by request ID and move into the ring at RequestEnd, so
// concurrent requests on the same executor never interleave.
//
// Recording traces allocates (spans are materialized per request); attach
// a TraceRecorder when insight is worth that cost, and rely on Collector
// alone when it is not.
type TraceRecorder struct {
	mu       sync.Mutex
	capacity int
	inflight map[uint64]*Trace
	ring     []*Trace // completed traces, ring[next-1] most recent
	next     int
	total    uint64
}

var _ Observer = (*TraceRecorder)(nil)

// NewTraceRecorder returns a recorder keeping the last n completed
// traces; n < 1 is treated as 1.
func NewTraceRecorder(n int) *TraceRecorder {
	if n < 1 {
		n = 1
	}
	return &TraceRecorder{
		capacity: n,
		inflight: make(map[uint64]*Trace),
		ring:     make([]*Trace, 0, n),
	}
}

// RequestStart implements Observer.
func (t *TraceRecorder) RequestStart(executor string, req uint64) {
	tr := &Trace{ID: req, Executor: executor, Start: time.Now()}
	t.mu.Lock()
	t.inflight[req] = tr
	t.mu.Unlock()
}

// RequestEnd implements Observer: it finalizes the trace and commits it
// to the ring.
func (t *TraceRecorder) RequestEnd(_ string, req uint64, latency time.Duration, outcome Outcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.inflight[req]
	if !ok {
		return
	}
	delete(t.inflight, req)
	tr.Latency = latency
	tr.Outcome = outcome.String()
	t.total++
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, tr)
		t.next = len(t.ring) % t.capacity
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % t.capacity
}

// VariantStart implements Observer. Span timing is taken from VariantEnd;
// the start event needs no bookkeeping here.
func (t *TraceRecorder) VariantStart(string, string, uint64) {}

// VariantEnd implements Observer.
func (t *TraceRecorder) VariantEnd(_, variant string, req uint64, latency time.Duration, err error) {
	span := VariantSpan{Variant: variant, Latency: latency}
	if err != nil {
		span.Err = err.Error()
	}
	t.mu.Lock()
	if tr, ok := t.inflight[req]; ok {
		tr.Variants = append(tr.Variants, span)
	}
	t.mu.Unlock()
}

// Adjudicated implements Observer.
func (t *TraceRecorder) Adjudicated(_ string, req uint64, accepted, failureDetected bool) {
	t.mu.Lock()
	if tr, ok := t.inflight[req]; ok {
		tr.Accepted = accepted
		tr.FailureDetected = failureDetected
	}
	t.mu.Unlock()
}

// event appends a recovery action to the in-flight trace of req.
func (t *TraceRecorder) event(req uint64, kind, detail string) {
	t.mu.Lock()
	if tr, ok := t.inflight[req]; ok {
		tr.Events = append(tr.Events, TraceEvent{Kind: kind, Detail: detail})
	}
	t.mu.Unlock()
}

// RequestTraced implements TraceObserver: it binds the in-flight trace
// to its span in the causal trace.
func (t *TraceRecorder) RequestTraced(_ string, req uint64, tc TraceContext) {
	t.mu.Lock()
	if tr, ok := t.inflight[req]; ok {
		tr.TraceID, tr.SpanID, tr.ParentSpanID = tc.TraceID, tc.SpanID, tc.ParentID
	}
	t.mu.Unlock()
}

// RPCAttempted implements TraceObserver: the hedge lineage of a remote
// call accumulates on the client's in-flight trace.
func (t *TraceRecorder) RPCAttempted(_ string, req uint64, a RPCAttempt) {
	span := AttemptSpan{
		Endpoint:  a.Endpoint,
		SpanID:    a.Span.SpanID,
		Attempt:   a.Attempt,
		Latency:   a.Latency,
		Won:       a.Won,
		Cancelled: a.Cancelled,
	}
	if a.Err != nil {
		span.Err = a.Err.Error()
	}
	t.mu.Lock()
	if tr, ok := t.inflight[req]; ok {
		tr.Attempts = append(tr.Attempts, span)
	}
	t.mu.Unlock()
}

var _ TraceObserver = (*TraceRecorder)(nil)

// ComponentDisabled implements Observer.
func (t *TraceRecorder) ComponentDisabled(_, component string, req uint64) {
	t.event(req, "component-disabled", component)
}

// RetryAttempt implements Observer.
func (t *TraceRecorder) RetryAttempt(_, variant string, req uint64, _ int) {
	t.event(req, "retry", variant)
}

// Rollback implements Observer.
func (t *TraceRecorder) Rollback(_ string, req uint64) {
	t.event(req, "rollback", "")
}

// Total returns how many traces have completed since the recorder was
// created (including those already evicted from the ring).
func (t *TraceRecorder) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the completed traces, most recent first.
func (t *TraceRecorder) Snapshot() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		// Walk backwards from the most recently written slot.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		out = append(out, *t.ring[idx])
	}
	return out
}

// WriteJSON writes the completed traces (most recent first) as a JSON
// array.
func (t *TraceRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}

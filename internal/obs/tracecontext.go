package obs

// Causal trace propagation. A TraceContext is the (trace, span, parent)
// triple that stitches one logical request together across executors,
// hedged RPC attempts, and process boundaries: every executor that
// records traces opens a child span of whatever context it inherits, the
// dist client stamps a fresh child span onto each RPC attempt's
// envelope, and the replica server continues the trace on its side — so
// a hedged remote call that used to appear as disconnected spans in two
// processes becomes one causal tree that cmd/obsreport can assemble
// offline from the per-process trace exports.
//
// Span identifiers come from a seeded splitmix64 stream (SeedTraceIDs)
// so a deterministic simulation replayed with the same seed produces the
// same identifiers — the same discipline as internal/xrand, which seeds
// the stream.

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

// TraceContext identifies one span within one distributed trace.
// TraceID is shared by every span of the request; SpanID is unique to
// this span; ParentID is the SpanID of the causal parent (zero for a
// root span). The zero TraceContext means "untraced".
type TraceContext struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_span_id,omitempty"`
}

// Valid reports whether the context identifies a live trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 && tc.SpanID != 0 }

// Child derives a new span under tc within the same trace.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: nextTraceID(), ParentID: tc.SpanID}
}

// NewTraceContext opens a fresh root trace.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: nextTraceID(), SpanID: nextTraceID()}
}

// ContinueTrace opens the server-side span of a trace that arrived over
// the wire: traceID names the trace and parentSpan the client attempt
// span that carried it. A zero traceID (an untraced client) starts a
// fresh root trace instead.
func ContinueTrace(traceID, parentSpan uint64) TraceContext {
	if traceID == 0 {
		return NewTraceContext()
	}
	return TraceContext{TraceID: traceID, SpanID: nextTraceID(), ParentID: parentSpan}
}

// traceIDState is the process-wide span-identifier stream: a splitmix64
// counter whose base offset is derived from the seed, so identifiers are
// reproducible under a fixed seed and call order.
var traceIDState atomic.Uint64

// SeedTraceIDs re-seeds the span-identifier stream. Deterministic
// simulations (faultsim, experiments) call it with their run seed so a
// replay produces the same trace and span identifiers.
func SeedTraceIDs(seed uint64) {
	traceIDState.Store(xrand.New(seed).Uint64())
}

// nextTraceID returns the next identifier of the stream: a golden-ratio
// stride through the counter finished by the splitmix64 mixer. Never
// zero — zero is the "untraced" sentinel.
func nextTraceID() uint64 {
	x := traceIDState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// traceCtxKey keys the TraceContext in a context.Context.
type traceCtxKey struct{}

// WithTraceContext returns ctx carrying tc.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context carried by ctx, if any.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// StartTrace opens the span of one observed request: a child of the
// span already carried by ctx, or a fresh root trace. The returned
// context carries the new span for nested executors and RPC clients to
// continue.
func StartTrace(ctx context.Context) (context.Context, TraceContext) {
	tc, ok := TraceContextFrom(ctx)
	if ok {
		tc = tc.Child()
	} else {
		tc = NewTraceContext()
	}
	return WithTraceContext(ctx, tc), tc
}

// RPCAttempt is the client-side lineage record of one RPC attempt of a
// hedged remote call: which endpoint it went to, the span stamped onto
// its envelope (the server-side span's parent), its 1-based launch
// order, and how it ended — won (its result was returned), completed
// but lost (Err or a slower success), or cancelled while still in
// flight because another attempt won.
type RPCAttempt struct {
	Endpoint  string
	Span      TraceContext
	Attempt   int
	Latency   time.Duration
	Err       error
	Won       bool
	Cancelled bool
}

// TraceObserver is the optional Observer extension receiving causal-
// trace events. Observers implement it in addition to Observer; emitters
// route events through the Emit* helpers so combined observers fan them
// out. The built-in TraceRecorder implements the extension; the
// Collector deliberately does not (metrics need no trace identity, and
// executors skip the per-request trace allocation when no attached
// observer wants traces — see WantsTrace).
type TraceObserver interface {
	// RequestTraced binds the request req to its span in the causal
	// trace. Emitted once per observed request, after RequestStart.
	RequestTraced(executor string, req uint64, tc TraceContext)
	// RPCAttempted reports the lineage of one RPC attempt of a hedged
	// remote call, emitted by the client before the request span closes
	// (losers cancelled in flight are reported by the winner's side).
	RPCAttempted(client string, req uint64, attempt RPCAttempt)
}

// EmitRequestTraced delivers a span binding to o if it (or any member of
// a combined observer) implements TraceObserver. Nil observers are
// ignored.
func EmitRequestTraced(o Observer, executor string, req uint64, tc TraceContext) {
	if t, ok := o.(TraceObserver); ok {
		t.RequestTraced(executor, req, tc)
	}
}

// EmitRPCAttempted delivers an attempt-lineage event to o if it
// implements TraceObserver. Nil observers are ignored.
func EmitRPCAttempted(o Observer, client string, req uint64, attempt RPCAttempt) {
	if t, ok := o.(TraceObserver); ok {
		t.RPCAttempted(client, req, attempt)
	}
}

// WantsTrace reports whether o (or any member of a combined observer)
// implements TraceObserver. Executors consult it once at construction:
// deriving a per-request span costs one context allocation, and the
// observation layer's contract is to stay free when nobody is looking —
// so the trace context is created only when an attached observer
// records it. Note Nop does not implement the extension, preserving the
// zero-allocation guarantee of the no-op observer.
func WantsTrace(o Observer) bool {
	switch v := o.(type) {
	case nil:
		return false
	case multi:
		for _, e := range v {
			if WantsTrace(e) {
				return true
			}
		}
		return false
	case TraceObserver:
		return true
	default:
		return false
	}
}

// RequestTraced implements TraceObserver: the event reaches every member
// that implements the extension.
func (m multi) RequestTraced(executor string, req uint64, tc TraceContext) {
	for _, o := range m {
		if t, ok := o.(TraceObserver); ok {
			t.RequestTraced(executor, req, tc)
		}
	}
}

// RPCAttempted implements TraceObserver.
func (m multi) RPCAttempted(client string, req uint64, attempt RPCAttempt) {
	for _, o := range m {
		if t, ok := o.(TraceObserver); ok {
			t.RPCAttempted(client, req, attempt)
		}
	}
}

var _ TraceObserver = multi(nil)

// Package obs is the unified observation layer of the framework: a
// single Observer interface receives span-style callbacks from every
// redundancy executor (pattern executors, composite processes, technique
// facades), and composable implementations turn those callbacks into
// latency histograms (Collector), bounded request traces (TraceRecorder),
// the legacy core.Metrics counters (ForMetrics), or anything a caller
// wires in.
//
// The design follows the cost model of the paper's Section 4.1: the two
// quantities that matter for a redundant executor are how many variant
// executions a request costs and how often the executor still fails.
// Observability adds the third axis — where the time goes — which is what
// turns the cost model from an after-the-fact table into something a
// running system can act on (cf. runtime execution profiling as the basis
// for self-healing, arXiv:1203.5748).
//
// Hot-path discipline: executors call observers only after a nil check,
// request IDs are plain atomic increments, and the built-in observers are
// allocation-free per event once an executor/variant pair has been seen.
// A nil Observer (or the Nop observer) adds zero allocations to an
// executor's Execute path; this is asserted by tests and guarded by
// BenchmarkObserverOverhead.
package obs

import (
	"sync/atomic"
	"time"
)

// Outcome classifies the end state of one observed request.
type Outcome uint8

const (
	// OutcomeSuccess: the executor delivered a result and no variant
	// failure had to be masked.
	OutcomeSuccess Outcome = iota
	// OutcomeMasked: at least one variant failed or was rejected, but the
	// executor still delivered a result — redundancy did its job.
	OutcomeMasked
	// OutcomeFailed: the executor itself failed.
	OutcomeFailed
)

// String returns the Prometheus-label-safe name of the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeMasked:
		return "masked"
	case OutcomeFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Observer receives span-style callbacks from redundancy executors.
//
// A request is bracketed by RequestStart and RequestEnd carrying the same
// req identifier (obtained from NextRequestID); every variant execution
// performed on behalf of that request is bracketed by VariantStart and
// VariantEnd. Adjudicated reports the executor's decision: whether a
// result was accepted, and whether any variant failure was detected along
// the way (accepted together with a detected failure means the failure
// was masked). ComponentDisabled, RetryAttempt and Rollback report the
// recovery actions of the Figure 1b/1c executors and of compensable
// composite processes.
//
// Implementations must be safe for concurrent use: a single Observer is
// typically shared by several executors, and parallel executors emit
// variant events from multiple goroutines. Callbacks must not block; they
// sit on the executors' hot path.
type Observer interface {
	// RequestStart marks the beginning of one request on an executor.
	RequestStart(executor string, req uint64)
	// RequestEnd marks the end of the request with its total latency and
	// classified outcome.
	RequestEnd(executor string, req uint64, latency time.Duration, outcome Outcome)
	// VariantStart marks the beginning of one variant execution.
	VariantStart(executor, variant string, req uint64)
	// VariantEnd marks the end of a variant execution; err is the
	// variant's failure, or nil.
	VariantEnd(executor, variant string, req uint64, latency time.Duration, err error)
	// Adjudicated reports the executor's decision for the request:
	// accepted is whether a result was delivered, failureDetected whether
	// any variant result was rejected or failed along the way.
	Adjudicated(executor string, req uint64, accepted, failureDetected bool)
	// ComponentDisabled reports that the executor took component out of
	// rotation (parallel selection, Figure 1b).
	ComponentDisabled(executor, component string, req uint64)
	// RetryAttempt reports that the executor is moving to the attempt-th
	// try on variant after earlier attempts failed (attempt counts from 1
	// for the primary, so retries report 2, 3, ...).
	RetryAttempt(executor, variant string, req uint64, attempt int)
	// Rollback reports a state restoration: the recovery-block rollback
	// before an alternate runs, or a compensation handler of a composite
	// process.
	Rollback(executor string, req uint64)
}

// reqIDs is the process-wide request-identifier source. IDs start at 1 so
// that 0 can serve as the "unobserved" sentinel inside executors.
var reqIDs atomic.Uint64

// NextRequestID returns a process-unique identifier correlating the
// callbacks of one request. Executors call it once per observed request
// and pass the ID to every callback they emit for that request.
func NextRequestID() uint64 { return reqIDs.Add(1) }

// Nop is an Observer that does nothing. It is useful as an embeddable
// default and as the baseline of observer-overhead benchmarks; its
// methods are empty and add zero allocations.
type Nop struct{}

var _ Observer = Nop{}

// RequestStart implements Observer.
func (Nop) RequestStart(string, uint64) {}

// RequestEnd implements Observer.
func (Nop) RequestEnd(string, uint64, time.Duration, Outcome) {}

// VariantStart implements Observer.
func (Nop) VariantStart(string, string, uint64) {}

// VariantEnd implements Observer.
func (Nop) VariantEnd(string, string, uint64, time.Duration, error) {}

// Adjudicated implements Observer.
func (Nop) Adjudicated(string, uint64, bool, bool) {}

// ComponentDisabled implements Observer.
func (Nop) ComponentDisabled(string, string, uint64) {}

// RetryAttempt implements Observer.
func (Nop) RetryAttempt(string, string, uint64, int) {}

// Rollback implements Observer.
func (Nop) Rollback(string, uint64) {}

// multi fans every callback out to a fixed set of observers.
type multi []Observer

var _ Observer = multi(nil)

// Combine composes observers into one. Nil entries are dropped, nested
// combinations are flattened, and the degenerate cases collapse: no live
// observers yield nil (so executors keep their fast path), a single live
// observer is returned as itself.
func Combine(observers ...Observer) Observer {
	var list multi
	for _, o := range observers {
		switch m := o.(type) {
		case nil:
		case multi:
			list = append(list, m...)
		default:
			list = append(list, o)
		}
	}
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	default:
		return list
	}
}

// RequestStart implements Observer.
func (m multi) RequestStart(executor string, req uint64) {
	for _, o := range m {
		o.RequestStart(executor, req)
	}
}

// RequestEnd implements Observer.
func (m multi) RequestEnd(executor string, req uint64, latency time.Duration, outcome Outcome) {
	for _, o := range m {
		o.RequestEnd(executor, req, latency, outcome)
	}
}

// VariantStart implements Observer.
func (m multi) VariantStart(executor, variant string, req uint64) {
	for _, o := range m {
		o.VariantStart(executor, variant, req)
	}
}

// VariantEnd implements Observer.
func (m multi) VariantEnd(executor, variant string, req uint64, latency time.Duration, err error) {
	for _, o := range m {
		o.VariantEnd(executor, variant, req, latency, err)
	}
}

// Adjudicated implements Observer.
func (m multi) Adjudicated(executor string, req uint64, accepted, failureDetected bool) {
	for _, o := range m {
		o.Adjudicated(executor, req, accepted, failureDetected)
	}
}

// ComponentDisabled implements Observer.
func (m multi) ComponentDisabled(executor, component string, req uint64) {
	for _, o := range m {
		o.ComponentDisabled(executor, component, req)
	}
}

// RetryAttempt implements Observer.
func (m multi) RetryAttempt(executor, variant string, req uint64, attempt int) {
	for _, o := range m {
		o.RetryAttempt(executor, variant, req, attempt)
	}
}

// Rollback implements Observer.
func (m multi) Rollback(executor string, req uint64) {
	for _, o := range m {
		o.Rollback(executor, req)
	}
}

package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector is the histogram-backed metrics Observer: it keeps, per
// executor, event counters and a request-latency Histogram, and per
// (executor, variant) an execution/failure counter pair and a variant-
// latency Histogram.
//
// The hot path is lock-free and allocation-free in steady state: stats
// objects are resolved through an atomically swapped read-only map
// (copy-on-write on first sight of a new executor or variant name) and
// all counters are atomics. The mutex is only taken while inserting a
// name never seen before.
type Collector struct {
	mu    sync.Mutex // serializes copy-on-write inserts
	execs atomic.Pointer[map[string]*ExecutorStats]
}

var _ Observer = (*Collector)(nil)

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// ExecutorStats aggregates the observations of one executor.
type ExecutorStats struct {
	name string

	requests  atomic.Int64
	successes atomic.Int64
	masked    atomic.Int64
	failures  atomic.Int64
	detected  atomic.Int64
	disabled  atomic.Int64
	retries   atomic.Int64
	rollbacks atomic.Int64
	inflight  atomic.Int64 // variant executions currently running

	// Resilience-policy counters (PolicyObserver events).
	shed         atomic.Int64 // requests rejected by a bulkhead
	degraded     atomic.Int64 // requests served by the degradation ladder
	breakerOpens atomic.Int64 // circuit-breaker transitions into open

	// Crash-recovery counters (RecoveryObserver events).
	checkpoints atomic.Int64 // durable snapshots committed
	walReplays  atomic.Int64 // recovery replays completed
	restarts    atomic.Int64 // supervised process restarts
	escalations atomic.Int64 // restart-intensity escalations

	// Networked-replica counters (DistObserver events).
	hedges    atomic.Int64 // hedged attempts launched beyond the primary
	hedgeWins atomic.Int64 // requests won by a hedge (attempt > 1)
	suspects  atomic.Int64 // detector transitions into suspect
	deaths    atomic.Int64 // detector transitions into dead

	// Gray-failure counters (GrayObserver events).
	ejections     atomic.Int64 // latency-outlier ejections
	reinstates    atomic.Int64 // probation endpoints restored to rotation
	probeLaunches atomic.Int64 // trickle probes granted to ejected endpoints

	// Byzantine-voting counters (QuorumObserver events).
	quorums           atomic.Int64 // requests decided by a quorum verdict
	voteDisagreements atomic.Int64 // requests whose successful replies disagreed
	outvoted          atomic.Int64 // successful replies the quorum rejected

	// Autonomic-control counters (ControlObserver events).
	controlActions atomic.Int64 // reconfigurations performed by the controller

	latency Histogram // request latency
	mttr    Histogram // supervised-restart recovery time

	mu       sync.Mutex // serializes copy-on-write inserts
	variants atomic.Pointer[map[string]*VariantStats]
}

// VariantStats aggregates the observations of one variant under one
// executor.
type VariantStats struct {
	name       string
	executions atomic.Int64
	failures   atomic.Int64
	latency    Histogram
}

// exec resolves (creating on first use) the stats of an executor.
func (c *Collector) exec(name string) *ExecutorStats {
	if m := c.execs.Load(); m != nil {
		if e, ok := (*m)[name]; ok {
			return e
		}
	}
	return c.addExec(name)
}

// addExec is the copy-on-write slow path of exec.
func (c *Collector) addExec(name string) *ExecutorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.execs.Load()
	if old != nil {
		if e, ok := (*old)[name]; ok {
			return e
		}
	}
	next := make(map[string]*ExecutorStats, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	e := &ExecutorStats{name: name}
	next[name] = e
	c.execs.Store(&next)
	return e
}

// variant resolves (creating on first use) the stats of a variant under
// an executor.
func (e *ExecutorStats) variant(name string) *VariantStats {
	if m := e.variants.Load(); m != nil {
		if v, ok := (*m)[name]; ok {
			return v
		}
	}
	return e.addVariant(name)
}

// addVariant is the copy-on-write slow path of variant.
func (e *ExecutorStats) addVariant(name string) *VariantStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.variants.Load()
	if old != nil {
		if v, ok := (*old)[name]; ok {
			return v
		}
	}
	next := make(map[string]*VariantStats, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	v := &VariantStats{name: name}
	next[name] = v
	e.variants.Store(&next)
	return v
}

// RequestStart implements Observer.
func (c *Collector) RequestStart(executor string, _ uint64) {
	c.exec(executor).requests.Add(1)
}

// RequestEnd implements Observer.
func (c *Collector) RequestEnd(executor string, _ uint64, latency time.Duration, outcome Outcome) {
	e := c.exec(executor)
	e.latency.Observe(latency)
	switch outcome {
	case OutcomeSuccess:
		e.successes.Add(1)
	case OutcomeMasked:
		e.masked.Add(1)
	case OutcomeFailed:
		e.failures.Add(1)
	}
}

// VariantStart implements Observer.
func (c *Collector) VariantStart(executor, _ string, _ uint64) {
	c.exec(executor).inflight.Add(1)
}

// VariantEnd implements Observer.
func (c *Collector) VariantEnd(executor, variant string, _ uint64, latency time.Duration, err error) {
	e := c.exec(executor)
	e.inflight.Add(-1)
	v := e.variant(variant)
	v.executions.Add(1)
	if err != nil {
		v.failures.Add(1)
	}
	v.latency.Observe(latency)
}

// Adjudicated implements Observer.
func (c *Collector) Adjudicated(executor string, _ uint64, _, failureDetected bool) {
	if failureDetected {
		c.exec(executor).detected.Add(1)
	}
}

// ComponentDisabled implements Observer.
func (c *Collector) ComponentDisabled(executor, _ string, _ uint64) {
	c.exec(executor).disabled.Add(1)
}

// RetryAttempt implements Observer.
func (c *Collector) RetryAttempt(executor, _ string, _ uint64, _ int) {
	c.exec(executor).retries.Add(1)
}

// Rollback implements Observer.
func (c *Collector) Rollback(executor string, _ uint64) {
	c.exec(executor).rollbacks.Add(1)
}

// VariantSnapshot is a point-in-time copy of one variant's stats.
type VariantSnapshot struct {
	Variant    string            `json:"variant"`
	Executions int64             `json:"executions"`
	Failures   int64             `json:"failures"`
	Latency    HistogramSnapshot `json:"latency"`
}

// ExecutorSnapshot is a point-in-time copy of one executor's stats.
type ExecutorSnapshot struct {
	Executor         string            `json:"executor"`
	Requests         int64             `json:"requests"`
	Successes        int64             `json:"successes"`
	FailuresMasked   int64             `json:"failures_masked"`
	Failures         int64             `json:"failures"`
	FailuresDetected int64             `json:"failures_detected"`
	Disabled         int64             `json:"components_disabled"`
	Retries          int64             `json:"retries"`
	Rollbacks        int64             `json:"rollbacks"`
	InflightVariants int64             `json:"inflight_variants"`
	Shed             int64             `json:"shed,omitempty"`
	DegradedServes   int64             `json:"degraded_serves,omitempty"`
	BreakerOpens     int64             `json:"breaker_opens,omitempty"`
	Checkpoints      int64             `json:"checkpoints,omitempty"`
	WALReplays       int64             `json:"wal_replays,omitempty"`
	Restarts         int64             `json:"restarts,omitempty"`
	Escalations      int64             `json:"escalations,omitempty"`
	Hedges           int64             `json:"hedges,omitempty"`
	HedgeWins        int64             `json:"hedge_wins,omitempty"`
	ReplicaSuspects  int64             `json:"replica_suspects,omitempty"`
	ReplicaDeaths    int64             `json:"replica_deaths,omitempty"`
	Ejections        int64             `json:"ejections,omitempty"`
	Reinstatements   int64             `json:"reinstatements,omitempty"`
	ProbeLaunches    int64             `json:"probe_launches,omitempty"`
	QuorumsReached   int64             `json:"quorums_reached,omitempty"`
	VoteDisagreement int64             `json:"vote_disagreements,omitempty"`
	ReplicasOutvoted int64             `json:"replicas_outvoted,omitempty"`
	ControlActions   int64             `json:"control_actions,omitempty"`
	Latency          HistogramSnapshot `json:"latency"`
	MTTR             HistogramSnapshot `json:"mttr,omitempty"`
	Variants         []VariantSnapshot `json:"variants,omitempty"`
}

// Snapshot returns a copy of all executor stats, sorted by executor name
// (variants sorted by variant name) for stable reporting.
func (c *Collector) Snapshot() []ExecutorSnapshot {
	m := c.execs.Load()
	if m == nil {
		return nil
	}
	out := make([]ExecutorSnapshot, 0, len(*m))
	for _, e := range *m {
		s := ExecutorSnapshot{
			Executor:         e.name,
			Requests:         e.requests.Load(),
			Successes:        e.successes.Load(),
			FailuresMasked:   e.masked.Load(),
			Failures:         e.failures.Load(),
			FailuresDetected: e.detected.Load(),
			Disabled:         e.disabled.Load(),
			Retries:          e.retries.Load(),
			Rollbacks:        e.rollbacks.Load(),
			InflightVariants: e.inflight.Load(),
			Shed:             e.shed.Load(),
			DegradedServes:   e.degraded.Load(),
			BreakerOpens:     e.breakerOpens.Load(),
			Checkpoints:      e.checkpoints.Load(),
			WALReplays:       e.walReplays.Load(),
			Restarts:         e.restarts.Load(),
			Escalations:      e.escalations.Load(),
			Hedges:           e.hedges.Load(),
			HedgeWins:        e.hedgeWins.Load(),
			ReplicaSuspects:  e.suspects.Load(),
			ReplicaDeaths:    e.deaths.Load(),
			Ejections:        e.ejections.Load(),
			Reinstatements:   e.reinstates.Load(),
			ProbeLaunches:    e.probeLaunches.Load(),
			QuorumsReached:   e.quorums.Load(),
			VoteDisagreement: e.voteDisagreements.Load(),
			ReplicasOutvoted: e.outvoted.Load(),
			ControlActions:   e.controlActions.Load(),
			Latency:          e.latency.Snapshot(),
			MTTR:             e.mttr.Snapshot(),
		}
		if vm := e.variants.Load(); vm != nil {
			for _, v := range *vm {
				s.Variants = append(s.Variants, VariantSnapshot{
					Variant:    v.name,
					Executions: v.executions.Load(),
					Failures:   v.failures.Load(),
					Latency:    v.latency.Snapshot(),
				})
			}
			sort.Slice(s.Variants, func(i, j int) bool {
				return s.Variants[i].Variant < s.Variants[j].Variant
			})
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Executor < out[j].Executor })
	return out
}

// ExecutorLatency returns the request-latency histogram of an executor,
// or nil if the executor has not been observed. The histogram keeps
// accumulating; callers must treat it as read-only.
func (c *Collector) ExecutorLatency(executor string) *Histogram {
	if m := c.execs.Load(); m != nil {
		if e, ok := (*m)[executor]; ok {
			return &e.latency
		}
	}
	return nil
}

// ExecutorMTTR returns the supervised-restart recovery-time histogram of
// an executor (fed by ProcessRestarted downtime samples), or nil if the
// executor has not been observed. The histogram keeps accumulating;
// callers must treat it as read-only.
func (c *Collector) ExecutorMTTR(executor string) *Histogram {
	if m := c.execs.Load(); m != nil {
		if e, ok := (*m)[executor]; ok {
			return &e.mttr
		}
	}
	return nil
}

// VariantLatency returns the latency histogram of a variant under an
// executor, or nil if that pair has not been observed.
func (c *Collector) VariantLatency(executor, variant string) *Histogram {
	m := c.execs.Load()
	if m == nil {
		return nil
	}
	e, ok := (*m)[executor]
	if !ok {
		return nil
	}
	vm := e.variants.Load()
	if vm == nil {
		return nil
	}
	v, ok := (*vm)[variant]
	if !ok {
		return nil
	}
	return &v.latency
}

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the fixed bucket count of a latency Histogram. Buckets
// are powers of two of a microsecond: bucket i collects observations
// whose microsecond value has bit length i, i.e. durations in
// [2^(i-1)µs, 2^i µs). Bucket 0 collects sub-microsecond observations and
// the last bucket everything from ~2^38 µs (≈ 76 hours) up.
const numBuckets = 40

// Histogram is a lock-free, fixed-bucket latency histogram. All methods
// are safe for concurrent use; Observe is wait-free (three atomic adds)
// and performs no allocation, which keeps it eligible for executor hot
// paths. Quantile estimates are resolved to bucket upper bounds, so they
// are accurate to within a factor of two — plenty for p50/p90/p99 latency
// attribution, and the price of never taking a lock.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Uint64
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(d / time.Microsecond))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketBound returns the upper bound of bucket idx.
func bucketBound(idx int) time.Duration {
	return time.Duration(uint64(1)<<uint(idx)) * time.Microsecond
}

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observed duration, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// of the observed latencies, or 0 when the histogram is empty. Under
// concurrent writers the estimate is computed over a close-enough view of
// the counters, which is adequate for reporting.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return bucketBound(numBuckets - 1)
}

// P50 returns the estimated median latency.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P90 returns the estimated 90th-percentile latency.
func (h *Histogram) P90() time.Duration { return h.Quantile(0.90) }

// P99 returns the estimated 99th-percentile latency.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// HistogramSnapshot is a point-in-time summary of a Histogram, shaped for
// JSON export (durations in nanoseconds).
type HistogramSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.P50(),
		P90:   h.P90(),
		P99:   h.P99(),
	}
}

package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// eventLog is a test observer that records callback names.
type eventLog struct {
	mu     sync.Mutex
	events []string
}

func (l *eventLog) add(e string) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) RequestStart(string, uint64)                       { l.add("request-start") }
func (l *eventLog) RequestEnd(string, uint64, time.Duration, Outcome) { l.add("request-end") }
func (l *eventLog) VariantStart(string, string, uint64)               { l.add("variant-start") }
func (l *eventLog) VariantEnd(string, string, uint64, time.Duration, error) {
	l.add("variant-end")
}
func (l *eventLog) Adjudicated(string, uint64, bool, bool)   { l.add("adjudicated") }
func (l *eventLog) ComponentDisabled(string, string, uint64) { l.add("component-disabled") }
func (l *eventLog) RetryAttempt(string, string, uint64, int) { l.add("retry") }
func (l *eventLog) Rollback(string, uint64)                  { l.add("rollback") }

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeSuccess: "success",
		OutcomeMasked:  "masked",
		OutcomeFailed:  "failed",
		Outcome(42):    "unknown",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
}

func TestNextRequestIDUnique(t *testing.T) {
	const n = 1000
	ids := make(chan uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/8; j++ {
				ids <- NextRequestID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[uint64]bool)
	for id := range ids {
		if id == 0 {
			t.Fatal("request ID 0 issued; 0 is the unobserved sentinel")
		}
		if seen[id] {
			t.Fatalf("duplicate request ID %d", id)
		}
		seen[id] = true
	}
}

func TestCombine(t *testing.T) {
	if Combine() != nil {
		t.Error("Combine() should be nil")
	}
	if Combine(nil, nil) != nil {
		t.Error("Combine(nil, nil) should be nil")
	}
	var l eventLog
	if got := Combine(nil, &l); got != Observer(&l) {
		t.Error("single live observer should be returned as itself")
	}

	var a, b eventLog
	m := Combine(&a, nil, Combine(&b, Nop{}))
	m.RequestStart("x", 1)
	m.VariantStart("x", "v", 1)
	m.VariantEnd("x", "v", 1, time.Millisecond, nil)
	m.Adjudicated("x", 1, true, false)
	m.ComponentDisabled("x", "v", 1)
	m.RetryAttempt("x", "v", 1, 2)
	m.Rollback("x", 1)
	m.RequestEnd("x", 1, time.Millisecond, OutcomeSuccess)
	if len(a.events) != 8 || len(b.events) != 8 {
		t.Errorf("fan-out delivered %d/%d events, want 8/8", len(a.events), len(b.events))
	}
}

// taggedLog appends "<tag>:<event>" to a log shared between observers,
// so fan-out order across members is visible.
type taggedLog struct {
	tag string
	mu  *sync.Mutex
	out *[]string
}

func (l taggedLog) add(e string) {
	l.mu.Lock()
	*l.out = append(*l.out, l.tag+":"+e)
	l.mu.Unlock()
}

func (l taggedLog) RequestStart(string, uint64)                             { l.add("request-start") }
func (l taggedLog) RequestEnd(string, uint64, time.Duration, Outcome)       { l.add("request-end") }
func (l taggedLog) VariantStart(string, string, uint64)                     { l.add("variant-start") }
func (l taggedLog) VariantEnd(string, string, uint64, time.Duration, error) { l.add("variant-end") }
func (l taggedLog) Adjudicated(string, uint64, bool, bool)                  { l.add("adjudicated") }
func (l taggedLog) ComponentDisabled(string, string, uint64)                { l.add("component-disabled") }
func (l taggedLog) RetryAttempt(string, string, uint64, int)                { l.add("retry") }
func (l taggedLog) Rollback(string, uint64)                                 { l.add("rollback") }

func TestCombineFanOutOrdering(t *testing.T) {
	// Every callback reaches the members in registration order, nil
	// members and nesting notwithstanding.
	var (
		mu  sync.Mutex
		out []string
	)
	mk := func(tag string) taggedLog { return taggedLog{tag: tag, mu: &mu, out: &out} }
	m := Combine(nil, mk("a"), Combine(mk("b"), nil, mk("c")))
	m.RequestStart("x", 1)
	m.VariantEnd("x", "v", 1, time.Millisecond, nil)
	m.RequestEnd("x", 1, time.Millisecond, OutcomeSuccess)
	want := []string{
		"a:request-start", "b:request-start", "c:request-start",
		"a:variant-end", "b:variant-end", "c:variant-end",
		"a:request-end", "b:request-end", "c:request-end",
	}
	if len(out) != len(want) {
		t.Fatalf("events = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("events = %v, want %v", out, want)
		}
	}
}

func TestCombineFlattensNested(t *testing.T) {
	var a, b, c eventLog
	m, ok := Combine(Combine(&a, &b), nil, &c).(multi)
	if !ok {
		t.Fatalf("combined observer is %T, want multi", Combine(Combine(&a, &b), nil, &c))
	}
	if len(m) != 3 {
		t.Errorf("flattened members = %d, want 3", len(m))
	}
	for _, o := range m {
		if _, nested := o.(multi); nested {
			t.Error("nested multi survived flattening")
		}
	}
}

func TestCollectorCounts(t *testing.T) {
	c := NewCollector()
	req := NextRequestID()
	c.RequestStart("exec", req)
	c.VariantStart("exec", "v1", req)
	c.VariantEnd("exec", "v1", req, 2*time.Millisecond, nil)
	c.VariantStart("exec", "v2", req)
	c.VariantEnd("exec", "v2", req, 3*time.Millisecond, errors.New("boom"))
	c.Adjudicated("exec", req, true, true)
	c.ComponentDisabled("exec", "v2", req)
	c.RetryAttempt("exec", "v2", req, 2)
	c.Rollback("exec", req)
	c.RequestEnd("exec", req, 5*time.Millisecond, OutcomeMasked)

	snap := c.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d executors, want 1", len(snap))
	}
	e := snap[0]
	if e.Executor != "exec" || e.Requests != 1 || e.FailuresMasked != 1 ||
		e.Failures != 0 || e.FailuresDetected != 1 || e.Disabled != 1 ||
		e.Retries != 1 || e.Rollbacks != 1 || e.InflightVariants != 0 {
		t.Errorf("executor snapshot = %+v", e)
	}
	if e.Latency.Count != 1 || e.Latency.Sum != 5*time.Millisecond {
		t.Errorf("request latency = %+v", e.Latency)
	}
	if len(e.Variants) != 2 || e.Variants[0].Variant != "v1" || e.Variants[1].Variant != "v2" {
		t.Fatalf("variants = %+v", e.Variants)
	}
	if e.Variants[0].Executions != 1 || e.Variants[0].Failures != 0 {
		t.Errorf("v1 = %+v", e.Variants[0])
	}
	if e.Variants[1].Executions != 1 || e.Variants[1].Failures != 1 {
		t.Errorf("v2 = %+v", e.Variants[1])
	}
}

func TestCollectorLatencyLookup(t *testing.T) {
	c := NewCollector()
	if c.ExecutorLatency("missing") != nil || c.VariantLatency("missing", "v") != nil {
		t.Error("lookups on empty collector should be nil")
	}
	req := NextRequestID()
	c.RequestStart("e", req)
	c.VariantStart("e", "v", req)
	c.VariantEnd("e", "v", req, time.Millisecond, nil)
	c.RequestEnd("e", req, time.Millisecond, OutcomeSuccess)
	if h := c.ExecutorLatency("e"); h == nil || h.Count() != 1 {
		t.Error("executor latency histogram missing")
	}
	if h := c.VariantLatency("e", "v"); h == nil || h.Count() != 1 {
		t.Error("variant latency histogram missing")
	}
	if c.VariantLatency("e", "other") != nil {
		t.Error("unknown variant should be nil")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exec := []string{"a", "b"}[w%2]
			for i := 0; i < each; i++ {
				req := NextRequestID()
				c.RequestStart(exec, req)
				c.VariantStart(exec, "v", req)
				c.VariantEnd(exec, "v", req, time.Microsecond, nil)
				c.RequestEnd(exec, req, time.Microsecond, OutcomeSuccess)
			}
		}(w)
	}
	wg.Wait()
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("executors = %d, want 2", len(snap))
	}
	total := snap[0].Requests + snap[1].Requests
	if total != workers*each {
		t.Errorf("requests = %d, want %d", total, workers*each)
	}
}

func TestTraceRecorderRing(t *testing.T) {
	tr := NewTraceRecorder(3)
	for i := 0; i < 5; i++ {
		req := NextRequestID()
		tr.RequestStart("exec", req)
		tr.VariantStart("exec", "v", req)
		tr.VariantEnd("exec", "v", req, time.Millisecond, nil)
		tr.Adjudicated("exec", req, true, false)
		tr.RequestEnd("exec", req, 2*time.Millisecond, OutcomeSuccess)
	}
	if tr.Total() != 5 {
		t.Errorf("Total = %d, want 5", tr.Total())
	}
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring keeps %d traces, want 3", len(snap))
	}
	// Most recent first: IDs strictly decreasing.
	for i := 1; i < len(snap); i++ {
		if snap[i].ID >= snap[i-1].ID {
			t.Errorf("traces not newest-first: %d then %d", snap[i-1].ID, snap[i].ID)
		}
	}
	got := snap[0]
	if got.Executor != "exec" || !got.Accepted || got.FailureDetected ||
		got.Outcome != "success" || got.Latency != 2*time.Millisecond {
		t.Errorf("trace = %+v", got)
	}
	if len(got.Variants) != 1 || got.Variants[0].Variant != "v" {
		t.Errorf("spans = %+v", got.Variants)
	}
}

func TestTraceRecorderEventsAndErrors(t *testing.T) {
	tr := NewTraceRecorder(2)
	req := NextRequestID()
	tr.RequestStart("exec", req)
	tr.VariantEnd("exec", "v1", req, time.Millisecond, errors.New("kaput"))
	tr.RetryAttempt("exec", "v2", req, 2)
	tr.Rollback("exec", req)
	tr.ComponentDisabled("exec", "v1", req)
	tr.Adjudicated("exec", req, false, true)
	tr.RequestEnd("exec", req, time.Millisecond, OutcomeFailed)

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("traces = %d", len(snap))
	}
	got := snap[0]
	if got.Accepted || !got.FailureDetected || got.Outcome != "failed" {
		t.Errorf("trace = %+v", got)
	}
	if len(got.Variants) != 1 || got.Variants[0].Err != "kaput" {
		t.Errorf("spans = %+v", got.Variants)
	}
	if len(got.Events) != 3 ||
		got.Events[0].Kind != "retry" || got.Events[1].Kind != "rollback" ||
		got.Events[2].Kind != "component-disabled" {
		t.Errorf("events = %+v", got.Events)
	}
}

func TestTraceRecorderIgnoresUnknownRequest(t *testing.T) {
	tr := NewTraceRecorder(2)
	// Events for a request that never started must be dropped, not panic.
	tr.VariantEnd("exec", "v", 999999, time.Millisecond, nil)
	tr.Adjudicated("exec", 999999, true, false)
	tr.RequestEnd("exec", 999999, time.Millisecond, OutcomeSuccess)
	if tr.Total() != 0 || len(tr.Snapshot()) != 0 {
		t.Error("unknown request leaked into the ring")
	}
}

func TestTraceRecorderWraparoundConcurrent(t *testing.T) {
	// Many writers overflow a tiny ring while readers snapshot: the ring
	// must keep exactly its capacity of complete, distinct traces and
	// count every completion (run with -race to check the locking).
	const (
		capacity = 4
		writers  = 8
		each     = 200
	)
	tr := NewTraceRecorder(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exec := []string{"a", "b"}[w%2]
			for i := 0; i < each; i++ {
				req := NextRequestID()
				tr.RequestStart(exec, req)
				tr.VariantStart(exec, "v", req)
				tr.VariantEnd(exec, "v", req, time.Microsecond, nil)
				tr.RequestEnd(exec, req, time.Microsecond, OutcomeSuccess)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for reading := true; reading; {
		select {
		case <-done:
			reading = false
		default:
		}
		snap := tr.Snapshot()
		if len(snap) > capacity {
			t.Fatalf("snapshot holds %d traces, capacity %d", len(snap), capacity)
		}
		for _, trace := range snap {
			if trace.ID == 0 || trace.Outcome != "success" || len(trace.Variants) != 1 {
				t.Fatalf("torn trace in snapshot: %+v", trace)
			}
		}
	}
	if got := tr.Total(); got != writers*each {
		t.Errorf("Total = %d, want %d", got, writers*each)
	}
	snap := tr.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("final snapshot holds %d traces, want %d", len(snap), capacity)
	}
	seen := map[uint64]bool{}
	for _, trace := range snap {
		if seen[trace.ID] {
			t.Errorf("duplicate trace %d after wraparound", trace.ID)
		}
		seen[trace.ID] = true
	}
}

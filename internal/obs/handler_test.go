package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
)

// observeOneRequest drives one masked request through an observer.
func observeOneRequest(o Observer, executor string) {
	req := NextRequestID()
	o.RequestStart(executor, req)
	o.VariantStart(executor, "v1", req)
	o.VariantEnd(executor, "v1", req, time.Millisecond, nil)
	o.VariantStart(executor, "v2", req)
	o.VariantEnd(executor, "v2", req, 2*time.Millisecond, errors.New("boom"))
	o.Adjudicated(executor, req, true, true)
	o.RequestEnd(executor, req, 3*time.Millisecond, OutcomeMasked)
}

func get(t *testing.T, srv *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestHandlerEndpoints(t *testing.T) {
	c := NewCollector()
	tr := NewTraceRecorder(8)
	observeOneRequest(Combine(c, tr), "parallel-evaluation")

	srv := httptest.NewServer(Handler(c, tr))
	defer srv.Close()

	metrics, ctype := get(t, srv, "/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		`redundancy_requests_total{executor="parallel-evaluation"} 1`,
		`redundancy_failures_masked_total{executor="parallel-evaluation"} 1`,
		`redundancy_failures_detected_total{executor="parallel-evaluation"} 1`,
		`redundancy_variant_executions_total{executor="parallel-evaluation",variant="v1"} 1`,
		`redundancy_variant_failures_total{executor="parallel-evaluation",variant="v2"} 1`,
		`redundancy_request_latency_seconds{executor="parallel-evaluation",quantile="0.5"}`,
		`redundancy_variant_latency_seconds{executor="parallel-evaluation",variant="v2",quantile="0.99"}`,
		`redundancy_request_latency_seconds_count{executor="parallel-evaluation"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	vars, ctype := get(t, srv, "/vars")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/vars content type = %q", ctype)
	}
	var doc struct {
		Executors []ExecutorSnapshot `json:"executors"`
	}
	if err := json.Unmarshal([]byte(vars), &doc); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if len(doc.Executors) != 1 || doc.Executors[0].Requests != 1 {
		t.Errorf("/vars = %+v", doc)
	}

	traces, _ := get(t, srv, "/traces")
	var ts []Trace
	if err := json.Unmarshal([]byte(traces), &ts); err != nil {
		t.Fatalf("/traces not JSON: %v", err)
	}
	if len(ts) != 1 || ts[0].Executor != "parallel-evaluation" || len(ts[0].Variants) != 2 {
		t.Errorf("/traces = %+v", ts)
	}
}

func TestHandlerNilCollectors(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	if body, _ := get(t, srv, "/metrics"); body != "" {
		t.Errorf("/metrics on nil collector = %q", body)
	}
	if body, _ := get(t, srv, "/traces"); strings.TrimSpace(body) != "[]" {
		t.Errorf("/traces on nil recorder = %q", body)
	}
	body, _ := get(t, srv, "/vars")
	if !strings.Contains(body, "executors") {
		t.Errorf("/vars on nil collector = %q", body)
	}
}

func TestEscapeLabel(t *testing.T) {
	got := escapeLabel("a\"b\\c\nd")
	if got != `a\"b\\c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
}

func TestCollectorVar(t *testing.T) {
	c := NewCollector()
	observeOneRequest(c, "single")
	s := c.Var().String()
	if !strings.Contains(s, `"single"`) {
		t.Errorf("expvar output missing executor: %s", s)
	}
}

func TestForMetricsParity(t *testing.T) {
	// The adapter must reproduce the legacy counter semantics: request on
	// start, one execution per variant end, detected/masked/failed from
	// the adjudication decision.
	var m core.Metrics
	o := ForMetrics(&m)

	observeOneRequest(o, "exec") // accepted with detected failure -> masked

	req := NextRequestID() // failed request
	o.RequestStart("exec", req)
	o.VariantEnd("exec", "v1", req, time.Millisecond, errors.New("boom"))
	o.Adjudicated("exec", req, false, true)
	o.RequestEnd("exec", req, time.Millisecond, OutcomeFailed)

	req = NextRequestID() // clean request
	o.RequestStart("exec", req)
	o.VariantEnd("exec", "v1", req, time.Millisecond, nil)
	o.Adjudicated("exec", req, true, false)
	o.RequestEnd("exec", req, time.Millisecond, OutcomeSuccess)

	s := m.Snapshot()
	if s.Requests != 3 || s.VariantExecutions != 4 || s.FailuresDetected != 2 ||
		s.FailuresMasked != 1 || s.Failures != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestForMetricsNil(t *testing.T) {
	if ForMetrics(nil) != nil {
		t.Error("ForMetrics(nil) should be nil to preserve the fast path")
	}
}

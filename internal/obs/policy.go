package obs

// Policy events extend the observation layer with the resilience-policy
// vocabulary (internal/resilience): circuit-breaker state transitions,
// load-shedding decisions, and degraded serves from a fallback ladder.
//
// The events are an *optional* extension of Observer so that existing
// observers keep compiling unchanged: an observer that wants policy
// events additionally implements PolicyObserver, and emitters route
// events through the Emit* helpers, which type-assert and fan out
// through combined observers. The built-in Collector and TraceRecorder
// implement the extension.

// BreakerState is the state of a circuit breaker.
type BreakerState uint8

const (
	// BreakerClosed: requests flow normally; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are rejected fast without executing.
	BreakerOpen
	// BreakerHalfOpen: a single probe request at a time is admitted to
	// test whether the protected variant has recovered.
	BreakerHalfOpen
)

// String returns the Prometheus-label-safe name of the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// PolicyObserver is the optional Observer extension receiving
// resilience-policy events. Observers implement it in addition to
// Observer; emitters must route events through the Emit* helpers so
// that combined observers (Combine) fan the events out to every member
// that implements the extension.
type PolicyObserver interface {
	// BreakerStateChanged reports a circuit-breaker transition for one
	// variant under one executor.
	BreakerStateChanged(executor, variant string, from, to BreakerState)
	// RequestShed reports that the executor's bulkhead rejected the
	// request without executing any variant (overload fast-fail).
	RequestShed(executor string, req uint64)
	// DegradedServe reports that the request was answered by the
	// degradation ladder instead of a live variant; source names the
	// rung ("cache" for the last-good value, "degraded-variant" for the
	// configured fallback variant).
	DegradedServe(executor string, req uint64, source string)
}

// EmitBreakerStateChanged delivers a breaker transition to o if it (or
// any member of a combined observer) implements PolicyObserver. Nil
// observers are ignored.
func EmitBreakerStateChanged(o Observer, executor, variant string, from, to BreakerState) {
	if p, ok := o.(PolicyObserver); ok {
		p.BreakerStateChanged(executor, variant, from, to)
	}
}

// EmitRequestShed delivers a load-shedding event to o if it implements
// PolicyObserver. Nil observers are ignored.
func EmitRequestShed(o Observer, executor string, req uint64) {
	if p, ok := o.(PolicyObserver); ok {
		p.RequestShed(executor, req)
	}
}

// EmitDegradedServe delivers a degraded-serve event to o if it
// implements PolicyObserver. Nil observers are ignored.
func EmitDegradedServe(o Observer, executor string, req uint64, source string) {
	if p, ok := o.(PolicyObserver); ok {
		p.DegradedServe(executor, req, source)
	}
}

// BreakerStateChanged implements PolicyObserver for Nop.
func (Nop) BreakerStateChanged(string, string, BreakerState, BreakerState) {}

// RequestShed implements PolicyObserver for Nop.
func (Nop) RequestShed(string, uint64) {}

// DegradedServe implements PolicyObserver for Nop.
func (Nop) DegradedServe(string, uint64, string) {}

var _ PolicyObserver = Nop{}

// BreakerStateChanged implements PolicyObserver: the event reaches every
// member that implements the extension.
func (m multi) BreakerStateChanged(executor, variant string, from, to BreakerState) {
	for _, o := range m {
		if p, ok := o.(PolicyObserver); ok {
			p.BreakerStateChanged(executor, variant, from, to)
		}
	}
}

// RequestShed implements PolicyObserver.
func (m multi) RequestShed(executor string, req uint64) {
	for _, o := range m {
		if p, ok := o.(PolicyObserver); ok {
			p.RequestShed(executor, req)
		}
	}
}

// DegradedServe implements PolicyObserver.
func (m multi) DegradedServe(executor string, req uint64, source string) {
	for _, o := range m {
		if p, ok := o.(PolicyObserver); ok {
			p.DegradedServe(executor, req, source)
		}
	}
}

var _ PolicyObserver = multi(nil)

// BreakerStateChanged implements PolicyObserver: the Collector counts
// transitions into the open state per executor (the "breaker tripped"
// signal that campaign reports and dashboards alert on).
func (c *Collector) BreakerStateChanged(executor, _ string, _, to BreakerState) {
	if to == BreakerOpen {
		c.exec(executor).breakerOpens.Add(1)
	}
}

// RequestShed implements PolicyObserver.
func (c *Collector) RequestShed(executor string, _ uint64) {
	c.exec(executor).shed.Add(1)
}

// DegradedServe implements PolicyObserver.
func (c *Collector) DegradedServe(executor string, _ uint64, _ string) {
	c.exec(executor).degraded.Add(1)
}

var _ PolicyObserver = (*Collector)(nil)

// BreakerStateChanged implements PolicyObserver. Breaker transitions are
// not bound to one request, so the trace ring has nothing to attach them
// to; the Collector keeps the counts.
func (t *TraceRecorder) BreakerStateChanged(string, string, BreakerState, BreakerState) {}

// RequestShed implements PolicyObserver.
func (t *TraceRecorder) RequestShed(_ string, req uint64) {
	t.event(req, "shed", "")
}

// DegradedServe implements PolicyObserver.
func (t *TraceRecorder) DegradedServe(_ string, req uint64, source string) {
	t.event(req, "degraded-serve", source)
}

var _ PolicyObserver = (*TraceRecorder)(nil)

// Package assemble stitches per-process trace exports into causal
// trees. Each process of a distributed fleet — the client driving
// hedged remotes, and every replica server — records its own spans
// (obs.TraceRecorder) and exports its own trace file; this package
// joins them offline on the TraceID/SpanID/ParentSpanID triples that
// traveled the RPC wire, reconstructing for every request the chain
//
//	caller span → client request span → attempt span (wire) → replica span
//
// and deriving the answers the raw per-process files cannot give: did
// the accepted answer really come from the replica the client credits
// (link ratio, attribution), and where did the time go (critical path)?
// cmd/obsreport's assemble subcommand is the CLI over this package.
package assemble

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// Validation errors: the two silent failure modes of offline assembly.
// An empty export and a set of exports from unrelated runs both used to
// assemble "successfully" into a report that says nothing — and a CI
// gate reading only the link ratio would wave them through (no client
// requests means a vacuous ratio of 1).
var (
	// ErrNoTraces reports that no source contributed a traced span.
	ErrNoTraces = errors.New("assemble: no traced spans in any source")
	// ErrDisjointSources reports multi-source input whose sources share
	// no TraceID — exports from different runs (different trace seeds)
	// that can never link.
	ErrDisjointSources = errors.New("assemble: sources share no TraceID")
)

// Source is one process's trace export: a name (typically the trace
// file's basename) and its recorded traces.
type Source struct {
	Name   string
	Traces []obs.Trace
}

// Span is one node of an assembled causal tree: a recorded trace plus
// its resolved children (spans from any source naming this span — or
// one of its RPC attempt spans — as parent).
type Span struct {
	// Source names the process that recorded the span.
	Source string
	// Trace is the recorded span itself.
	Trace obs.Trace
	// ViaAttempt is non-zero when this span's parent is an RPC attempt
	// span of the parent trace (the wire hop), rather than the parent's
	// request span directly.
	ViaAttempt uint64
	// Children are the resolved child spans, ordered by start time.
	Children []*Span
}

// Attribution aggregates "who served the accepted answer" per endpoint,
// from the clients' hedge lineages.
type Attribution struct {
	Endpoint string `json:"endpoint"`
	// Wins counts attempts whose result the client returned; HedgeWins
	// is the subset that were hedges (attempt > 1).
	Wins      int `json:"wins"`
	HedgeWins int `json:"hedge_wins"`
	// Cancelled counts attempts cancelled in flight by a faster sibling;
	// Failures counts attempts that completed with an error.
	Cancelled int `json:"cancelled"`
	Failures  int `json:"failures"`
}

// CriticalPath is the mean per-hop timing over linked accepted requests:
// how much of the client's request latency the winning wire attempt
// accounts for, and how much of the attempt the replica's own execution
// accounts for — the remainder of each hop is framing, queueing, and the
// fault injector's delay.
type CriticalPath struct {
	Requests       int           `json:"requests"`
	ClientLatency  time.Duration `json:"client_latency_ns"`
	AttemptLatency time.Duration `json:"attempt_latency_ns"`
	ServerLatency  time.Duration `json:"server_latency_ns"`
}

// Report is the result of assembling a fleet's trace exports.
type Report struct {
	// Spans counts traced spans across all sources; TraceIDs counts
	// distinct traces. Sources counts the exports given to Assemble, and
	// SharedTraceIDs the traces seen in more than one source — zero
	// shared traces across multiple sources means the exports come from
	// different runs and nothing can link.
	Spans          int `json:"spans"`
	TraceIDs       int `json:"trace_ids"`
	Sources        int `json:"sources"`
	SharedTraceIDs int `json:"shared_trace_ids"`
	// Roots is the assembled causal forest (spans with no resolvable
	// parent), ordered by start time.
	Roots []*Span `json:"-"`
	// ClientRequests counts accepted client requests carrying an RPC
	// lineage; Linked is the subset whose winning attempt span is named
	// as parent by a server span of the same trace — the end-to-end
	// client→replica chain the tracing exists to establish. LinkRatio is
	// Linked/ClientRequests (1 when there are no client requests).
	ClientRequests int     `json:"client_requests"`
	Linked         int     `json:"linked"`
	LinkRatio      float64 `json:"link_ratio"`
	// Attribution is the per-endpoint win/hedge/cancel/failure table,
	// sorted by endpoint name.
	Attribution []Attribution `json:"attribution"`
	// Path is the mean critical-path timing over the linked requests.
	Path CriticalPath `json:"critical_path"`
}

// Assemble joins the sources' traces into causal trees and derives the
// cross-process report.
func Assemble(sources ...Source) *Report {
	r := &Report{Sources: len(sources)}
	var nodes []*Span
	bySpan := make(map[uint64]*Span)
	attemptOwner := make(map[uint64]*Span)
	// traceIDs maps each trace to the first source index that recorded
	// it, then to -1 once a second source does — counting shared traces.
	traceIDs := make(map[uint64]int)
	for si, src := range sources {
		for _, tr := range src.Traces {
			if tr.TraceID == 0 || tr.SpanID == 0 {
				continue // untraced request: no causal identity
			}
			n := &Span{Source: src.Name, Trace: tr}
			nodes = append(nodes, n)
			if first, seen := traceIDs[tr.TraceID]; !seen {
				traceIDs[tr.TraceID] = si
			} else if first != si && first != -1 {
				traceIDs[tr.TraceID] = -1
				r.SharedTraceIDs++
			}
			if _, dup := bySpan[tr.SpanID]; !dup {
				bySpan[tr.SpanID] = n
			}
			for _, a := range tr.Attempts {
				if a.SpanID != 0 {
					attemptOwner[a.SpanID] = n
				}
			}
		}
	}
	r.Spans = len(nodes)
	r.TraceIDs = len(traceIDs)

	// Link children to parents: a span's parent is either another
	// recorded span (an in-process nesting) or an RPC attempt span of a
	// client trace (the wire hop). Unresolvable parents make roots — the
	// caller span may live in a process whose export we were not given.
	serverByParent := make(map[uint64][]*Span)
	for _, n := range nodes {
		p := n.Trace.ParentSpanID
		if p != 0 {
			serverByParent[p] = append(serverByParent[p], n)
		}
		switch {
		case p == 0:
			r.Roots = append(r.Roots, n)
		case bySpan[p] != nil && bySpan[p] != n:
			bySpan[p].Children = append(bySpan[p].Children, n)
		case attemptOwner[p] != nil && attemptOwner[p] != n:
			n.ViaAttempt = p
			attemptOwner[p].Children = append(attemptOwner[p].Children, n)
		default:
			r.Roots = append(r.Roots, n)
		}
	}
	byStart := func(s []*Span) {
		sort.Slice(s, func(i, j int) bool { return s[i].Trace.Start.Before(s[j].Trace.Start) })
	}
	byStart(r.Roots)
	for _, n := range nodes {
		byStart(n.Children)
	}

	// Attribution and linkage from the clients' hedge lineages.
	attr := make(map[string]*Attribution)
	at := func(endpoint string) *Attribution {
		a, ok := attr[endpoint]
		if !ok {
			a = &Attribution{Endpoint: endpoint}
			attr[endpoint] = a
		}
		return a
	}
	var pathClient, pathAttempt, pathServer time.Duration
	for _, n := range nodes {
		tr := n.Trace
		if len(tr.Attempts) == 0 {
			continue
		}
		var win *obs.AttemptSpan
		for i := range tr.Attempts {
			a := &tr.Attempts[i]
			switch {
			case a.Won:
				win = a
				at(a.Endpoint).Wins++
				if a.Attempt > 1 {
					at(a.Endpoint).HedgeWins++
				}
			case a.Cancelled:
				at(a.Endpoint).Cancelled++
			}
			if a.Err != "" {
				at(a.Endpoint).Failures++
			}
		}
		if !tr.Accepted || win == nil {
			continue
		}
		r.ClientRequests++
		for _, srv := range serverByParent[win.SpanID] {
			if srv.Trace.TraceID != tr.TraceID {
				continue
			}
			r.Linked++
			pathClient += tr.Latency
			pathAttempt += win.Latency
			pathServer += srv.Trace.Latency
			break
		}
	}
	r.LinkRatio = 1
	if r.ClientRequests > 0 {
		r.LinkRatio = float64(r.Linked) / float64(r.ClientRequests)
	}
	if r.Linked > 0 {
		n := time.Duration(r.Linked)
		r.Path = CriticalPath{
			Requests:       r.Linked,
			ClientLatency:  pathClient / n,
			AttemptLatency: pathAttempt / n,
			ServerLatency:  pathServer / n,
		}
	}
	for _, a := range attr {
		r.Attribution = append(r.Attribution, *a)
	}
	sort.Slice(r.Attribution, func(i, j int) bool {
		return r.Attribution[i].Endpoint < r.Attribution[j].Endpoint
	})
	return r
}

// Validate reports whether the assembly could possibly be meaningful:
// ErrNoTraces when no source contributed a traced span, and
// ErrDisjointSources when multiple sources share no TraceID (exports
// from different runs, whose trace seeds never overlap). A valid report
// may still have a poor link ratio — that is a quality gate, not a
// validity one.
func (r *Report) Validate() error {
	if r.Spans == 0 {
		return ErrNoTraces
	}
	if r.Sources >= 2 && r.SharedTraceIDs == 0 {
		return fmt.Errorf("%w (%d sources, %d distinct traces; exports are from different runs)",
			ErrDisjointSources, r.Sources, r.TraceIDs)
	}
	return nil
}

// Depth returns the height of the tree rooted at s (1 for a leaf).
func (s *Span) Depth() int {
	max := 0
	for _, c := range s.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Size returns the number of spans in the tree rooted at s.
func (s *Span) Size() int {
	n := 1
	for _, c := range s.Children {
		n += c.Size()
	}
	return n
}

package assemble

import (
	"errors"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// fleetTraces fabricates one hedged request's exports: a caller span, a
// client request with a losing and a winning attempt, and per-replica
// server spans continuing the attempt spans.
func fleetTraces() (client, r1, r2 Source) {
	t0 := time.Unix(1000, 0)
	const (
		trace      = uint64(10)
		callerSpan = uint64(100)
		clientSpan = uint64(101)
		loseSpan   = uint64(102)
		winSpan    = uint64(103)
		r1Span     = uint64(104)
		r2Span     = uint64(105)
	)
	client = Source{Name: "client", Traces: []obs.Trace{
		{
			ID: 1, Executor: "caller", Start: t0, Latency: 12 * time.Millisecond,
			Accepted: true, TraceID: trace, SpanID: callerSpan,
		},
		{
			ID: 2, Executor: "via-r2", Start: t0.Add(time.Millisecond),
			Latency: 10 * time.Millisecond, Accepted: true,
			TraceID: trace, SpanID: clientSpan, ParentSpanID: callerSpan,
			Attempts: []obs.AttemptSpan{
				{Endpoint: "r1", SpanID: loseSpan, Attempt: 1, Latency: 9 * time.Millisecond, Cancelled: true},
				{Endpoint: "r2", SpanID: winSpan, Attempt: 2, Latency: 4 * time.Millisecond, Won: true},
			},
		},
	}}
	r1 = Source{Name: "r1", Traces: []obs.Trace{{
		ID: 3, Executor: "replica:r1", Start: t0.Add(2 * time.Millisecond),
		Latency: 8 * time.Millisecond, Outcome: "failed",
		TraceID: trace, SpanID: r1Span, ParentSpanID: loseSpan,
	}}}
	r2 = Source{Name: "r2", Traces: []obs.Trace{{
		ID: 4, Executor: "replica:r2", Start: t0.Add(6 * time.Millisecond),
		Latency: 3 * time.Millisecond, Outcome: "success", Accepted: true,
		TraceID: trace, SpanID: r2Span, ParentSpanID: winSpan,
	}}}
	return client, r1, r2
}

func TestAssembleLinksFleet(t *testing.T) {
	client, r1, r2 := fleetTraces()
	rep := Assemble(client, r1, r2)
	if rep.Spans != 4 || rep.TraceIDs != 1 {
		t.Fatalf("spans=%d traces=%d, want 4/1", rep.Spans, rep.TraceIDs)
	}
	if len(rep.Roots) != 1 {
		t.Fatalf("got %d roots, want 1 (one causal tree)", len(rep.Roots))
	}
	root := rep.Roots[0]
	if root.Trace.Executor != "caller" {
		t.Fatalf("root executor %q", root.Trace.Executor)
	}
	if root.Size() != 4 || root.Depth() != 3 {
		t.Fatalf("tree size=%d depth=%d, want 4/3", root.Size(), root.Depth())
	}
	// caller → client request → two replica spans via attempt spans.
	if len(root.Children) != 1 {
		t.Fatalf("caller has %d children", len(root.Children))
	}
	req := root.Children[0]
	if len(req.Children) != 2 {
		t.Fatalf("client request has %d children, want both replica spans", len(req.Children))
	}
	for _, c := range req.Children {
		if c.ViaAttempt == 0 {
			t.Fatalf("replica span %q not linked via attempt", c.Trace.Executor)
		}
	}
	if rep.ClientRequests != 1 || rep.Linked != 1 || rep.LinkRatio != 1 {
		t.Fatalf("linkage = %d/%d ratio %g", rep.Linked, rep.ClientRequests, rep.LinkRatio)
	}
	if rep.Path.ServerLatency != 3*time.Millisecond || rep.Path.AttemptLatency != 4*time.Millisecond {
		t.Fatalf("critical path = %+v", rep.Path)
	}
	want := map[string]Attribution{
		"r1": {Endpoint: "r1", Cancelled: 1},
		"r2": {Endpoint: "r2", Wins: 1, HedgeWins: 1},
	}
	for _, a := range rep.Attribution {
		if a != want[a.Endpoint] {
			t.Errorf("attribution %q = %+v, want %+v", a.Endpoint, a, want[a.Endpoint])
		}
	}
}

func TestAssembleCountsBrokenChains(t *testing.T) {
	client, r1, _ := fleetTraces()
	// Without r2's export the winning attempt has no server span: the
	// request is a client request but not linked.
	rep := Assemble(client, r1)
	if rep.ClientRequests != 1 || rep.Linked != 0 {
		t.Fatalf("linkage = %d/%d, want 0/1", rep.Linked, rep.ClientRequests)
	}
	if rep.LinkRatio != 0 {
		t.Fatalf("ratio = %g, want 0", rep.LinkRatio)
	}
}

func TestAssembleCrossTraceParentRejected(t *testing.T) {
	client, _, r2 := fleetTraces()
	// Corrupt the server span's TraceID: same parent span, different
	// trace — must not count as linked.
	r2.Traces[0].TraceID = 999
	rep := Assemble(client, r2)
	if rep.Linked != 0 {
		t.Fatal("cross-trace parent counted as linked")
	}
}

func TestAssembleIgnoresUntraced(t *testing.T) {
	rep := Assemble(Source{Name: "x", Traces: []obs.Trace{
		{ID: 1, Executor: "plain"}, // no trace identity
	}})
	if rep.Spans != 0 || len(rep.Roots) != 0 {
		t.Fatalf("untraced spans assembled: %+v", rep)
	}
	if rep.LinkRatio != 1 {
		t.Fatalf("empty report ratio = %g, want vacuous 1", rep.LinkRatio)
	}
}

func TestValidate(t *testing.T) {
	client, r1, r2 := fleetTraces()

	// A linked fleet validates: the trace is shared across sources.
	rep := Assemble(client, r1, r2)
	if err := rep.Validate(); err != nil {
		t.Fatalf("fleet Validate = %v", err)
	}
	if rep.Sources != 3 || rep.SharedTraceIDs != 1 {
		t.Fatalf("sources=%d shared=%d, want 3/1", rep.Sources, rep.SharedTraceIDs)
	}

	// No sources, or sources with no traced spans: ErrNoTraces.
	if err := Assemble().Validate(); !errors.Is(err, ErrNoTraces) {
		t.Fatalf("empty Validate = %v, want ErrNoTraces", err)
	}
	empty := Source{Name: "empty"}
	if err := Assemble(empty, empty).Validate(); !errors.Is(err, ErrNoTraces) {
		t.Fatalf("spanless Validate = %v, want ErrNoTraces", err)
	}

	// Two sources whose traces never overlap: exports from different
	// runs — ErrDisjointSources.
	other := r2
	other.Traces = []obs.Trace{{
		ID: 9, Executor: "replica:r2", Start: time.Unix(2000, 0),
		TraceID: 999, SpanID: 901, ParentSpanID: 900,
	}}
	if err := Assemble(client, other).Validate(); !errors.Is(err, ErrDisjointSources) {
		t.Fatalf("disjoint Validate = %v, want ErrDisjointSources", err)
	}

	// A single source is trivially self-consistent.
	if err := Assemble(client).Validate(); err != nil {
		t.Fatalf("single-source Validate = %v", err)
	}
}

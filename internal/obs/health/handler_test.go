package health

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

func TestHealthzOKAndDegraded(t *testing.T) {
	g := New(Config{Alpha: 0.5, DegradedBelow: 0.5})
	feed(g, "exec", "v", ".", 10)

	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	get := func() (int, Status) {
		t.Helper()
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	code, st := get()
	if code != http.StatusOK || st.Status != "ok" {
		t.Errorf("healthy: code=%d status=%q, want 200/ok", code, st.Status)
	}
	if len(st.Executors) != 1 || st.Executors[0].Executor != "exec" {
		t.Errorf("executors = %+v", st.Executors)
	}

	feed(g, "exec", "v", "x", 10)
	code, st = get()
	if code != http.StatusServiceUnavailable || st.Status != "degraded" {
		t.Errorf("degraded: code=%d status=%q, want 503/degraded", code, st.Status)
	}
}

func TestHealthzFaultClassInJSON(t *testing.T) {
	g := New(Config{})
	feed(g, "exec", "v", "x", 20)
	raw, err := json.Marshal(g.Status())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"fault_class": "bohrbug-like"`) &&
		!strings.Contains(string(raw), `"fault_class":"bohrbug-like"`) {
		t.Errorf("status JSON lacks named fault class: %s", raw)
	}
}

func TestPrometheusGauges(t *testing.T) {
	g := New(Config{})
	feed(g, "exec", "bad", "x", 20)
	feed(g, "exec", "good", ".", 20)
	var buf strings.Builder
	WritePrometheus(&buf, g)
	out := buf.String()
	for _, want := range []string{
		`redundancy_health_score{executor="exec"}`,
		`redundancy_variant_health_score{executor="exec",variant="good"} 1`,
		`redundancy_variant_fault_class{executor="exec",variant="bad",class="bohrbug-like"} 1`,
		`redundancy_variant_fault_class{executor="exec",variant="good",class="healthy"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Empty engine writes nothing.
	buf.Reset()
	WritePrometheus(&buf, New(Config{}))
	if buf.Len() != 0 {
		t.Errorf("empty engine wrote %q", buf.String())
	}
}

// TestHandlerConcurrentScrapeAndRecord hardens the full observation
// handler (metrics + traces + healthz extra) against concurrent scrapes
// while executors are recording; run under -race it is the concurrency
// gate of the endpoint surface.
func TestHandlerConcurrentScrapeAndRecord(t *testing.T) {
	collector := obs.NewCollector()
	traces := obs.NewTraceRecorder(32)
	engine := New(Config{})
	o := obs.Combine(collector, traces, engine)

	srv := httptest.NewServer(obs.Handler(collector, traces, engine.Extra()))
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%64 == 0 {
					runtime.Gosched() // let scrapers through
				}
				req := obs.NextRequestID()
				o.RequestStart("exec", req)
				o.VariantStart("exec", "v", req)
				var err error
				if i%5 == 0 {
					err = errBoom
				}
				o.VariantEnd("exec", "v", req, time.Microsecond, err)
				o.Adjudicated("exec", req, err == nil, err != nil)
				out := obs.OutcomeSuccess
				if err != nil {
					out = obs.OutcomeFailed
				}
				o.RequestEnd("exec", req, time.Microsecond, out)
			}
		}(w)
	}

	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 10; i++ {
				for _, path := range []string{"/metrics", "/vars", "/traces", "/healthz"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "redundancy_health_score") {
		t.Error("final /metrics scrape lacks health gauges")
	}
}

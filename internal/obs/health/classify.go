package health

import "encoding/json"

// FaultClass is the paper's Table 1 fault-class axis, as diagnosable
// from runtime evidence. The classifier works from the shape of a
// variant's outcome stream: deterministic repetition points at Bohrbugs,
// intermittence at Heisenbugs, and cure-by-rejuvenation at aging faults.
type FaultClass uint8

const (
	// ClassUnknown: not enough executions to diagnose.
	ClassUnknown FaultClass = iota
	// ClassHealthy: no observed failure.
	ClassHealthy
	// ClassBohrbug: failures repeat deterministically — the variant
	// (currently) fails on every execution, the signature of a Bohrbug
	// on the workload's input region.
	ClassBohrbug
	// ClassHeisenbug: failures are intermittent — passes and failures
	// alternate on comparable load, the signature of an
	// environment-dependent Heisenbug.
	ClassHeisenbug
	// ClassAging: failure runs end after a rejuvenation/rollback — the
	// signature of an aging fault (leaks, fragmentation, state decay).
	ClassAging
)

// String returns the report name of the class.
func (c FaultClass) String() string {
	switch c {
	case ClassHealthy:
		return "healthy"
	case ClassBohrbug:
		return "bohrbug-like"
	case ClassHeisenbug:
		return "heisenbug-like"
	case ClassAging:
		return "aging"
	default:
		return "unknown"
	}
}

// MarshalJSON exports the class by name.
func (c FaultClass) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON parses a class name written by MarshalJSON; unrecognized
// names decode as ClassUnknown.
func (c *FaultClass) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for _, k := range []FaultClass{ClassHealthy, ClassBohrbug, ClassHeisenbug, ClassAging} {
		if s == k.String() {
			*c = k
			return nil
		}
	}
	*c = ClassUnknown
	return nil
}

// Aging thresholds: how many rejuvenation recoveries the classifier
// demands before calling a variant aging, and how much later in an epoch
// failures must fall (on average) than successes. Intermittent failures
// under a rejuvenating executor also get the occasional lucky
// post-rollback success; requiring repetition and late-epoch clustering
// separates cure-by-rejuvenation from coincidence.
const (
	agingMinRecoveries = 2
	agingPositionRatio = 1.3
)

// classify maps a variant's accumulated evidence to a fault class.
// Precedence: aging evidence (rejuvenation repeatedly curing failing
// epochs, with failures clustering late in epochs) beats the
// deterministic signature, which beats intermittence — an aging variant
// looks deterministic at the end of each epoch, and a Bohrbug variant
// that once succeeded still shows transitions.
func (g *Engine) classify(v *variantHealth) FaultClass {
	if v.executions < uint64(g.cfg.MinSamples) {
		return ClassUnknown
	}
	if v.failures == 0 {
		return ClassHealthy
	}
	if successes := v.executions - v.failures; v.rejuvRecovers >= agingMinRecoveries && successes > 0 {
		meanFailPos := v.sumFailPos / float64(v.failures)
		meanSuccPos := v.sumSuccPos / float64(successes)
		if meanFailPos > agingPositionRatio*meanSuccPos {
			return ClassAging
		}
	}
	// Deterministic: (almost) every execution fails, or the variant is
	// deep inside a failure run right now.
	if float64(v.failures) >= 0.95*float64(v.executions) ||
		v.failStreak >= g.cfg.DeterministicStreak {
		return ClassBohrbug
	}
	return ClassHeisenbug
}

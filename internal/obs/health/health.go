// Package health turns the raw event stream of the observation layer
// into live diagnosis: per-executor and per-variant health scores, and a
// classification of observed failure behavior into the paper's fault
// classes (Bohrbugs — deterministic, repeat failures; Heisenbugs —
// intermittent, environment-dependent failures; aging — failures that
// accumulate with uptime and disappear after rejuvenation).
//
// The Engine subscribes as an obs.Observer (compose it with other
// observers via obs.Combine), maintains exponentially weighted moving
// averages of success, latency and adjudication losses, and keeps the
// per-variant outcome evidence the classifier needs. Downstream layers
// consume the scores:
//
//   - the metrics Handler exposes them on /healthz and as Prometheus
//     gauges (Engine.Extra);
//   - pattern executors reorder variants by health (the Engine implements
//     pattern.Ranker, see pattern.WithRanker), so sequential alternatives
//     try the healthiest variant first and hot spares prefer it;
//   - rejuv.HealthPolicy triggers rejuvenation when an executor's score
//     drops below a threshold (Engine.ScoreFunc).
//
// This closes the loop sketched by runtime-execution-profiling
// self-healing (arXiv:1203.5748): observation feeds diagnosis, diagnosis
// feeds the redundancy mechanisms that act.
package health

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// Config parameterizes the diagnosis engine. The zero value selects the
// documented defaults.
type Config struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; larger values react
	// faster. Default 0.1.
	Alpha float64
	// LatencyBudget is the latency above which a variant's score is
	// penalized proportionally (a variant twice over budget scores half).
	// Zero disables the latency penalty.
	LatencyBudget time.Duration
	// MinSamples is the number of executions below which a variant's
	// fault class stays ClassUnknown. Default 8.
	MinSamples int
	// DeterministicStreak is the consecutive-failure run length at which
	// a variant is flagged Bohrbug-like even if it succeeded earlier
	// (it is failing deterministically now). Default 8.
	DeterministicStreak int
	// DegradedBelow is the executor score under which /healthz reports
	// the system degraded (HTTP 503). Default 0.5.
	DegradedBelow float64
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.1
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.DeterministicStreak <= 0 {
		c.DeterministicStreak = 8
	}
	if c.DegradedBelow <= 0 {
		c.DegradedBelow = 0.5
	}
	return c
}

// ewma is an exponentially weighted moving average seeded by its first
// observation.
type ewma struct {
	value float64
	seen  bool
}

func (e *ewma) observe(alpha, x float64) {
	if !e.seen {
		e.value, e.seen = x, true
		return
	}
	e.value += alpha * (x - e.value)
}

// or returns the average, or fallback before the first observation.
func (e *ewma) or(fallback float64) float64 {
	if !e.seen {
		return fallback
	}
	return e.value
}

// variantHealth accumulates the per-variant evidence.
type variantHealth struct {
	name string

	success ewma // 1 per successful execution, 0 per failed one
	latency ewma // nanoseconds

	executions uint64
	failures   uint64
	// adjLosses counts adjudication losses that are not execution
	// failures: results rejected by an acceptance test or vote
	// (observed as ComponentDisabled events).
	adjLosses uint64

	// Classification evidence.
	transitions   uint64 // pass<->fail alternations in the outcome stream
	lastFailed    bool
	failStreak    int // current consecutive-failure run
	maxFailStreak int
	// Epoch (rejuvenation) evidence. An epoch is the span between two
	// Rollback events on the executor; epochPos is the variant's
	// execution count inside the current epoch, and the position sums
	// let the classifier test whether failures cluster late in epochs
	// (the aging signature).
	epochPos      uint64
	epochFailures uint64
	sumFailPos    float64
	sumSuccPos    float64
	// A rollback that ends an epoch containing failures arms the
	// variant: if its next execution succeeds, rejuvenation cured a
	// failing process (rejuvRecovers); if it fails again, rejuvenation
	// did not help (rejuvRelapses).
	rejuvArmed    bool
	rejuvRecovers uint64
	rejuvRelapses uint64
}

// executorHealth accumulates the per-executor evidence.
type executorHealth struct {
	name string

	accepted ewma // 1 per accepted request, 0 per failed one
	adjLoss  ewma // 1 per request with a detected (masked or fatal) failure
	latency  ewma // request latency, nanoseconds

	requests  uint64
	rollbacks uint64

	variants map[string]*variantHealth
}

func (e *executorHealth) variant(name string) *variantHealth {
	v, ok := e.variants[name]
	if !ok {
		v = &variantHealth{name: name}
		e.variants[name] = v
	}
	return v
}

// Engine is the diagnosis engine: an obs.Observer that converts the
// span stream into health scores and fault-class evidence. All methods
// are safe for concurrent use.
//
// Unlike obs.Collector the Engine takes a (short) mutex per event — it
// is a diagnosis layer, not a hot-path counter; attach it where insight
// is worth a lock, and rely on the nil-observer fast path where it is
// not.
type Engine struct {
	cfg Config

	// slo, when attached (AttachSLO), adds burn-rate state to /healthz.
	slo atomic.Pointer[obs.SLOTracker]

	mu    sync.Mutex
	execs map[string]*executorHealth
}

var _ obs.Observer = (*Engine)(nil)

// New returns an Engine with the given configuration (zero Config means
// defaults).
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), execs: make(map[string]*executorHealth)}
}

func (g *Engine) exec(name string) *executorHealth {
	e, ok := g.execs[name]
	if !ok {
		e = &executorHealth{name: name, variants: make(map[string]*variantHealth)}
		g.execs[name] = e
	}
	return e
}

// RequestStart implements obs.Observer.
func (g *Engine) RequestStart(executor string, _ uint64) {
	g.mu.Lock()
	g.exec(executor).requests++
	g.mu.Unlock()
}

// RequestEnd implements obs.Observer.
func (g *Engine) RequestEnd(executor string, _ uint64, latency time.Duration, outcome obs.Outcome) {
	g.mu.Lock()
	e := g.exec(executor)
	e.latency.observe(g.cfg.Alpha, float64(latency))
	accepted := 0.0
	if outcome != obs.OutcomeFailed {
		accepted = 1
	}
	e.accepted.observe(g.cfg.Alpha, accepted)
	g.mu.Unlock()
}

// VariantStart implements obs.Observer.
func (g *Engine) VariantStart(string, string, uint64) {}

// VariantEnd implements obs.Observer: it feeds the variant's outcome
// stream, which is the classifier's main evidence.
func (g *Engine) VariantEnd(executor, variant string, _ uint64, latency time.Duration, err error) {
	g.mu.Lock()
	v := g.exec(executor).variant(variant)
	v.executions++
	v.epochPos++
	v.latency.observe(g.cfg.Alpha, float64(latency))
	failed := err != nil
	if failed {
		v.failures++
		v.epochFailures++
		v.sumFailPos += float64(v.epochPos)
		v.failStreak++
		if v.failStreak > v.maxFailStreak {
			v.maxFailStreak = v.failStreak
		}
		if v.rejuvArmed {
			v.rejuvRelapses++
		}
		v.success.observe(g.cfg.Alpha, 0)
	} else {
		v.sumSuccPos += float64(v.epochPos)
		if v.rejuvArmed {
			v.rejuvRecovers++
		}
		v.failStreak = 0
		v.success.observe(g.cfg.Alpha, 1)
	}
	if v.executions > 1 && failed != v.lastFailed {
		v.transitions++
	}
	v.lastFailed = failed
	v.rejuvArmed = false
	g.mu.Unlock()
}

// Adjudicated implements obs.Observer.
func (g *Engine) Adjudicated(executor string, _ uint64, _, failureDetected bool) {
	g.mu.Lock()
	loss := 0.0
	if failureDetected {
		loss = 1
	}
	g.exec(executor).adjLoss.observe(g.cfg.Alpha, loss)
	g.mu.Unlock()
}

// ComponentDisabled implements obs.Observer: a disablement is an
// adjudication loss for the variant (its result was rejected even if the
// execution itself returned no error) and scores like a failure.
func (g *Engine) ComponentDisabled(executor, component string, _ uint64) {
	g.mu.Lock()
	v := g.exec(executor).variant(component)
	v.adjLosses++
	v.success.observe(g.cfg.Alpha, 0)
	g.mu.Unlock()
}

// RetryAttempt implements obs.Observer.
func (g *Engine) RetryAttempt(string, string, uint64, int) {}

// Rollback implements obs.Observer: a rollback on an executor closes
// every variant's epoch and arms the recovery-after-rejuvenation
// detector for variants that failed during the epoch — if such a variant
// succeeds next, rejuvenation cured it, which is aging evidence.
func (g *Engine) Rollback(executor string, _ uint64) {
	g.mu.Lock()
	e := g.exec(executor)
	e.rollbacks++
	for _, v := range e.variants {
		v.rejuvArmed = v.epochFailures > 0
		v.epochFailures = 0
		v.epochPos = 0
	}
	g.mu.Unlock()
}

// latencyFactor maps a latency EWMA to a score multiplier in (0, 1].
func (g *Engine) latencyFactor(l ewma) float64 {
	b := float64(g.cfg.LatencyBudget)
	if b <= 0 || !l.seen || l.value <= b {
		return 1
	}
	return b / l.value
}

func (g *Engine) variantScore(v *variantHealth) float64 {
	return v.success.or(1) * g.latencyFactor(v.latency)
}

// executorScore combines acceptance, adjudication losses, and latency:
// a masked failure is not free — it costs variant budget — so the loss
// EWMA discounts the score at half weight.
func (g *Engine) executorScore(e *executorHealth) float64 {
	return e.accepted.or(1) * (1 - 0.5*e.adjLoss.or(0)) * g.latencyFactor(e.latency)
}

// VariantHealth is a point-in-time copy of one variant's diagnosis.
type VariantHealth struct {
	Variant string `json:"variant"`
	// Score is the health score in [0, 1]; unseen variants score 1.
	Score float64 `json:"score"`
	// SuccessRate is the EWMA of execution outcomes (1 = all recent
	// executions succeeded).
	SuccessRate float64       `json:"success_ewma"`
	LatencyEWMA time.Duration `json:"latency_ewma_ns"`
	Executions  uint64        `json:"executions"`
	Failures    uint64        `json:"failures"`
	// AdjudicationLosses counts results rejected by adjudication without
	// an execution error (component disablements).
	AdjudicationLosses uint64 `json:"adjudication_losses"`
	// Transitions counts pass<->fail alternations; FailStreak is the
	// current and MaxFailStreak the longest consecutive-failure run;
	// RejuvenationRecoveries counts failing epochs cured by a rollback
	// and RejuvenationRelapses rollbacks after which the variant kept
	// failing.
	Transitions            uint64 `json:"transitions"`
	FailStreak             int    `json:"fail_streak"`
	MaxFailStreak          int    `json:"max_fail_streak"`
	RejuvenationRecoveries uint64 `json:"rejuvenation_recoveries"`
	RejuvenationRelapses   uint64 `json:"rejuvenation_relapses"`
	// Class is the suspected fault class given the evidence so far.
	Class FaultClass `json:"fault_class"`
}

// ExecutorHealth is a point-in-time copy of one executor's diagnosis.
type ExecutorHealth struct {
	Executor string `json:"executor"`
	// Score is the health score in [0, 1].
	Score float64 `json:"score"`
	// AcceptRate is the EWMA of request acceptance; LossRate the EWMA of
	// requests on which a variant failure was detected.
	AcceptRate  float64         `json:"accept_ewma"`
	LossRate    float64         `json:"adjudication_loss_ewma"`
	LatencyEWMA time.Duration   `json:"latency_ewma_ns"`
	Requests    uint64          `json:"requests"`
	Rollbacks   uint64          `json:"rollbacks"`
	Variants    []VariantHealth `json:"variants,omitempty"`
}

// Snapshot returns the current diagnosis for every observed executor,
// sorted by executor name (variants by variant name).
func (g *Engine) Snapshot() []ExecutorHealth {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ExecutorHealth, 0, len(g.execs))
	for _, e := range g.execs {
		s := ExecutorHealth{
			Executor:    e.name,
			Score:       g.executorScore(e),
			AcceptRate:  e.accepted.or(1),
			LossRate:    e.adjLoss.or(0),
			LatencyEWMA: time.Duration(e.latency.or(0)),
			Requests:    e.requests,
			Rollbacks:   e.rollbacks,
		}
		for _, v := range e.variants {
			s.Variants = append(s.Variants, VariantHealth{
				Variant:                v.name,
				Score:                  g.variantScore(v),
				SuccessRate:            v.success.or(1),
				LatencyEWMA:            time.Duration(v.latency.or(0)),
				Executions:             v.executions,
				Failures:               v.failures,
				AdjudicationLosses:     v.adjLosses,
				Transitions:            v.transitions,
				FailStreak:             v.failStreak,
				MaxFailStreak:          v.maxFailStreak,
				RejuvenationRecoveries: v.rejuvRecovers,
				RejuvenationRelapses:   v.rejuvRelapses,
				Class:                  g.classify(v),
			})
		}
		sort.Slice(s.Variants, func(i, j int) bool { return s.Variants[i].Variant < s.Variants[j].Variant })
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Executor < out[j].Executor })
	return out
}

// ExecutorScore returns the executor's current health score; executors
// never observed score an optimistic 1.
func (g *Engine) ExecutorScore(executor string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.execs[executor]
	if !ok {
		return 1
	}
	return g.executorScore(e)
}

// VariantScore returns a variant's current health score; pairs never
// observed score an optimistic 1.
func (g *Engine) VariantScore(executor, variant string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.execs[executor]
	if !ok {
		return 1
	}
	v, ok := e.variants[variant]
	if !ok {
		return 1
	}
	return g.variantScore(v)
}

// ScoreFunc returns a closure reporting the executor's live score; it is
// the natural Score source for rejuv.HealthPolicy.
func (g *Engine) ScoreFunc(executor string) func() float64 {
	return func() float64 { return g.ExecutorScore(executor) }
}

// Rank orders variant names by descending health score under the given
// executor (ties and unseen variants keep their given order). It
// implements the pattern executors' Ranker contract, so an Engine can be
// attached directly with pattern.WithRanker.
func (g *Engine) Rank(executor string, names []string) []string {
	out := make([]string, len(names))
	copy(out, names)
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.execs[executor]
	if !ok {
		return out
	}
	score := func(name string) float64 {
		if v, ok := e.variants[name]; ok {
			return g.variantScore(v)
		}
		return 1
	}
	sort.SliceStable(out, func(i, j int) bool { return score(out[i]) > score(out[j]) })
	return out
}

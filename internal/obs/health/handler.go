package health

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// Status is the top-level /healthz document.
type Status struct {
	// Status is "ok" or "degraded" (some executor scored below the
	// configured threshold, or an attached SLO tracker's multiwindow
	// burn-rate alert is firing).
	Status string `json:"status"`
	// DegradedBelow echoes the threshold applied.
	DegradedBelow float64 `json:"degraded_below"`
	// Executors is the full diagnosis snapshot.
	Executors []ExecutorHealth `json:"executors"`
	// SLO is the per-executor burn-rate state of the attached SLO
	// tracker (absent when none is attached — see AttachSLO).
	SLO []obs.SLOStatus `json:"slo,omitempty"`
}

// AttachSLO surfaces an SLO tracker's burn-rate state on /healthz: the
// document gains an "slo" section and flips to degraded (HTTP 503)
// while any executor's multiwindow burn-rate alert fires. Safe to call
// concurrently with serving; a nil tracker detaches.
func (g *Engine) AttachSLO(s *obs.SLOTracker) {
	g.slo.Store(s)
}

// Status returns the current /healthz document.
func (g *Engine) Status() Status {
	snap := g.Snapshot()
	st := Status{Status: "ok", DegradedBelow: g.cfg.DegradedBelow, Executors: snap}
	for _, e := range snap {
		if e.Score < g.cfg.DegradedBelow {
			st.Status = "degraded"
			break
		}
	}
	if s := g.slo.Load(); s != nil {
		st.SLO = s.Snapshot()
		for _, e := range st.SLO {
			if e.Breaching {
				st.Status = "degraded"
				break
			}
		}
	}
	return st
}

// Handler returns the /healthz endpoint: the diagnosis snapshot as JSON,
// served with HTTP 200 when every executor scores at or above the
// degradation threshold and 503 otherwise (so the endpoint doubles as a
// load-balancer health check).
func (g *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		st := g.Status()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if st.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}

// Extra packages the engine for obs.Handler: it mounts /healthz and
// appends the health gauges to the /metrics exposition:
//
//	h := obs.Handler(collector, traces, engine.Extra())
func (g *Engine) Extra() obs.Extra {
	return obs.Extra{
		Path:       "/healthz",
		Handler:    g.Handler(),
		Prometheus: func(w io.Writer) { WritePrometheus(w, g) },
	}
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// WritePrometheus writes the engine's scores and fault-class calls in
// the Prometheus text exposition format.
func WritePrometheus(w io.Writer, g *Engine) {
	if g == nil {
		return
	}
	snap := g.Snapshot()
	if len(snap) == 0 {
		return
	}
	fmt.Fprint(w, "# HELP redundancy_health_score Executor health score (EWMA composite, 1 = healthy).\n")
	fmt.Fprint(w, "# TYPE redundancy_health_score gauge\n")
	for _, e := range snap {
		fmt.Fprintf(w, "redundancy_health_score{executor=%q} %g\n", escapeLabel(e.Executor), e.Score)
	}
	fmt.Fprint(w, "# HELP redundancy_variant_health_score Variant health score (EWMA composite, 1 = healthy).\n")
	fmt.Fprint(w, "# TYPE redundancy_variant_health_score gauge\n")
	for _, e := range snap {
		for _, v := range e.Variants {
			fmt.Fprintf(w, "redundancy_variant_health_score{executor=%q,variant=%q} %g\n",
				escapeLabel(e.Executor), escapeLabel(v.Variant), v.Score)
		}
	}
	fmt.Fprint(w, "# HELP redundancy_variant_fault_class Suspected fault class per variant (info-style gauge, value 1).\n")
	fmt.Fprint(w, "# TYPE redundancy_variant_fault_class gauge\n")
	for _, e := range snap {
		for _, v := range e.Variants {
			fmt.Fprintf(w, "redundancy_variant_fault_class{executor=%q,variant=%q,class=%q} 1\n",
				escapeLabel(e.Executor), escapeLabel(v.Variant), v.Class)
		}
	}
}

package health

import (
	"encoding/json"
	"errors"
	"io"
	"sort"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// Replay feeds recorded traces through the engine as if they were
// observed live, in chronological order (traces are sorted by request
// ID, which is monotonic within a process). It is the offline half of
// the diagnosis engine: export a TraceRecorder ring (faultsim/
// experiments -trace-out, or the /traces endpoint) and replay it to get
// the same scores and fault-class calls forensically.
//
// Event ordering inside one trace is approximated: a trace stores
// recovery events separately from variant spans, so rollbacks are
// replayed before the spans (matching the rejuvenate-then-serve order of
// the rejuvenator and the rollback-then-alternate order of recovery
// blocks) and component disablements after them (matching parallel
// selection, which disables after adjudication).
func Replay(g *Engine, traces []obs.Trace) {
	ordered := make([]obs.Trace, len(traces))
	copy(ordered, traces)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, tr := range ordered {
		g.RequestStart(tr.Executor, tr.ID)
		for _, ev := range tr.Events {
			switch ev.Kind {
			case "rollback":
				g.Rollback(tr.Executor, tr.ID)
			case "retry":
				g.RetryAttempt(tr.Executor, ev.Detail, tr.ID, 0)
			}
		}
		for _, span := range tr.Variants {
			var err error
			if span.Err != "" {
				err = errors.New(span.Err)
			}
			g.VariantEnd(tr.Executor, span.Variant, tr.ID, span.Latency, err)
		}
		for _, ev := range tr.Events {
			if ev.Kind == "component-disabled" {
				g.ComponentDisabled(tr.Executor, ev.Detail, tr.ID)
			}
		}
		g.Adjudicated(tr.Executor, tr.ID, tr.Accepted, tr.FailureDetected)
		g.RequestEnd(tr.Executor, tr.ID, tr.Latency, parseOutcome(tr.Outcome))
	}
}

// parseOutcome maps an exported outcome name back to the enum.
func parseOutcome(s string) obs.Outcome {
	switch s {
	case obs.OutcomeSuccess.String():
		return obs.OutcomeSuccess
	case obs.OutcomeMasked.String():
		return obs.OutcomeMasked
	default:
		return obs.OutcomeFailed
	}
}

// ReadTraces decodes a TraceRecorder JSON export (a JSON array of
// traces, as written by TraceRecorder.WriteJSON or served on /traces).
func ReadTraces(r io.Reader) ([]obs.Trace, error) {
	var traces []obs.Trace
	if err := json.NewDecoder(r).Decode(&traces); err != nil {
		return nil, err
	}
	return traces, nil
}

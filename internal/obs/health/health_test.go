package health

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

var errBoom = errors.New("boom")

// feed pushes n variant executions with the given failure pattern
// (pattern[i%len] == 'x' fails) through one executor/variant pair.
func feed(g *Engine, executor, variant, pattern string, n int) {
	for i := 0; i < n; i++ {
		req := obs.NextRequestID()
		g.RequestStart(executor, req)
		var err error
		failed := pattern[i%len(pattern)] == 'x'
		if failed {
			err = errBoom
		}
		g.VariantEnd(executor, variant, req, time.Millisecond, err)
		g.Adjudicated(executor, req, !failed, failed)
		out := obs.OutcomeSuccess
		if failed {
			out = obs.OutcomeFailed
		}
		g.RequestEnd(executor, req, time.Millisecond, out)
	}
}

func variantHealthOf(t *testing.T, g *Engine, executor, variant string) VariantHealth {
	t.Helper()
	for _, e := range g.Snapshot() {
		if e.Executor != executor {
			continue
		}
		for _, v := range e.Variants {
			if v.Variant == variant {
				return v
			}
		}
	}
	t.Fatalf("variant %s/%s not in snapshot", executor, variant)
	return VariantHealth{}
}

func TestScoresDegradeAndRecover(t *testing.T) {
	g := New(Config{Alpha: 0.3})
	feed(g, "exec", "v1", ".", 20)
	if s := g.ExecutorScore("exec"); s != 1 {
		t.Errorf("all-success executor score = %g, want 1", s)
	}
	if s := g.VariantScore("exec", "v1"); s != 1 {
		t.Errorf("all-success variant score = %g, want 1", s)
	}
	feed(g, "exec", "v1", "x", 10)
	if s := g.VariantScore("exec", "v1"); s > 0.2 {
		t.Errorf("failing variant score = %g, want < 0.2", s)
	}
	if s := g.ExecutorScore("exec"); s > 0.2 {
		t.Errorf("failing executor score = %g, want < 0.2", s)
	}
	feed(g, "exec", "v1", ".", 30)
	if s := g.VariantScore("exec", "v1"); s < 0.9 {
		t.Errorf("recovered variant score = %g, want > 0.9", s)
	}
}

func TestUnseenScoresOptimistic(t *testing.T) {
	g := New(Config{})
	if g.ExecutorScore("nope") != 1 || g.VariantScore("nope", "v") != 1 {
		t.Error("unseen executor/variant should score 1")
	}
	feed(g, "exec", "v1", ".", 5)
	if g.VariantScore("exec", "v9") != 1 {
		t.Error("unseen variant under a seen executor should score 1")
	}
}

func TestLatencyBudgetPenalty(t *testing.T) {
	g := New(Config{LatencyBudget: time.Millisecond})
	for i := 0; i < 20; i++ {
		g.VariantEnd("exec", "slow", obs.NextRequestID(), 4*time.Millisecond, nil)
		g.VariantEnd("exec", "fast", obs.NextRequestID(), 100*time.Microsecond, nil)
	}
	slow, fast := g.VariantScore("exec", "slow"), g.VariantScore("exec", "fast")
	if fast != 1 {
		t.Errorf("within-budget variant score = %g, want 1", fast)
	}
	if slow > 0.5 {
		t.Errorf("4x-over-budget variant score = %g, want <= 0.5", slow)
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		name    string
		pattern string
		n       int
		want    FaultClass
	}{
		{"insufficient samples", "x", 3, ClassUnknown},
		{"healthy", ".", 50, ClassHealthy},
		{"deterministic failure", "x", 50, ClassBohrbug},
		{"intermittent", "..x...x.x.", 60, ClassHeisenbug},
		{"became deterministic", "....xxxxxxxxxx", 14, ClassBohrbug},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := New(Config{})
			feed(g, "exec", "v", tc.pattern, tc.n)
			if got := variantHealthOf(t, g, "exec", "v").Class; got != tc.want {
				t.Errorf("class = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestClassificationAging(t *testing.T) {
	g := New(Config{})
	// Two epochs: degrade into a failure run, rejuvenate (rollback),
	// recover — the aging signature.
	for epoch := 0; epoch < 2; epoch++ {
		feed(g, "rejuvenator", "v", ".", 10)
		feed(g, "rejuvenator", "v", "x", 4)
		g.Rollback("rejuvenator", obs.NextRequestID())
	}
	feed(g, "rejuvenator", "v", ".", 10)
	v := variantHealthOf(t, g, "rejuvenator", "v")
	if v.Class != ClassAging {
		t.Errorf("class = %v, want %v (recoveries=%d)", v.Class, ClassAging, v.RejuvenationRecoveries)
	}
	if v.RejuvenationRecoveries != 2 {
		t.Errorf("rejuvenation recoveries = %d, want 2", v.RejuvenationRecoveries)
	}
}

func TestRollbackWithoutFailureRunIsNotAging(t *testing.T) {
	g := New(Config{})
	feed(g, "exec", "v", ".", 10)
	g.Rollback("exec", obs.NextRequestID())
	feed(g, "exec", "v", "..x.", 40)
	if got := variantHealthOf(t, g, "exec", "v").Class; got != ClassHeisenbug {
		t.Errorf("class = %v, want %v", got, ClassHeisenbug)
	}
}

func TestComponentDisabledCountsAsAdjudicationLoss(t *testing.T) {
	g := New(Config{Alpha: 0.5})
	feed(g, "parallel-selection", "v", ".", 4)
	for i := 0; i < 6; i++ {
		g.ComponentDisabled("parallel-selection", "v", obs.NextRequestID())
	}
	v := variantHealthOf(t, g, "parallel-selection", "v")
	if v.AdjudicationLosses != 6 {
		t.Errorf("adjudication losses = %d, want 6", v.AdjudicationLosses)
	}
	if v.Score > 0.2 {
		t.Errorf("score after repeated disablement = %g, want < 0.2", v.Score)
	}
}

func TestRankOrdersByHealth(t *testing.T) {
	g := New(Config{Alpha: 0.3})
	feed(g, "sequential-alternatives", "bad", "x", 20)
	feed(g, "sequential-alternatives", "good", ".", 20)
	feed(g, "sequential-alternatives", "meh", "..x.", 40)
	got := g.Rank("sequential-alternatives", []string{"bad", "meh", "good", "new"})
	// "new" is unseen and scores an optimistic 1, tying with "good";
	// stable sort keeps the given order among ties.
	want := []string{"good", "new", "meh", "bad"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank = %v, want %v", got, want)
		}
	}
	// Unknown executor: order preserved.
	names := []string{"c", "a", "b"}
	if got := g.Rank("nope", names); got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Errorf("rank under unknown executor = %v, want given order", got)
	}
}

func TestScoreFunc(t *testing.T) {
	g := New(Config{Alpha: 0.5})
	f := g.ScoreFunc("exec")
	if f() != 1 {
		t.Error("score func before events should report 1")
	}
	feed(g, "exec", "v", "x", 10)
	if f() > 0.2 {
		t.Errorf("score func after failures = %g, want < 0.2", f())
	}
}

func TestReplayMatchesLive(t *testing.T) {
	rec := obs.NewTraceRecorder(256)
	live := New(Config{})
	o := obs.Combine(rec, live)
	for i := 0; i < 40; i++ {
		req := obs.NextRequestID()
		o.RequestStart("exec", req)
		var err error
		failed := i%3 == 0
		if failed {
			err = errBoom
		}
		o.VariantStart("exec", "v", req)
		o.VariantEnd("exec", "v", req, time.Millisecond, err)
		o.Adjudicated("exec", req, !failed, failed)
		out := obs.OutcomeSuccess
		if failed {
			out = obs.OutcomeFailed
		}
		o.RequestEnd("exec", req, time.Millisecond, out)
	}

	var buf strings.Builder
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	traces, err := ReadTraces(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	replayed := New(Config{})
	Replay(replayed, traces)

	lv := variantHealthOf(t, live, "exec", "v")
	rv := variantHealthOf(t, replayed, "exec", "v")
	if lv.Executions != rv.Executions || lv.Failures != rv.Failures ||
		lv.Transitions != rv.Transitions || lv.Class != rv.Class {
		t.Errorf("replayed diagnosis %+v does not match live %+v", rv, lv)
	}
	if diff := lv.Score - rv.Score; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("replayed score %g != live score %g", rv.Score, lv.Score)
	}
}

func TestReplayAgingFromTraces(t *testing.T) {
	// Synthesize rejuvenator-style traces directly: failure run, then a
	// request carrying a rollback event followed by a success.
	var traces []obs.Trace
	id := uint64(0)
	add := func(err string, rollback bool) {
		id++
		tr := obs.Trace{ID: id, Executor: "rejuvenator", Outcome: "success", Accepted: true}
		if rollback {
			tr.Events = append(tr.Events, obs.TraceEvent{Kind: "rollback"})
		}
		span := obs.VariantSpan{Variant: "v", Latency: time.Millisecond, Err: err}
		if err != "" {
			tr.Outcome = "failed"
			tr.Accepted = false
			tr.FailureDetected = true
		}
		tr.Variants = []obs.VariantSpan{span}
		traces = append(traces, tr)
	}
	for cycle := 0; cycle < 2; cycle++ {
		for i := 0; i < 8; i++ {
			add("", false)
		}
		for i := 0; i < 3; i++ {
			add("aging failure", false)
		}
		add("", true) // rejuvenation cures the run
	}
	for i := 0; i < 4; i++ {
		add("", false)
	}
	g := New(Config{})
	Replay(g, traces)
	if got := variantHealthOf(t, g, "rejuvenator", "v").Class; got != ClassAging {
		t.Errorf("class = %v, want %v", got, ClassAging)
	}
}

func TestSnapshotConcurrentWithEvents(t *testing.T) {
	g := New(Config{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			feed(g, "exec", fmt.Sprintf("v%d", w), "..x.", 200)
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for {
		select {
		case <-done:
			if n := len(g.Snapshot()[0].Variants); n != 4 {
				t.Errorf("variants observed = %d, want 4", n)
			}
			return
		default:
			g.Snapshot()
			g.Rank("exec", []string{"v0", "v1", "v2", "v3"})
		}
	}
}

func BenchmarkEngineEvent(b *testing.B) {
	g := New(Config{})
	req := obs.NextRequestID()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.VariantEnd("exec", "v", req, time.Millisecond, nil)
	}
}

package obs

// Recovery events extend the observation layer with the crash-recovery
// vocabulary (internal/checkpoint's durable store and internal/supervise's
// supervision tree): checkpoints taken, WAL replays after a restart,
// supervised process restarts with their measured recovery time, and
// restart-intensity escalations.
//
// Like the resilience-policy events (policy.go), the recovery events are
// an *optional* extension of Observer so existing observers keep
// compiling unchanged: an observer that wants them additionally
// implements RecoveryObserver, and emitters route events through the
// Emit* helpers, which type-assert and fan out through combined
// observers. The built-in Collector implements the extension and feeds
// an MTTR histogram from the ProcessRestarted downtime.

import "time"

// RecoveryObserver is the optional Observer extension receiving
// crash-recovery events. Observers implement it in addition to Observer;
// emitters must route events through the Emit* helpers so that combined
// observers (Combine) fan the events out to every member that implements
// the extension.
type RecoveryObserver interface {
	// CheckpointTaken reports that component durably committed a snapshot
	// covering all operations up to and including seq; bytes is the
	// snapshot's encoded size.
	CheckpointTaken(component string, seq uint64, bytes int)
	// WALReplayed reports a completed recovery replay for component:
	// records operations were re-applied on top of the restored snapshot,
	// and truncated bytes of torn tail were discarded from the log.
	WALReplayed(component string, records int, truncated int64)
	// ProcessRestarted reports that a supervisor restarted child under
	// executor (the supervisor name); restarts is the child's cumulative
	// restart count and downtime the measured failure-to-ready recovery
	// time (the MTTR sample).
	ProcessRestarted(executor, child string, restarts int, downtime time.Duration)
	// EscalationRaised reports that executor (the supervisor) exceeded its
	// restart-intensity window on child and escalated the failure to its
	// parent instead of restarting again.
	EscalationRaised(executor, child string)
}

// EmitCheckpointTaken delivers a checkpoint event to o if it (or any
// member of a combined observer) implements RecoveryObserver. Nil
// observers are ignored.
func EmitCheckpointTaken(o Observer, component string, seq uint64, bytes int) {
	if r, ok := o.(RecoveryObserver); ok {
		r.CheckpointTaken(component, seq, bytes)
	}
}

// EmitWALReplayed delivers a replay event to o if it implements
// RecoveryObserver. Nil observers are ignored.
func EmitWALReplayed(o Observer, component string, records int, truncated int64) {
	if r, ok := o.(RecoveryObserver); ok {
		r.WALReplayed(component, records, truncated)
	}
}

// EmitProcessRestarted delivers a restart event to o if it implements
// RecoveryObserver. Nil observers are ignored.
func EmitProcessRestarted(o Observer, executor, child string, restarts int, downtime time.Duration) {
	if r, ok := o.(RecoveryObserver); ok {
		r.ProcessRestarted(executor, child, restarts, downtime)
	}
}

// EmitEscalationRaised delivers an escalation event to o if it implements
// RecoveryObserver. Nil observers are ignored.
func EmitEscalationRaised(o Observer, executor, child string) {
	if r, ok := o.(RecoveryObserver); ok {
		r.EscalationRaised(executor, child)
	}
}

// CheckpointTaken implements RecoveryObserver for Nop.
func (Nop) CheckpointTaken(string, uint64, int) {}

// WALReplayed implements RecoveryObserver for Nop.
func (Nop) WALReplayed(string, int, int64) {}

// ProcessRestarted implements RecoveryObserver for Nop.
func (Nop) ProcessRestarted(string, string, int, time.Duration) {}

// EscalationRaised implements RecoveryObserver for Nop.
func (Nop) EscalationRaised(string, string) {}

var _ RecoveryObserver = Nop{}

// CheckpointTaken implements RecoveryObserver: the event reaches every
// member that implements the extension.
func (m multi) CheckpointTaken(component string, seq uint64, bytes int) {
	for _, o := range m {
		if r, ok := o.(RecoveryObserver); ok {
			r.CheckpointTaken(component, seq, bytes)
		}
	}
}

// WALReplayed implements RecoveryObserver.
func (m multi) WALReplayed(component string, records int, truncated int64) {
	for _, o := range m {
		if r, ok := o.(RecoveryObserver); ok {
			r.WALReplayed(component, records, truncated)
		}
	}
}

// ProcessRestarted implements RecoveryObserver.
func (m multi) ProcessRestarted(executor, child string, restarts int, downtime time.Duration) {
	for _, o := range m {
		if r, ok := o.(RecoveryObserver); ok {
			r.ProcessRestarted(executor, child, restarts, downtime)
		}
	}
}

// EscalationRaised implements RecoveryObserver.
func (m multi) EscalationRaised(executor, child string) {
	for _, o := range m {
		if r, ok := o.(RecoveryObserver); ok {
			r.EscalationRaised(executor, child)
		}
	}
}

var _ RecoveryObserver = multi(nil)

// CheckpointTaken implements RecoveryObserver: the Collector counts
// checkpoints per component (exposed under the executor dimension, since
// a durable store is the state substrate of exactly one component).
func (c *Collector) CheckpointTaken(component string, _ uint64, _ int) {
	c.exec(component).checkpoints.Add(1)
}

// WALReplayed implements RecoveryObserver.
func (c *Collector) WALReplayed(component string, _ int, _ int64) {
	c.exec(component).walReplays.Add(1)
}

// ProcessRestarted implements RecoveryObserver: the downtime feeds the
// supervisor's MTTR histogram, the source of the p50/p99 recovery-time
// quantiles on the metrics endpoint.
func (c *Collector) ProcessRestarted(executor, _ string, _ int, downtime time.Duration) {
	e := c.exec(executor)
	e.restarts.Add(1)
	e.mttr.Observe(downtime)
}

// EscalationRaised implements RecoveryObserver.
func (c *Collector) EscalationRaised(executor, _ string) {
	c.exec(executor).escalations.Add(1)
}

var _ RecoveryObserver = (*Collector)(nil)

// CheckpointTaken implements RecoveryObserver. Recovery events are not
// bound to one request, so the trace ring has nothing to attach them to;
// the Collector keeps the counts.
func (t *TraceRecorder) CheckpointTaken(string, uint64, int) {}

// WALReplayed implements RecoveryObserver.
func (t *TraceRecorder) WALReplayed(string, int, int64) {}

// ProcessRestarted implements RecoveryObserver.
func (t *TraceRecorder) ProcessRestarted(string, string, int, time.Duration) {}

// EscalationRaised implements RecoveryObserver.
func (t *TraceRecorder) EscalationRaised(string, string) {}

var _ RecoveryObserver = (*TraceRecorder)(nil)

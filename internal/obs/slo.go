package obs

// SLO burn-rate tracking. An SLOTracker subscribes to the observation
// stream like any Observer and, per executor, measures how fast the
// error budget of an availability/latency objective is being spent,
// over two sliding windows (a fast window that reacts to incidents and
// a slow window that filters noise — the multiwindow burn-rate alerting
// discipline of the Google SRE workbook). The burn rate is the observed
// error ratio divided by the budget (1 - target): burn 1 means the
// budget is spent exactly at the sustainable rate, burn 14.4 on a
// 99.9% objective means the month's budget is gone in two days.
//
// The gauges are exported via Prometheus on /metrics, as JSON on /slo
// (Extra), and surfaced on /healthz when attached to the health engine
// (health.Engine.AttachSLO) — the actuation signal the ROADMAP's
// autonomic control plane acts on.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// SLObjective is one executor's service-level objective.
type SLObjective struct {
	// Target is the availability objective in (0, 1), e.g. 0.999.
	// Zero selects the tracker's default.
	Target float64 `json:"target"`
	// Latency, when non-zero, is the latency objective: a request slower
	// than this counts against the error budget even when it succeeded.
	Latency time.Duration `json:"latency_ns,omitempty"`
}

// SLOConfig parameterizes a tracker. The zero value selects the
// documented defaults.
type SLOConfig struct {
	// Default is the objective applied to every executor without a
	// PerExecutor entry. A zero Target means 0.999.
	Default SLObjective
	// PerExecutor overrides the objective for named executors.
	PerExecutor map[string]SLObjective
	// FastWindow and SlowWindow are the two burn-rate windows.
	// Defaults: 5 minutes and 1 hour.
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurnThreshold and SlowBurnThreshold are the alert thresholds
	// per window. Defaults: 14.4 and 6 (the SRE workbook's page-worthy
	// budget burns for 5m/1h windows on a 30-day objective).
	FastBurnThreshold float64
	SlowBurnThreshold float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Default.Target <= 0 || c.Default.Target >= 1 {
		c.Default.Target = 0.999
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.FastBurnThreshold <= 0 {
		c.FastBurnThreshold = 14.4
	}
	if c.SlowBurnThreshold <= 0 {
		c.SlowBurnThreshold = 6
	}
	return c
}

// sloWindowBuckets is how many buckets a sliding window is quantized
// into; expired buckets are recycled in place, so a window costs a few
// hundred bytes regardless of traffic.
const sloWindowBuckets = 30

// burnWindow is one sliding good/bad counter window.
type burnWindow struct {
	bucket time.Duration // one bucket's width
	epochs [sloWindowBuckets]int64
	good   [sloWindowBuckets]uint64
	bad    [sloWindowBuckets]uint64
}

func newBurnWindow(window time.Duration) *burnWindow {
	bucket := window / sloWindowBuckets
	if bucket < time.Millisecond {
		bucket = time.Millisecond
	}
	return &burnWindow{bucket: bucket}
}

func (w *burnWindow) observe(now time.Time, bad bool) {
	e := now.UnixNano() / int64(w.bucket)
	i := int(e % sloWindowBuckets)
	if w.epochs[i] != e {
		w.epochs[i] = e
		w.good[i], w.bad[i] = 0, 0
	}
	if bad {
		w.bad[i]++
	} else {
		w.good[i]++
	}
}

func (w *burnWindow) totals(now time.Time) (good, bad uint64) {
	e := now.UnixNano() / int64(w.bucket)
	min := e - sloWindowBuckets + 1
	for i := range w.epochs {
		if w.epochs[i] >= min && w.epochs[i] <= e {
			good += w.good[i]
			bad += w.bad[i]
		}
	}
	return good, bad
}

// sloSeries is one executor's pair of windows.
type sloSeries struct {
	objective SLObjective
	fast      *burnWindow
	slow      *burnWindow
}

// SLOTracker measures per-executor burn rates from RequestEnd events.
// It implements Observer (all other callbacks are no-ops via the
// embedded Nop); attach it with Combine next to the Collector and
// TraceRecorder.
type SLOTracker struct {
	Nop
	cfg SLOConfig

	mu    sync.Mutex
	execs map[string]*sloSeries
}

var _ Observer = (*SLOTracker)(nil)

// NewSLOTracker returns a tracker with cfg's objectives (zero cfg
// selects the defaults: 99.9% availability, 5m/1h windows, 14.4/6
// thresholds).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{cfg: cfg.withDefaults(), execs: make(map[string]*sloSeries)}
}

// series returns (creating on first sight) the executor's windows.
func (s *SLOTracker) series(executor string) *sloSeries {
	if se, ok := s.execs[executor]; ok {
		return se
	}
	obj := s.cfg.Default
	if per, ok := s.cfg.PerExecutor[executor]; ok {
		if per.Target > 0 && per.Target < 1 {
			obj.Target = per.Target
		}
		if per.Latency != 0 {
			obj.Latency = per.Latency
		}
	}
	se := &sloSeries{
		objective: obj,
		fast:      newBurnWindow(s.cfg.FastWindow),
		slow:      newBurnWindow(s.cfg.SlowWindow),
	}
	s.execs[executor] = se
	return se
}

// RequestEnd implements Observer: a failed request — or a successful
// one over the latency objective — spends error budget.
func (s *SLOTracker) RequestEnd(executor string, _ uint64, latency time.Duration, outcome Outcome) {
	now := time.Now()
	s.mu.Lock()
	se := s.series(executor)
	bad := outcome == OutcomeFailed || (se.objective.Latency > 0 && latency > se.objective.Latency)
	se.fast.observe(now, bad)
	se.slow.observe(now, bad)
	s.mu.Unlock()
}

// SLOWindowStatus is the point-in-time state of one burn window.
type SLOWindowStatus struct {
	// Name is "fast" or "slow".
	Name string `json:"window"`
	// Window is the window's width.
	Window time.Duration `json:"window_ns"`
	// Requests and Bad are the windowed totals.
	Requests uint64 `json:"requests"`
	Bad      uint64 `json:"bad"`
	// ErrorRatio is Bad/Requests (0 when empty).
	ErrorRatio float64 `json:"error_ratio"`
	// BurnRate is ErrorRatio divided by the error budget (1 - target).
	BurnRate float64 `json:"burn_rate"`
	// Threshold is the alerting threshold for this window; Breaching
	// reports BurnRate >= Threshold.
	Threshold float64 `json:"threshold"`
	Breaching bool    `json:"breaching"`
}

// SLOStatus is the point-in-time SLO state of one executor.
type SLOStatus struct {
	Executor  string      `json:"executor"`
	Objective SLObjective `json:"objective"`
	// Windows holds the fast and slow window states, fast first.
	Windows []SLOWindowStatus `json:"windows"`
	// Breaching reports the multiwindow alert: every window is over its
	// threshold (the fast window confirms the incident is current, the
	// slow window that it is significant).
	Breaching bool `json:"breaching"`
}

// FastBurn returns the executor's current fast-window burn rate (0 for
// an unseen executor).
func (s *SLOTracker) FastBurn(executor string) float64 {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.execs[executor]
	if !ok {
		return 0
	}
	good, bad := se.fast.totals(now)
	return burnRate(good, bad, se.objective.Target)
}

func burnRate(good, bad uint64, target float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	ratio := float64(bad) / float64(total)
	budget := 1 - target
	if budget <= 0 {
		budget = 1e-9
	}
	return ratio / budget
}

// Snapshot returns the per-executor SLO state, sorted by executor name.
func (s *SLOTracker) Snapshot() []SLOStatus {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SLOStatus, 0, len(s.execs))
	for name, se := range s.execs {
		st := SLOStatus{Executor: name, Objective: se.objective, Breaching: true}
		for _, w := range []struct {
			name      string
			window    *burnWindow
			width     time.Duration
			threshold float64
		}{
			{"fast", se.fast, s.cfg.FastWindow, s.cfg.FastBurnThreshold},
			{"slow", se.slow, s.cfg.SlowWindow, s.cfg.SlowBurnThreshold},
		} {
			good, bad := w.window.totals(now)
			ws := SLOWindowStatus{
				Name:      w.name,
				Window:    w.width,
				Requests:  good + bad,
				Bad:       bad,
				BurnRate:  burnRate(good, bad, se.objective.Target),
				Threshold: w.threshold,
			}
			if ws.Requests > 0 {
				ws.ErrorRatio = float64(bad) / float64(ws.Requests)
			}
			ws.Breaching = ws.BurnRate >= ws.Threshold
			if !ws.Breaching {
				st.Breaching = false
			}
			st.Windows = append(st.Windows, ws)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Executor < out[j].Executor })
	return out
}

// Breaching reports whether any executor's multiwindow alert fires.
func (s *SLOTracker) Breaching() bool {
	for _, st := range s.Snapshot() {
		if st.Breaching {
			return true
		}
	}
	return false
}

// Handler serves the SLO snapshot as JSON.
func (s *SLOTracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"slo": s.Snapshot()})
	})
}

// Extra packages the tracker for Handler: it mounts /slo and appends
// the burn-rate gauges to the /metrics exposition.
func (s *SLOTracker) Extra() Extra {
	return Extra{
		Path:       "/slo",
		Handler:    s.Handler(),
		Prometheus: func(w io.Writer) { WriteSLOPrometheus(w, s) },
	}
}

// WriteSLOPrometheus writes the tracker's gauges in the Prometheus text
// exposition format.
func WriteSLOPrometheus(w io.Writer, s *SLOTracker) {
	if s == nil {
		return
	}
	snap := s.Snapshot()
	if len(snap) == 0 {
		return
	}
	fmt.Fprint(w, "# HELP redundancy_slo_target Availability objective per executor.\n")
	fmt.Fprint(w, "# TYPE redundancy_slo_target gauge\n")
	for _, e := range snap {
		fmt.Fprintf(w, "redundancy_slo_target{executor=%q} %g\n", escapeLabel(e.Executor), e.Objective.Target)
	}
	fmt.Fprint(w, "# HELP redundancy_slo_error_ratio Windowed error ratio per executor.\n")
	fmt.Fprint(w, "# TYPE redundancy_slo_error_ratio gauge\n")
	for _, e := range snap {
		for _, ws := range e.Windows {
			fmt.Fprintf(w, "redundancy_slo_error_ratio{executor=%q,window=%q} %g\n",
				escapeLabel(e.Executor), ws.Name, ws.ErrorRatio)
		}
	}
	fmt.Fprint(w, "# HELP redundancy_slo_burn_rate Error-budget burn rate per executor and window (1 = sustainable).\n")
	fmt.Fprint(w, "# TYPE redundancy_slo_burn_rate gauge\n")
	for _, e := range snap {
		for _, ws := range e.Windows {
			fmt.Fprintf(w, "redundancy_slo_burn_rate{executor=%q,window=%q} %g\n",
				escapeLabel(e.Executor), ws.Name, ws.BurnRate)
		}
	}
	fmt.Fprint(w, "# HELP redundancy_slo_breaching Multiwindow burn-rate alert per executor (1 = firing).\n")
	fmt.Fprint(w, "# TYPE redundancy_slo_breaching gauge\n")
	for _, e := range snap {
		v := 0
		if e.Breaching {
			v = 1
		}
		fmt.Fprintf(w, "redundancy_slo_breaching{executor=%q} %d\n", escapeLabel(e.Executor), v)
	}
}

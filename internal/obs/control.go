package obs

// Control events extend the observation layer with the autonomic-
// control-plane vocabulary (internal/control): every reconfiguration
// the controller performs — replacing a convicted replica, retuning
// the hedge delay or the retry-budget deposit rate, routing a
// diagnosed variant to substitution or rejuvenation — is one
// ControlActionTaken event carrying the cause that triggered it, the
// target it reconfigured, and the old → new setting.
//
// Like the distribution (dist.go) and quorum (quorum.go) events, the
// control events are an *optional* extension of Observer so existing
// observers keep compiling unchanged: an observer that wants them
// additionally implements ControlObserver, and emitters route events
// through EmitControlAction, which type-asserts and fans out through
// combined observers. The built-in Collector counts actions per
// controller, so campaigns and the metrics endpoint can gate on
// intervention rates.

// ControlObserver is the optional Observer extension receiving
// autonomic-control events. Observers implement it in addition to
// Observer; emitters must route events through EmitControlAction so
// that combined observers (Combine) fan the events out to every member
// that implements the extension.
type ControlObserver interface {
	// ControlActionTaken reports one reconfiguration performed by the
	// controller. action names the actuator kind (e.g. "replace",
	// "hedge-tune", "deposit-tune", "rejuvenate", "substitute"), cause
	// names the evidence that triggered it (e.g. "detector:dead",
	// "slo:fast-burn", "diagnosis:aging"), target names the replica or
	// variant acted on, and oldValue/newValue record the setting before
	// and after (free-form, e.g. durations or replica names).
	ControlActionTaken(controller, action, cause, target, oldValue, newValue string)
}

// EmitControlAction delivers a control action to o if it (or any member
// of a combined observer) implements ControlObserver. Nil observers are
// ignored.
func EmitControlAction(o Observer, controller, action, cause, target, oldValue, newValue string) {
	if c, ok := o.(ControlObserver); ok {
		c.ControlActionTaken(controller, action, cause, target, oldValue, newValue)
	}
}

// ControlActionTaken implements ControlObserver for Nop.
func (Nop) ControlActionTaken(string, string, string, string, string, string) {}

var _ ControlObserver = Nop{}

// ControlActionTaken implements ControlObserver: the event reaches
// every member that implements the extension.
func (m multi) ControlActionTaken(controller, action, cause, target, oldValue, newValue string) {
	for _, o := range m {
		if c, ok := o.(ControlObserver); ok {
			c.ControlActionTaken(controller, action, cause, target, oldValue, newValue)
		}
	}
}

var _ ControlObserver = multi(nil)

// ControlActionTaken implements ControlObserver: actions are counted
// per controller (the executor) and per actuator kind (the variant), so
// the metrics endpoint exports both the total intervention rate and its
// breakdown by action type.
func (c *Collector) ControlActionTaken(controller, action, _, _, _, _ string) {
	e := c.exec(controller)
	e.controlActions.Add(1)
	e.variant(action).executions.Add(1)
}

var _ ControlObserver = (*Collector)(nil)

// ControlActionTaken implements ControlObserver. Control actions are
// not bound to one request; the Collector keeps the counts.
func (t *TraceRecorder) ControlActionTaken(string, string, string, string, string, string) {}

var _ ControlObserver = (*TraceRecorder)(nil)

package obs

// Distribution events extend the observation layer with the networked-
// replica vocabulary (internal/dist): RPC round trips to remote replica
// endpoints, hedged-request launches and wins, and failure-detector
// membership transitions.
//
// Like the resilience-policy (policy.go) and crash-recovery
// (recovery.go) events, the distribution events are an *optional*
// extension of Observer so existing observers keep compiling unchanged:
// an observer that wants them additionally implements DistObserver, and
// emitters route events through the Emit* helpers, which type-assert and
// fan out through combined observers. The built-in Collector implements
// the extension: RPC round trips feed per-endpoint latency histograms
// under the client's executor name, hedges and hedge wins are counted
// per client, and suspect/dead transitions are counted per detector.

import "time"

// ReplicaState is the failure detector's opinion of one remote replica.
type ReplicaState uint8

const (
	// ReplicaAlive: heartbeats are being acknowledged.
	ReplicaAlive ReplicaState = iota
	// ReplicaSuspect: enough heartbeats were missed that the replica is
	// routed around, but not enough to declare it dead.
	ReplicaSuspect
	// ReplicaDead: the replica missed the dead threshold; only used when
	// nothing healthier remains.
	ReplicaDead
)

// String returns the Prometheus-label-safe name of the state.
func (s ReplicaState) String() string {
	switch s {
	case ReplicaAlive:
		return "alive"
	case ReplicaSuspect:
		return "suspect"
	case ReplicaDead:
		return "dead"
	default:
		return "unknown"
	}
}

// DistObserver is the optional Observer extension receiving networked-
// replica events. Observers implement it in addition to Observer;
// emitters must route events through the Emit* helpers so that combined
// observers (Combine) fan the events out to every member that implements
// the extension.
type DistObserver interface {
	// RPCCompleted reports one RPC round trip from client (the remote
	// variant's name) to endpoint; err is the failure, or nil. Hedged
	// attempts report one RPCCompleted each, including attempts whose
	// result was discarded because another attempt won.
	RPCCompleted(client, endpoint string, req uint64, latency time.Duration, err error)
	// HedgeLaunched reports that the client, still waiting on earlier
	// attempts, fanned the request out to endpoint (attempt counts from 1
	// for the primary, so hedges report 2, 3, ...).
	HedgeLaunched(client, endpoint string, req uint64, attempt int)
	// HedgeWon reports which attempt's result the client returned;
	// attempt 1 means the primary won, higher attempts mean a hedge
	// overtook it.
	HedgeWon(client, endpoint string, req uint64, attempt int)
	// ReplicaStateChanged reports a failure-detector membership
	// transition for one replica.
	ReplicaStateChanged(detector, replica string, from, to ReplicaState)
}

// EmitRPCCompleted delivers an RPC round-trip event to o if it (or any
// member of a combined observer) implements DistObserver. Nil observers
// are ignored.
func EmitRPCCompleted(o Observer, client, endpoint string, req uint64, latency time.Duration, err error) {
	if d, ok := o.(DistObserver); ok {
		d.RPCCompleted(client, endpoint, req, latency, err)
	}
}

// EmitHedgeLaunched delivers a hedge-launch event to o if it implements
// DistObserver. Nil observers are ignored.
func EmitHedgeLaunched(o Observer, client, endpoint string, req uint64, attempt int) {
	if d, ok := o.(DistObserver); ok {
		d.HedgeLaunched(client, endpoint, req, attempt)
	}
}

// EmitHedgeWon delivers a hedge-outcome event to o if it implements
// DistObserver. Nil observers are ignored.
func EmitHedgeWon(o Observer, client, endpoint string, req uint64, attempt int) {
	if d, ok := o.(DistObserver); ok {
		d.HedgeWon(client, endpoint, req, attempt)
	}
}

// EmitReplicaStateChanged delivers a membership transition to o if it
// implements DistObserver. Nil observers are ignored.
func EmitReplicaStateChanged(o Observer, detector, replica string, from, to ReplicaState) {
	if d, ok := o.(DistObserver); ok {
		d.ReplicaStateChanged(detector, replica, from, to)
	}
}

// RPCCompleted implements DistObserver for Nop.
func (Nop) RPCCompleted(string, string, uint64, time.Duration, error) {}

// HedgeLaunched implements DistObserver for Nop.
func (Nop) HedgeLaunched(string, string, uint64, int) {}

// HedgeWon implements DistObserver for Nop.
func (Nop) HedgeWon(string, string, uint64, int) {}

// ReplicaStateChanged implements DistObserver for Nop.
func (Nop) ReplicaStateChanged(string, string, ReplicaState, ReplicaState) {}

var _ DistObserver = Nop{}

// RPCCompleted implements DistObserver: the event reaches every member
// that implements the extension.
func (m multi) RPCCompleted(client, endpoint string, req uint64, latency time.Duration, err error) {
	for _, o := range m {
		if d, ok := o.(DistObserver); ok {
			d.RPCCompleted(client, endpoint, req, latency, err)
		}
	}
}

// HedgeLaunched implements DistObserver.
func (m multi) HedgeLaunched(client, endpoint string, req uint64, attempt int) {
	for _, o := range m {
		if d, ok := o.(DistObserver); ok {
			d.HedgeLaunched(client, endpoint, req, attempt)
		}
	}
}

// HedgeWon implements DistObserver.
func (m multi) HedgeWon(client, endpoint string, req uint64, attempt int) {
	for _, o := range m {
		if d, ok := o.(DistObserver); ok {
			d.HedgeWon(client, endpoint, req, attempt)
		}
	}
}

// ReplicaStateChanged implements DistObserver.
func (m multi) ReplicaStateChanged(detector, replica string, from, to ReplicaState) {
	for _, o := range m {
		if d, ok := o.(DistObserver); ok {
			d.ReplicaStateChanged(detector, replica, from, to)
		}
	}
}

var _ DistObserver = multi(nil)

// RPCCompleted implements DistObserver: each endpoint's round trips feed
// an execution/failure counter pair and a latency histogram under the
// client's executor name, so the metrics endpoint exports per-endpoint
// RPC latency quantiles exactly like per-variant execution latency.
func (c *Collector) RPCCompleted(client, endpoint string, _ uint64, latency time.Duration, err error) {
	v := c.exec(client).variant(endpoint)
	v.executions.Add(1)
	if err != nil {
		v.failures.Add(1)
	}
	v.latency.Observe(latency)
}

// HedgeLaunched implements DistObserver.
func (c *Collector) HedgeLaunched(client, _ string, _ uint64, _ int) {
	c.exec(client).hedges.Add(1)
}

// HedgeWon implements DistObserver: only wins by a hedge (attempt > 1)
// count — a primary win means the fan-out was wasted work.
func (c *Collector) HedgeWon(client, _ string, _ uint64, attempt int) {
	if attempt > 1 {
		c.exec(client).hedgeWins.Add(1)
	}
}

// ReplicaStateChanged implements DistObserver: the Collector counts
// transitions into suspect and dead per detector (the "replica failed"
// signals that availability reports alert on).
func (c *Collector) ReplicaStateChanged(detector, _ string, _, to ReplicaState) {
	switch to {
	case ReplicaSuspect:
		c.exec(detector).suspects.Add(1)
	case ReplicaDead:
		c.exec(detector).deaths.Add(1)
	}
}

var _ DistObserver = (*Collector)(nil)

// RPCCompleted implements DistObserver. RPC round trips below the
// variant span are too fine-grained for the request trace ring; the
// Collector keeps the histograms.
func (t *TraceRecorder) RPCCompleted(string, string, uint64, time.Duration, error) {}

// HedgeLaunched implements DistObserver.
func (t *TraceRecorder) HedgeLaunched(_, endpoint string, req uint64, _ int) {
	t.event(req, "hedge", endpoint)
}

// HedgeWon implements DistObserver.
func (t *TraceRecorder) HedgeWon(_, endpoint string, req uint64, attempt int) {
	if attempt > 1 {
		t.event(req, "hedge-won", endpoint)
	}
}

// ReplicaStateChanged implements DistObserver. Membership transitions
// are not bound to one request; the Collector keeps the counts.
func (t *TraceRecorder) ReplicaStateChanged(string, string, ReplicaState, ReplicaState) {}

var _ DistObserver = (*TraceRecorder)(nil)

package obs

import (
	"context"
	"testing"
)

func TestTraceContextLineage(t *testing.T) {
	root := NewTraceContext()
	if !root.Valid() {
		t.Fatal("root trace context not valid")
	}
	if root.ParentID != 0 {
		t.Fatalf("root has parent %d", root.ParentID)
	}
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Fatalf("child changed trace: %d != %d", child.TraceID, root.TraceID)
	}
	if child.ParentID != root.SpanID {
		t.Fatalf("child parent = %d, want %d", child.ParentID, root.SpanID)
	}
	if child.SpanID == root.SpanID {
		t.Fatal("child reused parent span id")
	}

	cont := ContinueTrace(child.TraceID, child.SpanID)
	if cont.TraceID != root.TraceID || cont.ParentID != child.SpanID {
		t.Fatalf("ContinueTrace = %+v, want trace %d parent %d", cont, root.TraceID, child.SpanID)
	}
	if fresh := ContinueTrace(0, 0); !fresh.Valid() || fresh.ParentID != 0 {
		t.Fatalf("ContinueTrace(0,0) = %+v, want fresh root", fresh)
	}
}

func TestSeedTraceIDsDeterministic(t *testing.T) {
	SeedTraceIDs(42)
	a1, a2 := nextTraceID(), nextTraceID()
	SeedTraceIDs(42)
	b1, b2 := nextTraceID(), nextTraceID()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", a1, a2, b1, b2)
	}
	SeedTraceIDs(43)
	if c := nextTraceID(); c == a1 {
		t.Fatal("different seed produced the same first id")
	}
}

func TestStartTraceContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceContextFrom(ctx); ok {
		t.Fatal("empty context reported a trace")
	}
	ctx, root := StartTrace(ctx)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != root {
		t.Fatalf("TraceContextFrom = %+v, %v; want %+v", got, ok, root)
	}
	_, child := StartTrace(ctx)
	if child.TraceID != root.TraceID || child.ParentID != root.SpanID {
		t.Fatalf("nested StartTrace = %+v, want child of %+v", child, root)
	}
	// An invalid (zero) context stored downstream is treated as absent.
	if _, ok := TraceContextFrom(WithTraceContext(context.Background(), TraceContext{})); ok {
		t.Fatal("zero trace context reported valid")
	}
}

func TestWantsTrace(t *testing.T) {
	tr := NewTraceRecorder(4)
	cases := []struct {
		name string
		o    Observer
		want bool
	}{
		{"nil", nil, false},
		{"nop", Nop{}, false},
		{"collector", NewCollector(), false},
		{"recorder", tr, true},
		{"combined", Combine(NewCollector(), tr), true},
		{"combined-nop", Combine(NewCollector(), Nop{}), false},
	}
	for _, c := range cases {
		if got := WantsTrace(c.o); got != c.want {
			t.Errorf("WantsTrace(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTraceRecorderRecordsSpanAndAttempts(t *testing.T) {
	tr := NewTraceRecorder(4)
	req := NextRequestID()
	tc := NewTraceContext().Child()
	tr.RequestStart("remote:r", req)
	EmitRequestTraced(tr, "remote:r", req, tc)
	win := tc.Child()
	EmitRPCAttempted(tr, "remote:r", req, RPCAttempt{
		Endpoint: "r1", Span: win, Attempt: 1, Latency: 5, Won: true,
	})
	EmitRPCAttempted(tr, "remote:r", req, RPCAttempt{
		Endpoint: "r2", Span: tc.Child(), Attempt: 2, Latency: 3, Cancelled: true,
	})
	tr.RequestEnd("remote:r", req, 10, OutcomeSuccess)

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d traces, want 1", len(snap))
	}
	got := snap[0]
	if got.TraceID != tc.TraceID || got.SpanID != tc.SpanID || got.ParentSpanID != tc.ParentID {
		t.Fatalf("trace span = (%d,%d,%d), want (%d,%d,%d)",
			got.TraceID, got.SpanID, got.ParentSpanID, tc.TraceID, tc.SpanID, tc.ParentID)
	}
	if len(got.Attempts) != 2 {
		t.Fatalf("got %d attempts, want 2", len(got.Attempts))
	}
	if !got.Attempts[0].Won || got.Attempts[0].SpanID != win.SpanID || got.Attempts[0].Endpoint != "r1" {
		t.Fatalf("winning attempt = %+v", got.Attempts[0])
	}
	if !got.Attempts[1].Cancelled || got.Attempts[1].Won {
		t.Fatalf("losing attempt = %+v", got.Attempts[1])
	}
}

func TestCombineFansOutTraceEvents(t *testing.T) {
	a, b := NewTraceRecorder(2), NewTraceRecorder(2)
	o := Combine(a, NewCollector(), b)
	req := NextRequestID()
	tc := NewTraceContext()
	o.RequestStart("x", req)
	EmitRequestTraced(o, "x", req, tc)
	o.RequestEnd("x", req, 1, OutcomeSuccess)
	for i, rec := range []*TraceRecorder{a, b} {
		snap := rec.Snapshot()
		if len(snap) != 1 || snap[0].TraceID != tc.TraceID {
			t.Fatalf("recorder %d missed the trace event: %+v", i, snap)
		}
	}
}

package obs

import (
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
)

// metricsObserver replays observation events onto the legacy core.Metrics
// counters. It is how the executors' WithMetrics options are implemented
// since the observation layer landed: one request event per RequestStart,
// one variant execution per VariantEnd, and the detected/masked/failed
// classification from Adjudicated — exactly the counter semantics the
// executors used to hand-roll.
type metricsObserver struct {
	Nop
	m *core.Metrics
}

var _ Observer = metricsObserver{}

// ForMetrics adapts the legacy counter collector to the Observer
// interface. A nil collector yields a nil Observer, preserving the
// executors' unobserved fast path.
func ForMetrics(m *core.Metrics) Observer {
	if m == nil {
		return nil
	}
	return metricsObserver{m: m}
}

// RequestStart implements Observer.
func (o metricsObserver) RequestStart(string, uint64) { o.m.RecordRequest() }

// VariantEnd implements Observer.
func (o metricsObserver) VariantEnd(string, string, uint64, time.Duration, error) {
	o.m.RecordVariantExecutions(1)
}

// Adjudicated implements Observer.
func (o metricsObserver) Adjudicated(_ string, _ uint64, accepted, failureDetected bool) {
	if failureDetected {
		o.m.RecordFailureDetected()
	}
	switch {
	case !accepted:
		o.m.RecordFailure()
	case failureDetected:
		o.m.RecordFailureMasked()
	}
}

package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSLOTrackerBurnRate(t *testing.T) {
	s := NewSLOTracker(SLOConfig{
		Default:    SLObjective{Target: 0.99},
		FastWindow: time.Minute,
		SlowWindow: 10 * time.Minute,
	})
	// 90 good + 10 bad = 10% error ratio on a 1% budget: burn 10.
	for i := 0; i < 90; i++ {
		s.RequestEnd("svc", uint64(i), time.Millisecond, OutcomeSuccess)
	}
	for i := 0; i < 10; i++ {
		s.RequestEnd("svc", uint64(90+i), time.Millisecond, OutcomeFailed)
	}
	burn := s.FastBurn("svc")
	if burn < 9.9 || burn > 10.1 {
		t.Fatalf("fast burn = %g, want ~10", burn)
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].Executor != "svc" {
		t.Fatalf("snapshot = %+v", snap)
	}
	st := snap[0]
	if len(st.Windows) != 2 || st.Windows[0].Name != "fast" || st.Windows[1].Name != "slow" {
		t.Fatalf("windows = %+v", st.Windows)
	}
	if st.Windows[0].Requests != 100 || st.Windows[0].Bad != 10 {
		t.Fatalf("fast window totals = %+v", st.Windows[0])
	}
}

func TestSLOTrackerLatencyObjective(t *testing.T) {
	s := NewSLOTracker(SLOConfig{
		PerExecutor: map[string]SLObjective{
			"svc": {Target: 0.9, Latency: 10 * time.Millisecond},
		},
	})
	// Successful but slow requests spend budget too.
	s.RequestEnd("svc", 1, 50*time.Millisecond, OutcomeSuccess)
	s.RequestEnd("svc", 2, time.Millisecond, OutcomeSuccess)
	snap := s.Snapshot()
	if got := snap[0].Windows[0].Bad; got != 1 {
		t.Fatalf("slow success not counted bad: bad = %d", got)
	}
	if got := snap[0].Objective.Target; got != 0.9 {
		t.Fatalf("per-executor target not applied: %g", got)
	}
}

func TestSLOTrackerBreaching(t *testing.T) {
	s := NewSLOTracker(SLOConfig{
		Default:           SLObjective{Target: 0.999},
		FastBurnThreshold: 14.4,
		SlowBurnThreshold: 6,
	})
	if s.Breaching() {
		t.Fatal("empty tracker breaching")
	}
	// 100% failures: burn 1000 on both windows — both thresholds exceeded.
	for i := 0; i < 50; i++ {
		s.RequestEnd("svc", uint64(i), time.Millisecond, OutcomeFailed)
	}
	if !s.Breaching() {
		t.Fatal("all-failed stream not breaching")
	}
	snap := s.Snapshot()
	if !snap[0].Breaching || !snap[0].Windows[0].Breaching || !snap[0].Windows[1].Breaching {
		t.Fatalf("snapshot breach flags = %+v", snap[0])
	}
}

func TestSLOTrackerWindowExpiry(t *testing.T) {
	w := newBurnWindow(30 * time.Millisecond) // 1ms buckets (clamped)
	base := time.Now()
	w.observe(base, true)
	if good, bad := w.totals(base); good != 0 || bad != 1 {
		t.Fatalf("fresh totals = (%d,%d)", good, bad)
	}
	// Far beyond the window: the stale bucket no longer counts.
	later := base.Add(time.Second)
	if good, bad := w.totals(later); good != 0 || bad != 0 {
		t.Fatalf("expired totals = (%d,%d)", good, bad)
	}
	// Writing at the later time recycles the slot.
	w.observe(later, false)
	if good, bad := w.totals(later); good != 1 || bad != 0 {
		t.Fatalf("recycled totals = (%d,%d)", good, bad)
	}
}

func TestWriteSLOPrometheus(t *testing.T) {
	s := NewSLOTracker(SLOConfig{})
	s.RequestEnd("svc", 1, time.Millisecond, OutcomeFailed)
	var b strings.Builder
	WriteSLOPrometheus(&b, s)
	out := b.String()
	for _, want := range []string{
		`redundancy_slo_target{executor="svc"} 0.999`,
		`redundancy_slo_burn_rate{executor="svc",window="fast"}`,
		`redundancy_slo_burn_rate{executor="svc",window="slow"}`,
		`redundancy_slo_breaching{executor="svc"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

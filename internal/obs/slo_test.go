package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSLOTrackerBurnRate(t *testing.T) {
	s := NewSLOTracker(SLOConfig{
		Default:    SLObjective{Target: 0.99},
		FastWindow: time.Minute,
		SlowWindow: 10 * time.Minute,
	})
	// 90 good + 10 bad = 10% error ratio on a 1% budget: burn 10.
	for i := 0; i < 90; i++ {
		s.RequestEnd("svc", uint64(i), time.Millisecond, OutcomeSuccess)
	}
	for i := 0; i < 10; i++ {
		s.RequestEnd("svc", uint64(90+i), time.Millisecond, OutcomeFailed)
	}
	burn := s.FastBurn("svc")
	if burn < 9.9 || burn > 10.1 {
		t.Fatalf("fast burn = %g, want ~10", burn)
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].Executor != "svc" {
		t.Fatalf("snapshot = %+v", snap)
	}
	st := snap[0]
	if len(st.Windows) != 2 || st.Windows[0].Name != "fast" || st.Windows[1].Name != "slow" {
		t.Fatalf("windows = %+v", st.Windows)
	}
	if st.Windows[0].Requests != 100 || st.Windows[0].Bad != 10 {
		t.Fatalf("fast window totals = %+v", st.Windows[0])
	}
}

func TestSLOTrackerLatencyObjective(t *testing.T) {
	s := NewSLOTracker(SLOConfig{
		PerExecutor: map[string]SLObjective{
			"svc": {Target: 0.9, Latency: 10 * time.Millisecond},
		},
	})
	// Successful but slow requests spend budget too.
	s.RequestEnd("svc", 1, 50*time.Millisecond, OutcomeSuccess)
	s.RequestEnd("svc", 2, time.Millisecond, OutcomeSuccess)
	snap := s.Snapshot()
	if got := snap[0].Windows[0].Bad; got != 1 {
		t.Fatalf("slow success not counted bad: bad = %d", got)
	}
	if got := snap[0].Objective.Target; got != 0.9 {
		t.Fatalf("per-executor target not applied: %g", got)
	}
}

func TestSLOTrackerBreaching(t *testing.T) {
	s := NewSLOTracker(SLOConfig{
		Default:           SLObjective{Target: 0.999},
		FastBurnThreshold: 14.4,
		SlowBurnThreshold: 6,
	})
	if s.Breaching() {
		t.Fatal("empty tracker breaching")
	}
	// 100% failures: burn 1000 on both windows — both thresholds exceeded.
	for i := 0; i < 50; i++ {
		s.RequestEnd("svc", uint64(i), time.Millisecond, OutcomeFailed)
	}
	if !s.Breaching() {
		t.Fatal("all-failed stream not breaching")
	}
	snap := s.Snapshot()
	if !snap[0].Breaching || !snap[0].Windows[0].Breaching || !snap[0].Windows[1].Breaching {
		t.Fatalf("snapshot breach flags = %+v", snap[0])
	}
}

func TestSLOTrackerWindowExpiry(t *testing.T) {
	w := newBurnWindow(30 * time.Millisecond) // 1ms buckets (clamped)
	base := time.Now()
	w.observe(base, true)
	if good, bad := w.totals(base); good != 0 || bad != 1 {
		t.Fatalf("fresh totals = (%d,%d)", good, bad)
	}
	// Far beyond the window: the stale bucket no longer counts.
	later := base.Add(time.Second)
	if good, bad := w.totals(later); good != 0 || bad != 0 {
		t.Fatalf("expired totals = (%d,%d)", good, bad)
	}
	// Writing at the later time recycles the slot.
	w.observe(later, false)
	if good, bad := w.totals(later); good != 1 || bad != 0 {
		t.Fatalf("recycled totals = (%d,%d)", good, bad)
	}
}

func TestWriteSLOPrometheus(t *testing.T) {
	s := NewSLOTracker(SLOConfig{})
	s.RequestEnd("svc", 1, time.Millisecond, OutcomeFailed)
	var b strings.Builder
	WriteSLOPrometheus(&b, s)
	out := b.String()
	for _, want := range []string{
		`redundancy_slo_target{executor="svc"} 0.999`,
		`redundancy_slo_burn_rate{executor="svc",window="fast"}`,
		`redundancy_slo_burn_rate{executor="svc",window="slow"}`,
		`redundancy_slo_breaching{executor="svc"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestBurnWindowBoundaryRecycle pins the epoch arithmetic at the exact
// window boundary: a full window of traffic, stepped one bucket at a
// time, must drop exactly the oldest bucket per step — and a bucket
// whose ring slot is reused a full window later must be zeroed before
// counting, not inherit the stale totals.
func TestBurnWindowBoundaryRecycle(t *testing.T) {
	w := newBurnWindow(30 * time.Millisecond) // 1ms buckets
	base := time.Unix(1000, 0)                // bucket-aligned

	// One bad observation in every bucket of the window.
	for i := 0; i < sloWindowBuckets; i++ {
		w.observe(base.Add(time.Duration(i)*w.bucket), true)
	}
	if _, bad := w.totals(base.Add(time.Duration(sloWindowBuckets-1) * w.bucket)); bad != sloWindowBuckets {
		t.Fatalf("full window bad = %d, want %d", bad, sloWindowBuckets)
	}

	// Each bucket step beyond the end drops exactly one stale bucket,
	// even though the ring slots still hold their counts.
	for step := 1; step <= 3; step++ {
		now := base.Add(time.Duration(sloWindowBuckets-1+step) * w.bucket)
		if _, bad := w.totals(now); int(bad) != sloWindowBuckets-step {
			t.Fatalf("step %d: bad = %d, want %d", step, bad, sloWindowBuckets-step)
		}
	}

	// A write one full window later lands on the first bucket's ring
	// slot; the recycled slot must forget the old epoch's count.
	reuse := base.Add(time.Duration(sloWindowBuckets) * w.bucket)
	w.observe(reuse, false)
	good, bad := w.totals(reuse)
	if good != 1 {
		t.Fatalf("recycled slot good = %d, want 1", good)
	}
	// Buckets 1..29 of the original window are still in range.
	if int(bad) != sloWindowBuckets-1 {
		t.Fatalf("recycled-window bad = %d, want %d", bad, sloWindowBuckets-1)
	}
}

// TestBurnWindowSameSlotNewEpochResets drives the same ring slot in two
// epochs a full window apart with nothing in between: the second epoch
// starts from zero.
func TestBurnWindowSameSlotNewEpochResets(t *testing.T) {
	w := newBurnWindow(30 * time.Millisecond)
	base := time.Unix(2000, 0)
	for i := 0; i < 5; i++ {
		w.observe(base, true)
	}
	later := base.Add(time.Duration(sloWindowBuckets) * w.bucket)
	w.observe(later, true)
	if _, bad := w.totals(later); bad != 1 {
		t.Fatalf("same-slot new-epoch bad = %d, want 1", bad)
	}
}

// TestBurnWindowIdleRecovery: after a window of silence the burn reads
// zero — recovery needs no writes, only the range check in totals.
func TestBurnWindowIdleRecovery(t *testing.T) {
	w := newBurnWindow(30 * time.Millisecond)
	base := time.Unix(3000, 0)
	for i := 0; i < 10; i++ {
		w.observe(base.Add(time.Duration(i)*w.bucket), true)
	}
	quiet := base.Add(time.Duration(9+sloWindowBuckets) * w.bucket)
	if good, bad := w.totals(quiet); good != 0 || bad != 0 {
		t.Fatalf("idle totals = (%d,%d), want (0,0)", good, bad)
	}
	// One more boundary in: still zero (no off-by-one resurrection).
	if good, bad := w.totals(quiet.Add(w.bucket)); good != 0 || bad != 0 {
		t.Fatalf("post-idle totals = (%d,%d)", good, bad)
	}
}

// TestBurnWindowClockRewind: a bucket stamped in the future (the clock
// stepped back) must not count toward a past now, and writing at the
// rewound time recycles the slot rather than merging epochs.
func TestBurnWindowClockRewind(t *testing.T) {
	w := newBurnWindow(30 * time.Millisecond)
	ahead := time.Unix(4000, 0).Add(10 * w.bucket)
	w.observe(ahead, true)
	rewound := ahead.Add(-10 * w.bucket)
	if _, bad := w.totals(rewound); bad != 0 {
		t.Fatalf("future bucket counted at rewound now: bad = %d", bad)
	}
	w.observe(rewound, false)
	if good, bad := w.totals(rewound); good != 1 || bad != 0 {
		t.Fatalf("rewound totals = (%d,%d), want (1,0)", good, bad)
	}
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Extra is an additional observation endpoint mounted by Handler.
// Higher observation layers (e.g. the health diagnosis engine in
// obs/health) use it to join the standard endpoint set without obs
// depending on them. Path and Handler mount an extra route; Prometheus,
// if non-nil, appends extra series to the /metrics exposition.
type Extra struct {
	// Path is the route to mount Handler on (e.g. "/healthz").
	Path string
	// Handler serves the extra endpoint; ignored when nil.
	Handler http.Handler
	// Prometheus appends extra series to the /metrics document.
	Prometheus func(io.Writer)
}

// Handler returns an HTTP handler exposing the observation layer:
//
//	/metrics  Prometheus text format: counters plus p50/p90/p99 latency
//	          summaries per executor and per variant
//	/vars     the same data as one JSON document (expvar-style)
//	/traces   the TraceRecorder ring as a JSON array, most recent first
//
// Either collector argument may be nil; the corresponding endpoints then
// serve empty documents. Extras mount additional endpoints (and extend
// the /metrics document) on the same handler. The handler is safe to
// serve while executors are running — all reads go through the
// collectors' concurrent snapshots.
func Handler(c *Collector, tr *TraceRecorder, extras ...Extra) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, c)
		for _, x := range extras {
			if x.Prometheus != nil {
				x.Prometheus(w)
			}
		}
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		var snap []ExecutorSnapshot
		if c != nil {
			snap = c.Snapshot()
		}
		_ = enc.Encode(map[string]any{"executors": snap})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if tr == nil {
			_, _ = io.WriteString(w, "[]\n")
			return
		}
		_ = tr.WriteJSON(w)
	})
	for _, x := range extras {
		if x.Path != "" && x.Handler != nil {
			mux.Handle(x.Path, x.Handler)
		}
	}
	return mux
}

// Var adapts the collector to an expvar.Var, for callers that prefer
// registering it on the standard expvar page:
//
//	expvar.Publish("redundancy", collector.Var())
func (c *Collector) Var() expvar.Var {
	return expvar.Func(func() any { return c.Snapshot() })
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// WritePrometheus writes the collector's state in the Prometheus text
// exposition format. Latencies are exported as summaries in seconds with
// quantiles 0.5, 0.9 and 0.99.
func WritePrometheus(w io.Writer, c *Collector) {
	if c == nil {
		return
	}
	snap := c.Snapshot()
	if len(snap) == 0 {
		return
	}

	counter := func(name, help string, value func(ExecutorSnapshot) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, e := range snap {
			fmt.Fprintf(w, "%s{executor=%q} %d\n", name, escapeLabel(e.Executor), value(e))
		}
	}
	counter("redundancy_requests_total", "Requests handled by the executor.",
		func(e ExecutorSnapshot) int64 { return e.Requests })
	counter("redundancy_successes_total", "Requests served without any variant failure.",
		func(e ExecutorSnapshot) int64 { return e.Successes })
	counter("redundancy_failures_masked_total", "Requests on which redundancy masked a variant failure.",
		func(e ExecutorSnapshot) int64 { return e.FailuresMasked })
	counter("redundancy_failures_total", "Requests on which the executor failed.",
		func(e ExecutorSnapshot) int64 { return e.Failures })
	counter("redundancy_failures_detected_total", "Requests on which at least one variant result was rejected.",
		func(e ExecutorSnapshot) int64 { return e.FailuresDetected })
	counter("redundancy_components_disabled_total", "Components taken out of rotation.",
		func(e ExecutorSnapshot) int64 { return e.Disabled })
	counter("redundancy_retries_total", "Retry attempts after a rejected result.",
		func(e ExecutorSnapshot) int64 { return e.Retries })
	counter("redundancy_rollbacks_total", "State rollbacks and compensations executed.",
		func(e ExecutorSnapshot) int64 { return e.Rollbacks })
	counter("redundancy_requests_shed_total", "Requests rejected fast by a bulkhead under overload.",
		func(e ExecutorSnapshot) int64 { return e.Shed })
	counter("redundancy_degraded_serves_total", "Requests answered by the degradation ladder.",
		func(e ExecutorSnapshot) int64 { return e.DegradedServes })
	counter("redundancy_breaker_opens_total", "Circuit-breaker transitions into the open state.",
		func(e ExecutorSnapshot) int64 { return e.BreakerOpens })
	counter("redundancy_checkpoints_taken_total", "Durable checkpoint snapshots committed.",
		func(e ExecutorSnapshot) int64 { return e.Checkpoints })
	counter("redundancy_wal_replays_total", "WAL recovery replays completed after a restart.",
		func(e ExecutorSnapshot) int64 { return e.WALReplays })
	counter("redundancy_process_restarts_total", "Supervised process restarts.",
		func(e ExecutorSnapshot) int64 { return e.Restarts })
	counter("redundancy_escalations_total", "Restart-intensity escalations raised to the parent supervisor.",
		func(e ExecutorSnapshot) int64 { return e.Escalations })
	counter("redundancy_hedges_total", "Hedged RPC attempts launched beyond the primary.",
		func(e ExecutorSnapshot) int64 { return e.Hedges })
	counter("redundancy_hedge_wins_total", "Requests whose returned result came from a hedge attempt.",
		func(e ExecutorSnapshot) int64 { return e.HedgeWins })
	counter("redundancy_replica_suspects_total", "Failure-detector transitions into the suspect state.",
		func(e ExecutorSnapshot) int64 { return e.ReplicaSuspects })
	counter("redundancy_replica_deaths_total", "Failure-detector transitions into the dead state.",
		func(e ExecutorSnapshot) int64 { return e.ReplicaDeaths })
	counter("redundancy_quorums_reached_total", "Requests decided by a distributed quorum verdict.",
		func(e ExecutorSnapshot) int64 { return e.QuorumsReached })
	counter("redundancy_vote_disagreements_total", "Quorum requests whose successful replies disagreed.",
		func(e ExecutorSnapshot) int64 { return e.VoteDisagreement })
	counter("redundancy_replicas_outvoted_total", "Successful replica replies rejected by a quorum verdict.",
		func(e ExecutorSnapshot) int64 { return e.ReplicasOutvoted })
	counter("redundancy_control_actions_total", "Reconfigurations performed by the autonomic controller.",
		func(e ExecutorSnapshot) int64 { return e.ControlActions })

	fmt.Fprint(w, "# HELP redundancy_inflight_variants Variant executions currently running.\n")
	fmt.Fprint(w, "# TYPE redundancy_inflight_variants gauge\n")
	for _, e := range snap {
		fmt.Fprintf(w, "redundancy_inflight_variants{executor=%q} %d\n",
			escapeLabel(e.Executor), e.InflightVariants)
	}

	fmt.Fprint(w, "# HELP redundancy_request_latency_seconds Request latency per executor.\n")
	fmt.Fprint(w, "# TYPE redundancy_request_latency_seconds summary\n")
	for _, e := range snap {
		writeSummary(w, "redundancy_request_latency_seconds",
			fmt.Sprintf("executor=%q", escapeLabel(e.Executor)), e.Latency)
	}

	// The MTTR summary carries real samples only for supervisors; series
	// for executors that never restarted anything would be all-zero noise,
	// so they are skipped.
	fmt.Fprint(w, "# HELP redundancy_mttr_seconds Supervised-restart recovery time (failure to ready) per supervisor.\n")
	fmt.Fprint(w, "# TYPE redundancy_mttr_seconds summary\n")
	for _, e := range snap {
		if e.MTTR.Count == 0 {
			continue
		}
		writeSummary(w, "redundancy_mttr_seconds",
			fmt.Sprintf("executor=%q", escapeLabel(e.Executor)), e.MTTR)
	}

	fmt.Fprint(w, "# HELP redundancy_variant_executions_total Variant executions per executor and variant.\n")
	fmt.Fprint(w, "# TYPE redundancy_variant_executions_total counter\n")
	for _, e := range snap {
		for _, v := range e.Variants {
			fmt.Fprintf(w, "redundancy_variant_executions_total{executor=%q,variant=%q} %d\n",
				escapeLabel(e.Executor), escapeLabel(v.Variant), v.Executions)
		}
	}
	fmt.Fprint(w, "# HELP redundancy_variant_failures_total Failed variant executions per executor and variant.\n")
	fmt.Fprint(w, "# TYPE redundancy_variant_failures_total counter\n")
	for _, e := range snap {
		for _, v := range e.Variants {
			fmt.Fprintf(w, "redundancy_variant_failures_total{executor=%q,variant=%q} %d\n",
				escapeLabel(e.Executor), escapeLabel(v.Variant), v.Failures)
		}
	}
	fmt.Fprint(w, "# HELP redundancy_variant_latency_seconds Variant execution latency per executor and variant.\n")
	fmt.Fprint(w, "# TYPE redundancy_variant_latency_seconds summary\n")
	for _, e := range snap {
		for _, v := range e.Variants {
			writeSummary(w, "redundancy_variant_latency_seconds",
				fmt.Sprintf("executor=%q,variant=%q", escapeLabel(e.Executor), escapeLabel(v.Variant)),
				v.Latency)
		}
	}
}

// writeSummary writes one Prometheus summary series from a histogram
// snapshot.
func writeSummary(w io.Writer, name, labels string, h HistogramSnapshot) {
	for _, q := range []struct {
		q string
		v float64
	}{
		{"0.5", h.P50.Seconds()},
		{"0.9", h.P90.Seconds()},
		{"0.99", h.P99.Seconds()},
	} {
		fmt.Fprintf(w, "%s{%s,quantile=%q} %g\n", name, labels, q.q, q.v)
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum.Seconds())
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
}

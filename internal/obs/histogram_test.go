package obs

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 || h.P99() != 0 {
		t.Error("empty histogram quantiles should be 0")
	}
}

func TestHistogramBasic(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Errorf("Sum = %v", h.Sum())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramQuantileResolution(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	// Buckets resolve to powers of two of a microsecond, so estimates are
	// upper bounds within a factor of two of the true value.
	if p50 := h.P50(); p50 < 100*time.Microsecond || p50 > 200*time.Microsecond {
		t.Errorf("P50 = %v, want in [100µs, 200µs]", p50)
	}
	if p99 := h.P99(); p99 < 80*time.Millisecond || p99 > 160*time.Millisecond {
		t.Errorf("P99 = %v, want in [80ms, 160ms]", p99)
	}
	if h.P90() > h.P99() {
		t.Errorf("P90 %v > P99 %v", h.P90(), h.P99())
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamped to 0
	h.Observe(0)
	h.Observe(500 * time.Nanosecond) // sub-microsecond bucket
	h.Observe(1000 * time.Hour)      // beyond the last bucket bound
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if q := h.Quantile(1); q != bucketBound(numBuckets-1) {
		t.Errorf("max quantile = %v, want last bucket bound %v", q, bucketBound(numBuckets-1))
	}
	if h.Quantile(0) != 0 {
		t.Error("q<=0 should report 0")
	}
	// q > 1 is clamped.
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 should clamp to 1")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != time.Millisecond || s.Mean != time.Millisecond {
		t.Errorf("snapshot = %+v", s)
	}
	if s.P50 == 0 || s.P50 > 2*time.Millisecond {
		t.Errorf("P50 = %v", s.P50)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(time.Millisecond) })
	if allocs != 0 {
		t.Errorf("Observe allocates %v times per call, want 0", allocs)
	}
}

package obs

// Gray-failure events extend the observation layer with the latency-
// outlier vocabulary (internal/dist's Ejector): an endpoint ejected
// because its latency EWMA is a peer-relative outlier, a trickle probe
// granted to an ejected endpoint during probation, and a probed
// endpoint reinstated after sustained recovery.
//
// Like the distribution events (dist.go) this is an *optional*
// extension of Observer: observers that want gray-failure events
// additionally implement GrayObserver, and emitters route through the
// Emit* helpers so combined observers fan out correctly. The built-in
// Collector counts ejections, probes, and reinstatements under the
// ejector's executor name.

import "time"

// GrayObserver is the optional Observer extension receiving latency-
// outlier ejection events.
type GrayObserver interface {
	// ReplicaEjected reports that the ejector removed endpoint from
	// rotation: its latency EWMA exceeded the ejection threshold
	// relative to the fleet median at the moment of the verdict.
	ReplicaEjected(ejector, endpoint string, ewma, median time.Duration)
	// ProbeLaunched reports that a routing decision granted an ejected
	// endpoint one trickle probe (a real request routed to it so its
	// recovery can be observed).
	ProbeLaunched(ejector, endpoint string)
	// ReplicaReinstated reports that an ejected endpoint completed
	// probation — probes consecutive probes came back fast — and was
	// restored to full rotation.
	ReplicaReinstated(ejector, endpoint string, probes int)
}

// EmitReplicaEjected delivers an ejection event to o if it (or any
// member of a combined observer) implements GrayObserver. Nil
// observers are ignored.
func EmitReplicaEjected(o Observer, ejector, endpoint string, ewma, median time.Duration) {
	if g, ok := o.(GrayObserver); ok {
		g.ReplicaEjected(ejector, endpoint, ewma, median)
	}
}

// EmitProbeLaunched delivers a trickle-probe event to o if it
// implements GrayObserver. Nil observers are ignored.
func EmitProbeLaunched(o Observer, ejector, endpoint string) {
	if g, ok := o.(GrayObserver); ok {
		g.ProbeLaunched(ejector, endpoint)
	}
}

// EmitReplicaReinstated delivers a reinstatement event to o if it
// implements GrayObserver. Nil observers are ignored.
func EmitReplicaReinstated(o Observer, ejector, endpoint string, probes int) {
	if g, ok := o.(GrayObserver); ok {
		g.ReplicaReinstated(ejector, endpoint, probes)
	}
}

// ReplicaEjected implements GrayObserver for Nop.
func (Nop) ReplicaEjected(string, string, time.Duration, time.Duration) {}

// ProbeLaunched implements GrayObserver for Nop.
func (Nop) ProbeLaunched(string, string) {}

// ReplicaReinstated implements GrayObserver for Nop.
func (Nop) ReplicaReinstated(string, string, int) {}

var _ GrayObserver = Nop{}

// ReplicaEjected implements GrayObserver: the event reaches every
// member that implements the extension.
func (m multi) ReplicaEjected(ejector, endpoint string, ewma, median time.Duration) {
	for _, o := range m {
		if g, ok := o.(GrayObserver); ok {
			g.ReplicaEjected(ejector, endpoint, ewma, median)
		}
	}
}

// ProbeLaunched implements GrayObserver.
func (m multi) ProbeLaunched(ejector, endpoint string) {
	for _, o := range m {
		if g, ok := o.(GrayObserver); ok {
			g.ProbeLaunched(ejector, endpoint)
		}
	}
}

// ReplicaReinstated implements GrayObserver.
func (m multi) ReplicaReinstated(ejector, endpoint string, probes int) {
	for _, o := range m {
		if g, ok := o.(GrayObserver); ok {
			g.ReplicaReinstated(ejector, endpoint, probes)
		}
	}
}

var _ GrayObserver = multi(nil)

// ReplicaEjected implements GrayObserver: ejections are counted under
// the ejector's executor name.
func (c *Collector) ReplicaEjected(ejector, _ string, _, _ time.Duration) {
	c.exec(ejector).ejections.Add(1)
}

// ProbeLaunched implements GrayObserver.
func (c *Collector) ProbeLaunched(ejector, _ string) {
	c.exec(ejector).probeLaunches.Add(1)
}

// ReplicaReinstated implements GrayObserver.
func (c *Collector) ReplicaReinstated(ejector, _ string, _ int) {
	c.exec(ejector).reinstates.Add(1)
}

var _ GrayObserver = (*Collector)(nil)

package obs

import (
	"strings"
	"testing"
	"time"
)

// recordingRecovery captures recovery events for fan-out assertions.
type recordingRecovery struct {
	Nop
	checkpoints  int
	replays      int
	restarts     int
	escalations  int
	lastDowntime time.Duration
}

func (r *recordingRecovery) CheckpointTaken(string, uint64, int) { r.checkpoints++ }
func (r *recordingRecovery) WALReplayed(string, int, int64)      { r.replays++ }
func (r *recordingRecovery) ProcessRestarted(_, _ string, _ int, d time.Duration) {
	r.restarts++
	r.lastDowntime = d
}
func (r *recordingRecovery) EscalationRaised(string, string) { r.escalations++ }

func TestEmitRecoveryEventsFanOut(t *testing.T) {
	a := &recordingRecovery{}
	b := &recordingRecovery{}
	// plain has no RecoveryObserver implementation; it must simply be
	// skipped by the emit helpers without breaking the fan-out.
	plain := &eventLog{}
	o := Combine(a, plain, b)

	EmitCheckpointTaken(o, "worker", 10, 128)
	EmitWALReplayed(o, "worker", 3, 17)
	EmitProcessRestarted(o, "sup", "worker", 1, 5*time.Millisecond)
	EmitEscalationRaised(o, "sup", "worker")
	EmitCheckpointTaken(nil, "worker", 11, 1) // nil observer: no-op

	for _, r := range []*recordingRecovery{a, b} {
		if r.checkpoints != 1 || r.replays != 1 || r.restarts != 1 || r.escalations != 1 {
			t.Errorf("events = %+v, want one of each", r)
		}
		if r.lastDowntime != 5*time.Millisecond {
			t.Errorf("downtime = %v", r.lastDowntime)
		}
	}
}

func TestCollectorRecoveryCounters(t *testing.T) {
	c := NewCollector()
	var o Observer = c
	EmitCheckpointTaken(o, "worker", 1, 64)
	EmitCheckpointTaken(o, "worker", 2, 64)
	EmitWALReplayed(o, "worker", 5, 0)
	EmitProcessRestarted(o, "sup", "worker", 1, 2*time.Millisecond)
	EmitProcessRestarted(o, "sup", "worker", 2, 4*time.Millisecond)
	EmitEscalationRaised(o, "sup", "worker")

	var worker, sup ExecutorSnapshot
	for _, s := range c.Snapshot() {
		switch s.Executor {
		case "worker":
			worker = s
		case "sup":
			sup = s
		}
	}
	if worker.Checkpoints != 2 || worker.WALReplays != 1 {
		t.Errorf("worker snapshot = %+v", worker)
	}
	if sup.Restarts != 2 || sup.Escalations != 1 {
		t.Errorf("sup snapshot = %+v", sup)
	}
	if sup.MTTR.Count != 2 {
		t.Errorf("MTTR count = %d, want 2", sup.MTTR.Count)
	}
	h := c.ExecutorMTTR("sup")
	if h == nil || h.Count() != 2 {
		t.Fatalf("ExecutorMTTR = %v", h)
	}
	if c.ExecutorMTTR("unknown") != nil {
		t.Error("ExecutorMTTR should be nil for unobserved executors")
	}
}

func TestPrometheusRecoverySeries(t *testing.T) {
	c := NewCollector()
	EmitCheckpointTaken(c, "worker", 1, 64)
	EmitProcessRestarted(c, "sup", "worker", 1, 3*time.Millisecond)
	var b strings.Builder
	WritePrometheus(&b, c)
	out := b.String()
	for _, want := range []string{
		`redundancy_checkpoints_taken_total{executor="worker"} 1`,
		`redundancy_process_restarts_total{executor="sup"} 1`,
		`redundancy_mttr_seconds{executor="sup",quantile="0.99"}`,
		`redundancy_mttr_seconds_count{executor="sup"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	// Executors with no restarts must not produce an all-zero MTTR series.
	if strings.Contains(out, `redundancy_mttr_seconds_count{executor="worker"}`) {
		t.Error("worker (no restarts) should have no MTTR series")
	}
}

package des

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	_ = s.At(3, func() { order = append(order, 3) })
	_ = s.At(1, func() { order = append(order, 1) })
	_ = s.At(2, func() { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Errorf("Now = %f", s.Now())
	}
	if s.Processed != 3 {
		t.Errorf("Processed = %d", s.Processed)
	}
}

func TestTieBreakByScheduleOrder(t *testing.T) {
	s := New()
	var order []string
	_ = s.At(5, func() { order = append(order, "first") })
	_ = s.At(5, func() { order = append(order, "second") })
	s.Run(0)
	if order[0] != "first" || order[1] != "second" {
		t.Errorf("tie order = %v", order)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			if err := s.After(10, tick); err != nil {
				t.Error(err)
			}
		}
	}
	_ = s.After(10, tick)
	s.Run(0)
	if count != 5 {
		t.Errorf("ticks = %d", count)
	}
	if s.Now() != 50 {
		t.Errorf("Now = %f", s.Now())
	}
}

func TestRunMaxEventsBound(t *testing.T) {
	s := New()
	var tick func()
	tick = func() { _ = s.After(1, tick) } // never terminates on its own
	_ = s.After(1, tick)
	s.Run(100)
	if s.Processed != 100 {
		t.Errorf("Processed = %d, want bounded 100", s.Processed)
	}
	if s.Pending() == 0 {
		t.Error("pending event should remain")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	ran := []float64{}
	for _, at := range []float64{1, 2, 8, 9} {
		at := at
		_ = s.At(at, func() { ran = append(ran, at) })
	}
	if err := s.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 {
		t.Errorf("ran = %v, want events at 1 and 2", ran)
	}
	if s.Now() != 5 {
		t.Errorf("Now = %f, want 5", s.Now())
	}
	if err := s.RunUntil(4); !errors.Is(err, ErrPastEvent) {
		t.Errorf("backwards RunUntil err = %v", err)
	}
	if err := s.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 4 {
		t.Errorf("ran = %v", ran)
	}
}

func TestSchedulingValidation(t *testing.T) {
	s := New()
	_ = s.At(5, func() {})
	s.Run(0)
	if err := s.At(1, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("past event err = %v", err)
	}
	if err := s.After(-1, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("negative delay err = %v", err)
	}
	if err := s.At(10, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

// Property: however events are scheduled, execution times are
// non-decreasing.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var times []float64
		for _, d := range delays {
			at := float64(d % 1000)
			if err := s.At(at, func() { times = append(times, s.Now()) }); err != nil {
				return false
			}
		}
		s.Run(0)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Package des is a minimal discrete-event simulation kernel: a virtual
// clock and an event queue with deterministic ordering. The time-based
// dependability experiments (failure/repair processes with exponential
// holding times, availability sampling) run on it, while the rest of the
// framework stays purely request-driven.
package des

import (
	"container/heap"
	"errors"
)

// ErrPastEvent reports an event scheduled before the current virtual time.
var ErrPastEvent = errors.New("des: event scheduled in the past")

// event is one scheduled callback.
type event struct {
	at  float64
	seq int64 // tie-breaker: schedule order
	fn  func()
}

// eventHeap orders events by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Scheduler is the simulation kernel. It is not safe for concurrent use:
// discrete-event simulations are sequential by construction.
type Scheduler struct {
	now    float64
	queue  eventHeap
	nextID int64

	// Processed counts executed events.
	Processed int
}

// New creates a scheduler at virtual time 0.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() float64 { return s.now }

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// At schedules fn at absolute virtual time t.
func (s *Scheduler) At(t float64, fn func()) error {
	if t < s.now {
		return ErrPastEvent
	}
	if fn == nil {
		return errors.New("des: nil event function")
	}
	heap.Push(&s.queue, event{at: t, seq: s.nextID, fn: fn})
	s.nextID++
	return nil
}

// After schedules fn d time units from now (d < 0 is an error).
func (s *Scheduler) After(d float64, fn func()) error {
	if d < 0 {
		return ErrPastEvent
	}
	return s.At(s.now+d, fn)
}

// step executes the earliest event, advancing the clock.
func (s *Scheduler) step() {
	ev, ok := heap.Pop(&s.queue).(event)
	if !ok {
		return
	}
	s.now = ev.at
	s.Processed++
	ev.fn()
}

// Run processes events until the queue is empty or maxEvents have run
// (a safety bound against non-terminating simulations; <= 0 means no
// bound).
func (s *Scheduler) Run(maxEvents int) {
	for s.queue.Len() > 0 {
		if maxEvents > 0 && s.Processed >= maxEvents {
			return
		}
		s.step()
	}
}

// RunUntil processes all events scheduled at or before t, then advances
// the clock to exactly t.
func (s *Scheduler) RunUntil(t float64) error {
	if t < s.now {
		return ErrPastEvent
	}
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.step()
	}
	s.now = t
	return nil
}

package service

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

var calcSig = Signature{Name: "calculator", Ops: []string{"add", "mul"}}

func calcService(t *testing.T, name string) *SimService {
	t.Helper()
	s, err := NewSimService(name, calcSig, map[string]func(int) (int, error){
		"add": func(x int) (int, error) { return x + 1, nil },
		"mul": func(x int) (int, error) { return x * 2, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// arithService offers a similar interface with different op names.
func arithService(t *testing.T, name string) *SimService {
	t.Helper()
	s, err := NewSimService(name, Signature{Name: "arith", Ops: []string{"plus", "mul"}},
		map[string]func(int) (int, error){
			"plus": func(x int) (int, error) { return x + 1, nil },
			"mul":  func(x int) (int, error) { return x * 2, nil },
		})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimilarity(t *testing.T) {
	a := Signature{Ops: []string{"x", "y"}}
	b := Signature{Ops: []string{"x", "y", "z"}}
	c := Signature{Ops: []string{"x"}}
	if got := Similarity(a, b); got != 1 {
		t.Errorf("Similarity(a, b) = %f", got)
	}
	if got := Similarity(a, c); got != 0.5 {
		t.Errorf("Similarity(a, c) = %f", got)
	}
	if got := Similarity(Signature{}, b); got != 0 {
		t.Errorf("empty wanted = %f", got)
	}
}

func TestSimServiceInvoke(t *testing.T) {
	s := calcService(t, "c1")
	got, err := s.Invoke(context.Background(), "add", 4)
	if err != nil || got != 5 {
		t.Errorf("= (%d, %v)", got, err)
	}
	if _, err := s.Invoke(context.Background(), "div", 4); !errors.Is(err, ErrUnknownOp) {
		t.Errorf("err = %v", err)
	}
	s.SetDown(true)
	if _, err := s.Invoke(context.Background(), "add", 4); !errors.Is(err, ErrServiceDown) {
		t.Errorf("err = %v", err)
	}
	if s.Invocations != 3 {
		t.Errorf("Invocations = %d", s.Invocations)
	}
}

func TestSimServiceFlaky(t *testing.T) {
	s := calcService(t, "c1")
	s.SetFlaky(0.5, xrand.New(1))
	failures := 0
	for i := 0; i < 2000; i++ {
		if _, err := s.Invoke(context.Background(), "add", 1); err != nil {
			failures++
		}
	}
	rate := float64(failures) / 2000
	if math.Abs(rate-0.5) > 0.05 {
		t.Errorf("flaky rate = %f, want ~0.5", rate)
	}
}

func TestSimServiceValidation(t *testing.T) {
	if _, err := NewSimService("", calcSig, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSimService("x", calcSig, map[string]func(int) (int, error){}); err == nil {
		t.Error("missing handlers accepted")
	}
}

func TestRegistryFindExact(t *testing.T) {
	r := NewRegistry()
	c1 := calcService(t, "c1")
	a1 := arithService(t, "a1")
	if err := r.Register(c1, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(a1, nil); err != nil {
		t.Fatal(err)
	}
	exact := r.FindExact(calcSig)
	if len(exact) != 1 || exact[0].Name() != "c1" {
		t.Errorf("exact = %v", exact)
	}
}

func TestRegistryFindSimilarWithConverter(t *testing.T) {
	r := NewRegistry()
	a1 := arithService(t, "a1")
	if err := r.Register(a1, Converter{"add": "plus"}); err != nil {
		t.Fatal(err)
	}
	similar := r.FindSimilar(calcSig, 0.4)
	if len(similar) != 1 {
		t.Fatalf("similar = %v", similar)
	}
	got, err := similar[0].Invoke(context.Background(), "add", 4)
	if err != nil || got != 5 {
		t.Errorf("adapted invoke = (%d, %v)", got, err)
	}
}

func TestRegistryFindSimilarThreshold(t *testing.T) {
	r := NewRegistry()
	a1 := arithService(t, "a1") // similarity 0.5 ("mul" matches, "add" doesn't)
	if err := r.Register(a1, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.FindSimilar(calcSig, 0.9); len(got) != 0 {
		t.Errorf("threshold not enforced: %v", got)
	}
	if got := r.FindSimilar(calcSig, 0.5); len(got) != 1 {
		t.Errorf("qualifying provider missed: %v", got)
	}
}

func TestRegistryRegisterNil(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil, nil); err == nil {
		t.Error("nil service accepted")
	}
}

func TestProxyBindsExactProvider(t *testing.T) {
	r := NewRegistry()
	c1 := calcService(t, "c1")
	if err := r.Register(c1, nil); err != nil {
		t.Fatal(err)
	}
	p, err := NewProxy(r, calcSig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound() != "c1" {
		t.Errorf("bound = %s", p.Bound())
	}
	got, err := p.Invoke(context.Background(), "mul", 3)
	if err != nil || got != 6 {
		t.Errorf("= (%d, %v)", got, err)
	}
}

func TestProxySubstitutesOnFailure(t *testing.T) {
	r := NewRegistry()
	c1 := calcService(t, "c1")
	c2 := calcService(t, "c2")
	if err := r.Register(c1, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(c2, nil); err != nil {
		t.Fatal(err)
	}
	p, err := NewProxy(r, calcSig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c1.SetDown(true)
	got, err := p.Invoke(context.Background(), "add", 1)
	if err != nil || got != 2 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	if p.Bound() != "c2" || p.Substitutions != 1 {
		t.Errorf("bound = %s, substitutions = %d", p.Bound(), p.Substitutions)
	}
}

func TestProxyFallsBackToSimilarService(t *testing.T) {
	r := NewRegistry()
	c1 := calcService(t, "c1")
	a1 := arithService(t, "a1")
	if err := r.Register(c1, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(a1, Converter{"add": "plus"}); err != nil {
		t.Fatal(err)
	}
	p, err := NewProxy(r, calcSig, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	c1.SetDown(true)
	got, err := p.Invoke(context.Background(), "add", 10)
	if err != nil || got != 11 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	if p.Bound() != "a1(adapted)" {
		t.Errorf("bound = %s", p.Bound())
	}
}

func TestProxyAllProvidersDown(t *testing.T) {
	r := NewRegistry()
	c1 := calcService(t, "c1")
	c2 := calcService(t, "c2")
	_ = r.Register(c1, nil)
	_ = r.Register(c2, nil)
	p, err := NewProxy(r, calcSig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c1.SetDown(true)
	c2.SetDown(true)
	if _, err := p.Invoke(context.Background(), "add", 1); !errors.Is(err, ErrNoProvider) {
		t.Errorf("err = %v", err)
	}
}

func TestProxyNoProviderAtConstruction(t *testing.T) {
	r := NewRegistry()
	if _, err := NewProxy(r, calcSig, 0.5); !errors.Is(err, ErrNoProvider) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewProxy(nil, calcSig, 0.5); err == nil {
		t.Error("nil registry accepted")
	}
}

func TestProxyStatefulRebindHook(t *testing.T) {
	r := NewRegistry()
	c1 := calcService(t, "c1")
	c2 := calcService(t, "c2")
	_ = r.Register(c1, nil)
	_ = r.Register(c2, nil)
	p, err := NewProxy(r, calcSig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var transferred []string
	p.OnRebind = func(from, to Service) error {
		transferred = append(transferred, from.Name()+"->"+to.Name())
		return nil
	}
	c1.SetDown(true)
	if _, err := p.Invoke(context.Background(), "add", 1); err != nil {
		t.Fatal(err)
	}
	if len(transferred) != 1 || transferred[0] != "c1->c2" {
		t.Errorf("transfers = %v", transferred)
	}
}

func TestProxyStateTransferFailureAborts(t *testing.T) {
	r := NewRegistry()
	c1 := calcService(t, "c1")
	c2 := calcService(t, "c2")
	_ = r.Register(c1, nil)
	_ = r.Register(c2, nil)
	p, err := NewProxy(r, calcSig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.OnRebind = func(_, _ Service) error { return errors.New("state too large") }
	c1.SetDown(true)
	if _, err := p.Invoke(context.Background(), "add", 1); !errors.Is(err, ErrNoProvider) {
		t.Errorf("err = %v", err)
	}
}

func TestProxyRecoveredProviderReusedNextInvocation(t *testing.T) {
	r := NewRegistry()
	c1 := calcService(t, "c1")
	c2 := calcService(t, "c2")
	_ = r.Register(c1, nil)
	_ = r.Register(c2, nil)
	p, err := NewProxy(r, calcSig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c1.SetDown(true)
	if _, err := p.Invoke(context.Background(), "add", 1); err != nil {
		t.Fatal(err)
	}
	// c2 now bound; if c2 later fails and c1 recovered, the proxy finds
	// c1 again on the next invocation.
	c1.SetDown(false)
	c2.SetDown(true)
	got, err := p.Invoke(context.Background(), "add", 5)
	if err != nil || got != 6 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	if p.Bound() != "c1" {
		t.Errorf("bound = %s", p.Bound())
	}
}

func TestAdaptPassthroughForUnmappedOps(t *testing.T) {
	a1 := arithService(t, "a1")
	ad := Adapt(a1, Converter{"add": "plus"})
	got, err := ad.Invoke(context.Background(), "mul", 3)
	if err != nil || got != 6 {
		t.Errorf("= (%d, %v)", got, err)
	}
}

// Package service implements dynamic service substitution: the
// opportunistic exploitation of independently developed services that
// implement the same or similar interfaces. On failure of the bound
// provider, a registry lookup finds an alternative implementation —
// exact-interface matches first (Subramanian et al.), then services with
// sufficiently similar interfaces adapted through converters (Taher et
// al.) — and a transparent proxy rebinds the application without manual
// modification (Sadjadi's transparent shaping, Mosincat's dynamic
// binding, including stateful services via a state-transfer hook).
//
// Taxonomy position (paper Table 2): opportunistic intention, code
// redundancy, reactive explicit adjudicator, development faults.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

// Service errors.
var (
	// ErrServiceDown reports an unavailable provider.
	ErrServiceDown = errors.New("service: provider down")
	// ErrUnknownOp reports an operation the provider does not implement.
	ErrUnknownOp = errors.New("service: unknown operation")
	// ErrNoProvider reports that no (further) substitute could be found.
	ErrNoProvider = errors.New("service: no provider available")
)

// Signature describes a service interface: a name and its operation set.
type Signature struct {
	// Name is the interface name.
	Name string
	// Ops are the operation names the interface offers.
	Ops []string
}

// Similarity returns the fraction of s's operations that t also offers —
// the interface-similarity measure used to search substitute services
// beyond exact matches.
func Similarity(s, t Signature) float64 {
	if len(s.Ops) == 0 {
		return 0
	}
	offered := make(map[string]bool, len(t.Ops))
	for _, op := range t.Ops {
		offered[op] = true
	}
	matched := 0
	for _, op := range s.Ops {
		if offered[op] {
			matched++
		}
	}
	return float64(matched) / float64(len(s.Ops))
}

// Service is one provider of an interface.
type Service interface {
	// Name identifies the provider.
	Name() string
	// Signature returns the provider's interface.
	Signature() Signature
	// Invoke performs one operation.
	Invoke(ctx context.Context, op string, arg int) (int, error)
}

// SimService is a simulated provider with an availability model: it can
// be hard down (SetDown) or flaky (failing each invocation with a fixed
// probability), which is how experiments model server and network
// problems of real service-oriented systems.
type SimService struct {
	name     string
	sig      Signature
	handlers map[string]func(arg int) (int, error)

	down     bool
	failProb float64
	rng      *xrand.Rand

	// Invocations counts Invoke calls (including failed ones).
	Invocations int
}

var _ Service = (*SimService)(nil)

// NewSimService creates a provider for the given interface with one
// handler per operation.
func NewSimService(name string, sig Signature, handlers map[string]func(int) (int, error)) (*SimService, error) {
	if name == "" {
		return nil, errors.New("service: empty name")
	}
	for _, op := range sig.Ops {
		if handlers[op] == nil {
			return nil, fmt.Errorf("service: %s lacks a handler for op %q", name, op)
		}
	}
	hs := make(map[string]func(int) (int, error), len(handlers))
	for k, v := range handlers {
		hs[k] = v
	}
	ops := make([]string, len(sig.Ops))
	copy(ops, sig.Ops)
	return &SimService{
		name:     name,
		sig:      Signature{Name: sig.Name, Ops: ops},
		handlers: hs,
	}, nil
}

// SetDown marks the provider hard down (or up again).
func (s *SimService) SetDown(down bool) { s.down = down }

// SetFlaky makes each invocation fail with probability p, drawn from rng.
func (s *SimService) SetFlaky(p float64, rng *xrand.Rand) {
	s.failProb = p
	s.rng = rng
}

// Name implements Service.
func (s *SimService) Name() string { return s.name }

// Signature implements Service.
func (s *SimService) Signature() Signature {
	ops := make([]string, len(s.sig.Ops))
	copy(ops, s.sig.Ops)
	return Signature{Name: s.sig.Name, Ops: ops}
}

// Invoke implements Service.
func (s *SimService) Invoke(_ context.Context, op string, arg int) (int, error) {
	s.Invocations++
	if s.down {
		return 0, fmt.Errorf("%s: %w", s.name, ErrServiceDown)
	}
	if s.failProb > 0 && s.rng != nil && s.rng.Bool(s.failProb) {
		return 0, fmt.Errorf("%s transient failure: %w", s.name, ErrServiceDown)
	}
	h, ok := s.handlers[op]
	if !ok {
		return 0, fmt.Errorf("%s op %q: %w", s.name, op, ErrUnknownOp)
	}
	return h(arg)
}

// Converter renames operations so a similar-but-different interface can
// substitute the wanted one (Taher-style adaptation): keys are wanted op
// names, values the provider's op names.
type Converter map[string]string

// adapted wraps a provider with a converter.
type adapted struct {
	inner Service
	conv  Converter
}

var _ Service = (*adapted)(nil)

// Adapt wraps svc so that wanted operation names are converted before
// invocation.
func Adapt(svc Service, conv Converter) Service {
	c := make(Converter, len(conv))
	for k, v := range conv {
		c[k] = v
	}
	return &adapted{inner: svc, conv: c}
}

func (a *adapted) Name() string { return a.inner.Name() + "(adapted)" }

func (a *adapted) Signature() Signature { return a.inner.Signature() }

func (a *adapted) Invoke(ctx context.Context, op string, arg int) (int, error) {
	if target, ok := a.conv[op]; ok {
		op = target
	}
	return a.inner.Invoke(ctx, op, arg)
}

// Registry indexes available providers.
type Registry struct {
	services []Service
	// converters[provider name] adapts that provider to wanted interfaces.
	converters map[string]Converter
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{converters: make(map[string]Converter)}
}

// Register adds a provider, optionally with a converter that adapts it to
// interfaces it does not match exactly (pass nil when not needed).
func (r *Registry) Register(svc Service, conv Converter) error {
	if svc == nil {
		return errors.New("service: nil service")
	}
	r.services = append(r.services, svc)
	if conv != nil {
		c := make(Converter, len(conv))
		for k, v := range conv {
			c[k] = v
		}
		r.converters[svc.Name()] = c
	}
	return nil
}

// FindExact returns the providers whose interface offers every wanted
// operation, in registration order.
func (r *Registry) FindExact(want Signature) []Service {
	var out []Service
	for _, s := range r.services {
		if Similarity(want, s.Signature()) == 1 {
			out = append(out, s)
		}
	}
	return out
}

// FindSimilar returns providers with interface similarity of at least
// minSim (exclusive of exact matches), adapted through their registered
// converters, best match first.
func (r *Registry) FindSimilar(want Signature, minSim float64) []Service {
	type scored struct {
		svc Service
		sim float64
	}
	var candidates []scored
	for _, s := range r.services {
		sim := Similarity(want, s.Signature())
		if sim >= 1 || sim < minSim {
			continue
		}
		svc := s
		if conv, ok := r.converters[s.Name()]; ok {
			svc = Adapt(s, conv)
			// With the converter, coverage may become complete.
			candidates = append(candidates, scored{svc: svc, sim: sim + 0.5})
			continue
		}
		candidates = append(candidates, scored{svc: svc, sim: sim})
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		return candidates[i].sim > candidates[j].sim
	})
	out := make([]Service, len(candidates))
	for i, c := range candidates {
		out[i] = c.svc
	}
	return out
}

// Proxy is the transparent rebinding client: it invokes the bound
// provider and, on failure, substitutes an alternative found in the
// registry, transferring state through the optional hook.
type Proxy struct {
	registry *Registry
	want     Signature
	bound    Service
	minSim   float64

	// OnRebind, if set, transfers state from the failed provider to the
	// substitute before the retry (stateful services à la Mosincat).
	OnRebind func(from, to Service) error

	// Substitutions counts successful rebinds.
	Substitutions int
}

// NewProxy binds the first exact provider for want.
func NewProxy(registry *Registry, want Signature, minSim float64) (*Proxy, error) {
	if registry == nil {
		return nil, errors.New("service: nil registry")
	}
	p := &Proxy{registry: registry, want: want, minSim: minSim}
	if err := p.rebind(nil); err != nil {
		return nil, err
	}
	return p, nil
}

// Bound returns the currently bound provider's name.
func (p *Proxy) Bound() string {
	if p.bound == nil {
		return ""
	}
	return p.bound.Name()
}

// rebind selects the best provider, skipping the failed one.
func (p *Proxy) rebind(failed Service) error {
	candidates := append(p.registry.FindExact(p.want), p.registry.FindSimilar(p.want, p.minSim)...)
	for _, c := range candidates {
		if failed != nil && c.Name() == failed.Name() {
			continue
		}
		if p.bound != nil && failed != nil && c.Name() == p.bound.Name() {
			continue
		}
		if failed != nil && p.OnRebind != nil {
			if err := p.OnRebind(failed, c); err != nil {
				return fmt.Errorf("state transfer to %s: %w", c.Name(), err)
			}
		}
		p.bound = c
		return nil
	}
	return ErrNoProvider
}

// Invoke performs op through the bound provider, substituting on failure.
// Each failure triggers at most one substitution per remaining candidate.
func (p *Proxy) Invoke(ctx context.Context, op string, arg int) (int, error) {
	if p.bound == nil {
		return 0, ErrNoProvider
	}
	tried := map[string]bool{}
	for {
		out, err := p.bound.Invoke(ctx, op, arg)
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		tried[p.bound.Name()] = true
		failed := p.bound
		if rerr := p.rebindSkipping(failed, tried); rerr != nil {
			return 0, fmt.Errorf("%w: last error: %w", ErrNoProvider, err)
		}
		p.Substitutions++
	}
}

// rebindSkipping rebinds to a provider not yet tried in this invocation.
func (p *Proxy) rebindSkipping(failed Service, tried map[string]bool) error {
	candidates := append(p.registry.FindExact(p.want), p.registry.FindSimilar(p.want, p.minSim)...)
	for _, c := range candidates {
		base := c.Name()
		if tried[base] || tried[trimAdapted(base)] {
			continue
		}
		if p.OnRebind != nil {
			if err := p.OnRebind(failed, c); err != nil {
				return fmt.Errorf("state transfer to %s: %w", c.Name(), err)
			}
		}
		p.bound = c
		return nil
	}
	return ErrNoProvider
}

// trimAdapted strips the "(adapted)" suffix so an adapted provider is not
// retried when its raw form already failed.
func trimAdapted(name string) string {
	const suffix = "(adapted)"
	if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
		return name[:len(name)-len(suffix)]
	}
	return name
}

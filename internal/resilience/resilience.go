// Package resilience is the composable policy layer that keeps the
// redundancy mechanisms from amplifying failures: circuit breakers stop
// a deterministically failing (Bohrbug-afflicted) variant from being
// hammered on every request, retry budgets bound how much extra work
// re-execution may add under stress, bulkheads shed overload fast
// instead of queueing to death, deadline policies guarantee that a hung
// variant can never wedge an executor, and degradation ladders keep
// serving (a cached last-good value, then a degraded variant) when the
// redundant executor itself fails.
//
// The paper's reactive techniques (recovery blocks, retry/checkpoint,
// rejuvenation) assume that *something* eventually stops a failing
// component; De Florio's survey of application-layer fault-tolerance
// protocols argues these guards belong in an explicit application-level
// layer, and Shoker's retry-budget argument — spend redundancy only
// where it pays — is exactly what breakers and budgets enforce. This
// package is that layer: plain policy values, wired into the pattern
// executors via pattern.WithBreaker, WithRetryPolicy, WithBulkhead,
// WithDeadline and WithFallback, and into composite retries via the
// same options.
//
// Every policy decision is observable: state transitions and shedding
// decisions emit through the obs.PolicyObserver extension
// (BreakerStateChanged, RequestShed, DegradedServe), so the metrics
// handler, trace recorder and health engine see the policy layer act.
//
// All policies are deterministic given their configuration and, where
// randomness is involved (retry jitter), an explicit xrand seed — the
// same discipline as the rest of the framework, which is what makes the
// chaos campaigns of internal/faultmodel exactly reproducible.
package resilience

import (
	"errors"
	"time"
)

// Typed policy errors. Executors wrap them, so test with errors.Is.
var (
	// ErrBreakerOpen is returned (without executing the variant) when a
	// circuit breaker rejects a call.
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrShedded is returned fast when a bulkhead rejects a request
	// under overload instead of queueing it.
	ErrShedded = errors.New("resilience: request shed")
	// ErrDegraded marks an executor failure after the degradation
	// ladder was consulted and could not serve; it wraps the original
	// failure.
	ErrDegraded = errors.New("resilience: degraded, no fallback available")
	// ErrRetryBudgetExhausted is returned when the shared retry budget
	// denies further re-execution.
	ErrRetryBudgetExhausted = errors.New("resilience: retry budget exhausted")
)

// DeadlinePolicy bounds execution time so that a hung variant (the
// faultmodel FailHang manifestation) can never wedge an executor even
// when the caller forgot a context deadline. Both bounds are optional;
// a tighter deadline inherited from the request context always wins
// (context.WithTimeout keeps the sooner of parent and child deadlines).
type DeadlinePolicy struct {
	// Request bounds one whole Execute call: variant executions,
	// queueing at the bulkhead, and adjudication.
	Request time.Duration
	// Variant is the default per-variant deadline, used when the
	// executor has no explicit per-variant timeout configured
	// (pattern.WithVariantTimeout takes precedence).
	Variant time.Duration
}

// VariantDeadline resolves the effective per-variant deadline given an
// explicitly configured timeout (zero means none).
func (p DeadlinePolicy) VariantDeadline(explicit time.Duration) time.Duration {
	if explicit > 0 {
		return explicit
	}
	return p.Variant
}

// Zero reports whether the policy imposes no bound at all.
func (p DeadlinePolicy) Zero() bool { return p.Request <= 0 && p.Variant <= 0 }

package resilience

import (
	"context"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/xrand"
)

// RetryPolicy parameterizes budgeted, backed-off retries. The zero
// value means "one attempt, no pacing" — the compatibility default that
// keeps legacy retry loops (composite.Retry slept 0 between attempts)
// behaving exactly as before.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// Zero or negative means 1 where an attempt count is required
	// (Single, composite.Retry's policy form) and "no cap" where the
	// attempt count comes from elsewhere (sequential alternatives try
	// each configured variant).
	MaxAttempts int
	// BaseBackoff is the pause before the first retry; each further
	// retry multiplies it by Multiplier (exponential backoff). Zero
	// keeps the legacy behavior: no sleep between attempts.
	BaseBackoff time.Duration
	// MaxBackoff caps the grown backoff; zero means no cap.
	MaxBackoff time.Duration
	// Multiplier is the backoff growth factor; values <= 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each backoff randomized in [0, 1]: the
	// pause becomes d*(1-Jitter) + u*d*Jitter with u uniform in [0,1).
	// Draws come from a deterministic xrand stream seeded by Seed.
	Jitter float64
	// Seed seeds the jitter stream (xrand); the zero seed is valid.
	Seed uint64
	// Budget, if non-nil, is a shared retry budget: every retry
	// withdraws one token and retries stop (with
	// ErrRetryBudgetExhausted) when the budget is empty.
	Budget *RetryBudget
}

// Retrier is a prepared RetryPolicy: it owns the (locked) jitter stream
// so one policy value can pace concurrent executors deterministically.
// Build it with NewRetrier; pattern.WithRetryPolicy does so internally.
type Retrier struct {
	p   RetryPolicy
	mu  sync.Mutex
	rng *xrand.Rand
}

// NewRetrier prepares a policy for concurrent use.
func NewRetrier(p RetryPolicy) *Retrier {
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	r := &Retrier{p: p}
	if p.Jitter > 0 {
		r.rng = xrand.New(p.Seed)
	}
	return r
}

// MaxAttempts returns the configured total attempt count, at least 1.
func (r *Retrier) MaxAttempts() int {
	if r.p.MaxAttempts < 1 {
		return 1
	}
	return r.p.MaxAttempts
}

// AttemptCap returns the configured attempt count without defaulting:
// zero means the policy does not cap attempts (sequential alternatives
// then try every configured variant).
func (r *Retrier) AttemptCap() int {
	if r.p.MaxAttempts < 1 {
		return 0
	}
	return r.p.MaxAttempts
}

// Budget returns the shared retry budget, or nil.
func (r *Retrier) Budget() *RetryBudget { return r.p.Budget }

// Backoff returns the pause before the given attempt (attempts count
// from 1 for the primary, so the first retry is attempt 2). Zero base
// backoff always yields zero — the legacy compatibility default.
func (r *Retrier) Backoff(attempt int) time.Duration {
	if r.p.BaseBackoff <= 0 || attempt <= 1 {
		return 0
	}
	d := float64(r.p.BaseBackoff)
	for i := 0; i < attempt-2; i++ {
		d *= r.p.Multiplier
		if r.p.MaxBackoff > 0 && d >= float64(r.p.MaxBackoff) {
			d = float64(r.p.MaxBackoff)
			break
		}
	}
	if r.p.MaxBackoff > 0 && d > float64(r.p.MaxBackoff) {
		d = float64(r.p.MaxBackoff)
	}
	if r.p.Jitter > 0 {
		r.mu.Lock()
		u := r.rng.Float64()
		r.mu.Unlock()
		d = d*(1-r.p.Jitter) + u*d*r.p.Jitter
	}
	return time.Duration(d)
}

// Pause sleeps the backoff before the given attempt, honoring context
// cancellation. A zero backoff returns immediately without touching a
// timer (so the compatibility default adds no timer churn).
func (r *Retrier) Pause(ctx context.Context, attempt int) error {
	d := r.Backoff(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryBudget is a deterministic, clock-free retry budget in the
// Finagle style: every request deposits DepositPerRequest tokens
// (capped at Cap), and every retry withdraws one. When the balance
// drops below one token, retries are denied until fresh requests
// deposit again — so retry amplification is bounded to roughly
// DepositPerRequest extra executions per request under sustained
// failure, instead of multiplying the load when the system is already
// unhealthy.
type RetryBudget struct {
	mu      sync.Mutex
	balance float64
	cap     float64
	deposit float64

	withdrawals uint64
	denials     uint64
}

// NewRetryBudget returns a budget with the given token capacity and
// per-request deposit. The budget starts full, so a cold burst of
// retries up to cap is allowed. Non-positive arguments default to
// cap 10, deposit 0.1 (10% retry ratio).
func NewRetryBudget(cap, depositPerRequest float64) *RetryBudget {
	if cap <= 0 {
		cap = 10
	}
	if depositPerRequest <= 0 {
		depositPerRequest = 0.1
	}
	return &RetryBudget{balance: cap, cap: cap, deposit: depositPerRequest}
}

// Deposit credits one request's worth of retry allowance.
func (b *RetryBudget) Deposit() {
	b.mu.Lock()
	b.balance += b.deposit
	if b.balance > b.cap {
		b.balance = b.cap
	}
	b.mu.Unlock()
}

// Withdraw takes one retry token, reporting whether the retry is
// allowed.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.balance < 1 {
		b.denials++
		return false
	}
	b.balance--
	b.withdrawals++
	return true
}

// DepositPerRequest returns the current per-request deposit rate.
func (b *RetryBudget) DepositPerRequest() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.deposit
}

// SetDepositPerRequest retunes the per-request deposit rate at runtime
// — the autonomic controller lowers it when the error budget is
// burning (retries amplify load exactly when the system is unhealthy)
// and restores it when the burn subsides. Non-positive rates clamp to
// 0, freezing new allowance without confiscating the balance already
// earned.
func (b *RetryBudget) SetDepositPerRequest(rate float64) {
	if rate < 0 {
		rate = 0
	}
	b.mu.Lock()
	b.deposit = rate
	b.mu.Unlock()
}

// Balance returns the current token balance.
func (b *RetryBudget) Balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balance
}

// Denials returns how many retries the budget has denied.
func (b *RetryBudget) Denials() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denials
}

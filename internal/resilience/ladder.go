package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/softwarefaults/redundancy/internal/core"
)

// errLadderEmpty reports that no rung of the ladder could serve.
var errLadderEmpty = errors.New("resilience: no fallback rung served")

// Ladder is the degradation ladder of one executor: an ordered list of
// fallbacks consulted when the redundant executor itself fails. The
// rungs, in order:
//
//  1. the cached last-good value (enabled by CacheLastGood; executors
//     store every successful result via Store);
//  2. a degraded variant (set by DegradedVariant) — a cheaper, simpler
//     implementation that trades quality for availability;
//  3. nothing: the executor's failure is returned wrapped in
//     ErrDegraded so callers can tell "failed with fallbacks
//     exhausted" from a plain failure.
//
// Serving from the ladder emits a DegradedServe observation event (the
// pattern executors do this), so degraded operation is always visible.
// Ladder is safe for concurrent use.
type Ladder[I, O any] struct {
	mu       sync.RWMutex
	last     O
	haveLast bool
	cache    bool
	degraded core.Variant[I, O]

	cacheServes    atomic.Int64
	degradedServes atomic.Int64
}

// NewLadder returns an empty ladder; enable rungs with CacheLastGood
// and DegradedVariant.
func NewLadder[I, O any]() *Ladder[I, O] { return &Ladder[I, O]{} }

// CacheLastGood enables the last-good-value rung and returns the ladder
// for chaining.
func (l *Ladder[I, O]) CacheLastGood() *Ladder[I, O] {
	l.mu.Lock()
	l.cache = true
	l.mu.Unlock()
	return l
}

// DegradedVariant sets the degraded-variant rung and returns the ladder
// for chaining. The variant runs with panic containment.
func (l *Ladder[I, O]) DegradedVariant(v core.Variant[I, O]) *Ladder[I, O] {
	l.mu.Lock()
	l.degraded = v
	l.mu.Unlock()
	return l
}

// Store records a successful result as the last-good value. Executors
// call it on every accepted result; it is a no-op until CacheLastGood
// enables the rung.
func (l *Ladder[I, O]) Store(value O) {
	l.mu.Lock()
	if l.cache {
		l.last = value
		l.haveLast = true
	}
	l.mu.Unlock()
}

// LastGood returns the cached value and whether one is present.
func (l *Ladder[I, O]) LastGood() (O, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.last, l.haveLast
}

// Serve walks the rungs and returns the first value obtained, naming
// the rung that served ("cache" or "degraded-variant"). It returns an
// error when every rung is exhausted.
func (l *Ladder[I, O]) Serve(ctx context.Context, input I) (O, string, error) {
	l.mu.RLock()
	value, have, degraded := l.last, l.cache && l.haveLast, l.degraded
	l.mu.RUnlock()
	if have {
		l.cacheServes.Add(1)
		return value, "cache", nil
	}
	if degraded != nil {
		out, err := core.Guard(degraded).Execute(ctx, input)
		if err == nil {
			l.degradedServes.Add(1)
			return out, "degraded-variant", nil
		}
		var zero O
		return zero, "", err
	}
	var zero O
	return zero, "", errLadderEmpty
}

// CacheServes returns how many requests the last-good rung answered.
func (l *Ladder[I, O]) CacheServes() int64 { return l.cacheServes.Load() }

// DegradedServes returns how many requests the degraded-variant rung
// answered.
func (l *Ladder[I, O]) DegradedServes() int64 { return l.degradedServes.Load() }

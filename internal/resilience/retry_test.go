package resilience

import (
	"context"
	"testing"
	"time"
)

func TestRetrierZeroValueIsLegacyDefault(t *testing.T) {
	r := NewRetrier(RetryPolicy{})
	if got := r.MaxAttempts(); got != 1 {
		t.Errorf("MaxAttempts = %d, want 1", got)
	}
	if got := r.AttemptCap(); got != 0 {
		t.Errorf("AttemptCap = %d, want 0 (uncapped)", got)
	}
	for attempt := 1; attempt <= 5; attempt++ {
		if d := r.Backoff(attempt); d != 0 {
			t.Errorf("Backoff(%d) = %v, want 0", attempt, d)
		}
	}
	if err := r.Pause(context.Background(), 2); err != nil {
		t.Errorf("Pause = %v, want nil", err)
	}
}

func TestBackoffExponentialGrowthAndCap(t *testing.T) {
	r := NewRetrier(RetryPolicy{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
	})
	want := []time.Duration{
		0,                     // attempt 1: the primary, no pause
		10 * time.Millisecond, // first retry
		20 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond, // capped
		40 * time.Millisecond,
	}
	for i, w := range want {
		if got := r.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterDeterministicPerSeed(t *testing.T) {
	policy := RetryPolicy{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  time.Second,
		Jitter:      0.5,
		Seed:        42,
	}
	a, b := NewRetrier(policy), NewRetrier(policy)
	for attempt := 2; attempt <= 10; attempt++ {
		da, db := a.Backoff(attempt), b.Backoff(attempt)
		if da != db {
			t.Fatalf("same-seed retriers diverged at attempt %d: %v vs %v", attempt, da, db)
		}
		// The jittered pause stays within [d*(1-J), d].
		base := time.Duration(float64(time.Millisecond) * pow2(attempt-2))
		if base > time.Second {
			base = time.Second
		}
		if da < base/2 || da > base {
			t.Errorf("Backoff(%d) = %v outside [%v, %v]", attempt, da, base/2, base)
		}
	}

	other := NewRetrier(RetryPolicy{
		BaseBackoff: time.Millisecond, MaxBackoff: time.Second, Jitter: 0.5, Seed: 43,
	})
	same := true
	for attempt := 2; attempt <= 10; attempt++ {
		if a2 := NewRetrier(policy); a2.Backoff(attempt) != other.Backoff(attempt) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter sequences")
	}
}

func pow2(n int) float64 {
	d := 1.0
	for i := 0; i < n; i++ {
		d *= 2
	}
	return d
}

func TestJitterClamped(t *testing.T) {
	over := NewRetrier(RetryPolicy{BaseBackoff: time.Millisecond, Jitter: 5})
	if d := over.Backoff(2); d > time.Millisecond {
		t.Errorf("Jitter > 1 not clamped: Backoff(2) = %v", d)
	}
	under := NewRetrier(RetryPolicy{BaseBackoff: time.Millisecond, Jitter: -1})
	if d := under.Backoff(2); d != time.Millisecond {
		t.Errorf("Jitter < 0 not clamped to 0: Backoff(2) = %v, want 1ms", d)
	}
}

func TestPauseHonorsContextCancellation(t *testing.T) {
	r := NewRetrier(RetryPolicy{BaseBackoff: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := r.Pause(ctx, 2); err != context.Canceled {
		t.Fatalf("Pause on canceled context = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Pause blocked %v on a canceled context", elapsed)
	}
}

func TestRetryBudgetWithdrawAndDenial(t *testing.T) {
	b := NewRetryBudget(2, 1)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("full budget denied a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("empty budget allowed a withdrawal")
	}
	if got := b.Denials(); got != 1 {
		t.Fatalf("Denials = %d, want 1", got)
	}
	b.Deposit() // +1 token
	if !b.Withdraw() {
		t.Fatal("budget denied a withdrawal after a deposit")
	}
}

func TestRetryBudgetCapAndDefaults(t *testing.T) {
	b := NewRetryBudget(3, 1)
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Balance(); got != 3 {
		t.Fatalf("Balance = %v, want capped at 3", got)
	}
	d := NewRetryBudget(0, 0)
	if got := d.Balance(); got != 10 {
		t.Fatalf("default Balance = %v, want 10", got)
	}
	d.Withdraw()
	d.Deposit()
	if got := d.Balance(); got != 9.1 {
		t.Fatalf("Balance after withdraw+deposit = %v, want 9.1 (default deposit 0.1)", got)
	}
}

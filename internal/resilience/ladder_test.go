package resilience

import (
	"context"
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

func TestLadderEmptyServesNothing(t *testing.T) {
	l := NewLadder[int, int]()
	l.Store(42) // no-op: the cache rung is not enabled
	if _, _, err := l.Serve(context.Background(), 1); err == nil {
		t.Fatal("empty ladder served")
	}
}

func TestLadderCacheLastGood(t *testing.T) {
	l := NewLadder[int, int]().CacheLastGood()
	if _, _, err := l.Serve(context.Background(), 1); err == nil {
		t.Fatal("cache rung served before any Store")
	}
	l.Store(42)
	l.Store(43)
	v, source, err := l.Serve(context.Background(), 1)
	if err != nil || v != 43 || source != "cache" {
		t.Fatalf("Serve = (%d, %q, %v), want (43, cache, nil)", v, source, err)
	}
	if got := l.CacheServes(); got != 1 {
		t.Fatalf("CacheServes = %d, want 1", got)
	}
	if last, ok := l.LastGood(); !ok || last != 43 {
		t.Fatalf("LastGood = (%d, %v), want (43, true)", last, ok)
	}
}

func TestLadderDegradedVariantRung(t *testing.T) {
	degraded := core.NewVariant("degraded", func(_ context.Context, x int) (int, error) {
		return -x, nil
	})
	l := NewLadder[int, int]().DegradedVariant(degraded)
	v, source, err := l.Serve(context.Background(), 7)
	if err != nil || v != -7 || source != "degraded-variant" {
		t.Fatalf("Serve = (%d, %q, %v), want (-7, degraded-variant, nil)", v, source, err)
	}
	if got := l.DegradedServes(); got != 1 {
		t.Fatalf("DegradedServes = %d, want 1", got)
	}
}

func TestLadderCachePrecedesDegradedVariant(t *testing.T) {
	degraded := core.NewVariant("degraded", func(_ context.Context, x int) (int, error) {
		return -x, nil
	})
	l := NewLadder[int, int]().CacheLastGood().DegradedVariant(degraded)
	l.Store(100)
	v, source, err := l.Serve(context.Background(), 7)
	if err != nil || v != 100 || source != "cache" {
		t.Fatalf("Serve = (%d, %q, %v), want (100, cache, nil)", v, source, err)
	}
}

func TestLadderDegradedVariantFailurePropagates(t *testing.T) {
	bad := errors.New("degraded variant down")
	degraded := core.NewVariant("degraded", func(_ context.Context, _ int) (int, error) {
		return 0, bad
	})
	l := NewLadder[int, int]().DegradedVariant(degraded)
	if _, _, err := l.Serve(context.Background(), 1); !errors.Is(err, bad) {
		t.Fatalf("Serve = %v, want wrapped %v", err, bad)
	}
	if got := l.DegradedServes(); got != 0 {
		t.Fatalf("DegradedServes = %d, want 0", got)
	}
}

package resilience

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// fakeClock is an injectable clock for deterministic breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

var errFail = errors.New("boom")

// record drives one Allow/Record round trip, failing the test if the
// breaker rejected the call.
func record(t *testing.T, b *Breaker, err error) {
	t.Helper()
	tok, aerr := b.Allow()
	if aerr != nil {
		t.Fatalf("Allow rejected: %v", aerr)
	}
	b.Record(tok, err)
}

func TestBreakerConsecutiveFailuresTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("v", BreakerConfig{ConsecutiveFailures: 3, Now: clk.Now})
	record(t, b, errFail)
	record(t, b, errFail)
	if got := b.State(); got != obs.BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	record(t, b, errFail)
	if got := b.State(); got != obs.BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow on open breaker = %v, want ErrBreakerOpen", err)
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("v", BreakerConfig{ConsecutiveFailures: 3, Now: clk.Now})
	for i := 0; i < 10; i++ {
		record(t, b, errFail)
		record(t, b, errFail)
		record(t, b, nil) // breaks the streak
	}
	if got := b.State(); got != obs.BreakerClosed {
		t.Fatalf("state = %v, want closed (streak never reached 3)", got)
	}
}

func TestBreakerFailureRateTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("v", BreakerConfig{
		ConsecutiveFailures: 100, // out of reach; the rate must trip
		FailureRate:         0.5,
		Window:              8,
		MinSamples:          4,
		Now:                 clk.Now,
	})
	record(t, b, errFail)
	record(t, b, nil)
	record(t, b, errFail)
	if got := b.State(); got != obs.BreakerClosed {
		t.Fatalf("tripped before MinSamples: %v", got)
	}
	record(t, b, errFail) // 4 samples, 3 failures: rate 0.75 >= 0.5
	if got := b.State(); got != obs.BreakerOpen {
		t.Fatalf("state = %v, want open on failure rate", got)
	}
}

func TestBreakerOpenHalfOpenProbeCycle(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("v", BreakerConfig{
		ConsecutiveFailures: 1,
		OpenFor:             time.Second,
		Now:                 clk.Now,
	})
	record(t, b, errFail)
	if got := b.State(); got != obs.BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow before OpenFor elapsed = %v, want ErrBreakerOpen", err)
	}

	clk.Advance(time.Second)
	tok, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow after OpenFor: %v", err)
	}
	if !tok.probe {
		t.Fatal("post-OpenFor admission is not a probe")
	}
	if got := b.State(); got != obs.BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// Exactly one probe at a time: a second Allow is rejected while the
	// first probe is in flight.
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted: %v", err)
	}
	b.Record(tok, nil)
	if got := b.State(); got != obs.BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("v", BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Second, Now: clk.Now})
	record(t, b, errFail)
	clk.Advance(time.Second)
	tok, err := b.Allow()
	if err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	b.Record(tok, errFail)
	if got := b.State(); got != obs.BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
	// The re-open restarts the OpenFor clock.
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow right after re-open = %v, want ErrBreakerOpen", err)
	}
}

func TestBreakerHalfOpenSuccessesThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("v", BreakerConfig{
		ConsecutiveFailures: 1,
		OpenFor:             time.Second,
		HalfOpenSuccesses:   2,
		Now:                 clk.Now,
	})
	record(t, b, errFail)
	clk.Advance(time.Second)
	for i := 0; i < 2; i++ {
		tok, err := b.Allow()
		if err != nil {
			t.Fatalf("probe %d not admitted: %v", i+1, err)
		}
		b.Record(tok, nil)
	}
	if got := b.State(); got != obs.BreakerClosed {
		t.Fatalf("state after 2 successful probes = %v, want closed", got)
	}
}

func TestBreakerStaleTokenDropped(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("v", BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Second, Now: clk.Now})
	stale, err := b.Allow() // closed-generation token
	if err != nil {
		t.Fatalf("Allow: %v", err)
	}
	record(t, b, errFail) // trips: generation bumps
	b.Record(stale, nil)  // stale success must not close the breaker
	if got := b.State(); got != obs.BreakerOpen {
		t.Fatalf("stale token changed state to %v, want open", got)
	}
	// And a stale zero token is inert.
	b.Record(Token{}, errFail)
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
}

func TestBreakerHealthFeedTrips(t *testing.T) {
	clk := newFakeClock()
	health := 1.0
	var transitions []obs.BreakerState
	b := NewBreaker("v", BreakerConfig{
		Health:      func(string) float64 { return health },
		HealthBelow: 0.5,
		Now:         clk.Now,
		OnStateChange: func(_ string, _, to obs.BreakerState) {
			transitions = append(transitions, to)
		},
	})
	record(t, b, nil)
	health = 0.1
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow with degraded health = %v, want ErrBreakerOpen", err)
	}
	if got := b.State(); got != obs.BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if len(transitions) != 1 || transitions[0] != obs.BreakerOpen {
		t.Fatalf("transitions = %v, want [open]", transitions)
	}
}

func TestBreakersSetLazyCreationAndState(t *testing.T) {
	bs := NewBreakers(BreakerConfig{ConsecutiveFailures: 1})
	if got := bs.State("never-seen"); got != obs.BreakerClosed {
		t.Fatalf("unknown variant state = %v, want closed", got)
	}
	b := bs.For("v1")
	if b != bs.For("v1") {
		t.Fatal("For returned a different breaker for the same variant")
	}
	record(t, b, errFail)
	if got := bs.State("v1"); got != obs.BreakerOpen {
		t.Fatalf("set state = %v, want open", got)
	}
	record(t, bs.For("v2"), errFail)
	if got := bs.Opens(); got != 2 {
		t.Fatalf("set Opens = %d, want 2", got)
	}
}

// TestBreakerConcurrentSingleProbe hammers one breaker from 64
// goroutines and checks the two safety properties the generation-counted
// tokens exist for: at most one half-open probe is ever in flight at a
// time, and no state transition is lost or invented — every observed
// transition walks a legal edge of the state machine and the edge counts
// balance against the final state. Run with -race.
func TestBreakerConcurrentSingleProbe(t *testing.T) {
	var (
		mu          sync.Mutex
		transitions []transition
	)
	b := NewBreaker("v", BreakerConfig{
		ConsecutiveFailures: 3,
		OpenFor:             50 * time.Microsecond,
		OnStateChange: func(_ string, from, to obs.BreakerState) {
			mu.Lock()
			transitions = append(transitions, transition{from: from, to: to})
			mu.Unlock()
		},
	})

	const (
		goroutines = 64
		iterations = 300
	)
	var (
		probesInFlight atomic.Int64
		maxProbes      atomic.Int64
		wg             sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				tok, err := b.Allow()
				if err != nil {
					runtime.Gosched()
					continue
				}
				if tok.probe {
					n := probesInFlight.Add(1)
					for {
						max := maxProbes.Load()
						if n <= max || maxProbes.CompareAndSwap(max, n) {
							break
						}
					}
					runtime.Gosched() // widen the race window
					probesInFlight.Add(-1)
				}
				// Mixed outcomes keep the breaker cycling through all
				// three states for the whole test.
				if (g+i)%3 == 0 {
					b.Record(tok, errFail)
				} else {
					b.Record(tok, nil)
				}
			}
		}(g)
	}
	wg.Wait()

	if got := maxProbes.Load(); got > 1 {
		t.Errorf("observed %d concurrent half-open probes, want at most 1", got)
	}

	// Order-independent conservation check (OnStateChange fires outside
	// the breaker lock, so the slice order is not guaranteed): every
	// transition must be a legal edge, and for each state the in-degree
	// minus out-degree must equal final occupancy minus initial
	// occupancy.
	mu.Lock()
	defer mu.Unlock()
	legal := map[transition]bool{
		{from: obs.BreakerClosed, to: obs.BreakerOpen}:     true,
		{from: obs.BreakerOpen, to: obs.BreakerHalfOpen}:   true,
		{from: obs.BreakerHalfOpen, to: obs.BreakerOpen}:   true,
		{from: obs.BreakerHalfOpen, to: obs.BreakerClosed}: true,
	}
	in := map[obs.BreakerState]int{}
	out := map[obs.BreakerState]int{}
	opens := 0
	for _, tr := range transitions {
		if !legal[tr] {
			t.Fatalf("illegal transition %v -> %v", tr.from, tr.to)
		}
		in[tr.to]++
		out[tr.from]++
		if tr.to == obs.BreakerOpen {
			opens++
		}
	}
	if got := b.Opens(); uint64(opens) != got {
		t.Errorf("observed %d open transitions, breaker counted %d", opens, got)
	}
	final := b.State()
	for _, s := range []obs.BreakerState{obs.BreakerClosed, obs.BreakerOpen, obs.BreakerHalfOpen} {
		want := 0
		if s == final {
			want++
		}
		if s == obs.BreakerClosed { // initial state
			want--
		}
		if got := in[s] - out[s]; got != want {
			t.Errorf("state %v: in-out = %d, want %d (final %v, %d transitions)",
				s, got, want, final, len(transitions))
		}
	}
}

package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBulkheadShedsAtConcurrencyLimit(t *testing.T) {
	b := NewBulkhead(BulkheadConfig{MaxConcurrent: 1, MaxWaiting: 0})
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	err := b.Acquire(context.Background())
	if !errors.Is(err, ErrShedded) {
		t.Fatalf("second Acquire = %v, want ErrShedded", err)
	}
	if got := b.Sheds(); got != 1 {
		t.Fatalf("Sheds = %d, want 1", got)
	}
	b.Release()
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	if got := b.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
}

func TestBulkheadQueueAdmitsOnRelease(t *testing.T) {
	b := NewBulkhead(BulkheadConfig{MaxConcurrent: 1, MaxWaiting: 1})
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	queued := make(chan error, 1)
	go func() { queued <- b.Acquire(context.Background()) }()
	// Wait for the second request to be queued.
	deadline := time.Now().Add(2 * time.Second)
	for b.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second Acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// A third request overflows the queue and is shed immediately.
	if err := b.Acquire(context.Background()); !errors.Is(err, ErrShedded) {
		t.Fatalf("overflow Acquire = %v, want ErrShedded", err)
	}
	b.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued Acquire after Release = %v, want nil", err)
	}
}

func TestBulkheadDeadlineWhileQueued(t *testing.T) {
	b := NewBulkhead(BulkheadConfig{MaxConcurrent: 1, MaxWaiting: 4})
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := b.Acquire(ctx)
	if !errors.Is(err, ErrShedded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire = %v, want ErrShedded wrapping DeadlineExceeded", err)
	}
	if got := b.Waiting(); got != 0 {
		t.Fatalf("Waiting after shed = %d, want 0", got)
	}
}

func TestBulkheadConfigDefaults(t *testing.T) {
	b := NewBulkhead(BulkheadConfig{MaxConcurrent: 0, MaxWaiting: -1})
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// MaxConcurrent defaulted to 1 and MaxWaiting to 0: the next request
	// is shed right away.
	if err := b.Acquire(context.Background()); !errors.Is(err, ErrShedded) {
		t.Fatalf("Acquire = %v, want ErrShedded", err)
	}
}

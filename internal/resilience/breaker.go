package resilience

import (
	"fmt"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/obs"
)

// BreakerConfig parameterizes a circuit breaker. The zero value selects
// the documented defaults.
type BreakerConfig struct {
	// ConsecutiveFailures trips the breaker after this many failures in
	// a row. Default 5.
	ConsecutiveFailures int
	// FailureRate trips the breaker when the failure fraction over the
	// sliding Window reaches this value, once MinSamples outcomes have
	// been seen. Zero disables rate-based tripping.
	FailureRate float64
	// Window is the sliding-window size for rate-based tripping.
	// Default 32.
	Window int
	// MinSamples is the minimum number of outcomes in the window before
	// FailureRate applies. Default 10.
	MinSamples int
	// OpenFor is how long the breaker stays open before admitting a
	// half-open probe. Default 1s.
	OpenFor time.Duration
	// HalfOpenSuccesses is how many consecutive successful probes close
	// the breaker again. Default 1.
	HalfOpenSuccesses int
	// Health, if non-nil, feeds an external health score (e.g. the
	// PR-2 health engine's VariantScore) into the breaker: a closed
	// breaker trips when the score drops below HealthBelow.
	Health func(variant string) float64
	// HealthBelow is the health-score trip threshold; zero disables the
	// health feed.
	HealthBelow float64
	// Now is the clock; defaults to time.Now. Injectable for
	// deterministic tests.
	Now func() time.Time
	// OnStateChange, if non-nil, is called after every state
	// transition (outside the breaker's lock).
	OnStateChange func(variant string, from, to obs.BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 5
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Token correlates one admitted call with the breaker state that
// admitted it. Record drops outcomes whose token is stale (admitted
// before a state transition), which is what keeps the half-open
// single-probe accounting exact under concurrency.
type Token struct {
	gen   uint64
	probe bool
	ok    bool
}

// transition is a completed state change, reported outside the lock.
type transition struct {
	from, to obs.BreakerState
}

// Breaker is a circuit breaker for one variant: closed → open on
// consecutive failures, failure rate over a sliding window, or a
// degraded external health score; open → half-open after OpenFor;
// half-open admits exactly one probe at a time and closes after
// HalfOpenSuccesses successful probes (re-opening on any failed one).
//
// Usage is Allow/Record bracketing the protected call:
//
//	tok, err := b.Allow()
//	if err != nil { /* rejected fast */ }
//	out, err := call()
//	b.Record(tok, err)
//
// Breaker is safe for concurrent use.
type Breaker struct {
	cfg     BreakerConfig
	variant string
	set     *Breakers // event sink; nil for a standalone breaker

	mu    sync.Mutex
	state obs.BreakerState
	gen   uint64

	consecFails int
	window      []bool // true = failure; ring
	windowIdx   int
	windowLen   int
	windowFails int

	openedAt       time.Time
	probing        bool
	probeSuccesses int

	opens uint64 // transitions into open, for reports
}

// NewBreaker returns a closed breaker for one variant.
func NewBreaker(variant string, cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:     cfg,
		variant: variant,
		window:  make([]bool, cfg.Window),
	}
}

// State returns the current state without side effects: an open breaker
// whose OpenFor elapsed still reports open until the next Allow admits
// the probe.
func (b *Breaker) State() obs.BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Allow asks the breaker to admit a call. It returns a Token to pass to
// Record, or an error wrapping ErrBreakerOpen when the call is rejected
// — fast, without executing anything. In the half-open state exactly
// one probe is admitted at a time.
func (b *Breaker) Allow() (Token, error) {
	b.mu.Lock()
	now := b.cfg.Now()
	switch b.state {
	case obs.BreakerClosed:
		if b.cfg.Health != nil && b.cfg.HealthBelow > 0 {
			if b.cfg.Health(b.variant) < b.cfg.HealthBelow {
				tr := b.transitionLocked(obs.BreakerOpen, now)
				b.mu.Unlock()
				b.emit(tr)
				return Token{}, b.openErr()
			}
		}
		tok := Token{gen: b.gen, ok: true}
		b.mu.Unlock()
		return tok, nil
	case obs.BreakerOpen:
		if now.Sub(b.openedAt) >= b.cfg.OpenFor {
			tr := b.transitionLocked(obs.BreakerHalfOpen, now)
			b.probing = true
			tok := Token{gen: b.gen, probe: true, ok: true}
			b.mu.Unlock()
			b.emit(tr)
			return tok, nil
		}
		b.mu.Unlock()
		return Token{}, b.openErr()
	default: // obs.BreakerHalfOpen
		if b.probing {
			b.mu.Unlock()
			return Token{}, b.openErr()
		}
		b.probing = true
		tok := Token{gen: b.gen, probe: true, ok: true}
		b.mu.Unlock()
		return tok, nil
	}
}

// Record reports the outcome of a call admitted by Allow. Outcomes
// whose token predates the current state (a transition happened while
// the call was in flight) are dropped, so stale results cannot corrupt
// the half-open probe accounting.
func (b *Breaker) Record(tok Token, err error) {
	if !tok.ok {
		return
	}
	success := err == nil
	b.mu.Lock()
	if tok.gen != b.gen {
		b.mu.Unlock()
		return
	}
	now := b.cfg.Now()
	var tr transition
	fired := false
	switch b.state {
	case obs.BreakerClosed:
		b.observeLocked(success)
		if !success && b.tripLocked() {
			tr, fired = b.transitionLocked(obs.BreakerOpen, now), true
		}
	case obs.BreakerHalfOpen:
		if tok.probe {
			b.probing = false
			if success {
				b.probeSuccesses++
				if b.probeSuccesses >= b.cfg.HalfOpenSuccesses {
					tr, fired = b.transitionLocked(obs.BreakerClosed, now), true
				}
			} else {
				tr, fired = b.transitionLocked(obs.BreakerOpen, now), true
			}
		}
	}
	b.mu.Unlock()
	if fired {
		b.emit(tr)
	}
}

// observeLocked pushes one outcome into the sliding window and the
// consecutive-failure counter.
func (b *Breaker) observeLocked(success bool) {
	failed := !success
	if b.windowLen < len(b.window) {
		b.windowLen++
	} else if b.window[b.windowIdx] {
		b.windowFails--
	}
	b.window[b.windowIdx] = failed
	b.windowIdx = (b.windowIdx + 1) % len(b.window)
	if failed {
		b.windowFails++
		b.consecFails++
	} else {
		b.consecFails = 0
	}
}

// tripLocked evaluates the closed-state trip conditions.
func (b *Breaker) tripLocked() bool {
	if b.consecFails >= b.cfg.ConsecutiveFailures {
		return true
	}
	if b.cfg.FailureRate > 0 && b.windowLen >= b.cfg.MinSamples {
		if float64(b.windowFails)/float64(b.windowLen) >= b.cfg.FailureRate {
			return true
		}
	}
	return false
}

// transitionLocked moves the state machine and resets the evidence the
// new state starts from. Every transition bumps the generation, which
// invalidates in-flight tokens.
func (b *Breaker) transitionLocked(to obs.BreakerState, now time.Time) transition {
	tr := transition{from: b.state, to: to}
	b.state = to
	b.gen++
	b.probing = false
	switch to {
	case obs.BreakerOpen:
		b.openedAt = now
		b.probeSuccesses = 0
		b.opens++
	case obs.BreakerClosed:
		b.consecFails = 0
		b.windowIdx, b.windowLen, b.windowFails = 0, 0, 0
		b.probeSuccesses = 0
	case obs.BreakerHalfOpen:
		b.probeSuccesses = 0
	}
	return tr
}

// Reset force-closes the breaker and clears its failure memory. The
// control plane calls it after repairing the variant behind the breaker
// — a freshly rejuvenated or replaced replica should not stay dark for
// OpenFor on evidence accumulated against its broken predecessor.
func (b *Breaker) Reset() {
	b.mu.Lock()
	var tr transition
	fired := false
	if b.state != obs.BreakerClosed {
		tr, fired = b.transitionLocked(obs.BreakerClosed, b.cfg.Now()), true
	} else {
		b.consecFails = 0
		b.windowIdx, b.windowLen, b.windowFails = 0, 0, 0
	}
	b.mu.Unlock()
	if fired {
		b.emit(tr)
	}
}
func (b *Breaker) openErr() error {
	return fmt.Errorf("variant %s: %w", b.variant, ErrBreakerOpen)
}

// emit reports a transition to the configured callback and, through the
// owning set, to the observation layer. Called outside the lock.
func (b *Breaker) emit(tr transition) {
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(b.variant, tr.from, tr.to)
	}
	if b.set != nil {
		b.set.emit(b.variant, tr.from, tr.to)
	}
}

// Breakers is a per-variant breaker set sharing one configuration: the
// form the pattern executors consume (pattern.WithBreaker). Breakers
// for new variant names are created lazily on first use.
type Breakers struct {
	cfg BreakerConfig

	mu       sync.Mutex
	m        map[string]*Breaker
	executor string
	observer obs.Observer
}

// NewBreakers returns a breaker set; each variant gets its own breaker
// configured by cfg.
func NewBreakers(cfg BreakerConfig) *Breakers {
	return &Breakers{cfg: cfg, m: make(map[string]*Breaker)}
}

// For returns (creating on first use) the breaker of one variant.
func (bs *Breakers) For(variant string) *Breaker {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, ok := bs.m[variant]
	if !ok {
		b = NewBreaker(variant, bs.cfg)
		b.set = bs
		bs.m[variant] = b
	}
	return b
}

// Reset force-closes one variant's breaker and clears its failure
// memory — see Breaker.Reset. A variant the set has never seen is left
// alone (its breaker would start closed anyway).
func (bs *Breakers) Reset(variant string) {
	bs.mu.Lock()
	b := bs.m[variant]
	bs.mu.Unlock()
	if b != nil {
		b.Reset()
	}
}

// State returns the state of one variant's breaker (closed if the
// variant has never been seen).
func (bs *Breakers) State(variant string) obs.BreakerState {
	bs.mu.Lock()
	b, ok := bs.m[variant]
	bs.mu.Unlock()
	if !ok {
		return obs.BreakerClosed
	}
	return b.State()
}

// Opens sums the open transitions across all variants.
func (bs *Breakers) Opens() uint64 {
	bs.mu.Lock()
	breakers := make([]*Breaker, 0, len(bs.m))
	for _, b := range bs.m {
		breakers = append(breakers, b)
	}
	bs.mu.Unlock()
	var n uint64
	for _, b := range breakers {
		n += b.Opens()
	}
	return n
}

// Bind attaches the executor identity and observer used for
// BreakerStateChanged events. The pattern executors call it at
// construction; the first non-empty executor name wins (a set shared by
// several executors reports under the first one bound), and observers
// combine.
func (bs *Breakers) Bind(executor string, o obs.Observer) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.executor == "" {
		bs.executor = executor
	}
	bs.observer = obs.Combine(bs.observer, o)
}

// emit fans a transition out to the bound observer.
func (bs *Breakers) emit(variant string, from, to obs.BreakerState) {
	bs.mu.Lock()
	executor, o := bs.executor, bs.observer
	bs.mu.Unlock()
	if o != nil {
		obs.EmitBreakerStateChanged(o, executor, variant, from, to)
	}
}

package resilience

// Torn-read races on the retry-budget deposit rate: the control plane's
// deposit-tune actuator calls SetDepositPerRequest from the controller
// goroutine while request goroutines Deposit and Withdraw. Run with
// -race; the assertion is consistency, not a particular balance.

import (
	"sync"
	"testing"
)

func TestSetDepositPerRequestRacesBudgetUse(t *testing.T) {
	budget := NewRetryBudget(50, 0.1)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rates := []float64{0.02, 0.1, 0.5}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			budget.SetDepositPerRequest(rates[i%len(rates)])
			if got := budget.DepositPerRequest(); got < 0.02 || got > 0.5 {
				t.Errorf("torn DepositPerRequest read: %v", got)
				return
			}
		}
	}()

	var users sync.WaitGroup
	for w := 0; w < 4; w++ {
		users.Add(1)
		go func() {
			defer users.Done()
			for i := 0; i < 5000; i++ {
				budget.Deposit()
				if i%3 == 0 {
					budget.Withdraw()
				}
				if b := budget.Balance(); b < 0 || b > 50 {
					t.Errorf("balance out of range under rate churn: %v", b)
					return
				}
			}
		}()
	}
	users.Wait()
	close(done)
	wg.Wait()
}

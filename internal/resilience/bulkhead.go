package resilience

import (
	"context"
	"fmt"
	"sync/atomic"
)

// BulkheadConfig parameterizes a bulkhead.
type BulkheadConfig struct {
	// MaxConcurrent is the number of requests allowed to execute at
	// once. Values < 1 default to 1.
	MaxConcurrent int
	// MaxWaiting is the number of requests allowed to wait for an
	// execution slot; a request arriving when the queue is full is shed
	// immediately with ErrShedded. Zero means no queue: at capacity,
	// shed right away.
	MaxWaiting int
}

// Bulkhead bounds the concurrency of one executor and sheds overload
// fast: requests beyond MaxConcurrent wait in a bounded queue (their
// wait bounded by the request context's deadline — deadline-aware
// admission), and requests beyond MaxConcurrent+MaxWaiting fail
// immediately with a typed ErrShedded instead of queueing to death.
//
// Bulkhead is safe for concurrent use. Acquire and Release must be
// paired; the pattern executors do this via pattern.WithBulkhead.
type Bulkhead struct {
	sem        chan struct{}
	waiting    atomic.Int64
	maxWaiting int64
	sheds      atomic.Int64
}

// NewBulkhead returns a bulkhead with the given bounds.
func NewBulkhead(cfg BulkheadConfig) *Bulkhead {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxWaiting < 0 {
		cfg.MaxWaiting = 0
	}
	return &Bulkhead{
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		maxWaiting: int64(cfg.MaxWaiting),
	}
}

// Acquire admits the request or rejects it. It returns nil when a slot
// was taken (pair with Release), an error wrapping ErrShedded
// immediately when the wait queue is full, and an error wrapping both
// ErrShedded and the context error when the caller's deadline expires
// while queued.
func (b *Bulkhead) Acquire(ctx context.Context) error {
	select {
	case b.sem <- struct{}{}:
		return nil
	default:
	}
	if b.maxWaiting <= 0 {
		b.sheds.Add(1)
		return fmt.Errorf("%w: at concurrency limit", ErrShedded)
	}
	if b.waiting.Add(1) > b.maxWaiting {
		b.waiting.Add(-1)
		b.sheds.Add(1)
		return fmt.Errorf("%w: wait queue full", ErrShedded)
	}
	defer b.waiting.Add(-1)
	select {
	case b.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		b.sheds.Add(1)
		return fmt.Errorf("%w: deadline while queued: %w", ErrShedded, ctx.Err())
	}
}

// Release returns an execution slot taken by a successful Acquire.
func (b *Bulkhead) Release() { <-b.sem }

// InFlight returns the number of requests currently executing.
func (b *Bulkhead) InFlight() int { return len(b.sem) }

// Waiting returns the number of requests currently queued.
func (b *Bulkhead) Waiting() int64 { return b.waiting.Load() }

// Sheds returns how many requests the bulkhead has rejected.
func (b *Bulkhead) Sheds() int64 { return b.sheds.Load() }

package resilience

import (
	"context"
	"testing"
	"time"
)

// The policy primitives sit on every request's hot path, so their
// per-call cost is recorded alongside the observation-layer benchmarks
// (scripts/bench.sh, BENCH_resilience.json).

func BenchmarkBreakerAllowRecord(b *testing.B) {
	br := NewBreaker("bench", BreakerConfig{ConsecutiveFailures: 1 << 30})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok, err := br.Allow()
		if err != nil {
			b.Fatal(err)
		}
		br.Record(tok, nil)
	}
}

func BenchmarkBulkheadAcquireRelease(b *testing.B) {
	bh := NewBulkhead(BulkheadConfig{MaxConcurrent: 1})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := bh.Acquire(ctx); err != nil {
			b.Fatal(err)
		}
		bh.Release()
	}
}

func BenchmarkRetrierBackoff(b *testing.B) {
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Jitter:      0.5,
		Seed:        1,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Backoff(i%4 + 1)
	}
}

func BenchmarkRetryBudgetDepositWithdraw(b *testing.B) {
	bud := NewRetryBudget(100, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bud.Deposit()
		bud.Withdraw()
	}
}

package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams for different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of %d uniforms = %f, want ~0.5", n, mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	tests := []struct {
		p    float64
		want float64
		tol  float64
	}{
		{-0.5, 0, 0},
		{0, 0, 0},
		{0.25, 0.25, 0.02},
		{0.9, 0.9, 0.02},
		{1, 1, 0},
		{1.5, 1, 0},
	}
	for _, tt := range tests {
		const n = 50000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(tt.p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-tt.want) > tt.tol {
			t.Errorf("Bool(%f): observed rate %f, want %f±%f", tt.p, got, tt.want, tt.tol)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %f, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %f, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent/child streams collided %d/100 times", same)
	}
}

func TestUint64nUniformSmallRange(t *testing.T) {
	r := New(31)
	counts := make([]int, 4)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(4)]++
	}
	for bucket, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.01 {
			t.Errorf("bucket %d frequency %f, want ~0.25", bucket, frac)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

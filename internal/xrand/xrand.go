// Package xrand provides a small, deterministic pseudo-random number
// generator used throughout the framework.
//
// Experiments in this repository must be exactly reproducible: every
// component that needs randomness receives an explicit *xrand.Rand seeded by
// the caller, rather than relying on global, time-seeded state. The
// generator is SplitMix64 (Steele, Lea, Flood 2014) for seeding and
// xoshiro256** (Blackman, Vigna 2018) for the stream, both of which are
// public-domain algorithms with excellent statistical quality and trivial,
// allocation-free implementations.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; callers that need randomness on multiple goroutines
// should derive one generator per goroutine with Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	// SplitMix64 expansion of the seed into the xoshiro state. This
	// guarantees a well-mixed, non-zero state for any seed value.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new, statistically independent generator from r.
// The derived generator's stream does not overlap r's for any practical
// sequence length, so it is the recommended way to hand randomness to a
// worker goroutine.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd3833e804f4c574b)
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0,
// mirroring math/rand semantics.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n).
// It uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. Values of p outside [0,1] are
// clamped (p<=0 is always false, p>=1 always true).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, generated with the polar (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inverse transform sampling.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

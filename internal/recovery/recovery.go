// Package recovery implements recovery blocks (Randell): a primary module
// and independently designed alternates execute sequentially; an
// explicitly designed acceptance test validates each result, and on
// rejection the system state is rolled back to the checkpoint taken on
// entry before the next alternate runs.
//
// Taxonomy position (paper Table 2): deliberate intention, code
// redundancy, reactive explicit adjudicator, development faults.
// Architectural pattern: sequential alternatives (Figure 1c).
package recovery

import (
	"context"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/checkpoint"
	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
)

// Block is a recovery block over a shared mutable state S: the "recovery
// point" checkpoint is taken when Execute enters the block, and the state
// is restored before each alternate runs.
//
// The alternates receive the state by pointer and may mutate it; the
// acceptance test sees the input and the produced output.
type Block[S, I, O any] struct {
	name       string
	state      *S
	store      *checkpoint.Store[S]
	alternates []core.Variant[I, O]
	test       core.AcceptanceTest[I, O]
	metrics    *core.Metrics
	observer   obs.Observer
}

var _ core.Executor[int, int] = (*Block[struct{}, int, int])(nil)

// Option configures a Block.
type Option[S, I, O any] func(*Block[S, I, O])

// WithMetrics attaches a metrics collector.
func WithMetrics[S, I, O any](m *core.Metrics) Option[S, I, O] {
	return func(b *Block[S, I, O]) { b.metrics = m }
}

// WithObserver attaches an observer. The block forwards it to the
// underlying sequential-alternatives executor, so the observer sees the
// full request span: each alternate as a variant span, state restoration
// as rollback events, retried alternates as retry attempts, and the
// acceptance-test verdict as the adjudication. Repeated options combine.
func WithObserver[S, I, O any](o obs.Observer) Option[S, I, O] {
	return func(b *Block[S, I, O]) { b.observer = obs.Combine(b.observer, o) }
}

// NewBlock builds a recovery block named name over state. The first
// variant is the primary, the rest are alternates in trial order; test is
// the acceptance test guarding the block's exit.
func NewBlock[S, I, O any](name string, state *S, test core.AcceptanceTest[I, O], variants []core.Variant[I, O], opts ...Option[S, I, O]) (*Block[S, I, O], error) {
	if state == nil {
		return nil, fmt.Errorf("recovery: nil state")
	}
	if test == nil {
		return nil, fmt.Errorf("recovery: nil acceptance test")
	}
	if len(variants) == 0 {
		return nil, core.ErrNoVariants
	}
	vs := make([]core.Variant[I, O], len(variants))
	copy(vs, variants)
	b := &Block[S, I, O]{
		name:       name,
		state:      state,
		store:      checkpoint.NewStore[S](1),
		alternates: vs,
		test:       test,
	}
	for _, o := range opts {
		o(b)
	}
	return b, nil
}

// Name returns the block's name.
func (b *Block[S, I, O]) Name() string { return b.name }

// Execute implements core.Executor: it establishes the recovery point,
// then runs the sequential-alternatives pattern with rollback to that
// point between attempts. If every alternate fails, the state is restored
// to the recovery point and the error reports the exhausted block.
func (b *Block[S, I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	id, err := b.store.Save(*b.state)
	if err != nil {
		return zero, fmt.Errorf("recovery point for block %s: %w", b.name, err)
	}
	rollback := func(context.Context) error {
		restored, err := b.store.Restore(id)
		if err != nil {
			return err
		}
		*b.state = restored
		return nil
	}

	var popts []pattern.Option
	if b.metrics != nil {
		popts = append(popts, pattern.WithMetrics(b.metrics))
	}
	if b.observer != nil {
		popts = append(popts, pattern.WithObserver(b.observer))
	}
	seq, err := pattern.NewSequentialAlternatives(b.alternates, b.test, rollback, popts...)
	if err != nil {
		return zero, err
	}
	out, err := seq.Execute(ctx, input)
	if err != nil {
		// Leave the state as it was on entry: a failed block must not
		// publish partial effects.
		if rbErr := rollback(ctx); rbErr != nil {
			return zero, fmt.Errorf("block %s failed and rollback failed: %w", b.name, rbErr)
		}
		return zero, fmt.Errorf("recovery block %s exhausted: %w", b.name, err)
	}
	return out, nil
}

package recovery

import (
	"context"
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

// ledger is the shared state the block's variants mutate.
type ledger struct {
	Entries []int
}

func TestPrimarySucceeds(t *testing.T) {
	state := ledger{}
	primary := core.NewVariant("primary", func(_ context.Context, x int) (int, error) {
		state.Entries = append(state.Entries, x)
		return x * 2, nil
	})
	b, err := NewBlock("double", &state,
		func(_ int, out int) error {
			if out%2 != 0 {
				return core.ErrNotAccepted
			}
			return nil
		},
		[]core.Variant[int, int]{primary},
	)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "double" {
		t.Errorf("Name = %q", b.Name())
	}
	got, err := b.Execute(context.Background(), 21)
	if err != nil || got != 42 {
		t.Errorf("= (%d, %v), want (42, nil)", got, err)
	}
	if len(state.Entries) != 1 || state.Entries[0] != 21 {
		t.Errorf("state = %+v", state)
	}
}

func TestAlternateRunsAfterRollback(t *testing.T) {
	state := ledger{Entries: []int{99}}
	// The primary corrupts the state and fails; the alternate must see
	// the original state.
	primary := core.NewVariant("primary", func(_ context.Context, x int) (int, error) {
		state.Entries = append(state.Entries, -1) // partial effect
		return 0, errors.New("primary bug")
	})
	var seenByAlternate int
	alternate := core.NewVariant("alternate", func(_ context.Context, x int) (int, error) {
		seenByAlternate = len(state.Entries)
		state.Entries = append(state.Entries, x)
		return x, nil
	})
	b, err := NewBlock("blk", &state,
		func(_ int, _ int) error { return nil },
		[]core.Variant[int, int]{primary, alternate},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Execute(context.Background(), 5)
	if err != nil || got != 5 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	if seenByAlternate != 1 {
		t.Errorf("alternate saw %d entries; rollback did not undo the primary's partial effect", seenByAlternate)
	}
	if len(state.Entries) != 2 || state.Entries[1] != 5 {
		t.Errorf("final state = %+v", state)
	}
}

func TestAcceptanceTestRejectionTriggersAlternate(t *testing.T) {
	state := struct{ X int }{}
	wrong := core.NewVariant("wrong", func(_ context.Context, _ int) (int, error) {
		return 13, nil // runs fine but produces an unacceptable result
	})
	right := core.NewVariant("right", func(_ context.Context, _ int) (int, error) {
		return 42, nil
	})
	b, err := NewBlock("blk", &state,
		func(_ int, out int) error {
			if out != 42 {
				return core.ErrNotAccepted
			}
			return nil
		},
		[]core.Variant[int, int]{wrong, right},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Execute(context.Background(), 0)
	if err != nil || got != 42 {
		t.Errorf("= (%d, %v), want (42, nil)", got, err)
	}
}

func TestExhaustedBlockRestoresState(t *testing.T) {
	state := ledger{Entries: []int{1}}
	bad := func(name string) core.Variant[int, int] {
		return core.NewVariant(name, func(_ context.Context, _ int) (int, error) {
			state.Entries = append(state.Entries, 0)
			return 0, errors.New("fails")
		})
	}
	b, err := NewBlock("blk", &state,
		func(_ int, _ int) error { return nil },
		[]core.Variant[int, int]{bad("p"), bad("a1"), bad("a2")},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Execute(context.Background(), 0)
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("err = %v", err)
	}
	if len(state.Entries) != 1 || state.Entries[0] != 1 {
		t.Errorf("state not restored after exhaustion: %+v", state)
	}
}

func TestMetricsAccounting(t *testing.T) {
	state := struct{ X int }{}
	var m core.Metrics
	fail := core.NewVariant("p", func(_ context.Context, _ int) (int, error) {
		return 0, errors.New("x")
	})
	ok := core.NewVariant("a", func(_ context.Context, _ int) (int, error) {
		return 1, nil
	})
	b, err := NewBlock("blk", &state,
		func(_ int, _ int) error { return nil },
		[]core.Variant[int, int]{fail, ok},
		WithMetrics[struct{ X int }, int, int](&m),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Execute(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Requests != 1 || s.VariantExecutions != 2 || s.FailuresMasked != 1 {
		t.Errorf("metrics = %+v", s)
	}
}

func TestConstructorValidation(t *testing.T) {
	state := 0
	test := func(_ int, _ int) error { return nil }
	v := core.NewVariant("v", func(_ context.Context, x int) (int, error) { return x, nil })
	if _, err := NewBlock[int, int, int]("b", nil, test, []core.Variant[int, int]{v}); err == nil {
		t.Error("nil state: want error")
	}
	if _, err := NewBlock("b", &state, nil, []core.Variant[int, int]{v}); err == nil {
		t.Error("nil test: want error")
	}
	if _, err := NewBlock("b", &state, test, nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("no variants: err = %v", err)
	}
}

func TestRepeatedExecutionsTakeFreshRecoveryPoints(t *testing.T) {
	state := ledger{}
	n := 0
	// Fails on every odd call, succeeds on even calls.
	flaky := core.NewVariant("flaky", func(_ context.Context, x int) (int, error) {
		n++
		state.Entries = append(state.Entries, x)
		if n%2 == 1 {
			return 0, errors.New("odd call fails")
		}
		return x, nil
	})
	good := core.NewVariant("good", func(_ context.Context, x int) (int, error) {
		state.Entries = append(state.Entries, x)
		return x, nil
	})
	b, err := NewBlock("blk", &state,
		func(_ int, _ int) error { return nil },
		[]core.Variant[int, int]{flaky, good},
	)
	if err != nil {
		t.Fatal(err)
	}
	// First request: flaky fails (state rolled back), good appends 1.
	if _, err := b.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Second request: flaky succeeds, appends 2 on top of [1].
	if _, err := b.Execute(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2}
	if len(state.Entries) != len(want) {
		t.Fatalf("state = %+v, want %v", state.Entries, want)
	}
	for i := range want {
		if state.Entries[i] != want[i] {
			t.Fatalf("state = %+v, want %v", state.Entries, want)
		}
	}
}

func TestExhaustedBlockRollbackFailure(t *testing.T) {
	// When both the block and the final restorative rollback fail, the
	// error reports the rollback failure (the state may be inconsistent).
	type unstorable struct {
		Ch chan int // gob cannot encode channels
	}
	state := unstorable{}
	bad := core.NewVariant("bad", func(_ context.Context, _ int) (int, error) {
		return 0, errors.New("fails")
	})
	// Constructing with a non-serializable state makes the initial
	// checkpoint fail at Execute time.
	blk, err := NewBlock("blk", &state,
		func(_ int, _ int) error { return nil },
		[]core.Variant[int, int]{bad})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blk.Execute(context.Background(), 0); err == nil {
		t.Error("unserializable state should fail the recovery point")
	}
}

func TestNestedRecoveryBlocks(t *testing.T) {
	// Randell's original design allows recovery blocks to nest: an
	// alternate of the outer block is itself a recovery block. Blocks are
	// Executors, so nesting is plain composition.
	type state struct{ Log []string }
	outer := state{}
	innerState := state{}

	innerPrimary := core.NewVariant("inner-primary", func(_ context.Context, _ int) (int, error) {
		innerState.Log = append(innerState.Log, "inner-primary")
		return 0, errors.New("inner primary fails")
	})
	innerAlt := core.NewVariant("inner-alt", func(_ context.Context, x int) (int, error) {
		innerState.Log = append(innerState.Log, "inner-alt")
		return x * 10, nil
	})
	inner, err := NewBlock("inner", &innerState,
		func(_ int, _ int) error { return nil },
		[]core.Variant[int, int]{innerPrimary, innerAlt})
	if err != nil {
		t.Fatal(err)
	}

	outerPrimary := core.NewVariant("outer-primary", func(_ context.Context, _ int) (int, error) {
		return 0, errors.New("outer primary fails")
	})
	nested := core.NewVariant("nested-block", inner.Execute)
	outerBlock, err := NewBlock("outer", &outer,
		func(_ int, out int) error {
			if out <= 0 {
				return core.ErrNotAccepted
			}
			return nil
		},
		[]core.Variant[int, int]{outerPrimary, nested})
	if err != nil {
		t.Fatal(err)
	}
	got, err := outerBlock.Execute(context.Background(), 4)
	if err != nil || got != 40 {
		t.Fatalf("nested = (%d, %v), want (40, nil)", got, err)
	}
	// The inner block rolled back its primary's partial effect.
	if len(innerState.Log) != 1 || innerState.Log[0] != "inner-alt" {
		t.Errorf("inner state = %v, want only the alternate's entry", innerState.Log)
	}
}

package recovery

import (
	"context"
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
)

func TestBlockForwardsObserver(t *testing.T) {
	c := obs.NewCollector()
	state := ledger{}
	primary := core.NewVariant("primary", func(_ context.Context, _ int) (int, error) {
		state.Entries = append(state.Entries, -1)
		return 0, errors.New("primary bug")
	})
	alternate := core.NewVariant("alternate", func(_ context.Context, x int) (int, error) {
		return x, nil
	})
	acceptAll := func(int, int) error { return nil }
	b, err := NewBlock("blk", &state, acceptAll,
		[]core.Variant[int, int]{primary, alternate},
		WithObserver[ledger, int, int](c))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := b.Execute(context.Background(), 7); err != nil || got != 7 {
		t.Fatalf("= (%d, %v)", got, err)
	}

	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Executor != "sequential-alternatives" {
		t.Fatalf("snapshot = %+v", snap)
	}
	s := snap[0]
	// One request, masked by the alternate after a rollback and a retry.
	if s.Requests != 1 || s.FailuresMasked != 1 || s.FailuresDetected != 1 {
		t.Errorf("request stats = %+v", s)
	}
	if s.Rollbacks != 1 || s.Retries != 1 {
		t.Errorf("recovery stats = %+v", s)
	}
	if len(s.Variants) != 2 {
		t.Errorf("variant stats = %+v", s.Variants)
	}
}

func TestBlockCombinesMetricsAndObserver(t *testing.T) {
	var m core.Metrics
	c := obs.NewCollector()
	state := 0
	v := core.NewVariant("v", func(_ context.Context, x int) (int, error) { return x, nil })
	b, err := NewBlock("blk", &state,
		func(int, int) error { return nil },
		[]core.Variant[int, int]{v},
		WithMetrics[int, int, int](&m),
		WithObserver[int, int, int](c))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); s.Requests != 1 || s.VariantExecutions != 1 {
		t.Errorf("legacy metrics = %+v", s)
	}
	if snap := c.Snapshot(); len(snap) != 1 || snap[0].Requests != 1 {
		t.Errorf("collector = %+v", snap)
	}
}

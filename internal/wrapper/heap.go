// Package wrapper implements fault-containment wrappers: redundant code
// deliberately inserted at component boundaries to prevent failures
// before they occur. Two wrapper families from the paper are provided:
//
//   - Fetzer-style "healers": wrappers around heap-writing calls that
//     perform boundary checks and prevent buffer overflows from smashing
//     adjacent memory (targeting malicious faults and Bohrbugs);
//   - protocol wrappers for incompletely specified COTS components
//     (Popov et al., Chang et al.): interaction-protocol enforcement that
//     detects and repairs common misuses such as using a resource before
//     opening it.
//
// Taxonomy position (paper Table 2): deliberate intention, code
// redundancy, preventive (the wrapper blocks the failure; no
// failure-triggered adjudication), Bohrbugs and malicious faults.
package wrapper

import (
	"errors"
	"fmt"
)

// Heap errors.
var (
	// ErrOutOfMemory reports heap exhaustion.
	ErrOutOfMemory = errors.New("wrapper: out of memory")
	// ErrBadHandle reports an unknown or freed block handle.
	ErrBadHandle = errors.New("wrapper: bad block handle")
	// ErrOverflowPrevented reports a write that the boundary-check healer
	// refused because it would exceed the block.
	ErrOverflowPrevented = errors.New("wrapper: buffer overflow prevented")
)

// canary is the guard byte written between blocks; a raw overflowing
// write destroys it, which CheckIntegrity detects.
const canary = 0xCC

// Handle identifies an allocated block.
type Handle int

// Heap is a simulated C-like heap: blocks are laid out contiguously with
// a single canary byte between them, and the raw write path performs no
// bounds checking — exactly the substrate a heap-smashing overflow needs.
type Heap struct {
	mem    []byte
	blocks map[Handle]heapBlock
	order  []Handle
	next   int // next free offset in mem
	nextID Handle
}

type heapBlock struct {
	start int
	size  int
}

// NewHeap creates a heap of the given byte capacity.
func NewHeap(capacity int) (*Heap, error) {
	if capacity < 1 {
		return nil, errors.New("wrapper: non-positive heap capacity")
	}
	return &Heap{
		mem:    make([]byte, capacity),
		blocks: make(map[Handle]heapBlock),
	}, nil
}

// Alloc reserves a block of the given size and returns its handle.
func (h *Heap) Alloc(size int) (Handle, error) {
	if size < 1 {
		return 0, errors.New("wrapper: non-positive allocation size")
	}
	if h.next+size+1 > len(h.mem) {
		return 0, ErrOutOfMemory
	}
	id := h.nextID
	h.nextID++
	h.blocks[id] = heapBlock{start: h.next, size: size}
	h.order = append(h.order, id)
	h.next += size
	h.mem[h.next] = canary
	h.next++
	return id, nil
}

// Size returns the size of the block.
func (h *Heap) Size(id Handle) (int, error) {
	b, ok := h.blocks[id]
	if !ok {
		return 0, ErrBadHandle
	}
	return b.size, nil
}

// RawWrite writes data at offset within the block with NO bounds check:
// an overflowing write silently smashes the canary and any following
// blocks, as an unguarded C memcpy would.
func (h *Heap) RawWrite(id Handle, offset int, data []byte) error {
	b, ok := h.blocks[id]
	if !ok {
		return ErrBadHandle
	}
	if offset < 0 {
		return errors.New("wrapper: negative offset")
	}
	start := b.start + offset
	if start+len(data) > len(h.mem) {
		return fmt.Errorf("write past end of heap: %w", ErrOutOfMemory)
	}
	copy(h.mem[start:], data)
	return nil
}

// Read returns n bytes at offset within the block, bounds-checked (reads
// are not the attack vector in this model).
func (h *Heap) Read(id Handle, offset, n int) ([]byte, error) {
	b, ok := h.blocks[id]
	if !ok {
		return nil, ErrBadHandle
	}
	if offset < 0 || n < 0 || offset+n > b.size {
		return nil, fmt.Errorf("read [%d, %d) outside block of %d bytes: %w",
			offset, offset+n, b.size, ErrBadHandle)
	}
	out := make([]byte, n)
	copy(out, h.mem[b.start+offset:])
	return out, nil
}

// CheckIntegrity audits all inter-block canaries and returns the handles
// of blocks whose trailing canary was destroyed by an overflow.
func (h *Heap) CheckIntegrity() []Handle {
	var smashed []Handle
	for _, id := range h.order {
		b := h.blocks[id]
		if h.mem[b.start+b.size] != canary {
			smashed = append(smashed, id)
		}
	}
	return smashed
}

// OverflowPolicy selects how the healer handles an overflowing write.
type OverflowPolicy int

const (
	// Reject refuses the whole write.
	Reject OverflowPolicy = iota + 1
	// Truncate writes only the in-bounds prefix.
	Truncate
)

// Healer is the Fetzer-style boundary-check wrapper: it embeds every
// heap-writing call and performs suitable boundary checks to prevent
// buffer overflows.
type Healer struct {
	heap   *Heap
	policy OverflowPolicy

	// Prevented counts writes the healer rejected or truncated.
	Prevented int
}

// NewHealer wraps heap with the given overflow policy.
func NewHealer(heap *Heap, policy OverflowPolicy) (*Healer, error) {
	if heap == nil {
		return nil, errors.New("wrapper: nil heap")
	}
	if policy != Reject && policy != Truncate {
		return nil, errors.New("wrapper: unknown overflow policy")
	}
	return &Healer{heap: heap, policy: policy}, nil
}

// Write is the guarded write path: in-bounds writes pass through; an
// overflowing write is rejected or truncated per the policy, so the
// canary and neighboring blocks always survive.
func (w *Healer) Write(id Handle, offset int, data []byte) error {
	size, err := w.heap.Size(id)
	if err != nil {
		return err
	}
	if offset < 0 {
		return errors.New("wrapper: negative offset")
	}
	if offset+len(data) <= size {
		return w.heap.RawWrite(id, offset, data)
	}
	w.Prevented++
	switch w.policy {
	case Truncate:
		room := size - offset
		if room <= 0 {
			return fmt.Errorf("offset %d beyond block of %d bytes: %w", offset, size, ErrOverflowPrevented)
		}
		if err := w.heap.RawWrite(id, offset, data[:room]); err != nil {
			return err
		}
		return fmt.Errorf("wrote %d of %d bytes: %w", room, len(data), ErrOverflowPrevented)
	default:
		return fmt.Errorf("write of %d bytes at offset %d into block of %d bytes: %w",
			len(data), offset, size, ErrOverflowPrevented)
	}
}

package wrapper

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newHeap(t *testing.T) *Heap {
	t.Helper()
	h, err := NewHeap(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHeapAllocWriteRead(t *testing.T) {
	h := newHeap(t)
	b, err := h.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RawWrite(b, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(b, 0, 5)
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Read = (%q, %v)", got, err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	h, err := NewHeap(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(32); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestHeapBadHandle(t *testing.T) {
	h := newHeap(t)
	if err := h.RawWrite(Handle(99), 0, []byte("x")); !errors.Is(err, ErrBadHandle) {
		t.Errorf("err = %v", err)
	}
	if _, err := h.Read(Handle(99), 0, 1); !errors.Is(err, ErrBadHandle) {
		t.Errorf("err = %v", err)
	}
	if _, err := h.Size(Handle(99)); !errors.Is(err, ErrBadHandle) {
		t.Errorf("err = %v", err)
	}
}

func TestHeapInvalidArguments(t *testing.T) {
	h := newHeap(t)
	if _, err := h.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
	b, _ := h.Alloc(8)
	if err := h.RawWrite(b, -1, []byte("x")); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := h.Read(b, 4, 100); err == nil {
		t.Error("out-of-bounds read accepted")
	}
	if _, err := NewHeap(0); err == nil {
		t.Error("zero-capacity heap accepted")
	}
}

func TestRawOverflowSmashesNeighbor(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Alloc(8)
	b, _ := h.Alloc(8)
	if err := h.RawWrite(b, 0, []byte("VICTIMOK")); err != nil {
		t.Fatal(err)
	}
	// Overflow block a by 16 bytes: destroys a's canary and block b.
	if err := h.RawWrite(a, 0, bytes.Repeat([]byte{'X'}, 24)); err != nil {
		t.Fatal(err)
	}
	smashed := h.CheckIntegrity()
	if len(smashed) == 0 {
		t.Fatal("overflow not detected by integrity audit")
	}
	got, err := h.Read(b, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("VICTIMOK")) {
		t.Error("neighbor block survived a raw overflow; substrate too safe")
	}
}

func TestHealerRejectPreventsOverflow(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Alloc(8)
	b, _ := h.Alloc(8)
	if err := h.RawWrite(b, 0, []byte("VICTIMOK")); err != nil {
		t.Fatal(err)
	}
	healer, err := NewHealer(h, Reject)
	if err != nil {
		t.Fatal(err)
	}
	err = healer.Write(a, 0, bytes.Repeat([]byte{'X'}, 24))
	if !errors.Is(err, ErrOverflowPrevented) {
		t.Fatalf("err = %v, want ErrOverflowPrevented", err)
	}
	if healer.Prevented != 1 {
		t.Errorf("Prevented = %d", healer.Prevented)
	}
	if smashed := h.CheckIntegrity(); len(smashed) != 0 {
		t.Errorf("canaries smashed despite healer: %v", smashed)
	}
	got, _ := h.Read(b, 0, 8)
	if !bytes.Equal(got, []byte("VICTIMOK")) {
		t.Error("neighbor corrupted despite healer")
	}
}

func TestHealerTruncateWritesPrefix(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Alloc(4)
	healer, err := NewHealer(h, Truncate)
	if err != nil {
		t.Fatal(err)
	}
	err = healer.Write(a, 0, []byte("toolongdata"))
	if !errors.Is(err, ErrOverflowPrevented) {
		t.Fatalf("err = %v", err)
	}
	got, _ := h.Read(a, 0, 4)
	if !bytes.Equal(got, []byte("tool")) {
		t.Errorf("prefix = %q, want %q", got, "tool")
	}
	if smashed := h.CheckIntegrity(); len(smashed) != 0 {
		t.Errorf("canaries smashed: %v", smashed)
	}
}

func TestHealerTruncateBeyondBlock(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Alloc(4)
	healer, _ := NewHealer(h, Truncate)
	if err := healer.Write(a, 10, []byte("x")); !errors.Is(err, ErrOverflowPrevented) {
		t.Errorf("err = %v", err)
	}
}

func TestHealerInBoundsPassThrough(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Alloc(8)
	healer, _ := NewHealer(h, Reject)
	if err := healer.Write(a, 2, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if healer.Prevented != 0 {
		t.Errorf("Prevented = %d for an in-bounds write", healer.Prevented)
	}
	got, _ := h.Read(a, 2, 2)
	if !bytes.Equal(got, []byte("ok")) {
		t.Errorf("Read = %q", got)
	}
}

func TestHealerValidation(t *testing.T) {
	if _, err := NewHealer(nil, Reject); err == nil {
		t.Error("nil heap accepted")
	}
	h := newHeap(t)
	if _, err := NewHealer(h, OverflowPolicy(9)); err == nil {
		t.Error("bad policy accepted")
	}
	healer, _ := NewHealer(h, Reject)
	if err := healer.Write(Handle(77), 0, []byte("x")); !errors.Is(err, ErrBadHandle) {
		t.Errorf("err = %v", err)
	}
	a, _ := h.Alloc(4)
	if err := healer.Write(a, -1, []byte("x")); err == nil {
		t.Error("negative offset accepted")
	}
}

// Property: no sequence of healer writes can ever smash a canary.
func TestHealerIntegrityProperty(t *testing.T) {
	f := func(writes []struct {
		Block  uint8
		Offset uint8
		Len    uint8
	}) bool {
		h, err := NewHeap(4096)
		if err != nil {
			return false
		}
		var handles []Handle
		for i := 0; i < 8; i++ {
			b, err := h.Alloc(16)
			if err != nil {
				return false
			}
			handles = append(handles, b)
		}
		healer, err := NewHealer(h, Truncate)
		if err != nil {
			return false
		}
		for _, w := range writes {
			data := bytes.Repeat([]byte{0xAB}, int(w.Len))
			_ = healer.Write(handles[int(w.Block)%len(handles)], int(w.Offset), data)
		}
		return len(h.CheckIntegrity()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCOTSMisuseBreaksUnwrappedResource(t *testing.T) {
	r := NewCOTSResource()
	if err := r.Use(); !errors.Is(err, ErrProtocolViolation) {
		t.Fatalf("use-before-open: err = %v", err)
	}
	if r.State() != StateBroken {
		t.Errorf("state = %v, want broken", r.State())
	}
	if err := r.Open(); !errors.Is(err, ErrProtocolViolation) {
		t.Errorf("open of broken resource: err = %v", err)
	}
}

func TestCOTSDoubleOpenBreaks(t *testing.T) {
	r := NewCOTSResource()
	if err := r.Open(); err != nil {
		t.Fatal(err)
	}
	if err := r.Open(); !errors.Is(err, ErrProtocolViolation) {
		t.Errorf("err = %v", err)
	}
}

func TestCOTSDoubleCloseBreaks(t *testing.T) {
	r := NewCOTSResource()
	if err := r.Open(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); !errors.Is(err, ErrProtocolViolation) {
		t.Errorf("err = %v", err)
	}
}

func TestCOTSHappyPath(t *testing.T) {
	r := NewCOTSResource()
	if err := r.Open(); err != nil {
		t.Fatal(err)
	}
	if err := r.Use(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Uses() != 1 || r.State() != StateClosed {
		t.Errorf("uses=%d state=%v", r.Uses(), r.State())
	}
}

func TestProtocolWrapperRepairsMisuse(t *testing.T) {
	r := NewCOTSResource()
	w, err := NewProtocolWrapper(r)
	if err != nil {
		t.Fatal(err)
	}
	// use-before-open: auto-opened.
	if err := w.Use(); err != nil {
		t.Fatalf("wrapped use-before-open: %v", err)
	}
	// double open: suppressed.
	if err := w.Open(); err != nil {
		t.Fatalf("wrapped double open: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// double close: suppressed.
	if err := w.Close(); err != nil {
		t.Fatalf("wrapped double close: %v", err)
	}
	if r.State() == StateBroken {
		t.Error("resource broken despite wrapper")
	}
	if w.Repairs != 3 {
		t.Errorf("Repairs = %d, want 3", w.Repairs)
	}
	if r.Uses() != 1 {
		t.Errorf("Uses = %d", r.Uses())
	}
}

func TestProtocolWrapperValidation(t *testing.T) {
	if _, err := NewProtocolWrapper(nil); err == nil {
		t.Error("nil resource accepted")
	}
}

func TestResourceStateString(t *testing.T) {
	if StateClosed.String() != "closed" || StateOpen.String() != "open" ||
		StateBroken.String() != "broken" || ResourceState(0).String() != "unknown" {
		t.Error("ResourceState.String incorrect")
	}
}

package wrapper

import (
	"errors"
	"fmt"
)

// Protocol-enforcement wrappers for incompletely specified COTS
// components: the wrapper mediates every interaction, detects classic
// protocol mismatches (use-before-open, double-close, use-after-close)
// and repairs them when a safe repair exists.

// Protocol errors.
var (
	// ErrProtocolViolation reports a call sequence the component's
	// interaction protocol forbids.
	ErrProtocolViolation = errors.New("wrapper: protocol violation")
)

// ResourceState is the protocol state of a COTS resource component.
type ResourceState int

const (
	// StateClosed means the resource is not open.
	StateClosed ResourceState = iota + 1
	// StateOpen means the resource is open and usable.
	StateOpen
	// StateBroken means a protocol violation corrupted the component.
	StateBroken
)

// String implements fmt.Stringer.
func (s ResourceState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateBroken:
		return "broken"
	default:
		return "unknown"
	}
}

// COTSResource is a simulated off-the-shelf component with an implicit
// interaction protocol (Open → Use* → Close) that its specification does
// not enforce: misuse silently corrupts it, modeling the
// incomplete-specification integration problems wrappers target.
type COTSResource struct {
	state ResourceState
	uses  int
}

// NewCOTSResource returns a closed resource.
func NewCOTSResource() *COTSResource {
	return &COTSResource{state: StateClosed}
}

// State returns the protocol state.
func (r *COTSResource) State() ResourceState { return r.state }

// Uses returns the number of successful Use calls.
func (r *COTSResource) Uses() int { return r.uses }

// Open makes the resource usable. Opening an open resource breaks it
// (the undocumented behavior integrators trip over).
func (r *COTSResource) Open() error {
	if r.state == StateOpen {
		r.state = StateBroken
		return fmt.Errorf("double open corrupted the resource: %w", ErrProtocolViolation)
	}
	if r.state == StateBroken {
		return fmt.Errorf("resource is broken: %w", ErrProtocolViolation)
	}
	r.state = StateOpen
	return nil
}

// Use performs work. Using a closed resource breaks it.
func (r *COTSResource) Use() error {
	if r.state != StateOpen {
		r.state = StateBroken
		return fmt.Errorf("use while %s corrupted the resource: %w", r.state, ErrProtocolViolation)
	}
	r.uses++
	return nil
}

// Close releases the resource. Closing a closed resource breaks it.
func (r *COTSResource) Close() error {
	if r.state != StateOpen {
		r.state = StateBroken
		return fmt.Errorf("close while %s corrupted the resource: %w", r.state, ErrProtocolViolation)
	}
	r.state = StateClosed
	return nil
}

// ProtocolWrapper mediates all interactions with a COTSResource and
// repairs the classic misuses: it auto-opens on use-before-open,
// suppresses redundant opens and closes, and thereby keeps the component
// out of the broken state.
type ProtocolWrapper struct {
	resource *COTSResource

	// Repairs counts the misuses the wrapper absorbed.
	Repairs int
}

// NewProtocolWrapper wraps resource.
func NewProtocolWrapper(resource *COTSResource) (*ProtocolWrapper, error) {
	if resource == nil {
		return nil, errors.New("wrapper: nil resource")
	}
	return &ProtocolWrapper{resource: resource}, nil
}

// Open is idempotent through the wrapper.
func (w *ProtocolWrapper) Open() error {
	if w.resource.State() == StateOpen {
		w.Repairs++
		return nil
	}
	return w.resource.Open()
}

// Use auto-opens a closed resource before delegating.
func (w *ProtocolWrapper) Use() error {
	if w.resource.State() == StateClosed {
		w.Repairs++
		if err := w.resource.Open(); err != nil {
			return err
		}
	}
	return w.resource.Use()
}

// Close is idempotent through the wrapper.
func (w *ProtocolWrapper) Close() error {
	if w.resource.State() == StateClosed {
		w.Repairs++
		return nil
	}
	return w.resource.Close()
}

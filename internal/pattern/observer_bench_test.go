package pattern

import (
	"context"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
)

// benchVariants builds n trivially succeeding variants.
func benchVariants(n int) []core.Variant[int, int] {
	vs := make([]core.Variant[int, int], n)
	for i := range vs {
		vs[i] = core.NewVariant("v", func(_ context.Context, x int) (int, error) { return x, nil })
	}
	return vs
}

func benchAdjudicator() core.Adjudicator[int] {
	return core.AdjudicatorFunc[int](func(rs []core.Result[int]) (int, error) {
		return rs[0].Value, nil
	})
}

// BenchmarkObserverOverhead compares ParallelEvaluation.Execute with no
// observer, with the no-op observer, and with the histogram-backed
// Collector, so regressions in observation cost show up as a ratio
// against the unobserved baseline.
func BenchmarkObserverOverhead(b *testing.B) {
	ctx := context.Background()
	build := func(b *testing.B, opts ...Option) *ParallelEvaluation[int, int] {
		pe, err := NewParallelEvaluation(benchVariants(3), benchAdjudicator(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		return pe
	}

	b.Run("none", func(b *testing.B) {
		pe := build(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pe.Execute(ctx, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nop", func(b *testing.B) {
		pe := build(b, WithObserver(obs.Nop{}))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pe.Execute(ctx, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("collector", func(b *testing.B) {
		pe := build(b, WithObserver(obs.NewCollector()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pe.Execute(ctx, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("collector+traces", func(b *testing.B) {
		pe := build(b, WithObserver(obs.Combine(obs.NewCollector(), obs.NewTraceRecorder(128))))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pe.Execute(ctx, i); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestNilObserverZeroAllocs asserts that the unobserved path allocates
// exactly as much as it always did — the observation layer must be free
// when switched off — and that the no-op observer adds zero allocations
// on top of it.
func TestNilObserverZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	ctx := context.Background()
	measure := func(opts ...Option) float64 {
		pe, err := NewParallelEvaluation(benchVariants(3), benchAdjudicator(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := pe.Execute(ctx, 1); err != nil {
				t.Fatal(err)
			}
		})
	}

	baseline := measure()
	withNil := measure(WithObserver(nil))
	withNop := measure(WithObserver(obs.Nop{}))
	if withNil != baseline {
		t.Errorf("nil observer path allocates %v per run, baseline %v", withNil, baseline)
	}
	if withNop != baseline {
		t.Errorf("no-op observer adds allocations: %v per run, baseline %v", withNop, baseline)
	}
}

// TestCollectorSteadyStateAllocs asserts the histogram-backed Collector
// is allocation-free per request once the executor/variant pair is known.
func TestCollectorSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	ctx := context.Background()
	c := obs.NewCollector()
	seq, err := NewSequentialAlternatives(benchVariants(1),
		func(int, int) error { return nil }, nil, WithObserver(c))
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewSequentialAlternatives(benchVariants(1),
		func(int, int) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the collector's copy-on-write maps.
	if _, err := seq.Execute(ctx, 1); err != nil {
		t.Fatal(err)
	}
	baseline := testing.AllocsPerRun(200, func() { _, _ = base.Execute(ctx, 1) })
	observed := testing.AllocsPerRun(200, func() { _, _ = seq.Execute(ctx, 1) })
	if observed != baseline {
		t.Errorf("collector steady state allocates %v per run, baseline %v", observed, baseline)
	}
}

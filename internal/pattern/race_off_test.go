//go:build !race

package pattern

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because instrumentation changes
// allocation behavior.
const raceEnabled = false

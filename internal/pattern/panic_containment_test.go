package pattern

// Panic containment across all four executors: a FailPanic-injected
// variant (a fault that aborts the call stack instead of returning)
// must surface as an ordinary variant error, never crash the calling
// goroutine, and never take healthy siblings down with it. Run with
// -race: the parallel executors contain panics on worker goroutines.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/vote"
)

// panicVariant fails every request in FailPanic mode via the injector —
// the same fault plumbing experiments use, not a hand-rolled panic.
func panicVariant(name string) core.Variant[int, int] {
	return &faultmodel.Injector[int, int]{
		Base: core.NewVariant(name, func(_ context.Context, x int) (int, error) {
			return x, nil
		}),
		Faults: []faultmodel.Fault{faultmodel.Bohrbug{ID: 1, TriggerFraction: 1}},
		Mode:   faultmodel.FailPanic,
		Key:    faultmodel.HashInt,
	}
}

func okVariant(name string) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, x int) (int, error) {
		return x, nil
	})
}

func TestSingleContainsFailPanic(t *testing.T) {
	s, err := NewSingle(panicVariant("v1"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Execute(context.Background(), 7)
	if !errors.Is(err, core.ErrVariantPanicked) {
		t.Fatalf("err = %v, want ErrVariantPanicked", err)
	}
	var act *faultmodel.ActivatedError
	if !errors.As(err, &act) {
		t.Errorf("panic payload lost: %v", err)
	} else if act.Variant != "v1" {
		t.Errorf("payload variant = %q, want v1", act.Variant)
	}
}

func TestParallelEvaluationContainsFailPanic(t *testing.T) {
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{okVariant("a"), panicVariant("b"), okVariant("c")},
		vote.Majority(core.EqualOf[int]()),
	)
	if err != nil {
		t.Fatal(err)
	}
	// The two healthy versions outvote the panicking one.
	if got, err := pe.Execute(context.Background(), 9); err != nil || got != 9 {
		t.Errorf("= (%d, %v), want (9, nil)", got, err)
	}

	// All versions panicking: the vote fails, the test goroutine lives.
	all, err := NewParallelEvaluation(
		[]core.Variant[int, int]{panicVariant("a"), panicVariant("b"), panicVariant("c")},
		vote.Majority(core.EqualOf[int]()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := all.Execute(context.Background(), 9); err == nil {
		t.Error("unanimous panic should fail the vote")
	}
}

func TestParallelSelectionContainsFailPanic(t *testing.T) {
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{panicVariant("crashy"), okVariant("steady")},
		[]core.AcceptanceTest[int, int]{acceptAll, acceptAll},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ps.Execute(context.Background(), 4); err != nil || got != 4 {
		t.Errorf("= (%d, %v), want (4, nil)", got, err)
	}
}

func TestSequentialAlternativesContainFailPanic(t *testing.T) {
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{panicVariant("primary"), okVariant("alternate")},
		acceptAll, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sa.Execute(context.Background(), 5); err != nil || got != 5 {
		t.Errorf("= (%d, %v), want (5, nil)", got, err)
	}

	// Every alternate panicking: a detected failure, not a crash.
	all, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{panicVariant("p1"), panicVariant("p2")},
		acceptAll, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := all.Execute(context.Background(), 5); !errors.Is(err, core.ErrVariantPanicked) {
		t.Errorf("err = %v, want ErrVariantPanicked in chain", err)
	}
}

func TestPanicContainmentUnderConcurrency(t *testing.T) {
	// Hammer the parallel executors with concurrent requests while one
	// variant panics on every call; -race watches the recover paths.
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{okVariant("a"), panicVariant("b"), okVariant("c")},
		vote.Majority(core.EqualOf[int]()),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got, err := pe.Execute(context.Background(), g*100+i); err != nil || got != g*100+i {
					t.Errorf("= (%d, %v), want (%d, nil)", got, err, g*100+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

package pattern

import (
	"context"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
)

// TestExecutorTraceSpans: an executor with a trace-recording observer
// binds each request to a span, and a nested executor sharing the
// context records a child span of the outer request.
func TestExecutorTraceSpans(t *testing.T) {
	rec := obs.NewTraceRecorder(8)
	inner, err := NewSingle(core.NewVariant("leaf",
		func(_ context.Context, x int) (int, error) { return x + 1, nil }),
		WithObserver(rec))
	if err != nil {
		t.Fatalf("NewSingle(inner): %v", err)
	}
	outer, err := NewSingle(core.NewVariant("calls-inner",
		func(ctx context.Context, x int) (int, error) { return inner.Execute(ctx, x) }),
		WithObserver(rec))
	if err != nil {
		t.Fatalf("NewSingle(outer): %v", err)
	}
	if _, err := outer.Execute(context.Background(), 1); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// Most recent first: the outer request ends after the inner one.
	traces := rec.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	out, in := traces[0], traces[1]
	if out.TraceID == 0 || in.TraceID == 0 {
		t.Fatalf("untraced spans: inner %+v outer %+v", in, out)
	}
	if in.TraceID != out.TraceID {
		t.Fatalf("inner trace %d != outer trace %d", in.TraceID, out.TraceID)
	}
	if in.ParentSpanID != out.SpanID {
		t.Fatalf("inner parent %d, want outer span %d", in.ParentSpanID, out.SpanID)
	}
	if out.ParentSpanID != 0 {
		t.Fatalf("outer span has parent %d, want root", out.ParentSpanID)
	}
}

// TestUntracedObserverDerivesNoSpan: a metrics-only observer must not
// trigger span derivation (the trace allocation is gated on WantsTrace).
func TestUntracedObserverDerivesNoSpan(t *testing.T) {
	var sawTrace bool
	probe := core.NewVariant("probe", func(ctx context.Context, x int) (int, error) {
		_, sawTrace = obs.TraceContextFrom(ctx)
		return x, nil
	})
	s, err := NewSingle(probe, WithObserver(obs.NewCollector()))
	if err != nil {
		t.Fatalf("NewSingle: %v", err)
	}
	if _, err := s.Execute(context.Background(), 1); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if sawTrace {
		t.Fatal("collector-only executor derived a trace span")
	}
}

package pattern

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

// stubRanker returns a fixed order regardless of input.
type stubRanker struct {
	order []string
	calls int
}

func (r *stubRanker) Rank(_ string, _ []string) []string {
	r.calls++
	return r.order
}

// orderVariant records the order in which variants execute.
type orderLog struct {
	mu    sync.Mutex
	names []string
}

func (l *orderLog) variant(name string, err error) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, x int) (int, error) {
		l.mu.Lock()
		l.names = append(l.names, name)
		l.mu.Unlock()
		return x, err
	})
}

func TestSequentialAlternativesRankedOrder(t *testing.T) {
	var log orderLog
	vs := []core.Variant[int, int]{
		l3(t, &log, "a", errors.New("a down")),
		l3(t, &log, "b", nil),
		l3(t, &log, "c", nil),
	}
	accept := func(_ int, _ int) error { return nil }
	ranker := &stubRanker{order: []string{"c", "b", "a"}}
	sa, err := NewSequentialAlternatives(vs, accept, nil, WithRanker(ranker))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Ranked first alternative "c" succeeds immediately: exactly one
	// execution, of "c".
	if len(log.names) != 1 || log.names[0] != "c" {
		t.Errorf("execution order = %v, want [c]", log.names)
	}
	if ranker.calls != 1 {
		t.Errorf("ranker consulted %d times, want once per request", ranker.calls)
	}
}

// l3 keeps variant construction terse.
func l3(t *testing.T, log *orderLog, name string, err error) core.Variant[int, int] {
	t.Helper()
	return log.variant(name, err)
}

func TestSequentialAlternativesRankerToleratesBadNames(t *testing.T) {
	var log orderLog
	vs := []core.Variant[int, int]{
		l3(t, &log, "a", errors.New("a down")),
		l3(t, &log, "b", nil),
	}
	accept := func(_ int, _ int) error { return nil }
	// Ranker invents "ghost" and drops "b": "a" ranks first (fails),
	// dropped "b" appends after and succeeds.
	sa, err := NewSequentialAlternatives(vs, accept, nil,
		WithRanker(&stubRanker{order: []string{"ghost", "a"}}))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sa.Execute(context.Background(), 7); err != nil || got != 7 {
		t.Fatalf("execute = (%d, %v)", got, err)
	}
	if len(log.names) != 2 || log.names[0] != "a" || log.names[1] != "b" {
		t.Errorf("execution order = %v, want [a b]", log.names)
	}
}

func TestParallelSelectionRankedActing(t *testing.T) {
	// All three variants succeed and pass their tests; the ranked-first
	// variant's value must win.
	mk := func(name string, val int) core.Variant[int, int] {
		return core.NewVariant(name, func(_ context.Context, _ int) (int, error) { return val, nil })
	}
	vs := []core.Variant[int, int]{mk("a", 1), mk("b", 2), mk("c", 3)}
	tests := make([]core.AcceptanceTest[int, int], 3)
	for i := range tests {
		tests[i] = func(_ int, _ int) error { return nil }
	}
	ps, err := NewParallelSelection(vs, tests, WithRanker(&stubRanker{order: []string{"b", "c", "a"}}))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ps.Execute(context.Background(), 0); err != nil || got != 2 {
		t.Errorf("execute = (%d, %v), want ranked-first value 2", got, err)
	}
}

func TestNilRankerKeepsConfiguredOrder(t *testing.T) {
	var log orderLog
	vs := []core.Variant[int, int]{
		l3(t, &log, "a", errors.New("down")),
		l3(t, &log, "b", nil),
	}
	accept := func(_ int, _ int) error { return nil }
	sa, err := NewSequentialAlternatives(vs, accept, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if len(log.names) != 2 || log.names[0] != "a" {
		t.Errorf("execution order = %v, want [a b]", log.names)
	}
}

func TestNilRankerAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	// A configured ranker may allocate (it reorders per request), but
	// the nil-ranker path must cost exactly what it did before rankers
	// existed.
	ctx := context.Background()
	accept := func(_ int, _ int) error { return nil }
	measure := func(opts ...Option) float64 {
		ok := core.NewVariant("ok", func(_ context.Context, x int) (int, error) { return x, nil })
		sa, err := NewSequentialAlternatives([]core.Variant[int, int]{ok}, accept, nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() { _, _ = sa.Execute(ctx, 1) })
	}
	baseline := measure()
	withNil := measure(WithRanker(nil))
	if withNil != baseline {
		t.Errorf("nil ranker path allocates %v per run, baseline %v", withNil, baseline)
	}
}

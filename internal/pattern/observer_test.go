package pattern

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
)

// recordingObserver captures every observation event for assertions.
type recordingObserver struct {
	mu       sync.Mutex
	starts   int
	ends     int
	outcomes []obs.Outcome
	variants []string
	errs     int
	adjs     []struct{ accepted, detected bool }
	disabled []string
	retries  []int
	rolls    int
	reqs     map[uint64]bool
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{reqs: make(map[uint64]bool)}
}

func (r *recordingObserver) RequestStart(_ string, req uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts++
	r.reqs[req] = true
}

func (r *recordingObserver) RequestEnd(_ string, req uint64, _ time.Duration, o obs.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ends++
	r.outcomes = append(r.outcomes, o)
	if !r.reqs[req] {
		r.reqs[0] = true // flag unmatched request IDs via the sentinel
	}
}

func (r *recordingObserver) VariantStart(string, string, uint64) {}

func (r *recordingObserver) VariantEnd(_, variant string, _ uint64, _ time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.variants = append(r.variants, variant)
	if err != nil {
		r.errs++
	}
}

func (r *recordingObserver) Adjudicated(_ string, _ uint64, accepted, detected bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.adjs = append(r.adjs, struct{ accepted, detected bool }{accepted, detected})
}

func (r *recordingObserver) ComponentDisabled(_, component string, _ uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.disabled = append(r.disabled, component)
}

func (r *recordingObserver) RetryAttempt(_, _ string, _ uint64, attempt int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retries = append(r.retries, attempt)
}

func (r *recordingObserver) Rollback(string, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rolls++
}

func obsOK[O any](name string, v O) core.Variant[int, O] {
	return core.NewVariant(name, func(context.Context, int) (O, error) { return v, nil })
}

func obsFail(name string) core.Variant[int, int] {
	return core.NewVariant(name, func(context.Context, int) (int, error) {
		return 0, errors.New(name + " failed")
	})
}

func TestParallelEvaluationObserver(t *testing.T) {
	rec := newRecordingObserver()
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{obsOK("a", 7), obsOK("b", 7), obsFail("c")},
		core.AdjudicatorFunc[int](func(rs []core.Result[int]) (int, error) { return rs[0].Value, nil }),
		WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if rec.starts != 1 || rec.ends != 1 {
		t.Errorf("spans = %d/%d", rec.starts, rec.ends)
	}
	if len(rec.variants) != 3 || rec.errs != 1 {
		t.Errorf("variant events = %v errs = %d", rec.variants, rec.errs)
	}
	if len(rec.adjs) != 1 || !rec.adjs[0].accepted || !rec.adjs[0].detected {
		t.Errorf("adjudication = %+v", rec.adjs)
	}
	if rec.outcomes[0] != obs.OutcomeMasked {
		t.Errorf("outcome = %v, want masked", rec.outcomes[0])
	}
	if rec.reqs[0] {
		t.Error("request IDs did not match across callbacks")
	}
}

func TestParallelEvaluationExecuteAllUnobserved(t *testing.T) {
	rec := newRecordingObserver()
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{obsOK("a", 1)},
		core.AdjudicatorFunc[int](func(rs []core.Result[int]) (int, error) { return rs[0].Value, nil }),
		WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	// Direct raw executions carry no adjudication, so they are not
	// observed (matching the historical WithMetrics behavior).
	pe.ExecuteAll(context.Background(), 1)
	if rec.starts != 0 || len(rec.variants) != 0 {
		t.Errorf("ExecuteAll emitted events: starts=%d variants=%v", rec.starts, rec.variants)
	}
}

func TestParallelSelectionObserverDisables(t *testing.T) {
	rec := newRecordingObserver()
	reject := func(_ int, v int) error {
		if v == 0 {
			return core.ErrNotAccepted
		}
		return nil
	}
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{obsOK("bad", 0), obsOK("good", 1)},
		[]core.AcceptanceTest[int, int]{reject, reject},
		WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ps.Execute(context.Background(), 1); err != nil || v != 1 {
		t.Fatalf("Execute = %d, %v", v, err)
	}
	if len(rec.disabled) != 1 || rec.disabled[0] != "bad" {
		t.Errorf("disabled = %v", rec.disabled)
	}
	if rec.outcomes[0] != obs.OutcomeMasked {
		t.Errorf("outcome = %v, want masked", rec.outcomes[0])
	}

	// Second request: only "good" is live.
	if _, err := ps.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if len(rec.variants) != 3 {
		t.Errorf("variant executions = %d, want 3 (2 then 1)", len(rec.variants))
	}
	if rec.outcomes[1] != obs.OutcomeSuccess {
		t.Errorf("second outcome = %v", rec.outcomes[1])
	}
}

func TestParallelSelectionObserverAllDisabled(t *testing.T) {
	rec := newRecordingObserver()
	rejectAll := func(int, int) error { return core.ErrNotAccepted }
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{obsOK("v", 0)},
		[]core.AcceptanceTest[int, int]{rejectAll},
		WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = ps.Execute(context.Background(), 1) // disables "v"
	_, err = ps.Execute(context.Background(), 1)
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("want all-variants-failed, got %v", err)
	}
	if rec.starts != 2 || rec.ends != 2 {
		t.Errorf("spans = %d/%d", rec.starts, rec.ends)
	}
	// The all-disabled request ran no variants and detected nothing new.
	if got := rec.adjs[1]; got.accepted || got.detected {
		t.Errorf("all-disabled adjudication = %+v", got)
	}
	if rec.outcomes[1] != obs.OutcomeFailed {
		t.Errorf("all-disabled outcome = %v", rec.outcomes[1])
	}
}

func TestSequentialAlternativesObserverRetryAndRollback(t *testing.T) {
	rec := newRecordingObserver()
	rollbacks := 0
	seq, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{obsFail("primary"), obsOK("alternate", 9)},
		func(int, int) error { return nil },
		func(context.Context) error { rollbacks++; return nil },
		WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := seq.Execute(context.Background(), 1); err != nil || v != 9 {
		t.Fatalf("Execute = %d, %v", v, err)
	}
	if rec.rolls != 1 || rollbacks != 1 {
		t.Errorf("rollback events = %d, actual rollbacks = %d", rec.rolls, rollbacks)
	}
	if len(rec.retries) != 1 || rec.retries[0] != 2 {
		t.Errorf("retries = %v, want [2]", rec.retries)
	}
	if len(rec.variants) != 2 {
		t.Errorf("variant executions = %v", rec.variants)
	}
	if rec.outcomes[0] != obs.OutcomeMasked {
		t.Errorf("outcome = %v, want masked", rec.outcomes[0])
	}
}

func TestSingleObserver(t *testing.T) {
	rec := newRecordingObserver()
	s, err := NewSingle(obsFail("only"), WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(context.Background(), 1); err == nil {
		t.Fatal("want failure")
	}
	if rec.outcomes[0] != obs.OutcomeFailed {
		t.Errorf("outcome = %v", rec.outcomes[0])
	}
	if len(rec.adjs) != 1 || rec.adjs[0].accepted || !rec.adjs[0].detected {
		t.Errorf("adjudication = %+v", rec.adjs)
	}
}

// TestWithMetricsViaObserverParity drives each executor through mixed
// success/failure workloads twice — once against the legacy counters
// (WithMetrics, now observer-backed) and conceptually against the
// documented legacy semantics — and asserts the counters are unchanged.
func TestWithMetricsViaObserverParity(t *testing.T) {
	ctx := context.Background()

	t.Run("parallel-evaluation", func(t *testing.T) {
		var m core.Metrics
		pe, err := NewParallelEvaluation(
			[]core.Variant[int, int]{obsOK("a", 1), obsFail("b"), obsOK("c", 1)},
			core.AdjudicatorFunc[int](func(rs []core.Result[int]) (int, error) { return rs[0].Value, nil }),
			WithMetrics(&m))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = pe.Execute(ctx, 1)
		s := m.Snapshot()
		if s.Requests != 1 || s.VariantExecutions != 3 || s.FailuresDetected != 1 ||
			s.FailuresMasked != 1 || s.Failures != 0 {
			t.Errorf("snapshot = %+v", s)
		}
	})

	t.Run("sequential", func(t *testing.T) {
		var m core.Metrics
		seq, err := NewSequentialAlternatives(
			[]core.Variant[int, int]{obsFail("p"), obsOK("a", 1)},
			func(int, int) error { return nil }, nil, WithMetrics(&m))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = seq.Execute(ctx, 1)
		s := m.Snapshot()
		if s.Requests != 1 || s.VariantExecutions != 2 || s.FailuresDetected != 1 ||
			s.FailuresMasked != 1 || s.Failures != 0 {
			t.Errorf("snapshot = %+v", s)
		}
	})

	t.Run("selection-all-disabled", func(t *testing.T) {
		var m core.Metrics
		rejectAll := func(int, int) error { return core.ErrNotAccepted }
		ps, err := NewParallelSelection(
			[]core.Variant[int, int]{obsOK("v", 0)},
			[]core.AcceptanceTest[int, int]{rejectAll}, WithMetrics(&m))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = ps.Execute(ctx, 1) // rejected and disabled
		_, _ = ps.Execute(ctx, 1) // all disabled
		s := m.Snapshot()
		if s.Requests != 2 || s.VariantExecutions != 1 || s.FailuresDetected != 1 ||
			s.Failures != 2 {
			t.Errorf("snapshot = %+v", s)
		}
	})

	t.Run("single", func(t *testing.T) {
		var m core.Metrics
		sg, err := NewSingle(obsFail("only"), WithMetrics(&m))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = sg.Execute(ctx, 1)
		s := m.Snapshot()
		if s.Requests != 1 || s.VariantExecutions != 1 || s.FailuresDetected != 1 ||
			s.Failures != 1 {
			t.Errorf("snapshot = %+v", s)
		}
	})
}

// TestWithMetricsAndObserverCompose checks that legacy metrics and a new
// observer can be attached together and both see the traffic.
func TestWithMetricsAndObserverCompose(t *testing.T) {
	var m core.Metrics
	c := obs.NewCollector()
	sg, err := NewSingle(obsOK("v", 1), WithMetrics(&m), WithObserver(c))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); s.Requests != 1 {
		t.Errorf("metrics snapshot = %+v", s)
	}
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Requests != 1 || snap[0].Executor != "single" {
		t.Errorf("collector snapshot = %+v", snap)
	}
}

// TestObserverOf covers the option-resolution helper used by composition
// layers.
func TestObserverOf(t *testing.T) {
	if ObserverOf() != nil {
		t.Error("no options should resolve to nil observer")
	}
	if ObserverOf(WithVariantTimeout(time.Second)) != nil {
		t.Error("non-observer options should resolve to nil observer")
	}
	rec := newRecordingObserver()
	if got := ObserverOf(WithObserver(rec)); got != obs.Observer(rec) {
		t.Error("ObserverOf should return the configured observer")
	}
}

// Package pattern implements the three inter-component architectural
// patterns of the paper's Figure 1:
//
//   - parallel evaluation (Figure 1a): all alternatives execute in
//     parallel and a single adjudicator evaluates the full result set, as
//     in N-version programming;
//   - parallel selection (Figure 1b): alternatives execute in parallel,
//     each validated by its own adjudicator, and failing components are
//     disabled, as in self-checking programming;
//   - sequential alternatives (Figure 1c): alternatives execute one at a
//     time and the next is activated when the adjudicator detects a
//     failure, as in recovery blocks.
//
// All executors manage their goroutines: Execute never returns while a
// worker goroutine it spawned is still running, and workers receive a
// cancelable context so that canceled variants can stop early.
//
// Every executor is observable: WithObserver attaches an obs.Observer
// that receives request/variant spans, adjudication decisions and
// recovery actions. The legacy WithMetrics option is implemented on top
// of the same mechanism (obs.ForMetrics) and keeps its exact counter
// semantics. With no observer configured the executors take a fast path
// that performs no observation work and no allocations.
package pattern

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
)

// Executor names used in observation events and log records.
const (
	nameParallelEvaluation     = "parallel-evaluation"
	nameParallelSelection      = "parallel-selection"
	nameSequentialAlternatives = "sequential-alternatives"
	nameSingle                 = "single"
)

// config carries options shared by the pattern executors.
type config struct {
	observer       obs.Observer
	variantTimeout time.Duration
	logger         *slog.Logger
	ranker         Ranker
}

// Ranker orders variant names, best first, for an executor. The health
// diagnosis engine (internal/obs/health) implements it over live EWMA
// health scores, closing the observe→diagnose→act loop: executors that
// honor an order of preference consult the ranker per request.
type Ranker interface {
	// Rank returns names reordered best-first. Implementations must
	// return a permutation-like ordering; names they do not recognize
	// should keep their relative order.
	Rank(executor string, names []string) []string
}

// WithRanker attaches a variant ranker. SequentialAlternatives then
// tries variants healthiest-first (instead of configured order), and
// ParallelSelection prefers the healthiest acceptable result (the
// ranker decides which live variant is "acting" and which are spares).
// ParallelEvaluation and Single ignore the ranker — they have no order
// of preference. A nil ranker leaves the configured order untouched.
func WithRanker(r Ranker) Option {
	return func(c *config) { c.ranker = r }
}

// rankLive reorders the live variant indices by the ranker's preference.
// Names the ranker drops or invents are tolerated: ranked names pick the
// first not-yet-used live variant with that name, and leftovers append
// in configured order.
func rankLive[I, O any](r Ranker, executor string, vs []core.Variant[I, O], live []int) []int {
	names := make([]string, len(live))
	for i, idx := range live {
		names[i] = vs[idx].Name()
	}
	ranked := r.Rank(executor, names)
	out := make([]int, 0, len(live))
	used := make([]bool, len(live))
	for _, name := range ranked {
		for i, idx := range live {
			if !used[i] && vs[idx].Name() == name {
				out = append(out, idx)
				used[i] = true
				break
			}
		}
	}
	for i, idx := range live {
		if !used[i] {
			out = append(out, idx)
		}
	}
	return out
}

// rankVariants returns variants reordered by the ranker's preference.
func rankVariants[I, O any](r Ranker, executor string, vs []core.Variant[I, O]) []core.Variant[I, O] {
	live := make([]int, len(vs))
	for i := range vs {
		live[i] = i
	}
	out := make([]core.Variant[I, O], len(vs))
	for i, idx := range rankLive(r, executor, vs, live) {
		out[i] = vs[idx]
	}
	return out
}

// Option configures a pattern executor.
type Option func(*config)

// WithMetrics attaches a metrics collector to the executor. Since the
// observation layer landed this is a thin veneer over WithObserver: the
// counters are driven by the same events as every other observer, with
// the historical semantics preserved (one request per Execute, one
// variant execution per variant run, detected/masked/failed derived from
// the executor's adjudication decision).
func WithMetrics(m *core.Metrics) Option {
	return WithObserver(obs.ForMetrics(m))
}

// WithObserver attaches an observer receiving request and variant spans,
// adjudication decisions, and recovery actions (component disablement,
// retries, rollbacks). Multiple WithObserver (and WithMetrics) options
// compose: every attached observer sees every event.
func WithObserver(o obs.Observer) Option {
	return func(c *config) { c.observer = obs.Combine(c.observer, o) }
}

// WithVariantTimeout bounds each variant execution. A zero duration means
// no per-variant timeout; the ambient context still applies.
func WithVariantTimeout(d time.Duration) Option {
	return func(c *config) { c.variantTimeout = d }
}

// WithLogger attaches a structured logger; executors emit debug-level
// events for variant failures and info-level events when redundancy masks
// a failure or an executor fails outright.
func WithLogger(l *slog.Logger) Option {
	return func(c *config) { c.logger = l }
}

// logVariantFailure emits one event per failed variant result.
func (c config) logVariantFailure(executor, variant string, err error) {
	if c.logger == nil || err == nil {
		return
	}
	c.logger.Debug("variant failed",
		"executor", executor, "variant", variant, "err", err.Error())
}

// logOutcome emits an event when redundancy masked a failure or when the
// executor failed.
func (c config) logOutcome(executor string, masked bool, err error) {
	if c.logger == nil {
		return
	}
	switch {
	case err != nil:
		c.logger.Info("redundant execution failed", "executor", executor, "err", err.Error())
	case masked:
		c.logger.Info("failure masked by redundancy", "executor", executor)
	}
}

func newConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// startRequest opens an observed request span. It returns the request ID
// (0 when unobserved, so downstream events know to stay silent) and the
// span start time.
func (c config) startRequest(executor string) (req uint64, start time.Time) {
	o := c.observer
	if o == nil {
		return 0, time.Time{}
	}
	req = obs.NextRequestID()
	start = time.Now()
	o.RequestStart(executor, req)
	return req, start
}

// endRequest closes an observed request span with the executor's
// adjudication decision and classified outcome.
func (c config) endRequest(executor string, req uint64, start time.Time, accepted, failureDetected bool) {
	o := c.observer
	if o == nil || req == 0 {
		return
	}
	o.Adjudicated(executor, req, accepted, failureDetected)
	o.RequestEnd(executor, req, time.Since(start), outcomeOf(accepted, failureDetected))
}

// outcomeOf classifies a request end state.
func outcomeOf(accepted, failureDetected bool) obs.Outcome {
	switch {
	case !accepted:
		return obs.OutcomeFailed
	case failureDetected:
		return obs.OutcomeMasked
	default:
		return obs.OutcomeSuccess
	}
}

// runVariant executes one variant with latency accounting, the configured
// timeout, and panic containment: a panicking variant yields an ordinary
// failed Result instead of crashing the executor. When req is a live
// request ID the execution is bracketed by VariantStart/VariantEnd
// observation events.
func runVariant[I, O any](ctx context.Context, cfg config, executor string, req uint64, v core.Variant[I, O], input I) core.Result[O] {
	if o := cfg.observer; o != nil && req != 0 {
		o.VariantStart(executor, v.Name(), req)
	}
	if cfg.variantTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.variantTimeout)
		defer cancel()
	}
	start := time.Now()
	value, err := core.Guard(v).Execute(ctx, input)
	r := core.Result[O]{
		Variant: v.Name(),
		Value:   value,
		Err:     err,
		Latency: time.Since(start),
	}
	if o := cfg.observer; o != nil && req != 0 {
		o.VariantEnd(executor, r.Variant, req, r.Latency, r.Err)
	}
	return r
}

// ParallelEvaluation is the Figure 1a executor: it runs every variant on
// the same input concurrently and hands all results to one adjudicator.
type ParallelEvaluation[I, O any] struct {
	cfg         config
	variants    []core.Variant[I, O]
	adjudicator core.Adjudicator[O]
}

var _ core.Executor[int, int] = (*ParallelEvaluation[int, int])(nil)

// NewParallelEvaluation builds a parallel-evaluation executor. It returns
// an error if no variants or no adjudicator are supplied.
func NewParallelEvaluation[I, O any](variants []core.Variant[I, O], adj core.Adjudicator[O], opts ...Option) (*ParallelEvaluation[I, O], error) {
	if len(variants) == 0 {
		return nil, core.ErrNoVariants
	}
	if adj == nil {
		return nil, fmt.Errorf("pattern: nil adjudicator")
	}
	vs := make([]core.Variant[I, O], len(variants))
	copy(vs, variants)
	return &ParallelEvaluation[I, O]{cfg: newConfig(opts), variants: vs, adjudicator: adj}, nil
}

// Execute implements core.Executor.
func (p *ParallelEvaluation[I, O]) Execute(ctx context.Context, input I) (O, error) {
	req, start := p.cfg.startRequest(nameParallelEvaluation)
	results := p.executeAll(ctx, input, req)
	value, err := p.adjudicator.Adjudicate(results)
	anyFailed := false
	for _, r := range results {
		if !r.OK() {
			anyFailed = true
			p.cfg.logVariantFailure(nameParallelEvaluation, r.Variant, r.Err)
		}
	}
	p.cfg.logOutcome(nameParallelEvaluation, anyFailed, err)
	p.cfg.endRequest(nameParallelEvaluation, req, start, err == nil, anyFailed)
	return value, err
}

// ExecuteAll runs every variant concurrently and returns all results in
// variant order. It is exposed so callers (e.g. experiments) can inspect
// the raw result vector; such direct executions are not observed, because
// no request-level adjudication takes place.
func (p *ParallelEvaluation[I, O]) ExecuteAll(ctx context.Context, input I) []core.Result[O] {
	return p.executeAll(ctx, input, 0)
}

func (p *ParallelEvaluation[I, O]) executeAll(ctx context.Context, input I, req uint64) []core.Result[O] {
	results := make([]core.Result[O], len(p.variants))
	var wg sync.WaitGroup
	for i, v := range p.variants {
		wg.Add(1)
		go func(i int, v core.Variant[I, O]) {
			defer wg.Done()
			results[i] = runVariant(ctx, p.cfg, nameParallelEvaluation, req, v, input)
		}(i, v)
	}
	wg.Wait()
	return results
}

// ParallelSelection is the Figure 1b executor: variants run concurrently,
// each result is validated by the variant's own acceptance test, the
// first acceptable result (in completion order) is returned, and variants
// whose results are rejected are disabled for subsequent requests.
type ParallelSelection[I, O any] struct {
	cfg      config
	variants []core.Variant[I, O]
	tests    []core.AcceptanceTest[I, O]

	mu       sync.Mutex
	disabled map[string]bool
}

var _ core.Executor[int, int] = (*ParallelSelection[int, int])(nil)

// NewParallelSelection builds a parallel-selection executor. tests[i]
// validates variants[i]; the slices must have equal length.
func NewParallelSelection[I, O any](variants []core.Variant[I, O], tests []core.AcceptanceTest[I, O], opts ...Option) (*ParallelSelection[I, O], error) {
	if len(variants) == 0 {
		return nil, core.ErrNoVariants
	}
	if len(tests) != len(variants) {
		return nil, fmt.Errorf("pattern: %d variants but %d acceptance tests", len(variants), len(tests))
	}
	vs := make([]core.Variant[I, O], len(variants))
	copy(vs, variants)
	ts := make([]core.AcceptanceTest[I, O], len(tests))
	copy(ts, tests)
	return &ParallelSelection[I, O]{
		cfg:      newConfig(opts),
		variants: vs,
		tests:    ts,
		disabled: make(map[string]bool),
	}, nil
}

// Disabled returns the names of currently disabled variants.
func (p *ParallelSelection[I, O]) Disabled() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var names []string
	for _, v := range p.variants {
		if p.disabled[v.Name()] {
			names = append(names, v.Name())
		}
	}
	return names
}

// Reset re-enables all variants.
func (p *ParallelSelection[I, O]) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.disabled = make(map[string]bool)
}

// Execute implements core.Executor. All live variants run in parallel;
// every result is validated by its variant's own acceptance test, and
// rejected variants are disabled. The result of the highest-priority
// (earliest-configured) acceptable variant is returned: the "acting"
// component's result is used unless it failed, in which case the next
// "hot spare" takes over without any rollback.
func (p *ParallelSelection[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	req, start := p.cfg.startRequest(nameParallelSelection)

	p.mu.Lock()
	var live []int
	for i, v := range p.variants {
		if !p.disabled[v.Name()] {
			live = append(live, i)
		}
	}
	p.mu.Unlock()

	if len(live) == 0 {
		p.cfg.endRequest(nameParallelSelection, req, start, false, false)
		return zero, fmt.Errorf("all variants disabled: %w", core.ErrAllVariantsFailed)
	}
	if p.cfg.ranker != nil && len(live) > 1 {
		// Health-ranked priority: the healthiest live variant acts, the
		// rest are hot spares (acceptance order below follows live order).
		live = rankLive(p.cfg.ranker, nameParallelSelection, p.variants, live)
	}

	results := make([]core.Result[O], len(live))
	var wg sync.WaitGroup
	for slot, i := range live {
		wg.Add(1)
		go func(slot, i int) {
			defer wg.Done()
			results[slot] = runVariant(ctx, p.cfg, nameParallelSelection, req, p.variants[i], input)
		}(slot, i)
	}
	wg.Wait()

	var (
		accepted    bool
		value       O
		anyRejected bool
	)
	for slot, i := range live {
		r := results[slot]
		err := r.Err
		if err == nil {
			err = p.tests[i](input, r.Value)
		}
		if err != nil {
			anyRejected = true
			p.cfg.logVariantFailure(nameParallelSelection, p.variants[i].Name(), err)
			p.disable(p.variants[i].Name())
			if o := p.cfg.observer; o != nil {
				o.ComponentDisabled(nameParallelSelection, p.variants[i].Name(), req)
			}
			continue
		}
		if !accepted {
			accepted = true
			value = r.Value
		}
	}

	if !accepted {
		p.cfg.logOutcome(nameParallelSelection, anyRejected, core.ErrAllVariantsFailed)
	} else {
		p.cfg.logOutcome(nameParallelSelection, anyRejected, nil)
	}
	p.cfg.endRequest(nameParallelSelection, req, start, accepted, anyRejected)
	if !accepted {
		return zero, core.ErrAllVariantsFailed
	}
	return value, nil
}

func (p *ParallelSelection[I, O]) disable(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.disabled[name] = true
}

// SequentialAlternatives is the Figure 1c executor: it runs alternatives
// one at a time, validating each result with the acceptance test and
// moving to the next alternative on rejection, optionally restoring state
// between attempts (the recovery-block rollback).
type SequentialAlternatives[I, O any] struct {
	cfg      config
	variants []core.Variant[I, O]
	test     core.AcceptanceTest[I, O]
	rollback func(ctx context.Context) error
}

var _ core.Executor[int, int] = (*SequentialAlternatives[int, int])(nil)

// NewSequentialAlternatives builds a sequential-alternatives executor.
// rollback, if non-nil, is invoked before each retry to restore a
// consistent state.
func NewSequentialAlternatives[I, O any](variants []core.Variant[I, O], test core.AcceptanceTest[I, O], rollback func(ctx context.Context) error, opts ...Option) (*SequentialAlternatives[I, O], error) {
	if len(variants) == 0 {
		return nil, core.ErrNoVariants
	}
	if test == nil {
		return nil, fmt.Errorf("pattern: nil acceptance test")
	}
	vs := make([]core.Variant[I, O], len(variants))
	copy(vs, variants)
	return &SequentialAlternatives[I, O]{
		cfg:      newConfig(opts),
		variants: vs,
		test:     test,
		rollback: rollback,
	}, nil
}

// Execute implements core.Executor.
func (s *SequentialAlternatives[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	req, start := s.cfg.startRequest(nameSequentialAlternatives)
	o := s.cfg.observer
	variants := s.variants
	if s.cfg.ranker != nil {
		variants = rankVariants(s.cfg.ranker, nameSequentialAlternatives, s.variants)
	}
	var lastErr error
	attempts := 0
	for i, v := range variants {
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		if i > 0 && s.rollback != nil {
			if o != nil && req != 0 {
				o.Rollback(nameSequentialAlternatives, req)
			}
			if err := s.rollback(ctx); err != nil {
				lastErr = fmt.Errorf("rollback before alternate %s: %w", v.Name(), err)
				break
			}
		}
		if i > 0 && o != nil && req != 0 {
			o.RetryAttempt(nameSequentialAlternatives, v.Name(), req, i+1)
		}
		attempts++
		r := runVariant(ctx, s.cfg, nameSequentialAlternatives, req, v, input)
		if !r.OK() {
			lastErr = r.Err
			s.cfg.logVariantFailure(nameSequentialAlternatives, v.Name(), r.Err)
			continue
		}
		if err := s.test(input, r.Value); err != nil {
			lastErr = err
			s.cfg.logVariantFailure(nameSequentialAlternatives, v.Name(), err)
			continue
		}
		s.cfg.logOutcome(nameSequentialAlternatives, attempts > 1, nil)
		s.cfg.endRequest(nameSequentialAlternatives, req, start, true, attempts > 1)
		return r.Value, nil
	}
	if lastErr == nil {
		lastErr = core.ErrAllVariantsFailed
	}
	s.cfg.logOutcome(nameSequentialAlternatives, attempts > 1, lastErr)
	s.cfg.endRequest(nameSequentialAlternatives, req, start, false, attempts > 1)
	return zero, fmt.Errorf("%w: %w", core.ErrAllVariantsFailed, lastErr)
}

// Single wraps one variant as a non-redundant executor. Experiments use
// it as the baseline against which the redundant patterns are compared.
type Single[I, O any] struct {
	cfg     config
	variant core.Variant[I, O]
}

var _ core.Executor[int, int] = (*Single[int, int])(nil)

// NewSingle builds the baseline executor.
func NewSingle[I, O any](v core.Variant[I, O], opts ...Option) (*Single[I, O], error) {
	if v == nil {
		return nil, core.ErrNoVariants
	}
	return &Single[I, O]{cfg: newConfig(opts), variant: v}, nil
}

// Execute implements core.Executor.
func (s *Single[I, O]) Execute(ctx context.Context, input I) (O, error) {
	req, start := s.cfg.startRequest(nameSingle)
	r := runVariant(ctx, s.cfg, nameSingle, req, s.variant, input)
	if !r.OK() {
		s.cfg.logVariantFailure(nameSingle, r.Variant, r.Err)
		s.cfg.logOutcome(nameSingle, false, r.Err)
	}
	s.cfg.endRequest(nameSingle, req, start, r.OK(), !r.OK())
	return r.Value, r.Err
}

// ObserverOf resolves the observer configured by a set of options. It
// lets composition layers that hand-roll their own invocation loops
// (e.g. internal/composite's retry) emit observation events consistent
// with the pattern executors without access to the unexported config.
func ObserverOf(opts ...Option) obs.Observer {
	return newConfig(opts).observer
}

// Package pattern implements the three inter-component architectural
// patterns of the paper's Figure 1:
//
//   - parallel evaluation (Figure 1a): all alternatives execute in
//     parallel and a single adjudicator evaluates the full result set, as
//     in N-version programming;
//   - parallel selection (Figure 1b): alternatives execute in parallel,
//     each validated by its own adjudicator, and failing components are
//     disabled, as in self-checking programming;
//   - sequential alternatives (Figure 1c): alternatives execute one at a
//     time and the next is activated when the adjudicator detects a
//     failure, as in recovery blocks.
//
// All executors manage their goroutines: Execute never returns while a
// worker goroutine it spawned is still running, and workers receive a
// cancelable context so that canceled variants can stop early.
//
// Every executor is observable: WithObserver attaches an obs.Observer
// that receives request/variant spans, adjudication decisions and
// recovery actions. The legacy WithMetrics option is implemented on top
// of the same mechanism (obs.ForMetrics) and keeps its exact counter
// semantics. With no observer configured the executors take a fast path
// that performs no observation work and no allocations.
package pattern

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/resilience"
)

// Executor names used in observation events and log records.
const (
	nameParallelEvaluation     = "parallel-evaluation"
	nameParallelSelection      = "parallel-selection"
	nameSequentialAlternatives = "sequential-alternatives"
	nameSingle                 = "single"
)

// config carries options shared by the pattern executors.
type config struct {
	observer obs.Observer
	// traced caches obs.WantsTrace(observer): per-request trace spans are
	// derived (one context allocation) only when an attached observer
	// records them, preserving the unobserved and metrics-only fast paths.
	traced         bool
	variantTimeout time.Duration
	logger         *slog.Logger
	ranker         Ranker

	// Resilience policies (internal/resilience). All nil/zero by
	// default: executors with no policies configured keep their exact
	// legacy hot path, with no extra work and no extra allocations.
	breakers *resilience.Breakers
	retrier  *resilience.Retrier
	bulkhead *resilience.Bulkhead
	deadline resilience.DeadlinePolicy
	// fallback holds a *resilience.Ladder[I, O]; it is stored untyped
	// because options are not generic, and re-typed by the executor
	// (WithFallback's generic signature keeps call sites type-safe).
	fallback any
}

// Ranker orders variant names, best first, for an executor. The health
// diagnosis engine (internal/obs/health) implements it over live EWMA
// health scores, closing the observe→diagnose→act loop: executors that
// honor an order of preference consult the ranker per request.
type Ranker interface {
	// Rank returns names reordered best-first. Implementations must
	// return a permutation-like ordering; names they do not recognize
	// should keep their relative order.
	Rank(executor string, names []string) []string
}

// WithRanker attaches a variant ranker. SequentialAlternatives then
// tries variants healthiest-first (instead of configured order), and
// ParallelSelection prefers the healthiest acceptable result (the
// ranker decides which live variant is "acting" and which are spares).
// ParallelEvaluation and Single ignore the ranker — they have no order
// of preference. A nil ranker leaves the configured order untouched.
func WithRanker(r Ranker) Option {
	return func(c *config) { c.ranker = r }
}

// rankLive reorders the live variant indices by the ranker's preference.
// Names the ranker drops or invents are tolerated: ranked names pick the
// first not-yet-used live variant with that name, and leftovers append
// in configured order.
func rankLive[I, O any](r Ranker, executor string, vs []core.Variant[I, O], live []int) []int {
	names := make([]string, len(live))
	for i, idx := range live {
		names[i] = vs[idx].Name()
	}
	ranked := r.Rank(executor, names)
	out := make([]int, 0, len(live))
	used := make([]bool, len(live))
	for _, name := range ranked {
		for i, idx := range live {
			if !used[i] && vs[idx].Name() == name {
				out = append(out, idx)
				used[i] = true
				break
			}
		}
	}
	for i, idx := range live {
		if !used[i] {
			out = append(out, idx)
		}
	}
	return out
}

// rankVariants returns variants reordered by the ranker's preference.
func rankVariants[I, O any](r Ranker, executor string, vs []core.Variant[I, O]) []core.Variant[I, O] {
	live := make([]int, len(vs))
	for i := range vs {
		live[i] = i
	}
	out := make([]core.Variant[I, O], len(vs))
	for i, idx := range rankLive(r, executor, vs, live) {
		out[i] = vs[idx]
	}
	return out
}

// Option configures a pattern executor.
type Option func(*config)

// WithMetrics attaches a metrics collector to the executor. Since the
// observation layer landed this is a thin veneer over WithObserver: the
// counters are driven by the same events as every other observer, with
// the historical semantics preserved (one request per Execute, one
// variant execution per variant run, detected/masked/failed derived from
// the executor's adjudication decision).
func WithMetrics(m *core.Metrics) Option {
	return WithObserver(obs.ForMetrics(m))
}

// WithObserver attaches an observer receiving request and variant spans,
// adjudication decisions, and recovery actions (component disablement,
// retries, rollbacks). Multiple WithObserver (and WithMetrics) options
// compose: every attached observer sees every event.
func WithObserver(o obs.Observer) Option {
	return func(c *config) { c.observer = obs.Combine(c.observer, o) }
}

// WithVariantTimeout bounds each variant execution. A zero duration means
// no per-variant timeout; the ambient context still applies.
func WithVariantTimeout(d time.Duration) Option {
	return func(c *config) { c.variantTimeout = d }
}

// WithLogger attaches a structured logger; executors emit debug-level
// events for variant failures and info-level events when redundancy masks
// a failure or an executor fails outright.
func WithLogger(l *slog.Logger) Option {
	return func(c *config) { c.logger = l }
}

// WithBreaker attaches a circuit-breaker set: each variant gets its own
// breaker, consulted before every execution. Calls to a variant whose
// breaker is open fail fast (error wrapping resilience.ErrBreakerOpen)
// without executing, so sequential alternatives skip straight to the
// next alternate and parallel executors stop hammering a variant that
// fails deterministically. State transitions emit BreakerStateChanged
// observation events under this executor's name.
func WithBreaker(b *resilience.Breakers) Option {
	return func(c *config) { c.breakers = b }
}

// WithRetryPolicy attaches a retry pacing policy. SequentialAlternatives
// applies it between alternates (exponential backoff with seeded jitter,
// optional shared retry budget, optional attempt cap); Single re-executes
// its variant up to the policy's MaxAttempts. The parallel executors have
// no sequential attempt loop and ignore the policy, like they ignore a
// ranker.
func WithRetryPolicy(p resilience.RetryPolicy) Option {
	return func(c *config) { c.retrier = resilience.NewRetrier(p) }
}

// WithBulkhead bounds the executor's concurrency: requests beyond the
// bulkhead's limits are shed fast with resilience.ErrShedded (emitting a
// RequestShed observation event) instead of queueing without bound. The
// wait for an execution slot honors the request context's deadline.
func WithBulkhead(b *resilience.Bulkhead) Option {
	return func(c *config) { c.bulkhead = b }
}

// WithDeadline attaches a deadline policy: Request bounds each Execute
// call end to end, and Variant is the default per-variant deadline used
// when WithVariantTimeout is not configured — so a hung variant
// (faultmodel's FailHang) can never wedge the executor even when the
// caller forgot a context deadline. A tighter inherited context deadline
// always wins.
func WithDeadline(p resilience.DeadlinePolicy) Option {
	return func(c *config) { c.deadline = p }
}

// WithFallback attaches a degradation ladder: when the executor fails,
// it serves the cached last-good value, then the configured degraded
// variant, before giving up with an error wrapping
// resilience.ErrDegraded. Successful results feed the ladder's last-good
// cache; serves from the ladder emit DegradedServe observation events
// and report the request outcome as masked. The ladder's value types
// must match the executor's — the generic signature enforces this at
// the call site.
func WithFallback[I, O any](l *resilience.Ladder[I, O]) Option {
	return func(c *config) { c.fallback = l }
}

// logVariantFailure emits one event per failed variant result.
func (c config) logVariantFailure(executor, variant string, err error) {
	if c.logger == nil || err == nil {
		return
	}
	c.logger.Debug("variant failed",
		"executor", executor, "variant", variant, "err", err.Error())
}

// logOutcome emits an event when redundancy masked a failure or when the
// executor failed.
func (c config) logOutcome(executor string, masked bool, err error) {
	if c.logger == nil {
		return
	}
	switch {
	case err != nil:
		c.logger.Info("redundant execution failed", "executor", executor, "err", err.Error())
	case masked:
		c.logger.Info("failure masked by redundancy", "executor", executor)
	}
}

func newConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	c.traced = obs.WantsTrace(c.observer)
	return c
}

// bindResilience attaches the executor identity to stateful policies so
// their events carry the right executor name. Constructors call it once.
func (c *config) bindResilience(executor string) {
	if c.breakers != nil {
		c.breakers.Bind(executor, c.observer)
	}
}

// noopDone is the zero-cost admission cleanup used when no admission
// policy is configured.
var noopDone = func() {}

// admit runs the resilience front of one Execute call: the request
// deadline and bulkhead admission. It returns the (possibly bounded)
// context and a cleanup to defer; a non-nil error means the request was
// shed (RequestShed emitted) and must fail fast without executing.
func (c config) admit(ctx context.Context, executor string, req uint64) (context.Context, func(), error) {
	if c.deadline.Request <= 0 && c.bulkhead == nil {
		return ctx, noopDone, nil
	}
	cancel := context.CancelFunc(nil)
	if c.deadline.Request > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.deadline.Request)
	}
	if c.bulkhead != nil {
		if err := c.bulkhead.Acquire(ctx); err != nil {
			if cancel != nil {
				cancel()
			}
			if o := c.observer; o != nil && req != 0 {
				obs.EmitRequestShed(o, executor, req)
			}
			return ctx, noopDone, err
		}
	}
	bulkhead, cf := c.bulkhead, cancel
	return ctx, func() {
		if bulkhead != nil {
			bulkhead.Release()
		}
		if cf != nil {
			cf()
		}
	}, nil
}

// storeLastGood feeds an accepted result into the configured
// degradation ladder's last-good cache.
func storeLastGood[I, O any](cfg config, value O) {
	if cfg.fallback == nil {
		return
	}
	if l, ok := cfg.fallback.(*resilience.Ladder[I, O]); ok {
		l.Store(value)
	}
}

// serveFallback consults the degradation ladder after an executor
// failure. ok reports that a rung served; the DegradedServe event is
// emitted under the executor's name.
func serveFallback[I, O any](ctx context.Context, cfg config, executor string, req uint64, input I) (O, bool) {
	var zero O
	if cfg.fallback == nil {
		return zero, false
	}
	l, ok := cfg.fallback.(*resilience.Ladder[I, O])
	if !ok {
		return zero, false
	}
	v, source, err := l.Serve(ctx, input)
	if err != nil {
		return zero, false
	}
	if o := cfg.observer; o != nil && req != 0 {
		obs.EmitDegradedServe(o, executor, req, source)
	}
	return v, true
}

// degradedError marks a failure as degraded when a ladder was
// configured but could not serve; without a ladder the error passes
// through untouched (legacy behavior).
func degradedError(cfg config, err error) error {
	if cfg.fallback == nil {
		return err
	}
	return fmt.Errorf("%w: %w", resilience.ErrDegraded, err)
}

// startRequest opens an observed request span. It returns the request ID
// (0 when unobserved, so downstream events know to stay silent) and the
// span start time. When the observer records traces the returned context
// carries the request's span — a child of any span already on ctx — so
// nested executors and remote variants continue the causal trace.
func (c config) startRequest(ctx context.Context, executor string) (context.Context, uint64, time.Time) {
	o := c.observer
	if o == nil {
		return ctx, 0, time.Time{}
	}
	req := obs.NextRequestID()
	start := time.Now()
	o.RequestStart(executor, req)
	if c.traced {
		var tc obs.TraceContext
		ctx, tc = obs.StartTrace(ctx)
		obs.EmitRequestTraced(o, executor, req, tc)
	}
	return ctx, req, start
}

// endRequest closes an observed request span with the executor's
// adjudication decision and classified outcome.
func (c config) endRequest(executor string, req uint64, start time.Time, accepted, failureDetected bool) {
	o := c.observer
	if o == nil || req == 0 {
		return
	}
	o.Adjudicated(executor, req, accepted, failureDetected)
	o.RequestEnd(executor, req, time.Since(start), outcomeOf(accepted, failureDetected))
}

// outcomeOf classifies a request end state.
func outcomeOf(accepted, failureDetected bool) obs.Outcome {
	switch {
	case !accepted:
		return obs.OutcomeFailed
	case failureDetected:
		return obs.OutcomeMasked
	default:
		return obs.OutcomeSuccess
	}
}

// runVariant executes one variant with latency accounting, the configured
// timeout, and panic containment: a panicking variant yields an ordinary
// failed Result instead of crashing the executor. When req is a live
// request ID the execution is bracketed by VariantStart/VariantEnd
// observation events.
func runVariant[I, O any](ctx context.Context, cfg config, executor string, req uint64, v core.Variant[I, O], input I) core.Result[O] {
	var (
		brk *resilience.Breaker
		tok resilience.Token
	)
	if cfg.breakers != nil {
		brk = cfg.breakers.For(v.Name())
		var err error
		if tok, err = brk.Allow(); err != nil {
			// Rejected fast: no execution, no variant span — the
			// breaker's whole point is that the variant does no work.
			return core.Result[O]{Variant: v.Name(), Err: err}
		}
	}
	if o := cfg.observer; o != nil && req != 0 {
		o.VariantStart(executor, v.Name(), req)
	}
	if d := cfg.deadline.VariantDeadline(cfg.variantTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	value, err := core.Guard(v).Execute(ctx, input)
	r := core.Result[O]{
		Variant: v.Name(),
		Value:   value,
		Err:     err,
		Latency: time.Since(start),
	}
	if brk != nil {
		brk.Record(tok, r.Err)
	}
	if o := cfg.observer; o != nil && req != 0 {
		o.VariantEnd(executor, r.Variant, req, r.Latency, r.Err)
	}
	return r
}

// ParallelEvaluation is the Figure 1a executor: it runs every variant on
// the same input concurrently and hands all results to one adjudicator.
type ParallelEvaluation[I, O any] struct {
	cfg         config
	variants    []core.Variant[I, O]
	adjudicator core.Adjudicator[O]
}

var _ core.Executor[int, int] = (*ParallelEvaluation[int, int])(nil)

// NewParallelEvaluation builds a parallel-evaluation executor. It returns
// an error if no variants or no adjudicator are supplied.
func NewParallelEvaluation[I, O any](variants []core.Variant[I, O], adj core.Adjudicator[O], opts ...Option) (*ParallelEvaluation[I, O], error) {
	if len(variants) == 0 {
		return nil, core.ErrNoVariants
	}
	if adj == nil {
		return nil, fmt.Errorf("pattern: nil adjudicator")
	}
	vs := make([]core.Variant[I, O], len(variants))
	copy(vs, variants)
	cfg := newConfig(opts)
	cfg.bindResilience(nameParallelEvaluation)
	return &ParallelEvaluation[I, O]{cfg: cfg, variants: vs, adjudicator: adj}, nil
}

// Execute implements core.Executor.
func (p *ParallelEvaluation[I, O]) Execute(ctx context.Context, input I) (O, error) {
	ctx, req, start := p.cfg.startRequest(ctx, nameParallelEvaluation)
	ctx, done, admitErr := p.cfg.admit(ctx, nameParallelEvaluation, req)
	if admitErr != nil {
		var zero O
		p.cfg.endRequest(nameParallelEvaluation, req, start, false, false)
		return zero, admitErr
	}
	defer done()
	results := p.executeAll(ctx, input, req)
	value, err := p.adjudicator.Adjudicate(results)
	anyFailed := false
	for _, r := range results {
		if !r.OK() {
			anyFailed = true
			p.cfg.logVariantFailure(nameParallelEvaluation, r.Variant, r.Err)
		}
	}
	if err == nil {
		storeLastGood[I, O](p.cfg, value)
	} else if v, ok := serveFallback[I, O](ctx, p.cfg, nameParallelEvaluation, req, input); ok {
		p.cfg.logOutcome(nameParallelEvaluation, true, nil)
		p.cfg.endRequest(nameParallelEvaluation, req, start, true, true)
		return v, nil
	} else {
		err = degradedError(p.cfg, err)
	}
	p.cfg.logOutcome(nameParallelEvaluation, anyFailed, err)
	p.cfg.endRequest(nameParallelEvaluation, req, start, err == nil, anyFailed)
	return value, err
}

// ExecuteAll runs every variant concurrently and returns all results in
// variant order. It is exposed so callers (e.g. experiments) can inspect
// the raw result vector; such direct executions are not observed, because
// no request-level adjudication takes place.
func (p *ParallelEvaluation[I, O]) ExecuteAll(ctx context.Context, input I) []core.Result[O] {
	return p.executeAll(ctx, input, 0)
}

func (p *ParallelEvaluation[I, O]) executeAll(ctx context.Context, input I, req uint64) []core.Result[O] {
	results := make([]core.Result[O], len(p.variants))
	var wg sync.WaitGroup
	for i, v := range p.variants {
		wg.Add(1)
		go func(i int, v core.Variant[I, O]) {
			defer wg.Done()
			results[i] = runVariant(ctx, p.cfg, nameParallelEvaluation, req, v, input)
		}(i, v)
	}
	wg.Wait()
	return results
}

// ParallelSelection is the Figure 1b executor: variants run concurrently,
// each result is validated by the variant's own acceptance test, the
// first acceptable result (in completion order) is returned, and variants
// whose results are rejected are disabled for subsequent requests.
type ParallelSelection[I, O any] struct {
	cfg      config
	variants []core.Variant[I, O]
	tests    []core.AcceptanceTest[I, O]

	mu       sync.Mutex
	disabled map[string]bool
}

var _ core.Executor[int, int] = (*ParallelSelection[int, int])(nil)

// NewParallelSelection builds a parallel-selection executor. tests[i]
// validates variants[i]; the slices must have equal length.
func NewParallelSelection[I, O any](variants []core.Variant[I, O], tests []core.AcceptanceTest[I, O], opts ...Option) (*ParallelSelection[I, O], error) {
	if len(variants) == 0 {
		return nil, core.ErrNoVariants
	}
	if len(tests) != len(variants) {
		return nil, fmt.Errorf("pattern: %d variants but %d acceptance tests", len(variants), len(tests))
	}
	vs := make([]core.Variant[I, O], len(variants))
	copy(vs, variants)
	ts := make([]core.AcceptanceTest[I, O], len(tests))
	copy(ts, tests)
	cfg := newConfig(opts)
	cfg.bindResilience(nameParallelSelection)
	return &ParallelSelection[I, O]{
		cfg:      cfg,
		variants: vs,
		tests:    ts,
		disabled: make(map[string]bool),
	}, nil
}

// Disabled returns the names of currently disabled variants.
func (p *ParallelSelection[I, O]) Disabled() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var names []string
	for _, v := range p.variants {
		if p.disabled[v.Name()] {
			names = append(names, v.Name())
		}
	}
	return names
}

// Reset re-enables all variants.
func (p *ParallelSelection[I, O]) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.disabled = make(map[string]bool)
}

// Execute implements core.Executor. All live variants run in parallel;
// every result is validated by its variant's own acceptance test, and
// rejected variants are disabled. The result of the highest-priority
// (earliest-configured) acceptable variant is returned: the "acting"
// component's result is used unless it failed, in which case the next
// "hot spare" takes over without any rollback.
func (p *ParallelSelection[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	ctx, req, start := p.cfg.startRequest(ctx, nameParallelSelection)
	ctx, done, admitErr := p.cfg.admit(ctx, nameParallelSelection, req)
	if admitErr != nil {
		p.cfg.endRequest(nameParallelSelection, req, start, false, false)
		return zero, admitErr
	}
	defer done()

	p.mu.Lock()
	var live []int
	for i, v := range p.variants {
		if !p.disabled[v.Name()] {
			live = append(live, i)
		}
	}
	p.mu.Unlock()

	if len(live) == 0 {
		if v, ok := serveFallback[I, O](ctx, p.cfg, nameParallelSelection, req, input); ok {
			p.cfg.endRequest(nameParallelSelection, req, start, true, true)
			return v, nil
		}
		p.cfg.endRequest(nameParallelSelection, req, start, false, false)
		return zero, degradedError(p.cfg, fmt.Errorf("all variants disabled: %w", core.ErrAllVariantsFailed))
	}
	if p.cfg.ranker != nil && len(live) > 1 {
		// Health-ranked priority: the healthiest live variant acts, the
		// rest are hot spares (acceptance order below follows live order).
		live = rankLive(p.cfg.ranker, nameParallelSelection, p.variants, live)
	}

	results := make([]core.Result[O], len(live))
	var wg sync.WaitGroup
	for slot, i := range live {
		wg.Add(1)
		go func(slot, i int) {
			defer wg.Done()
			results[slot] = runVariant(ctx, p.cfg, nameParallelSelection, req, p.variants[i], input)
		}(slot, i)
	}
	wg.Wait()

	var (
		accepted    bool
		value       O
		anyRejected bool
	)
	for slot, i := range live {
		r := results[slot]
		err := r.Err
		if err == nil {
			err = p.tests[i](input, r.Value)
		}
		if err != nil {
			anyRejected = true
			p.cfg.logVariantFailure(nameParallelSelection, p.variants[i].Name(), err)
			// A breaker rejection is preventive, not new evidence of a
			// faulty component: the variant did not run, so it is skipped
			// for this request but not permanently disabled.
			if !errors.Is(err, resilience.ErrBreakerOpen) {
				p.disable(p.variants[i].Name())
				if o := p.cfg.observer; o != nil {
					o.ComponentDisabled(nameParallelSelection, p.variants[i].Name(), req)
				}
			}
			continue
		}
		if !accepted {
			accepted = true
			value = r.Value
		}
	}

	if accepted {
		storeLastGood[I, O](p.cfg, value)
		p.cfg.logOutcome(nameParallelSelection, anyRejected, nil)
		p.cfg.endRequest(nameParallelSelection, req, start, true, anyRejected)
		return value, nil
	}
	if v, ok := serveFallback[I, O](ctx, p.cfg, nameParallelSelection, req, input); ok {
		p.cfg.logOutcome(nameParallelSelection, true, nil)
		p.cfg.endRequest(nameParallelSelection, req, start, true, true)
		return v, nil
	}
	p.cfg.logOutcome(nameParallelSelection, anyRejected, core.ErrAllVariantsFailed)
	p.cfg.endRequest(nameParallelSelection, req, start, false, anyRejected)
	return zero, degradedError(p.cfg, core.ErrAllVariantsFailed)
}

func (p *ParallelSelection[I, O]) disable(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.disabled[name] = true
}

// SequentialAlternatives is the Figure 1c executor: it runs alternatives
// one at a time, validating each result with the acceptance test and
// moving to the next alternative on rejection, optionally restoring state
// between attempts (the recovery-block rollback).
type SequentialAlternatives[I, O any] struct {
	cfg      config
	variants []core.Variant[I, O]
	test     core.AcceptanceTest[I, O]
	rollback func(ctx context.Context) error
}

var _ core.Executor[int, int] = (*SequentialAlternatives[int, int])(nil)

// NewSequentialAlternatives builds a sequential-alternatives executor.
// rollback, if non-nil, is invoked before each retry to restore a
// consistent state.
func NewSequentialAlternatives[I, O any](variants []core.Variant[I, O], test core.AcceptanceTest[I, O], rollback func(ctx context.Context) error, opts ...Option) (*SequentialAlternatives[I, O], error) {
	if len(variants) == 0 {
		return nil, core.ErrNoVariants
	}
	if test == nil {
		return nil, fmt.Errorf("pattern: nil acceptance test")
	}
	vs := make([]core.Variant[I, O], len(variants))
	copy(vs, variants)
	cfg := newConfig(opts)
	cfg.bindResilience(nameSequentialAlternatives)
	return &SequentialAlternatives[I, O]{
		cfg:      cfg,
		variants: vs,
		test:     test,
		rollback: rollback,
	}, nil
}

// Execute implements core.Executor.
func (s *SequentialAlternatives[I, O]) Execute(ctx context.Context, input I) (O, error) {
	var zero O
	ctx, req, start := s.cfg.startRequest(ctx, nameSequentialAlternatives)
	ctx, done, admitErr := s.cfg.admit(ctx, nameSequentialAlternatives, req)
	if admitErr != nil {
		s.cfg.endRequest(nameSequentialAlternatives, req, start, false, false)
		return zero, admitErr
	}
	defer done()
	o := s.cfg.observer
	variants := s.variants
	if s.cfg.ranker != nil {
		variants = rankVariants(s.cfg.ranker, nameSequentialAlternatives, s.variants)
	}
	retrier := s.cfg.retrier
	if retrier != nil {
		if b := retrier.Budget(); b != nil {
			b.Deposit()
		}
	}
	var lastErr error
	attempts := 0
	for i, v := range variants {
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		if i > 0 && retrier != nil {
			// Every alternate beyond the first is a retry: it pays the
			// retry budget, respects the attempt cap, and waits out the
			// policy's (jittered, exponential) backoff.
			if cap := retrier.AttemptCap(); cap > 0 && attempts >= cap {
				break
			}
			if b := retrier.Budget(); b != nil && !b.Withdraw() {
				if lastErr != nil {
					lastErr = fmt.Errorf("%w: %w", resilience.ErrRetryBudgetExhausted, lastErr)
				} else {
					lastErr = resilience.ErrRetryBudgetExhausted
				}
				break
			}
			if err := retrier.Pause(ctx, attempts+1); err != nil {
				lastErr = err
				break
			}
		}
		if i > 0 && s.rollback != nil {
			if o != nil && req != 0 {
				o.Rollback(nameSequentialAlternatives, req)
			}
			if err := s.rollback(ctx); err != nil {
				lastErr = fmt.Errorf("rollback before alternate %s: %w", v.Name(), err)
				break
			}
		}
		if i > 0 && o != nil && req != 0 {
			o.RetryAttempt(nameSequentialAlternatives, v.Name(), req, i+1)
		}
		attempts++
		r := runVariant(ctx, s.cfg, nameSequentialAlternatives, req, v, input)
		if !r.OK() {
			lastErr = r.Err
			s.cfg.logVariantFailure(nameSequentialAlternatives, v.Name(), r.Err)
			continue
		}
		if err := s.test(input, r.Value); err != nil {
			lastErr = err
			s.cfg.logVariantFailure(nameSequentialAlternatives, v.Name(), err)
			continue
		}
		storeLastGood[I, O](s.cfg, r.Value)
		s.cfg.logOutcome(nameSequentialAlternatives, attempts > 1, nil)
		s.cfg.endRequest(nameSequentialAlternatives, req, start, true, attempts > 1)
		return r.Value, nil
	}
	if lastErr == nil {
		lastErr = core.ErrAllVariantsFailed
	}
	if v, ok := serveFallback[I, O](ctx, s.cfg, nameSequentialAlternatives, req, input); ok {
		s.cfg.logOutcome(nameSequentialAlternatives, true, nil)
		s.cfg.endRequest(nameSequentialAlternatives, req, start, true, true)
		return v, nil
	}
	s.cfg.logOutcome(nameSequentialAlternatives, attempts > 1, lastErr)
	s.cfg.endRequest(nameSequentialAlternatives, req, start, false, attempts > 1)
	return zero, degradedError(s.cfg, fmt.Errorf("%w: %w", core.ErrAllVariantsFailed, lastErr))
}

// Single wraps one variant as a non-redundant executor. Experiments use
// it as the baseline against which the redundant patterns are compared.
type Single[I, O any] struct {
	cfg     config
	variant core.Variant[I, O]
}

var _ core.Executor[int, int] = (*Single[int, int])(nil)

// NewSingle builds the baseline executor.
func NewSingle[I, O any](v core.Variant[I, O], opts ...Option) (*Single[I, O], error) {
	if v == nil {
		return nil, core.ErrNoVariants
	}
	cfg := newConfig(opts)
	cfg.bindResilience(nameSingle)
	return &Single[I, O]{cfg: cfg, variant: v}, nil
}

// Execute implements core.Executor. With a retry policy configured
// (WithRetryPolicy) the variant is re-executed up to MaxAttempts times,
// with backoff pacing and budget accounting between attempts — temporal
// redundancy for the baseline executor.
func (s *Single[I, O]) Execute(ctx context.Context, input I) (O, error) {
	ctx, req, start := s.cfg.startRequest(ctx, nameSingle)
	ctx, done, admitErr := s.cfg.admit(ctx, nameSingle, req)
	if admitErr != nil {
		var zero O
		s.cfg.endRequest(nameSingle, req, start, false, false)
		return zero, admitErr
	}
	defer done()
	retrier := s.cfg.retrier
	maxAttempts := 1
	if retrier != nil {
		maxAttempts = retrier.MaxAttempts()
		if b := retrier.Budget(); b != nil {
			b.Deposit()
		}
	}
	var (
		r        core.Result[O]
		attempts int
	)
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if attempt > 1 {
			if b := retrier.Budget(); b != nil && !b.Withdraw() {
				r.Err = fmt.Errorf("%w: %w", resilience.ErrRetryBudgetExhausted, r.Err)
				break
			}
			if err := retrier.Pause(ctx, attempt); err != nil {
				break
			}
			if o := s.cfg.observer; o != nil && req != 0 {
				o.RetryAttempt(nameSingle, s.variant.Name(), req, attempt)
			}
		}
		attempts++
		r = runVariant(ctx, s.cfg, nameSingle, req, s.variant, input)
		if r.OK() {
			break
		}
		s.cfg.logVariantFailure(nameSingle, r.Variant, r.Err)
	}
	masked := r.OK() && attempts > 1
	if r.OK() {
		storeLastGood[I, O](s.cfg, r.Value)
		s.cfg.logOutcome(nameSingle, masked, nil)
		s.cfg.endRequest(nameSingle, req, start, true, masked)
		return r.Value, nil
	}
	if v, ok := serveFallback[I, O](ctx, s.cfg, nameSingle, req, input); ok {
		s.cfg.logOutcome(nameSingle, true, nil)
		s.cfg.endRequest(nameSingle, req, start, true, true)
		return v, nil
	}
	s.cfg.logOutcome(nameSingle, false, r.Err)
	s.cfg.endRequest(nameSingle, req, start, false, true)
	return r.Value, degradedError(s.cfg, r.Err)
}

// ObserverOf resolves the observer configured by a set of options. It
// lets composition layers that hand-roll their own invocation loops
// (e.g. internal/composite's retry) emit observation events consistent
// with the pattern executors without access to the unexported config.
func ObserverOf(opts ...Option) obs.Observer {
	return newConfig(opts).observer
}

// Policies are the resilience policies resolved from a set of options.
// Composition layers that hand-roll their own invocation loops
// (internal/composite's retry and alternates) use it to honor the same
// breakers, budgets, bulkheads and deadlines as the pattern executors.
type Policies struct {
	Observer obs.Observer
	Breakers *resilience.Breakers
	Retrier  *resilience.Retrier
	Bulkhead *resilience.Bulkhead
	Deadline resilience.DeadlinePolicy
}

// PoliciesOf resolves the resilience policies configured by a set of
// options.
func PoliciesOf(opts ...Option) Policies {
	c := newConfig(opts)
	return Policies{
		Observer: c.observer,
		Breakers: c.breakers,
		Retrier:  c.retrier,
		Bulkhead: c.bulkhead,
		Deadline: c.deadline,
	}
}

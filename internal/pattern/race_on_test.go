//go:build race

package pattern

// raceEnabled reports whether the race detector is active.
const raceEnabled = true

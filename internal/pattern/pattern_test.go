package pattern

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/vote"
)

func constVariant(name string, v int) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, _ int) (int, error) {
		return v, nil
	})
}

func errVariant(name string) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, _ int) (int, error) {
		return 0, fmt.Errorf("variant %s: %w", name, core.ErrNotAccepted)
	})
}

func acceptAll(_ int, _ int) error { return nil }

func acceptEq(want int) core.AcceptanceTest[int, int] {
	return func(_ int, output int) error {
		if output != want {
			return core.ErrNotAccepted
		}
		return nil
	}
}

func TestParallelEvaluationMajority(t *testing.T) {
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{
			constVariant("a", 42), constVariant("b", 42), constVariant("c", 7),
		},
		vote.Majority(core.EqualOf[int]()),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pe.Execute(context.Background(), 0)
	if err != nil || got != 42 {
		t.Errorf("= (%d, %v), want (42, nil)", got, err)
	}
}

func TestParallelEvaluationRunsAllVariants(t *testing.T) {
	var count atomic.Int32
	mk := func(name string) core.Variant[int, int] {
		return core.NewVariant(name, func(_ context.Context, x int) (int, error) {
			count.Add(1)
			return x, nil
		})
	}
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{mk("a"), mk("b"), mk("c")},
		vote.Majority(core.EqualOf[int]()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 3 {
		t.Errorf("executed %d variants, want 3", count.Load())
	}
}

func TestParallelEvaluationResultOrder(t *testing.T) {
	// Results must be in variant order even when completion order differs.
	slow := core.NewVariant("slow", func(ctx context.Context, x int) (int, error) {
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
		}
		return 1, nil
	})
	fast := constVariant("fast", 2)
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{slow, fast},
		vote.FirstSuccess[int](),
	)
	if err != nil {
		t.Fatal(err)
	}
	results := pe.ExecuteAll(context.Background(), 0)
	if results[0].Variant != "slow" || results[1].Variant != "fast" {
		t.Errorf("results out of variant order: %v, %v", results[0].Variant, results[1].Variant)
	}
}

func TestParallelEvaluationConstructorErrors(t *testing.T) {
	if _, err := NewParallelEvaluation[int, int](nil, vote.FirstSuccess[int]()); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("no variants: err = %v", err)
	}
	if _, err := NewParallelEvaluation([]core.Variant[int, int]{constVariant("a", 1)}, nil); err == nil {
		t.Error("nil adjudicator: want error")
	}
}

func TestParallelEvaluationMetrics(t *testing.T) {
	var m core.Metrics
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{
			constVariant("a", 1), constVariant("b", 1), errVariant("c"),
		},
		vote.Majority(core.EqualOf[int]()),
		WithMetrics(&m),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Execute(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Requests != 1 || s.VariantExecutions != 3 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.FailuresDetected != 1 || s.FailuresMasked != 1 || s.Failures != 0 {
		t.Errorf("failure accounting = %+v", s)
	}
}

func TestParallelEvaluationNoConsensusCountsAsFailure(t *testing.T) {
	var m core.Metrics
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{constVariant("a", 1), constVariant("b", 2)},
		vote.Majority(core.EqualOf[int]()),
		WithMetrics(&m),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Execute(context.Background(), 0); !errors.Is(err, core.ErrNoConsensus) {
		t.Fatalf("err = %v", err)
	}
	if s := m.Snapshot(); s.Failures != 1 {
		t.Errorf("failures = %d, want 1", s.Failures)
	}
}

func TestParallelSelectionPicksAcceptableResult(t *testing.T) {
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{constVariant("bad", 7), constVariant("good", 42)},
		[]core.AcceptanceTest[int, int]{acceptEq(42), acceptEq(42)},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ps.Execute(context.Background(), 0)
	if err != nil || got != 42 {
		t.Errorf("= (%d, %v), want (42, nil)", got, err)
	}
	disabled := ps.Disabled()
	if len(disabled) != 1 || disabled[0] != "bad" {
		t.Errorf("disabled = %v, want [bad]", disabled)
	}
}

func TestParallelSelectionDisablesAndRecovers(t *testing.T) {
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{errVariant("a"), constVariant("b", 1)},
		[]core.AcceptanceTest[int, int]{acceptAll, acceptAll},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := ps.Execute(context.Background(), 0)
		if err != nil || got != 1 {
			t.Fatalf("request %d: = (%d, %v)", i, got, err)
		}
	}
	if len(ps.Disabled()) != 1 {
		t.Errorf("disabled = %v", ps.Disabled())
	}
	ps.Reset()
	if len(ps.Disabled()) != 0 {
		t.Error("Reset did not clear disabled set")
	}
}

func TestParallelSelectionAllDisabled(t *testing.T) {
	var m core.Metrics
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{errVariant("a")},
		[]core.AcceptanceTest[int, int]{acceptAll},
		WithMetrics(&m),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Execute(context.Background(), 0); !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("first: err = %v", err)
	}
	if _, err := ps.Execute(context.Background(), 0); !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("after disable: err = %v", err)
	}
	if s := m.Snapshot(); s.Failures != 2 {
		t.Errorf("failures = %d, want 2", s.Failures)
	}
}

func TestParallelSelectionConstructorErrors(t *testing.T) {
	if _, err := NewParallelSelection[int, int](nil, nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewParallelSelection(
		[]core.Variant[int, int]{constVariant("a", 1)},
		nil,
	); err == nil {
		t.Error("mismatched tests: want error")
	}
}

func TestSequentialAlternativesFallsThrough(t *testing.T) {
	var order []string
	mk := func(name string, v int, fail bool) core.Variant[int, int] {
		return core.NewVariant(name, func(_ context.Context, _ int) (int, error) {
			order = append(order, name)
			if fail {
				return 0, errors.New("failed")
			}
			return v, nil
		})
	}
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{
			mk("primary", 0, true),
			mk("alt1", 5, false),
			mk("alt2", 6, false),
		},
		acceptAll, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sa.Execute(context.Background(), 0)
	if err != nil || got != 5 {
		t.Errorf("= (%d, %v), want (5, nil)", got, err)
	}
	if len(order) != 2 || order[0] != "primary" || order[1] != "alt1" {
		t.Errorf("execution order = %v; alt2 must not run", order)
	}
}

func TestSequentialAlternativesAcceptanceRejection(t *testing.T) {
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{constVariant("a", 7), constVariant("b", 42)},
		acceptEq(42), nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sa.Execute(context.Background(), 0)
	if err != nil || got != 42 {
		t.Errorf("= (%d, %v), want (42, nil)", got, err)
	}
}

func TestSequentialAlternativesAllFail(t *testing.T) {
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{errVariant("a"), errVariant("b")},
		acceptAll, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sa.Execute(context.Background(), 0)
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Errorf("err = %v, want ErrAllVariantsFailed", err)
	}
}

func TestSequentialAlternativesRollback(t *testing.T) {
	rollbacks := 0
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{errVariant("a"), errVariant("b"), constVariant("c", 1)},
		acceptAll,
		func(_ context.Context) error { rollbacks++; return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Execute(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if rollbacks != 2 {
		t.Errorf("rollbacks = %d, want 2 (before each alternate)", rollbacks)
	}
}

func TestSequentialAlternativesRollbackFailureAborts(t *testing.T) {
	wantErr := errors.New("rollback broken")
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{errVariant("a"), constVariant("b", 1)},
		acceptAll,
		func(_ context.Context) error { return wantErr },
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sa.Execute(context.Background(), 0)
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want rollback error", err)
	}
}

func TestSequentialAlternativesContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{constVariant("a", 1)},
		acceptAll, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sa.Execute(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSequentialAlternativesMetrics(t *testing.T) {
	var m core.Metrics
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{errVariant("a"), constVariant("b", 1)},
		acceptAll, nil,
		WithMetrics(&m),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Execute(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Requests != 1 || s.VariantExecutions != 2 ||
		s.FailuresDetected != 1 || s.FailuresMasked != 1 || s.Failures != 0 {
		t.Errorf("snapshot = %+v", s)
	}
	if got := s.ExecutionsPerRequest(); got != 2 {
		t.Errorf("ExecutionsPerRequest = %f", got)
	}
}

func TestSequentialAlternativesConstructorErrors(t *testing.T) {
	if _, err := NewSequentialAlternatives[int, int](nil, acceptAll, nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{constVariant("a", 1)}, nil, nil,
	); err == nil {
		t.Error("nil test: want error")
	}
}

func TestSingleBaseline(t *testing.T) {
	var m core.Metrics
	s, err := NewSingle(constVariant("only", 9), WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Execute(context.Background(), 0)
	if err != nil || got != 9 {
		t.Errorf("= (%d, %v)", got, err)
	}
	if snap := m.Snapshot(); snap.Requests != 1 || snap.VariantExecutions != 1 {
		t.Errorf("metrics = %+v", snap)
	}
}

func TestSingleFailure(t *testing.T) {
	var m core.Metrics
	s, err := NewSingle(errVariant("only"), WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(context.Background(), 0); err == nil {
		t.Error("want error")
	}
	if snap := m.Snapshot(); snap.Failures != 1 {
		t.Errorf("failures = %d", snap.Failures)
	}
}

func TestSingleNilVariant(t *testing.T) {
	if _, err := NewSingle[int, int](nil); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("err = %v", err)
	}
}

func TestVariantTimeout(t *testing.T) {
	hang := core.NewVariant("hang", func(ctx context.Context, _ int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	s, err := NewSingle(hang, WithVariantTimeout(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Execute(context.Background(), 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("timeout did not bound the execution")
	}
}

func TestParallelEvaluationHangingVariantBoundedByTimeout(t *testing.T) {
	hang := core.NewVariant("hang", func(ctx context.Context, _ int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{constVariant("a", 1), constVariant("b", 1), hang},
		vote.Majority(core.EqualOf[int]()),
		WithVariantTimeout(5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pe.Execute(context.Background(), 0)
	if err != nil || got != 1 {
		t.Errorf("= (%d, %v): majority should mask the hung variant", got, err)
	}
}

func TestParallelSelectionActingComponentHasPriority(t *testing.T) {
	// Both variants produce acceptable results; the acting component
	// (the first configured) must win even if it finishes last.
	acting := core.NewVariant("acting", func(ctx context.Context, _ int) (int, error) {
		select {
		case <-time.After(5 * time.Millisecond):
			return 1, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	})
	spare := constVariant("spare", 2)
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{acting, spare},
		[]core.AcceptanceTest[int, int]{acceptAll, acceptAll},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ps.Execute(context.Background(), 0)
	if err != nil || got != 1 {
		t.Errorf("= (%d, %v), want acting component's result 1", got, err)
	}
	if len(ps.Disabled()) != 0 {
		t.Errorf("nothing should be disabled, got %v", ps.Disabled())
	}
}

func TestParallelSelectionDisablesSlowFailingSpare(t *testing.T) {
	// A failing spare must be disabled even when the acting component
	// succeeds first.
	spareFails := core.NewVariant("spare", func(_ context.Context, _ int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return 0, errors.New("spare failed")
	})
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{constVariant("acting", 1), spareFails},
		[]core.AcceptanceTest[int, int]{acceptAll, acceptAll},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ps.Execute(context.Background(), 0)
	if err != nil || got != 1 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	if d := ps.Disabled(); len(d) != 1 || d[0] != "spare" {
		t.Errorf("disabled = %v, want [spare]", d)
	}
}

func TestPanickingVariantContainedByExecutors(t *testing.T) {
	crashing := core.NewVariant("crashes", func(_ context.Context, _ int) (int, error) {
		panic("boom")
	})
	// Parallel evaluation: the panic becomes a failed result; the healthy
	// majority still wins.
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{constVariant("a", 1), constVariant("b", 1), crashing},
		vote.Majority(core.EqualOf[int]()),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pe.Execute(context.Background(), 0)
	if err != nil || got != 1 {
		t.Errorf("parallel evaluation = (%d, %v)", got, err)
	}
	results := pe.ExecuteAll(context.Background(), 0)
	if !errors.Is(results[2].Err, core.ErrVariantPanicked) {
		t.Errorf("panicking result err = %v", results[2].Err)
	}
	// Sequential alternatives: the panic falls through to the alternate.
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{crashing, constVariant("alt", 7)},
		acceptAll, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err = sa.Execute(context.Background(), 0)
	if err != nil || got != 7 {
		t.Errorf("sequential = (%d, %v)", got, err)
	}
}

func TestWithLoggerEmitsEvents(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{constVariant("a", 1), constVariant("b", 1), errVariant("c")},
		vote.Majority(core.EqualOf[int]()),
		WithLogger(logger),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Execute(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "variant failed") || !strings.Contains(out, "variant=c") {
		t.Errorf("missing variant-failure event:\n%s", out)
	}
	if !strings.Contains(out, "failure masked by redundancy") {
		t.Errorf("missing masked event:\n%s", out)
	}

	buf.Reset()
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{errVariant("p"), errVariant("q")},
		acceptAll, nil,
		WithLogger(logger),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Execute(context.Background(), 0); err == nil {
		t.Fatal("want failure")
	}
	if !strings.Contains(buf.String(), "redundant execution failed") {
		t.Errorf("missing failure event:\n%s", buf.String())
	}

	buf.Reset()
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{errVariant("x"), constVariant("y", 2)},
		[]core.AcceptanceTest[int, int]{acceptAll, acceptAll},
		WithLogger(logger),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Execute(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "failure masked by redundancy") {
		t.Errorf("missing selection masked event:\n%s", buf.String())
	}

	buf.Reset()
	single, err := NewSingle(errVariant("solo"), WithLogger(logger))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Execute(context.Background(), 0); err == nil {
		t.Fatal("want failure")
	}
	if !strings.Contains(buf.String(), "variant=solo") {
		t.Errorf("missing single failure event:\n%s", buf.String())
	}
}

func TestNoLoggerMeansNoEvents(t *testing.T) {
	// Without WithLogger, execution must not panic on nil logger.
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{errVariant("a"), constVariant("b", 1), constVariant("c", 1)},
		vote.Majority(core.EqualOf[int]()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Execute(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

package pattern

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
)

// captureHandler is a slog.Handler that records every record it gets.
type captureHandler struct {
	mu      sync.Mutex
	records []slog.Record
}

var _ slog.Handler = (*captureHandler)(nil)

func (h *captureHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *captureHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = append(h.records, r.Clone())
	return nil
}

func (h *captureHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *captureHandler) WithGroup(string) slog.Handler      { return h }

// attrs flattens a record's attributes into a map.
func attrs(r slog.Record) map[string]string {
	out := make(map[string]string)
	r.Attrs(func(a slog.Attr) bool {
		out[a.Key] = a.Value.String()
		return true
	})
	return out
}

// find returns the first captured record with the given message, and
// whether one exists.
func (h *captureHandler) find(msg string) (slog.Record, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.records {
		if r.Message == msg {
			return r, true
		}
	}
	return slog.Record{}, false
}

func TestWithLoggerMaskedFailure(t *testing.T) {
	h := &captureHandler{}
	seq, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{obsFail("primary"), obsOK("alternate", 5)},
		func(int, int) error { return nil }, nil,
		WithLogger(slog.New(h)))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := seq.Execute(context.Background(), 1); err != nil || v != 5 {
		t.Fatalf("Execute = %d, %v", v, err)
	}

	// The failed variant is logged at debug level with executor, variant
	// and error attributes.
	vr, ok := h.find("variant failed")
	if !ok {
		t.Fatal("no 'variant failed' record")
	}
	if vr.Level != slog.LevelDebug {
		t.Errorf("variant-failure level = %v, want debug", vr.Level)
	}
	va := attrs(vr)
	if va["executor"] != "sequential-alternatives" || va["variant"] != "primary" ||
		va["err"] != "primary failed" {
		t.Errorf("variant-failure attrs = %v", va)
	}

	// The masked outcome is logged at info level naming the executor.
	mr, ok := h.find("failure masked by redundancy")
	if !ok {
		t.Fatal("no masked-failure record")
	}
	if mr.Level != slog.LevelInfo {
		t.Errorf("masked-failure level = %v, want info", mr.Level)
	}
	ma := attrs(mr)
	if ma["executor"] != "sequential-alternatives" {
		t.Errorf("masked-failure attrs = %v", ma)
	}
	if _, logged := h.find("redundant execution failed"); logged {
		t.Error("masked request must not log an executor failure")
	}
}

func TestWithLoggerExecutorFailure(t *testing.T) {
	h := &captureHandler{}
	pe, err := NewParallelEvaluation(
		[]core.Variant[int, int]{obsFail("a"), obsFail("b")},
		core.AdjudicatorFunc[int](func([]core.Result[int]) (int, error) {
			return 0, core.ErrAllVariantsFailed
		}),
		WithLogger(slog.New(h)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Execute(context.Background(), 1); !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("Execute error = %v", err)
	}

	fr, ok := h.find("redundant execution failed")
	if !ok {
		t.Fatal("no executor-failure record")
	}
	if fr.Level != slog.LevelInfo {
		t.Errorf("executor-failure level = %v, want info", fr.Level)
	}
	fa := attrs(fr)
	if fa["executor"] != "parallel-evaluation" {
		t.Errorf("executor-failure attrs = %v", fa)
	}
	if fa["err"] != core.ErrAllVariantsFailed.Error() {
		t.Errorf("executor-failure err attr = %q", fa["err"])
	}
	if _, logged := h.find("failure masked by redundancy"); logged {
		t.Error("failed request must not log a masked outcome")
	}

	// Both failed variants produce debug records.
	h.mu.Lock()
	var variantFailures int
	for _, r := range h.records {
		if r.Message == "variant failed" {
			variantFailures++
		}
	}
	h.mu.Unlock()
	if variantFailures != 2 {
		t.Errorf("variant-failure records = %d, want 2", variantFailures)
	}
}

func TestWithLoggerQuietOnCleanSuccess(t *testing.T) {
	h := &captureHandler{}
	sg, err := NewSingle(obsOK("v", 1), WithLogger(slog.New(h)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	n := len(h.records)
	h.mu.Unlock()
	if n != 0 {
		t.Errorf("clean success logged %d records, want 0", n)
	}
}

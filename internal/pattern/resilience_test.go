package pattern

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/resilience"
)

// snapshotOf returns the collector snapshot of one executor.
func snapshotOf(t *testing.T, c *obs.Collector, executor string) obs.ExecutorSnapshot {
	t.Helper()
	for _, s := range c.Snapshot() {
		if s.Executor == executor {
			return s
		}
	}
	t.Fatalf("no snapshot for executor %q", executor)
	return obs.ExecutorSnapshot{}
}

// TestNoPolicyExecutorsAllocateNothingExtra pins the zero-overhead
// guarantee of the resilience layer: executors with no policies
// configured keep the legacy fast path — one allocation per Execute for
// the sequential executors (the admission fast path, breaker skip, and
// fallback skip must all be free), and exactly the same count as an
// executor carrying explicit zero-value policy options.
func TestNoPolicyExecutorsAllocateNothingExtra(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	ctx := context.Background()

	single, err := NewSingle(benchVariants(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	singleZero, err := NewSingle(benchVariants(1)[0],
		WithDeadline(resilience.DeadlinePolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewSequentialAlternatives(benchVariants(3),
		func(int, int) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}

	base := testing.AllocsPerRun(200, func() { single.Execute(ctx, 1) })
	if base > 1 {
		t.Errorf("Single with no policies: %v allocs/request, want <= 1", base)
	}
	zero := testing.AllocsPerRun(200, func() { singleZero.Execute(ctx, 1) })
	if zero != base {
		t.Errorf("Single with zero-value deadline policy: %v allocs, baseline %v", zero, base)
	}
	saAllocs := testing.AllocsPerRun(200, func() { sa.Execute(ctx, 1) })
	if saAllocs > 1 {
		t.Errorf("SequentialAlternatives with no policies: %v allocs/request, want <= 1", saAllocs)
	}
}

func TestSequentialBreakerStopsHammeringFailingVariant(t *testing.T) {
	var primaryRuns atomic.Int64
	primary := core.NewVariant("primary", func(_ context.Context, _ int) (int, error) {
		primaryRuns.Add(1)
		return 0, errors.New("bohrbug")
	})
	alternate := core.NewVariant("alternate", func(_ context.Context, x int) (int, error) {
		return x, nil
	})
	breakers := resilience.NewBreakers(resilience.BreakerConfig{
		ConsecutiveFailures: 2,
		OpenFor:             time.Hour,
	})
	collector := obs.NewCollector()
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{primary, alternate},
		func(_, _ int) error { return nil }, nil,
		WithObserver(collector), WithBreaker(breakers))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, err := sa.Execute(context.Background(), i)
		if err != nil || v != i {
			t.Fatalf("request %d: (%d, %v), want (%d, nil)", i, v, err, i)
		}
	}
	if got := primaryRuns.Load(); got != 2 {
		t.Errorf("primary executed %d times, want 2 (breaker opens after 2 failures)", got)
	}
	if got := breakers.State("primary"); got != obs.BreakerOpen {
		t.Errorf("primary breaker state = %v, want open", got)
	}
	if got := snapshotOf(t, collector, "sequential-alternatives").BreakerOpens; got != 1 {
		t.Errorf("snapshot BreakerOpens = %d, want 1", got)
	}
}

func TestParallelSelectionBreakerSkipIsNotDisablement(t *testing.T) {
	var v1Runs atomic.Int64
	v1 := core.NewVariant("v1", func(_ context.Context, x int) (int, error) {
		v1Runs.Add(1)
		return x, nil
	})
	v2 := core.NewVariant("v2", func(_ context.Context, x int) (int, error) {
		return x + 1000, nil
	})
	breakers := resilience.NewBreakers(resilience.BreakerConfig{
		ConsecutiveFailures: 1,
		OpenFor:             time.Hour,
	})
	// Trip v1's breaker out of band: the executor must now skip v1 for
	// the request without disabling the component.
	b := breakers.For("v1")
	tok, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	b.Record(tok, errors.New("external failure evidence"))

	accept := func(_, _ int) error { return nil }
	ps, err := NewParallelSelection(
		[]core.Variant[int, int]{v1, v2},
		[]core.AcceptanceTest[int, int]{accept, accept},
		WithBreaker(breakers))
	if err != nil {
		t.Fatal(err)
	}
	v, err := ps.Execute(context.Background(), 1)
	if err != nil || v != 1001 {
		t.Fatalf("Execute = (%d, %v), want (1001, nil) from v2", v, err)
	}
	if got := v1Runs.Load(); got != 0 {
		t.Errorf("v1 executed %d times through an open breaker", got)
	}
	if got := ps.Disabled(); len(got) != 0 {
		t.Errorf("breaker rejection disabled components %v; skips must be per-request", got)
	}
}

func TestSingleRetryPolicyMasksTransientFailure(t *testing.T) {
	var calls atomic.Int64
	flaky := core.NewVariant("flaky", func(_ context.Context, x int) (int, error) {
		if calls.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return x, nil
	})
	collector := obs.NewCollector()
	s, err := NewSingle(flaky,
		WithObserver(collector),
		WithRetryPolicy(resilience.RetryPolicy{MaxAttempts: 3}))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Execute(context.Background(), 7)
	if err != nil || v != 7 {
		t.Fatalf("Execute = (%d, %v), want (7, nil)", v, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("variant ran %d times, want 3", got)
	}
	snap := snapshotOf(t, collector, "single")
	if snap.FailuresMasked != 1 || snap.Retries != 2 {
		t.Errorf("snapshot masked=%d retries=%d, want masked=1 retries=2",
			snap.FailuresMasked, snap.Retries)
	}
}

func TestSingleRetryBudgetExhaustion(t *testing.T) {
	var calls atomic.Int64
	failing := core.NewVariant("failing", func(_ context.Context, _ int) (int, error) {
		calls.Add(1)
		return 0, errors.New("persistent")
	})
	s, err := NewSingle(failing, WithRetryPolicy(resilience.RetryPolicy{
		MaxAttempts: 5,
		Budget:      resilience.NewRetryBudget(1, 0.001),
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Execute(context.Background(), 1)
	if !errors.Is(err, resilience.ErrRetryBudgetExhausted) {
		t.Fatalf("Execute = %v, want ErrRetryBudgetExhausted", err)
	}
	// The budget held one token: the primary attempt plus one retry.
	if got := calls.Load(); got != 2 {
		t.Errorf("variant ran %d times, want 2", got)
	}
}

func TestSequentialRetryBudgetStopsAlternates(t *testing.T) {
	mk := func(name string, runs *atomic.Int64) core.Variant[int, int] {
		return core.NewVariant(name, func(_ context.Context, _ int) (int, error) {
			runs.Add(1)
			return 0, errors.New(name + " failed")
		})
	}
	var r1, r2, r3 atomic.Int64
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{mk("a1", &r1), mk("a2", &r2), mk("a3", &r3)},
		func(_, _ int) error { return nil }, nil,
		WithRetryPolicy(resilience.RetryPolicy{
			Budget: resilience.NewRetryBudget(1, 0.001),
		}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sa.Execute(context.Background(), 1)
	if !errors.Is(err, resilience.ErrRetryBudgetExhausted) {
		t.Fatalf("Execute = %v, want ErrRetryBudgetExhausted", err)
	}
	if !errors.Is(err, core.ErrAllVariantsFailed) {
		t.Fatalf("Execute = %v, want ErrAllVariantsFailed preserved", err)
	}
	if r1.Load() != 1 || r2.Load() != 1 || r3.Load() != 0 {
		t.Errorf("runs = %d/%d/%d, want 1/1/0 (third alternate denied by budget)",
			r1.Load(), r2.Load(), r3.Load())
	}
}

func TestSequentialAttemptCapLimitsAlternates(t *testing.T) {
	var r1, r2 atomic.Int64
	v1 := core.NewVariant("a1", func(_ context.Context, _ int) (int, error) {
		r1.Add(1)
		return 0, errors.New("a1 failed")
	})
	v2 := core.NewVariant("a2", func(_ context.Context, x int) (int, error) {
		r2.Add(1)
		return x, nil
	})
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{v1, v2},
		func(_, _ int) error { return nil }, nil,
		WithRetryPolicy(resilience.RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sa.Execute(context.Background(), 1)
	if err == nil {
		t.Fatal("Execute succeeded; attempt cap should have stopped before a2")
	}
	if r1.Load() != 1 || r2.Load() != 0 {
		t.Errorf("runs = %d/%d, want 1/0", r1.Load(), r2.Load())
	}
}

func TestFallbackLadderServesLastGood(t *testing.T) {
	var failNow atomic.Bool
	variant := core.NewVariant("v", func(_ context.Context, x int) (int, error) {
		if failNow.Load() {
			return 0, errors.New("down")
		}
		return x * 10, nil
	})
	ladder := resilience.NewLadder[int, int]().CacheLastGood()
	collector := obs.NewCollector()
	sa, err := NewSequentialAlternatives(
		[]core.Variant[int, int]{variant},
		func(_, _ int) error { return nil }, nil,
		WithObserver(collector), WithFallback(ladder))
	if err != nil {
		t.Fatal(err)
	}

	// Before any success the ladder is empty: failures surface as
	// ErrDegraded (a ladder was configured but could not serve).
	failNow.Store(true)
	if _, err := sa.Execute(context.Background(), 1); !errors.Is(err, resilience.ErrDegraded) {
		t.Fatalf("Execute with empty ladder = %v, want ErrDegraded", err)
	}

	failNow.Store(false)
	if v, err := sa.Execute(context.Background(), 4); err != nil || v != 40 {
		t.Fatalf("Execute = (%d, %v), want (40, nil)", v, err)
	}

	failNow.Store(true)
	v, err := sa.Execute(context.Background(), 5)
	if err != nil || v != 40 {
		t.Fatalf("Execute after failure = (%d, %v), want last-good (40, nil)", v, err)
	}
	snap := snapshotOf(t, collector, "sequential-alternatives")
	if snap.DegradedServes != 1 {
		t.Errorf("snapshot DegradedServes = %d, want 1", snap.DegradedServes)
	}
	// A ladder serve is an accepted-but-masked request.
	if snap.FailuresMasked != 1 {
		t.Errorf("snapshot FailuresMasked = %d, want 1", snap.FailuresMasked)
	}
}

func TestBulkheadShedsFastWithEvent(t *testing.T) {
	release := make(chan struct{})
	slow := core.NewVariant("slow", func(ctx context.Context, x int) (int, error) {
		select {
		case <-release:
			return x, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	})
	bulkhead := resilience.NewBulkhead(resilience.BulkheadConfig{MaxConcurrent: 1, MaxWaiting: 0})
	collector := obs.NewCollector()
	s, err := NewSingle(slow,
		WithObserver(collector),
		WithBulkhead(bulkhead),
		WithDeadline(resilience.DeadlinePolicy{Request: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() {
		_, err := s.Execute(context.Background(), 1)
		first <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for bulkhead.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the bulkhead")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	_, err = s.Execute(context.Background(), 2)
	elapsed := time.Since(start)
	if !errors.Is(err, resilience.ErrShedded) {
		t.Fatalf("overload Execute = %v, want ErrShedded", err)
	}
	// Shedding is the fast path: far below the 1s request deadline.
	if elapsed > 100*time.Millisecond {
		t.Errorf("shed took %v, want fast rejection (deadline/10 = 100ms)", elapsed)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first request = %v, want nil", err)
	}
	if got := snapshotOf(t, collector, "single").Shed; got != 1 {
		t.Errorf("snapshot Shed = %d, want 1", got)
	}
}

func TestDeadlinePolicyUnwedgesHangingVariant(t *testing.T) {
	hang := core.NewVariant("hang", func(ctx context.Context, _ int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	s, err := NewSingle(hang,
		WithDeadline(resilience.DeadlinePolicy{Variant: 20 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// No caller deadline: the policy's variant deadline must still
		// release the hang.
		_, err := s.Execute(context.Background(), 1)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Execute = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hanging variant wedged the executor despite the deadline policy")
	}
}

func TestExplicitVariantTimeoutWinsOverPolicy(t *testing.T) {
	cfg := newConfig([]Option{
		WithVariantTimeout(5 * time.Millisecond),
		WithDeadline(resilience.DeadlinePolicy{Variant: time.Hour}),
	})
	if got := cfg.deadline.VariantDeadline(cfg.variantTimeout); got != 5*time.Millisecond {
		t.Fatalf("effective variant deadline = %v, want the explicit 5ms", got)
	}
}

// Package composite implements fault-tolerant process composition in the
// style of the paper's web-service sources: Dobson's WS-BPEL realization
// of the classic fault-tolerance patterns (retry, sequential alternates à
// la recovery blocks, parallel voting à la N-version programming, and
// hot-spare self-checking invocations), plus BPEL-style compensation
// handlers that undo the completed steps of a process when a later step
// fails irrecoverably.
//
// A Process is an ordered pipeline of Steps over a flowing value. Each
// step's invocation strategy is one of the framework's pattern executors,
// so the package is a thin composition layer demonstrating how the
// Figure 1 patterns embed in a service orchestration.
//
// The composition layer participates in the observation layer: the
// strategy helpers accept pattern options (so pattern.WithObserver and
// pattern.WithMetrics flow through to the underlying executors), and a
// Process itself can be observed with Observe — each step becomes a
// variant span and compensation handlers are reported as rollbacks.
package composite

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/resilience"
	"github.com/softwarefaults/redundancy/internal/vote"
)

// Process errors.
var (
	// ErrProcessFailed reports an unrecoverable step failure (after
	// compensation has run).
	ErrProcessFailed = errors.New("composite: process failed")
	// ErrCompensationFailed reports that undoing completed steps failed;
	// the process state may be inconsistent.
	ErrCompensationFailed = errors.New("composite: compensation failed")
)

// Step is one unit of a process: an invocation strategy plus an optional
// compensation handler that undoes the step's effect. T is the value type
// flowing through the pipeline.
type Step[T any] struct {
	// Name identifies the step.
	Name string
	// Invoke executes the step's logic (built by the strategy helpers).
	Invoke core.Executor[T, T]
	// Compensate undoes the step after a later step fails; nil means the
	// step needs no compensation.
	Compensate func(ctx context.Context, input T) error
}

// retryExecutorName identifies the retry strategy in observation events.
const retryExecutorName = "retry"

// Retry wraps a single endpoint with up to retries re-invocations (the
// BPEL retry command). Pattern options configure observation: an observer
// attached via pattern.WithObserver (or counters via pattern.WithMetrics)
// sees each attempt as a variant span, re-invocations as retry events,
// and the final adjudication — a request is accepted when some attempt
// succeeded, with the failure detected (masked) when earlier attempts
// failed.
//
// Resilience options flow through as well: pattern.WithRetryPolicy paces
// the re-invocations (exponential backoff with seeded jitter) and charges
// a shared retry budget, pattern.WithBreaker brackets every attempt with
// the endpoint's circuit breaker, pattern.WithBulkhead bounds concurrent
// invocations, and pattern.WithDeadline bounds the request and each
// attempt. With none of these configured the loop is exactly the legacy
// one: immediate re-invocation, zero backoff, no admission control.
func Retry[T any](v core.Variant[T, T], retries int, opts ...pattern.Option) (core.Executor[T, T], error) {
	if v == nil {
		return nil, core.ErrNoVariants
	}
	if retries < 0 {
		return nil, errors.New("composite: negative retries")
	}
	pol := pattern.PoliciesOf(opts...)
	o := pol.Observer
	traced := obs.WantsTrace(o)
	var brk *resilience.Breaker
	if pol.Breakers != nil {
		pol.Breakers.Bind(retryExecutorName, o)
		brk = pol.Breakers.For(v.Name())
	}
	return core.ExecutorFunc[T, T](func(ctx context.Context, in T) (T, error) {
		var (
			zero    T
			lastErr error
			req     uint64
			start   time.Time
		)
		if o != nil {
			req = obs.NextRequestID()
			start = time.Now()
			o.RequestStart(retryExecutorName, req)
			if traced {
				var tc obs.TraceContext
				ctx, tc = obs.StartTrace(ctx)
				obs.EmitRequestTraced(o, retryExecutorName, req, tc)
			}
		}
		finish := func(accepted, detected bool) {
			if o == nil {
				return
			}
			o.Adjudicated(retryExecutorName, req, accepted, detected)
			outcome := obs.OutcomeFailed
			switch {
			case accepted && detected:
				outcome = obs.OutcomeMasked
			case accepted:
				outcome = obs.OutcomeSuccess
			}
			o.RequestEnd(retryExecutorName, req, time.Since(start), outcome)
		}
		if pol.Deadline.Request > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, pol.Deadline.Request)
			defer cancel()
		}
		if pol.Bulkhead != nil {
			if err := pol.Bulkhead.Acquire(ctx); err != nil {
				if o != nil && req != 0 {
					obs.EmitRequestShed(o, retryExecutorName, req)
				}
				finish(false, false)
				return zero, err
			}
			defer pol.Bulkhead.Release()
		}
		if pol.Retrier != nil {
			if b := pol.Retrier.Budget(); b != nil {
				b.Deposit()
			}
		}
		for attempt := 0; attempt <= retries; attempt++ {
			if err := ctx.Err(); err != nil {
				finish(false, attempt > 0)
				return zero, err
			}
			if attempt > 0 && pol.Retrier != nil {
				if b := pol.Retrier.Budget(); b != nil && !b.Withdraw() {
					if lastErr != nil {
						lastErr = fmt.Errorf("%w: %w", resilience.ErrRetryBudgetExhausted, lastErr)
					} else {
						lastErr = resilience.ErrRetryBudgetExhausted
					}
					break
				}
				if err := pol.Retrier.Pause(ctx, attempt+1); err != nil {
					finish(false, true)
					return zero, err
				}
			}
			if o != nil && attempt > 0 {
				o.RetryAttempt(retryExecutorName, v.Name(), req, attempt+1)
			}
			var tok resilience.Token
			if brk != nil {
				var berr error
				if tok, berr = brk.Allow(); berr != nil {
					// Rejected fast without executing (and without a
					// variant span): the open breaker is the attempt's
					// outcome.
					lastErr = berr
					continue
				}
			}
			var attemptStart time.Time
			if o != nil {
				o.VariantStart(retryExecutorName, v.Name(), req)
				attemptStart = time.Now()
			}
			actx := ctx
			var acancel context.CancelFunc
			if d := pol.Deadline.Variant; d > 0 {
				actx, acancel = context.WithTimeout(ctx, d)
			}
			out, err := core.Guard(v).Execute(actx, in)
			if acancel != nil {
				acancel()
			}
			if brk != nil {
				brk.Record(tok, err)
			}
			if o != nil {
				o.VariantEnd(retryExecutorName, v.Name(), req, time.Since(attemptStart), err)
			}
			if err == nil {
				finish(true, attempt > 0)
				return out, nil
			}
			lastErr = err
		}
		finish(false, true)
		return zero, fmt.Errorf("retries exhausted: %w", lastErr)
	}), nil
}

// Alternates builds a sequential-alternates invocation (statically
// provided alternate services, as in Dobson's recovery-block flavor).
// Pattern options (observer, metrics, per-variant timeout) are forwarded
// to the underlying Figure 1c executor. Passing pattern.WithRanker (for
// example a health.Engine diagnosing the same observer stream) makes the
// invocation health-ranked: every request tries the currently healthiest
// endpoint first instead of the configured order. Resilience options
// (pattern.WithBreaker, WithRetryPolicy, WithBulkhead, WithDeadline,
// WithFallback) flow through to the executor, so alternates honor
// breakers, retry budgets and backoff between endpoints.
func Alternates[T any](test core.AcceptanceTest[T, T], endpoints []core.Variant[T, T], opts ...pattern.Option) (core.Executor[T, T], error) {
	return pattern.NewSequentialAlternatives(endpoints, test, nil, opts...)
}

// Voting builds a parallel voting invocation over independently operated
// endpoints (Dobson's N-version flavor; WS-FTM's consensus voting).
// Pattern options are forwarded to the underlying Figure 1a executor.
func Voting[T any](eq core.Equal[T], endpoints []core.Variant[T, T], opts ...pattern.Option) (core.Executor[T, T], error) {
	return pattern.NewParallelEvaluation(endpoints, vote.Majority(eq), opts...)
}

// HotSpares builds a parallel-selection invocation: the acting endpoint's
// validated result is preferred, spares run in parallel (Dobson's
// self-checking flavor). Failed endpoints are re-enabled per invocation
// because service failures are treated as transient here. Pattern options
// are forwarded to the underlying Figure 1b executor. Passing
// pattern.WithRanker makes the acting/spare priority health-ranked: the
// currently healthiest endpoint's validated result is preferred.
// Resilience options flow through: with pattern.WithBreaker a spare whose
// breaker is open sits the request out (skipped, not disabled) instead of
// hammering a known-bad endpoint.
func HotSpares[T any](test core.AcceptanceTest[T, T], endpoints []core.Variant[T, T], opts ...pattern.Option) (core.Executor[T, T], error) {
	tests := make([]core.AcceptanceTest[T, T], len(endpoints))
	for i := range tests {
		tests[i] = test
	}
	ps, err := pattern.NewParallelSelection(endpoints, tests, opts...)
	if err != nil {
		return nil, err
	}
	return core.ExecutorFunc[T, T](func(ctx context.Context, in T) (T, error) {
		defer ps.Reset()
		return ps.Execute(ctx, in)
	}), nil
}

// Process is an ordered, compensable pipeline over values of type T.
type Process[T any] struct {
	name     string
	execName string
	steps    []Step[T]
	observer obs.Observer

	// CompensationsRun counts compensation handlers executed.
	CompensationsRun int
}

// NewProcess builds a process from steps.
func NewProcess[T any](name string, steps ...Step[T]) (*Process[T], error) {
	if len(steps) == 0 {
		return nil, errors.New("composite: no steps")
	}
	for i, s := range steps {
		if s.Invoke == nil {
			return nil, fmt.Errorf("composite: step %d (%s) has nil Invoke", i, s.Name)
		}
	}
	ss := make([]Step[T], len(steps))
	copy(ss, steps)
	return &Process[T]{name: name, execName: "process:" + name, steps: ss}, nil
}

// Name returns the process name.
func (p *Process[T]) Name() string { return p.name }

// Observe attaches an observer to the process itself (executor name
// "process:<name>"): each step is reported as a variant span, each
// compensation handler as a rollback, and the process end as the request
// outcome. Observers attached to the steps' own executors (via the
// strategy helpers) are independent and compose freely. Observe returns
// the process for chaining; repeated calls combine observers.
func (p *Process[T]) Observe(o obs.Observer) *Process[T] {
	p.observer = obs.Combine(p.observer, o)
	return p
}

// Execute runs the pipeline. On an unrecoverable step failure, the
// compensation handlers of all previously completed steps run in reverse
// order (the BPEL compensation semantics), and the returned error wraps
// ErrProcessFailed — or ErrCompensationFailed if undo itself failed.
func (p *Process[T]) Execute(ctx context.Context, input T) (T, error) {
	var zero T
	o := p.observer
	var (
		req   uint64
		start time.Time
	)
	if o != nil {
		req = obs.NextRequestID()
		start = time.Now()
		o.RequestStart(p.execName, req)
		if obs.WantsTrace(o) {
			var tc obs.TraceContext
			ctx, tc = obs.StartTrace(ctx)
			obs.EmitRequestTraced(o, p.execName, req, tc)
		}
	}
	finish := func(accepted bool, outcome obs.Outcome) {
		if o == nil {
			return
		}
		o.Adjudicated(p.execName, req, accepted, outcome != obs.OutcomeSuccess)
		o.RequestEnd(p.execName, req, time.Since(start), outcome)
	}

	value := input
	inputs := make([]T, 0, len(p.steps))
	for i, s := range p.steps {
		inputs = append(inputs, value)
		var stepStart time.Time
		if o != nil {
			o.VariantStart(p.execName, s.Name, req)
			stepStart = time.Now()
		}
		out, err := s.Invoke.Execute(ctx, value)
		if o != nil {
			o.VariantEnd(p.execName, s.Name, req, time.Since(stepStart), err)
		}
		if err == nil {
			value = out
			continue
		}
		// Compensate completed steps in reverse.
		for j := i - 1; j >= 0; j-- {
			comp := p.steps[j].Compensate
			if comp == nil {
				continue
			}
			p.CompensationsRun++
			if o != nil {
				o.Rollback(p.execName, req)
			}
			if cerr := comp(ctx, inputs[j]); cerr != nil {
				finish(false, obs.OutcomeFailed)
				return zero, fmt.Errorf("step %s failed (%v); undoing %s: %w: %w",
					s.Name, err, p.steps[j].Name, ErrCompensationFailed, cerr)
			}
		}
		finish(false, obs.OutcomeFailed)
		return zero, fmt.Errorf("step %s: %w: %w", s.Name, ErrProcessFailed, err)
	}
	finish(true, obs.OutcomeSuccess)
	return value, nil
}

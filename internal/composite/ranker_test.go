package composite

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs/health"
	"github.com/softwarefaults/redundancy/internal/pattern"
)

// TestAlternatesHealthRanked closes the observe→diagnose→act loop end to
// end: a flaky primary endpoint degrades its health score through the
// engine, after which the health-ranked Alternates invocation stops
// trying it first.
func TestAlternatesHealthRanked(t *testing.T) {
	engine := health.New(health.Config{Alpha: 0.5})

	var mu sync.Mutex
	var order []string
	record := func(name string, fail *bool) core.Variant[string, string] {
		return core.NewVariant(name, func(_ context.Context, s string) (string, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			if fail != nil && *fail {
				return "", errors.New(name + " down")
			}
			return s + ":" + name, nil
		})
	}

	primaryDown := true
	endpoints := []core.Variant[string, string]{
		record("primary", &primaryDown),
		record("backup", nil),
	}
	accept := func(_ string, _ string) error { return nil }
	exec, err := Alternates(accept, endpoints,
		pattern.WithObserver(engine), pattern.WithRanker(engine))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	// While both variants score 1 the configured order holds: the flaky
	// primary is tried (and fails over to backup) on every request,
	// degrading its score.
	for i := 0; i < 6; i++ {
		if got, err := exec.Execute(ctx, "req"); err != nil || got != "req:backup" {
			t.Fatalf("execute %d = (%q, %v)", i, got, err)
		}
	}
	if s := engine.VariantScore("sequential-alternatives", "primary"); s > 0.2 {
		t.Fatalf("flaky primary score = %g, want < 0.2", s)
	}

	// The diagnosis now ranks backup first: the primary is no longer
	// invoked at all.
	mu.Lock()
	order = nil
	mu.Unlock()
	if got, err := exec.Execute(ctx, "req"); err != nil || got != "req:backup" {
		t.Fatalf("ranked execute = (%q, %v)", got, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 1 || order[0] != "backup" {
		t.Errorf("ranked execution order = %v, want [backup]", order)
	}
}

// TestHotSparesHealthRanked checks that a health ranker reorders the
// acting/spare priority of the parallel-selection invocation.
func TestHotSparesHealthRanked(t *testing.T) {
	engine := health.New(health.Config{Alpha: 0.5})
	mk := func(name string) core.Variant[string, string] {
		return core.NewVariant(name, func(_ context.Context, s string) (string, error) {
			return s + ":" + name, nil
		})
	}
	endpoints := []core.Variant[string, string]{mk("acting"), mk("spare")}
	accept := func(_ string, _ string) error { return nil }
	exec, err := HotSpares(accept, endpoints,
		pattern.WithObserver(engine), pattern.WithRanker(engine))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if got, err := exec.Execute(ctx, "r"); err != nil || got != "r:acting" {
		t.Fatalf("initial execute = (%q, %v), want acting's result", got, err)
	}
	// Degrade the acting endpoint's score out of band (as if a run of
	// adjudication losses had been observed); the spare takes priority.
	for i := 0; i < 8; i++ {
		engine.ComponentDisabled("parallel-selection", "acting", uint64(i+1))
	}
	if got, err := exec.Execute(ctx, "r"); err != nil || got != "r:spare" {
		t.Errorf("ranked execute = (%q, %v), want spare's result", got, err)
	}
}

package composite

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/resilience"
)

func fnCtx(name string, f func(ctx context.Context, x int) (int, error)) core.Variant[int, int] {
	return core.NewVariant(name, f)
}

func TestRetryPolicyLegacyParityErrorText(t *testing.T) {
	boom := errors.New("boom")
	failing := fn("failing", func(int) (int, error) { return 0, boom })
	// The zero-value policy must not change the legacy wrapper's error
	// shape or attempt count.
	var legacyErr, policyErr error
	legacy, err := Retry(failing, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, legacyErr = legacy.Execute(context.Background(), 1)
	withPolicy, err := Retry(failing, 2, pattern.WithRetryPolicy(resilience.RetryPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	_, policyErr = withPolicy.Execute(context.Background(), 1)
	if legacyErr == nil || policyErr == nil {
		t.Fatal("retries against a failing endpoint succeeded")
	}
	if legacyErr.Error() != policyErr.Error() {
		t.Errorf("error text diverged:\nlegacy: %s\npolicy: %s", legacyErr, policyErr)
	}
	if !errors.Is(policyErr, boom) {
		t.Errorf("cause not preserved: %v", policyErr)
	}
}

func TestRetryBudgetBoundsReinvocations(t *testing.T) {
	calls := 0
	failing := fn("failing", func(int) (int, error) {
		calls++
		return 0, errors.New("persistent")
	})
	exec, err := Retry(failing, 10, pattern.WithRetryPolicy(resilience.RetryPolicy{
		Budget: resilience.NewRetryBudget(2, 0.001),
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, execErr := exec.Execute(context.Background(), 1)
	if !errors.Is(execErr, resilience.ErrRetryBudgetExhausted) {
		t.Fatalf("Execute = %v, want ErrRetryBudgetExhausted", execErr)
	}
	// Two budget tokens: the first attempt plus two retries.
	if calls != 3 {
		t.Errorf("endpoint invoked %d times, want 3", calls)
	}
}

func TestRetryBreakerShortCircuitsAttempts(t *testing.T) {
	calls := 0
	failing := fn("endpoint", func(int) (int, error) {
		calls++
		return 0, errors.New("down")
	})
	breakers := resilience.NewBreakers(resilience.BreakerConfig{
		ConsecutiveFailures: 2,
		OpenFor:             time.Hour,
	})
	exec, err := Retry(failing, 9, pattern.WithBreaker(breakers))
	if err != nil {
		t.Fatal(err)
	}
	_, execErr := exec.Execute(context.Background(), 1)
	if !errors.Is(execErr, resilience.ErrBreakerOpen) {
		t.Fatalf("Execute = %v, want trailing ErrBreakerOpen", execErr)
	}
	// The breaker opened after 2 failures; the remaining 8 attempts were
	// rejected without invoking the endpoint.
	if calls != 2 {
		t.Errorf("endpoint invoked %d times, want 2", calls)
	}
	if got := breakers.State("endpoint"); got != obs.BreakerOpen {
		t.Errorf("breaker state = %v, want open", got)
	}
}

func TestRetryDeadlinePolicyBoundsAttempt(t *testing.T) {
	hang := fnCtx("hang", func(ctx context.Context, _ int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	exec, err := Retry(hang, 0, pattern.WithDeadline(resilience.DeadlinePolicy{
		Variant: 20 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := exec.Execute(context.Background(), 1)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Execute = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hanging endpoint wedged Retry despite the deadline policy")
	}
}

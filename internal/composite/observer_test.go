package composite

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/pattern"
)

// recObserver captures observation events for assertions.
type recObserver struct {
	mu       sync.Mutex
	execs    []string
	starts   int
	ends     int
	outcomes []obs.Outcome
	variants []string
	errs     int
	adjs     []struct{ accepted, detected bool }
	retries  []int
	rolls    int
}

func (r *recObserver) RequestStart(executor string, _ uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts++
	r.execs = append(r.execs, executor)
}

func (r *recObserver) RequestEnd(_ string, _ uint64, _ time.Duration, o obs.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ends++
	r.outcomes = append(r.outcomes, o)
}

func (r *recObserver) VariantStart(string, string, uint64) {}

func (r *recObserver) VariantEnd(_, variant string, _ uint64, _ time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.variants = append(r.variants, variant)
	if err != nil {
		r.errs++
	}
}

func (r *recObserver) Adjudicated(_ string, _ uint64, accepted, detected bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.adjs = append(r.adjs, struct{ accepted, detected bool }{accepted, detected})
}

func (r *recObserver) ComponentDisabled(string, string, uint64) {}

func (r *recObserver) RetryAttempt(_, _ string, _ uint64, attempt int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retries = append(r.retries, attempt)
}

func (r *recObserver) Rollback(string, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rolls++
}

func TestRetryObserverMaskedSuccess(t *testing.T) {
	rec := &recObserver{}
	calls := 0
	flaky := fn("flaky", func(x int) (int, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("transient")
		}
		return x, nil
	})
	exec, err := Retry(flaky, 3, pattern.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := exec.Execute(context.Background(), 5); err != nil || got != 5 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	if rec.starts != 1 || rec.ends != 1 || rec.execs[0] != "retry" {
		t.Errorf("spans = %d/%d on %v", rec.starts, rec.ends, rec.execs)
	}
	if len(rec.variants) != 2 || rec.errs != 1 {
		t.Errorf("variant events = %v, errs = %d", rec.variants, rec.errs)
	}
	if len(rec.retries) != 1 || rec.retries[0] != 2 {
		t.Errorf("retries = %v, want [2]", rec.retries)
	}
	if len(rec.adjs) != 1 || !rec.adjs[0].accepted || !rec.adjs[0].detected {
		t.Errorf("adjudication = %+v", rec.adjs)
	}
	if rec.outcomes[0] != obs.OutcomeMasked {
		t.Errorf("outcome = %v, want masked", rec.outcomes[0])
	}
}

func TestRetryObserverExhaustion(t *testing.T) {
	rec := &recObserver{}
	dead := fn("dead", func(int) (int, error) { return 0, errors.New("down") })
	exec, err := Retry(dead, 1, pattern.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Execute(context.Background(), 1); err == nil {
		t.Fatal("want error")
	}
	if len(rec.variants) != 2 || rec.errs != 2 {
		t.Errorf("variant events = %v, errs = %d", rec.variants, rec.errs)
	}
	if len(rec.adjs) != 1 || rec.adjs[0].accepted || !rec.adjs[0].detected {
		t.Errorf("adjudication = %+v", rec.adjs)
	}
	if rec.outcomes[0] != obs.OutcomeFailed {
		t.Errorf("outcome = %v, want failed", rec.outcomes[0])
	}
}

func TestRetryUnobservedFastPath(t *testing.T) {
	// No options: the executor must work exactly as before.
	exec, err := Retry(add(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := exec.Execute(context.Background(), 1); err != nil || got != 2 {
		t.Errorf("= (%d, %v)", got, err)
	}
}

func TestAlternatesForwardsObserver(t *testing.T) {
	rec := &recObserver{}
	alt, err := Alternates(acceptAll, []core.Variant[int, int]{
		fn("down", func(int) (int, error) { return 0, errors.New("down") }),
		add(3)}, pattern.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alt.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if rec.starts != 1 || rec.execs[0] != "sequential-alternatives" {
		t.Errorf("executor spans = %v", rec.execs)
	}
	if rec.outcomes[0] != obs.OutcomeMasked {
		t.Errorf("outcome = %v, want masked", rec.outcomes[0])
	}
}

func TestVotingAndHotSparesForwardObserver(t *testing.T) {
	c := obs.NewCollector()
	voting, err := Voting(core.EqualOf[int](), []core.Variant[int, int]{add(1), add(1), add(1)},
		pattern.WithObserver(c))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := voting.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	spares, err := HotSpares(acceptAll, []core.Variant[int, int]{add(7)}, pattern.WithObserver(c))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spares.Execute(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot executors = %+v", snap)
	}
	if snap[0].Executor != "parallel-evaluation" || snap[0].Requests != 1 {
		t.Errorf("voting stats = %+v", snap[0])
	}
	if snap[1].Executor != "parallel-selection" || snap[1].Requests != 1 {
		t.Errorf("hot-spares stats = %+v", snap[1])
	}
}

func TestProcessObserveHappyPath(t *testing.T) {
	rec := &recObserver{}
	r1, _ := Retry(add(1), 0)
	r2, _ := Retry(add(2), 0)
	p, err := NewProcess("order",
		Step[int]{Name: "reserve", Invoke: r1},
		Step[int]{Name: "charge", Invoke: r2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Observe(rec); got != p {
		t.Error("Observe should return the process for chaining")
	}
	if got, err := p.Execute(context.Background(), 0); err != nil || got != 3 {
		t.Fatalf("= (%d, %v)", got, err)
	}
	if rec.starts != 1 || rec.execs[0] != "process:order" {
		t.Errorf("spans = %v", rec.execs)
	}
	if len(rec.variants) != 2 || rec.variants[0] != "reserve" || rec.variants[1] != "charge" {
		t.Errorf("step spans = %v", rec.variants)
	}
	if len(rec.adjs) != 1 || !rec.adjs[0].accepted || rec.adjs[0].detected {
		t.Errorf("adjudication = %+v", rec.adjs)
	}
	if rec.outcomes[0] != obs.OutcomeSuccess {
		t.Errorf("outcome = %v", rec.outcomes[0])
	}
}

func TestProcessObserveCompensationRollbacks(t *testing.T) {
	rec := &recObserver{}
	ok, _ := Retry(add(1), 0)
	dead, _ := Retry(fn("dead", func(int) (int, error) { return 0, errors.New("x") }), 0)
	p, err := NewProcess("saga",
		Step[int]{Name: "s1", Invoke: ok, Compensate: func(context.Context, int) error { return nil }},
		Step[int]{Name: "s2", Invoke: ok, Compensate: func(context.Context, int) error { return nil }},
		Step[int]{Name: "s3", Invoke: dead},
	)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(rec)
	if _, err := p.Execute(context.Background(), 0); !errors.Is(err, ErrProcessFailed) {
		t.Fatalf("err = %v", err)
	}
	if rec.rolls != 2 || p.CompensationsRun != 2 {
		t.Errorf("rollback events = %d, compensations = %d", rec.rolls, p.CompensationsRun)
	}
	if rec.errs != 1 || len(rec.variants) != 3 {
		t.Errorf("step spans = %v, errs = %d", rec.variants, rec.errs)
	}
	if len(rec.adjs) != 1 || rec.adjs[0].accepted || !rec.adjs[0].detected {
		t.Errorf("adjudication = %+v", rec.adjs)
	}
	if rec.outcomes[0] != obs.OutcomeFailed {
		t.Errorf("outcome = %v", rec.outcomes[0])
	}
}

func TestProcessObserveCombines(t *testing.T) {
	a, b := &recObserver{}, &recObserver{}
	ok, _ := Retry(add(1), 0)
	p, err := NewProcess("p", Step[int]{Name: "s", Invoke: ok})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(a).Observe(b)
	if _, err := p.Execute(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if a.starts != 1 || b.starts != 1 {
		t.Errorf("combined observers saw %d/%d requests", a.starts, b.starts)
	}
}

package composite

import (
	"context"
	"errors"
	"testing"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

func fn(name string, f func(int) (int, error)) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, x int) (int, error) {
		return f(x)
	})
}

func add(n int) core.Variant[int, int] {
	return fn("add", func(x int) (int, error) { return x + n, nil })
}

func acceptAll(_ int, _ int) error { return nil }

func TestRetrySucceedsEventually(t *testing.T) {
	rng := xrand.New(1)
	flaky := fn("flaky", func(x int) (int, error) {
		if rng.Bool(0.7) {
			return 0, errors.New("transient")
		}
		return x * 2, nil
	})
	exec, err := Retry(flaky, 20)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Execute(context.Background(), 5)
	if err != nil || got != 10 {
		t.Errorf("= (%d, %v)", got, err)
	}
}

func TestRetryExhaustion(t *testing.T) {
	always := fn("dead", func(int) (int, error) { return 0, errors.New("down") })
	exec, err := Retry(always, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Execute(context.Background(), 1); err == nil {
		t.Error("want error")
	}
}

func TestRetryContainsPanics(t *testing.T) {
	crashing := fn("crash", func(int) (int, error) { panic("boom") })
	exec, err := Retry(crashing, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = exec.Execute(context.Background(), 1)
	if !errors.Is(err, core.ErrVariantPanicked) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryValidation(t *testing.T) {
	if _, err := Retry[int](nil, 1); !errors.Is(err, core.ErrNoVariants) {
		t.Errorf("err = %v", err)
	}
	if _, err := Retry(add(1), -1); err == nil {
		t.Error("negative retries accepted")
	}
}

func TestRetryContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	failing := fn("fail", func(int) (int, error) {
		calls++
		cancel()
		return 0, errors.New("x")
	})
	exec, err := Retry(failing, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Execute(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d after cancellation", calls)
	}
}

func TestAlternatesAndVotingAndHotSpares(t *testing.T) {
	ctx := context.Background()

	alt, err := Alternates(acceptAll, []core.Variant[int, int]{
		fn("down", func(int) (int, error) { return 0, errors.New("down") }),
		add(3)})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := alt.Execute(ctx, 1); err != nil || got != 4 {
		t.Errorf("alternates = (%d, %v)", got, err)
	}

	voting, err := Voting(core.EqualOf[int](), []core.Variant[int, int]{
		add(1), add(1),
		fn("wrong", func(x int) (int, error) { return x + 99, nil })})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := voting.Execute(ctx, 1); err != nil || got != 2 {
		t.Errorf("voting = (%d, %v)", got, err)
	}

	spares, err := HotSpares(acceptAll, []core.Variant[int, int]{
		fn("acting-down", func(int) (int, error) { return 0, errors.New("down") }),
		add(7)})
	if err != nil {
		t.Fatal(err)
	}
	// Hot spares re-enable per invocation: both calls succeed via the spare.
	for i := 0; i < 2; i++ {
		if got, err := spares.Execute(ctx, 1); err != nil || got != 8 {
			t.Errorf("hot spares call %d = (%d, %v)", i, got, err)
		}
	}
}

func TestProcessHappyPath(t *testing.T) {
	step := func(name string, exec core.Executor[int, int]) Step[int] {
		return Step[int]{Name: name, Invoke: exec}
	}
	retry, err := Retry(add(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	voting, err := Voting(core.EqualOf[int](), []core.Variant[int, int]{add(10), add(10), add(10)})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess("order",
		step("reserve", retry),
		step("price", voting),
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "order" {
		t.Errorf("Name = %q", p.Name())
	}
	got, err := p.Execute(context.Background(), 0)
	if err != nil || got != 11 {
		t.Errorf("= (%d, %v), want (11, nil)", got, err)
	}
	if p.CompensationsRun != 0 {
		t.Errorf("compensations = %d", p.CompensationsRun)
	}
}

func TestProcessCompensationOnFailure(t *testing.T) {
	var undone []string
	mkStep := func(name string, exec core.Executor[int, int]) Step[int] {
		return Step[int]{
			Name:   name,
			Invoke: exec,
			Compensate: func(_ context.Context, input int) error {
				undone = append(undone, name)
				return nil
			},
		}
	}
	ok1, _ := Retry(add(1), 0)
	ok2, _ := Retry(add(2), 0)
	dead, _ := Retry(fn("dead", func(int) (int, error) { return 0, errors.New("down") }), 0)
	p, err := NewProcess("saga",
		mkStep("reserve", ok1),
		mkStep("charge", ok2),
		mkStep("ship", dead),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Execute(context.Background(), 0)
	if !errors.Is(err, ErrProcessFailed) {
		t.Fatalf("err = %v", err)
	}
	// Completed steps undone in reverse order.
	if len(undone) != 2 || undone[0] != "charge" || undone[1] != "reserve" {
		t.Errorf("undo order = %v, want [charge reserve]", undone)
	}
	if p.CompensationsRun != 2 {
		t.Errorf("CompensationsRun = %d", p.CompensationsRun)
	}
}

func TestProcessCompensationReceivesStepInput(t *testing.T) {
	var sawInput int
	ok, _ := Retry(add(5), 0)
	dead, _ := Retry(fn("dead", func(int) (int, error) { return 0, errors.New("x") }), 0)
	p, err := NewProcess("p",
		Step[int]{Name: "s1", Invoke: ok, Compensate: func(_ context.Context, in int) error {
			sawInput = in
			return nil
		}},
		Step[int]{Name: "s2", Invoke: dead},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = p.Execute(context.Background(), 42)
	if sawInput != 42 {
		t.Errorf("compensation input = %d, want the step's original input 42", sawInput)
	}
}

func TestProcessCompensationFailure(t *testing.T) {
	ok, _ := Retry(add(1), 0)
	dead, _ := Retry(fn("dead", func(int) (int, error) { return 0, errors.New("x") }), 0)
	p, err := NewProcess("p",
		Step[int]{Name: "s1", Invoke: ok, Compensate: func(context.Context, int) error {
			return errors.New("undo broken")
		}},
		Step[int]{Name: "s2", Invoke: dead},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Execute(context.Background(), 0)
	if !errors.Is(err, ErrCompensationFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestProcessStepsWithoutCompensationSkipped(t *testing.T) {
	ok, _ := Retry(add(1), 0)
	dead, _ := Retry(fn("dead", func(int) (int, error) { return 0, errors.New("x") }), 0)
	p, err := NewProcess("p",
		Step[int]{Name: "s1", Invoke: ok}, // no compensation
		Step[int]{Name: "s2", Invoke: dead},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background(), 0); !errors.Is(err, ErrProcessFailed) {
		t.Errorf("err = %v", err)
	}
	if p.CompensationsRun != 0 {
		t.Errorf("CompensationsRun = %d", p.CompensationsRun)
	}
}

func TestNewProcessValidation(t *testing.T) {
	if _, err := NewProcess[int]("p"); err == nil {
		t.Error("no steps accepted")
	}
	if _, err := NewProcess("p", Step[int]{Name: "bad"}); err == nil {
		t.Error("nil Invoke accepted")
	}
}

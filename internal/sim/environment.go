package sim

import (
	"context"
	"errors"

	"github.com/softwarefaults/redundancy/internal/envperturb"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/microreboot"
	"github.com/softwarefaults/redundancy/internal/rejuv"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// rejuvenationExperiment reproduces the result of Garg, Huang, Kintala
// and Trivedi (paper Section 4.3): the expected completion time of a
// checkpointed program as a function of the rejuvenation period is
// U-shaped — rejuvenating every N checkpoints for some interior N
// minimizes completion time.
func rejuvenationExperiment() Experiment {
	return Experiment{
		ID:       "rejuvenation",
		Index:    "E6",
		Artifact: "Section 4.3 (Garg et al. completion time)",
		Title:    "Completion time vs rejuvenation period",
		Run: func(seed uint64) ([]*stats.Table, error) {
			base := rejuv.CompletionConfig{
				Work:               2000,
				CheckpointInterval: 20,
				CheckpointCost:     1,
				RejuvenationCost:   25,
				RecoveryCost:       200,
				Fault:              faultmodel.AgingFault{ID: 1, HazardAtScale: 0.02, Scale: 200, Shape: 4},
			}
			table := stats.NewTable(
				"Expected completion time vs rejuvenation period (work=2000, ckp every 20)",
				"rejuvenate every N ckps", "mean completion time", "overhead vs raw work")
			bestN, bestT := -1, 0.0
			for _, n := range []int{0, 1, 2, 3, 4, 6, 8, 12, 20} {
				cfg := base
				cfg.RejuvenateEveryN = n
				mean, err := rejuv.MeanCompletion(cfg, 100, xrand.New(seed+uint64(n)))
				if err != nil {
					return nil, err
				}
				label := n
				table.AddRow(label, mean, mean/float64(base.Work)-1)
				if bestN < 0 || mean < bestT {
					bestN, bestT = n, mean
				}
			}
			summary := stats.NewTable("Optimum", "best N", "completion time")
			summary.AddRow(bestN, bestT)
			return []*stats.Table{table, summary}, nil
		},
	}
}

// microrebootExperiment reproduces the recovery-cost comparison behind
// micro-reboots (paper Section 5.2, Candea et al.): rebooting only the
// minimal failed subtree recovers faster and destroys far less session
// state than a full reboot.
func microrebootExperiment() Experiment {
	return Experiment{
		ID:       "microreboot",
		Index:    "E7",
		Artifact: "Section 5.2 (reboot vs micro-reboot)",
		Title:    "Recovery cost and session loss: full reboot vs micro-reboot",
		Run: func(seed uint64) ([]*stats.Table, error) {
			spec := microreboot.Spec{
				Name: "appserver", InitCost: 60,
				Children: []microreboot.Spec{
					{Name: "web", InitCost: 15, Children: []microreboot.Spec{
						{Name: "sess-1", InitCost: 2},
						{Name: "sess-2", InitCost: 2},
						{Name: "sess-3", InitCost: 2},
					}},
					{Name: "db", InitCost: 40},
				},
			}
			leaves := []string{"sess-1", "sess-2", "sess-3"}
			const faults = 200

			run := func(policy string) (downtime float64, collateral int, err error) {
				sys, err := microreboot.NewSystem(spec)
				if err != nil {
					return 0, 0, err
				}
				mgr, err := microreboot.NewManager(sys)
				if err != nil {
					return 0, 0, err
				}
				rng := xrand.New(seed)
				for i := 0; i < faults; i++ {
					for _, l := range leaves {
						if err := sys.OpenSession(l); err != nil {
							return 0, 0, err
						}
					}
					target := leaves[rng.Intn(len(leaves))]
					if err := sys.Fail(target); err != nil {
						return 0, 0, err
					}
					// Sessions on the failed component are doomed either
					// way; only losses on healthy components are
					// collateral damage of the recovery policy.
					doomed, err := sys.Sessions(target)
					if err != nil {
						return 0, 0, err
					}
					before := sys.SessionsLost
					switch policy {
					case "full-reboot":
						sys.Reboot()
					case "micro-reboot":
						if _, err := sys.MicroReboot(target); err != nil {
							return 0, 0, err
						}
					case "recursive":
						mgr.Recover()
						mgr.ResetEscalation()
					}
					collateral += (sys.SessionsLost - before) - doomed
				}
				return sys.Downtime, collateral, nil
			}

			table := stats.NewTable(
				"Recovery over 200 leaf faults (3-tier tree, full reboot cost 121)",
				"policy", "total downtime", "mean recovery cost", "collateral sessions lost")
			for _, policy := range []string{"full-reboot", "micro-reboot", "recursive"} {
				downtime, collateral, err := run(policy)
				if err != nil {
					return nil, err
				}
				table.AddRow(policy, downtime, downtime/faults, collateral)
			}
			return []*stats.Table{table}, nil
		},
	}
}

// perturbationExperiment reproduces the paper's contrast between plain
// checkpoint-recovery (opportunistic environment redundancy, effective
// for Heisenbugs only) and RX-style deliberate environment perturbation
// (also effective for environment-dependent deterministic bugs): the
// recovery rate per fault class per strategy.
func perturbationExperiment() Experiment {
	return Experiment{
		ID:       "perturbation",
		Index:    "E9",
		Artifact: "Sections 4.3/5.2 (RX vs checkpoint-recovery per fault class)",
		Title:    "Recovery rate by fault class: re-execution vs environment perturbation",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const trials = 4000

			type class struct {
				name string
				prog func(*xrand.Rand) envperturb.EnvProgram[int, int]
			}
			classes := []class{
				{
					name: "Bohrbug (pure deterministic)",
					prog: func(*xrand.Rand) envperturb.EnvProgram[int, int] {
						return func(_ context.Context, _ *faultmodel.Env, x int) (int, error) {
							return 0, errors.New("deterministic failure")
						}
					},
				},
				{
					name: "env-dependent Bohrbug (overflow)",
					prog: func(*xrand.Rand) envperturb.EnvProgram[int, int] {
						bug := faultmodel.EnvBohrbug{ID: 2, TriggerFraction: 1, MaskedByPadding: 64}
						return func(_ context.Context, env *faultmodel.Env, x int) (int, error) {
							if bug.Activated(faultmodel.Invocation{InputKey: faultmodel.HashInt(x), Env: env}) {
								return 0, errors.New("overflow")
							}
							return x, nil
						}
					},
				},
				{
					name: "env-dependent Bohrbug (deadlock)",
					prog: func(*xrand.Rand) envperturb.EnvProgram[int, int] {
						bug := faultmodel.EnvBohrbug{ID: 3, TriggerFraction: 1, MaskedByShuffle: true}
						return func(_ context.Context, env *faultmodel.Env, x int) (int, error) {
							if bug.Activated(faultmodel.Invocation{InputKey: faultmodel.HashInt(x), Env: env}) {
								return 0, errors.New("deadlock")
							}
							return x, nil
						}
					},
				},
				{
					name: "Heisenbug (p=0.6)",
					prog: func(r *xrand.Rand) envperturb.EnvProgram[int, int] {
						bug := faultmodel.Heisenbug{ID: 4, Prob: 0.6}
						return func(_ context.Context, env *faultmodel.Env, x int) (int, error) {
							if bug.Activated(faultmodel.Invocation{Env: env, Rand: r}) {
								return 0, errors.New("race")
							}
							return x, nil
						}
					},
				},
			}

			table := stats.NewTable(
				"Recovery rate per fault class (4000 failing requests each)",
				"fault class", "no redundancy", "checkpoint-recovery (3 retries)", "RX perturbation ladder")
			for _, cl := range classes {
				// Count only requests whose *first* execution fails, then
				// ask each strategy to recover; all strategies see the
				// same program construction.
				recoverRate := func(build func(prog envperturb.EnvProgram[int, int]) (*envperturb.Executor[int, int], error)) (float64, error) {
					r := xrand.New(seed + 1)
					prog := cl.prog(r)
					exec, err := build(prog)
					failures, recovered := 0, 0
					if err != nil {
						return 0, err
					}
					for i := 0; i < trials; i++ {
						// Determine first-execution failure on a probe env.
						if _, err := prog(context.Background(), faultmodel.DefaultEnv(), i); err == nil {
							continue
						}
						failures++
						if _, err := exec.Execute(context.Background(), i); err == nil {
							recovered++
						}
					}
					if failures == 0 {
						return 1, nil
					}
					return float64(recovered) / float64(failures), nil
				}

				none, err := recoverRate(func(p envperturb.EnvProgram[int, int]) (*envperturb.Executor[int, int], error) {
					return envperturb.NewCheckpointRecovery(p, faultmodel.DefaultEnv(), 0)
				})
				if err != nil {
					return nil, err
				}
				ckp, err := recoverRate(func(p envperturb.EnvProgram[int, int]) (*envperturb.Executor[int, int], error) {
					return envperturb.NewCheckpointRecovery(p, faultmodel.DefaultEnv(), 3)
				})
				if err != nil {
					return nil, err
				}
				rx, err := recoverRate(func(p envperturb.EnvProgram[int, int]) (*envperturb.Executor[int, int], error) {
					return envperturb.New(p, faultmodel.DefaultEnv(), envperturb.DefaultLadder())
				})
				if err != nil {
					return nil, err
				}
				table.AddRow(cl.name, none, ckp, rx)
			}
			return []*stats.Table{table}, nil
		},
	}
}

package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/softwarefaults/redundancy/internal/avail"
	"github.com/softwarefaults/redundancy/internal/des"
	"github.com/softwarefaults/redundancy/internal/service"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// availabilityExperiment runs the time-based counterpart of E13: service
// providers alternate between up and down states with exponential holding
// times (MTBF/MTTR) on a discrete-event clock; a client samples the
// composite availability with and without substitution. The measured
// availabilities must match the closed-form dependability algebra: A =
// MTBF/(MTBF+MTTR) for a single binding, and (with fast rebinding)
// approximately 1-(1-A)^n for n independently failing providers.
func availabilityExperiment() Experiment {
	return Experiment{
		ID:       "availability",
		Index:    "E21",
		Artifact: "Section 5.1 (service substitution, time-based availability model)",
		Title:    "Measured vs analytic availability under failure/repair processes",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const (
				mtbf     = 900.0
				mttr     = 100.0
				horizon  = 200000.0
				sampleDt = 10.0
			)
			analyticSingle, err := avail.Availability(
				time.Duration(mtbf)*time.Second, time.Duration(mttr)*time.Second)
			if err != nil {
				return nil, err
			}

			table := stats.NewTable(
				fmt.Sprintf("Availability over %d time units (MTBF %.0f, MTTR %.0f, per-provider A=%.3f)",
					int(horizon), mtbf, mttr, analyticSingle),
				"providers", "binding", "measured availability", "analytic")
			for _, n := range []int{1, 2, 3} {
				measuredSingle, measuredProxy, err := simulateAvailability(seed, n, mtbf, mttr, horizon, sampleDt)
				if err != nil {
					return nil, err
				}
				table.AddRow(n, "single (provider 1)", measuredSingle, analyticSingle)
				if n > 1 {
					vals := make([]float64, n)
					for i := range vals {
						vals[i] = analyticSingle
					}
					analyticPar, err := avail.Parallel(vals...)
					if err != nil {
						return nil, err
					}
					table.AddRow(n, "with substitution", measuredProxy, analyticPar)
				}
			}
			return []*stats.Table{table}, nil
		},
	}
}

// simulateAvailability runs one failure/repair simulation and returns the
// fraction of sampling instants at which (a) provider 1 alone and (b) the
// substituting proxy could serve a request.
func simulateAvailability(seed uint64, n int, mtbf, mttr, horizon, sampleDt float64) (single, proxyAvail float64, err error) {
	rng := xrand.New(seed + uint64(n))
	clock := des.New()
	sig := service.Signature{Name: "feed", Ops: []string{"get"}}

	providers := make([]*service.SimService, n)
	reg := service.NewRegistry()
	for i := range providers {
		p, err := service.NewSimService(fmt.Sprintf("provider-%d", i+1), sig,
			map[string]func(int) (int, error){
				"get": func(x int) (int, error) { return x, nil },
			})
		if err != nil {
			return 0, 0, err
		}
		providers[i] = p
		if err := reg.Register(p, nil); err != nil {
			return 0, 0, err
		}
	}
	proxy, err := service.NewProxy(reg, sig, 0.5)
	if err != nil {
		return 0, 0, err
	}

	// Failure/repair processes: one alternating renewal process per
	// provider with exponential holding times.
	for i := range providers {
		p := providers[i]
		r := rng.Split()
		var fail, repair func()
		fail = func() {
			p.SetDown(true)
			if err := clock.After(r.ExpFloat64()*mttr, repair); err != nil {
				panic(err) // unreachable: delays are non-negative
			}
		}
		repair = func() {
			p.SetDown(false)
			if err := clock.After(r.ExpFloat64()*mtbf, fail); err != nil {
				panic(err)
			}
		}
		if err := clock.After(r.ExpFloat64()*mtbf, fail); err != nil {
			return 0, 0, err
		}
	}

	// Sampling process.
	var (
		samples     int
		upSingle    int
		upViaProxy  int
		samplerStop bool
	)
	ctx := context.Background()
	var sample func()
	sample = func() {
		if samplerStop {
			return
		}
		samples++
		if _, err := providers[0].Invoke(ctx, "get", samples); err == nil {
			upSingle++
		}
		if _, err := proxy.Invoke(ctx, "get", samples); err == nil {
			upViaProxy++
		}
		if clock.Now()+sampleDt <= horizon {
			if err := clock.After(sampleDt, sample); err != nil {
				panic(err)
			}
		}
	}
	if err := clock.After(sampleDt, sample); err != nil {
		return 0, 0, err
	}

	if err := clock.RunUntil(horizon); err != nil {
		return 0, 0, err
	}
	samplerStop = true
	if samples == 0 {
		return 0, 0, fmt.Errorf("sim: no samples taken")
	}
	return float64(upSingle) / float64(samples), float64(upViaProxy) / float64(samples), nil
}

package sim

import (
	"fmt"

	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/repstore"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// replicationExperiment reproduces the stateful N-version case the paper
// cites (Gashi et al., diverse SQL servers): N replicas of a store, one
// of which corrupts a fraction of its writes, serve a workload; the vote
// masks every wrong read, state reconciliation detects the divergent
// replica, and state transfer repairs it.
func replicationExperiment() Experiment {
	return Experiment{
		ID:       "replication",
		Index:    "E18",
		Artifact: "Section 4.1 (N-version programming on SQL servers, Gashi et al.)",
		Title:    "Replicated store: wrong reads masked, divergent replicas repaired",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const (
				keys  = 400
				reads = 2000
			)
			table := stats.NewTable(
				"3-replica store, one replica corrupts a fraction of writes (400 keys, 2000 reads)",
				"corrupt fraction", "wrong reads served", "divergences detected", "repairs", "final states equal")
			for _, frac := range []float64{0.05, 0.2, 0.5} {
				rng := xrand.New(seed)
				replicas := make([]repstore.Replica, 3)
				sims := make([]*repstore.SimReplica, 3)
				for i := range replicas {
					sims[i] = repstore.NewSimReplica(fmt.Sprintf("replica-%d", i+1))
					replicas[i] = sims[i]
				}
				sims[2].CorruptionBug = faultmodel.Bohrbug{ID: 9, TriggerFraction: frac}
				sys, err := repstore.NewSystem(replicas)
				if err != nil {
					return nil, err
				}
				for k := 0; k < keys; k++ {
					if err := sys.Put(fmt.Sprintf("key-%d", k), fmt.Sprintf("value-%d", k)); err != nil {
						return nil, err
					}
				}
				wrong := 0
				for i := 0; i < reads; i++ {
					k := rng.Intn(keys)
					v, err := sys.Get(fmt.Sprintf("key-%d", k))
					if err != nil || v != fmt.Sprintf("value-%d", k) {
						wrong++
					}
				}
				statesEqual := sims[0].Digest() == sims[1].Digest() && sims[1].Digest() == sims[2].Digest()
				table.AddRow(frac, wrong, sys.Divergences, sys.Repairs, fmt.Sprintf("%v", statesEqual))
			}
			return []*stats.Table{table}, nil
		},
	}
}

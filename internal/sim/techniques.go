package sim

import (
	"context"
	"errors"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/datadiv"
	"github.com/softwarefaults/redundancy/internal/geneticfix"
	"github.com/softwarefaults/redundancy/internal/replica"
	"github.com/softwarefaults/redundancy/internal/robustdata"
	"github.com/softwarefaults/redundancy/internal/service"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/workaround"
	"github.com/softwarefaults/redundancy/internal/wrapper"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// dataDiversityExperiment reproduces the premise of Ammann and Knight's
// data diversity (paper Section 4.2): re-expressing inputs escapes
// input-dependent failure regions, and the escape probability grows with
// the retry budget.
func dataDiversityExperiment() Experiment {
	return Experiment{
		ID:       "datadiversity",
		Index:    "E8",
		Artifact: "Section 4.2 (data diversity)",
		Title:    "Failure-region escape rate vs retry budget",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const (
				domain      = 1000
				regionWidth = 10
				trials      = 4000
			)
			rng := xrand.New(seed)
			// The subject program fails on a contiguous input region; a
			// re-expression perturbs the input by a random shift (an exact
			// re-expression for the constant function the oracle checks).
			regionLo := rng.Intn(domain - regionWidth)
			program := core.NewVariant("region-program",
				func(_ context.Context, x int) (int, error) {
					pos := ((x % domain) + domain) % domain
					if pos >= regionLo && pos < regionLo+regionWidth {
						return 0, errors.New("failure region")
					}
					return 42, nil
				})
			shift := datadiv.Reexpression[int]{
				Name:  "random-shift",
				Apply: func(x int, r *xrand.Rand) int { return x + 1 + r.Intn(domain-1) },
				Exact: true,
			}
			accept := func(_ int, out int) error {
				if out != 42 {
					return core.ErrNotAccepted
				}
				return nil
			}

			table := stats.NewTable(
				"Retry-block success rate on failure-region inputs (region width 10/1000)",
				"retry budget", "success rate", "analytic", "mean attempts")
			for _, budget := range []int{1, 2, 3, 5} {
				var m core.Metrics
				rb, err := datadiv.NewRetryBlock(program, accept,
					[]datadiv.Reexpression[int]{shift}, budget, rng.Split())
				if err != nil {
					return nil, err
				}
				rb.SetMetrics(&m)
				ok := 0
				for i := 0; i < trials; i++ {
					in := regionLo + rng.Intn(regionWidth) // always inside the region
					if _, err := rb.Execute(context.Background(), in); err == nil {
						ok++
					}
				}
				s := m.Snapshot()
				// First attempt always fails; each retry escapes with
				// probability 1 - (regionWidth-?)/domain ≈ 1 - w/domain.
				pStay := float64(regionWidth) / float64(domain-1)
				analytic := 0.0
				if budget > 1 {
					analytic = 1 - pow(pStay, budget-1)
				}
				table.AddRow(budget, float64(ok)/trials, analytic, s.ExecutionsPerRequest())
			}

			// N-copy programming over the same region.
			ncopyTable := stats.NewTable(
				"N-copy programming success rate on failure-region inputs",
				"copies", "success rate")
			for _, n := range []int{2, 3, 5} {
				nc, err := datadiv.NewNCopy(program,
					[]datadiv.Reexpression[int]{shift}, n,
					adjFirstOK(), rng.Split())
				if err != nil {
					return nil, err
				}
				ok := 0
				for i := 0; i < trials; i++ {
					in := regionLo + rng.Intn(regionWidth)
					if _, err := nc.Execute(context.Background(), in); err == nil {
						ok++
					}
				}
				ncopyTable.AddRow(n, float64(ok)/trials)
			}
			return []*stats.Table{table, ncopyTable}, nil
		},
	}
}

// adjFirstOK accepts the first successful copy (the program is
// deterministic and exact re-expressions preserve the output, so any
// successful copy is correct).
func adjFirstOK() core.Adjudicator[int] {
	return core.AdjudicatorFunc[int](func(results []core.Result[int]) (int, error) {
		for _, r := range results {
			if r.OK() {
				return r.Value, nil
			}
		}
		return 0, core.ErrAllVariantsFailed
	})
}

func pow(b float64, e int) float64 {
	out := 1.0
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// nvariantExperiment reproduces the security claims of process replicas
// (Cox et al.) and N-variant data diversity (Nguyen-Tuong et al.):
// attack detection rates per payload type, with zero false positives on
// benign workloads.
func nvariantExperiment() Experiment {
	return Experiment{
		ID:       "nvariant",
		Index:    "E10",
		Artifact: "Section 4.3 (process replicas) and 4.2 (data diversity for security)",
		Title:    "Attack detection by replica divergence and data-variant comparison",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const requests = 3000
			rng := xrand.New(seed)
			sys, err := replica.NewSystem(3, 1<<16)
			if err != nil {
				return nil, err
			}
			table := stats.NewTable(
				"Process replicas (3 variants): outcome per request type (3000 each)",
				"request type", "served", "detected (divergence)", "trapped (unanimous)", "undetected compromise")
			// Benign mix.
			served, det, trap, bad := 0, 0, 0, 0
			for i := 0; i < requests; i++ {
				_, err := sys.Execute(replica.Request{Op: replica.OpWrite, Addr: uint64(rng.Intn(1000)), Value: uint64(i)})
				classify(err, &served, &det, &trap, &bad)
			}
			table.AddRow("benign read/write", served, det, trap, bad)

			served, det, trap, bad = 0, 0, 0, 0
			for i := 0; i < requests; i++ {
				target := sys.Process(rng.Intn(sys.N())).Base() + uint64(rng.Intn(1000))
				_, err := sys.Execute(replica.Request{Op: replica.OpWrite, Addr: target, Absolute: true, Value: 0xbad})
				classify(err, &served, &det, &trap, &bad)
			}
			table.AddRow("absolute-address attack", served, det, trap, bad)

			served, det, trap, bad = 0, 0, 0, 0
			for i := 0; i < requests; i++ {
				tag := byte(0)
				if rng.Bool(0.8) { // attacker usually guesses some variant's tag
					tag = sys.Process(rng.Intn(sys.N())).Tag()
				}
				_, err := sys.Execute(replica.Request{Op: replica.OpExec,
					Code: []replica.Instruction{{Tag: tag, Op: "shellcode"}}})
				classify(err, &served, &det, &trap, &bad)
			}
			table.AddRow("code-injection attack", served, det, trap, bad)

			// N-variant data cells under uniform corruption.
			cellTable := stats.NewTable(
				"N-variant data (uniform corruption of all variants, 3000 trials)",
				"variants", "detected", "undetected")
			for _, n := range []int{2, 3} {
				cell, err := datadiv.NewNVariantCell(n, rng.Split())
				if err != nil {
					return nil, err
				}
				detected, undetected := 0, 0
				for i := 0; i < requests; i++ {
					cell.Set(uint64(i))
					cell.CorruptUniform(rng.Uint64())
					if _, err := cell.Get(); err != nil {
						detected++
					} else {
						undetected++
					}
				}
				cellTable.AddRow(n, detected, undetected)
			}
			return []*stats.Table{table, cellTable}, nil
		},
	}
}

func classify(err error, served, det, trap, bad *int) {
	switch {
	case err == nil:
		*served++
	case errors.Is(err, replica.ErrAttackDetected):
		*det++
	case errors.Is(err, replica.ErrSegfault), errors.Is(err, replica.ErrIllegalInstruction):
		*trap++
	default:
		*bad++
	}
}

// workaroundExperiment reproduces the premise of automatic workarounds
// (paper Section 5.1): the fraction of failures avoided grows with the
// number of known rewriting rules (the amount of intrinsic redundancy the
// engine can exploit).
func workaroundExperiment() Experiment {
	return Experiment{
		ID:       "workarounds",
		Index:    "E11",
		Artifact: "Section 5.1 (automatic workarounds)",
		Title:    "Failures healed vs rewriting-rule budget",
		Run: func(seed uint64) ([]*stats.Table, error) {
			rng := xrand.New(seed)
			allRules := workaround.IntSetRules()
			ruleSets := []struct {
				name  string
				rules []workaround.Rule
			}{
				{"split only", allRules[:1]},
				{"split + expand", allRules[:2]},
				{"all three rules", allRules},
			}
			const trials = 500
			table := stats.NewTable(
				"Automatic workarounds: healed failing sequences (500 per cell)",
				"rule set", "bug span 2", "bug span 3", "mean candidates tried")
			for _, rs := range ruleSets {
				row := make([]any, 0, 4)
				row = append(row, rs.name)
				totalTried := 0
				attempts := 0
				for _, bugSpan := range []int{2, 3} {
					engine, err := workaround.NewEngine(rs.rules)
					if err != nil {
						return nil, err
					}
					healed := 0
					for i := 0; i < trials; i++ {
						lo := rng.Intn(50)
						span := bugSpan + rng.Intn(4) // always wide enough to trigger the bug
						hi := lo + span
						set := workaround.NewIntSet(bugSpan)
						out, err := engine.Execute(context.Background(), set,
							workaround.Sequence{{Name: "addrange", Args: []int{lo, hi}}},
							workaround.RangeOracle(lo, hi))
						if err == nil && out.WorkedAround {
							healed++
						}
						totalTried += out.Tried
						attempts++
					}
					row = append(row, float64(healed)/trials)
				}
				row = append(row, float64(totalTried)/float64(attempts))
				table.AddRow(row...)
			}
			return []*stats.Table{table}, nil
		},
	}
}

// geneticFixExperiment reproduces the fault-fixing results of Weimer et
// al. and Arcuri-Yao (paper Section 5.1): repair success rate and
// generations needed per seeded fault kind.
func geneticFixExperiment() Experiment {
	return Experiment{
		ID:       "geneticfix",
		Index:    "E12",
		Artifact: "Section 5.1 (fault fixing with genetic programming)",
		Title:    "GP repair rate and generations per fault kind",
		Run: func(seed uint64) ([]*stats.Table, error) {
			sumSuite := []geneticfix.TestCase{
				{Vars: map[string]int{"x": 1, "y": 2}, Want: 3},
				{Vars: map[string]int{"x": 5, "y": 5}, Want: 10},
				{Vars: map[string]int{"x": -2, "y": 7}, Want: 5},
				{Vars: map[string]int{"x": 0, "y": 0}, Want: 0},
				{Vars: map[string]int{"x": 10, "y": -10}, Want: 0},
			}
			faults := []struct {
				name  string
				prog  geneticfix.Node
				suite []geneticfix.TestCase
			}{
				{"swapped branches (max)", geneticfix.FaultyMax(), geneticfix.MaxSuite()},
				{"wrong operator (sum as sub)",
					&geneticfix.Bin{Op: geneticfix.OpSub, L: geneticfix.Var{Name: "x"}, R: geneticfix.Var{Name: "y"}},
					sumSuite},
				{"wrong constant (x+2 instead of x+1)",
					&geneticfix.Bin{Op: geneticfix.OpAdd, L: geneticfix.Var{Name: "x"}, R: geneticfix.Const{Value: 2}},
					[]geneticfix.TestCase{
						{Vars: map[string]int{"x": 0}, Want: 1},
						{Vars: map[string]int{"x": 5}, Want: 6},
						{Vars: map[string]int{"x": -3}, Want: -2},
					}},
			}
			const runs = 20
			table := stats.NewTable(
				"GP repair over 20 random seeds per fault (pop 64, <=100 generations)",
				"seeded fault", "repair rate", "mean generations (successful runs)")
			for _, f := range faults {
				cfg := geneticfix.DefaultConfig([]string{"x", "y"})
				repaired, genSum := 0, 0
				for r := 0; r < runs; r++ {
					res, err := geneticfix.Repair(f.prog, f.suite, cfg, xrand.New(seed+uint64(r)))
					if err != nil {
						return nil, err
					}
					if res.Repaired {
						repaired++
						genSum += res.Generations
					}
				}
				meanGen := 0.0
				if repaired > 0 {
					meanGen = float64(genSum) / float64(repaired)
				}
				table.AddRow(f.name, float64(repaired)/runs, meanGen)
			}
			return []*stats.Table{table}, nil
		},
	}
}

// substitutionExperiment reproduces the availability argument for dynamic
// service substitution (paper Section 5.1): a composite application bound
// to a single provider versus one that transparently substitutes among
// the available implementations.
func substitutionExperiment() Experiment {
	return Experiment{
		ID:       "substitution",
		Index:    "E13",
		Artifact: "Section 5.1 (dynamic service substitution)",
		Title:    "Availability with and without substitution",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const requests = 10000
			sig := service.Signature{Name: "stock", Ops: []string{"get"}}
			table := stats.NewTable(
				"Availability over 10000 requests, 3 providers",
				"per-provider failure prob", "single binding", "with substitution", "substitutions")
			for _, p := range []float64{0.05, 0.2, 0.5} {
				rng := xrand.New(seed)
				mk := func(name string) (*service.SimService, error) {
					s, err := service.NewSimService(name, sig, map[string]func(int) (int, error){
						"get": func(x int) (int, error) { return x, nil },
					})
					if err != nil {
						return nil, err
					}
					s.SetFlaky(p, rng.Split())
					return s, nil
				}
				s1, err := mk("provider-1")
				if err != nil {
					return nil, err
				}
				s2, err := mk("provider-2")
				if err != nil {
					return nil, err
				}
				s3, err := mk("provider-3")
				if err != nil {
					return nil, err
				}

				// Single binding: always provider-1.
				okSingle := 0
				for i := 0; i < requests; i++ {
					if _, err := s1.Invoke(context.Background(), "get", i); err == nil {
						okSingle++
					}
				}

				reg := service.NewRegistry()
				for _, s := range []*service.SimService{s1, s2, s3} {
					if err := reg.Register(s, nil); err != nil {
						return nil, err
					}
				}
				proxy, err := service.NewProxy(reg, sig, 0.5)
				if err != nil {
					return nil, err
				}
				okProxy := 0
				for i := 0; i < requests; i++ {
					if _, err := proxy.Invoke(context.Background(), "get", i); err == nil {
						okProxy++
					}
				}
				table.AddRow(p, float64(okSingle)/requests, float64(okProxy)/requests, proxy.Substitutions)
			}
			return []*stats.Table{table}, nil
		},
	}
}

// robustDataExperiment reproduces the detection/repair coverage of robust
// data structures and audits (paper Section 4.2, Taylor et al.).
func robustDataExperiment() Experiment {
	return Experiment{
		ID:       "robustdata",
		Index:    "E15",
		Artifact: "Section 4.2 (robust data structures, audits)",
		Title:    "Detection and repair coverage per corruption kind",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const trials = 2000
			rng := xrand.New(seed)
			table := stats.NewTable(
				"Robust list: single corruptions (2000 each)",
				"corruption", "detected", "repaired", "value-intact after repair")
			kinds := []string{"next->garbage", "prev->garbage", "next->valid-skip", "count drift"}
			for _, kind := range kinds {
				detected, repaired, intact := 0, 0, 0
				for i := 0; i < trials; i++ {
					size := 3 + rng.Intn(8)
					l := robustdata.NewRobustList()
					for v := 0; v < size; v++ {
						l.Append(v)
					}
					ids := l.NodeIDs()
					target := ids[rng.Intn(len(ids))]
					switch kind {
					case "next->garbage":
						l.CorruptNext(target, 10_000+rng.Intn(1000))
					case "prev->garbage":
						l.CorruptPrev(target, 10_000+rng.Intn(1000))
					case "next->valid-skip":
						l.CorruptNext(ids[0], ids[len(ids)-1])
					case "count drift":
						l.CorruptCount(1 + rng.Intn(5))
					}
					if len(l.Audit()) > 0 {
						detected++
					}
					if err := l.Repair(); err == nil {
						repaired++
						if vals, err := l.Values(); err == nil && len(vals) == size {
							good := true
							for v := 0; v < size; v++ {
								if vals[v] != v {
									good = false
									break
								}
							}
							if good {
								intact++
							}
						}
					}
				}
				table.AddRow(kind, float64(detected)/trials, float64(repaired)/trials, float64(intact)/trials)
			}

			mapTable := stats.NewTable(
				"Robust map: checksummed shadow copies (2000 each)",
				"corruption", "reads served correctly", "unrepairable")
			for _, kind := range []string{"primary only", "both copies"} {
				okReads, lost := 0, 0
				for i := 0; i < trials; i++ {
					m := robustdata.NewRobustMap()
					m.Put("k", i)
					m.CorruptPrimary("k", i+999)
					if kind == "both copies" {
						m.CorruptShadow("k", i+998)
					}
					v, err := m.Get("k")
					switch {
					case err == nil && v == i:
						okReads++
					case errors.Is(err, robustdata.ErrUnrepairable):
						lost++
					}
				}
				mapTable.AddRow(kind, float64(okReads)/trials, float64(lost)/trials)
			}

			// Periodic software audits (Connet et al.): the audit period
			// trades overhead against the window during which a
			// corruption sits undetected.
			auditTable := stats.NewTable(
				"Periodic software audits: detection latency vs audit period (500 corruptions each)",
				"audit period (ops)", "mean detection latency (ops)", "audits per 1000 ops")
			for _, period := range []int{1, 10, 50} {
				const runs = 500
				totalLatency := 0
				totalAudits := 0
				totalOps := 0
				for run := 0; run < runs; run++ {
					l := robustdata.NewRobustList()
					for v := 0; v < 6; v++ {
						l.Append(v)
					}
					sched, err := robustdata.NewAuditScheduler(robustdata.AsAuditable(l), period)
					if err != nil {
						return nil, err
					}
					corruptAt := rng.Intn(100)
					corrupted := false
					for op := 0; op < 200; op++ {
						totalOps++
						if op == corruptAt {
							ids := l.NodeIDs()
							l.CorruptNext(ids[rng.Intn(len(ids))], 100000+op)
							corrupted = true
						}
						audited, err := sched.Tick()
						if err != nil {
							return nil, err
						}
						if audited && corrupted && sched.Repairs > 0 {
							totalLatency += op - corruptAt
							corrupted = false
						}
					}
					totalAudits += sched.Audits
				}
				auditTable.AddRow(period,
					float64(totalLatency)/runs,
					float64(totalAudits)/float64(totalOps)*1000)
			}
			return []*stats.Table{table, mapTable, auditTable}, nil
		},
	}
}

// wrapperExperiment reproduces the prevention claims of wrappers (paper
// Section 4.1): boundary-check healers prevent heap smashing, and
// protocol wrappers keep COTS components alive under misuse.
func wrapperExperiment() Experiment {
	return Experiment{
		ID:       "wrappers",
		Index:    "E16",
		Artifact: "Section 4.1 (wrappers, healers)",
		Title:    "Overflow and misuse prevention rates",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const trials = 2000
			rng := xrand.New(seed)
			table := stats.NewTable(
				"Heap overflow workload (2000 write bursts, 20% overflowing)",
				"write path", "blocks smashed", "overflows prevented")
			for _, guarded := range []bool{false, true} {
				smashed, prevented := 0, 0
				for i := 0; i < trials; i++ {
					h, err := wrapper.NewHeap(1 << 12)
					if err != nil {
						return nil, err
					}
					var blocks []wrapper.Handle
					for b := 0; b < 8; b++ {
						blk, err := h.Alloc(16)
						if err != nil {
							return nil, err
						}
						blocks = append(blocks, blk)
					}
					healer, err := wrapper.NewHealer(h, wrapper.Reject)
					if err != nil {
						return nil, err
					}
					for w := 0; w < 10; w++ {
						blk := blocks[rng.Intn(len(blocks))]
						size := 8
						if rng.Bool(0.2) {
							size = 16 + rng.Intn(48) // overflowing write
						}
						data := make([]byte, size)
						if guarded {
							_ = healer.Write(blk, 0, data)
						} else {
							_ = h.RawWrite(blk, 0, data)
						}
					}
					smashed += len(h.CheckIntegrity())
					prevented += healer.Prevented
				}
				name := "raw (unwrapped)"
				if guarded {
					name = "healer (boundary checks)"
				}
				table.AddRow(name, smashed, prevented)
			}

			protoTable := stats.NewTable(
				"COTS protocol misuse (2000 random call sequences of length 8)",
				"mediation", "components broken", "misuses repaired")
			for _, wrapped := range []bool{false, true} {
				broken, repairs := 0, 0
				for i := 0; i < trials; i++ {
					res := wrapper.NewCOTSResource()
					w, err := wrapper.NewProtocolWrapper(res)
					if err != nil {
						return nil, err
					}
					for c := 0; c < 8; c++ {
						var errCall error
						switch rng.Intn(3) {
						case 0:
							if wrapped {
								errCall = w.Open()
							} else {
								errCall = res.Open()
							}
						case 1:
							if wrapped {
								errCall = w.Use()
							} else {
								errCall = res.Use()
							}
						default:
							if wrapped {
								errCall = w.Close()
							} else {
								errCall = res.Close()
							}
						}
						_ = errCall
					}
					if res.State() == wrapper.StateBroken {
						broken++
					}
					repairs += w.Repairs
				}
				name := "direct calls"
				if wrapped {
					name = "protocol wrapper"
				}
				protoTable.AddRow(name, broken, repairs)
			}
			return []*stats.Table{table, protoTable}, nil
		},
	}
}

// selfOptExperiment reproduces the self-optimization scenario (paper
// Section 4.1, Diaconescu et al.): under a shifting load, a framework
// that switches among implementations maintains the QoS that any fixed
// implementation violates.
func selfOptExperiment() Experiment {
	return Experiment{
		ID:       "selfopt",
		Index:    "E17",
		Artifact: "Section 4.1 (self-optimizing code)",
		Title:    "QoS under load shifts: fixed implementations vs self-optimization",
		Run: func(seed uint64) ([]*stats.Table, error) {
			// Load trace: calm, then a load spike, then calm again.
			const phase = 400
			loadAt := func(step int) float64 {
				switch {
				case step < phase:
					return 0.1
				case step < 2*phase:
					return 0.9
				default:
					return 0.1
				}
			}
			latencies := map[string]func(float64) float64{
				"light": func(load float64) float64 { return 1 + 20*load },
				"heavy": func(load float64) float64 { return 6 },
			}
			const threshold = 8.0
			table := stats.NewTable(
				"Mean latency and QoS violations over a 1200-step load trace (threshold 8)",
				"strategy", "mean latency", "violations", "switches")
			// Fixed strategies.
			for _, name := range []string{"light", "heavy"} {
				lat := latencies[name]
				var sum float64
				violations := 0
				for step := 0; step < 3*phase; step++ {
					l := lat(loadAt(step))
					sum += l
					if l > threshold {
						violations++
					}
				}
				table.AddRow("fixed "+name, sum/float64(3*phase), violations, 0)
			}
			// Self-optimizing strategy via the real optimizer.
			step := 0
			probe := func() float64 { return loadAt(step) }
			profiles := []selfoptProfile{
				{name: "light", lat: latencies["light"]},
				{name: "heavy", lat: latencies["heavy"]},
			}
			opt, err := buildOptimizer(profiles, threshold, 3, probe)
			if err != nil {
				return nil, err
			}
			var sum float64
			violations := 0
			for ; step < 3*phase; step++ {
				if _, err := opt.Execute(context.Background(), step); err != nil {
					return nil, err
				}
				sum += opt.LastLatency
				if opt.LastLatency > threshold {
					violations++
				}
			}
			table.AddRow("self-optimizing", sum/float64(3*phase), violations, opt.Switches)
			_ = seed
			return []*stats.Table{table}, nil
		},
	}
}

// costsExperiment reproduces the paper's Section 4.1 discussion "Costs
// and efficacy of code redundancy": N-version programming pays n
// executions per request for an inexpensive implicit adjudicator;
// recovery blocks pay ~1 execution per request but need explicit
// acceptance tests; self-checking programming sits in between with hot
// spares.
func costsExperiment() Experiment {
	return Experiment{
		ID:       "costs",
		Index:    "E14",
		Artifact: "Section 4.1 (costs and efficacy of code redundancy)",
		Title:    "NVP vs recovery blocks vs self-checking: reliability and execution cost",
		Run:      runCostsExperiment,
	}
}

// selfoptProfile and buildOptimizer adapt the selfopt generics for use in
// this package without repeating type arguments at every call site.
type selfoptProfile struct {
	name string
	lat  func(float64) float64
}

// errNoProfiles guards buildOptimizer inputs.
var errNoProfiles = fmt.Errorf("sim: no profiles")

package sim

import (
	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/nvp"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/vote"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// quorumExperiment reproduces the paper's Section 4.1 claim: "in order to
// tolerate k failures, a system must consist of 2k+1 versions". For each
// n it injects f agreeing wrong results and checks whether the majority
// vote still delivers the correct value — the boundary must sit exactly
// at f = (n-1)/2.
func quorumExperiment() Experiment {
	return Experiment{
		ID:       "quorum",
		Index:    "E4",
		Artifact: "Section 4.1 claim (2k+1 versions tolerate k faults)",
		Title:    "Majority-vote fault-tolerance boundary",
		Run: func(uint64) ([]*stats.Table, error) {
			table := stats.NewTable(
				"Quorum boundary — n versions, f agreeing wrong results",
				"n", "tolerable k=(n-1)/2", "f injected", "vote outcome")
			adj := vote.Majority(core.EqualOf[int]())
			for _, n := range []int{3, 5, 7} {
				k := vote.TolerableFaults(n)
				for f := 0; f <= n; f++ {
					results := make([]core.Result[int], 0, n)
					for i := 0; i < n-f; i++ {
						results = append(results, core.Result[int]{Variant: "good", Value: 1})
					}
					for i := 0; i < f; i++ {
						results = append(results, core.Result[int]{Variant: "bad", Value: 2})
					}
					v, err := adj.Adjudicate(results)
					outcome := "correct"
					switch {
					case err != nil:
						outcome = "no consensus"
					case v != 1:
						outcome = "WRONG VALUE"
					}
					table.AddRow(n, k, f, outcome)
				}
			}
			return []*stats.Table{table}, nil
		},
	}
}

// correlationExperiment reproduces the observation of Brilliant, Knight
// and Leveson (paper Section 4.1, "costs and efficacy"): correlated
// failures among independently developed versions erode the N-version
// reliability gain; at full correlation the system is no better than a
// single version.
func correlationExperiment() Experiment {
	return Experiment{
		ID:       "correlation",
		Index:    "E5",
		Artifact: "Section 4.1 (Brilliant et al. correlated failures)",
		Title:    "N-version reliability vs failure correlation",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const (
				n      = 3
				p      = 0.05
				trials = 60000
			)
			table := stats.NewTable(
				"N-version reliability under correlated failures (n=3, p=0.05)",
				"rho", "simulated", "analytic", "single version", "residual gain")
			for _, rho := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
				law := faultmodel.CorrelatedFailures{N: n, P: p, Rho: rho}
				ens, err := nvp.NewEnsemble(law, xrand.New(seed+uint64(rho*100)))
				if err != nil {
					return nil, err
				}
				ok := 0
				for i := 0; i < trials; i++ {
					if _, correct := ens.Round(7); correct {
						ok++
					}
				}
				simulated := float64(ok) / trials
				analytic := nvp.ReliabilityCorrelated(n, p, rho)
				single := 1 - p
				table.AddRow(rho, simulated, analytic, single, analytic-single)
			}
			return []*stats.Table{table}, nil
		},
	}
}

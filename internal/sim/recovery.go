package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/softwarefaults/redundancy/internal/checkpoint"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/obs"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/supervise"
)

// workerState is the durable state of the E23 worker: a running sum and
// an op count, so both data loss and phantom replays are detectable.
type workerState struct {
	Sum   int64
	Count int
}

func applyWorkerOp(s workerState, op int) (workerState, error) {
	return workerState{Sum: s.Sum + int64(op), Count: s.Count + 1}, nil
}

// recoveryExperiment (E23) kills a supervised WAL-backed worker
// mid-workload — panics and crash-errors at schedule-determined ops —
// and measures what crash-safe recovery actually delivers: every
// acknowledged write survives every kill (checked after each restart,
// not just at the end), the worker finishes the full workload, and the
// supervisor's restart-intensity window escalates when a failure is
// persistent rather than transient.
//
// Kill sites fire once: a retried op succeeds after the restart, the
// Heisenbug behavior that makes reboot-based recovery worthwhile. The
// kill schedule, and hence the restart and replay counts, are pure
// functions of the seed.
func recoveryExperiment() Experiment {
	return Experiment{
		ID:       "recovery",
		Index:    "E23",
		Artifact: "Section 3.2 (checkpoint-recovery, micro-reboot): crash recovery with measured MTTR",
		Title:    "Crash-safe recovery: supervised WAL-backed worker under kills",
		Run: func(seed uint64) ([]*stats.Table, error) {
			dir, err := os.MkdirTemp("", "e23-recovery-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)

			camp := faultmodel.RecoveryCampaign(seed)
			total := camp.Total()

			collector := obs.NewCollector()
			var (
				runner       *checkpoint.DurableRunner[workerState, int]
				next         int          // workload cursor (next op to attempt)
				acked        int          // ops durably acknowledged
				fired        map[int]bool // kill sites that already fired
				panics       int
				crashes      int
				lossDetected bool // acked writes missing after a restart
			)
			fired = make(map[int]bool)

			sup := supervise.New(supervise.Options{
				Name:      "e23-supervisor",
				Intensity: supervise.Intensity{MaxRestarts: total, Window: time.Minute},
				Observer:  collector,
			})
			err = sup.Add(supervise.ChildSpec{
				Name:    "worker",
				Restart: supervise.Transient, // done workload = normal exit
				Init: func(context.Context) error {
					r, err := checkpoint.OpenDurableRunner(dir, workerState{}, applyWorkerOp,
						checkpoint.DurableOptions{
							Name:             "e23-worker",
							SnapshotInterval: 64,
							Observer:         collector,
							WAL:              checkpoint.WALOptions{SegmentBytes: 4096},
						})
					if err != nil {
						return err
					}
					// The zero-acknowledged-loss check, applied after every
					// kill: recovery must reproduce exactly the acknowledged
					// prefix — nothing lost, nothing phantom.
					if r.State().Count != acked {
						lossDetected = true
					}
					runner = r
					next = acked
					return nil
				},
				Run: func(ctx context.Context) error {
					for next < total {
						if ctx.Err() != nil {
							return ctx.Err()
						}
						req := uint64(next)
						if !fired[next] && camp.PanicAt(req, "worker") {
							fired[next] = true
							panics++
							panic(fmt.Sprintf("e23: scheduled panic at op %d", next))
						}
						if !fired[next] && camp.CrashAt(req, "worker") {
							fired[next] = true
							crashes++
							return fmt.Errorf("e23: scheduled kill at op %d: %w",
								next, faultmodel.ErrCrashed)
						}
						if _, err := runner.Step(int(req % 97)); err != nil {
							return err
						}
						acked++
						next++
					}
					return runner.Close()
				},
			})
			if err != nil {
				return nil, err
			}
			if err := sup.Serve(context.Background()); err != nil {
				return nil, err
			}

			finalState, replays, err := reopenFinal(dir)
			if err != nil {
				return nil, err
			}

			var snap obs.ExecutorSnapshot
			for _, e := range collector.Snapshot() {
				if e.Executor == "e23-supervisor" {
					snap = e
				}
			}
			var wantSum int64
			for i := 0; i < total; i++ {
				wantSum += int64(uint64(i) % 97)
			}

			outcome := stats.NewTable(
				fmt.Sprintf("Supervised WAL-backed worker under scheduled kills (seed %d)", seed),
				"measure", "value")
			outcome.AddRow("workload ops offered", total)
			outcome.AddRow("worker kills: panics", panics)
			outcome.AddRow("worker kills: crash errors", crashes)
			outcome.AddRow("supervised restarts", snap.Restarts)
			outcome.AddRow("restarts == kills", yesNo(int(snap.Restarts) == panics+crashes))
			outcome.AddRow("ops acknowledged", acked)
			outcome.AddRow("acked writes lost across restarts", yesNo(lossDetected))
			outcome.AddRow("final state == full workload", yesNo(
				finalState.Count == total && finalState.Sum == wantSum))
			outcome.AddRow("cold-reopen replays acked suffix only", yesNo(replays >= 0))
			outcome.AddRow("p99 recovery time under 250ms", yesNo(
				snap.MTTR.Count > 0 && snap.MTTR.P99 < 250*time.Millisecond))

			escalation, err := escalationTable()
			if err != nil {
				return nil, err
			}
			return []*stats.Table{outcome, escalation}, nil
		},
	}
}

// reopenFinal opens the store cold, as the next process incarnation
// would, and returns the recovered state.
func reopenFinal(dir string) (workerState, int, error) {
	r, err := checkpoint.OpenDurableRunner(dir, workerState{}, applyWorkerOp,
		checkpoint.DurableOptions{Name: "e23-final"})
	if err != nil {
		return workerState{}, 0, err
	}
	defer r.Close()
	return r.State(), r.Replayed(), nil
}

// escalationTable demonstrates the restart-intensity bound: a child
// whose failure is persistent (a Bohrbug, not a Heisenbug) exhausts its
// restart budget and the supervisor escalates instead of thrashing.
func escalationTable() (*stats.Table, error) {
	collector := obs.NewCollector()
	sup := supervise.New(supervise.Options{
		Name:      "e23-escalation",
		Intensity: supervise.Intensity{MaxRestarts: 2, Window: time.Minute},
		Observer:  collector,
	})
	if err := sup.Add(supervise.ChildSpec{
		Name: "hopeless",
		Run: func(context.Context) error {
			return errors.New("deterministic failure: restart cannot help")
		},
	}); err != nil {
		return nil, err
	}
	err := sup.Serve(context.Background())

	var snap obs.ExecutorSnapshot
	for _, e := range collector.Snapshot() {
		if e.Executor == "e23-escalation" {
			snap = e
		}
	}
	t := stats.NewTable(
		"Restart-intensity escalation on a persistent failure (budget 2/min)",
		"measure", "value")
	t.AddRow("restarts before giving up", snap.Restarts)
	t.AddRow("supervisor escalated", yesNo(errors.Is(err, supervise.ErrEscalated)))
	t.AddRow("escalations raised", snap.Escalations)
	return t, nil
}

package sim

import (
	"context"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/nvp"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/selfcheck"
	"github.com/softwarefaults/redundancy/internal/selfopt"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// withMetricsOpt wraps a metrics collector (plus the package observer,
// when set) as pattern options.
func withMetricsOpt(m *core.Metrics) []pattern.Option {
	opts := []pattern.Option{pattern.WithMetrics(m)}
	if observer != nil {
		opts = append(opts, pattern.WithObserver(observer))
	}
	return opts
}

// newSequential builds a sequential-alternatives executor with metrics.
func newSequential(vs []core.Variant[int, int], test core.AcceptanceTest[int, int], m *core.Metrics) (*pattern.SequentialAlternatives[int, int], error) {
	return pattern.NewSequentialAlternatives(vs, test, nil, withMetricsOpt(m)...)
}

// buildOptimizer constructs a selfopt.Optimizer over identity variants
// with the given latency profiles.
func buildOptimizer(profiles []selfoptProfile, threshold float64, window int, probe func() float64) (*selfopt.Optimizer[int, int], error) {
	if len(profiles) == 0 {
		return nil, errNoProfiles
	}
	ps := make([]selfopt.Profile[int, int], len(profiles))
	for i, p := range profiles {
		ps[i] = selfopt.Profile[int, int]{
			Variant: core.NewVariant(p.name, func(_ context.Context, x int) (int, error) {
				return x, nil
			}),
			Latency: p.lat,
		}
	}
	return selfopt.NewOptimizer(ps, threshold, window, probe)
}

// runCostsExperiment compares the three deliberate code-redundancy
// techniques on identical variants: each of the three versions silently
// returns a wrong value with probability p per execution; the acceptance
// test (where one exists) is a perfect detector.
func runCostsExperiment(seed uint64) ([]*stats.Table, error) {
	const (
		trials = 20000
		n      = 3
	)
	ctx := context.Background()
	table := stats.NewTable(
		"Costs and efficacy of code redundancy (3 versions, perfect acceptance tests, 20000 requests)",
		"p(version wrong)", "technique", "reliability", "execs/request", "adjudicator")

	for _, p := range []float64{0.05, 0.2} {
		master := xrand.New(seed)

		correct := func(x int) int { return x * 2 }
		mkVersion := func(name string, rng *xrand.Rand) core.Variant[int, int] {
			return core.NewVariant(name, func(_ context.Context, x int) (int, error) {
				if rng.Bool(p) {
					return x*2 + 1, nil // silent wrong result
				}
				return correct(x), nil
			})
		}
		acceptance := func(x int, out int) error {
			if out != correct(x) {
				return core.ErrNotAccepted
			}
			return nil
		}

		// N-version programming: parallel evaluation, majority vote,
		// implicit adjudicator (no acceptance test needed).
		var mNVP core.Metrics
		versions := make([]core.Variant[int, int], n)
		for i := range versions {
			versions[i] = mkVersion(fmt.Sprintf("v%d", i+1), master.Split())
		}
		nvpSys, err := nvp.New(versions, core.EqualOf[int](), withMetricsOpt(&mNVP)...)
		if err != nil {
			return nil, err
		}
		nvpWrong := 0
		for i := 0; i < trials; i++ {
			out, err := nvpSys.Execute(ctx, i)
			if err != nil || out != correct(i) {
				nvpWrong++
			}
		}
		s := mNVP.Snapshot()
		table.AddRow(p, "N-version programming", 1-float64(nvpWrong)/trials,
			s.ExecutionsPerRequest(), "implicit (vote)")

		// Recovery blocks: sequential alternatives behind a perfect
		// acceptance test. State is trivial here (pure functions), so
		// rollback is a no-op; the point is the execution-cost profile.
		var mRB core.Metrics
		rbVersions := make([]core.Variant[int, int], n)
		for i := range rbVersions {
			rbVersions[i] = mkVersion(fmt.Sprintf("alt%d", i+1), master.Split())
		}
		rb, err := newSequential(rbVersions, acceptance, &mRB)
		if err != nil {
			return nil, err
		}
		rbWrong := 0
		for i := 0; i < trials; i++ {
			out, err := rb.Execute(ctx, i)
			if err != nil || out != correct(i) {
				rbWrong++
			}
		}
		s = mRB.Snapshot()
		table.AddRow(p, "recovery blocks", 1-float64(rbWrong)/trials,
			s.ExecutionsPerRequest(), "explicit (acceptance test)")

		// Self-checking programming: parallel selection with built-in
		// acceptance tests and hot-spare promotion. Failures here are
		// transient per-request, so discarded components are restored
		// between requests by rebuilding the system per batch; we model
		// the hot-spare cost by running all components in parallel.
		var mSC core.Metrics
		scWrong := 0
		comps := make([]selfcheck.Component[int, int], n)
		for i := range comps {
			c, err := selfcheck.WithTest(mkVersion(fmt.Sprintf("sc%d", i+1), master.Split()), acceptance)
			if err != nil {
				return nil, err
			}
			comps[i] = c
		}
		for i := 0; i < trials; i++ {
			// Rebuild per request: the experiment measures per-request
			// cost, not redundancy depletion.
			sys, err := selfcheck.NewSystem(comps, selfcheck.WithMetrics[int, int](&mSC))
			if err != nil {
				return nil, err
			}
			out, err := sys.Execute(ctx, i)
			if err != nil || out != correct(i) {
				scWrong++
			}
		}
		s = mSC.Snapshot()
		table.AddRow(p, "self-checking programming", 1-float64(scWrong)/trials,
			s.ExecutionsPerRequest(), "expl./impl. (built-in checks)")
	}

	depletion, err := depletionTable(seed)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{table, depletion}, nil
}

// depletionTable measures the paper's remark that "software execution
// progressively consumes the initial explicit redundancy, since failing
// elements are discarded and substituted with redundant ones": in a
// self-checking system whose components suffer *permanent* failures, the
// expected number of requests served before the redundancy is exhausted
// grows with the number of hot spares.
func depletionTable(seed uint64) (*stats.Table, error) {
	const (
		pPermanent = 0.01 // per-request permanent-failure probability
		trials     = 300
	)
	table := stats.NewTable(
		"Redundancy depletion: requests served until all self-checking components are discarded (permanent failure rate 0.01/request)",
		"components", "mean requests to exhaustion", "p50", "p95")
	ctx := context.Background()
	for _, n := range []int{1, 2, 3, 5} {
		master := xrand.New(seed + uint64(n))
		lifetimes := make([]float64, 0, trials)
		for tr := 0; tr < trials; tr++ {
			comps := make([]selfcheck.Component[int, int], n)
			for i := range comps {
				rng := master.Split()
				dead := false
				c, err := selfcheck.WithTest(
					core.NewVariant(fmt.Sprintf("c%d", i+1), func(_ context.Context, x int) (int, error) {
						if dead || rng.Bool(pPermanent) {
							dead = true // permanent: the fault persists
							return 0, fmt.Errorf("permanent failure")
						}
						return x, nil
					}),
					func(_ int, _ int) error { return nil })
				if err != nil {
					return nil, err
				}
				comps[i] = c
			}
			sys, err := selfcheck.NewSystem(comps)
			if err != nil {
				return nil, err
			}
			served := 0
			for {
				if _, err := sys.Execute(ctx, served); err != nil {
					break
				}
				served++
			}
			lifetimes = append(lifetimes, float64(served))
		}
		summary, err := stats.Summarize(lifetimes)
		if err != nil {
			return nil, err
		}
		table.AddRow(n, summary.Mean, summary.P50, summary.P95)
	}
	return table, nil
}

package sim

import (
	"context"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/vote"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// flakyVariant builds a variant that fails with probability p per
// execution. mode "error" returns a detected error; mode "wrong" returns
// a silently wrong value unique to the variant (index-tagged), the
// adversarial case for voting.
func flakyVariant(name string, idx int, p float64, wrong bool, rng *xrand.Rand) core.Variant[int, int] {
	return core.NewVariant(name, func(_ context.Context, x int) (int, error) {
		if rng.Bool(p) {
			if wrong {
				return x + 1000 + idx, nil // silent wrong value, variant-specific
			}
			return 0, fmt.Errorf("%s failed: %w", name, core.ErrNotAccepted)
		}
		return x * 2, nil
	})
}

// figure1Experiment compares the three architectural patterns of the
// paper's Figure 1 against the non-redundant baseline: reliability,
// executions per request, and (for the sequential pattern) the retry
// cost, as functions of the per-variant failure probability.
func figure1Experiment() Experiment {
	return Experiment{
		ID:       "fig1",
		Index:    "E3",
		Artifact: "Figure 1",
		Title:    "Architectural patterns: reliability and cost vs per-variant failure probability",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const (
				n      = 3
				trials = 20000
			)
			ctx := context.Background()
			table := stats.NewTable(
				"Figure 1 — patterns over n=3 variants (20000 requests per cell)",
				"p(variant fails)", "executor", "reliability", "analytic", "execs/request")

			for _, p := range []float64{0.01, 0.05, 0.10, 0.30} {
				rng := xrand.New(seed)

				// Baseline: single variant, detected failures.
				var mSingle core.Metrics
				single, err := pattern.NewSingle(
					flakyVariant("v1", 0, p, false, rng.Split()),
					withMetricsOpt(&mSingle)...)
				if err != nil {
					return nil, err
				}
				for i := 0; i < trials; i++ {
					_, _ = single.Execute(ctx, i)
				}
				s := mSingle.Snapshot()
				table.AddRow(p, "single (baseline)", s.Reliability(), 1-p, s.ExecutionsPerRequest())

				// Figure 1a: parallel evaluation with majority voting over
				// silently wrong results.
				var mPE core.Metrics
				peVars := make([]core.Variant[int, int], n)
				for i := range peVars {
					peVars[i] = flakyVariant(fmt.Sprintf("v%d", i+1), i, p, true, rng.Split())
				}
				pe, err := pattern.NewParallelEvaluation(peVars,
					vote.Majority(core.EqualOf[int]()), withMetricsOpt(&mPE)...)
				if err != nil {
					return nil, err
				}
				for i := 0; i < trials; i++ {
					_, _ = pe.Execute(ctx, i)
				}
				s = mPE.Snapshot()
				analyticPE := (1-p)*(1-p)*(1-p) + 3*p*(1-p)*(1-p)
				table.AddRow(p, "parallel evaluation (1a)", s.Reliability(), analyticPE, s.ExecutionsPerRequest())

				// Figure 1b: parallel selection with per-variant acceptance
				// tests (failures are detected).
				var mPS core.Metrics
				psVars := make([]core.Variant[int, int], n)
				tests := make([]core.AcceptanceTest[int, int], n)
				for i := range psVars {
					psVars[i] = flakyVariant(fmt.Sprintf("v%d", i+1), i, p, false, rng.Split())
					tests[i] = func(_ int, _ int) error { return nil }
				}
				ps, err := pattern.NewParallelSelection(psVars, tests, withMetricsOpt(&mPS)...)
				if err != nil {
					return nil, err
				}
				for i := 0; i < trials; i++ {
					_, _ = ps.Execute(ctx, i)
					ps.Reset() // re-enable variants: failures here are transient
				}
				s = mPS.Snapshot()
				analyticAny := 1 - p*p*p
				table.AddRow(p, "parallel selection (1b)", s.Reliability(), analyticAny, s.ExecutionsPerRequest())

				// Figure 1c: sequential alternatives.
				var mSA core.Metrics
				saVars := make([]core.Variant[int, int], n)
				for i := range saVars {
					saVars[i] = flakyVariant(fmt.Sprintf("v%d", i+1), i, p, false, rng.Split())
				}
				sa, err := pattern.NewSequentialAlternatives(saVars,
					func(_ int, _ int) error { return nil }, nil, withMetricsOpt(&mSA)...)
				if err != nil {
					return nil, err
				}
				for i := 0; i < trials; i++ {
					_, _ = sa.Execute(ctx, i)
				}
				s = mSA.Snapshot()
				table.AddRow(p, "sequential alternatives (1c)", s.Reliability(), analyticAny, s.ExecutionsPerRequest())
			}
			return []*stats.Table{table}, nil
		},
	}
}

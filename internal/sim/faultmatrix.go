package sim

import (
	"context"
	"errors"
	"fmt"

	"github.com/softwarefaults/redundancy/internal/core"
	"github.com/softwarefaults/redundancy/internal/envperturb"
	"github.com/softwarefaults/redundancy/internal/faultmodel"
	"github.com/softwarefaults/redundancy/internal/pattern"
	"github.com/softwarefaults/redundancy/internal/stats"
	"github.com/softwarefaults/redundancy/internal/vote"
	"github.com/softwarefaults/redundancy/internal/xrand"
)

// faultComponent is one faulty component instance for the matrix: the
// program plus a rejuvenation hook resetting its volatile aging state
// (a no-op for classes without aging).
type faultComponent struct {
	prog       envperturb.EnvProgram[int, int]
	rejuvenate func()
}

// faultClass builds independent component instances for one fault class.
type faultClass struct {
	name string
	make func(instance uint64) faultComponent
}

// faultMatrixExperiment is the capstone: it validates the paper's central
// artifact — the "Faults" column of Table 2 — empirically. Each technique
// serves the same request stream through components afflicted by each
// fault class, with the redundancy the technique prescribes (independent
// versions for code redundancy, re-execution or perturbation for
// environment redundancy, preventive rejuvenation for aging). The
// success-rate matrix must reproduce the paper's qualitative assignments.
func faultMatrixExperiment() Experiment {
	return Experiment{
		ID:       "faultmatrix",
		Index:    "E20",
		Artifact: "Table 2 fault column (empirical validation)",
		Title:    "Technique × fault-class success matrix",
		Run: func(seed uint64) ([]*stats.Table, error) {
			const (
				requests = 4000
				pFault   = 0.3
			)

			classes := []faultClass{
				{
					name: "Bohrbug",
					make: func(instance uint64) faultComponent {
						bug := faultmodel.Bohrbug{ID: instance, TriggerFraction: pFault}
						return faultComponent{
							prog: func(_ context.Context, _ *faultmodel.Env, x int) (int, error) {
								if bug.Activated(faultmodel.Invocation{InputKey: faultmodel.HashInt(x)}) {
									return 0, errors.New("bohrbug")
								}
								return x * 2, nil
							},
							rejuvenate: func() {},
						}
					},
				},
				{
					name: "env-Bohrbug",
					make: func(instance uint64) faultComponent {
						bug := faultmodel.EnvBohrbug{ID: instance, TriggerFraction: pFault, MaskedByPadding: 64}
						return faultComponent{
							prog: func(_ context.Context, env *faultmodel.Env, x int) (int, error) {
								if bug.Activated(faultmodel.Invocation{InputKey: faultmodel.HashInt(x), Env: env}) {
									return 0, errors.New("overflow")
								}
								return x * 2, nil
							},
							rejuvenate: func() {},
						}
					},
				},
				{
					name: "Heisenbug",
					make: func(instance uint64) faultComponent {
						bug := faultmodel.Heisenbug{ID: instance, Prob: pFault}
						rng := xrand.New(seed ^ (instance * 0x9e3779b9))
						return faultComponent{
							prog: func(_ context.Context, env *faultmodel.Env, x int) (int, error) {
								if bug.Activated(faultmodel.Invocation{Env: env, Rand: rng}) {
									return 0, errors.New("race")
								}
								return x * 2, nil
							},
							rejuvenate: func() {},
						}
					},
				},
				{
					name: "aging",
					make: func(instance uint64) faultComponent {
						bug := faultmodel.AgingFault{ID: instance, HazardAtScale: 1, Scale: 100, Shape: 4}
						rng := xrand.New(seed ^ (instance * 0x7f4a7c15))
						age := 0
						return faultComponent{
							prog: func(_ context.Context, _ *faultmodel.Env, x int) (int, error) {
								age++
								env := faultmodel.DefaultEnv()
								env.Age = age
								if bug.Activated(faultmodel.Invocation{Env: env, Rand: rng}) {
									return 0, errors.New("aging failure")
								}
								return x * 2, nil
							},
							rejuvenate: func() { age = 0 },
						}
					},
				},
			}

			asVariant := func(name string, c faultComponent) core.Variant[int, int] {
				return core.NewVariant(name, func(ctx context.Context, x int) (int, error) {
					return c.prog(ctx, faultmodel.DefaultEnv(), x)
				})
			}
			countSuccess := func(exec core.Executor[int, int]) float64 {
				ok := 0
				for i := 0; i < requests; i++ {
					if out, err := exec.Execute(context.Background(), i); err == nil && out == i*2 {
						ok++
					}
				}
				return float64(ok) / requests
			}

			type technique struct {
				name  string
				serve func(cl faultClass) (float64, error)
			}
			techniques := []technique{
				{
					name: "none (single component)",
					serve: func(cl faultClass) (float64, error) {
						exec, err := pattern.NewSingle(asVariant("c", cl.make(1)))
						if err != nil {
							return 0, err
						}
						return countSuccess(exec), nil
					},
				},
				{
					name: "N-version programming (3 versions)",
					serve: func(cl faultClass) (float64, error) {
						vs := make([]core.Variant[int, int], 3)
						for i := range vs {
							vs[i] = asVariant(fmt.Sprintf("v%d", i+1), cl.make(uint64(i+1)))
						}
						exec, err := pattern.NewParallelEvaluation(vs, vote.Majority(core.EqualOf[int]()))
						if err != nil {
							return 0, err
						}
						return countSuccess(exec), nil
					},
				},
				{
					name: "recovery blocks (3 alternates)",
					serve: func(cl faultClass) (float64, error) {
						vs := make([]core.Variant[int, int], 3)
						for i := range vs {
							vs[i] = asVariant(fmt.Sprintf("alt%d", i+1), cl.make(uint64(i+20)))
						}
						exec, err := pattern.NewSequentialAlternatives(vs,
							func(_ int, _ int) error { return nil }, nil)
						if err != nil {
							return 0, err
						}
						return countSuccess(exec), nil
					},
				},
				{
					name: "checkpoint-recovery (3 retries)",
					serve: func(cl faultClass) (float64, error) {
						exec, err := envperturb.NewCheckpointRecovery(cl.make(1).prog, faultmodel.DefaultEnv(), 3)
						if err != nil {
							return 0, err
						}
						return countSuccess(exec), nil
					},
				},
				{
					name: "RX environment perturbation",
					serve: func(cl faultClass) (float64, error) {
						exec, err := envperturb.New(cl.make(1).prog, faultmodel.DefaultEnv(), envperturb.DefaultLadder())
						if err != nil {
							return 0, err
						}
						return countSuccess(exec), nil
					},
				},
				{
					name: "rejuvenation (every 20 requests)",
					serve: func(cl faultClass) (float64, error) {
						c := cl.make(1)
						ok := 0
						for i := 0; i < requests; i++ {
							if i > 0 && i%20 == 0 {
								c.rejuvenate()
							}
							if out, err := c.prog(context.Background(), faultmodel.DefaultEnv(), i); err == nil && out == i*2 {
								ok++
							}
						}
						return float64(ok) / requests, nil
					},
				},
			}

			headers := []string{"technique"}
			for _, cl := range classes {
				headers = append(headers, cl.name)
			}
			table := stats.NewTable(
				"Success rate: technique × fault class (4000 requests, per-component fault rate 0.3)",
				headers...)
			for _, tech := range techniques {
				row := make([]any, 0, len(classes)+1)
				row = append(row, tech.name)
				for _, cl := range classes {
					rate, err := tech.serve(cl)
					if err != nil {
						return nil, fmt.Errorf("%s × %s: %w", tech.name, cl.name, err)
					}
					row = append(row, rate)
				}
				table.AddRow(row...)
			}
			return []*stats.Table{table}, nil
		},
	}
}

package sim

import (
	"strings"
	"testing"
)

func TestRecoveryExperimentZeroAckedLoss(t *testing.T) {
	tables := runExperiment(t, "recovery", 1)
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	out := tables[0]

	row := func(prefix string) []string { return findRow(t, out, prefix) }
	if got := row("acked writes lost across restarts"); got[len(got)-1] != "no" {
		t.Errorf("acknowledged writes were lost: %v", got)
	}
	if got := row("final state == full workload"); got[len(got)-1] != "yes" {
		t.Errorf("worker did not complete the workload intact: %v", got)
	}
	if got := row("restarts == kills"); got[len(got)-1] != "yes" {
		t.Errorf("every kill should map to exactly one supervised restart: %v", got)
	}
	panics := cellFloat(t, row("worker kills:"), 1) // "worker kills: panics  N"
	crashes := cellFloat(t, findRow(t, out, "worker kills: crash errors"), 0)
	if panics == 0 || crashes == 0 {
		t.Errorf("campaign should schedule both panics (%v) and crashes (%v):\n%s",
			panics, crashes, out)
	}
	if got := row("p99 recovery time under 250ms"); got[len(got)-1] != "yes" {
		t.Errorf("recovery too slow (or no MTTR samples): %v", got)
	}

	esc := tables[1]
	if got := findRow(t, esc, "supervisor escalated"); got[len(got)-1] != "yes" {
		t.Errorf("persistent failure should escalate: %v", got)
	}
	if got := cellFloat(t, findRow(t, esc, "restarts before giving up"), 0); got != 2 {
		t.Errorf("restarts before escalation = %v, want 2 (the budget)", got)
	}
}

func TestRecoveryExperimentDeterministicKillSchedule(t *testing.T) {
	// Timing rows (MTTR) are rendered as yes/no, so the full tables must
	// be byte-identical across runs with the same seed.
	a := runExperiment(t, "recovery", 7)
	b := runExperiment(t, "recovery", 7)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("table %d differs across runs with seed 7:\n%s\n---\n%s", i, a[i], b[i])
		}
	}
	// A different seed moves the kill sites.
	c := runExperiment(t, "recovery", 8)
	if killLine(a[0]) == killLine(c[0]) && strings.Contains(a[0], "panics") {
		t.Log("seeds 7 and 8 happen to share a kill count; schedule is still seed-derived")
	}
}

func killLine(rendered string) string {
	for _, line := range strings.Split(rendered, "\n") {
		if strings.Contains(line, "worker kills: panics") {
			return line
		}
	}
	return ""
}
